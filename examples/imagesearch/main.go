// Image search over binary codes: the Fig 14 workload as an application.
//
// Hashes GIST-like descriptors to 512-bit SimHash codes, classifies
// held-out queries by majority vote among their k nearest codes under
// Hamming distance, and compares the conventional XOR+popcount scan with
// the PIM scan (Table 4's HD decomposition — exact, no refinement).
//
//	go run ./examples/imagesearch
package main

import (
	"fmt"
	"log"

	"pimmine"
)

const (
	nImages = 3000
	bits    = 512
	k       = 15
)

func main() {
	prof, err := pimmine.DatasetByName("GIST")
	if err != nil {
		log.Fatal(err)
	}
	ds := pimmine.GenerateDataset(prof, nImages, 7)
	codes := pimmine.SimHash(ds.X, bits, 8)
	fmt.Printf("indexed %d images as %d-bit SimHash codes (%d clusters)\n",
		len(codes), bits, prof.Clusters)

	// Hold-out queries from the same mixture, with ground-truth labels
	// taken from their nearest dataset member's cluster.
	queriesX := ds.Queries(50, 9)
	qCodes := pimmine.SimHash(queriesX, bits, 8)

	eng, err := pimmine.NewEngine(pimmine.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	// Capacity is checked against the paper's 10M-code workload.
	pimScan, err := pimmine.NewHDPIM(eng, codes, 10_000_000)
	if err != nil {
		log.Fatal(err)
	}
	hostScan := pimmine.NewHDExact(codes)

	mHost, mPIM := pimmine.NewMeter(), pimmine.NewMeter()
	agree, correct := 0, 0
	for qi, qc := range qCodes {
		want := hostScan.Search(qc, k, mHost)
		got := pimScan.Search(qc, k, mPIM)
		if want[0].Index == got[0].Index && want[k-1].Dist == got[k-1].Dist {
			agree++
		}
		// Majority label among the k nearest codes.
		votes := map[int]int{}
		for _, nb := range got {
			votes[ds.Labels[nb.Index]]++
		}
		best, bestV := -1, -1
		for l, v := range votes {
			if v > bestV || (v == bestV && l < best) {
				best, bestV = l, v
			}
		}
		// Ground truth: the label of the query's exact nearest descriptor.
		nn := pimmine.NewExactKNN(ds.X).Search(queriesX.Row(qi), 1, pimmine.NewMeter())
		if best == ds.Labels[nn[0].Index] {
			correct++
		}
	}
	fmt.Printf("PIM scan agreement with host scan: %d/%d queries\n", agree, len(qCodes))
	fmt.Printf("kNN classification accuracy via %d-bit codes: %d/%d\n", bits, correct, len(qCodes))

	cfg := pimmine.DefaultConfig()
	_, tHost := cfg.TimeMeter(mHost)
	_, tPIM := cfg.TimeMeter(mPIM)
	fmt.Printf("modeled scan time: host %.3f ms/query, PIM %.3f ms/query → %.1fx\n",
		tHost.Total()/1e6/float64(len(qCodes)),
		tPIM.Total()/1e6/float64(len(qCodes)),
		tHost.Total()/tPIM.Total())
}
