// Clustering: Yinyang k-means with the PIM assist (Table 7's workload).
//
// Clusters NUS-WIDE-like web-image features with Yinyang k-means, then
// with its PIM-assisted counterpart, verifies both produce identical
// clusterings, and reports the modeled per-iteration speedup.
//
//	go run ./examples/clustering
package main

import (
	"fmt"
	"log"

	"pimmine"
)

const (
	nPoints  = 2500
	k        = 64
	maxIters = 12
)

func main() {
	prof, err := pimmine.DatasetByName("NUS-WIDE")
	if err != nil {
		log.Fatal(err)
	}
	ds := pimmine.GenerateDataset(prof, nPoints, 21)
	fmt.Printf("clustering %d×%d %s-like features into k=%d clusters\n",
		ds.X.N, ds.X.D, prof.Name, k)

	fw, err := pimmine.NewFramework(pimmine.DefaultConfig(), pimmine.DefaultAlpha)
	if err != nil {
		log.Fatal(err)
	}
	acc, err := fw.AccelerateKMeans(ds.X, pimmine.Yinyang, pimmine.KMeansOptions{
		CapacityN: prof.FullN,
		K:         k,
		MaxIters:  maxIters,
		Seed:      5,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline bottleneck: %s; PIM-oracle %.2f ms\n",
		acc.BaselineProfile.Bottleneck(), acc.OracleNs/1e6)

	initial, err := pimmine.KMeansInitCenters(ds.X, k, 5)
	if err != nil {
		log.Fatal(err)
	}
	mBase, mPIM := pimmine.NewMeter(), pimmine.NewMeter()
	base := acc.Baseline.Run(initial, maxIters, mBase)
	accel := acc.PIM.Run(initial, maxIters, mPIM)

	for i := range base.Assign {
		if base.Assign[i] != accel.Assign[i] {
			log.Fatalf("clusterings diverge at point %d", i)
		}
	}
	fmt.Printf("exactness: identical assignments over %d iterations (converged=%v, SSE=%.4f) ✓\n",
		base.Iterations, base.Converged, base.SSE)

	cfg := pimmine.DefaultConfig()
	_, tBase := cfg.TimeMeter(mBase)
	_, tPIM := cfg.TimeMeter(mPIM)
	perIterBase := tBase.Total() / 1e6 / float64(base.Iterations)
	perIterPIM := tPIM.Total() / 1e6 / float64(accel.Iterations)
	fmt.Printf("modeled time: Yinyang %.2f ms/iter, Yinyang-PIM %.2f ms/iter → %.1fx\n",
		perIterBase, perIterPIM, perIterBase/perIterPIM)
}
