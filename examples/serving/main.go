// Serving: the sharded concurrent query engine.
//
// Partitions an MSD-like dataset across shards (one PIM array per
// shard), serves a concurrent batch of kNN queries through the bounded
// worker pool, verifies every answer is exactly the sequential linear
// scan's, and demonstrates per-query deadlines and the degraded-shard
// fallback.
//
//	go run ./examples/serving
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"strings"
	"time"

	"pimmine"
)

func main() {
	// 1. Data: a scaled-down synthetic MSD; Theorem 4 sizing still uses
	// the full-scale cardinality, split evenly across shards.
	prof, err := pimmine.DatasetByName("MSD")
	if err != nil {
		log.Fatal(err)
	}
	ds := pimmine.GenerateDataset(prof, 3000, 7)
	queries := ds.Queries(64, 8)
	fw, err := pimmine.NewFramework(pimmine.DefaultConfig(), pimmine.DefaultAlpha)
	if err != nil {
		log.Fatal(err)
	}

	// 2. The engine: 4 shards, an FNN-PIM searcher (own PIM array) per
	// shard, a per-query deadline, and a bounded batch pool — observed:
	// the Observer collects live metrics and traces one query in eight.
	observer := pimmine.NewObserver(pimmine.ObserverConfig{SampleRate: 8})
	eng, err := pimmine.NewObservedEngine(ds.X, pimmine.QueryEngineOptions{
		Shards:       4,
		Variant:      pimmine.ServeFNNPIM,
		Framework:    fw,
		CapacityN:    prof.FullN,
		Workers:      4,
		QueryTimeout: 2 * time.Second,
	}, observer)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("engine: %d shards of sizes %v, degraded=%v\n",
		eng.NumShards(), eng.ShardSizes(), eng.DegradedShards())

	// 3. Serve a concurrent batch and verify exactness per query.
	exact := pimmine.NewExactKNN(ds.X)
	start := time.Now()
	batch, err := eng.SearchBatch(context.Background(), queries, 10)
	if err != nil {
		log.Fatal(err)
	}
	wall := time.Since(start)
	for qi := 0; qi < queries.N; qi++ {
		want := exact.Search(queries.Row(qi), 10, pimmine.NewMeter())
		got := batch.Results[qi].Neighbors
		for i := range want {
			if got[i] != want[i] {
				log.Fatalf("query %d neighbor %d: %v != %v", qi, i, got[i], want[i])
			}
		}
	}
	fmt.Printf("batch: %d queries in %v (%.0f qps), all exactly equal to the linear scan ✓\n",
		queries.N, wall.Round(time.Millisecond), float64(queries.N)/wall.Seconds())

	// 4. Modeled serving latency: shards answer in parallel, so a query
	// costs its slowest shard under the Table 5 model.
	cfg := pimmine.DefaultConfig()
	var latencyNs float64
	for _, r := range batch.Results {
		qMax := 0.0
		for _, m := range r.ShardMeters {
			if m == nil {
				continue
			}
			_, b := cfg.TimeMeter(m)
			if ns := b.Total(); ns > qMax {
				qMax = ns
			}
		}
		latencyNs += qMax
	}
	fmt.Printf("modeled latency: %.3f ms/query (slowest shard per query)\n",
		latencyNs/1e6/float64(queries.N))

	// 5. Cancellation: an expired context aborts cleanly.
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.Search(canceled, queries.Row(0), 10); errors.Is(err, context.Canceled) {
		fmt.Println("cancellation: expired context rejected with context.Canceled ✓")
	} else {
		log.Fatalf("expected context.Canceled, got %v", err)
	}

	// 6. Graceful degradation: a factory that fails on one shard falls
	// back to the exact host scan there — answers stay exact.
	degEng, err := pimmine.NewQueryEngine(ds.X, pimmine.QueryEngineOptions{
		Shards: 3,
		Factory: func(shard *pimmine.Matrix, shardID int) (pimmine.KNNSearcher, error) {
			if shardID == 2 {
				return nil, errors.New("simulated shard hardware failure")
			}
			return pimmine.NewExactKNN(shard), nil
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := degEng.Search(context.Background(), queries.Row(0), 10)
	if err != nil {
		log.Fatal(err)
	}
	want := exact.Search(queries.Row(0), 10, pimmine.NewMeter())
	for i := range want {
		if res.Neighbors[i] != want[i] {
			log.Fatalf("degraded engine inexact at %d", i)
		}
	}
	fmt.Printf("degradation: shard(s) %v fell back to the host scan, results still exact ✓\n",
		res.Degraded)

	// 7. Observability: the registry holds everything the batch did —
	// Prometheus text for scrapers, and a sampled per-query trace showing
	// where each query's time went (shard fan-out → PIM dot → bounds →
	// refine). In a real deployment observer.Handler() would be mounted
	// on an HTTP listener (see `pimbench -metrics-addr`).
	fmt.Println("\nmetrics excerpt (/metrics):")
	var prom strings.Builder
	if err := observer.Registry().WritePrometheus(&prom); err != nil {
		log.Fatal(err)
	}
	for _, line := range strings.Split(prom.String(), "\n") {
		if strings.HasPrefix(line, "pim_serve_queries_total") ||
			strings.HasPrefix(line, "pim_serve_shard_queries_total") ||
			strings.HasPrefix(line, "pim_faults_total") ||
			strings.HasPrefix(line, "pim_serve_query_latency_seconds_count") {
			fmt.Println("  " + line)
		}
	}
	// Pick the deepest recent trace (the newest one is the canceled
	// probe from step 5, which never reached a shard).
	var best string
	for _, tr := range observer.Tracer().Recent(8) {
		if r := tr.Render(); strings.Count(r, "\n") > strings.Count(best, "\n") {
			best = r
		}
	}
	if best != "" {
		fmt.Println("\nsampled query trace (/debug/traces):")
		fmt.Print(best)
	}
}
