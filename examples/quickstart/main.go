// Quickstart: accelerate kNN classification with the PIM framework.
//
// Builds an MSD-like dataset, runs the full §III-B pipeline (profile →
// Theorem 4 sizing → PIM-aware bound → plan optimization), verifies the
// accelerated searcher returns exactly the linear scan's neighbors, and
// reports the modeled speedup.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"pimmine"
)

func main() {
	// 1. Data: a scaled-down synthetic MSD (d=420); Theorem 4 decisions
	// still use the full-scale cardinality.
	prof, err := pimmine.DatasetByName("MSD")
	if err != nil {
		log.Fatal(err)
	}
	ds := pimmine.GenerateDataset(prof, 2000, 42)
	queries := ds.Queries(10, 43)
	fmt.Printf("dataset: %s-like, %d×%d (full-scale N=%d)\n", prof.Name, ds.X.N, ds.X.D, prof.FullN)

	// 2. The framework: Table 5 hardware, α=10⁶.
	fw, err := pimmine.NewFramework(pimmine.DefaultConfig(), pimmine.DefaultAlpha)
	if err != nil {
		log.Fatal(err)
	}
	acc, err := fw.AccelerateKNN(ds.X, pimmine.KNNOptions{
		CapacityN: prof.FullN,
		K:         10,
		Pilot:     queries,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bottleneck: %s\n", acc.BaselineProfile.Bottleneck())
	fmt.Printf("Theorem 4 compressed dimensionality: s=%d\n", acc.S)
	fmt.Printf("optimized execution plan: %s\n", acc.Plan)

	// 3. Search and verify exactness against the plain linear scan.
	exact := pimmine.NewExactKNN(ds.X)
	mExact, mPIM := pimmine.NewMeter(), pimmine.NewMeter()
	for qi := 0; qi < queries.N; qi++ {
		q := queries.Row(qi)
		want := exact.Search(q, 10, mExact)
		got := acc.Optimized.Search(q, 10, mPIM)
		for i := range want {
			if got[i].Dist != want[i].Dist {
				log.Fatalf("accuracy violated at query %d position %d: %v != %v",
					qi, i, got[i], want[i])
			}
		}
	}
	fmt.Println("exactness: all queries return the linear scan's neighbors ✓")

	// 4. Modeled performance under the Table 5 architecture.
	cfg := pimmine.DefaultConfig()
	_, tExact := cfg.TimeMeter(mExact)
	_, tPIM := cfg.TimeMeter(mPIM)
	fmt.Printf("modeled time: Standard %.3f ms/query, FNN-PIM-optimize %.3f ms/query → %.1fx speedup\n",
		tExact.Total()/1e6/float64(queries.N),
		tPIM.Total()/1e6/float64(queries.N),
		tExact.Total()/tPIM.Total())
}
