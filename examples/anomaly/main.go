// Anomaly mining: the other similarity-based tasks the paper's intro
// names — distance-based outlier detection and time-series motif
// discovery — both PIM-accelerated with the same Theorem 1 bound.
//
// Plants three outliers in clustered feature data and one repeated
// pattern in a noisy series, then shows the PIM variants finding exactly
// what the host algorithms find, with far fewer exact distance
// computations.
//
//	go run ./examples/anomaly
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"pimmine"
)

func main() {
	outliers()
	motifs()
}

func outliers() {
	fmt.Println("== distance-based outlier detection ==")
	prof, err := pimmine.DatasetByName("Notre")
	if err != nil {
		log.Fatal(err)
	}
	ds := pimmine.GenerateDataset(prof, 1200, 3)
	// Plant three far-away points.
	planted := []int{100, 500, 900}
	for _, i := range planted {
		row := ds.X.Row(i)
		for j := range row {
			if j%2 == 0 {
				row[j] = 1
			} else {
				row[j] = 0
			}
		}
	}

	q, err := pimmine.NewQuantizer(pimmine.DefaultAlpha)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := pimmine.NewEngine(pimmine.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	host := pimmine.NewOutlierDetector(ds.X)
	pimDet, err := pimmine.NewOutlierDetectorPIM(eng, ds.X, q, prof.FullN)
	if err != nil {
		log.Fatal(err)
	}

	mHost, mPIM := pimmine.NewMeter(), pimmine.NewMeter()
	want, err := host.TopN(3, 10, mHost)
	if err != nil {
		log.Fatal(err)
	}
	got, err := pimDet.TopN(3, 10, mPIM)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("top-3 kNN-distance outliers (host): %v\n", indices(want))
	fmt.Printf("top-3 kNN-distance outliers (PIM):  %v\n", indices(got))
	cfg := pimmine.DefaultConfig()
	_, tHost := cfg.TimeMeter(mHost)
	_, tPIM := cfg.TimeMeter(mPIM)
	fmt.Printf("modeled time: host %.1f ms, PIM %.1f ms (%.1fx)\n\n",
		tHost.Total()/1e6, tPIM.Total()/1e6, tHost.Total()/tPIM.Total())
}

func motifs() {
	fmt.Println("== time-series motif discovery ==")
	const n, w, at1, at2 = 4000, 64, 700, 2900
	rng := rand.New(rand.NewSource(9))
	series := make([]float64, n)
	v := 0.0
	for i := range series {
		v += rng.NormFloat64()
		series[i] = v
	}
	for i := 0; i < w; i++ {
		p := 8 * math.Sin(float64(i)/4)
		series[at1+i] = p
		series[at2+i] = p + rng.NormFloat64()*0.02
	}

	windows, _, err := pimmine.MotifWindows(series, w)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("series length %d, %d sliding windows of %d samples\n", n, windows.N, w)

	q, _ := pimmine.NewQuantizer(pimmine.DefaultAlpha)
	eng, err := pimmine.NewEngine(pimmine.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	pimF, err := pimmine.NewMotifFinderPIM(eng, windows, q, windows.N)
	if err != nil {
		log.Fatal(err)
	}
	mHost, mPIM := pimmine.NewMeter(), pimmine.NewMeter()
	want, err := pimmine.NewMotifFinder(windows).Top(mHost)
	if err != nil {
		log.Fatal(err)
	}
	got, err := pimF.Top(mPIM)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("host motif: windows (%d, %d), distance %.4f\n", want.I, want.J, want.Dist)
	fmt.Printf("PIM motif:  windows (%d, %d), distance %.4f (planted at %d and %d)\n",
		got.I, got.J, got.Dist, at1, at2)
	cfg := pimmine.DefaultConfig()
	_, tHost := cfg.TimeMeter(mHost)
	_, tPIM := cfg.TimeMeter(mPIM)
	fmt.Printf("modeled time: host %.1f ms, PIM %.1f ms (%.1fx)\n",
		tHost.Total()/1e6, tPIM.Total()/1e6, tHost.Total()/tPIM.Total())
}

func indices(os []pimmine.Outlier) []int {
	out := make([]int, len(os))
	for i, o := range os {
		out[i] = o.Index
	}
	return out
}
