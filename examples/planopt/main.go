// Execution-plan optimization walk-through (§V-D, Figs 12, 15 and 16).
//
// Shows how the framework decides which bounds to keep once the PIM-aware
// bound joins the candidate set: it measures each bound's pruning ratio
// and transfer cost on a pilot, evaluates Eq. 13 over the 2^L candidate
// plans, and compares the default replacement plan (FNN-PIM) with the
// optimized plan (FNN-PIM-optimize).
//
//	go run ./examples/planopt
package main

import (
	"fmt"
	"log"

	"pimmine"
)

func main() {
	prof, err := pimmine.DatasetByName("MSD")
	if err != nil {
		log.Fatal(err)
	}
	ds := pimmine.GenerateDataset(prof, 2000, 11)
	pilot := ds.Queries(5, 12)

	fw, err := pimmine.NewFramework(pimmine.DefaultConfig(), pimmine.DefaultAlpha)
	if err != nil {
		log.Fatal(err)
	}
	acc, err := fw.AccelerateKNN(ds.X, pimmine.KNNOptions{
		CapacityN: prof.FullN,
		K:         10,
		Pilot:     pilot,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("candidate bounds (measured on the pilot):")
	for _, b := range acc.Plan.Bounds {
		fmt.Printf("  kept   %-16s transfer=%3d operands/object  prune=%5.1f%%  pim=%v\n",
			b.Name, b.TransferDims, 100*b.PruneRatio, b.PIM)
	}
	fmt.Printf("chosen plan: %s (Eq. 13 cost %.1f M operand-transfers at full N=%d)\n",
		acc.Plan, acc.Plan.Cost/1e6, prof.FullN)

	// Compare the default plan (PIM bound + retained original bounds)
	// with the optimized plan on fresh queries.
	queries := ds.Queries(10, 13)
	cfg := pimmine.DefaultConfig()
	run := func(s pimmine.KNNSearcher) float64 {
		m := pimmine.NewMeter()
		for qi := 0; qi < queries.N; qi++ {
			s.Search(queries.Row(qi), 10, m)
		}
		_, t := cfg.TimeMeter(m)
		return t.Total() / 1e6 / float64(queries.N)
	}
	base := run(acc.Baseline)
	def := run(acc.PIM)
	opt := run(acc.Optimized)
	fmt.Printf("modeled ms/query: FNN=%.3f  FNN-PIM=%.3f  FNN-PIM-optimize=%.3f\n", base, def, opt)
	fmt.Printf("plan optimization gain over default PIM plan: %.2fx\n", def/opt)
}
