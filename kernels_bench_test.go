// Kernel-layer microbenchmarks: the optimized hot-path kernels against
// their retained scalar references, with allocation reporting. The CI
// bench-smoke step runs these and fails if any steady-state path
// (wordparallel crossbar dot, SearchAppend, KNNRow) reports a nonzero
// allocs/op — the executable form of the zero-alloc contract that the
// AllocsPerRun tests pin per package.
//
//	go test -bench='Kernel|CrossbarDot|VecDistance|Refine' -benchmem -run='^$'
package pimmine_test

import (
	"math/rand"
	"testing"

	"pimmine/internal/arch"
	"pimmine/internal/crossbar"
	"pimmine/internal/dataset"
	"pimmine/internal/join"
	"pimmine/internal/knn"
	"pimmine/internal/measure"
	"pimmine/internal/pim"
	"pimmine/internal/quant"
	"pimmine/internal/vec"
)

// BenchmarkCrossbarDot compares the cell-at-a-time reference against the
// word-parallel bit-plane kernel on the paper's Table 5 geometry. The
// wordparallel case must stay at 0 allocs/op (pooled scratch).
func BenchmarkCrossbarDot(b *testing.B) {
	spec := crossbar.Spec{M: 256, CellBits: 2, DACBits: 2, ReadLatencyNs: 29.31, WriteLatencyNs: 50.88}
	const dims, opBits = 256, 8
	rng := rand.New(rand.NewSource(1))
	xb := crossbar.New(spec)
	for v := 0; v < spec.VectorsPerCrossbar(dims, opBits); v++ {
		vals := make([]uint32, dims)
		for i := range vals {
			vals[i] = rng.Uint32() & 0xff
		}
		if _, err := xb.ProgramVector(vals, opBits); err != nil {
			b.Fatal(err)
		}
	}
	input := make([]uint32, dims)
	for i := range input {
		input[i] = rng.Uint32() & 0xff
	}
	dst := make([]int64, xb.Vectors())
	b.Run("ref", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := xb.DotAllRef(input, opBits); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("wordparallel", func(b *testing.B) {
		if _, err := xb.DotAllInto(input, opBits, dst); err != nil {
			b.Fatal(err) // warm the scratch pool before counting
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := xb.DotAllInto(input, opBits, dst); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkVecDistance times the unrolled distance kernels against their
// retained references at a Table 6 dimensionality (MSD, d=420).
func BenchmarkVecDistance(b *testing.B) {
	const d = 420
	rng := rand.New(rand.NewSource(2))
	fa, fb := make([]float64, d), make([]float64, d)
	ia, ib := make([]uint32, d), make([]uint32, d)
	for i := 0; i < d; i++ {
		fa[i], fb[i] = rng.NormFloat64(), rng.NormFloat64()
		ia[i], ib[i] = rng.Uint32()&0xff, rng.Uint32()&0xff
	}
	var fsink float64
	var isink int64
	for _, bc := range []struct {
		name string
		fn   func()
	}{
		{"Dot/ref", func() { fsink = vec.DotRef(fa, fb) }},
		{"Dot/opt", func() { fsink = vec.Dot(fa, fb) }},
		{"IntDot/ref", func() { isink = vec.IntDotRef(ia, ib) }},
		{"IntDot/opt", func() { isink = vec.IntDot(ia, ib) }},
		{"SqNorm/ref", func() { fsink = vec.SqNormRef(fa) }},
		{"SqNorm/opt", func() { fsink = vec.SqNorm(fa) }},
		{"SqEuclidean/ref", func() { fsink = measure.SqEuclideanRef(fa, fb) }},
		{"SqEuclidean/opt", func() { fsink = measure.SqEuclidean(fa, fb) }},
	} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				bc.fn()
			}
		})
	}
	_, _ = fsink, isink
}

// BenchmarkRefine times the steady-state filter-and-refine paths — host
// and PIM SearchAppend, and the per-row join refine. All three must stay
// at 0 allocs/op once scratch is warm.
func BenchmarkRefine(b *testing.B) {
	const k = 10
	prof, err := dataset.ByName("Notre")
	if err != nil {
		b.Fatal(err)
	}
	ds := dataset.Generate(prof, 2000, 3)
	q, err := quant.New(quant.DefaultAlpha)
	if err != nil {
		b.Fatal(err)
	}
	eng, err := pim.NewEngine(arch.Default(), pim.ModeExact)
	if err != nil {
		b.Fatal(err)
	}
	stdPIM, err := knn.NewStandardPIM(eng, ds.X, q, prof.FullN)
	if err != nil {
		b.Fatal(err)
	}
	jEng, err := pim.NewEngine(arch.Default(), pim.ModeExact)
	if err != nil {
		b.Fatal(err)
	}
	joiner, err := join.NewJoinerPIM(jEng, ds.X, q, prof.FullN)
	if err != nil {
		b.Fatal(err)
	}
	query := ds.X.Row(7)
	meter := arch.NewMeter()
	dst := make([]vec.Neighbor, 0, k)

	searchers := []struct {
		name string
		s    knn.AppendSearcher
	}{
		{"host-search", knn.NewStandard(ds.X)},
		{"pim-search", stdPIM},
	}
	for _, bc := range searchers {
		b.Run(bc.name, func(b *testing.B) {
			dst = bc.s.SearchAppend(query, k, meter, dst[:0]) // warm scratch
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dst = bc.s.SearchAppend(query, k, meter, dst[:0])
			}
		})
	}
	b.Run("join-row", func(b *testing.B) {
		if dst, err = joiner.KNNRow(query, k, -1, meter, dst[:0]); err != nil {
			b.Fatal(err) // warm scratch
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if dst, err = joiner.KNNRow(query, k, -1, meter, dst[:0]); err != nil {
				b.Fatal(err)
			}
		}
	})
}
