// Command pimbench regenerates the paper's tables and figures: it runs
// the experiment harness (internal/exp) and prints paper-style rows.
//
// Usage:
//
//	pimbench [-scale N] [-queries Q] [-seed S] [-full] [ids...]
//
// With no ids, every registered experiment runs. Available ids:
// table1 table5 table6 table7 fig5 fig6 fig7 fig13a-fig13d fig14-fig18,
// plus extensions (ext-*). The serving mode, `pimbench ext-serve`,
// sweeps the sharded concurrent query engine from 1 shard up to -shards
// and reports wall-clock throughput alongside the modeled per-query time.
// `pimbench ext-fault` sweeps injected crossbar fault severity and prints
// the degradation curve: recall stays exact at every severity while
// faulty/recovered dot counts and modeled latency grow.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"pimmine/internal/exp"
)

func main() {
	scale := flag.Int("scale", 2000, "generated rows per dataset (full-scale N still drives Theorem 4)")
	queries := flag.Int("queries", 5, "query batch size for kNN experiments")
	seed := flag.Int64("seed", 1, "generation seed")
	full := flag.Bool("full", false, "run the expensive sweeps (Table 7 k up to 1024)")
	shards := flag.Int("shards", 8, "max shard count for the ext-serve sweep")
	format := flag.String("format", "text", "output format: text|markdown|csv")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(exp.IDs(), "\n"))
		return
	}

	suite := exp.NewSuite()
	suite.ScaleN = *scale
	suite.Queries = *queries
	suite.Seed = *seed
	suite.Full = *full
	suite.Shards = *shards

	ids := flag.Args()
	if len(ids) == 0 {
		ids = exp.IDs()
	}
	for _, id := range ids {
		runner, ok := exp.Registry[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "pimbench: unknown experiment %q (try -list)\n", id)
			os.Exit(2)
		}
		start := time.Now()
		tbl, err := runner(suite)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pimbench: %s: %v\n", id, err)
			os.Exit(1)
		}
		out, err := tbl.Render(*format)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pimbench:", err)
			os.Exit(2)
		}
		fmt.Print(out)
		if *format == "text" {
			fmt.Printf("(wall clock %.1fs)\n", time.Since(start).Seconds())
		}
		fmt.Println()
	}
}
