// Command pimbench regenerates the paper's tables and figures: it runs
// the experiment harness (internal/exp) and prints paper-style rows.
//
// Usage:
//
//	pimbench [-scale N] [-queries Q] [-seed S] [-full] [flags] [ids...]
//
// With no ids, every registered experiment runs. Available ids:
// table1 table5 table6 table7 fig5 fig6 fig7 fig13a-fig13d fig14-fig18,
// plus extensions (ext-*). The serving mode, `pimbench ext-serve`,
// sweeps the sharded concurrent query engine from 1 shard up to -shards
// and reports wall-clock throughput alongside the modeled per-query time.
// `pimbench ext-fault` sweeps injected crossbar fault severity and prints
// the degradation curve: recall stays exact at every severity while
// faulty/recovered dot counts and modeled latency grow.
// `pimbench -churn` (or the ids ext-churn and ext-durable) replays mixed
// read/write traffic against the mutable engine and reports query latency
// vs. delta fill, compaction pauses, and endurance-budget drain; the
// durable sweep crash-recovers a WAL-backed engine after every mutation
// burst and reports replay time vs. log length plus the log truncation a
// checkpoint buys.
// `pimbench ext-overload` drives closed-loop clients at 1×/2×/4× an
// engine's known capacity and reports goodput with and without the
// overload-protection layer (internal/resilience): past capacity the
// baseline congestion-collapses into timeouts while admission control
// and deadline shedding keep the resilient engine near peak goodput,
// answering the excess with typed errors in microseconds.
// `pimbench ext-serve-net` drives tenant-tagged HTTP clients through the
// network front-end (internal/netserve) at 1×/2× capacity with a 10:1
// hot-tenant skew and reports goodput plus Jain's fairness index for a
// shared queue versus per-tenant weighted-fair queueing.
//
// Flag combinations are validated before anything runs — including
// before the -list early exit: bad -format values, -out without -format
// json, non-positive -scale/-queries, negative sample rates, unknown
// experiment ids and -trace-sample/-hold without -metrics-addr all fail
// fast with exit code 2 and a clear error.
//
// Observability: -metrics-addr starts an HTTP listener serving
// Prometheus text format at /metrics, expvar JSON at /debug/vars and
// sampled query traces at /debug/traces while experiments run;
// -trace-sample R traces one query in R (default 1) and -hold keeps the
// listener up after the experiments finish so the endpoints can be
// scraped interactively.
//
// Machine-readable results: -format json prints JSON tables; -out DIR
// additionally writes one BENCH_<id>.json artifact per experiment (CI
// uploads these from the bench-smoke job).
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"pimmine/internal/exp"
	"pimmine/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main minus the process exit, so tests can drive the full flag
// surface and assert exit codes: 0 success, 1 runtime failure, 2 usage
// error. Every usage error — bad flag, bad combination, unknown id —
// must exit non-zero even when combined with -list, so CI scripts can
// trust `pimbench ... && next-step`.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("pimbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	scale := fs.Int("scale", 2000, "generated rows per dataset (full-scale N still drives Theorem 4)")
	queries := fs.Int("queries", 5, "query batch size for kNN experiments")
	seed := fs.Int64("seed", 1, "generation seed")
	full := fs.Bool("full", false, "run the expensive sweeps (Table 7 k up to 1024)")
	shards := fs.Int("shards", 8, "max shard count for the ext-serve sweep")
	recall := fs.Float64("recall", 0.95, "target recall for the ext-route approximate mode, in (0, 1]")
	nodes := fs.Int("nodes", 8, "max node count for the ext-cluster sweep (1,2,4,… up to this)")
	replicas := fs.Int("replicas", 2, "ext-cluster replication factor (must not exceed -nodes)")
	chaos := fs.Int64("chaos", 42, "seed for the ext-cluster mid-sweep node kill")
	format := fs.String("format", "text", "output format: text|markdown|csv|json")
	outDir := fs.String("out", "", "also write one BENCH_<id>.json artifact per experiment into this directory")
	metricsAddr := fs.String("metrics-addr", "", "serve /metrics, /debug/vars and /debug/traces on this address (e.g. :9090)")
	traceSample := fs.Int("trace-sample", 1, "with -metrics-addr: trace one query in N (0 disables tracing)")
	hold := fs.Duration("hold", 0, "with -metrics-addr: keep serving for this long after experiments finish")
	churn := fs.Bool("churn", false, "run the mutable-engine churn workloads (shorthand for the ext-churn and ext-durable experiment ids)")
	list := fs.Bool("list", false, "list experiment ids and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	ids := fs.Args()
	if *churn {
		ids = append(ids, "ext-churn", "ext-durable")
	}
	if len(ids) == 0 {
		ids = exp.IDs()
	}
	// Validate before the -list early exit: `pimbench -list -scale 0`
	// must fail like any other bad invocation, not silently succeed.
	if err := validateFlags(*scale, *queries, *shards, *recall, *nodes, *replicas, *format, *outDir, *metricsAddr, *traceSample, *hold, ids); err != nil {
		fmt.Fprintln(stderr, "pimbench:", err)
		return 2
	}

	if *list {
		fmt.Fprintln(stdout, strings.Join(exp.IDs(), "\n"))
		return 0
	}

	suite := exp.NewSuite()
	suite.ScaleN = *scale
	suite.Queries = *queries
	suite.Seed = *seed
	suite.Full = *full
	suite.Shards = *shards
	suite.Recall = *recall
	suite.Nodes = *nodes
	suite.Replicas = *replicas
	suite.ChaosSeed = *chaos

	var observer *obs.Observer
	if *metricsAddr != "" {
		observer = obs.New(obs.Config{SampleRate: *traceSample})
		suite.Obs = observer
		srv := &http.Server{Addr: *metricsAddr, Handler: observer.Handler()}
		go func() {
			if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintf(stderr, "pimbench: metrics server: %v\n", err)
				os.Exit(1)
			}
		}()
		fmt.Fprintf(stderr, "pimbench: observability on http://%s (/metrics /debug/vars /debug/traces)\n", *metricsAddr)
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintln(stderr, "pimbench:", err)
			return 1
		}
	}

	for _, id := range ids {
		runner := exp.Registry[id]
		start := time.Now()
		tbl, err := runner(suite)
		if err != nil {
			fmt.Fprintf(stderr, "pimbench: %s: %v\n", id, err)
			return 1
		}
		out, err := tbl.Render(*format)
		if err != nil {
			fmt.Fprintln(stderr, "pimbench:", err)
			return 2
		}
		fmt.Fprint(stdout, out)
		if *format == "text" {
			fmt.Fprintf(stdout, "(wall clock %.1fs)\n", time.Since(start).Seconds())
		}
		fmt.Fprintln(stdout)
		if *outDir != "" {
			js, err := tbl.JSON()
			if err != nil {
				fmt.Fprintln(stderr, "pimbench:", err)
				return 2
			}
			path := filepath.Join(*outDir, "BENCH_"+id+".json")
			if err := os.WriteFile(path, []byte(js), 0o644); err != nil {
				fmt.Fprintln(stderr, "pimbench:", err)
				return 1
			}
			fmt.Fprintf(stderr, "pimbench: wrote %s\n", path)
		}
	}
	if *metricsAddr != "" && *hold > 0 {
		fmt.Fprintf(stderr, "pimbench: holding metrics server for %s\n", *hold)
		time.Sleep(*hold)
	}
	return 0
}

// validateFlags rejects bad flag combinations up front, before any
// experiment spends time running, so a long batch never dies halfway on
// something a startup check could have caught.
func validateFlags(scale, queries, shards int, recall float64, nodes, replicas int, format, outDir, metricsAddr string, traceSample int, hold time.Duration, ids []string) error {
	if scale <= 0 {
		return fmt.Errorf("-scale must be positive, got %d", scale)
	}
	if queries <= 0 {
		return fmt.Errorf("-queries must be positive, got %d", queries)
	}
	if shards < 1 {
		return fmt.Errorf("-shards must be at least 1, got %d", shards)
	}
	if recall <= 0 || recall > 1 {
		return fmt.Errorf("-recall must be in (0, 1], got %v", recall)
	}
	if nodes < 1 {
		return fmt.Errorf("-nodes must be at least 1, got %d", nodes)
	}
	if replicas < 1 {
		return fmt.Errorf("-replicas must be at least 1, got %d", replicas)
	}
	if replicas > nodes {
		return fmt.Errorf("-replicas %d exceeds -nodes %d", replicas, nodes)
	}
	switch format {
	case "text", "markdown", "csv", "json":
	default:
		return fmt.Errorf("unknown -format %q (want text, markdown, csv or json)", format)
	}
	if outDir != "" && format != "json" {
		return fmt.Errorf("-out writes JSON artifacts and requires -format json, got -format %s", format)
	}
	if traceSample < 0 {
		return fmt.Errorf("-trace-sample must be non-negative, got %d", traceSample)
	}
	if metricsAddr == "" {
		if traceSample != 1 {
			return fmt.Errorf("-trace-sample has no effect without -metrics-addr")
		}
		if hold != 0 {
			return fmt.Errorf("-hold has no effect without -metrics-addr")
		}
	}
	if hold < 0 {
		return fmt.Errorf("-hold must be non-negative, got %s", hold)
	}
	for _, id := range ids {
		if _, ok := exp.Registry[id]; !ok {
			return fmt.Errorf("unknown experiment %q (try -list)", id)
		}
	}
	return nil
}
