package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunExitCodes pins the CLI contract: every usage error exits 2 —
// including ones combined with -list, which used to return before
// validation and exit 0 on bad flags — and -list itself exits 0 with
// the full experiment registry on stdout.
func TestRunExitCodes(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"list ok", []string{"-list"}, 0},
		{"unknown flag", []string{"-no-such-flag"}, 2},
		{"bad scale", []string{"-scale", "0", "ext-overload"}, 2},
		{"bad scale with list", []string{"-list", "-scale", "0"}, 2},
		{"bad format with list", []string{"-list", "-format", "bogus"}, 2},
		{"bad format", []string{"-format", "bogus", "ext-serve-net"}, 2},
		{"out without json", []string{"-out", t.TempDir(), "ext-serve-net"}, 2},
		{"unknown id", []string{"no-such-experiment"}, 2},
		{"trace-sample without metrics", []string{"-trace-sample", "4", "ext-overload"}, 2},
		{"hold without metrics", []string{"-hold", "5s", "ext-overload"}, 2},
		{"negative queries", []string{"-queries", "-1", "table1"}, 2},
		{"zero nodes", []string{"-nodes", "0", "ext-cluster"}, 2},
		{"negative replicas", []string{"-replicas", "-1", "ext-cluster"}, 2},
		{"replicas exceed nodes", []string{"-nodes", "2", "-replicas", "3", "ext-cluster"}, 2},
		{"replicas exceed nodes with list", []string{"-list", "-nodes", "2", "-replicas", "3"}, 2},
	}
	for _, tc := range cases {
		var stdout, stderr bytes.Buffer
		if got := run(tc.args, &stdout, &stderr); got != tc.want {
			t.Errorf("%s: run(%v) = %d, want %d (stderr: %s)", tc.name, tc.args, got, tc.want, stderr.String())
		}
		if tc.want != 0 && stderr.Len() == 0 {
			t.Errorf("%s: usage error with empty stderr", tc.name)
		}
	}
}

// TestRunListShowsAllExperiments keeps -list as the discovery surface:
// the network-serving and overload sweeps must be registered.
func TestRunListShowsAllExperiments(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if got := run([]string{"-list"}, &stdout, &stderr); got != 0 {
		t.Fatalf("run(-list) = %d: %s", got, stderr.String())
	}
	for _, id := range []string{"ext-serve-net", "ext-overload", "ext-serve", "ext-cluster", "table1"} {
		if !strings.Contains(stdout.String(), id) {
			t.Errorf("-list output missing %q", id)
		}
	}
}
