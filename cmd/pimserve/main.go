// Command pimserve exposes the sharded query engine over the network:
// an HTTP/1.1 + cleartext-HTTP/2 (h2c) JSON server with per-tenant
// token-bucket quotas, weighted-fair queueing, typed status codes and
// graceful drain on SIGINT/SIGTERM (in-flight requests complete; new
// arrivals get 503 so a fronting load balancer fails over cleanly).
//
// Usage:
//
//	pimserve [-addr :8080] [-dataset MSD] [-n 20000] [-shards S]
//	         [-variant standard] [-tenants hot:3:100:200,cold:1:10]
//
// Endpoints:
//
//	POST /v1/search        one kNN query            → JSON
//	POST /v1/search/batch  many queries             → streaming NDJSON
//	GET  /v1/info          engine shape (dims, caps)
//	GET  /healthz          200 serving / 503 draining
//
// -tenants provisions quotas and weights as name:weight:rate:burst
// (weight, rate and burst optional; rate 0 = unlimited). Unknown
// tenants are served with weight 1 and no quota. -metrics-addr serves
// /metrics, /debug/vars and /debug/traces on a side listener.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"pimmine/internal/arch"
	"pimmine/internal/core"
	"pimmine/internal/dataset"
	"pimmine/internal/netserve"
	"pimmine/internal/obs"
	"pimmine/internal/pim"
	"pimmine/internal/quant"
	"pimmine/internal/resilience"
	"pimmine/internal/serve"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main minus the process exit, so tests can drive the full flag
// surface and assert exit codes.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("pimserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", ":8080", "listen address for the query API")
	dsName := fs.String("dataset", "MSD", "Table 6 dataset family to generate and serve")
	n := fs.Int("n", 20000, "generated rows")
	seed := fs.Int64("seed", 1, "generation seed")
	shards := fs.Int("shards", 0, "shard count (0 = GOMAXPROCS)")
	workers := fs.Int("workers", 0, "engine worker width (0 = GOMAXPROCS)")
	variant := fs.String("variant", "standard", "per-shard searcher variant (see -list-variants)")
	listVariants := fs.Bool("list-variants", false, "list searcher variants and exit")
	queryTimeout := fs.Duration("query-timeout", 0, "per-query engine deadline (0 = none)")
	resilient := fs.Bool("resilient", true, "engage admission control, shedding, breakers and retry budget")
	tenantsSpec := fs.String("tenants", "", "tenant provisioning: name:weight:rate:burst,... (rate in qps, 0 = unlimited)")
	slots := fs.Int("slots", 0, "fair-queue concurrency (0 = worker width)")
	maxQueue := fs.Int("max-queue", netserve.DefaultMaxQueue, "per-tenant fair-queue backlog bound")
	maxK := fs.Int("max-k", netserve.DefaultMaxK, "largest k a request may ask for")
	maxBatch := fs.Int("max-batch", netserve.DefaultMaxBatch, "largest batch a request may carry")
	metricsAddr := fs.String("metrics-addr", "", "serve /metrics, /debug/vars and /debug/traces on this side address")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "bound on graceful drain after SIGTERM")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *listVariants {
		for _, v := range serve.Variants() {
			fmt.Fprintln(stdout, v)
		}
		return 0
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "pimserve: unexpected arguments %q\n", fs.Args())
		return 2
	}
	tenants, err := parseTenants(*tenantsSpec)
	if err != nil {
		fmt.Fprintln(stderr, "pimserve:", err)
		return 2
	}
	if *n <= 0 {
		fmt.Fprintf(stderr, "pimserve: -n must be positive, got %d\n", *n)
		return 2
	}
	if *maxQueue < 1 || *maxK < 1 || *maxBatch < 1 {
		fmt.Fprintln(stderr, "pimserve: -max-queue, -max-k and -max-batch must be at least 1")
		return 2
	}

	prof, err := dataset.ByName(*dsName)
	if err != nil {
		fmt.Fprintln(stderr, "pimserve:", err)
		return 2
	}
	fmt.Fprintf(stderr, "pimserve: generating %s n=%d seed=%d\n", *dsName, *n, *seed)
	ds := dataset.Generate(prof, *n, *seed)

	opts := serve.Options{
		Shards:       *shards,
		Workers:      *workers,
		Variant:      serve.Variant(*variant),
		QueryTimeout: *queryTimeout,
	}
	if strings.HasSuffix(*variant, "-pim") {
		fw, err := core.New(arch.Default(), quant.DefaultAlpha, pim.ModeExact)
		if err != nil {
			fmt.Fprintln(stderr, "pimserve:", err)
			return 1
		}
		opts.Framework = fw
	}
	var observer *obs.Observer
	if *metricsAddr != "" {
		observer = obs.New(obs.Config{SampleRate: 64})
		opts.Obs = observer
	}
	if *resilient {
		eff := *workers
		if eff <= 0 {
			eff = runtime.GOMAXPROCS(0)
		}
		cfg := resilience.Default(eff)
		opts.Resilience = &cfg
	}
	eng, err := serve.New(ds.X, opts)
	if err != nil {
		fmt.Fprintln(stderr, "pimserve:", err)
		return 1
	}

	srv, err := netserve.New(netserve.Options{
		Engine:   eng,
		Tenants:  tenants,
		Slots:    *slots,
		MaxQueue: *maxQueue,
		MaxK:     *maxK,
		MaxBatch: *maxBatch,
		Obs:      observer,
	})
	if err != nil {
		fmt.Fprintln(stderr, "pimserve:", err)
		return 1
	}

	if *metricsAddr != "" {
		msrv := &http.Server{Addr: *metricsAddr, Handler: observer.Handler()}
		go func() {
			if err := msrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintf(stderr, "pimserve: metrics server: %v\n", err)
			}
		}()
		fmt.Fprintf(stderr, "pimserve: observability on http://%s\n", *metricsAddr)
	}

	httpSrv := srv.NewHTTPServer(*addr)
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(stderr, "pimserve: serving %s (dims=%d shards=%d variant=%s) on %s\n",
		*dsName, eng.Dims(), eng.NumShards(), *variant, *addr)

	select {
	case err := <-errc:
		fmt.Fprintln(stderr, "pimserve:", err)
		return 1
	case <-ctx.Done():
	}
	// Graceful drain: flip the 503 flag and complete in-flight work, then
	// close the listeners. Bounded so a wedged client cannot hold the
	// process hostage past -drain-timeout.
	fmt.Fprintln(stderr, "pimserve: draining")
	drained := make(chan error, 1)
	go func() { drained <- srv.Drain() }()
	select {
	case err := <-drained:
		if err != nil {
			fmt.Fprintln(stderr, "pimserve: drain:", err)
		}
	case <-time.After(*drainTimeout):
		fmt.Fprintln(stderr, "pimserve: drain timeout; exiting with requests in flight")
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = httpSrv.Shutdown(shutCtx)
	fmt.Fprintln(stderr, "pimserve: bye")
	return 0
}

// parseTenants parses name:weight:rate:burst comma-separated specs;
// weight, rate and burst may be omitted from the right.
func parseTenants(spec string) ([]netserve.TenantConfig, error) {
	if spec == "" {
		return nil, nil
	}
	var out []netserve.TenantConfig
	for _, item := range strings.Split(spec, ",") {
		parts := strings.Split(item, ":")
		if parts[0] == "" {
			return nil, fmt.Errorf("-tenants entry %q has no name", item)
		}
		if len(parts) > 4 {
			return nil, fmt.Errorf("-tenants entry %q has more than name:weight:rate:burst", item)
		}
		tc := netserve.TenantConfig{Name: parts[0]}
		fields := []*float64{&tc.Weight, &tc.Rate, &tc.Burst}
		for i, p := range parts[1:] {
			if p == "" {
				continue
			}
			v, err := strconv.ParseFloat(p, 64)
			if err != nil {
				return nil, fmt.Errorf("-tenants entry %q field %d: %v", item, i+1, err)
			}
			*fields[i] = v
		}
		out = append(out, tc)
	}
	return out, nil
}
