package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunExitCodes pins pimserve's usage contract: bad flags and bad
// tenant specs exit 2 before any dataset is generated; -list-variants
// exits 0 with the variant registry.
func TestRunExitCodes(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"list variants", []string{"-list-variants"}, 0},
		{"unknown flag", []string{"-no-such-flag"}, 2},
		{"positional junk", []string{"serve", "now"}, 2},
		{"bad n", []string{"-n", "0"}, 2},
		{"bad max-k", []string{"-max-k", "0"}, 2},
		{"tenant no name", []string{"-tenants", ":2:10"}, 2},
		{"tenant too many fields", []string{"-tenants", "a:1:2:3:4"}, 2},
		{"tenant bad number", []string{"-tenants", "a:fast"}, 2},
	}
	for _, tc := range cases {
		var stdout, stderr bytes.Buffer
		if got := run(tc.args, &stdout, &stderr); got != tc.want {
			t.Errorf("%s: run(%v) = %d, want %d (stderr: %s)", tc.name, tc.args, got, tc.want, stderr.String())
		}
	}
}

// TestParseTenants pins the name:weight:rate:burst grammar including
// right-side omission.
func TestParseTenants(t *testing.T) {
	got, err := parseTenants("hot:3:100:200,cold:1:10,free")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d tenants, want 3", len(got))
	}
	if got[0].Name != "hot" || got[0].Weight != 3 || got[0].Rate != 100 || got[0].Burst != 200 {
		t.Errorf("hot = %+v", got[0])
	}
	if got[1].Name != "cold" || got[1].Weight != 1 || got[1].Rate != 10 || got[1].Burst != 0 {
		t.Errorf("cold = %+v", got[1])
	}
	if got[2].Name != "free" || got[2].Weight != 0 || got[2].Rate != 0 {
		t.Errorf("free = %+v", got[2])
	}
	if _, err := parseTenants("a:1,,b:2"); err == nil || !strings.Contains(err.Error(), "no name") {
		t.Errorf("empty entry err = %v", err)
	}
}

// TestRunListVariantsOutput keeps -list-variants as the discovery
// surface for per-shard searchers.
func TestRunListVariantsOutput(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if got := run([]string{"-list-variants"}, &stdout, &stderr); got != 0 {
		t.Fatalf("run(-list-variants) = %d: %s", got, stderr.String())
	}
	if !strings.Contains(stdout.String(), "standard") {
		t.Errorf("variant list missing %q: %s", "standard", stdout.String())
	}
}
