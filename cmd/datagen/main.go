// Command datagen inspects the synthetic Table 6 dataset generators:
// it prints per-profile statistics (shape, value range, cluster balance,
// segment-statistic informativeness) and can dump a generated dataset as
// CSV for external tooling.
//
// Usage:
//
//	datagen                     # statistics for every profile
//	datagen -dataset MSD -n 100 -csv   # dump 100 MSD-like rows as CSV
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"

	"pimmine/internal/dataset"
	"pimmine/internal/vec"
)

func main() {
	dsName := flag.String("dataset", "", "profile to inspect (default: all)")
	n := flag.Int("n", 1000, "rows to generate")
	seed := flag.Int64("seed", 1, "generation seed")
	csv := flag.Bool("csv", false, "dump generated rows as CSV to stdout")
	flag.Parse()

	profiles := dataset.Profiles
	if *dsName != "" {
		p, err := dataset.ByName(*dsName)
		if err != nil {
			fmt.Fprintln(os.Stderr, "datagen:", err)
			os.Exit(1)
		}
		profiles = []dataset.Profile{p}
	}

	for _, p := range profiles {
		rows := *n
		if p.D >= 2048 && rows > 250 {
			rows = 250
		}
		ds := dataset.Generate(p, rows, *seed)
		if *csv {
			dump(ds)
			continue
		}
		describe(ds)
	}
}

func describe(ds *dataset.Dataset) {
	p := ds.Profile
	counts := make([]int, p.Clusters)
	for _, l := range ds.Labels {
		counts[l]++
	}
	minC, maxC := ds.X.N, 0
	for _, c := range counts {
		if c < minC {
			minC = c
		}
		if c > maxC {
			maxC = c
		}
	}
	// Segment-structure ratio: between-segment spread vs within-segment
	// noise, the quantity that drives LB_FNN pruning power.
	segs := 16
	for p.D%segs != 0 {
		segs--
	}
	var between, within float64
	for i := 0; i < ds.X.N; i++ {
		mu, sigma, err := vec.SegmentStats(ds.X.Row(i), segs)
		if err == nil {
			between += vec.Std(mu)
			within += vec.Mean(sigma)
		}
	}
	ratio := 0.0
	if within > 0 {
		between /= float64(ds.X.N)
		within /= float64(ds.X.N)
		ratio = between / within
	}
	fmt.Printf("%-9s fullN=%-8d d=%-5d generated=%-6d clusters=%d (sizes %d..%d) corr=%.2f segRatio=%.2f\n",
		p.Name, p.FullN, p.D, ds.X.N, p.Clusters, minC, maxC, p.Correlation, ratio)
}

func dump(ds *dataset.Dataset) {
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	for i := 0; i < ds.X.N; i++ {
		row := ds.X.Row(i)
		for j, v := range row {
			if j > 0 {
				w.WriteByte(',')
			}
			w.WriteString(strconv.FormatFloat(v, 'g', 8, 64))
		}
		fmt.Fprintf(w, ",%d\n", ds.Labels[i])
	}
}
