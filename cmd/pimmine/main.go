// Command pimmine runs the library's mining tasks over CSV data, with or
// without the PIM acceleration path.
//
//	pimmine search   -data data.csv -query q.csv -k 10 [-pim]
//	pimmine cluster  -data data.csv -k 8 -algo Yinyang [-pim]
//	pimmine dbscan   -data data.csv -eps 0.3 -minpts 4 [-pim]
//	pimmine outliers -data data.csv -top 5 -k 10 [-pim]
//	pimmine motifs   -series series.csv -w 64 [-pim]
//	pimmine join     -data inner.csv -query outer.csv -k 5 [-pim]
//
// CSV rows are comma-separated float values (one object per line; a
// trailing integer label column from cmd/datagen is tolerated and
// ignored). Values are min-max normalized into [0,1] — the range the
// PIM quantizer requires — before processing; this affine map preserves
// nearest-neighbor and clustering structure. Every command reports the
// mining result plus the modeled time under the paper's Table 5
// architecture.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"pimmine"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "search":
		err = runSearch(args)
	case "cluster":
		err = runCluster(args)
	case "dbscan":
		err = runDBSCAN(args)
	case "outliers":
		err = runOutliers(args)
	case "motifs":
		err = runMotifs(args)
	case "join":
		err = runJoin(args)
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "pimmine:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: pimmine <search|cluster|dbscan|outliers|motifs|join> [flags]")
	os.Exit(2)
}

// loadCSV reads a matrix of floats; rows with a trailing integer label
// (cmd/datagen's format) keep only the float columns.
func loadCSV(path string, dropLabel bool) (*pimmine.Matrix, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var rows [][]float64
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	for ln := 1; sc.Scan(); ln++ {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, ",")
		if dropLabel && len(fields) > 1 {
			fields = fields[:len(fields)-1]
		}
		row := make([]float64, len(fields))
		for i, fv := range fields {
			v, err := strconv.ParseFloat(strings.TrimSpace(fv), 64)
			if err != nil {
				return nil, fmt.Errorf("%s:%d: column %d: %w", path, ln, i+1, err)
			}
			row[i] = v
		}
		rows = append(rows, row)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	m, err := fromRows(rows)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return m, nil
}

func fromRows(rows [][]float64) (*pimmine.Matrix, error) {
	if len(rows) == 0 {
		return nil, fmt.Errorf("no data rows")
	}
	d := len(rows[0])
	m := &pimmine.Matrix{N: len(rows), D: d, Data: make([]float64, len(rows)*d)}
	for i, r := range rows {
		if len(r) != d {
			return nil, fmt.Errorf("row %d has %d columns, want %d", i+1, len(r), d)
		}
		copy(m.Data[i*d:(i+1)*d], r)
	}
	return m, nil
}

// normalize min-max maps one or more matrices into [0,1] with a shared
// transform (so queries land in the data's space).
func normalize(ms ...*pimmine.Matrix) {
	lo, hi := ms[0].Data[0], ms[0].Data[0]
	for _, m := range ms {
		for _, v := range m.Data {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	span := hi - lo
	if span == 0 {
		span = 1
	}
	for _, m := range ms {
		for i, v := range m.Data {
			x := (v - lo) / span
			if x < 0 {
				x = 0
			} else if x > 1 {
				x = 1
			}
			m.Data[i] = x
		}
	}
}

func report(cfg pimmine.Config, meter *pimmine.Meter, what string) {
	_, t := cfg.TimeMeter(meter)
	fmt.Printf("modeled time (%s): %.3f ms\n", what, t.Total()/1e6)
}

func runSearch(args []string) error {
	fs := flag.NewFlagSet("search", flag.ExitOnError)
	dataPath := fs.String("data", "", "dataset CSV")
	queryPath := fs.String("query", "", "query CSV")
	k := fs.Int("k", 10, "neighbors")
	usePIM := fs.Bool("pim", false, "use the PIM-accelerated framework")
	_ = fs.Parse(args)
	if *dataPath == "" || *queryPath == "" {
		return fmt.Errorf("search needs -data and -query")
	}
	data, err := loadCSV(*dataPath, true)
	if err != nil {
		return err
	}
	queries, err := loadCSV(*queryPath, true)
	if err != nil {
		return err
	}
	normalize(data, queries)
	cfg := pimmine.DefaultConfig()
	meter := pimmine.NewMeter()
	var searcher pimmine.KNNSearcher = pimmine.NewExactKNN(data)
	if *usePIM {
		fw, err := pimmine.NewFramework(cfg, pimmine.DefaultAlpha)
		if err != nil {
			return err
		}
		acc, err := fw.AccelerateKNN(data, pimmine.KNNOptions{K: *k, Pilot: queries})
		if err != nil {
			return err
		}
		fmt.Printf("plan: %s (s=%d)\n", acc.Plan, acc.S)
		searcher = acc.Optimized
	}
	for qi := 0; qi < queries.N; qi++ {
		nn := searcher.Search(queries.Row(qi), *k, meter)
		fmt.Printf("query %d:", qi)
		for _, n := range nn {
			fmt.Printf(" %d(%.4f)", n.Index, n.Dist)
		}
		fmt.Println()
	}
	report(cfg, meter, searcher.Name())
	return nil
}

func runCluster(args []string) error {
	fs := flag.NewFlagSet("cluster", flag.ExitOnError)
	dataPath := fs.String("data", "", "dataset CSV")
	k := fs.Int("k", 8, "clusters")
	algo := fs.String("algo", "Yinyang", "Standard|Elkan|Hamerly|Drake|Yinyang")
	iters := fs.Int("iters", 50, "max iterations")
	seed := fs.Int64("seed", 1, "init seed")
	usePIM := fs.Bool("pim", false, "use the PIM-assisted variant")
	_ = fs.Parse(args)
	if *dataPath == "" {
		return fmt.Errorf("cluster needs -data")
	}
	data, err := loadCSV(*dataPath, true)
	if err != nil {
		return err
	}
	normalize(data)
	cfg := pimmine.DefaultConfig()
	fw, err := pimmine.NewFramework(cfg, pimmine.DefaultAlpha)
	if err != nil {
		return err
	}
	acc, err := fw.AccelerateKMeans(data, pimmine.KMeansVariant(*algo), pimmine.KMeansOptions{
		K: *k, MaxIters: *iters, Seed: *seed,
	})
	if err != nil {
		return err
	}
	alg := acc.Baseline
	if *usePIM {
		alg = acc.PIM
	}
	initial, err := pimmine.KMeansInitCenters(data, *k, *seed)
	if err != nil {
		return err
	}
	meter := pimmine.NewMeter()
	res := alg.Run(initial, *iters, meter)
	sizes := make([]int, *k)
	for _, a := range res.Assign {
		sizes[a]++
	}
	fmt.Printf("%s: %d iterations (converged=%v), SSE=%.4f, cluster sizes %v\n",
		alg.Name(), res.Iterations, res.Converged, res.SSE, sizes)
	report(cfg, meter, alg.Name())
	return nil
}

func runOutliers(args []string) error {
	fs := flag.NewFlagSet("outliers", flag.ExitOnError)
	dataPath := fs.String("data", "", "dataset CSV")
	top := fs.Int("top", 5, "outliers to report")
	k := fs.Int("k", 10, "k for the kNN-distance score")
	usePIM := fs.Bool("pim", false, "use the PIM-optimized detector")
	_ = fs.Parse(args)
	if *dataPath == "" {
		return fmt.Errorf("outliers needs -data")
	}
	data, err := loadCSV(*dataPath, true)
	if err != nil {
		return err
	}
	normalize(data)
	cfg := pimmine.DefaultConfig()
	det := pimmine.NewOutlierDetector(data)
	if *usePIM {
		q, err := pimmine.NewQuantizer(pimmine.DefaultAlpha)
		if err != nil {
			return err
		}
		eng, err := pimmine.NewEngine(cfg)
		if err != nil {
			return err
		}
		if det, err = pimmine.NewOutlierDetectorPIM(eng, data, q, data.N); err != nil {
			return err
		}
	}
	meter := pimmine.NewMeter()
	out, err := det.TopN(*top, *k, meter)
	if err != nil {
		return err
	}
	for rank, o := range out {
		fmt.Printf("#%d: row %d (kNN distance %.4f)\n", rank+1, o.Index, o.Score)
	}
	report(cfg, meter, det.Name())
	return nil
}

func runMotifs(args []string) error {
	fs := flag.NewFlagSet("motifs", flag.ExitOnError)
	seriesPath := fs.String("series", "", "single-column CSV time series")
	w := fs.Int("w", 64, "window length")
	k := fs.Int("top", 1, "motifs to report")
	usePIM := fs.Bool("pim", false, "use the PIM-optimized finder")
	_ = fs.Parse(args)
	if *seriesPath == "" {
		return fmt.Errorf("motifs needs -series")
	}
	m, err := loadCSV(*seriesPath, false)
	if err != nil {
		return err
	}
	series := make([]float64, 0, m.N*m.D)
	series = append(series, m.Data...) // accept one value per line or per cell
	windows, _, err := pimmine.MotifWindows(series, *w)
	if err != nil {
		return err
	}
	cfg := pimmine.DefaultConfig()
	finder := pimmine.NewMotifFinder(windows)
	if *usePIM {
		q, err := pimmine.NewQuantizer(pimmine.DefaultAlpha)
		if err != nil {
			return err
		}
		eng, err := pimmine.NewEngine(cfg)
		if err != nil {
			return err
		}
		if finder, err = pimmine.NewMotifFinderPIM(eng, windows, q, windows.N); err != nil {
			return err
		}
	}
	meter := pimmine.NewMeter()
	motifs, err := finder.TopK(*k, meter)
	if err != nil {
		return err
	}
	for rank, mo := range motifs {
		fmt.Printf("#%d: offsets (%d, %d), distance %.4f\n", rank+1, mo.I, mo.J, mo.Dist)
	}
	report(cfg, meter, finder.Name())
	return nil
}

func runJoin(args []string) error {
	fs := flag.NewFlagSet("join", flag.ExitOnError)
	innerPath := fs.String("data", "", "inner relation CSV")
	outerPath := fs.String("query", "", "outer relation CSV")
	k := fs.Int("k", 5, "neighbors per outer row (kNN join)")
	eps := fs.Float64("eps", 0, "if > 0, run the ε range join instead")
	usePIM := fs.Bool("pim", false, "use the PIM-optimized joiner")
	_ = fs.Parse(args)
	if *innerPath == "" || *outerPath == "" {
		return fmt.Errorf("join needs -data (inner) and -query (outer)")
	}
	inner, err := loadCSV(*innerPath, true)
	if err != nil {
		return err
	}
	outer, err := loadCSV(*outerPath, true)
	if err != nil {
		return err
	}
	normalize(inner, outer)
	cfg := pimmine.DefaultConfig()
	joiner := pimmine.NewJoiner(inner)
	if *usePIM {
		q, err := pimmine.NewQuantizer(pimmine.DefaultAlpha)
		if err != nil {
			return err
		}
		eng, err := pimmine.NewEngine(cfg)
		if err != nil {
			return err
		}
		if joiner, err = pimmine.NewJoinerPIM(eng, inner, q, inner.N); err != nil {
			return err
		}
	}
	meter := pimmine.NewMeter()
	if *eps > 0 {
		pairs, err := joiner.Eps(outer, *eps, false, meter)
		if err != nil {
			return err
		}
		fmt.Printf("%d pairs within eps=%.4f\n", len(pairs), *eps)
		for i, p := range pairs {
			if i == 20 {
				fmt.Printf("... (%d more)\n", len(pairs)-20)
				break
			}
			fmt.Printf("  (%d, %d) dist²=%.4f\n", p.R, p.S, p.DistSq)
		}
	} else {
		res, err := joiner.KNN(outer, *k, false, meter)
		if err != nil {
			return err
		}
		for i, nn := range res {
			fmt.Printf("outer %d:", i)
			for _, n := range nn {
				fmt.Printf(" %d(%.4f)", n.Index, n.Dist)
			}
			fmt.Println()
		}
	}
	report(cfg, meter, joiner.Name())
	return nil
}

func runDBSCAN(args []string) error {
	fs := flag.NewFlagSet("dbscan", flag.ExitOnError)
	dataPath := fs.String("data", "", "dataset CSV")
	eps := fs.Float64("eps", 0.3, "neighborhood radius (after [0,1] normalization)")
	minPts := fs.Int("minpts", 4, "density threshold")
	usePIM := fs.Bool("pim", false, "use the PIM-optimized range queries")
	_ = fs.Parse(args)
	if *dataPath == "" {
		return fmt.Errorf("dbscan needs -data")
	}
	data, err := loadCSV(*dataPath, true)
	if err != nil {
		return err
	}
	normalize(data)
	cfg := pimmine.DefaultConfig()
	c := pimmine.NewDBSCAN(data)
	if *usePIM {
		q, err := pimmine.NewQuantizer(pimmine.DefaultAlpha)
		if err != nil {
			return err
		}
		eng, err := pimmine.NewEngine(cfg)
		if err != nil {
			return err
		}
		if c, err = pimmine.NewDBSCANPIM(eng, data, q, data.N); err != nil {
			return err
		}
	}
	meter := pimmine.NewMeter()
	res, err := c.Run(*eps, *minPts, meter)
	if err != nil {
		return err
	}
	noise := 0
	for _, l := range res.Labels {
		if l < 0 {
			noise++
		}
	}
	fmt.Printf("%s: %d clusters, %d core points, %d noise points\n",
		c.Name(), res.Clusters, res.CorePoints, noise)
	report(cfg, meter, c.Name())
	return nil
}
