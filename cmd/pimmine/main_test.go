package main

import (
	"os"
	"path/filepath"
	"testing"

	"pimmine"
)

func writeTemp(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "data.csv")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadCSV(t *testing.T) {
	path := writeTemp(t, "1.5,2.5,3\n# comment\n\n4,5,6\n")
	m, err := loadCSV(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if m.N != 2 || m.D != 3 || m.Row(1)[2] != 6 {
		t.Fatalf("loaded %dx%d, row1=%v", m.N, m.D, m.Row(1))
	}
}

func TestLoadCSVDropLabel(t *testing.T) {
	path := writeTemp(t, "1,2,7\n3,4,9\n")
	m, err := loadCSV(path, true)
	if err != nil {
		t.Fatal(err)
	}
	if m.D != 2 {
		t.Fatalf("label column not dropped: d=%d", m.D)
	}
}

func TestLoadCSVErrors(t *testing.T) {
	if _, err := loadCSV(filepath.Join(t.TempDir(), "missing.csv"), false); err == nil {
		t.Fatal("missing file must error")
	}
	if _, err := loadCSV(writeTemp(t, "1,notanumber\n"), false); err == nil {
		t.Fatal("bad float must error")
	}
	if _, err := loadCSV(writeTemp(t, "1,2\n3\n"), false); err == nil {
		t.Fatal("ragged rows must error")
	}
	if _, err := loadCSV(writeTemp(t, "# only comments\n"), false); err == nil {
		t.Fatal("empty data must error")
	}
}

func TestNormalizeSharedTransform(t *testing.T) {
	a := &pimmine.Matrix{N: 1, D: 2, Data: []float64{0, 10}}
	b := &pimmine.Matrix{N: 1, D: 2, Data: []float64{5, 20}}
	normalize(a, b)
	// Global range is [0,20]; 5 → 0.25, 20 → clamped 1.
	if a.Data[0] != 0 || a.Data[1] != 0.5 {
		t.Fatalf("a = %v", a.Data)
	}
	if b.Data[0] != 0.25 || b.Data[1] != 1 {
		t.Fatalf("b = %v", b.Data)
	}
	for _, m := range []*pimmine.Matrix{a, b} {
		for _, v := range m.Data {
			if v < 0 || v > 1 {
				t.Fatalf("value %v outside [0,1]", v)
			}
		}
	}
	// Constant data must not divide by zero.
	c := &pimmine.Matrix{N: 1, D: 2, Data: []float64{3, 3}}
	normalize(c)
}

func TestRunSearchEndToEnd(t *testing.T) {
	data := writeTemp(t, "0,0,0\n1,1,1\n0.1,0.1,0.1\n0.9,0.9,0.9\n")
	query := filepath.Join(t.TempDir(), "q.csv")
	if err := os.WriteFile(query, []byte("0.05,0.05,0.05\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runSearch([]string{"-data", data, "-query", query, "-k", "2"}); err != nil {
		t.Fatal(err)
	}
	if err := runSearch([]string{"-data", data}); err == nil {
		t.Fatal("missing -query must error")
	}
}

func TestRunClusterEndToEnd(t *testing.T) {
	rows := ""
	for i := 0; i < 40; i++ {
		if i%2 == 0 {
			rows += "0.1,0.1,0.1,0.1\n"
		} else {
			rows += "0.9,0.9,0.9,0.9\n"
		}
	}
	data := writeTemp(t, rows)
	if err := runCluster([]string{"-data", data, "-k", "2", "-algo", "Standard"}); err != nil {
		t.Fatal(err)
	}
	if err := runCluster([]string{"-data", data, "-k", "2", "-algo", "nope"}); err == nil {
		t.Fatal("unknown algorithm must error")
	}
}
