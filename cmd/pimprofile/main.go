// Command pimprofile profiles one mining algorithm on one dataset in the
// style of §IV: per-function and per-hardware-component breakdown plus the
// Eq. 2 PIM-oracle estimate.
//
// Usage:
//
//	pimprofile -task knn  -dataset MSD      -algo FNN    [-k 10]
//	pimprofile -task kmeans -dataset NUS-WIDE -algo Yinyang [-k 64]
package main

import (
	"flag"
	"fmt"
	"os"

	"pimmine/internal/arch"
	"pimmine/internal/dataset"
	"pimmine/internal/kmeans"
	"pimmine/internal/knn"
	"pimmine/internal/profile"
)

func main() {
	task := flag.String("task", "knn", "knn or kmeans")
	dsName := flag.String("dataset", "MSD", "Table 6 dataset name")
	algo := flag.String("algo", "FNN", "knn: Standard|OST|SM|FNN; kmeans: Standard|Elkan|Drake|Yinyang")
	k := flag.Int("k", 0, "neighbors (knn, default 10) or clusters (kmeans, default 64)")
	n := flag.Int("n", 2000, "generated dataset rows")
	queries := flag.Int("queries", 5, "query batch (knn)")
	iters := flag.Int("iters", 5, "max iterations (kmeans)")
	seed := flag.Int64("seed", 1, "generation seed")
	flag.Parse()

	prof, err := dataset.ByName(*dsName)
	if err != nil {
		fatal(err)
	}
	rows := *n
	if prof.D >= 2048 {
		rows = *n / 4
	}
	ds := dataset.Generate(prof, rows, *seed)
	cfg := arch.Default()
	meter := arch.NewMeter()

	switch *task {
	case "knn":
		kk := *k
		if kk == 0 {
			kk = 10
		}
		var s knn.Searcher
		switch *algo {
		case "Standard":
			s = knn.NewStandard(ds.X)
		case "OST":
			s, err = knn.NewOST(ds.X, ds.X.D/2)
		case "SM":
			s, err = knn.NewSM(ds.X, pickSegs(ds.X.D))
		case "FNN":
			s, err = knn.NewFNN(ds.X)
		default:
			fatal(fmt.Errorf("unknown knn algorithm %q", *algo))
		}
		if err != nil {
			fatal(err)
		}
		qs := ds.Queries(*queries, *seed+100)
		for qi := 0; qi < qs.N; qi++ {
			s.Search(qs.Row(qi), kk, meter)
		}
	case "kmeans":
		kk := *k
		if kk == 0 {
			kk = 64
		}
		var a kmeans.Algorithm
		switch *algo {
		case "Standard":
			a = kmeans.NewLloyd(ds.X)
		case "Elkan":
			a = kmeans.NewElkan(ds.X)
		case "Drake":
			a = kmeans.NewDrake(ds.X)
		case "Yinyang":
			a = kmeans.NewYinyang(ds.X)
		default:
			fatal(fmt.Errorf("unknown kmeans algorithm %q", *algo))
		}
		initial, err := kmeans.InitCenters(ds.X, kk, *seed)
		if err != nil {
			fatal(err)
		}
		a.Run(initial, *iters, meter)
	default:
		fatal(fmt.Errorf("unknown task %q", *task))
	}

	r := profile.New(*algo, cfg, meter)
	fmt.Print(r.String())
	fmt.Printf("bottleneck: %s (PIM-aware: %v)\n", r.Bottleneck(), profile.PIMAware(r.Bottleneck()))
	fmt.Printf("PIM-oracle (Eq. 2): %.3f ms (potential %.1fx)\n",
		r.PIMOracleAuto()/1e6, r.Total.Total()/maxF(r.PIMOracleAuto(), 1))
}

// pickSegs returns a divisor of d near d/16 for the SM baseline.
func pickSegs(d int) int {
	best, gap := 1, float64(d)
	for c := 1; c <= d; c++ {
		if d%c != 0 {
			continue
		}
		g := abs(float64(c) - float64(d)/16)
		if g < gap {
			best, gap = c, g
		}
	}
	return best
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pimprofile:", err)
	os.Exit(1)
}
