package eval_test

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"pimmine/internal/arch"
	"pimmine/internal/dataset"
	"pimmine/internal/dbscan"
	"pimmine/internal/delta"
	"pimmine/internal/join"
	"pimmine/internal/kmeans"
	"pimmine/internal/knn"
	"pimmine/internal/motif"
	"pimmine/internal/outlier"
	"pimmine/internal/quant"
	"pimmine/internal/vec"
)

// The delta differential golden layer: each mining task's dataset is
// pushed through the mutable store (internal/delta) under a scripted
// churn of inserts, updates and deletes — with a compaction in the
// middle — and the store's view of the final dataset must be
// BYTE-IDENTICAL to applying the same script directly. Every task then
// runs on both copies and must render identically; the rendering is also
// pinned to a committed golden (regenerate with -update), so the mutable
// path is held to the same bit-exactness bar as the host/PIM/fault
// triple in golden_test.go.

// deltaChurn replays a deterministic script of ~n/2 mutations against
// both a delta.Store and a plain map of live rows, compacting halfway
// through. It returns the store plus the independently-applied final
// dataset (rows in ascending global id order) and its id directory.
func deltaChurn(t *testing.T, base *vec.Matrix, donors *vec.Matrix, seed int64) (*delta.Store, *vec.Matrix, []int) {
	t.Helper()
	st, err := delta.New(base.Clone(), delta.Options{
		Factory: func(m *vec.Matrix, _ int) (knn.Searcher, error) { return knn.NewStandard(m), nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(st.Close)

	rng := rand.New(rand.NewSource(seed))
	live := make(map[int][]float64, base.N)
	ids := make([]int, 0, base.N)
	for i := 0; i < base.N; i++ {
		live[i] = append([]float64(nil), base.Row(i)...)
		ids = append(ids, i)
	}
	donor := func() []float64 {
		return append([]float64(nil), donors.Row(rng.Intn(donors.N))...)
	}
	pickLive := func() int { return ids[rng.Intn(len(ids))] }
	removeID := func(id int) {
		for i, v := range ids {
			if v == id {
				ids[i] = ids[len(ids)-1]
				ids = ids[:len(ids)-1]
				return
			}
		}
	}
	ops := base.N / 2
	for i := 0; i < ops; i++ {
		if i == ops/2 {
			if err := st.Compact(arch.NewMeter()); err != nil {
				t.Fatalf("mid-script compact: %v", err)
			}
		}
		switch rng.Intn(4) {
		case 0, 1:
			row := donor()
			id, err := st.Insert(row)
			if err != nil {
				t.Fatalf("insert op %d: %v", i, err)
			}
			live[id] = row
			ids = append(ids, id)
		case 2:
			id := pickLive()
			row := donor()
			if err := st.Update(id, row); err != nil {
				t.Fatalf("update op %d id %d: %v", i, id, err)
			}
			live[id] = row
		default:
			if len(ids) < 2 {
				continue
			}
			id := pickLive()
			if err := st.Delete(id); err != nil {
				t.Fatalf("delete op %d id %d: %v", i, id, err)
			}
			delete(live, id)
			removeID(id)
		}
	}

	sort.Ints(ids)
	final := vec.NewMatrix(len(ids), base.D)
	for i, id := range ids {
		copy(final.Row(i), live[id])
	}

	// The core differential: the store's materialized live rows must be
	// byte-identical (hex floats, same order, same ids) to the script
	// applied by hand.
	got, gotIDs := st.Materialize()
	if got.N != final.N {
		t.Fatalf("materialized %d rows, script produced %d", got.N, final.N)
	}
	for i := range ids {
		if gotIDs[i] != ids[i] {
			t.Fatalf("materialized id[%d] = %d, script has %d", i, gotIDs[i], ids[i])
		}
		for c := 0; c < final.D; c++ {
			if g, w := got.Row(i)[c], final.Row(i)[c]; g != w {
				t.Fatalf("materialized row %d (id %d) dim %d: %s != %s",
					i, ids[i], c, hexF(g), hexF(w))
			}
		}
	}
	return st, final, ids
}

// assertDeltaGolden checks the delta-engine rendering against the
// fresh-engine rendering and pins it to testdata/delta_<name>.golden.
func assertDeltaGolden(t *testing.T, name, deltaOut, freshOut string) {
	t.Helper()
	if deltaOut != freshOut {
		t.Fatalf("delta_%s: mutable-engine output diverges from fresh engine over the equivalent final dataset\n%s",
			name, firstDiff(freshOut, deltaOut))
	}
	path := filepath.Join("testdata", "delta_"+name+".golden")
	if *update {
		if err := os.WriteFile(path, []byte(deltaOut), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("delta_%s: missing golden file (regenerate with -update): %v", name, err)
	}
	if string(want) != deltaOut {
		t.Fatalf("delta_%s: output drifted from committed golden file\n%s", name, firstDiff(string(want), deltaOut))
	}
}

func donorDataset(t *testing.T, n, d, clusters int, spread float64) *dataset.Dataset {
	t.Helper()
	prof := dataset.Profile{Name: "donor", FullN: n, D: d, Clusters: clusters, Correlation: 0.4, Spread: spread}
	return dataset.Generate(prof, n, 77)
}

// TestGoldenDeltaKNN is the strongest of the set: queries are served
// LIVE through the delta store (non-empty delta buffer and tombstones,
// post-mid-script-compaction) and must render byte-identically — in
// global ids — to both a fresh host engine and a fresh FNN-PIM engine
// built over the equivalent final dataset.
func TestGoldenDeltaKNN(t *testing.T) {
	ds := goldenDataset(t, 400, 32, 5, 0.15)
	donors := donorDataset(t, 200, 32, 5, 0.15)
	queries := ds.Queries(5, 43)
	const k = 10

	st, final, ids := deltaChurn(t, ds.X, donors.X, 101)

	var live strings.Builder
	for qi := 0; qi < queries.N; qi++ {
		nn, err := st.Search(queries.Row(qi), k, arch.NewMeter())
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range nn {
			fmt.Fprintf(&live, "q%d i=%d d=%s\n", qi, n.Index, hexF(n.Dist))
		}
	}
	// Fresh engines answer in positions of the final matrix; remap to
	// global ids through the (monotone) id directory.
	remap := func(s knn.Searcher) string {
		var b strings.Builder
		for qi := 0; qi < queries.N; qi++ {
			for _, n := range s.Search(queries.Row(qi), k, arch.NewMeter()) {
				fmt.Fprintf(&b, "q%d i=%d d=%s\n", qi, ids[n.Index], hexF(n.Dist))
			}
		}
		return b.String()
	}
	host := remap(knn.NewStandard(final))
	pimS, err := knn.NewFNNPIM(cleanEngine(t), final, goldenQuant(t), final.N)
	if err != nil {
		t.Fatal(err)
	}
	if pimOut := remap(pimS); pimOut != host {
		t.Fatalf("delta_knn: fresh PIM engine diverges from fresh host engine\n%s", firstDiff(host, pimOut))
	}
	assertDeltaGolden(t, "knn", live.String(), host)
}

func TestGoldenDeltaKMeans(t *testing.T) {
	ds := goldenDataset(t, 300, 24, 6, 0.15)
	donors := donorDataset(t, 150, 24, 6, 0.15)
	st, final, _ := deltaChurn(t, ds.X, donors.X, 102)
	mat, _ := st.Materialize()

	initial, err := kmeans.InitCenters(final, 6, 7)
	if err != nil {
		t.Fatal(err)
	}
	assertDeltaGolden(t, "kmeans",
		renderKMeans(kmeans.NewLloyd(mat), initial),
		renderKMeans(kmeans.NewLloyd(final), initial))
}

func TestGoldenDeltaDBSCAN(t *testing.T) {
	ds := goldenDataset(t, 300, 16, 4, 0.03)
	donors := donorDataset(t, 150, 16, 4, 0.03)
	st, final, _ := deltaChurn(t, ds.X, donors.X, 103)
	mat, _ := st.Materialize()
	assertDeltaGolden(t, "dbscan",
		renderDBSCAN(t, dbscan.New(mat), 0.25, 4),
		renderDBSCAN(t, dbscan.New(final), 0.25, 4))
}

func TestGoldenDeltaOutlier(t *testing.T) {
	ds := goldenDataset(t, 350, 24, 5, 0.2)
	donors := donorDataset(t, 150, 24, 5, 0.2)
	st, final, _ := deltaChurn(t, ds.X, donors.X, 104)
	mat, _ := st.Materialize()
	assertDeltaGolden(t, "outlier",
		renderOutlier(t, outlier.NewDetector(mat), 10, 5),
		renderOutlier(t, outlier.NewDetector(final), 10, 5))
}

func TestGoldenDeltaMotif(t *testing.T) {
	// Same planted-pair series as TestGoldenMotif; windows are min-max
	// normalized into the store's [0,1] domain (a positive affine map, so
	// motif ranks are unchanged), and donor windows come from a second
	// walk pushed through the SAME transform.
	const n, w = 600, 16
	rng := rand.New(rand.NewSource(11))
	series := make([]float64, n)
	v := 0.0
	for i := range series {
		v += rng.NormFloat64()
		series[i] = v
	}
	for i := 0; i < w; i++ {
		p := 10 * math.Sin(float64(i)/3)
		series[100+i] = p
		series[400+i] = p + rng.NormFloat64()*0.01
	}
	windows, _, err := motif.Windows(series, w)
	if err != nil {
		t.Fatal(err)
	}
	tf, err := quant.Normalize(windows)
	if err != nil {
		t.Fatal(err)
	}
	drng := rand.New(rand.NewSource(12))
	dseries := make([]float64, n/2)
	v = 0.0
	for i := range dseries {
		v += drng.NormFloat64()
		dseries[i] = v
	}
	donors, _, err := motif.Windows(dseries, w)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < donors.N; i++ {
		tf.ApplyVec(donors.Row(i), donors.Row(i))
	}

	st, final, _ := deltaChurn(t, windows, donors, 105)
	mat, _ := st.Materialize()
	assertDeltaGolden(t, "motif",
		renderMotif(t, motif.NewFinder(mat), 3),
		renderMotif(t, motif.NewFinder(final), 3))
}

func TestGoldenDeltaJoin(t *testing.T) {
	ds := goldenDataset(t, 240, 16, 4, 0.2)
	s := ds.X.Slice(0, 220)
	r := ds.X.Slice(220, 240)
	donors := donorDataset(t, 100, 16, 4, 0.2)
	const eps = 0.22

	st, final, _ := deltaChurn(t, s, donors.X, 106)
	mat, _ := st.Materialize()
	assertDeltaGolden(t, "join",
		renderJoin(t, join.NewJoiner(mat), r, eps),
		renderJoin(t, join.NewJoiner(final), r, eps))
}
