// Package eval provides result-quality metrics: recall@k for kNN answers
// and the adjusted Rand index for clusterings. The paper's central claim
// is that its PIM usage preserves exactness where naive in-PIM
// approximation (GraphR-style fixed-point computation, §II-A) does not;
// these metrics quantify that comparison (see the ext-approx experiment).
package eval

import (
	"fmt"

	"pimmine/internal/vec"
)

// RecallAtK returns |got ∩ truth| / |truth| over neighbor index sets.
// Ties in the underlying distances mean different exact answers can be
// equally correct, so callers should pass truth from the same
// deterministic tie-breaking scan the library uses.
func RecallAtK(got, truth []vec.Neighbor) (float64, error) {
	if len(truth) == 0 {
		return 0, fmt.Errorf("eval: empty ground truth")
	}
	set := make(map[int]bool, len(truth))
	for _, n := range truth {
		set[n.Index] = true
	}
	hit := 0
	for _, n := range got {
		if set[n.Index] {
			hit++
		}
	}
	return float64(hit) / float64(len(truth)), nil
}

// MeanRecall averages RecallAtK over query batches.
func MeanRecall(got, truth [][]vec.Neighbor) (float64, error) {
	if len(got) != len(truth) {
		return 0, fmt.Errorf("eval: %d result sets vs %d truth sets", len(got), len(truth))
	}
	if len(got) == 0 {
		return 0, fmt.Errorf("eval: no queries")
	}
	var sum float64
	for i := range got {
		r, err := RecallAtK(got[i], truth[i])
		if err != nil {
			return 0, err
		}
		sum += r
	}
	return sum / float64(len(got)), nil
}

// AdjustedRandIndex compares two clusterings of the same points: 1 for
// identical partitions (up to label permutation), ~0 for independent
// ones. Implements the standard Hubert–Arabie formulation.
func AdjustedRandIndex(a, b []int) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("eval: ARI needs equal lengths (%d vs %d)", len(a), len(b))
	}
	n := len(a)
	if n == 0 {
		return 0, fmt.Errorf("eval: ARI needs at least one point")
	}
	// Contingency table.
	table := map[[2]int]int{}
	rowSum := map[int]int{}
	colSum := map[int]int{}
	for i := 0; i < n; i++ {
		table[[2]int{a[i], b[i]}]++
		rowSum[a[i]]++
		colSum[b[i]]++
	}
	choose2 := func(x int) float64 { return float64(x) * float64(x-1) / 2 }
	var sumTable, sumRows, sumCols float64
	for _, v := range table {
		sumTable += choose2(v)
	}
	for _, v := range rowSum {
		sumRows += choose2(v)
	}
	for _, v := range colSum {
		sumCols += choose2(v)
	}
	total := choose2(n)
	expected := sumRows * sumCols / total
	maxIndex := (sumRows + sumCols) / 2
	if maxIndex == expected {
		// Degenerate partitions (e.g. all points in one cluster on both
		// sides): identical by convention.
		return 1, nil
	}
	return (sumTable - expected) / (maxIndex - expected), nil
}
