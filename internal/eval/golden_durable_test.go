package eval_test

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pimmine/internal/arch"
	"pimmine/internal/dbscan"
	"pimmine/internal/join"
	"pimmine/internal/kmeans"
	"pimmine/internal/knn"
	"pimmine/internal/motif"
	"pimmine/internal/outlier"
	"pimmine/internal/serve"
	"pimmine/internal/vec"
)

// The crash/recover differential golden layer: a scripted churn workload
// runs through a DURABLE mutable engine, the process "dies" at a record
// boundary (the engine is abandoned without Close), and the engine
// recovered from the WAL directory must render byte-identically to the
// never-crashed engine — live sets, kNN transcripts, and all six mining
// tasks, pinned to committed durable_*.golden files. A companion test
// kills at EVERY record boundary (cheap live-set + periodic transcript
// checks), and a third pins a standing subscription's notification
// sequence to one-shot re-queries at each epoch.

// mutOp is one scripted mutation. The script is the single source of
// truth: both the reference and the durable run apply it verbatim, and
// insert ids are pre-assigned (the engine allocates sequentially, which
// applyOp asserts).
type mutOp struct {
	kind int // 0 insert, 1 update, 2 delete
	id   int
	vec  []float64
}

// genDurableScript builds a deterministic churn script over a base of
// baseN rows with donor vectors for inserts and updates.
func genDurableScript(baseN int, donors *vec.Matrix, seed int64, ops int) []mutOp {
	rng := rand.New(rand.NewSource(seed))
	live := make([]int, baseN)
	for i := range live {
		live[i] = i
	}
	nextID := baseN
	donor := func() []float64 {
		return append([]float64(nil), donors.Row(rng.Intn(donors.N))...)
	}
	var script []mutOp
	for i := 0; i < ops; i++ {
		switch rng.Intn(4) {
		case 0, 1:
			script = append(script, mutOp{kind: 0, id: nextID, vec: donor()})
			live = append(live, nextID)
			nextID++
		case 2:
			script = append(script, mutOp{kind: 1, id: live[rng.Intn(len(live))], vec: donor()})
		default:
			if len(live) < 2 {
				continue
			}
			at := rng.Intn(len(live))
			id := live[at]
			live[at] = live[len(live)-1]
			live = live[:len(live)-1]
			script = append(script, mutOp{kind: 2, id: id})
		}
	}
	return script
}

func applyOp(t *testing.T, e *serve.MutableEngine, op mutOp) {
	t.Helper()
	switch op.kind {
	case 0:
		id, err := e.Insert(op.vec)
		if err != nil {
			t.Fatal(err)
		}
		if id != op.id {
			t.Fatalf("insert assigned id %d, script pre-assigned %d", id, op.id)
		}
	case 1:
		if err := e.Update(op.id, op.vec); err != nil {
			t.Fatalf("update id %d: %v", op.id, err)
		}
	default:
		if err := e.Delete(op.id); err != nil {
			t.Fatalf("delete id %d: %v", op.id, err)
		}
	}
}

// requireSameLiveSet asserts two materialized live sets are
// byte-identical: same ids in the same order, same float bits.
func requireSameLiveSet(t *testing.T, phase string, gotM *vec.Matrix, gotIDs []int, wantM *vec.Matrix, wantIDs []int) {
	t.Helper()
	if len(gotIDs) != len(wantIDs) || gotM.N != wantM.N {
		t.Fatalf("%s: recovered %d live rows, never-crashed has %d", phase, gotM.N, wantM.N)
	}
	for i := range wantIDs {
		if gotIDs[i] != wantIDs[i] {
			t.Fatalf("%s: live id[%d] = %d, want %d", phase, i, gotIDs[i], wantIDs[i])
		}
		for c := 0; c < wantM.D; c++ {
			if g, w := gotM.Row(i)[c], wantM.Row(i)[c]; g != w {
				t.Fatalf("%s: row %d (id %d) dim %d: %s != %s", phase, i, wantIDs[i], c, hexF(g), hexF(w))
			}
		}
	}
}

// renderLiveKNN renders engine searches (global ids, hex distances).
func renderLiveKNN(t *testing.T, e *serve.MutableEngine, queries *vec.Matrix, k int) string {
	t.Helper()
	var b strings.Builder
	for qi := 0; qi < queries.N; qi++ {
		res, err := e.Search(context.Background(), queries.Row(qi), k)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range res.Neighbors {
			fmt.Fprintf(&b, "q%d i=%d d=%s\n", qi, n.Index, hexF(n.Dist))
		}
	}
	return b.String()
}

// assertDurableGolden checks the recovered rendering against the
// never-crashed rendering and pins it to testdata/durable_<name>.golden.
func assertDurableGolden(t *testing.T, name, recovered, reference string) {
	t.Helper()
	if recovered != reference {
		t.Fatalf("durable_%s: recovered engine diverges from the never-crashed engine\n%s",
			name, firstDiff(reference, recovered))
	}
	path := filepath.Join("testdata", "durable_"+name+".golden")
	if *update {
		if err := os.WriteFile(path, []byte(recovered), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("durable_%s: missing golden file (regenerate with -update): %v", name, err)
	}
	if string(want) != recovered {
		t.Fatalf("durable_%s: output drifted from committed golden file\n%s", name, firstDiff(string(want), recovered))
	}
}

func durableOpts(dir string, shards int) serve.MutableOptions {
	return serve.MutableOptions{
		Options:    serve.Options{Shards: shards, Workers: 2},
		MaxDelta:   1 << 20, // compaction is scripted, never auto
		Durability: serve.Durability{Dir: dir},
	}
}

// TestGoldenDurableKillEveryRecord kills at EVERY record boundary: after
// each applied mutation the directory is recovered into an independent
// engine whose live set must be byte-identical to the still-running
// original, with a periodic live-kNN transcript check. A mid-script
// checkpoint and compaction prove recovery composes with snapshot
// truncation and epoch folding.
func TestGoldenDurableKillEveryRecord(t *testing.T) {
	ds := goldenDataset(t, 120, 8, 4, 0.2)
	donors := donorDataset(t, 80, 8, 4, 0.2)
	script := genDurableScript(ds.X.N, donors.X, 201, 80)
	dir := t.TempDir()
	opts := durableOpts(dir, 3)
	e, err := serve.NewMutable(ds.X.Clone(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	queries := ds.Queries(2, 51)
	for i, op := range script {
		if i == len(script)/4 {
			if err := e.Compact(nil); err != nil {
				t.Fatal(err)
			}
		}
		if i == len(script)/2 {
			if err := e.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
		applyOp(t, e, op)
		// The WAL now ends exactly at this record: recover as if the
		// process died here.
		r, err := serve.RecoverMutable(opts)
		if err != nil {
			t.Fatalf("kill at record %d: %v", i+1, err)
		}
		gm, gids := r.Materialize()
		wm, wids := e.Materialize()
		requireSameLiveSet(t, fmt.Sprintf("kill at record %d", i+1), gm, gids, wm, wids)
		if i%7 == 0 {
			if got, want := renderLiveKNN(t, r, queries, 5), renderLiveKNN(t, e, queries, 5); got != want {
				t.Fatalf("kill at record %d: recovered kNN transcript diverges\n%s", i+1, firstDiff(want, got))
			}
		}
		if err := r.Close(); err != nil {
			t.Fatalf("kill at record %d: closing recovered engine: %v", i+1, err)
		}
	}
}

// TestGoldenDurableTasks is the six-task differential at a fixed kill
// point: churn (with a checkpoint and a compaction in flight) dies at a
// record boundary, and the recovered engine's kNN transcript plus the
// five remaining mining tasks over its materialized live set must match
// the never-crashed engine bit for bit — and the committed goldens.
func TestGoldenDurableTasks(t *testing.T) {
	ds := goldenDataset(t, 320, 24, 5, 0.15)
	donors := donorDataset(t, 150, 24, 5, 0.15)
	script := genDurableScript(ds.X.N, donors.X, 202, 160)
	dir := t.TempDir()
	opts := durableOpts(dir, 3)
	e, err := serve.NewMutable(ds.X.Clone(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	killAt := len(script) * 2 / 3
	for i, op := range script[:killAt] {
		if i == killAt/3 {
			if err := e.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
		if i == killAt/2 {
			if err := e.Compact(nil); err != nil {
				t.Fatal(err)
			}
		}
		applyOp(t, e, op)
	}
	// Crash: abandon e mid-life (it stays up as the never-crashed
	// reference), recover the directory into an independent engine.
	r, err := serve.RecoverMutable(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	wantMat, wantIDs := e.Materialize()
	mat, ids := r.Materialize()
	requireSameLiveSet(t, "fixed kill point", mat, ids, wantMat, wantIDs)

	// kNN live through the recovered shard stores — the strongest check,
	// and cross-pinned against a fresh searcher over the reference data.
	queries := ds.Queries(5, 43)
	const k = 10
	liveOut := renderLiveKNN(t, r, queries, k)
	var fresh strings.Builder
	fs := knn.NewStandard(wantMat)
	for qi := 0; qi < queries.N; qi++ {
		for _, n := range fs.Search(queries.Row(qi), k, arch.NewMeter()) {
			fmt.Fprintf(&fresh, "q%d i=%d d=%s\n", qi, wantIDs[n.Index], hexF(n.Dist))
		}
	}
	if liveOut != fresh.String() {
		t.Fatalf("durable_knn: recovered live search diverges from fresh engine over the reference live set\n%s",
			firstDiff(fresh.String(), liveOut))
	}
	assertDurableGolden(t, "knn", liveOut, renderLiveKNN(t, e, queries, k))

	initial, err := kmeans.InitCenters(wantMat, 6, 7)
	if err != nil {
		t.Fatal(err)
	}
	assertDurableGolden(t, "kmeans",
		renderKMeans(kmeans.NewLloyd(mat), initial),
		renderKMeans(kmeans.NewLloyd(wantMat), initial))
	assertDurableGolden(t, "dbscan",
		renderDBSCAN(t, dbscan.New(mat), 0.25, 4),
		renderDBSCAN(t, dbscan.New(wantMat), 0.25, 4))
	assertDurableGolden(t, "outlier",
		renderOutlier(t, outlier.NewDetector(mat), 10, 5),
		renderOutlier(t, outlier.NewDetector(wantMat), 10, 5))
	assertDurableGolden(t, "motif",
		renderMotif(t, motif.NewFinder(mat), 3),
		renderMotif(t, motif.NewFinder(wantMat), 3))
	probes := donors.X.Slice(0, 20)
	assertDurableGolden(t, "join",
		renderJoin(t, join.NewJoiner(mat), probes, 0.22),
		renderJoin(t, join.NewJoiner(wantMat), probes, 0.22))
}

// TestGoldenDurableStandingSequence pins the standing-query acceptance
// property on the engine: a kNN subscription maintained through a churn
// script must emit exactly the sequence of views a one-shot re-query
// after each mutation produces — same triggers, same bits — rendered to
// a committed golden.
func TestGoldenDurableStandingSequence(t *testing.T) {
	ds := goldenDataset(t, 150, 16, 4, 0.2)
	donors := donorDataset(t, 100, 16, 4, 0.2)
	script := genDurableScript(ds.X.N, donors.X, 203, 120)
	const k = 6
	q := ds.Queries(1, 61).Row(0)

	mkEngine := func() *serve.MutableEngine {
		e, err := serve.NewMutable(ds.X.Clone(), serve.MutableOptions{
			Options:        serve.Options{Shards: 2, Workers: 2},
			MaxDelta:       1 << 20,
			StandingBuffer: 4 * (len(script) + 1),
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { e.Close() })
		return e
	}
	renderView := func(nn []vec.Neighbor) string {
		var b strings.Builder
		for _, n := range nn {
			fmt.Fprintf(&b, " i=%d d=%s", n.Index, hexF(n.Dist))
		}
		return b.String()
	}

	// Engine A maintains the subscription incrementally.
	eA := mkEngine()
	sub, err := eA.SubscribeKNN(q, k)
	if err != nil {
		t.Fatal(err)
	}
	// Engine B answers one-shot re-queries after every mutation.
	eB := mkEngine()
	oneShot := func() []vec.Neighbor {
		res, err := eB.Search(context.Background(), q, k)
		if err != nil {
			t.Fatal(err)
		}
		return res.Neighbors
	}
	var reference strings.Builder
	last := oneShot()
	fmt.Fprintf(&reference, "init t=-1%s\n", renderView(last))
	changed := func(a, b []vec.Neighbor) bool {
		if len(a) != len(b) {
			return true
		}
		for i := range a {
			if a[i] != b[i] {
				return true
			}
		}
		return false
	}
	for _, op := range script {
		applyOp(t, eA, op)
		applyOp(t, eB, op)
		if now := oneShot(); changed(last, now) {
			fmt.Fprintf(&reference, "update t=%d%s\n", op.id, renderView(now))
			last = now
		}
	}
	eA.Unsubscribe(sub.ID())
	if sub.Dropped() != 0 {
		t.Fatalf("subscription dropped %d events with an ample buffer", sub.Dropped())
	}
	var got strings.Builder
	for ev := range sub.Events() {
		switch ev.Kind.String() {
		case "init":
			fmt.Fprintf(&got, "init t=%d%s\n", ev.Trigger, renderView(ev.Result))
		case "update":
			fmt.Fprintf(&got, "update t=%d%s\n", ev.Trigger, renderView(ev.Result))
		default:
			t.Fatalf("unexpected event kind %v on a kNN subscription", ev.Kind)
		}
	}
	assertDurableGolden(t, "standing", got.String(), reference.String())
}
