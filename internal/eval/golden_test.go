package eval_test

import (
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"pimmine/internal/arch"
	"pimmine/internal/dataset"
	"pimmine/internal/dbscan"
	"pimmine/internal/fault"
	"pimmine/internal/join"
	"pimmine/internal/kmeans"
	"pimmine/internal/knn"
	"pimmine/internal/motif"
	"pimmine/internal/outlier"
	"pimmine/internal/pim"
	"pimmine/internal/quant"
)

// The differential golden layer: every mining task runs three ways —
// host-exact, clean PIM, and fault-injected PIM — and all three must
// render to the same byte string, which is also pinned against a
// committed golden file so cross-machine / cross-version drift is caught.
// Floats are serialized as hex (strconv 'x'), so "equal" means
// bit-identical, not approximately close.
//
// Regenerate with: go test ./internal/eval -run Golden -update

var update = flag.Bool("update", false, "rewrite the golden files from the host-exact run")

// goldenFaultModel is aggressive enough to touch most dot products
// (stuck cells, drift, read noise, the odd dead crossbar) while staying
// within the bounded-fault envelope that keeps filter-and-refine exact.
func goldenFaultModel(seed int64) fault.Model {
	return fault.Model{
		Seed: seed, StuckAt0: 0.003, StuckAt1: 0.003,
		Drift: 0.006, DriftLevels: 2, ReadNoise: 4, CrossbarFail: 0.02,
	}
}

func cleanEngine(t *testing.T) *pim.Engine {
	t.Helper()
	eng, err := pim.NewEngine(arch.Default(), pim.ModeExact)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func faultyEngine(t *testing.T, seed int64) *pim.Engine {
	t.Helper()
	inj, err := fault.NewInjector(goldenFaultModel(seed), arch.Default().Crossbar)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := pim.NewFaultyEngine(arch.Default(), pim.ModeExact, inj)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func goldenQuant(t *testing.T) quant.Quantizer {
	t.Helper()
	q, err := quant.New(quant.DefaultAlpha)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func goldenDataset(t *testing.T, n, d, clusters int, spread float64) *dataset.Dataset {
	t.Helper()
	prof := dataset.Profile{Name: "golden", FullN: n, D: d, Clusters: clusters, Correlation: 0.4, Spread: spread}
	return dataset.Generate(prof, n, 42)
}

// hexF renders a float bit-exactly.
func hexF(v float64) string { return strconv.FormatFloat(v, 'x', -1, 64) }

func firstDiff(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("line %d:\n  a: %s\n  b: %s", i+1, al[i], bl[i])
		}
	}
	return fmt.Sprintf("lengths differ: %d vs %d lines", len(al), len(bl))
}

// assertTriple checks PIM and faulty-PIM renderings against the
// host-exact one, then pins the host rendering to the golden file.
func assertTriple(t *testing.T, name, host, clean, faulty string) {
	t.Helper()
	if clean != host {
		t.Fatalf("%s: clean PIM output diverges from host-exact path\n%s", name, firstDiff(host, clean))
	}
	if faulty != host {
		t.Fatalf("%s: fault-injected PIM output diverges from host-exact path\n%s", name, firstDiff(host, faulty))
	}
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(host), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%s: missing golden file (regenerate with -update): %v", name, err)
	}
	if string(want) != host {
		t.Fatalf("%s: output drifted from committed golden file\n%s", name, firstDiff(string(want), host))
	}
}

func TestGoldenKNN(t *testing.T) {
	ds := goldenDataset(t, 400, 32, 5, 0.15)
	queries := ds.Queries(5, 43)
	q := goldenQuant(t)
	const k = 10

	render := func(s knn.Searcher) string { return renderKNN(s, queries, k) }

	host := render(knn.NewStandard(ds.X))
	cs, err := knn.NewFNNPIM(cleanEngine(t), ds.X, q, ds.X.N)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := knn.NewFNNPIM(faultyEngine(t, 1), ds.X, q, ds.X.N)
	if err != nil {
		t.Fatal(err)
	}
	assertTriple(t, "knn", host, render(cs), render(fs))
}

func TestGoldenKMeans(t *testing.T) {
	ds := goldenDataset(t, 300, 24, 6, 0.15)
	q := goldenQuant(t)
	initial, err := kmeans.InitCenters(ds.X, 6, 7)
	if err != nil {
		t.Fatal(err)
	}

	render := func(a kmeans.Algorithm) string { return renderKMeans(a, initial) }

	host := render(kmeans.NewLloyd(ds.X))
	ca, err := kmeans.NewAssist(cleanEngine(t), ds.X, q, ds.X.N)
	if err != nil {
		t.Fatal(err)
	}
	fa, err := kmeans.NewAssist(faultyEngine(t, 2), ds.X, q, ds.X.N)
	if err != nil {
		t.Fatal(err)
	}
	assertTriple(t, "kmeans", host, render(kmeans.NewLloydPIM(ds.X, ca)), render(kmeans.NewLloydPIM(ds.X, fa)))
}

func TestGoldenDBSCAN(t *testing.T) {
	ds := goldenDataset(t, 300, 16, 4, 0.03)
	q := goldenQuant(t)

	render := func(c *dbscan.Clusterer) string { return renderDBSCAN(t, c, 0.25, 4) }

	host := render(dbscan.New(ds.X))
	cc, err := dbscan.NewPIM(cleanEngine(t), ds.X, q, ds.X.N)
	if err != nil {
		t.Fatal(err)
	}
	fc, err := dbscan.NewPIM(faultyEngine(t, 3), ds.X, q, ds.X.N)
	if err != nil {
		t.Fatal(err)
	}
	assertTriple(t, "dbscan", host, render(cc), render(fc))
}

func TestGoldenOutlier(t *testing.T) {
	ds := goldenDataset(t, 350, 24, 5, 0.2)
	q := goldenQuant(t)

	render := func(d *outlier.Detector) string { return renderOutlier(t, d, 10, 5) }

	host := render(outlier.NewDetector(ds.X))
	cd, err := outlier.NewDetectorPIM(cleanEngine(t), ds.X, q, ds.X.N)
	if err != nil {
		t.Fatal(err)
	}
	fd, err := outlier.NewDetectorPIM(faultyEngine(t, 4), ds.X, q, ds.X.N)
	if err != nil {
		t.Fatal(err)
	}
	assertTriple(t, "outlier", host, render(cd), render(fd))
}

func TestGoldenMotif(t *testing.T) {
	// Noisy random walk with a planted near-identical pattern pair.
	const n, w = 600, 16
	rng := rand.New(rand.NewSource(11))
	series := make([]float64, n)
	v := 0.0
	for i := range series {
		v += rng.NormFloat64()
		series[i] = v
	}
	for i := 0; i < w; i++ {
		p := 10 * math.Sin(float64(i)/3)
		series[100+i] = p
		series[400+i] = p + rng.NormFloat64()*0.01
	}
	windows, _, err := motif.Windows(series, w)
	if err != nil {
		t.Fatal(err)
	}
	q := goldenQuant(t)

	render := func(f *motif.Finder) string { return renderMotif(t, f, 3) }

	host := render(motif.NewFinder(windows))
	cf, err := motif.NewFinderPIM(cleanEngine(t), windows, q, windows.N)
	if err != nil {
		t.Fatal(err)
	}
	ff, err := motif.NewFinderPIM(faultyEngine(t, 5), windows, q, windows.N)
	if err != nil {
		t.Fatal(err)
	}
	assertTriple(t, "motif", host, render(cf), render(ff))
}

func TestGoldenJoin(t *testing.T) {
	ds := goldenDataset(t, 240, 16, 4, 0.2)
	s := ds.X.Slice(0, 220)
	r := ds.X.Slice(220, 240)
	q := goldenQuant(t)
	const eps = 0.22

	render := func(j *join.Joiner) string { return renderJoin(t, j, r, eps) }

	host := render(join.NewJoiner(s))
	cj, err := join.NewJoinerPIM(cleanEngine(t), s, q, s.N)
	if err != nil {
		t.Fatal(err)
	}
	fj, err := join.NewJoinerPIM(faultyEngine(t, 6), s, q, s.N)
	if err != nil {
		t.Fatal(err)
	}
	assertTriple(t, "join", host, render(cj), render(fj))
}
