package eval

import (
	"math"
	"math/rand"
	"testing"

	"pimmine/internal/vec"
)

func nb(idx ...int) []vec.Neighbor {
	out := make([]vec.Neighbor, len(idx))
	for i, x := range idx {
		out[i] = vec.Neighbor{Index: x}
	}
	return out
}

func TestRecallAtK(t *testing.T) {
	r, err := RecallAtK(nb(1, 2, 3), nb(1, 2, 3))
	if err != nil || r != 1 {
		t.Fatalf("perfect recall = %v, %v", r, err)
	}
	r, _ = RecallAtK(nb(1, 9, 8), nb(1, 2, 3))
	if math.Abs(r-1.0/3) > 1e-12 {
		t.Fatalf("recall = %v, want 1/3", r)
	}
	if _, err := RecallAtK(nb(1), nil); err == nil {
		t.Fatal("empty truth must be rejected")
	}
}

func TestMeanRecall(t *testing.T) {
	got := [][]vec.Neighbor{nb(1, 2), nb(3, 4)}
	truth := [][]vec.Neighbor{nb(1, 2), nb(3, 9)}
	r, err := MeanRecall(got, truth)
	if err != nil || math.Abs(r-0.75) > 1e-12 {
		t.Fatalf("mean recall = %v, %v", r, err)
	}
	if _, err := MeanRecall(got, truth[:1]); err == nil {
		t.Fatal("length mismatch must be rejected")
	}
}

func TestARIPerfectAndPermuted(t *testing.T) {
	a := []int{0, 0, 1, 1, 2, 2}
	r, err := AdjustedRandIndex(a, a)
	if err != nil || math.Abs(r-1) > 1e-12 {
		t.Fatalf("ARI(a,a) = %v, %v", r, err)
	}
	// Label permutation must not matter.
	b := []int{5, 5, 9, 9, 7, 7}
	r, _ = AdjustedRandIndex(a, b)
	if math.Abs(r-1) > 1e-12 {
		t.Fatalf("ARI under permutation = %v", r)
	}
}

func TestARIIndependentNearZero(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 2000
	a := make([]int, n)
	b := make([]int, n)
	for i := range a {
		a[i] = rng.Intn(5)
		b[i] = rng.Intn(5)
	}
	r, err := AdjustedRandIndex(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r) > 0.05 {
		t.Fatalf("ARI of independent clusterings = %v, want ≈0", r)
	}
}

func TestARIDegenerate(t *testing.T) {
	a := []int{1, 1, 1}
	r, err := AdjustedRandIndex(a, a)
	if err != nil || r != 1 {
		t.Fatalf("single-cluster ARI = %v, %v", r, err)
	}
	if _, err := AdjustedRandIndex(a, []int{1}); err == nil {
		t.Fatal("length mismatch must be rejected")
	}
	if _, err := AdjustedRandIndex(nil, nil); err == nil {
		t.Fatal("empty input must be rejected")
	}
}
