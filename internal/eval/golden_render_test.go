package eval_test

import (
	"fmt"
	"strings"
	"testing"

	"pimmine/internal/arch"
	"pimmine/internal/dbscan"
	"pimmine/internal/join"
	"pimmine/internal/kmeans"
	"pimmine/internal/knn"
	"pimmine/internal/motif"
	"pimmine/internal/outlier"
	"pimmine/internal/vec"
)

// The render helpers serialize each mining task's full result with
// bit-exact hex floats. Both golden layers build on them: the
// host/PIM/fault triple (golden_test.go) and the delta-engine
// differential over mutated datasets (golden_delta_test.go).

func renderKNN(s knn.Searcher, queries *vec.Matrix, k int) string {
	var b strings.Builder
	for qi := 0; qi < queries.N; qi++ {
		for _, n := range s.Search(queries.Row(qi), k, arch.NewMeter()) {
			fmt.Fprintf(&b, "q%d i=%d d=%s\n", qi, n.Index, hexF(n.Dist))
		}
	}
	return b.String()
}

func renderKMeans(a kmeans.Algorithm, initial *vec.Matrix) string {
	res := a.Run(initial, 50, arch.NewMeter())
	var b strings.Builder
	fmt.Fprintf(&b, "iterations=%d converged=%v sse=%s\n", res.Iterations, res.Converged, hexF(res.SSE))
	for i, c := range res.Assign {
		fmt.Fprintf(&b, "assign %d %d\n", i, c)
	}
	for ci := 0; ci < res.Centers.N; ci++ {
		row := res.Centers.Row(ci)
		parts := make([]string, len(row))
		for j, v := range row {
			parts[j] = hexF(v)
		}
		fmt.Fprintf(&b, "center %d %s\n", ci, strings.Join(parts, " "))
	}
	return b.String()
}

func renderDBSCAN(t *testing.T, c *dbscan.Clusterer, eps float64, minPts int) string {
	t.Helper()
	res, err := c.Run(eps, minPts, arch.NewMeter())
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "clusters=%d core=%d\n", res.Clusters, res.CorePoints)
	for i, l := range res.Labels {
		fmt.Fprintf(&b, "label %d %d\n", i, l)
	}
	return b.String()
}

func renderOutlier(t *testing.T, d *outlier.Detector, topN, k int) string {
	t.Helper()
	top, err := d.TopN(topN, k, arch.NewMeter())
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for _, o := range top {
		fmt.Fprintf(&b, "i=%d score=%s\n", o.Index, hexF(o.Score))
	}
	return b.String()
}

func renderMotif(t *testing.T, f *motif.Finder, topK int) string {
	t.Helper()
	top, err := f.TopK(topK, arch.NewMeter())
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for _, m := range top {
		fmt.Fprintf(&b, "i=%d j=%d d=%s\n", m.I, m.J, hexF(m.Dist))
	}
	return b.String()
}

func renderJoin(t *testing.T, j *join.Joiner, r *vec.Matrix, eps float64) string {
	t.Helper()
	pairs, err := j.Eps(r, eps, false, arch.NewMeter())
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for _, p := range pairs {
		fmt.Fprintf(&b, "r=%d s=%d d2=%s\n", p.R, p.S, hexF(p.DistSq))
	}
	return b.String()
}
