// Package bound implements the classical (host-side) distance bounds of
// Table 3 of the paper, used by the baseline kNN algorithms in the
// filter-and-refinement paradigm:
//
//	LB_OST  (Liaw et al., Pattern Recognition 2010)  — lower bound of ED²
//	LB_SM   (Yi & Faloutsos, VLDB 2000)              — lower bound of ED²
//	LB_FNN  (Hwang et al., CVPR 2012)                — lower bound of ED²
//	UB_part (Teflioudi et al., SIGMOD 2015 / LEMP)   — upper bound of p·q
//
// Each bound has an offline precomputation over the dataset (an *Index)
// and a cheap online evaluation against precomputed query features. All
// bounds are on the squared Euclidean distance, matching Table 2's
// definition of ED.
package bound

import (
	"fmt"
	"math"

	"pimmine/internal/vec"
)

// ---------------------------------------------------------------------------
// LB_OST: partial distance on a head prefix plus the squared difference of
// tail norms. For any split d0,
//
//	LB_OST(p,q) = Σ_{i≤d0}(pᵢ−qᵢ)² + (‖p_tail‖ − ‖q_tail‖)² ≤ ED(p,q)
//
// by the reverse triangle inequality applied to the tail subvectors.
// ---------------------------------------------------------------------------

// OSTIndex holds per-object tail norms for a fixed head length.
type OSTIndex struct {
	D0   int       // head length
	Tail []float64 // ‖p_tail‖ per object
	data *vec.Matrix
}

// BuildOST precomputes tail norms with head length d0 (0 < d0 < d).
func BuildOST(m *vec.Matrix, d0 int) (*OSTIndex, error) {
	if d0 <= 0 || d0 >= m.D {
		return nil, fmt.Errorf("bound: OST head length %d outside (0,%d)", d0, m.D)
	}
	ix := &OSTIndex{D0: d0, Tail: make([]float64, m.N), data: m}
	for i := 0; i < m.N; i++ {
		ix.Tail[i] = vec.Norm(m.Row(i)[d0:])
	}
	return ix, nil
}

// QueryTail returns ‖q_tail‖ for a query, computed once per query.
func (ix *OSTIndex) QueryTail(q []float64) float64 { return vec.Norm(q[ix.D0:]) }

// LB evaluates LB_OST between dataset object i and query q.
func (ix *OSTIndex) LB(i int, q []float64, qTail float64) float64 {
	p := ix.data.Row(i)
	var head float64
	for j := 0; j < ix.D0; j++ {
		d := p[j] - q[j]
		head += d * d
	}
	dt := ix.Tail[i] - qTail
	return head + dt*dt
}

// TransferDims reports how many operands must move from memory to evaluate
// the bound for one object: the d0 head values plus the tail norm.
func (ix *OSTIndex) TransferDims() int { return ix.D0 + 1 }

// ---------------------------------------------------------------------------
// LB_SM: segmented-mean bound. Splitting p into d′ segments of length l,
//
//	LB_SM(p,q) = l · Σ_{i≤d′} (µ(p̂ᵢ) − µ(q̂ᵢ))² ≤ ED(p,q)
//
// (each segment's squared deviation is at least l times the squared
// difference of means, by Jensen/Cauchy–Schwarz).
// ---------------------------------------------------------------------------

// SMIndex holds per-object segment means.
type SMIndex struct {
	Segs, L int
	Mu      *vec.Matrix // N × Segs
}

// BuildSM precomputes segment means with segs segments (d divisible).
func BuildSM(m *vec.Matrix, segs int) (*SMIndex, error) {
	if segs <= 0 || m.D%segs != 0 {
		return nil, fmt.Errorf("bound: cannot split %d dims into %d segments", m.D, segs)
	}
	ix := &SMIndex{Segs: segs, L: m.D / segs, Mu: vec.NewMatrix(m.N, segs)}
	for i := 0; i < m.N; i++ {
		mu, _, err := vec.SegmentStats(m.Row(i), segs)
		if err != nil {
			return nil, err
		}
		copy(ix.Mu.Row(i), mu)
	}
	return ix, nil
}

// QueryMu computes the query's segment means once per query.
func (ix *SMIndex) QueryMu(q []float64) ([]float64, error) {
	mu, _, err := vec.SegmentStats(q, ix.Segs)
	return mu, err
}

// QueryMuInto is QueryMu writing into a caller-owned buffer of len Segs —
// the allocation-free form the steady-state search paths use. The means
// are bit-identical to QueryMu's.
func (ix *SMIndex) QueryMuInto(q []float64, mu []float64) error {
	if len(q)%ix.Segs != 0 {
		return fmt.Errorf("bound: cannot split %d dims into %d segments", len(q), ix.Segs)
	}
	if len(mu) != ix.Segs {
		return fmt.Errorf("bound: mean buffer of %d, want %d", len(mu), ix.Segs)
	}
	l := len(q) / ix.Segs
	for i := 0; i < ix.Segs; i++ {
		mu[i] = vec.Mean(q[i*l : (i+1)*l])
	}
	return nil
}

// LB evaluates LB_SM between dataset object i and query segment means.
func (ix *SMIndex) LB(i int, qMu []float64) float64 {
	p := ix.Mu.Row(i)
	var s float64
	for j := range p {
		d := p[j] - qMu[j]
		s += d * d
	}
	return float64(ix.L) * s
}

// TransferDims reports operands moved per object to evaluate the bound.
func (ix *SMIndex) TransferDims() int { return ix.Segs }

// ---------------------------------------------------------------------------
// LB_FNN: segmented mean + standard deviation bound (nonlinear embedding),
//
//	LB_FNN(p,q) = l · Σ_{i≤d′} ((µ(p̂ᵢ)−µ(q̂ᵢ))² + (σ(p̂ᵢ)−σ(q̂ᵢ))²) ≤ ED(p,q)
//
// The FNN algorithm applies this bound at increasing granularities
// (paper: d/64, d/16, d/4 dims) to progressively prune candidates.
// ---------------------------------------------------------------------------

// FNNIndex holds per-object segment means and standard deviations at one
// granularity.
type FNNIndex struct {
	Segs, L   int
	Mu, Sigma *vec.Matrix // each N × Segs
}

// BuildFNN precomputes segment statistics with segs segments.
func BuildFNN(m *vec.Matrix, segs int) (*FNNIndex, error) {
	if segs <= 0 || m.D%segs != 0 {
		return nil, fmt.Errorf("bound: cannot split %d dims into %d segments", m.D, segs)
	}
	ix := &FNNIndex{Segs: segs, L: m.D / segs, Mu: vec.NewMatrix(m.N, segs), Sigma: vec.NewMatrix(m.N, segs)}
	for i := 0; i < m.N; i++ {
		mu, sigma, err := vec.SegmentStats(m.Row(i), segs)
		if err != nil {
			return nil, err
		}
		copy(ix.Mu.Row(i), mu)
		copy(ix.Sigma.Row(i), sigma)
	}
	return ix, nil
}

// QueryStats computes the query's segment statistics once per query.
func (ix *FNNIndex) QueryStats(q []float64) (mu, sigma []float64, err error) {
	return vec.SegmentStats(q, ix.Segs)
}

// QueryStatsInto is QueryStats writing into caller-owned buffers (both
// len Segs) — the allocation-free form the steady-state search paths use.
func (ix *FNNIndex) QueryStatsInto(q []float64, mu, sigma []float64) error {
	return vec.SegmentStatsInto(q, ix.Segs, mu, sigma)
}

// LB evaluates LB_FNN between dataset object i and query statistics.
func (ix *FNNIndex) LB(i int, qMu, qSigma []float64) float64 {
	pm, ps := ix.Mu.Row(i), ix.Sigma.Row(i)
	var s float64
	for j := range pm {
		dm := pm[j] - qMu[j]
		dsg := ps[j] - qSigma[j]
		s += dm*dm + dsg*dsg
	}
	return float64(ix.L) * s
}

// TransferDims reports operands moved per object to evaluate the bound
// (mean and σ per segment).
func (ix *FNNIndex) TransferDims() int { return 2 * ix.Segs }

// FNNLevels picks the paper's three cascade granularities d/64, d/16 and
// d/4, rounded to the nearest divisor of d (ties resolved upward) so the
// segmentation is exact. For MSD's d=420 this yields 7, 28, 105 — the
// granularities named in §VI-C.
func FNNLevels(d int) [3]int {
	return [3]int{
		nearestDivisor(d, float64(d)/64),
		nearestDivisor(d, float64(d)/16),
		nearestDivisor(d, float64(d)/4),
	}
}

// nearestDivisor returns the divisor of d closest to target (ties upward).
// d must be positive; 1 always divides d so a result always exists.
func nearestDivisor(d int, target float64) int {
	best, bestGap := 1, math.Abs(target-1)
	for c := 1; c <= d; c++ {
		if d%c != 0 {
			continue
		}
		gap := math.Abs(target - float64(c))
		if gap < bestGap || (gap == bestGap && c > best) {
			best, bestGap = c, gap
		}
	}
	return best
}

// ---------------------------------------------------------------------------
// UB_part: LEMP-style upper bound on the inner product,
//
//	UB_part(p,q) = Σ_{i≤d0} pᵢqᵢ + ‖p_tail‖·‖q_tail‖ ≥ p·q
//
// by Cauchy–Schwarz on the tail. Dividing by ‖p‖‖q‖ yields an upper bound
// on cosine similarity, used by the CS/PCC maximum-similarity searches.
// ---------------------------------------------------------------------------

// PartIndex holds per-object tail norms and full norms for UB_part.
type PartIndex struct {
	D0   int
	Tail []float64 // ‖p_tail‖ per object
	Norm []float64 // ‖p‖ per object
	data *vec.Matrix
}

// BuildPart precomputes UB_part features with head length d0.
func BuildPart(m *vec.Matrix, d0 int) (*PartIndex, error) {
	if d0 <= 0 || d0 >= m.D {
		return nil, fmt.Errorf("bound: UB_part head length %d outside (0,%d)", d0, m.D)
	}
	ix := &PartIndex{D0: d0, Tail: make([]float64, m.N), Norm: make([]float64, m.N), data: m}
	for i := 0; i < m.N; i++ {
		row := m.Row(i)
		ix.Tail[i] = vec.Norm(row[d0:])
		ix.Norm[i] = vec.Norm(row)
	}
	return ix, nil
}

// UBDot evaluates the upper bound on p·q for dataset object i.
func (ix *PartIndex) UBDot(i int, q []float64, qTail float64) float64 {
	p := ix.data.Row(i)
	var head float64
	for j := 0; j < ix.D0; j++ {
		head += p[j] * q[j]
	}
	return head + ix.Tail[i]*qTail
}

// QueryTail returns ‖q_tail‖ for the query.
func (ix *PartIndex) QueryTail(q []float64) float64 { return vec.Norm(q[ix.D0:]) }

// TransferDims reports operands moved per object to evaluate the bound.
func (ix *PartIndex) TransferDims() int { return ix.D0 + 2 }
