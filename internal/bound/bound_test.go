package bound

import (
	"math"
	"math/rand"
	"testing"

	"pimmine/internal/measure"
	"pimmine/internal/vec"
)

// randMatrix generates n×d values in [0,1].
func randMatrix(rng *rand.Rand, n, d int) *vec.Matrix {
	m := vec.NewMatrix(n, d)
	for i := range m.Data {
		m.Data[i] = rng.Float64()
	}
	return m
}

func TestBuildOSTValidation(t *testing.T) {
	t.Parallel()
	m := randMatrix(rand.New(rand.NewSource(1)), 4, 8)
	for _, bad := range []int{0, 8, -1} {
		if _, err := BuildOST(m, bad); err == nil {
			t.Errorf("BuildOST(d0=%d) must fail", bad)
		}
	}
	if _, err := BuildOST(m, 4); err != nil {
		t.Fatal(err)
	}
}

// Property: LB_OST(p,q) ≤ ED(p,q) for all head splits.
func TestOSTLowerBoundsED(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		d := 2 + rng.Intn(62)
		m := randMatrix(rng, 20, d)
		d0 := 1 + rng.Intn(d-1)
		ix, err := BuildOST(m, d0)
		if err != nil {
			t.Fatal(err)
		}
		q := randMatrix(rng, 1, d).Row(0)
		qTail := ix.QueryTail(q)
		for i := 0; i < m.N; i++ {
			lb := ix.LB(i, q, qTail)
			ed := measure.SqEuclidean(m.Row(i), q)
			if lb > ed+1e-9 {
				t.Fatalf("d=%d d0=%d obj=%d: LB_OST=%v > ED=%v", d, d0, i, lb, ed)
			}
		}
	}
}

// Property: LB_SM(p,q) ≤ ED(p,q).
func TestSMLowerBoundsED(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 30; trial++ {
		segs := 1 + rng.Intn(8)
		l := 1 + rng.Intn(8)
		d := segs * l
		m := randMatrix(rng, 20, d)
		ix, err := BuildSM(m, segs)
		if err != nil {
			t.Fatal(err)
		}
		q := randMatrix(rng, 1, d).Row(0)
		qMu, err := ix.QueryMu(q)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < m.N; i++ {
			lb := ix.LB(i, qMu)
			ed := measure.SqEuclidean(m.Row(i), q)
			if lb > ed+1e-9 {
				t.Fatalf("d=%d segs=%d obj=%d: LB_SM=%v > ED=%v", d, segs, i, lb, ed)
			}
		}
	}
}

// Property: LB_FNN(p,q) ≤ ED(p,q), and LB_FNN ≥ LB_SM at equal granularity
// (FNN adds the non-negative σ term).
func TestFNNLowerBoundsED(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 30; trial++ {
		segs := 1 + rng.Intn(8)
		l := 1 + rng.Intn(8)
		d := segs * l
		m := randMatrix(rng, 20, d)
		fnn, err := BuildFNN(m, segs)
		if err != nil {
			t.Fatal(err)
		}
		sm, err := BuildSM(m, segs)
		if err != nil {
			t.Fatal(err)
		}
		q := randMatrix(rng, 1, d).Row(0)
		qMu, qSigma, err := fnn.QueryStats(q)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < m.N; i++ {
			lb := fnn.LB(i, qMu, qSigma)
			ed := measure.SqEuclidean(m.Row(i), q)
			if lb > ed+1e-9 {
				t.Fatalf("d=%d segs=%d obj=%d: LB_FNN=%v > ED=%v", d, segs, i, lb, ed)
			}
			if smLB := sm.LB(i, qMu); lb < smLB-1e-9 {
				t.Fatalf("LB_FNN=%v < LB_SM=%v at equal granularity", lb, smLB)
			}
		}
	}
}

// Finer FNN granularity gives a tighter (or equal) bound on average; at
// full granularity (segs=d) the bound equals ED exactly.
func TestFNNFullGranularityIsExact(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(10))
	m := randMatrix(rng, 10, 16)
	ix, err := BuildFNN(m, 16)
	if err != nil {
		t.Fatal(err)
	}
	q := randMatrix(rng, 1, 16).Row(0)
	qMu, qSigma, _ := ix.QueryStats(q)
	for i := 0; i < m.N; i++ {
		lb := ix.LB(i, qMu, qSigma)
		ed := measure.SqEuclidean(m.Row(i), q)
		if math.Abs(lb-ed) > 1e-9 {
			t.Fatalf("segs=d: LB_FNN=%v != ED=%v", lb, ed)
		}
	}
}

func TestFNNLevels(t *testing.T) {
	t.Parallel()
	// MSD's d=420 must yield the paper's granularities 7, 28, 105.
	if got := FNNLevels(420); got != [3]int{7, 28, 105} {
		t.Fatalf("FNNLevels(420) = %v, want [7 28 105]", got)
	}
	// Levels are always divisors and ascending-or-equal.
	for _, d := range []int{90, 128, 150, 500, 960, 1369, 4096} {
		lv := FNNLevels(d)
		for _, s := range lv {
			if s < 1 || d%s != 0 {
				t.Fatalf("FNNLevels(%d) = %v contains non-divisor", d, lv)
			}
		}
		if lv[0] > lv[1] || lv[1] > lv[2] {
			t.Fatalf("FNNLevels(%d) = %v not ascending", d, lv)
		}
	}
}

// Property: UB_part(p,q) ≥ p·q.
func TestPartUpperBoundsDot(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		d := 2 + rng.Intn(62)
		m := randMatrix(rng, 20, d)
		d0 := 1 + rng.Intn(d-1)
		ix, err := BuildPart(m, d0)
		if err != nil {
			t.Fatal(err)
		}
		q := randMatrix(rng, 1, d).Row(0)
		qTail := ix.QueryTail(q)
		for i := 0; i < m.N; i++ {
			ub := ix.UBDot(i, q, qTail)
			dot := vec.Dot(m.Row(i), q)
			if ub < dot-1e-9 {
				t.Fatalf("d=%d d0=%d obj=%d: UB_part=%v < dot=%v", d, d0, i, ub, dot)
			}
		}
	}
}

func TestTransferDims(t *testing.T) {
	t.Parallel()
	m := randMatrix(rand.New(rand.NewSource(12)), 4, 16)
	ost, _ := BuildOST(m, 8)
	if ost.TransferDims() != 9 {
		t.Fatalf("OST TransferDims = %d, want 9", ost.TransferDims())
	}
	sm, _ := BuildSM(m, 4)
	if sm.TransferDims() != 4 {
		t.Fatalf("SM TransferDims = %d, want 4", sm.TransferDims())
	}
	fnn, _ := BuildFNN(m, 4)
	if fnn.TransferDims() != 8 {
		t.Fatalf("FNN TransferDims = %d, want 8", fnn.TransferDims())
	}
	part, _ := BuildPart(m, 8)
	if part.TransferDims() != 10 {
		t.Fatalf("Part TransferDims = %d, want 10", part.TransferDims())
	}
}

func TestNearestDivisor(t *testing.T) {
	t.Parallel()
	for _, tc := range []struct {
		d      int
		target float64
		want   int
	}{
		{420, 6.5625, 7}, // d/64 → 7 (paper)
		{420, 26.25, 28}, // d/16 → 28 (paper)
		{420, 105, 105},  // d/4 → 105 (paper)
		{12, 3.5, 4},     // tie between 3 and 4 resolves upward
		{7, 2.0, 1},      // prime: nearest divisor to 2 is 1 (7 is 5 away)
		{16, 100, 16},    // target beyond d clamps to d
		{1, 0.0001, 1},   // d=1 has only itself
	} {
		if got := nearestDivisor(tc.d, tc.target); got != tc.want {
			t.Errorf("nearestDivisor(%d, %v) = %d, want %d", tc.d, tc.target, got, tc.want)
		}
	}
}
