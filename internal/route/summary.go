package route

import (
	"math"

	"pimmine/internal/lsh"
	"pimmine/internal/vec"
)

// lbSlack discounts every summary lower bound by one part in 10^9 before
// it is compared against true distances. The bound derivations below are
// exact over the reals; this absorbs the float64 rounding of the
// summary-side arithmetic so admissibility (LowerBound ≤ true minimum
// distance) holds for the computed values too, at a negligible cost in
// pruning tightness.
const lbSlack = 1 - 1e-9

// Summary is one shard's routing summary: an axis-aligned bounding box
// and norm range over every row the shard may hold (admissible exact
// routing), plus a KMV/SimHash sketch of its contents (approximate
// routing). A Summary is immutable once published — the Router swaps
// whole summaries copy-on-write.
type Summary struct {
	rows int

	// Per-dimension bounding box: lo[j] ≤ v[j] ≤ hi[j] for every row v.
	lo, hi []float64

	// Euclidean-norm range: minNorm ≤ ‖v‖ ≤ maxNorm for every row v.
	minNorm, maxNorm float64

	sketch *lsh.Sketch
}

// buildSummary computes a tight summary of m's rows, feeding each row to
// the (freshly created) sketch. Sketch inputs are shifted by center when
// it is non-nil (see Router.center); the geometric bounds always use the
// raw rows.
func buildSummary(m *vec.Matrix, sk *lsh.Sketch, center []float64) *Summary {
	s := &Summary{
		rows:    m.N,
		lo:      make([]float64, m.D),
		hi:      make([]float64, m.D),
		minNorm: math.Inf(1),
		maxNorm: 0,
		sketch:  sk,
	}
	for j := 0; j < m.D; j++ {
		s.lo[j] = math.Inf(1)
		s.hi[j] = math.Inf(-1)
	}
	var buf []float64
	if center != nil {
		buf = make([]float64, m.D)
	}
	for i := 0; i < m.N; i++ {
		row := m.Row(i)
		for j, x := range row {
			if x < s.lo[j] {
				s.lo[j] = x
			}
			if x > s.hi[j] {
				s.hi[j] = x
			}
		}
		nrm := math.Sqrt(vec.SqNorm(row))
		if nrm < s.minNorm {
			s.minNorm = nrm
		}
		if nrm > s.maxNorm {
			s.maxNorm = nrm
		}
		sk.Add(shifted(row, center, buf))
	}
	return s
}

// shifted returns v − center written into buf; a nil center returns v
// unchanged (and never touches buf).
func shifted(v, center, buf []float64) []float64 {
	if center == nil {
		return v
	}
	for j := range v {
		buf[j] = v[j] - center[j]
	}
	return buf
}

// grown returns a copy of the summary expanded to also cover v — the
// copy-on-write insert path. The box and norm range only widen (the
// summary stays a superset of the shard's rows, so exact routing stays
// admissible) and the sketch observes the new content, shifted by
// center when non-nil.
func (s *Summary) grown(v, center []float64) *Summary {
	out := &Summary{
		rows:    s.rows + 1,
		lo:      append([]float64(nil), s.lo...),
		hi:      append([]float64(nil), s.hi...),
		minNorm: s.minNorm,
		maxNorm: s.maxNorm,
		sketch:  s.sketch.Clone(),
	}
	for j, x := range v {
		if x < out.lo[j] {
			out.lo[j] = x
		}
		if x > out.hi[j] {
			out.hi[j] = x
		}
	}
	nrm := math.Sqrt(vec.SqNorm(v))
	if nrm < out.minNorm {
		out.minNorm = nrm
	}
	if nrm > out.maxNorm {
		out.maxNorm = nrm
	}
	var buf []float64
	if center != nil {
		buf = make([]float64, len(v))
	}
	out.sketch.Add(shifted(v, center, buf))
	return out
}

// Rows returns how many rows the summary covers.
func (s *Summary) Rows() int { return s.rows }

// LowerBound returns an admissible lower bound on the *squared*
// Euclidean distance from q to any row the summary covers (the engine's
// Dist convention). qNorm is ‖q‖, hoisted by the caller across shards.
//
// Two independent bounds, both standard and both provable, are combined
// by max:
//
//   - Bounding box: the nearest point of the box [lo, hi] to q is at
//     per-dimension gap g_j = max(0, lo_j − q_j, q_j − hi_j), and every
//     row lies inside the box, so dist²(q, row) ≥ Σ g_j².
//   - Norm range: by the reverse triangle inequality, ‖q − v‖ ≥
//     |‖q‖ − ‖v‖| ≥ max(0, ‖q‖ − maxNorm, minNorm − ‖q‖) for every row
//     v with ‖v‖ ∈ [minNorm, maxNorm]; squared, it bounds dist².
//
// The result is scaled by lbSlack to absorb summary-side float rounding.
func (s *Summary) LowerBound(q []float64, qNorm float64) float64 {
	var bbox float64
	for j, x := range q {
		if g := s.lo[j] - x; g > 0 {
			bbox += g * g
		} else if g := x - s.hi[j]; g > 0 {
			bbox += g * g
		}
	}
	var normGap float64
	if g := qNorm - s.maxNorm; g > 0 {
		normGap = g
	} else if g := s.minNorm - qNorm; g > 0 {
		normGap = g
	}
	lb := bbox
	if n2 := normGap * normGap; n2 > lb {
		lb = n2
	}
	return lb * lbSlack
}
