// Package route is the shard-routing tier of the serving engine: a
// per-shard sketch/summary index consulted *before* the fan-out, so a
// query is dispatched only to shards that can contribute to its top-k —
// skipping whole shards (whole crossbar groups) is the cheapest prune
// available, one level above the paper's within-array filter-and-refine.
// NCAM (Lee et al., arXiv:1606.03742) makes the same argument for
// near-data similarity search: the win is in never moving data out of
// arrays that cannot contain results.
//
// Each shard carries two summaries:
//
//   - An admissible geometric summary — per-dimension min/max bounds and
//     the norm range — from which Summary.LowerBound derives a proven
//     lower bound on the squared Euclidean distance from a query to any
//     row the shard holds. This powers *exact* routing: a shard whose
//     lower bound exceeds the current k-th candidate distance is skipped
//     with the same discipline as the paper's Theorems 1–2 bounds, and
//     routed results stay bit-identical to the unrouted engine.
//   - A KMV/SimHash sketch (internal/lsh) — a content-addressed sample
//     of the shard's rows with their binary codes. This powers
//     *approximate* routing: shards are scored by estimated angular
//     similarity mass and visited in descending order until the
//     estimated share of the query's top-k reaches a recall target —
//     the LSH Ensemble move (Zhu et al., PVLDB 2016) of query-time
//     tuned per-partition sketches, trading exactness for latency.
//
// Summaries stay sound under churn by being conservative: inserts and
// updates only expand a summary (Router.Observe), deletions leave it a
// superset of the live rows (still admissible, merely less tight), and
// compaction rebuilds it tight from the fresh base image
// (Router.Refresh — internal/delta invokes it through Options.OnCompact).
package route

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"pimmine/internal/lsh"
	"pimmine/internal/plan"
	"pimmine/internal/vec"
)

// Mode selects how the router treats a query.
type Mode string

const (
	// ModeAuto defers to the router's configured default mode (callers
	// that pass an explicit mode never send it on the wire).
	ModeAuto Mode = ""
	// ModeExact routes with admissible lower bounds only: skipped shards
	// provably cannot contribute, results are bit-identical to the
	// unrouted engine.
	ModeExact Mode = "exact"
	// ModeApprox routes by sketch similarity toward a recall target:
	// lower latency, typed Result annotation, no exactness guarantee.
	ModeApprox Mode = "approx"
)

// ParseMode validates a wire mode string ("", "exact", "approx").
func ParseMode(s string) (Mode, error) {
	switch Mode(s) {
	case ModeAuto, ModeExact, ModeApprox:
		return Mode(s), nil
	default:
		return ModeAuto, fmt.Errorf("route: unknown mode %q (want \"exact\" or \"approx\")", s)
	}
}

// ErrShardMismatch reports a router whose shard count disagrees with the
// engine it is being attached to. Serving engines reject this at
// construction time (errors.Is-matchable) instead of failing at query
// time.
var ErrShardMismatch = errors.New("route: router shard count disagrees with engine")

// Config shapes a Router. The zero value takes every default.
type Config struct {
	// Bits is the SimHash code width of the approximate-routing sketches
	// (default 64).
	Bits int
	// Sample is the KMV sample size per shard (default 32).
	Sample int
	// Seed drives sketch hashing; explicit so routed results are
	// reproducible across runs (default 1).
	Seed int64
	// Recall is the approximate mode's target recall knob in (0, 1]
	// (default 0.95): shards are visited until the estimated share of
	// the top-k reaches it.
	Recall float64
	// SizePrior blends the sketch-mass estimate with a shard-size prior
	// in [0, 1] (default 0.3): a hedge against sketch misses, it floors
	// how wrong the mass estimate can be on out-of-distribution queries.
	SizePrior float64
	// Mode is the default routing mode Search applies when the caller
	// passes ModeAuto (default ModeExact).
	Mode Mode
	// AuditEvery, when positive, makes every n-th approximate query an
	// audit: the engine also searches the skipped shards and reports the
	// *measured* recall of the approximate answer alongside the
	// estimate (pim_route_measured_recall). 0 disables auditing.
	AuditEvery int
}

// withDefaults resolves the zero-value knobs.
func (c Config) withDefaults() (Config, error) {
	if c.Bits <= 0 {
		c.Bits = 64
	}
	if c.Sample <= 0 {
		c.Sample = 32
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Recall == 0 {
		c.Recall = 0.95
	}
	if c.Recall < 0 || c.Recall > 1 {
		return c, fmt.Errorf("route: recall target %v outside (0, 1]", c.Recall)
	}
	if c.SizePrior == 0 {
		c.SizePrior = 0.3
	}
	if c.SizePrior < 0 || c.SizePrior > 1 {
		return c, fmt.Errorf("route: size prior %v outside [0, 1]", c.SizePrior)
	}
	switch c.Mode {
	case ModeAuto:
		c.Mode = ModeExact
	case ModeExact, ModeApprox:
	default:
		return c, fmt.Errorf("route: unknown default mode %q", c.Mode)
	}
	if c.AuditEvery < 0 {
		return c, fmt.Errorf("route: negative AuditEvery %d", c.AuditEvery)
	}
	return c, nil
}

// Router maintains one summary per shard and decides, per query, which
// shards to visit. It is safe for concurrent use: summaries are
// published copy-on-write behind atomic pointers, so query-time reads
// never lock, and Observe/Refresh serialize per shard.
type Router struct {
	cfg    Config
	d      int
	hasher *lsh.Hasher
	// center is the grand mean of the initial rows, subtracted from
	// every vector before SimHash. SimHash measures angles, and the
	// engines' [0,1]-normalized data lives in the positive orthant where
	// all pairwise angles are small — hashing relative to the mean
	// restores the angular contrast between clusters that the
	// approximate mode's similarity mass depends on. The pivot is fixed
	// at construction (a drifting pivot would make old and new sketch
	// codes incomparable); exactness never depends on it.
	center []float64

	mu     []sync.Mutex // per-shard writer lock (COW updates)
	shards []atomic.Pointer[Summary]

	// Cumulative routing outcomes, feeding PlanBound and pim_route_*.
	visited atomic.Int64
	skipped atomic.Int64
	audits  atomic.Int64 // approximate queries observed (audit cadence)
}

// New builds a router over explicit shard slices (one matrix per shard,
// in shard-id order). Every shard must share the dimensionality.
func New(cfg Config, shards []*vec.Matrix) (*Router, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if len(shards) == 0 {
		return nil, fmt.Errorf("route: no shards")
	}
	d := 0
	for i, m := range shards {
		if m == nil || m.N == 0 {
			return nil, fmt.Errorf("route: shard %d is empty", i)
		}
		if d == 0 {
			d = m.D
		} else if m.D != d {
			return nil, fmt.Errorf("route: shard %d has %d dims, shard 0 has %d", i, m.D, d)
		}
	}
	r := &Router{
		cfg:    cfg,
		d:      d,
		hasher: lsh.NewHasher(d, cfg.Bits, cfg.Seed),
		center: grandMean(shards, d),
		mu:     make([]sync.Mutex, len(shards)),
		shards: make([]atomic.Pointer[Summary], len(shards)),
	}
	for i, m := range shards {
		r.shards[i].Store(r.build(m))
	}
	return r, nil
}

// grandMean is the mean row over every shard — the sketch pivot.
func grandMean(shards []*vec.Matrix, d int) []float64 {
	c := make([]float64, d)
	rows := 0
	for _, m := range shards {
		for i := 0; i < m.N; i++ {
			for j, x := range m.Row(i) {
				c[j] += x
			}
		}
		rows += m.N
	}
	for j := range c {
		c[j] /= float64(rows)
	}
	return c
}

// NewEven builds a router over the same contiguous row-wise partition
// the serving engines use (N/s rows per shard, remainder spread over the
// first shards) — the convenience constructor for attaching a router to
// an engine built from the same dataset with Options.Shards = shards.
func NewEven(cfg Config, data *vec.Matrix, shards int) (*Router, error) {
	if data == nil || data.N == 0 {
		return nil, fmt.Errorf("route: empty dataset")
	}
	if shards <= 0 || shards > data.N {
		return nil, fmt.Errorf("route: shard count %d outside 1..%d", shards, data.N)
	}
	parts := make([]*vec.Matrix, 0, shards)
	base, rem := data.N/shards, data.N%shards
	lo := 0
	for id := 0; id < shards; id++ {
		rows := base
		if id < rem {
			rows++
		}
		parts = append(parts, data.Slice(lo, lo+rows))
		lo += rows
	}
	return New(cfg, parts)
}

// build constructs one shard's summary (tight bounds + fresh sketch).
func (r *Router) build(m *vec.Matrix) *Summary {
	sk := lsh.NewSketch(r.hasher, r.cfg.Sample, r.cfg.Seed)
	return buildSummary(m, sk, r.center)
}

// NumShards returns the shard count the router was built for.
func (r *Router) NumShards() int { return len(r.shards) }

// Dims returns the dimensionality summaries were built over.
func (r *Router) Dims() int { return r.d }

// DefaultMode resolves ModeAuto to the configured default.
func (r *Router) DefaultMode() Mode { return r.cfg.Mode }

// RecallTarget returns the approximate mode's configured recall knob.
func (r *Router) RecallTarget() float64 { return r.cfg.Recall }

// Audit reports whether this approximate query should be audited
// (measured recall against the full fan-out); it advances the cadence.
func (r *Router) Audit() bool {
	if r.cfg.AuditEvery <= 0 {
		return false
	}
	return r.audits.Add(1)%int64(r.cfg.AuditEvery) == 0
}

// LowerBounds appends per-shard admissible lower bounds on the squared
// distance from q to any row of each shard (dst is reused when it has
// capacity). The bounds are what exact routing prunes with.
func (r *Router) LowerBounds(q []float64, dst []float64) []float64 {
	if len(q) != r.d {
		panic(fmt.Sprintf("route: query has %d dims, router has %d", len(q), r.d))
	}
	dst = dst[:0]
	qNorm := math.Sqrt(vec.SqNorm(q))
	for i := range r.shards {
		dst = append(dst, r.shards[i].Load().LowerBound(q, qNorm))
	}
	return dst
}

// ExactOrder returns the shard visit order of exact mode — ascending by
// (lower bound, shard id) — together with the bounds themselves. The
// engine seeds its k-th candidate distance from the first shard, then
// skips every later shard whose bound exceeds it.
func (r *Router) ExactOrder(q []float64) (order []int, lbs []float64) {
	lbs = r.LowerBounds(q, nil)
	order = make([]int, len(lbs))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if lbs[order[a]] != lbs[order[b]] {
			return lbs[order[a]] < lbs[order[b]]
		}
		return order[a] < order[b]
	})
	return order, lbs
}

// ExactOrderAvail is the node-aware variant of ExactOrder: it rotates
// the lowest-bound shard for which avail returns true to the front of
// the visit order, leaving the rest in ascending (lower bound, id)
// order. The multi-node placement layer seeds its τ wave from the
// first element, so an unavailable best shard (all replicas down)
// cannot stall wave 1 — and a dead shard is only fatal if its
// admissible bound survives the seeded kth distance; otherwise routing
// proves it out of the answer and the query succeeds without it. With a
// nil avail (or no available shard) this is exactly ExactOrder.
func (r *Router) ExactOrderAvail(q []float64, avail func(shard int) bool) (order []int, lbs []float64) {
	order, lbs = r.ExactOrder(q)
	if avail == nil {
		return order, lbs
	}
	for i, id := range order {
		if avail(id) {
			seed := order[i]
			copy(order[1:i+1], order[:i])
			order[0] = seed
			break
		}
	}
	return order, lbs
}

// ApproxPlan scores every shard by sketch-similarity mass blended with
// the shard-size prior and returns the visit set of approximate mode:
// the smallest prefix (in descending score) whose cumulative weight
// reaches the recall target, plus the estimated recall of stopping
// there. target ≤ 0 takes the configured default.
func (r *Router) ApproxPlan(q []float64, target float64) (visit []int, estRecall float64) {
	if len(q) != r.d {
		panic(fmt.Sprintf("route: query has %d dims, router has %d", len(q), r.d))
	}
	if target <= 0 {
		target = r.cfg.Recall
	}
	code := r.hasher.Hash(shifted(q, r.center, make([]float64, r.d)))

	// Sharpened similarity mass: each sampled code contributes sim^16,
	// scaled from sample to shard cardinality. The exponent concentrates
	// the mass on near-parallel samples, which is where top-k members
	// live; it is computed by squaring (the decision is on the query hot
	// path — math.Pow would dominate the routing cost it is meant to
	// save).
	n := len(r.shards)
	mass := make([]float64, n)
	rows := make([]float64, n)
	var totalMass, totalRows float64
	for i := range r.shards {
		s := r.shards[i].Load()
		sk := s.sketch
		rows[i] = float64(s.rows)
		totalRows += rows[i]
		if sk == nil || sk.Len() == 0 {
			continue
		}
		var m float64
		for j := 0; j < sk.Len(); j++ {
			x := sk.Sim(code, j)
			x *= x // sim^2
			x *= x // sim^4
			x *= x // sim^8
			x *= x // sim^16
			m += x
		}
		mass[i] = m * rows[i] / float64(sk.Len())
		totalMass += mass[i]
	}

	// Blend with the size prior; with no sketch signal at all the prior
	// is everything (uniform-by-rows routing).
	w := make([]float64, n)
	lambda := r.cfg.SizePrior
	if totalMass == 0 {
		lambda = 1
	}
	for i := range w {
		var m float64
		if totalMass > 0 {
			m = mass[i] / totalMass
		}
		w[i] = (1-lambda)*m + lambda*rows[i]/totalRows
	}

	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if w[order[a]] != w[order[b]] {
			return w[order[a]] > w[order[b]]
		}
		return order[a] < order[b]
	})
	cum := 0.0
	for _, i := range order {
		visit = append(visit, i)
		cum += w[i]
		if cum >= target {
			break
		}
	}
	sort.Ints(visit)
	return visit, math.Min(1, cum)
}

// Observe expands a shard's summary with a row that joined it (insert or
// update). Expansion is conservative — the summary stays a superset of
// the shard's live rows, so exact routing stays admissible through
// churn; compaction re-tightens via Refresh.
func (r *Router) Observe(shard int, v []float64) {
	if shard < 0 || shard >= len(r.shards) || len(v) != r.d {
		panic(fmt.Sprintf("route: Observe(%d, %d dims) on %d-shard %d-dim router", shard, len(v), len(r.shards), r.d))
	}
	r.mu[shard].Lock()
	r.shards[shard].Store(r.shards[shard].Load().grown(v, r.center))
	r.mu[shard].Unlock()
}

// Refresh rebuilds a shard's summary tight from its current rows (the
// compaction hook: the delta layer calls it with the freshly compacted
// base image, which is exactly the shard's live row set).
func (r *Router) Refresh(shard int, m *vec.Matrix) {
	if shard < 0 || shard >= len(r.shards) || m == nil || m.N == 0 || m.D != r.d {
		panic(fmt.Sprintf("route: Refresh(%d) with bad matrix on %d-shard router", shard, len(r.shards)))
	}
	r.mu[shard].Lock()
	r.shards[shard].Store(r.build(m))
	r.mu[shard].Unlock()
}

// NoteOutcome records one routed query's visit/skip split (feeds the
// observed selectivity behind PlanBound and the pim_route_* metrics).
func (r *Router) NoteOutcome(visited, skipped int) {
	r.visited.Add(int64(visited))
	r.skipped.Add(int64(skipped))
}

// Stats returns the cumulative shards visited and skipped.
func (r *Router) Stats() (visited, skipped int64) {
	return r.visited.Load(), r.skipped.Load()
}

// Selectivity is the observed fraction of shards skipped over the
// router's lifetime (0 before any routed query).
func (r *Router) Selectivity() float64 {
	v, s := r.visited.Load(), r.skipped.Load()
	if v+s == 0 {
		return 0
	}
	return float64(s) / float64(v+s)
}

// PlanBound prices the routing filter for the Eq. 13 plan optimizer
// from the observed selectivity: routing is just another bound, one
// whose per-object probe cost is the summary evaluation amortized over
// the shard's rows (≈ 0 operands per object at serving shard sizes).
func (r *Router) PlanBound() plan.Bound {
	return plan.RoutingBound("ROUTE", r.Selectivity(), 0)
}
