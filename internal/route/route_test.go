package route

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"pimmine/internal/dataset"
	"pimmine/internal/measure"
	"pimmine/internal/vec"
)

// clustered returns a dataset with rows grouped by mixture component, so
// contiguous shards are content-local — the regime where routing skips
// shards. (dataset.Generate interleaves clusters row by row; a router
// over interleaved shards sees near-identical summaries everywhere.)
func clustered(n, d, clusters int, seed int64) *vec.Matrix {
	prof := dataset.Profile{Name: "route", FullN: n, D: d, Clusters: clusters, Correlation: 0.4, Spread: 0.08}
	ds := dataset.Generate(prof, n, seed)
	m := vec.NewMatrix(n, d)
	i := 0
	for c := 0; c < clusters; c++ {
		for r := 0; r < n; r++ {
			if ds.Labels[r] == c {
				copy(m.Row(i), ds.X.Row(r))
				i++
			}
		}
	}
	return m
}

func TestParseMode(t *testing.T) {
	t.Parallel()
	for _, ok := range []string{"", "exact", "approx"} {
		if _, err := ParseMode(ok); err != nil {
			t.Fatalf("ParseMode(%q): %v", ok, err)
		}
	}
	for _, bad := range []string{"EXACT", "fuzzy", "approximate", " exact"} {
		if _, err := ParseMode(bad); err == nil {
			t.Fatalf("ParseMode(%q) accepted", bad)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	t.Parallel()
	data := clustered(64, 8, 4, 1)
	for _, cfg := range []Config{
		{Recall: 1.5},
		{Recall: -0.1},
		{SizePrior: 2},
		{Mode: "fuzzy"},
		{AuditEvery: -1},
	} {
		if _, err := NewEven(cfg, data, 4); err == nil {
			t.Fatalf("config %+v accepted", cfg)
		}
	}
	r, err := NewEven(Config{}, data, 4)
	if err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
	if r.DefaultMode() != ModeExact || r.RecallTarget() != 0.95 || r.NumShards() != 4 {
		t.Fatalf("defaults not applied: mode=%q recall=%v shards=%d", r.DefaultMode(), r.RecallTarget(), r.NumShards())
	}
}

// Admissibility on a real dataset: no shard's lower bound may exceed the
// true minimum squared distance from the query to that shard's rows.
func TestLowerBoundsAdmissible(t *testing.T) {
	t.Parallel()
	data := clustered(240, 12, 6, 7)
	const shards = 6
	r, err := NewEven(Config{}, data, shards)
	if err != nil {
		t.Fatal(err)
	}
	prof := dataset.Profile{Name: "route", FullN: 240, D: 12, Clusters: 6, Correlation: 0.4, Spread: 0.08}
	qs := dataset.Generate(prof, 240, 7).Queries(20, 3)
	base, rem := data.N/shards, data.N%shards
	for qi := 0; qi < qs.N; qi++ {
		q := qs.Row(qi)
		lbs := r.LowerBounds(q, nil)
		lo := 0
		for id := 0; id < shards; id++ {
			rows := base
			if id < rem {
				rows++
			}
			truth := math.Inf(1)
			for i := lo; i < lo+rows; i++ {
				if d := measure.SqEuclidean(data.Row(i), q); d < truth {
					truth = d
				}
			}
			if lbs[id] > truth {
				t.Fatalf("query %d shard %d: LB %v exceeds true min %v", qi, id, lbs[id], truth)
			}
			lo += rows
		}
	}
}

// On cluster-aligned shards the bounds must actually separate shards —
// otherwise exact routing never skips anything and the tier is inert.
func TestExactOrderSeparatesClusteredShards(t *testing.T) {
	t.Parallel()
	data := clustered(300, 16, 6, 11)
	r, err := NewEven(Config{}, data, 6)
	if err != nil {
		t.Fatal(err)
	}
	separated := 0
	for qi := 0; qi < 12; qi++ {
		q := data.Row(qi * 25) // in-shard queries
		order, lbs := r.ExactOrder(q)
		if len(order) != 6 {
			t.Fatalf("order has %d shards", len(order))
		}
		for i := 1; i < len(order); i++ {
			if lbs[order[i-1]] > lbs[order[i]] {
				t.Fatalf("ExactOrder not ascending: %v / %v", order, lbs)
			}
		}
		if lbs[order[0]] < lbs[order[len(order)-1]] {
			separated++
		}
	}
	if separated == 0 {
		t.Fatal("no query separated any pair of cluster-aligned shards")
	}
}

func TestApproxPlanCoversTargetAndOrders(t *testing.T) {
	t.Parallel()
	data := clustered(300, 16, 6, 13)
	r, err := NewEven(Config{Recall: 0.9}, data, 6)
	if err != nil {
		t.Fatal(err)
	}
	q := data.Row(10)
	visit, est := r.ApproxPlan(q, 0)
	if len(visit) == 0 || len(visit) > 6 {
		t.Fatalf("visit set %v", visit)
	}
	if est < 0.9-1e-12 && len(visit) < 6 {
		t.Fatalf("stopped at estimated recall %v below target with shards left", est)
	}
	for i := 1; i < len(visit); i++ {
		if visit[i] <= visit[i-1] {
			t.Fatalf("visit set not sorted: %v", visit)
		}
	}
	// recall 1.0 must visit everything.
	all, est1 := r.ApproxPlan(q, 1)
	if len(all) != 6 || est1 > 1 {
		t.Fatalf("target 1.0 visited %d shards (est %v)", len(all), est1)
	}
}

// Observe must keep bounds admissible for the grown content and Refresh
// must re-tighten them.
func TestObserveGrowsAndRefreshTightens(t *testing.T) {
	t.Parallel()
	data := clustered(120, 8, 4, 5)
	r, err := NewEven(Config{}, data, 4)
	if err != nil {
		t.Fatal(err)
	}
	// A far outlier joins shard 0: its bound for a query at the outlier
	// must drop to (near) zero after Observe.
	out := make([]float64, 8)
	for j := range out {
		out[j] = 9.5
	}
	before := r.LowerBounds(out, nil)[0]
	if before == 0 {
		t.Fatal("outlier query not separated before Observe")
	}
	r.Observe(0, out)
	if after := r.LowerBounds(out, nil)[0]; after != 0 {
		t.Fatalf("LB for observed row = %v, want 0", after)
	}
	// Refresh from the original rows restores the tight bound.
	base, rem := data.N/4, data.N%4
	_ = rem
	r.Refresh(0, data.Slice(0, base))
	if again := r.LowerBounds(out, nil)[0]; again != before {
		t.Fatalf("refreshed LB %v, want original %v", again, before)
	}
}

func TestStatsAndPlanBound(t *testing.T) {
	t.Parallel()
	data := clustered(64, 8, 4, 1)
	r, err := NewEven(Config{}, data, 4)
	if err != nil {
		t.Fatal(err)
	}
	if r.Selectivity() != 0 {
		t.Fatal("selectivity nonzero before any query")
	}
	r.NoteOutcome(1, 3)
	r.NoteOutcome(2, 2)
	v, s := r.Stats()
	if v != 3 || s != 5 {
		t.Fatalf("stats = (%d, %d), want (3, 5)", v, s)
	}
	b := r.PlanBound()
	if b.Family != "route" || math.Abs(b.PruneRatio-5.0/8.0) > 1e-15 {
		t.Fatalf("plan bound %+v", b)
	}
}

func TestAuditCadence(t *testing.T) {
	t.Parallel()
	data := clustered(64, 8, 4, 1)
	r, err := NewEven(Config{AuditEvery: 3}, data, 4)
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	for i := 0; i < 9; i++ {
		if r.Audit() {
			hits++
		}
	}
	if hits != 3 {
		t.Fatalf("AuditEvery=3 audited %d of 9", hits)
	}
	r2, _ := NewEven(Config{}, data, 4)
	for i := 0; i < 5; i++ {
		if r2.Audit() {
			t.Fatal("AuditEvery=0 audited")
		}
	}
}

// Concurrent Observe/Refresh against LowerBounds must stay race-free and
// conservative (run with -race; the churn invariant itself is asserted
// by the serve-layer churn suite).
func TestRouterConcurrentChurn(t *testing.T) {
	t.Parallel()
	data := clustered(160, 8, 4, 9)
	r, err := NewEven(Config{}, data, 4)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		rng := rand.New(rand.NewSource(2))
		for i := 0; i < 400; i++ {
			v := make([]float64, 8)
			for j := range v {
				v[j] = rng.Float64()
			}
			sh := i % 4
			r.Observe(sh, v)
			if i%50 == 49 {
				r.Refresh(sh, data.Slice(0, 40))
			}
		}
	}()
	q := data.Row(0)
	for i := 0; i < 400; i++ {
		lbs := r.LowerBounds(q, nil)
		for sh, lb := range lbs {
			if lb < 0 || math.IsNaN(lb) {
				t.Fatalf("shard %d produced bound %v under churn", sh, lb)
			}
		}
	}
	<-done
}

// TestExactOrderAvail checks the availability-aware ordering used by
// the placement layer: the seed shard (order[0], which anchors the
// kNN bound tau) must be the best *available* shard, unavailable
// shards keep their positions later in the walk so the bound can still
// prove them out, and a nil filter degrades to plain ExactOrder.
func TestExactOrderAvail(t *testing.T) {
	t.Parallel()
	data := clustered(300, 16, 6, 11)
	r, err := NewEven(Config{}, data, 6)
	if err != nil {
		t.Fatal(err)
	}
	for qi := 0; qi < 12; qi++ {
		q := data.Row(qi * 25)
		base, baseLBs := r.ExactOrder(q)

		order, lbs := r.ExactOrderAvail(q, nil)
		if !reflect.DeepEqual(order, base) || !reflect.DeepEqual(lbs, baseLBs) {
			t.Fatalf("nil avail diverged from ExactOrder: %v vs %v", order, base)
		}

		// Knock out the two best shards: the third-best must be
		// promoted to seed, everything else keeps relative order.
		down := map[int]bool{base[0]: true, base[1]: true}
		order, lbs = r.ExactOrderAvail(q, func(id int) bool { return !down[id] })
		if order[0] != base[2] {
			t.Fatalf("seed %d, want best available %d (base %v)", order[0], base[2], base)
		}
		if order[1] != base[0] || order[2] != base[1] {
			t.Fatalf("displaced prefix reordered: got %v, base %v", order, base)
		}
		if !reflect.DeepEqual(order[3:], base[3:]) {
			t.Fatalf("tail reordered: got %v, base %v", order, base)
		}
		seen := map[int]bool{}
		for _, id := range order {
			if seen[id] {
				t.Fatalf("shard %d appears twice in %v", id, order)
			}
			seen[id] = true
		}
		if len(order) != 6 {
			t.Fatalf("order has %d shards, want all 6", len(order))
		}
		if !reflect.DeepEqual(lbs, baseLBs) {
			t.Fatal("availability filter changed lower bounds")
		}

		// Nothing available: order is untouched (caller will fail with
		// its own quorum error).
		order, _ = r.ExactOrderAvail(q, func(int) bool { return false })
		if !reflect.DeepEqual(order, base) {
			t.Fatalf("all-unavailable order %v, want base %v", order, base)
		}
	}
}
