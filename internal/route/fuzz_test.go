package route

import (
	"math"
	"math/rand"
	"testing"

	"pimmine/internal/lsh"
	"pimmine/internal/measure"
	"pimmine/internal/vec"
)

// FuzzRouteAdmissible is the routing analogue of the pimbound theorem
// fuzzers: for a randomized shard and query — including churn via
// grown() — the summary's lower bound must never exceed the true
// minimum squared distance from the query to any covered row. A
// violation would make exact routing skip a shard that holds a top-k
// member, silently breaking bit-identity with the unrouted engine.
func FuzzRouteAdmissible(f *testing.F) {
	f.Add(int64(1), uint8(16), uint8(8), 0.0, 1.0, uint8(0))
	f.Add(int64(7), uint8(3), uint8(1), -4.5, 0.25, uint8(2))
	f.Add(int64(42), uint8(64), uint8(24), 12.0, 3.0, uint8(5))
	f.Add(int64(-9), uint8(1), uint8(4), 0.5, 1e-6, uint8(1))
	f.Add(int64(1234), uint8(33), uint8(13), -0.75, 8.0, uint8(7))
	f.Fuzz(func(t *testing.T, seed int64, rows, dims uint8, shift, scale float64, grow uint8) {
		n := int(rows%64) + 1
		d := int(dims%32) + 1
		if math.IsNaN(shift) || math.IsInf(shift, 0) || math.Abs(shift) > 1e6 {
			shift = 0
		}
		if math.IsNaN(scale) || math.IsInf(scale, 0) || scale <= 0 || scale > 1e6 {
			scale = 1
		}
		rng := rand.New(rand.NewSource(seed))
		m := vec.NewMatrix(n, d)
		for i := 0; i < n; i++ {
			row := m.Row(i)
			for j := range row {
				row[j] = shift + scale*(rng.Float64()*2-1)
			}
		}
		sk := lsh.NewSketch(lsh.NewHasher(d, 64, seed|1), 8, seed|1)
		ctr := grandMean([]*vec.Matrix{m}, d)
		s := buildSummary(m, sk, ctr)

		// Churn path: grow the summary with extra rows, tracked so the
		// admissibility check covers the expanded content too.
		extra := make([][]float64, 0, int(grow%8))
		for g := 0; g < int(grow%8); g++ {
			v := make([]float64, d)
			for j := range v {
				v[j] = shift + scale*(rng.Float64()*4-2)
			}
			extra = append(extra, v)
			s = s.grown(v, ctr)
		}

		q := make([]float64, d)
		for j := range q {
			q[j] = shift + scale*(rng.Float64()*6-3)
		}
		lb := s.LowerBound(q, math.Sqrt(vec.SqNorm(q)))
		if lb < 0 || math.IsNaN(lb) {
			t.Fatalf("lower bound %v", lb)
		}
		truth := math.Inf(1)
		for i := 0; i < n; i++ {
			if dd := measure.SqEuclidean(m.Row(i), q); dd < truth {
				truth = dd
			}
		}
		for _, v := range extra {
			if dd := measure.SqEuclidean(v, q); dd < truth {
				truth = dd
			}
		}
		if lb > truth {
			t.Fatalf("summary LB %v exceeds true shard minimum %v (n=%d d=%d grow=%d)",
				lb, truth, n, d, len(extra))
		}
	})
}
