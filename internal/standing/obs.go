package standing

import "pimmine/internal/obs"

// Metrics holds the obs handles a Registry publishes to. Nil handles
// are safe no-ops, matching internal/obs.
type Metrics struct {
	// Subscriptions is the current live count; Subscribed counts
	// registrations over the registry's lifetime.
	Subscriptions *obs.Gauge
	Subscribed    *obs.Counter
	// Evaluations counts per-insert distance-kernel calls — the
	// incremental cost of the standing tier.
	Evaluations *obs.Counter
	// Requeries counts full re-evaluations forced by member deletes
	// and updates — the slow path.
	Requeries *obs.Counter
	// Notifications counts delivered events; DroppedEvents those
	// discarded because a subscriber's buffer was full.
	Notifications *obs.Counter
	DroppedEvents *obs.Counter
}

// NewMetrics registers the standard standing-query metric set.
func NewMetrics(reg *obs.Registry, labels ...obs.Label) *Metrics {
	if reg == nil {
		return nil
	}
	return &Metrics{
		Subscriptions: reg.Gauge("pim_standing_subscriptions", "Live standing-query subscriptions.", labels...),
		Subscribed:    reg.Counter("pim_standing_subscribed_total", "Standing-query registrations.", labels...),
		Evaluations:   reg.Counter("pim_standing_evaluations_total", "Per-mutation distance evaluations across subscriptions.", labels...),
		Requeries:     reg.Counter("pim_standing_requeries_total", "Full re-queries forced by member deletes/updates.", labels...),
		Notifications: reg.Counter("pim_standing_notifications_total", "Events delivered to subscriber channels.", labels...),
		DroppedEvents: reg.Counter("pim_standing_dropped_events_total", "Events discarded because a subscriber buffer was full.", labels...),
	}
}
