// Package standing implements continuous similarity queries over a
// mutable dataset: registered kNN and radius-watch subscriptions that
// are evaluated once against the base snapshot and then maintained
// incrementally as delta inserts arrive — each insert costs one
// distance kernel call per subscription, never a rescan of the base.
//
// The incremental update is exact, not approximate: a kNN
// subscription's view after any prefix of mutations equals a one-shot
// re-query at that epoch, candidate for candidate and bit for bit,
// because membership is decided by the same canonical (Dist, Index)
// total order the search path uses and distances come from the same
// measure.SqEuclidean kernel as the engine's delta scan. The only
// operation that cannot be maintained from the delta alone — a delete
// or update touching a current result member, which may resurrect a
// previously evicted row — falls back to an engine-provided re-query
// callback.
//
// Notifications are full-state snapshots delivered through a bounded
// channel with a drop counter: a slow consumer loses intermediate
// states, never stream integrity, because every event carries the
// complete result view and a per-subscription sequence number that
// makes gaps visible.
package standing

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"pimmine/internal/measure"
	"pimmine/internal/vec"
)

// Kind is a subscription event kind.
type Kind int

const (
	// KindInit carries the initial kNN result view at subscribe time.
	KindInit Kind = iota
	// KindUpdate carries a changed kNN result view.
	KindUpdate
	// KindMatch reports an inserted row falling inside a radius watch.
	KindMatch
)

// String names the kind for logs and the wire layer.
func (k Kind) String() string {
	switch k {
	case KindInit:
		return "init"
	case KindUpdate:
		return "update"
	case KindMatch:
		return "match"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Event is one notification. For kNN subscriptions Result is the full
// canonical view after the change (never a diff), so any single event
// fully describes the current state; for radius watches Result is nil
// and Trigger/Dist identify the matching row. Seq increments once per
// generated event — including those dropped on a full channel — so a
// consumer can detect that it missed intermediate states.
type Event struct {
	SubID   int
	Kind    Kind
	Seq     int
	Trigger int     // global id that caused the event; -1 for init
	Dist    float64 // squared distance of the trigger to the query; 0 for init
	Result  []vec.Neighbor
}

// ErrBadSubscription reports invalid subscribe parameters.
var ErrBadSubscription = errors.New("standing: bad subscription")

// ErrClosed reports use of a closed registry.
var ErrClosed = errors.New("standing: registry closed")

type subKind int

const (
	subKNN subKind = iota
	subRadius
)

// Subscription is one registered standing query. Events() is the
// consumer side; the registry owns the producer side and closes the
// channel on Unsubscribe.
type Subscription struct {
	id      int
	kind    subKind
	q       []float64
	k       int
	radius2 float64 // squared watch radius

	res     []vec.Neighbor // current canonical kNN view, ascending (Dist, Index)
	seq     int
	ch      chan Event
	dropped atomic.Int64
}

// ID returns the registry-assigned subscription id.
func (s *Subscription) ID() int { return s.id }

// Events returns the notification channel. It is closed by
// Unsubscribe/Close; a full buffer drops events rather than blocking
// the mutation path.
func (s *Subscription) Events() <-chan Event { return s.ch }

// Dropped returns how many events were discarded because the buffer
// was full.
func (s *Subscription) Dropped() int64 { return s.dropped.Load() }

// Requery re-evaluates a kNN query against the engine's full current
// state. The engine supplies it so the registry can recover exactly
// when a delete/update invalidates a maintained view.
type Requery func(q []float64, k int) ([]vec.Neighbor, error)

// Options configures a Registry.
type Options struct {
	// Requery is required: the engine's one-shot evaluation used at
	// subscribe time and after member deletes.
	Requery Requery
	// Buffer is each subscription's channel capacity. Zero means 16.
	Buffer int
	// Metrics receives registry gauges and counters. Nil disables.
	Metrics *Metrics
}

// Registry holds the live subscriptions of one mutable engine. The
// engine calls the mutation hooks (OnInsert/OnUpdate/OnDelete) under
// its own mutation lock, so hook invocations are totally ordered and
// every subscription observes the same mutation sequence the store
// applied.
type Registry struct {
	opts Options

	mu     sync.Mutex
	subs   map[int]*Subscription
	nextID int
	closed bool
}

// NewRegistry creates an empty registry. Options.Requery must be set.
func NewRegistry(opts Options) (*Registry, error) {
	if opts.Requery == nil {
		return nil, fmt.Errorf("%w: Requery callback required", ErrBadSubscription)
	}
	if opts.Buffer <= 0 {
		opts.Buffer = 16
	}
	return &Registry{opts: opts, subs: make(map[int]*Subscription)}, nil
}

// SubscribeKNN registers a standing k-nearest-neighbor query. The
// initial view is evaluated immediately via the Requery callback and
// delivered as a KindInit event.
func (r *Registry) SubscribeKNN(q []float64, k int) (*Subscription, error) {
	if len(q) == 0 || k < 1 {
		return nil, fmt.Errorf("%w: need a query vector and k >= 1", ErrBadSubscription)
	}
	init, err := r.opts.Requery(q, k)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, ErrClosed
	}
	s := r.addLocked(&Subscription{kind: subKNN, q: append([]float64(nil), q...), k: k, res: init})
	r.emitLocked(s, Event{Kind: KindInit, Trigger: -1, Result: snapshotView(init)})
	return s, nil
}

// SubscribeRadius registers a radius watch around q: every future
// insert whose Euclidean distance to q is at most radius produces a
// KindMatch event. It is a pure insert feed — no initial members are
// reported — which keeps registration O(1) and per-insert work O(d).
func (r *Registry) SubscribeRadius(q []float64, radius float64) (*Subscription, error) {
	if len(q) == 0 || !(radius > 0) {
		return nil, fmt.Errorf("%w: need a query vector and radius > 0", ErrBadSubscription)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, ErrClosed
	}
	return r.addLocked(&Subscription{kind: subRadius, q: append([]float64(nil), q...), radius2: radius * radius}), nil
}

// addLocked assigns an id, buffers the channel and registers s.
func (r *Registry) addLocked(s *Subscription) *Subscription {
	s.id = r.nextID
	r.nextID++
	s.ch = make(chan Event, r.opts.Buffer)
	r.subs[s.id] = s
	if m := r.opts.Metrics; m != nil {
		m.Subscriptions.Set(int64(len(r.subs)))
		m.Subscribed.Inc()
	}
	return s
}

// Unsubscribe removes a subscription and closes its event channel.
// Unknown ids are a no-op, so double-unsubscribe is safe.
func (r *Registry) Unsubscribe(id int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.subs[id]
	if !ok {
		return
	}
	delete(r.subs, id)
	close(s.ch)
	if m := r.opts.Metrics; m != nil {
		m.Subscriptions.Set(int64(len(r.subs)))
	}
}

// Close unsubscribes everything. Further subscribes fail with
// ErrClosed; mutation hooks become no-ops.
func (r *Registry) Close() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return
	}
	r.closed = true
	for id, s := range r.subs {
		delete(r.subs, id)
		close(s.ch)
	}
	if m := r.opts.Metrics; m != nil {
		m.Subscriptions.Set(0)
	}
}

// Current returns a copy of a kNN subscription's present result view
// (nil for radius watches or unknown ids).
func (r *Registry) Current(id int) []vec.Neighbor {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.subs[id]
	if !ok || s.kind != subKNN {
		return nil
	}
	return snapshotView(s.res)
}

// OnInsert evaluates one inserted row against every subscription: a
// single distance kernel per subscription, the incremental fast path.
// The engine calls it under its mutation lock, after the store accepted
// the insert.
func (r *Registry) OnInsert(id int, v []float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, s := range r.subs {
		if len(s.q) != len(v) {
			continue
		}
		d := measure.SqEuclidean(v, s.q)
		if m := r.opts.Metrics; m != nil {
			m.Evaluations.Inc()
		}
		switch s.kind {
		case subRadius:
			if d <= s.radius2 {
				r.emitLocked(s, Event{Kind: KindMatch, Trigger: id, Dist: d})
			}
		case subKNN:
			if s.admit(id, d) {
				r.emitLocked(s, Event{Kind: KindUpdate, Trigger: id, Dist: d, Result: snapshotView(s.res)})
			}
		}
	}
}

// OnDelete reconciles subscriptions with a removed row. Radius watches
// are insert feeds and ignore it; a kNN view containing the row must be
// re-queried, because the deletion may resurrect a row the maintained
// view evicted earlier.
func (r *Registry) OnDelete(id int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, s := range r.subs {
		if s.kind != subKNN || !s.contains(id) {
			continue
		}
		r.requeryLocked(s, id)
	}
}

// OnUpdate reconciles subscriptions with a re-inserted row: for kNN
// views containing the old row it is a delete (re-query); for everyone
// else it behaves like an insert of the new vector.
func (r *Registry) OnUpdate(id int, v []float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, s := range r.subs {
		if len(s.q) != len(v) {
			continue
		}
		d := measure.SqEuclidean(v, s.q)
		if m := r.opts.Metrics; m != nil {
			m.Evaluations.Inc()
		}
		switch s.kind {
		case subRadius:
			if d <= s.radius2 {
				r.emitLocked(s, Event{Kind: KindMatch, Trigger: id, Dist: d})
			}
		case subKNN:
			if s.contains(id) {
				r.requeryLocked(s, id)
			} else if s.admit(id, d) {
				r.emitLocked(s, Event{Kind: KindUpdate, Trigger: id, Dist: d, Result: snapshotView(s.res)})
			}
		}
	}
}

// requeryLocked refreshes s from the engine and emits if the view
// changed. Caller holds r.mu; the Requery callback must not call back
// into the registry.
func (s *Registry) requeryLocked(sub *Subscription, trigger int) {
	res, err := s.opts.Requery(sub.q, sub.k)
	if m := s.opts.Metrics; m != nil {
		m.Requeries.Inc()
	}
	if err != nil {
		// The engine refused (shutting down, overloaded): keep the
		// stale view; the next mutation retries.
		return
	}
	if sameView(sub.res, res) {
		return
	}
	sub.res = res
	s.emitLocked(sub, Event{Kind: KindUpdate, Trigger: trigger, Result: snapshotView(res)})
}

// emitLocked stamps the sequence number and delivers without blocking:
// a full buffer counts a drop instead of stalling the mutation path.
// Caller holds r.mu.
func (r *Registry) emitLocked(s *Subscription, ev Event) {
	ev.SubID = s.id
	ev.Seq = s.seq
	s.seq++
	select {
	case s.ch <- ev:
		if m := r.opts.Metrics; m != nil {
			m.Notifications.Inc()
		}
	default:
		s.dropped.Add(1)
		if m := r.opts.Metrics; m != nil {
			m.DroppedEvents.Inc()
		}
	}
}

// admit offers (id, d) to a kNN view, returning whether it entered.
// Membership is the canonical (Dist, Index) total order: a candidate
// enters iff the view is short of k or the candidate strictly precedes
// the current k-th — exactly the rule TopK.Push applies, so the
// maintained view matches a from-scratch evaluation.
func (s *Subscription) admit(id int, d float64) bool {
	n := len(s.res)
	if n == s.k {
		// Admit iff the current k-th ranks strictly after the
		// candidate — the exact predicate TopK.Push uses, including
		// its NaN behavior (a NaN candidate never enters a full view).
		last := s.res[n-1]
		ranksAfter := last.Dist > d || (last.Dist == d && last.Index > id)
		if !ranksAfter {
			return false
		}
		s.res = s.res[:n-1] // evict the current k-th
	}
	// Insert in ascending (Dist, Index) position.
	i := 0
	for i < len(s.res) && (s.res[i].Dist < d || (s.res[i].Dist == d && s.res[i].Index < id)) {
		i++
	}
	s.res = append(s.res, vec.Neighbor{})
	copy(s.res[i+1:], s.res[i:])
	s.res[i] = vec.Neighbor{Index: id, Dist: d}
	return true
}

// contains reports whether id is in the maintained view.
func (s *Subscription) contains(id int) bool {
	for _, nb := range s.res {
		if nb.Index == id {
			return true
		}
	}
	return false
}

// snapshotView copies a result view so events never alias the
// registry's mutable state.
func snapshotView(res []vec.Neighbor) []vec.Neighbor {
	return append([]vec.Neighbor(nil), res...)
}

// sameView reports bit-identical result views.
func sameView(a, b []vec.Neighbor) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Index != b[i].Index || a[i].Dist != b[i].Dist {
			return false
		}
	}
	return true
}
