package standing

import (
	"errors"
	"math"
	"math/rand"
	"sync"
	"testing"

	"pimmine/internal/measure"
	"pimmine/internal/obs"
	"pimmine/internal/vec"
)

// fakeEngine is a brute-force reference store: a map of live rows whose
// Requery is a from-scratch TopK scan — the one-shot evaluation the
// maintained views must match bit for bit.
type fakeEngine struct {
	mu   sync.Mutex
	rows map[int][]float64
}

func newFakeEngine() *fakeEngine { return &fakeEngine{rows: make(map[int][]float64)} }

func (e *fakeEngine) requery(q []float64, k int) ([]vec.Neighbor, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	t := vec.NewTopK(k)
	for id, v := range e.rows {
		t.Push(id, measure.SqEuclidean(v, q))
	}
	return t.Results(), nil
}

func (e *fakeEngine) insert(id int, v []float64) {
	e.mu.Lock()
	e.rows[id] = v
	e.mu.Unlock()
}

func (e *fakeEngine) delete(id int) {
	e.mu.Lock()
	delete(e.rows, id)
	e.mu.Unlock()
}

func viewsEqual(a, b []vec.Neighbor) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Index != b[i].Index || math.Float64bits(a[i].Dist) != math.Float64bits(b[i].Dist) {
			return false
		}
	}
	return true
}

// TestKNNLockstepEqualsOneShot is the acceptance property: replay a
// random insert/update/delete script through the registry hooks and
// assert after every mutation that the maintained view is bit-identical
// to a from-scratch re-query, and that an event was emitted exactly
// when the view changed.
func TestKNNLockstepEqualsOneShot(t *testing.T) {
	t.Parallel()
	const dims, k, ops = 4, 5, 400
	rng := rand.New(rand.NewSource(7))
	eng := newFakeEngine()
	nextID := 0
	newVec := func() []float64 {
		v := make([]float64, dims)
		for i := range v {
			v[i] = math.Round(rng.NormFloat64()*8) / 4 // coarse grid forces distance ties
		}
		return v
	}
	for i := 0; i < 20; i++ {
		eng.insert(nextID, newVec())
		nextID++
	}
	reg, err := NewRegistry(Options{Requery: eng.requery, Buffer: 2 * ops})
	if err != nil {
		t.Fatal(err)
	}
	q := newVec()
	sub, err := reg.SubscribeKNN(q, k)
	if err != nil {
		t.Fatal(err)
	}
	init := <-sub.Events()
	if init.Kind != KindInit || init.Seq != 0 {
		t.Fatalf("first event = %+v, want init seq 0", init)
	}
	want, _ := eng.requery(q, k)
	if !viewsEqual(init.Result, want) {
		t.Fatalf("init view differs from one-shot:\n got %v\nwant %v", init.Result, want)
	}

	lastView := init.Result
	drain := func() []Event {
		var evs []Event
		for {
			select {
			case ev := <-sub.Events():
				evs = append(evs, ev)
			default:
				return evs
			}
		}
	}
	live := []int{}
	for id := range eng.rows {
		live = append(live, id)
	}
	for op := 0; op < ops; op++ {
		switch r := rng.Float64(); {
		case r < 0.5 || len(live) == 0:
			v := newVec()
			eng.insert(nextID, v)
			reg.OnInsert(nextID, v)
			live = append(live, nextID)
			nextID++
		case r < 0.75:
			i := rng.Intn(len(live))
			id := live[i]
			eng.delete(id)
			reg.OnDelete(id)
			live = append(live[:i], live[i+1:]...)
		default:
			id := live[rng.Intn(len(live))]
			v := newVec()
			eng.insert(id, v)
			reg.OnUpdate(id, v)
		}
		want, _ := eng.requery(q, k)
		got := reg.Current(sub.ID())
		if !viewsEqual(got, want) {
			t.Fatalf("op %d: maintained view differs from one-shot:\n got %v\nwant %v", op, got, want)
		}
		evs := drain()
		changed := !viewsEqual(lastView, want)
		if changed {
			if len(evs) == 0 {
				t.Fatalf("op %d: view changed but no event", op)
			}
			final := evs[len(evs)-1]
			if final.Kind != KindUpdate || !viewsEqual(final.Result, want) {
				t.Fatalf("op %d: final event %+v does not carry the new view", op, final)
			}
		} else if len(evs) != 0 {
			t.Fatalf("op %d: view unchanged but got %d events", op, len(evs))
		}
		lastView = want
	}
	if sub.Dropped() != 0 {
		t.Fatalf("dropped %d events with an ample buffer", sub.Dropped())
	}
}

func TestRadiusWatch(t *testing.T) {
	t.Parallel()
	eng := newFakeEngine()
	reg, err := NewRegistry(Options{Requery: eng.requery, Buffer: 8})
	if err != nil {
		t.Fatal(err)
	}
	sub, err := reg.SubscribeRadius([]float64{0, 0}, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	reg.OnInsert(1, []float64{0.5, 0.5})  // inside (sq dist 0.5)
	reg.OnInsert(2, []float64{3, 4})      // outside
	reg.OnInsert(3, []float64{1, 0})      // boundary (sq dist 1.0)
	reg.OnUpdate(2, []float64{0.1, -0.1}) // moves inside
	reg.OnDelete(1)                       // ignored by radius watches
	reg.Unsubscribe(sub.ID())
	var got []Event
	for ev := range sub.Events() {
		got = append(got, ev)
	}
	wantTriggers := []int{1, 3, 2}
	if len(got) != len(wantTriggers) {
		t.Fatalf("got %d matches, want %d: %+v", len(got), len(wantTriggers), got)
	}
	for i, ev := range got {
		if ev.Kind != KindMatch || ev.Trigger != wantTriggers[i] || ev.Seq != i {
			t.Fatalf("match %d = %+v, want trigger %d seq %d", i, ev, wantTriggers[i], i)
		}
	}
}

func TestBoundedChannelDropsAndCounts(t *testing.T) {
	t.Parallel()
	eng := newFakeEngine()
	reg, err := NewRegistry(Options{Requery: eng.requery, Buffer: 2})
	if err != nil {
		t.Fatal(err)
	}
	sub, err := reg.SubscribeRadius([]float64{0}, 10)
	if err != nil {
		t.Fatal(err)
	}
	const n = 10
	for i := 0; i < n; i++ {
		reg.OnInsert(i, []float64{0})
	}
	if got := sub.Dropped(); got != n-2 {
		t.Fatalf("Dropped = %d, want %d", got, n-2)
	}
	// Seq numbers expose the gap: the two delivered events are 0 and 1,
	// and sequence numbering accounts for every generated event.
	ev1, ev2 := <-sub.Events(), <-sub.Events()
	if ev1.Seq != 0 || ev2.Seq != 1 {
		t.Fatalf("delivered seqs %d,%d", ev1.Seq, ev2.Seq)
	}
	reg.Unsubscribe(sub.ID())
	if _, ok := <-sub.Events(); ok {
		t.Fatal("channel not closed after Unsubscribe")
	}
	reg.Unsubscribe(sub.ID()) // double-unsubscribe is a no-op
}

func TestSubscribeValidationAndClose(t *testing.T) {
	t.Parallel()
	eng := newFakeEngine()
	if _, err := NewRegistry(Options{}); !errors.Is(err, ErrBadSubscription) {
		t.Fatalf("NewRegistry without Requery = %v", err)
	}
	reg, err := NewRegistry(Options{Requery: eng.requery})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.SubscribeKNN(nil, 3); !errors.Is(err, ErrBadSubscription) {
		t.Fatalf("empty query = %v", err)
	}
	if _, err := reg.SubscribeKNN([]float64{1}, 0); !errors.Is(err, ErrBadSubscription) {
		t.Fatalf("k=0 = %v", err)
	}
	if _, err := reg.SubscribeRadius([]float64{1}, 0); !errors.Is(err, ErrBadSubscription) {
		t.Fatalf("radius=0 = %v", err)
	}
	s1, err := reg.SubscribeKNN([]float64{1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	reg.Close()
	if _, ok := <-s1.Events(); ok {
		// KindInit was buffered; drain until closed.
		for range s1.Events() {
		}
	}
	if _, err := reg.SubscribeKNN([]float64{1}, 1); !errors.Is(err, ErrClosed) {
		t.Fatalf("subscribe after Close = %v", err)
	}
	reg.Close() // idempotent
	reg.OnInsert(1, []float64{1})
	reg.OnDelete(1) // hooks on a closed registry are no-ops
}

func TestMetricsPublish(t *testing.T) {
	t.Parallel()
	eng := newFakeEngine()
	r := obs.NewRegistry()
	m := NewMetrics(r)
	reg, err := NewRegistry(Options{Requery: eng.requery, Buffer: 1, Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	sub, err := reg.SubscribeRadius([]float64{0}, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		reg.OnInsert(i, []float64{0})
	}
	if m.Subscriptions.Value() != 1 || m.Subscribed.Value() != 1 {
		t.Errorf("Subscriptions=%d Subscribed=%d", m.Subscriptions.Value(), m.Subscribed.Value())
	}
	if m.Evaluations.Value() != 3 {
		t.Errorf("Evaluations = %d, want 3", m.Evaluations.Value())
	}
	if m.Notifications.Value() != 1 || m.DroppedEvents.Value() != 2 {
		t.Errorf("Notifications=%d Dropped=%d, want 1/2", m.Notifications.Value(), m.DroppedEvents.Value())
	}
	reg.Unsubscribe(sub.ID())
	if m.Subscriptions.Value() != 0 {
		t.Errorf("Subscriptions after unsubscribe = %d", m.Subscriptions.Value())
	}
}

// TestConcurrentSubscribersAndMutations is the race hammer: mutation
// hooks, subscribe/unsubscribe and consumers all running concurrently.
func TestConcurrentSubscribersAndMutations(t *testing.T) {
	t.Parallel()
	eng := newFakeEngine()
	for i := 0; i < 8; i++ {
		eng.insert(i, []float64{float64(i), 0})
	}
	reg, err := NewRegistry(Options{Requery: eng.requery, Buffer: 4})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		for i := 100; i < 400; i++ {
			v := []float64{float64(i % 13), float64(i % 7)}
			eng.insert(i, v)
			reg.OnInsert(i, v)
			if i%5 == 0 {
				eng.delete(i - 50)
				reg.OnDelete(i - 50)
			}
		}
	}()
	for g := 0; g < 2; g++ {
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 60; i++ {
				sub, err := reg.SubscribeKNN([]float64{float64(g), 1}, 3)
				if err != nil {
					t.Error(err)
					return
				}
				for j := 0; j < 3; j++ {
					select {
					case <-sub.Events():
					default:
					}
				}
				reg.Unsubscribe(sub.ID())
				for range sub.Events() {
				}
			}
		}(g)
	}
	wg.Wait()
	reg.Close()
}
