package plan

import (
	"fmt"
	"math/rand"
	"testing"
)

// bruteForceBest is an independently-structured reference for Optimize:
// recursive enumeration of every candidate subset (the 2^L plans of
// §V-D), each evaluated under the canonical bound order. Written as
// include/exclude recursion — not a bitmask loop — so a shared
// enumeration bug can't hide in both implementations.
func bruteForceBest(n, d int, cands []Bound) float64 {
	best := Cost(n, d, nil)
	var rec func(i int, chosen []Bound)
	rec = func(i int, chosen []Bound) {
		if i == len(cands) {
			if len(chosen) == 0 {
				return
			}
			seq := append([]Bound(nil), chosen...)
			orderBounds(seq)
			if c := Cost(n, d, seq); c < best {
				best = c
			}
			return
		}
		rec(i+1, chosen)
		chosen = append(chosen, cands[i])
		rec(i+1, chosen)
	}
	rec(0, nil)
	return best
}

// randomBounds draws a candidate set with randomized Tcost/Pr, mixed
// families (including the independent empty family), out-of-range prune
// ratios (Cost clamps them), and at most one PIM bound.
func randomBounds(rng *rand.Rand) []Bound {
	l := rng.Intn(9) // 0..8 candidates → up to 256 plans
	out := make([]Bound, 0, l)
	pimAt := -1
	if l > 0 && rng.Intn(2) == 0 {
		pimAt = rng.Intn(l)
	}
	for i := 0; i < l; i++ {
		pr := rng.Float64() * 1.2 // deliberately exceeds 1 sometimes
		if rng.Intn(10) == 0 {
			pr = 1 // exact-edge: bound prunes everything
		}
		fam := ""
		if f := rng.Intn(4); f > 0 {
			fam = string(rune('A' + f - 1))
		}
		out = append(out, Bound{
			Name:         fmt.Sprintf("b%02d", i),
			Family:       fam,
			TransferDims: rng.Intn(64),
			PruneRatio:   pr,
			PIM:          i == pimAt,
		})
	}
	return out
}

// The optimizer property (§V-D, Eq. 13): on any randomized candidate
// set, Optimize returns exactly the minimum over the brute-force
// enumeration of all 2^L subset plans — and the plan it reports is
// internally consistent (cost recomputes, PIM bound leads, every bound
// came from the candidate list).
func TestOptimizeMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(20240805))
	for trial := 0; trial < 400; trial++ {
		cands := randomBounds(rng)
		n := rng.Intn(1_000_000) + 1
		d := rng.Intn(4096) + 1
		best, err := Optimize(n, d, cands)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if want := bruteForceBest(n, d, cands); best.Cost != want {
			t.Fatalf("trial %d (n=%d d=%d L=%d): Optimize cost %v, brute force %v",
				trial, n, d, len(cands), best.Cost, want)
		}
		if got := Cost(n, d, best.Bounds); got != best.Cost {
			t.Fatalf("trial %d: reported cost %v does not recompute (%v)", trial, best.Cost, got)
		}
		byName := map[string]Bound{}
		for _, b := range cands {
			byName[b.Name] = b
		}
		for i, b := range best.Bounds {
			if byName[b.Name] != b {
				t.Fatalf("trial %d: plan bound %q not among the candidates", trial, b.Name)
			}
			if b.PIM && i != 0 {
				t.Fatalf("trial %d: PIM bound at position %d, must run first", trial, i)
			}
		}
	}
}
