// Package plan implements §V-D of the paper: execution-plan optimization
// for filter-and-refinement algorithms. Given a candidate set of bounds
// (original host bounds and the PIM-aware bound) with measured pruning
// ratios Pr(B) and per-object transfer costs Tcost(B), it enumerates the
// 2^L subset plans and picks the one minimizing Eq. 13's expected data
// transfer:
//
//	Tcost = N · Σ_i Tcost(Bi) · Π_{j<i} (1 − Pr(Bj))
//
// followed by the mandatory exact refinement on whatever survives every
// bound. (The paper's Eq. 13 writes Π_{j=1..i}; charging bound Bi on the
// candidate set it *receives*, |D_{i−1}| = N·Π_{j<i}(1−Pr(Bj)), is the
// consistent reading and is what we implement.)
package plan

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Bound is one candidate filter for the optimizer.
type Bound struct {
	// Name identifies the bound (e.g. "LBFNN-7", "LBPIM-FNN-105").
	Name string
	// Family groups bounds that dominate each other: within one family
	// (e.g. the LB_FNN cascade, including its PIM-aware member) a bound
	// prunes nothing beyond the best same-family bound already applied —
	// this encodes §V-D's "objects survived from LB_PIM-FNN^s are hard
	// to be filtered by LB_FNN^{d/16}". Bounds in different families
	// (or with an empty Family) prune independently.
	Family string
	// TransferDims is Tcost(B) in operands moved per consulted object
	// (e.g. d/64·b bits → d/64 operands for LB_FNN^{d/64}; 3 for a
	// PIM-aware bound, per Fig 8).
	TransferDims int
	// PruneRatio is Pr(B), measured offline (§V-D: "measure pruning
	// ratio of the bound").
	PruneRatio float64
	// PIM marks the PIM-aware bound; at most one PIM bound is allowed
	// per plan and it always runs first, since its dot products are
	// produced for the whole dataset in one batch pass.
	PIM bool
}

// Plan is an ordered bound sequence plus its Eq. 13 cost.
type Plan struct {
	Bounds []Bound
	// Cost is the expected data transfer in operand units (multiply by
	// the operand width for bits), including exact refinement.
	Cost float64
}

// String renders the pipeline, e.g. "LBPIM-FNN-105 → ED".
func (p Plan) String() string {
	parts := make([]string, 0, len(p.Bounds)+1)
	for _, b := range p.Bounds {
		parts = append(parts, b.Name)
	}
	parts = append(parts, "ED")
	return strings.Join(parts, " → ")
}

// Cost evaluates Eq. 13 for an explicit bound order over n objects with
// exact refinement at dimensionality d. Bounds sharing a Family compose
// by dominance (the family's best pruning ratio wins); distinct families
// compose independently.
func Cost(n, d int, seq []Bound) float64 {
	famBest := make(map[string]float64)
	survivors := 1.0
	var total float64
	for i, b := range seq {
		total += float64(b.TransferDims) * survivors
		key := b.Family
		if key == "" {
			key = fmt.Sprintf("\x00unique-%d", i) // independent singleton
		}
		pr := clamp01(b.PruneRatio)
		if prev := famBest[key]; pr > prev && prev < 1 {
			famBest[key] = pr
			survivors *= (1 - pr) / (1 - prev)
		}
	}
	total += float64(d) * survivors // exact refinement on the remainder
	return total * float64(n)
}

// Optimize enumerates every subset of candidates (2^L plans, §V-D) and
// returns the minimum-cost plan. Within a subset, the PIM bound (if
// selected) runs first and the host bounds follow in ascending transfer
// cost — matching the cascades' cheap-to-expensive structure. L is capped
// at 20 to keep enumeration sane; realistic candidate sets have ≤ 6.
func Optimize(n, d int, candidates []Bound) (Plan, error) {
	if len(candidates) > 20 {
		return Plan{}, fmt.Errorf("plan: %d candidates exceed enumeration cap of 20", len(candidates))
	}
	pimCount := 0
	for _, b := range candidates {
		if b.PIM {
			pimCount++
		}
	}
	if pimCount > 1 {
		return Plan{}, fmt.Errorf("plan: %d PIM bounds; at most one is supported per plan", pimCount)
	}
	best := Plan{Bounds: nil, Cost: Cost(n, d, nil)}
	for mask := 1; mask < 1<<len(candidates); mask++ {
		var seq []Bound
		for i, b := range candidates {
			if mask&(1<<i) != 0 {
				seq = append(seq, b)
			}
		}
		orderBounds(seq)
		if c := Cost(n, d, seq); c < best.Cost {
			best = Plan{Bounds: seq, Cost: c}
		}
	}
	return best, nil
}

// Decision is an Optimize outcome with enough context to explain *why*
// the plan won under Eq. 13 — the serving engine's observability layer
// records it as a plan-chosen event.
type Decision struct {
	// Chosen is the minimum-cost plan.
	Chosen Plan
	// BaselineCost is the no-filter cost N·d (exact refinement of
	// everything).
	BaselineCost float64
	// AllBoundsCost is the cost of running every candidate bound in the
	// canonical order.
	AllBoundsCost float64
	// Considered is the number of enumerated plans (2^L).
	Considered int
	// Dropped names the candidate bounds the chosen plan leaves out.
	Dropped []string
}

// Decide runs Optimize and packages the Eq. 13 rationale.
func Decide(n, d int, candidates []Bound) (Decision, error) {
	best, err := Optimize(n, d, candidates)
	if err != nil {
		return Decision{}, err
	}
	all := make([]Bound, len(candidates))
	copy(all, candidates)
	orderBounds(all)
	dec := Decision{
		Chosen:        best,
		BaselineCost:  Cost(n, d, nil),
		AllBoundsCost: Cost(n, d, all),
		Considered:    1 << len(candidates),
	}
	chosen := make(map[string]bool, len(best.Bounds))
	for _, b := range best.Bounds {
		chosen[b.Name] = true
	}
	for _, b := range candidates {
		if !chosen[b.Name] {
			dec.Dropped = append(dec.Dropped, b.Name)
		}
	}
	sort.Strings(dec.Dropped)
	return dec, nil
}

// Reason renders a one-line explanation of the decision: the chosen
// pipeline, its expected transfer versus the unfiltered scan and the
// keep-every-bound plan, and which candidates Eq. 13 rejected.
func (d Decision) Reason() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %.3g operands expected transfer (%.1f%% of unfiltered %.3g",
		d.Chosen, d.Chosen.Cost, 100*safeRatio(d.Chosen.Cost, d.BaselineCost), d.BaselineCost)
	if d.AllBoundsCost > d.Chosen.Cost {
		fmt.Fprintf(&b, "; all-bounds plan costs %.3g", d.AllBoundsCost)
	}
	b.WriteString(")")
	if len(d.Dropped) > 0 {
		fmt.Fprintf(&b, "; dropped %s — their extra scans cost more transfer than they prune (Eq. 13)",
			strings.Join(d.Dropped, ", "))
	}
	fmt.Fprintf(&b, "; %d plans enumerated", d.Considered)
	return b.String()
}

func safeRatio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// orderBounds sorts a plan: PIM bound first, then ascending transfer cost,
// ties by name for determinism.
func orderBounds(seq []Bound) {
	sort.SliceStable(seq, func(i, j int) bool {
		if seq[i].PIM != seq[j].PIM {
			return seq[i].PIM
		}
		if seq[i].TransferDims != seq[j].TransferDims {
			return seq[i].TransferDims < seq[j].TransferDims
		}
		return seq[i].Name < seq[j].Name
	})
}

// RoutingBound prices the shard-routing tier (internal/route) as an
// Eq. 13 candidate: a filter whose pruning ratio is the observed
// fraction of shards skipped (a skipped shard's objects transfer
// nothing) and whose probe cost is probeDims operands per object — the
// per-shard summary evaluation amortized over the shard's rows, which
// rounds to 0 at serving shard sizes. It gets its own family: summary
// bounds prune whole shards and compose independently with the
// per-object cascades.
func RoutingBound(name string, skippedFrac float64, probeDims int) Bound {
	return Bound{
		Name:         name,
		Family:       "route",
		TransferDims: probeDims,
		PruneRatio:   clamp01(skippedFrac),
	}
}

// PruneRatio measures Pr(B) from a bound's values against a fixed
// threshold: the fraction of objects whose bound already excludes them
// (§V-D measures this offline on a sample of queries; callers average
// over queries).
func PruneRatio(lbs []float64, threshold float64) float64 {
	if len(lbs) == 0 {
		return 0
	}
	pruned := 0
	for _, lb := range lbs {
		if lb >= threshold {
			pruned++
		}
	}
	return float64(pruned) / float64(len(lbs))
}

// UpperPruneRatio is the similarity-measure analogue: objects whose upper
// bound cannot reach the threshold are pruned.
func UpperPruneRatio(ubs []float64, threshold float64) float64 {
	if len(ubs) == 0 {
		return 0
	}
	pruned := 0
	for _, ub := range ubs {
		if ub <= threshold {
			pruned++
		}
	}
	return float64(pruned) / float64(len(ubs))
}

func clamp01(x float64) float64 {
	return math.Max(0, math.Min(1, x))
}
