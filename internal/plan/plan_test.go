package plan

import (
	"math"
	"testing"
)

func TestCostNoBounds(t *testing.T) {
	// Pure exact scan: N·d operand transfers.
	if got := Cost(100, 40, nil); got != 4000 {
		t.Fatalf("Cost = %v, want 4000", got)
	}
}

func TestCostSequence(t *testing.T) {
	// One bound with cost 2 and 90% pruning over N=100, d=40:
	// 100·2 + 100·0.1·40 = 200 + 400 = 600.
	seq := []Bound{{Name: "b", TransferDims: 2, PruneRatio: 0.9}}
	if got := Cost(100, 40, seq); math.Abs(got-600) > 1e-9 {
		t.Fatalf("Cost = %v, want 600", got)
	}
	// Adding a second bound (cost 4, prunes 50% of the rest):
	// 200 + 0.1·100·4 + 0.05·100·40 = 200+40+200 = 440.
	seq = append(seq, Bound{Name: "c", TransferDims: 4, PruneRatio: 0.5})
	if got := Cost(100, 40, seq); math.Abs(got-440) > 1e-9 {
		t.Fatalf("Cost = %v, want 440", got)
	}
}

func TestCostClampsRatios(t *testing.T) {
	seq := []Bound{{Name: "b", TransferDims: 1, PruneRatio: 1.5}}
	if got := Cost(10, 8, seq); got != 10 {
		t.Fatalf("over-unity prune ratio must clamp; Cost = %v", got)
	}
}

// Fig 12's scenario: a PIM bound with strong pruning at negligible
// transfer makes the original coarse bounds pure overhead — the optimizer
// must drop them (§VI-C: "removing all original bounds and only using
// LB_PIM-FNN^105 leads to least data transfer").
func TestOptimizeDropsRedundantHostBounds(t *testing.T) {
	candidates := []Bound{
		{Name: "LBPIM-FNN-105", Family: "FNN", TransferDims: 3, PruneRatio: 0.99, PIM: true},
		{Name: "LBFNN-7", Family: "FNN", TransferDims: 14, PruneRatio: 0.85},
		{Name: "LBFNN-28", Family: "FNN", TransferDims: 56, PruneRatio: 0.95},
		{Name: "LBFNN-105", Family: "FNN", TransferDims: 210, PruneRatio: 0.985},
	}
	best, err := Optimize(992272, 420, candidates)
	if err != nil {
		t.Fatal(err)
	}
	if len(best.Bounds) != 1 || !best.Bounds[0].PIM {
		t.Fatalf("best plan = %v, want PIM bound alone", best)
	}
}

// When the host bounds are cheaper than the PIM bound and prune nearly as
// well (the k-means situation, §VI-D), the optimizer keeps them in front.
func TestOptimizeKeepsCheapHostBoundFirst(t *testing.T) {
	candidates := []Bound{
		{Name: "LBPIM-ED", TransferDims: 3, PruneRatio: 0.80, PIM: true},
		{Name: "triangle", TransferDims: 1, PruneRatio: 0.78},
	}
	best, err := Optimize(100000, 500, candidates)
	if err != nil {
		t.Fatal(err)
	}
	if len(best.Bounds) != 2 {
		t.Fatalf("best plan = %v, want both bounds", best)
	}
	// The PIM bound leads (its dots are batch-produced), but the host
	// bound must be retained.
	found := false
	for _, b := range best.Bounds {
		if b.Name == "triangle" {
			found = true
		}
	}
	if !found {
		t.Fatalf("plan %v dropped the cheap host bound", best)
	}
}

func TestOptimizeEmptyCandidates(t *testing.T) {
	best, err := Optimize(100, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(best.Bounds) != 0 || best.Cost != 1000 {
		t.Fatalf("empty-candidate plan = %+v", best)
	}
}

func TestOptimizeRejectsTooMany(t *testing.T) {
	many := make([]Bound, 21)
	if _, err := Optimize(10, 10, many); err == nil {
		t.Fatal("must reject >20 candidates")
	}
}

func TestOptimizeRejectsTwoPIMBounds(t *testing.T) {
	two := []Bound{{Name: "a", PIM: true}, {Name: "b", PIM: true}}
	if _, err := Optimize(10, 10, two); err == nil {
		t.Fatal("must reject multiple PIM bounds")
	}
}

func TestPlanString(t *testing.T) {
	p := Plan{Bounds: []Bound{{Name: "LBPIM-FNN-105"}, {Name: "LBFNN-28"}}}
	if got := p.String(); got != "LBPIM-FNN-105 → LBFNN-28 → ED" {
		t.Fatalf("String = %q", got)
	}
	if got := (Plan{}).String(); got != "ED" {
		t.Fatalf("empty plan String = %q", got)
	}
}

func TestPruneRatio(t *testing.T) {
	lbs := []float64{1, 2, 3, 4}
	if got := PruneRatio(lbs, 3); got != 0.5 {
		t.Fatalf("PruneRatio = %v, want 0.5 (lb≥threshold prunes)", got)
	}
	if PruneRatio(nil, 1) != 0 {
		t.Fatal("empty input must give 0")
	}
	ubs := []float64{0.1, 0.5, 0.9}
	if got := UpperPruneRatio(ubs, 0.5); math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("UpperPruneRatio = %v, want 2/3", got)
	}
}

// Property: the optimizer never returns a plan worse than either the
// empty plan or any single-bound plan.
func TestOptimizeDominatesSingletons(t *testing.T) {
	candidates := []Bound{
		{Name: "a", TransferDims: 5, PruneRatio: 0.3},
		{Name: "b", TransferDims: 9, PruneRatio: 0.6},
		{Name: "c", TransferDims: 2, PruneRatio: 0.1, PIM: true},
	}
	best, err := Optimize(1000, 100, candidates)
	if err != nil {
		t.Fatal(err)
	}
	if best.Cost > Cost(1000, 100, nil) {
		t.Fatal("worse than no filtering")
	}
	for _, b := range candidates {
		if best.Cost > Cost(1000, 100, []Bound{b}) {
			t.Fatalf("worse than singleton %q", b.Name)
		}
	}
}
