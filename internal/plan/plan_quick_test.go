package plan

import (
	"fmt"
	"testing"
	"testing/quick"
)

// genBounds derives a small candidate set from raw fuzz input.
func genBounds(raw []byte) []Bound {
	var out []Bound
	for i := 0; i+2 < len(raw) && len(out) < 6; i += 3 {
		out = append(out, Bound{
			Name:         fmt.Sprintf("b%d", i/3),
			Family:       string(rune('A' + raw[i]%3)),
			TransferDims: int(raw[i+1]%50) + 1,
			PruneRatio:   float64(raw[i+2]%100) / 100,
		})
	}
	return out
}

// Property: Optimize never returns a plan costing more than the empty
// plan or any single candidate.
func TestOptimizeDominatesQuick(t *testing.T) {
	f := func(raw []byte, nRaw uint16, dRaw uint8) bool {
		cands := genBounds(raw)
		n := int(nRaw)%100000 + 1
		d := int(dRaw)%500 + 1
		best, err := Optimize(n, d, cands)
		if err != nil {
			return false
		}
		if best.Cost > Cost(n, d, nil)+1e-9 {
			return false
		}
		for _, b := range cands {
			if best.Cost > Cost(n, d, []Bound{b})+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Cost is non-negative, scales linearly with N, and adding a
// zero-transfer bound never increases it.
func TestCostPropertiesQuick(t *testing.T) {
	f := func(raw []byte, dRaw uint8) bool {
		seq := genBounds(raw)
		d := int(dRaw)%500 + 1
		c1 := Cost(1000, d, seq)
		if c1 < 0 {
			return false
		}
		c2 := Cost(2000, d, seq)
		if diff := c2 - 2*c1; diff > 1e-6 || diff < -1e-6 {
			return false // linear in N
		}
		free := append(append([]Bound{}, seq...), Bound{
			Name: "free", Family: "Z", TransferDims: 0, PruneRatio: 0.5,
		})
		return Cost(1000, d, free) <= c1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: within one family, a dominated (lower-ratio) bound appended
// after a stronger one changes nothing but its own transfer cost.
func TestFamilyDominanceQuick(t *testing.T) {
	f := func(prA, prB uint8, tdB uint8, dRaw uint8) bool {
		a := Bound{Name: "a", Family: "F", TransferDims: 1, PruneRatio: float64(prA%100) / 100}
		b := Bound{Name: "b", Family: "F", TransferDims: int(tdB%20) + 1, PruneRatio: float64(prB%100) / 100}
		if b.PruneRatio > a.PruneRatio {
			a.PruneRatio, b.PruneRatio = b.PruneRatio, a.PruneRatio
		}
		d := int(dRaw)%500 + 1
		n := 1000
		withB := Cost(n, d, []Bound{a, b})
		withoutB := Cost(n, d, []Bound{a})
		// b is dominated: its only effect is its own evaluation cost on
		// a's survivors.
		extra := float64(n) * float64(b.TransferDims) * (1 - a.PruneRatio)
		diff := withB - withoutB - extra
		return diff < 1e-6 && diff > -1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
