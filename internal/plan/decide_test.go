package plan

import (
	"math"
	"strings"
	"testing"
)

// TestDecideFig12 mirrors TestOptimizeDropsRedundantHostBounds but checks
// the packaged rationale: the PIM bound wins alone, every host bound lands
// in Dropped, and the costs bracket the choice.
func TestDecideFig12(t *testing.T) {
	candidates := []Bound{
		{Name: "LBPIM-FNN-105", Family: "FNN", TransferDims: 3, PruneRatio: 0.99, PIM: true},
		{Name: "LBFNN-7", Family: "FNN", TransferDims: 14, PruneRatio: 0.85},
		{Name: "LBFNN-28", Family: "FNN", TransferDims: 56, PruneRatio: 0.95},
		{Name: "LBFNN-105", Family: "FNN", TransferDims: 210, PruneRatio: 0.985},
	}
	dec, err := Decide(992272, 420, candidates)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Chosen.Bounds) != 1 || !dec.Chosen.Bounds[0].PIM {
		t.Fatalf("chosen = %v, want PIM bound alone", dec.Chosen)
	}
	if got, want := dec.Dropped, []string{"LBFNN-105", "LBFNN-28", "LBFNN-7"}; len(got) != len(want) {
		t.Fatalf("dropped = %v, want %v", got, want)
	} else {
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("dropped = %v, want %v (sorted)", got, want)
			}
		}
	}
	if dec.Considered != 16 {
		t.Fatalf("considered = %d, want 2^4", dec.Considered)
	}
	if want := Cost(992272, 420, nil); math.Abs(dec.BaselineCost-want) > 1e-9 {
		t.Fatalf("baseline = %g, want %g", dec.BaselineCost, want)
	}
	if !(dec.Chosen.Cost < dec.AllBoundsCost && dec.AllBoundsCost < dec.BaselineCost) {
		t.Fatalf("cost ordering chosen=%g all=%g baseline=%g",
			dec.Chosen.Cost, dec.AllBoundsCost, dec.BaselineCost)
	}

	reason := dec.Reason()
	for _, want := range []string{
		"LBPIM-FNN-105 → ED",
		"% of unfiltered",
		"dropped LBFNN-105, LBFNN-28, LBFNN-7",
		"Eq. 13",
		"16 plans enumerated",
	} {
		if !strings.Contains(reason, want) {
			t.Errorf("Reason() missing %q: %s", want, reason)
		}
	}
}

// TestDecideKeepsEverything: when every candidate earns its place, Dropped
// is empty and the reason says nothing about rejected bounds.
func TestDecideKeepsEverything(t *testing.T) {
	candidates := []Bound{
		{Name: "cheap", TransferDims: 1, PruneRatio: 0.9},
	}
	dec, err := Decide(1000, 100, candidates)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Dropped) != 0 {
		t.Fatalf("dropped = %v, want none", dec.Dropped)
	}
	if strings.Contains(dec.Reason(), "dropped") {
		t.Fatalf("reason mentions drops: %s", dec.Reason())
	}
}

func TestDecidePropagatesOptimizeErrors(t *testing.T) {
	two := []Bound{
		{Name: "a", TransferDims: 1, PruneRatio: 0.5, PIM: true},
		{Name: "b", TransferDims: 1, PruneRatio: 0.5, PIM: true},
	}
	if _, err := Decide(10, 4, two); err == nil {
		t.Fatal("two PIM bounds must error")
	}
}
