// KMV-style content sketches: a deterministic bottom-k sample of a row
// set, carrying the SimHash code of every sampled row. The shard-routing
// tier (internal/route) keeps one Sketch per shard and scores a query
// against the sampled codes — the LSH Ensemble idea (Zhu et al., PVLDB
// 2016) of per-partition sketches consulted at query time, adapted from
// set containment to angular similarity over dense vectors.
//
// The sample is *content-addressed*: each row is ranked by a seeded
// 64-bit hash of its float bit patterns, and the k smallest ranks are
// kept. Two properties matter to the routing tier:
//
//   - Determinism: the same rows yield the same sample regardless of
//     insertion order, process, or run (no global rand anywhere — the
//     seed is an explicit parameter, like NewHasher's).
//   - Uniformity: the hash ranks are effectively uniform, so the sample
//     is an unbiased size-k subsample of the shard — the score a query
//     computes against it estimates the score against the full shard.
package lsh

import (
	"fmt"
	"math"
	"sort"

	"pimmine/internal/measure"
)

// Sketch is a bottom-k (KMV) sample of rows with their SimHash codes.
// It is immutable from the reader's point of view once shared: the
// routing tier publishes sketches copy-on-write (Clone + Add), so
// concurrent readers never observe a half-applied update.
type Sketch struct {
	h    *Hasher
	size int
	seed uint64

	// Parallel slices sorted ascending by rank; at most size entries.
	ranks []uint64
	codes []measure.BitVector
	rows  int // rows observed (not sampled) — the shard cardinality proxy
}

// NewSketch builds an empty sketch of up to size sampled rows, hashing
// codes with h and ranking rows with the given seed. The seed is
// explicit so routed results are reproducible across runs.
func NewSketch(h *Hasher, size int, seed int64) *Sketch {
	if h == nil || size <= 0 {
		panic(fmt.Sprintf("lsh: invalid sketch (hasher=%v size=%d)", h != nil, size))
	}
	return &Sketch{h: h, size: size, seed: uint64(seed)}
}

// rank computes the seeded content hash of one row: FNV-1a over the
// float64 bit patterns, finished with a SplitMix64 avalanche so nearby
// bit patterns land far apart in rank space.
func (s *Sketch) rank(v []float64) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset) ^ s.seed
	for _, x := range v {
		b := math.Float64bits(x)
		for i := 0; i < 8; i++ {
			h ^= (b >> (8 * i)) & 0xff
			h *= prime
		}
	}
	// SplitMix64 finalizer.
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// Add observes one row: it always counts toward Rows, and joins the
// sample when its rank is among the size smallest seen. Duplicate ranks
// (identical rows) are kept once — KMV samples distinct content.
func (s *Sketch) Add(v []float64) {
	s.rows++
	r := s.rank(v)
	pos := sort.Search(len(s.ranks), func(i int) bool { return s.ranks[i] >= r })
	if pos < len(s.ranks) && s.ranks[pos] == r {
		return // identical content already sampled
	}
	if len(s.ranks) == s.size {
		if r >= s.ranks[s.size-1] {
			return // ranks above the current k-th minimum never qualify
		}
		s.ranks = s.ranks[:s.size-1]
		s.codes = s.codes[:s.size-1]
	}
	s.ranks = append(s.ranks, 0)
	s.codes = append(s.codes, measure.BitVector{})
	copy(s.ranks[pos+1:], s.ranks[pos:])
	copy(s.codes[pos+1:], s.codes[pos:])
	s.ranks[pos] = r
	s.codes[pos] = s.h.Hash(v)
}

// Clone returns an independent copy (the copy-on-write primitive of the
// routing tier). The sampled codes are shared — they are immutable once
// hashed.
func (s *Sketch) Clone() *Sketch {
	out := &Sketch{h: s.h, size: s.size, seed: s.seed, rows: s.rows}
	out.ranks = append([]uint64(nil), s.ranks...)
	out.codes = append([]measure.BitVector(nil), s.codes...)
	return out
}

// Len returns the current sample size (≤ the configured size).
func (s *Sketch) Len() int { return len(s.codes) }

// Rows returns how many rows the sketch has observed.
func (s *Sketch) Rows() int { return s.rows }

// Codes returns the sampled SimHash codes (callers must not mutate).
func (s *Sketch) Codes() []measure.BitVector { return s.codes }

// Sim estimates the angular similarity between the code and one sampled
// code: SimHash flips each bit with probability θ/π, so 1 − hamming/bits
// estimates 1 − θ/π ∈ [0, 1] (1 = parallel vectors).
func (s *Sketch) Sim(code measure.BitVector, i int) float64 {
	return 1 - float64(measure.Hamming(code, s.codes[i]))/float64(s.h.Bits)
}
