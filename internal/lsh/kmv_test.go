package lsh

import (
	"math/rand"
	"testing"

	"pimmine/internal/dataset"
	"pimmine/internal/measure"
)

// The determinism regression the routing tier depends on: every source
// of randomness in this package is an explicit seed parameter (no
// math/rand globals, no map iteration on the hot path), so the same
// (rows, seed) always yields the same signatures — which is what makes
// routed results reproducible across runs and processes.
func TestSketchDeterministicAcrossInsertionOrder(t *testing.T) {
	t.Parallel()
	prof := dataset.Profile{Name: "t", FullN: 100, D: 16, Clusters: 3, Correlation: 0.3, Spread: 0.2}
	ds := dataset.Generate(prof, 80, 5)

	build := func(order []int) *Sketch {
		sk := NewSketch(NewHasher(prof.D, 64, 7), 16, 11)
		for _, i := range order {
			sk.Add(ds.X.Row(i))
		}
		return sk
	}
	fwd := make([]int, ds.X.N)
	for i := range fwd {
		fwd[i] = i
	}
	shuf := append([]int(nil), fwd...)
	rand.New(rand.NewSource(1)).Shuffle(len(shuf), func(i, j int) { shuf[i], shuf[j] = shuf[j], shuf[i] })

	a, b := build(fwd), build(shuf)
	if a.Len() != b.Len() || a.Rows() != b.Rows() {
		t.Fatalf("sample shape differs across insertion order: %d/%d vs %d/%d", a.Len(), a.Rows(), b.Len(), b.Rows())
	}
	for i := range a.ranks {
		if a.ranks[i] != b.ranks[i] {
			t.Fatalf("rank %d differs across insertion order", i)
		}
		if measure.Hamming(a.codes[i], b.codes[i]) != 0 {
			t.Fatalf("sampled code %d differs across insertion order", i)
		}
	}

	// And across seeds the sample must differ — the seed is live.
	c := NewSketch(NewHasher(prof.D, 64, 7), 16, 12)
	for _, i := range fwd {
		c.Add(ds.X.Row(i))
	}
	same := true
	for i := range a.ranks {
		if i >= c.Len() || a.ranks[i] != c.ranks[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different sketch seeds produced identical samples")
	}
}

func TestSketchBottomKAndDuplicates(t *testing.T) {
	t.Parallel()
	h := NewHasher(4, 32, 3)
	sk := NewSketch(h, 4, 9)
	rows := [][]float64{
		{0.1, 0.2, 0.3, 0.4},
		{0.5, 0.6, 0.7, 0.8},
		{0.9, 0.1, 0.2, 0.3},
		{0.4, 0.5, 0.6, 0.7},
		{0.8, 0.9, 0.1, 0.2},
		{0.1, 0.2, 0.3, 0.4}, // duplicate of row 0
	}
	for _, r := range rows {
		sk.Add(r)
	}
	if sk.Rows() != 6 {
		t.Fatalf("Rows = %d, want 6", sk.Rows())
	}
	if sk.Len() != 4 {
		t.Fatalf("Len = %d, want 4 (bottom-k of 5 distinct rows)", sk.Len())
	}
	for i := 1; i < len(sk.ranks); i++ {
		if sk.ranks[i] <= sk.ranks[i-1] {
			t.Fatalf("ranks not strictly ascending at %d", i)
		}
	}
	// The retained sample must be exactly the 4 smallest distinct ranks.
	all := map[uint64]bool{}
	for _, r := range rows {
		all[sk.rank(r)] = true
	}
	kept := 0
	for r := range all {
		for _, have := range sk.ranks {
			if have == r {
				kept++
			}
		}
	}
	if kept != 4 {
		t.Fatalf("sample is not the bottom-k of the distinct ranks (kept %d)", kept)
	}
}

func TestSketchCloneIsIndependent(t *testing.T) {
	t.Parallel()
	h := NewHasher(4, 32, 3)
	sk := NewSketch(h, 8, 9)
	sk.Add([]float64{0.1, 0.2, 0.3, 0.4})
	cl := sk.Clone()
	cl.Add([]float64{0.5, 0.6, 0.7, 0.8})
	if sk.Len() != 1 || sk.Rows() != 1 {
		t.Fatalf("clone mutation leaked into the original: len=%d rows=%d", sk.Len(), sk.Rows())
	}
	if cl.Len() != 2 || cl.Rows() != 2 {
		t.Fatalf("clone did not accept the add: len=%d rows=%d", cl.Len(), cl.Rows())
	}
}

func TestSketchSimRange(t *testing.T) {
	t.Parallel()
	h := NewHasher(8, 128, 5)
	sk := NewSketch(h, 4, 1)
	v := []float64{0.1, 0.9, 0.2, 0.8, 0.3, 0.7, 0.4, 0.6}
	sk.Add(v)
	if got := sk.Sim(h.Hash(v), 0); got != 1 {
		t.Fatalf("self-similarity = %v, want 1", got)
	}
	w := make([]float64, 8)
	for i := range w {
		w[i] = -v[i]
	}
	if got := sk.Sim(h.Hash(w), 0); got > 0.1 {
		t.Fatalf("antipodal similarity = %v, want ≈ 0", got)
	}
}
