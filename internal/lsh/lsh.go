// Package lsh implements Charikar-style random-hyperplane locality
// sensitive hashing (SimHash, STOC 2002), used by the paper (§VI) to learn
// binary codes of 128–1024 bits from GIST descriptors for the
// Hamming-distance kNN experiments (Fig 14).
//
// Each output bit is the sign of the input's projection onto a random
// Gaussian hyperplane. The expected Hamming distance between two codes is
// proportional to the angle between the original vectors, so kNN on codes
// approximates kNN on the originals — exactly the property Fig 14 needs.
package lsh

import (
	"fmt"
	"math/rand"

	"pimmine/internal/measure"
	"pimmine/internal/vec"
)

// Hasher projects d-dimensional float vectors to fixed-length binary codes.
type Hasher struct {
	Bits int
	d    int
	// planes holds Bits random hyperplane normals, row-major.
	planes []float64
}

// NewHasher creates a SimHash family for d-dimensional inputs producing
// bits-bit codes, seeded deterministically.
func NewHasher(d, bits int, seed int64) *Hasher {
	if d <= 0 || bits <= 0 {
		panic(fmt.Sprintf("lsh: invalid hasher shape d=%d bits=%d", d, bits))
	}
	rng := rand.New(rand.NewSource(seed))
	planes := make([]float64, bits*d)
	for i := range planes {
		planes[i] = rng.NormFloat64()
	}
	return &Hasher{Bits: bits, d: d, planes: planes}
}

// Hash returns the bits-bit SimHash code of v. Panics if v has the wrong
// dimensionality.
func (h *Hasher) Hash(v []float64) measure.BitVector {
	if len(v) != h.d {
		panic(fmt.Sprintf("lsh: hashing %d-dim vector with %d-dim hasher", len(v), h.d))
	}
	code := measure.NewBitVector(h.Bits)
	for b := 0; b < h.Bits; b++ {
		plane := h.planes[b*h.d : (b+1)*h.d]
		if vec.Dot(plane, v) >= 0 {
			code.Set(b, true)
		}
	}
	return code
}

// HashAll hashes every row of the matrix.
func (h *Hasher) HashAll(m *vec.Matrix) []measure.BitVector {
	out := make([]measure.BitVector, m.N)
	for i := 0; i < m.N; i++ {
		out[i] = h.Hash(m.Row(i))
	}
	return out
}
