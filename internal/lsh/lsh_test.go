package lsh

import (
	"math"
	"testing"

	"pimmine/internal/dataset"
	"pimmine/internal/measure"
	"pimmine/internal/vec"
)

func TestHasherShapeAndDeterminism(t *testing.T) {
	t.Parallel()
	h1 := NewHasher(32, 128, 1)
	h2 := NewHasher(32, 128, 1)
	v := make([]float64, 32)
	for i := range v {
		v[i] = float64(i) / 32
	}
	c1, c2 := h1.Hash(v), h2.Hash(v)
	if c1.Bits != 128 {
		t.Fatalf("code bits = %d", c1.Bits)
	}
	if measure.Hamming(c1, c2) != 0 {
		t.Fatal("same seed must give identical codes")
	}
	h3 := NewHasher(32, 128, 2)
	if measure.Hamming(c1, h3.Hash(v)) == 0 {
		t.Fatal("different seeds should give different codes")
	}
}

func TestHashWrongDimsPanics(t *testing.T) {
	t.Parallel()
	h := NewHasher(8, 16, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("wrong input dims must panic")
		}
	}()
	h.Hash(make([]float64, 9))
}

// SimHash's defining property: expected Hamming distance grows with the
// angle between inputs, so near vectors get nearer codes than far ones.
func TestLocalitySensitivity(t *testing.T) {
	t.Parallel()
	prof := dataset.Profile{Name: "t", FullN: 100, D: 64, Clusters: 4, Correlation: 0.5, Spread: 0.1}
	ds := dataset.Generate(prof, 60, 3)
	h := NewHasher(prof.D, 512, 4)
	codes := h.HashAll(ds.X)

	// Compare average code distance between same-cluster and
	// cross-cluster pairs.
	var sameSum, crossSum float64
	var sameN, crossN int
	for i := 0; i < ds.X.N; i++ {
		for j := i + 1; j < ds.X.N; j++ {
			hd := float64(measure.Hamming(codes[i], codes[j]))
			if ds.Labels[i] == ds.Labels[j] {
				sameSum += hd
				sameN++
			} else {
				crossSum += hd
				crossN++
			}
		}
	}
	if sameN == 0 || crossN == 0 {
		t.Skip("degenerate cluster draw")
	}
	same, cross := sameSum/float64(sameN), crossSum/float64(crossN)
	if same >= cross {
		t.Fatalf("same-cluster code distance %.1f not below cross-cluster %.1f", same, cross)
	}
}

// The angle ↔ Hamming relation is roughly linear: HD/bits ≈ θ/π.
func TestAngleEstimate(t *testing.T) {
	t.Parallel()
	d := 48
	a := make([]float64, d)
	b := make([]float64, d)
	for i := range a {
		a[i] = 1
		b[i] = 1
	}
	// Rotate half of b's mass to make a known angle.
	for i := 0; i < d/2; i++ {
		b[i] = -1
	}
	cos := vec.Dot(a, b) / (vec.Norm(a) * vec.Norm(b)) // = 0
	theta := math.Acos(cos)                            // = π/2
	h := NewHasher(d, 4096, 9)
	hd := measure.Hamming(h.Hash(a), h.Hash(b))
	got := float64(hd) / 4096
	want := theta / math.Pi // 0.5
	if math.Abs(got-want) > 0.05 {
		t.Fatalf("HD fraction = %.3f, want ≈ %.3f", got, want)
	}
}
