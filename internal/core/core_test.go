package core

import (
	"strings"
	"testing"

	"pimmine/internal/arch"
	"pimmine/internal/dataset"
	"pimmine/internal/kmeans"
	"pimmine/internal/obs"
	"pimmine/internal/vec"
)

func testData(t *testing.T, n, d int) (*vec.Matrix, *vec.Matrix) {
	t.Helper()
	prof := dataset.Profile{Name: "t", FullN: n, D: d, Clusters: 8, Correlation: 0.85, Spread: 0.1}
	ds := dataset.Generate(prof, n, 17)
	return ds.X, ds.Queries(3, 18)
}

func TestDefaultFramework(t *testing.T) {
	f, err := Default()
	if err != nil {
		t.Fatal(err)
	}
	if f.Quant.Alpha != 1e6 {
		t.Fatalf("alpha = %v, want 1e6", f.Quant.Alpha)
	}
}

func TestNewRejectsBadInputs(t *testing.T) {
	cfg := arch.Default()
	cfg.CPUFreqGHz = 0
	if _, err := New(cfg, 1e6, 0); err == nil {
		t.Fatal("invalid config must be rejected")
	}
	if _, err := New(arch.Default(), 0.1, 0); err == nil {
		t.Fatal("invalid alpha must be rejected")
	}
}

func TestAccelerateKNNEndToEnd(t *testing.T) {
	f, err := Default()
	if err != nil {
		t.Fatal(err)
	}
	data, pilot := testData(t, 400, 128)
	acc, err := f.AccelerateKNN(data, KNNOptions{Pilot: pilot, K: 10})
	if err != nil {
		t.Fatal(err)
	}
	if acc.S <= 0 {
		t.Fatalf("S = %d", acc.S)
	}
	if acc.BaselineProfile == nil || acc.OracleNs <= 0 {
		t.Fatalf("profile missing or oracle %v", acc.OracleNs)
	}
	if acc.OracleNs >= acc.BaselineProfile.Total.Total() {
		t.Fatal("oracle must be below baseline total")
	}
	if len(acc.Plan.Bounds) == 0 || !acc.Plan.Bounds[0].PIM {
		t.Fatalf("plan %v must lead with the PIM bound", acc.Plan)
	}
	// All three variants agree with the exact scan on a fresh query.
	q := pilot.Row(0)
	want := acc.Baseline.Search(q, 10, arch.NewMeter())
	for _, s := range []interface {
		Search(qv []float64, k int, m *arch.Meter) []vec.Neighbor
		Name() string
	}{acc.PIM, acc.Optimized} {
		got := s.Search(q, 10, arch.NewMeter())
		for i := range want {
			if got[i].Dist != want[i].Dist {
				t.Fatalf("%s: neighbor %d dist %v, want %v", s.Name(), i, got[i].Dist, want[i].Dist)
			}
		}
	}
}

func TestAccelerateKNNNeedsPilot(t *testing.T) {
	f, _ := Default()
	data, _ := testData(t, 50, 16)
	if _, err := f.AccelerateKNN(data, KNNOptions{}); err == nil {
		t.Fatal("missing pilot must be rejected")
	}
}

func TestAccelerateKMeansEndToEnd(t *testing.T) {
	f, err := Default()
	if err != nil {
		t.Fatal(err)
	}
	data, _ := testData(t, 300, 32)
	for _, v := range []KMeansVariant{VariantStandard, VariantElkan, VariantDrake, VariantYinyang} {
		acc, err := f.AccelerateKMeans(data, v, KMeansOptions{K: 8, MaxIters: 15, Seed: 4})
		if err != nil {
			t.Fatalf("%s: %v", v, err)
		}
		initial, err := kmeans.InitCenters(data, 8, 4)
		if err != nil {
			t.Fatal(err)
		}
		ref := acc.Baseline.Run(initial, 15, arch.NewMeter())
		got := acc.PIM.Run(initial, 15, arch.NewMeter())
		for i := range ref.Assign {
			if got.Assign[i] != ref.Assign[i] {
				t.Fatalf("%s-PIM diverges from %s at point %d", v, v, i)
			}
		}
		if acc.OracleNs <= 0 || acc.OracleNs >= acc.BaselineProfile.Total.Total() {
			t.Fatalf("%s: oracle %v outside (0, total)", v, acc.OracleNs)
		}
	}
}

func TestAccelerateKMeansUnknownVariant(t *testing.T) {
	f, _ := Default()
	data, _ := testData(t, 50, 16)
	if _, err := f.AccelerateKMeans(data, "nope", KMeansOptions{}); err == nil {
		t.Fatal("unknown variant must be rejected")
	}
}

// TestAccelerateKNNPlanDecisionAndEvent checks the framework records the
// Eq. 13 rationale and emits a plan.chosen event when observed.
func TestAccelerateKNNPlanDecisionAndEvent(t *testing.T) {
	f, err := Default()
	if err != nil {
		t.Fatal(err)
	}
	f.Obs = obs.New(obs.Config{})
	data, pilot := testData(t, 300, 128)
	acc, err := f.AccelerateKNN(data, KNNOptions{Pilot: pilot, K: 10})
	if err != nil {
		t.Fatal(err)
	}
	dec := acc.PlanDecision
	if dec.Chosen.Cost != acc.Plan.Cost {
		t.Fatalf("decision cost %g != plan cost %g", dec.Chosen.Cost, acc.Plan.Cost)
	}
	if dec.BaselineCost <= dec.Chosen.Cost {
		t.Fatalf("baseline %g must exceed chosen %g", dec.BaselineCost, dec.Chosen.Cost)
	}
	if dec.Considered < 2 {
		t.Fatalf("considered = %d", dec.Considered)
	}
	if reason := dec.Reason(); !strings.Contains(reason, "Eq. 13") && !strings.Contains(reason, "plans enumerated") {
		t.Fatalf("reason lacks rationale: %s", reason)
	}

	evs := f.Obs.Events()
	found := false
	for _, e := range evs {
		if e.Name == "plan.chosen" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no plan.chosen event in %v", evs)
	}
}
