// Package core implements the paper's systematic framework (§III-B): given
// a similarity-based mining algorithm, it
//
//  1. profiles the algorithm to find the bottleneck function and the
//     PIM-oracle gain estimate (§IV),
//  2. checks the bottleneck is PIM-aware (§V-A) and sizes the compressed
//     dimensionality with Theorem 4 (§V-C),
//  3. builds the PIM-optimized algorithm with the bottleneck bound
//     replaced by its PIM-aware bound (§V-B), and
//  4. measures pruning ratios and runs the §V-D execution-plan optimizer
//     to drop redundant original bounds.
//
// It is the high-level entry point the examples and the experiment
// harness drive; the individual mechanisms live in the focused packages
// (pimbound, pim, profile, plan, knn, kmeans).
package core

import (
	"fmt"
	"sync/atomic"

	"pimmine/internal/arch"
	"pimmine/internal/bound"
	"pimmine/internal/fault"
	"pimmine/internal/kmeans"
	"pimmine/internal/knn"
	"pimmine/internal/obs"
	"pimmine/internal/pim"
	"pimmine/internal/pimbound"
	"pimmine/internal/plan"
	"pimmine/internal/profile"
	"pimmine/internal/quant"
	"pimmine/internal/vec"
)

// Framework holds the hardware model and quantization settings shared by
// every acceleration it produces.
type Framework struct {
	Cfg   arch.Config
	Quant quant.Quantizer
	Mode  pim.Mode
	// Fault, when non-nil, equips every engine the framework creates with
	// a fault injector (internal/fault): dot products pass through the
	// configured hardware faults, bounds are widened by the error envelope
	// so results stay exact, and dead crossbars trigger host fallbacks.
	Fault *fault.Model
	// Obs, when non-nil, receives framework-level observability events
	// (which §V-D plan was chosen and why) on its event ring.
	Obs *obs.Observer

	engSeq int64 // engines created so far, for per-engine fault seeds
}

// New builds a framework for the given architecture and scaling factor α.
func New(cfg arch.Config, alpha float64, mode pim.Mode) (*Framework, error) {
	return NewFaulty(cfg, alpha, mode, nil)
}

// NewFaulty builds a framework whose PIM arrays suffer the given injected
// faults (nil model behaves exactly like New).
func NewFaulty(cfg arch.Config, alpha float64, mode pim.Mode, model *fault.Model) (*Framework, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if model != nil {
		if err := model.Validate(); err != nil {
			return nil, err
		}
	}
	q, err := quant.New(alpha)
	if err != nil {
		return nil, err
	}
	return &Framework{Cfg: cfg, Quant: q, Mode: mode, Fault: model}, nil
}

// Default builds a framework with the paper's Table 5 hardware and α=10⁶.
func Default() (*Framework, error) {
	return New(arch.Default(), quant.DefaultAlpha, pim.ModeExact)
}

// NewEngine creates a fresh PIM array under the framework's hardware
// model. Payload names are scoped per engine and §V-C forbids
// re-programming, so every acceleration — and every shard of a sharded
// serving engine (internal/serve) — owns its own array. Under a fault
// model, each engine draws an independent fault universe derived from the
// model seed and the engine's creation sequence number.
func (f *Framework) NewEngine() (*pim.Engine, error) {
	if f.Fault == nil {
		return pim.NewEngine(f.Cfg, f.Mode)
	}
	m := *f.Fault
	m.Seed = fault.DeriveSeed(m.Seed, int(atomic.AddInt64(&f.engSeq, 1)))
	inj, err := fault.NewInjector(m, f.Cfg.Crossbar)
	if err != nil {
		return nil, err
	}
	return pim.NewFaultyEngine(f.Cfg, f.Mode, inj)
}

// ---------------------------------------------------------------------------
// kNN acceleration
// ---------------------------------------------------------------------------

// KNNOptions configures AccelerateKNN.
type KNNOptions struct {
	// CapacityN is the full-scale dataset cardinality used for the
	// Theorem 4 admission check; defaults to the generated data's N.
	CapacityN int
	// K is the neighbor count the pilot profiling uses (default 10, the
	// paper's kNN default).
	K int
	// Pilot holds pilot query vectors for profiling and pruning-ratio
	// measurement; at least one row is required.
	Pilot *vec.Matrix
}

// KNNAcceleration is the framework's output for a kNN workload.
type KNNAcceleration struct {
	// Baseline is the host FNN cascade the framework profiled.
	Baseline *knn.FNN
	// PIM is the default §V plan: bottleneck bound replaced by
	// LB_PIM-FNN, remaining original bounds kept.
	PIM *knn.FNNPIM
	// Optimized applies the §V-D plan (possibly dropping host bounds).
	Optimized *knn.FNNPIM
	// BaselineProfile is the §IV profile of the baseline on the pilot.
	BaselineProfile *profile.Report
	// OracleNs is Eq. 2's T_PIM-oracle for the pilot workload.
	OracleNs float64
	// Plan is the chosen §V-D execution plan.
	Plan plan.Plan
	// PlanDecision carries the Eq. 13 rationale behind Plan (costs of the
	// alternatives, which candidate bounds were dropped).
	PlanDecision plan.Decision
	// S is the Theorem 4 compressed dimensionality.
	S int
}

// AccelerateKNN runs the full framework pipeline on an ED kNN workload.
func (f *Framework) AccelerateKNN(data *vec.Matrix, opt KNNOptions) (*KNNAcceleration, error) {
	if opt.Pilot == nil || opt.Pilot.N == 0 {
		return nil, fmt.Errorf("core: AccelerateKNN needs at least one pilot query")
	}
	if opt.K <= 0 {
		opt.K = 10
	}
	if opt.CapacityN <= 0 {
		opt.CapacityN = data.N
	}

	// 1. Profile the baseline (§IV).
	baseline, err := knn.NewFNN(data)
	if err != nil {
		return nil, err
	}
	meter := arch.NewMeter()
	for qi := 0; qi < opt.Pilot.N; qi++ {
		baseline.Search(opt.Pilot.Row(qi), opt.K, meter)
	}
	prof := profile.New(baseline.Name(), f.Cfg, meter)
	if !profile.PIMAware(prof.Bottleneck()) {
		return nil, fmt.Errorf("core: bottleneck %q is not PIM-aware; PIM offers no offload target", prof.Bottleneck())
	}

	// 2–3. Build the default PIM plan (Theorem 4 sizing happens inside).
	eng, err := f.NewEngine()
	if err != nil {
		return nil, err
	}
	pimAlg, err := knn.NewFNNPIM(eng, data, f.Quant, opt.CapacityN)
	if err != nil {
		return nil, err
	}

	// 4. Measure pruning ratios on the pilot and optimize the plan.
	candidates, err := f.measureKNNCandidates(data, baseline, pimAlg, opt)
	if err != nil {
		return nil, err
	}
	decision, err := plan.Decide(opt.CapacityN, data.D, candidates)
	if err != nil {
		return nil, err
	}
	best := decision.Chosen
	f.Obs.Event("plan.chosen",
		obs.A("plan", best.String()),
		obs.A("reason", decision.Reason()))
	var hostSegs []int
	for _, b := range best.Bounds {
		if !b.PIM {
			var segs int
			if _, err := fmt.Sscanf(b.Name, "LBFNN-%d", &segs); err == nil {
				hostSegs = append(hostSegs, segs)
			}
		}
	}
	optEng, err := f.NewEngine()
	if err != nil {
		return nil, err
	}
	optimized, err := knn.NewFNNPIMOptimized(optEng, data, f.Quant, opt.CapacityN, hostSegs)
	if err != nil {
		return nil, err
	}

	return &KNNAcceleration{
		Baseline:        baseline,
		PIM:             pimAlg,
		Optimized:       optimized,
		BaselineProfile: prof,
		OracleNs:        prof.PIMOracleAuto(),
		Plan:            best,
		PlanDecision:    decision,
		S:               pimAlg.S(),
	}, nil
}

// measureKNNCandidates measures each candidate bound's independent
// pruning ratio at the exact kNN threshold, averaged over the pilot
// queries (§V-D's offline measurement).
func (f *Framework) measureKNNCandidates(data *vec.Matrix, baseline *knn.FNN, pimAlg *knn.FNNPIM, opt KNNOptions) ([]plan.Bound, error) {
	exact := knn.NewStandard(data)
	pimIx, err := pimbound.BuildFNN(data, f.Quant, pimAlg.S())
	if err != nil {
		return nil, err
	}
	type cand struct {
		host *bound.FNNIndex
		pim  *pimbound.FNNIndex
		sum  float64
	}
	cands := []*cand{{pim: pimIx}}
	for _, ix := range baseline.Levels {
		cands = append(cands, &cand{host: ix})
	}
	lbs := make([]float64, data.N)
	for qi := 0; qi < opt.Pilot.N; qi++ {
		qv := opt.Pilot.Row(qi)
		nn := exact.Search(qv, opt.K, arch.NewMeter())
		threshold := nn[len(nn)-1].Dist
		for _, c := range cands {
			if c.pim != nil {
				qf, err := c.pim.Query(qv)
				if err != nil {
					return nil, err
				}
				for i := 0; i < data.N; i++ {
					dm, ds := c.pim.HostDots(i, qf)
					lbs[i] = c.pim.LB(i, qf, dm, ds)
				}
			} else {
				mu, sigma, err := c.host.QueryStats(qv)
				if err != nil {
					return nil, err
				}
				for i := 0; i < data.N; i++ {
					lbs[i] = c.host.LB(i, mu, sigma)
				}
			}
			c.sum += plan.PruneRatio(lbs, threshold)
		}
	}
	out := make([]plan.Bound, 0, len(cands))
	for _, c := range cands {
		pr := c.sum / float64(opt.Pilot.N)
		if c.pim != nil {
			out = append(out, plan.Bound{
				Name: fmt.Sprintf("LBPIM-FNN-%d", c.pim.Segs), Family: "FNN",
				TransferDims: 3, PruneRatio: pr, PIM: true,
			})
		} else {
			out = append(out, plan.Bound{
				Name: fmt.Sprintf("LBFNN-%d", c.host.Segs), Family: "FNN",
				TransferDims: c.host.TransferDims(), PruneRatio: pr,
			})
		}
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// k-means acceleration
// ---------------------------------------------------------------------------

// KMeansVariant names the base algorithm to accelerate.
type KMeansVariant string

// The four §VI-D base algorithms, plus Hamerly (the single-bound member
// of the family Drake interpolates from — an extension beyond the paper).
const (
	VariantStandard KMeansVariant = "Standard"
	VariantElkan    KMeansVariant = "Elkan"
	VariantHamerly  KMeansVariant = "Hamerly"
	VariantDrake    KMeansVariant = "Drake"
	VariantYinyang  KMeansVariant = "Yinyang"
)

// KMeansOptions configures AccelerateKMeans.
type KMeansOptions struct {
	// CapacityN defaults to the data's N (see KNNOptions.CapacityN).
	CapacityN int
	// K is the cluster count for pilot profiling (default 64, the
	// paper's Fig 5/6 setting).
	K int
	// MaxIters bounds the pilot run (default 10).
	MaxIters int
	// Seed selects the §VI-A shared initial centers.
	Seed int64
}

// KMeansAcceleration is the framework's output for a k-means workload.
type KMeansAcceleration struct {
	Baseline        kmeans.Algorithm
	PIM             kmeans.Algorithm
	BaselineProfile *profile.Report
	OracleNs        float64
}

// AccelerateKMeans builds the PIM-assisted counterpart of the requested
// variant and profiles the baseline for the Eq. 2 oracle.
func (f *Framework) AccelerateKMeans(data *vec.Matrix, variant KMeansVariant, opt KMeansOptions) (*KMeansAcceleration, error) {
	if opt.CapacityN <= 0 {
		opt.CapacityN = data.N
	}
	if opt.K <= 0 {
		opt.K = 64
	}
	if opt.MaxIters <= 0 {
		opt.MaxIters = 10
	}
	var base kmeans.Algorithm
	switch variant {
	case VariantStandard:
		base = kmeans.NewLloyd(data)
	case VariantElkan:
		base = kmeans.NewElkan(data)
	case VariantHamerly:
		base = kmeans.NewHamerly(data)
	case VariantDrake:
		base = kmeans.NewDrake(data)
	case VariantYinyang:
		base = kmeans.NewYinyang(data)
	default:
		return nil, fmt.Errorf("core: unknown k-means variant %q", variant)
	}

	initial, err := kmeans.InitCenters(data, opt.K, opt.Seed)
	if err != nil {
		return nil, err
	}
	meter := arch.NewMeter()
	base.Run(initial, opt.MaxIters, meter)
	prof := profile.New(base.Name(), f.Cfg, meter)

	eng, err := f.NewEngine()
	if err != nil {
		return nil, err
	}
	assist, err := kmeans.NewAssist(eng, data, f.Quant, opt.CapacityN)
	if err != nil {
		return nil, err
	}
	var accel kmeans.Algorithm
	switch variant {
	case VariantStandard:
		accel = kmeans.NewLloydPIM(data, assist)
	case VariantElkan:
		accel = kmeans.NewElkanPIM(data, assist)
	case VariantHamerly:
		accel = kmeans.NewHamerlyPIM(data, assist)
	case VariantDrake:
		accel = kmeans.NewDrakePIM(data, assist)
	case VariantYinyang:
		accel = kmeans.NewYinyangPIM(data, assist)
	}
	return &KMeansAcceleration{
		Baseline:        base,
		PIM:             accel,
		BaselineProfile: prof,
		OracleNs:        prof.PIMOracle(arch.FuncED, kmeans.AssistFuncName),
	}, nil
}
