// Package outlier implements distance-based outlier detection, one of the
// similarity-based mining tasks the paper's introduction names alongside
// kNN classification and k-means clustering (§I, §II-C: "distance-based
// outlier detection"). Two classical formulations are provided:
//
//   - DB(r, π) outliers (Knorr & Ng, VLDB 1998): an object is an outlier
//     if fewer than π·N objects lie within distance r of it.
//   - Top-n kNN-distance outliers (Ramaswamy et al., SIGMOD 2000): the n
//     objects with the largest distance to their k-th nearest neighbor.
//
// Both are built on the same ED primitive as the paper's tasks, so both
// get a PIM-optimized variant: LB_PIM-ED (Theorem 1) is consulted before
// every exact distance, and — because the bound is a *lower* bound — a
// neighbor candidate whose bound already exceeds r (or the current k-NN
// threshold) is discarded without touching its vector. Results are exact
// (integration-tested against the naive scans).
package outlier

import (
	"fmt"
	"math"
	"sort"

	"pimmine/internal/arch"
	"pimmine/internal/measure"
	"pimmine/internal/pim"
	"pimmine/internal/pimbound"
	"pimmine/internal/quant"
	"pimmine/internal/vec"
)

// operandBytes mirrors the modeled 32-bit operand width.
const operandBytes = 4

// Detector finds distance-based outliers over a dataset. With a non-nil
// PIM index it runs the PIM-optimized path.
type Detector struct {
	Data *vec.Matrix

	eng  *pim.Engine
	ix   *pimbound.EDIndex
	pay  *pim.Payload
	dots []int64
}

// NewDetector builds the host-only detector.
func NewDetector(data *vec.Matrix) *Detector { return &Detector{Data: data} }

// NewDetectorPIM builds the PIM-optimized detector: the dataset's floor
// vectors are programmed once; each object's outlier test reuses one
// batched dot-product pass.
func NewDetectorPIM(eng *pim.Engine, data *vec.Matrix, q quant.Quantizer, capacityN int) (*Detector, error) {
	if !eng.Model().Fits(capacityN, data.D, 1) {
		return nil, fmt.Errorf("outlier: %d-dim floors for N=%d exceed PIM capacity", data.D, capacityN)
	}
	ix := pimbound.BuildED(data, q)
	pay, err := eng.Program("outlier/points", data.N, data.D, 1, ix.Floor)
	if err != nil {
		return nil, err
	}
	return &Detector{Data: data, eng: eng, ix: ix, pay: pay}, nil
}

// Name reports which path the detector runs.
func (d *Detector) Name() string {
	if d.ix != nil {
		return "Detector-PIM"
	}
	return "Detector"
}

// prepare runs the PIM pass for object i's query side (PIM path only).
func (d *Detector) prepare(i int, meter *arch.Meter) pimbound.EDQuery {
	qf := d.ix.Query(d.Data.Row(i))
	var err error
	d.dots, err = d.eng.QueryAll(meter, "LBPIM-ED", d.pay, qf.Floor, d.dots)
	if err != nil {
		panic(fmt.Sprintf("outlier: PIM pass: %v", err))
	}
	return qf
}

// DB reports the DB(r, pi) outliers: objects with fewer than ⌈pi·N⌉
// neighbors (excluding themselves) within distance r (true Euclidean).
// Indices are returned ascending.
func (d *Detector) DB(r float64, pi float64, meter *arch.Meter) ([]int, error) {
	if r <= 0 || pi <= 0 || pi > 1 {
		return nil, fmt.Errorf("outlier: DB needs r > 0 and pi in (0,1], got r=%v pi=%v", r, pi)
	}
	n := d.Data.N
	need := int(math.Ceil(pi * float64(n)))
	r2 := r * r
	var out []int
	var exact, consults int64
	for i := 0; i < n; i++ {
		var qf pimbound.EDQuery
		if d.ix != nil {
			qf = d.prepare(i, meter)
		}
		p := d.Data.Row(i)
		neighbors := 0
		// An object with ≥ need in-range neighbors is not an outlier; we
		// can stop counting early either way.
		for j := 0; j < n && neighbors < need; j++ {
			if j == i {
				continue
			}
			if d.ix != nil {
				consults++
				if d.ix.LB(j, qf, d.dots[j]) > r2 {
					continue // provably out of range
				}
			}
			exact++
			if measure.SqEuclidean(p, d.Data.Row(j)) <= r2 {
				neighbors++
			}
		}
		if neighbors < need {
			out = append(out, i)
		}
	}
	d.recordCosts(meter, exact, consults)
	return out, nil
}

// Outlier is one top-n kNN-distance result.
type Outlier struct {
	Index int
	// Score is the true distance to the object's k-th nearest neighbor.
	Score float64
}

// TopN returns the n objects with the largest k-NN distance, sorted by
// descending score (ties by ascending index).
func (d *Detector) TopN(n, k int, meter *arch.Meter) ([]Outlier, error) {
	if n < 1 || k < 1 {
		return nil, fmt.Errorf("outlier: TopN needs n,k >= 1, got n=%d k=%d", n, k)
	}
	if k >= d.Data.N {
		return nil, fmt.Errorf("outlier: k=%d must be below N=%d", k, d.Data.N)
	}
	var exact, consults int64
	scores := make([]Outlier, d.Data.N)
	for i := 0; i < d.Data.N; i++ {
		var qf pimbound.EDQuery
		if d.ix != nil {
			qf = d.prepare(i, meter)
		}
		p := d.Data.Row(i)
		top := vec.NewTopK(k)
		for j := 0; j < d.Data.N; j++ {
			if j == i {
				continue
			}
			if d.ix != nil {
				consults++
				if d.ix.LB(j, qf, d.dots[j]) > top.Threshold() {
					continue
				}
			}
			exact++
			top.Push(j, measure.SqEuclidean(p, d.Data.Row(j)))
		}
		nn := top.Results()
		scores[i] = Outlier{Index: i, Score: math.Sqrt(nn[len(nn)-1].Dist)}
	}
	d.recordCosts(meter, exact, consults)
	sort.Slice(scores, func(a, b int) bool {
		if scores[a].Score != scores[b].Score {
			return scores[a].Score > scores[b].Score
		}
		return scores[a].Index < scores[b].Index
	})
	if n > len(scores) {
		n = len(scores)
	}
	return scores[:n], nil
}

// recordCosts charges the modeled activity: exact distances stream
// vectors; PIM consults move the Fig 8 operand pair.
func (d *Detector) recordCosts(meter *arch.Meter, exact, consults int64) {
	dd := int64(d.Data.D)
	ed := meter.C(arch.FuncED)
	ed.Ops += exact * 3 * dd
	ed.SeqBytes += exact * dd * operandBytes
	ed.Branches += exact
	ed.Calls += exact
	if consults > 0 {
		c := meter.C("LBPIM-ED")
		c.Ops += consults * 8
		c.SeqBytes += consults * 2 * operandBytes
		c.Branches += consults
		c.Calls += consults
	}
}
