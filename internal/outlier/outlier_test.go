package outlier

import (
	"math"
	"testing"

	"pimmine/internal/arch"
	"pimmine/internal/dataset"
	"pimmine/internal/measure"
	"pimmine/internal/pim"
	"pimmine/internal/quant"
	"pimmine/internal/vec"
)

// plantedData builds clustered data with a few far-away planted outliers,
// returning the planted indices.
func plantedData(t *testing.T, n, d, planted int) (*vec.Matrix, []int) {
	t.Helper()
	prof := dataset.Profile{Name: "t", FullN: n, D: d, Clusters: 4, Correlation: 0.7, Spread: 0.05}
	ds := dataset.Generate(prof, n, 77)
	idx := make([]int, 0, planted)
	for i := 0; i < planted; i++ {
		row := ds.X.Row(i * (n / planted))
		for j := range row {
			// Push toward an extreme corner, alternating to stay in [0,1].
			if j%2 == 0 {
				row[j] = 1
			} else {
				row[j] = 0
			}
		}
		idx = append(idx, i*(n/planted))
	}
	return ds.X, idx
}

func newPIMDetector(t *testing.T, data *vec.Matrix) *Detector {
	t.Helper()
	eng, err := pim.NewEngine(arch.Default(), pim.ModeExact)
	if err != nil {
		t.Fatal(err)
	}
	q, err := quant.New(quant.DefaultAlpha)
	if err != nil {
		t.Fatal(err)
	}
	det, err := NewDetectorPIM(eng, data, q, data.N)
	if err != nil {
		t.Fatal(err)
	}
	return det
}

// naiveDB is the reference implementation.
func naiveDB(data *vec.Matrix, r, pi float64) []int {
	n := data.N
	need := int(math.Ceil(pi * float64(n)))
	r2 := r * r
	var out []int
	for i := 0; i < n; i++ {
		count := 0
		for j := 0; j < n; j++ {
			if j != i && measure.SqEuclidean(data.Row(i), data.Row(j)) <= r2 {
				count++
			}
		}
		if count < need {
			out = append(out, i)
		}
	}
	return out
}

func TestDBMatchesNaiveAndFindsPlanted(t *testing.T) {
	data, planted := plantedData(t, 200, 24, 3)
	r, pi := 0.5, 0.05
	want := naiveDB(data, r, pi)

	host := NewDetector(data)
	got, err := host.DB(r, pi, arch.NewMeter())
	if err != nil {
		t.Fatal(err)
	}
	assertSameInts(t, "host DB", got, want)

	pimDet := newPIMDetector(t, data)
	gotPIM, err := pimDet.DB(r, pi, arch.NewMeter())
	if err != nil {
		t.Fatal(err)
	}
	assertSameInts(t, "PIM DB", gotPIM, want)

	// Every planted point must be flagged.
	flagged := map[int]bool{}
	for _, i := range got {
		flagged[i] = true
	}
	for _, p := range planted {
		if !flagged[p] {
			t.Errorf("planted outlier %d not detected", p)
		}
	}
}

func TestTopNMatchesHostAndRanksPlantedFirst(t *testing.T) {
	data, planted := plantedData(t, 200, 24, 3)
	host := NewDetector(data)
	want, err := host.TopN(3, 5, arch.NewMeter())
	if err != nil {
		t.Fatal(err)
	}
	pimDet := newPIMDetector(t, data)
	got, err := pimDet.TopN(3, 5, arch.NewMeter())
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if want[i].Index != got[i].Index || math.Abs(want[i].Score-got[i].Score) > 1e-12 {
			t.Fatalf("TopN[%d]: PIM %+v != host %+v", i, got[i], want[i])
		}
	}
	isPlanted := map[int]bool{}
	for _, p := range planted {
		isPlanted[p] = true
	}
	for _, o := range want {
		if !isPlanted[o.Index] {
			t.Errorf("top outlier %d (score %.3f) is not a planted point", o.Index, o.Score)
		}
	}
}

func TestPIMDetectorPrunesExactWork(t *testing.T) {
	data, _ := plantedData(t, 300, 32, 3)
	mHost, mPIM := arch.NewMeter(), arch.NewMeter()
	if _, err := NewDetector(data).TopN(3, 5, mHost); err != nil {
		t.Fatal(err)
	}
	if _, err := newPIMDetector(t, data).TopN(3, 5, mPIM); err != nil {
		t.Fatal(err)
	}
	if mPIM.Get(arch.FuncED).Calls >= mHost.Get(arch.FuncED).Calls {
		t.Fatalf("PIM detector computed %d exact distances, host %d — no pruning",
			mPIM.Get(arch.FuncED).Calls, mHost.Get(arch.FuncED).Calls)
	}
}

func TestValidation(t *testing.T) {
	data, _ := plantedData(t, 50, 8, 1)
	d := NewDetector(data)
	if _, err := d.DB(0, 0.1, arch.NewMeter()); err == nil {
		t.Fatal("r=0 must be rejected")
	}
	if _, err := d.DB(1, 0, arch.NewMeter()); err == nil {
		t.Fatal("pi=0 must be rejected")
	}
	if _, err := d.TopN(0, 5, arch.NewMeter()); err == nil {
		t.Fatal("n=0 must be rejected")
	}
	if _, err := d.TopN(3, 50, arch.NewMeter()); err == nil {
		t.Fatal("k>=N must be rejected")
	}
}

func assertSameInts(t *testing.T, name string, got, want []int) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %v, want %v", name, got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: got %v, want %v", name, got, want)
		}
	}
}
