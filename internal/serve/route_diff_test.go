package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"pimmine/internal/arch"
	"pimmine/internal/dataset"
	"pimmine/internal/knn"
	"pimmine/internal/resilience"
	"pimmine/internal/route"
	"pimmine/internal/vec"
)

// clusteredData returns a dataset with rows grouped by mixture
// component, so the engine's contiguous shards are content-local — the
// regime where routing has shards to skip. (dataset.Generate interleaves
// clusters row by row; sharding that gives every shard the same bounding
// box and nothing is ever pruned.)
func clusteredData(t testing.TB, n, d, clusters int, seed int64) *vec.Matrix {
	t.Helper()
	prof := dataset.Profile{Name: "route-diff", FullN: n, D: d, Clusters: clusters, Correlation: 0.4, Spread: 0.08}
	ds := dataset.Generate(prof, n, seed)
	m := vec.NewMatrix(n, d)
	i := 0
	for c := 0; c < clusters; c++ {
		for r := 0; r < n; r++ {
			if ds.Labels[r] == c {
				copy(m.Row(i), ds.X.Row(r))
				i++
			}
		}
	}
	return m
}

// searchFn abstracts "one kNN query" so every mining-task driver can run
// against either engine.
type searchFn func(q []float64, k int) []vec.Neighbor

// engineFactory builds a search function over a dataset; the routed and
// unrouted factories differ only in whether Options.Router is set.
type engineFactory func(data *vec.Matrix, shards int) searchFn

// renderNN renders neighbors with bit-exact distances: any difference in
// either ids or float64 bit patterns changes the string.
func renderNN(sb *strings.Builder, nn []vec.Neighbor) {
	for _, n := range nn {
		sb.WriteString(strconv.Itoa(n.Index))
		sb.WriteByte(':')
		sb.WriteString(strconv.FormatUint(math.Float64bits(n.Dist), 16))
		sb.WriteByte(' ')
	}
	sb.WriteByte('\n')
}

// growK widens k until the tail of the result passes thr (or everything
// is retrieved) — the doubling-k driver for range-shaped tasks.
func growK(search searchFn, q []float64, thr float64, n int) []vec.Neighbor {
	for k := 8; ; k *= 2 {
		if k > n {
			k = n
		}
		nn := search(q, k)
		if len(nn) < k || nn[len(nn)-1].Dist > thr || k == n {
			return nn
		}
	}
}

// The six mining-task drivers. Each reduces its task to engine queries
// and renders a deterministic transcript; the differential test requires
// the routed transcript to equal the unrouted one byte for byte.
var miningTasks = []struct {
	name string
	run  func(t *testing.T, data *vec.Matrix, mk engineFactory) string
}{
	{"knn", func(t *testing.T, data *vec.Matrix, mk engineFactory) string {
		search := mk(data, 6)
		var sb strings.Builder
		for i := 0; i < 12; i++ {
			q := data.Row((i * 29) % data.N)
			renderNN(&sb, search(q, 10))
		}
		return sb.String()
	}},
	{"outlier", func(t *testing.T, data *vec.Matrix, mk engineFactory) string {
		// Top-n kNN-distance outliers over a row sample: for each row,
		// its k-distance excluding itself; report the 5 largest.
		search := mk(data, 6)
		const k = 5
		type scored struct {
			id   int
			dist float64
		}
		var all []scored
		for i := 0; i < 60; i++ {
			nn := search(data.Row(i), k+1)
			kd := math.Inf(1)
			seen := 0
			for _, n := range nn {
				if n.Index == i {
					continue
				}
				seen++
				if seen == k {
					kd = n.Dist
					break
				}
			}
			all = append(all, scored{i, kd})
		}
		for pass := 0; pass < 5; pass++ {
			best := pass
			for j := pass + 1; j < len(all); j++ {
				if all[j].dist > all[best].dist ||
					(all[j].dist == all[best].dist && all[j].id < all[best].id) {
					best = j
				}
			}
			all[pass], all[best] = all[best], all[pass]
		}
		var sb strings.Builder
		for _, s := range all[:5] {
			fmt.Fprintf(&sb, "%d:%x ", s.id, math.Float64bits(s.dist))
		}
		return sb.String()
	}},
	{"dbscan", func(t *testing.T, data *vec.Matrix, mk engineFactory) string {
		// ε-neighborhoods via doubling-k range queries — the primitive
		// DBSCAN is built from. ε² is self-calibrated from the data so the
		// neighborhoods are non-trivial on both engines identically.
		search := mk(data, 6)
		eps2 := search(data.Row(0), 8)[7].Dist * 1.25
		var sb strings.Builder
		for i := 0; i < 15; i++ {
			q := data.Row((i * 41) % data.N)
			for _, n := range growK(search, q, eps2, data.N) {
				if n.Dist <= eps2 {
					fmt.Fprintf(&sb, "%d:%x ", n.Index, math.Float64bits(n.Dist))
				}
			}
			sb.WriteByte('\n')
		}
		return sb.String()
	}},
	{"motif", func(t *testing.T, data *vec.Matrix, mk engineFactory) string {
		// Motif-style nearest non-overlapping neighbor: rows stand in for
		// subsequence windows, |i−j| < w is the trivial-match exclusion.
		search := mk(data, 6)
		const w = 5
		var sb strings.Builder
		for i := 0; i < 20; i++ {
			var match *vec.Neighbor
			for k := 8; match == nil; k *= 2 {
				if k > data.N {
					k = data.N
				}
				for _, n := range search(data.Row(i), k) {
					if abs(n.Index-i) >= w {
						m := n
						match = &m
						break
					}
				}
				if k == data.N {
					break
				}
			}
			if match != nil {
				fmt.Fprintf(&sb, "%d->%d:%x\n", i, match.Index, math.Float64bits(match.Dist))
			}
		}
		return sb.String()
	}},
	{"join", func(t *testing.T, data *vec.Matrix, mk engineFactory) string {
		// ε range join: second-half rows join against the indexed dataset.
		search := mk(data, 6)
		eps2 := search(data.Row(3), 6)[5].Dist * 1.1
		var sb strings.Builder
		for i := 0; i < 10; i++ {
			q := data.Row(data.N/2 + i*7)
			for _, n := range growK(search, q, eps2, data.N) {
				if n.Dist <= eps2 {
					fmt.Fprintf(&sb, "%d:%x ", n.Index, math.Float64bits(n.Dist))
				}
			}
			sb.WriteByte('\n')
		}
		return sb.String()
	}},
	{"kmeans", func(t *testing.T, data *vec.Matrix, mk engineFactory) string {
		// Lloyd iterations with the assignment step served by a (routed)
		// engine built over the current centers each round.
		const kc, iters = 8, 3
		d := data.D
		centers := vec.NewMatrix(kc, d)
		for c := 0; c < kc; c++ {
			copy(centers.Row(c), data.Row(c*37))
		}
		var sb strings.Builder
		for it := 0; it < iters; it++ {
			assign := mk(centers, 2)
			sums := vec.NewMatrix(kc, d)
			counts := make([]int, kc)
			for i := 0; i < 120; i++ {
				p := data.Row(i * 3 % data.N)
				c := assign(p, 1)[0].Index
				fmt.Fprintf(&sb, "%d ", c)
				counts[c]++
				row := sums.Row(c)
				for j, v := range p {
					row[j] += v
				}
			}
			sb.WriteByte('\n')
			for c := 0; c < kc; c++ {
				if counts[c] == 0 {
					continue
				}
				row, sum := centers.Row(c), sums.Row(c)
				for j := range row {
					row[j] = sum[j] / float64(counts[c])
				}
			}
		}
		for c := 0; c < kc; c++ {
			for _, v := range centers.Row(c) {
				fmt.Fprintf(&sb, "%x ", math.Float64bits(v))
			}
		}
		return sb.String()
	}},
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// TestRoutedExactBitIdenticalAcrossTasks is the routing tier's central
// differential guarantee: with an exact-mode router attached, all six
// mining tasks — kNN, outlier detection, DBSCAN neighborhoods, motif
// discovery, ε-join and k-means — produce transcripts whose ids and
// float64 bit patterns are identical to the unrouted engine's, while the
// router demonstrably skips shards (otherwise the test proves nothing).
func TestRoutedExactBitIdenticalAcrossTasks(t *testing.T) {
	t.Parallel()
	data := clusteredData(t, 360, 24, 6, 17)
	ctx := context.Background()

	unrouted := func(m *vec.Matrix, shards int) searchFn {
		e, err := New(m, Options{Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		return func(q []float64, k int) []vec.Neighbor {
			res, err := e.Search(ctx, q, k)
			if err != nil {
				t.Fatal(err)
			}
			return res.Neighbors
		}
	}

	var skipped int64
	var mu sync.Mutex
	routed := func(m *vec.Matrix, shards int) searchFn {
		r, err := route.NewEven(route.Config{Seed: 7}, m, shards)
		if err != nil {
			t.Fatal(err)
		}
		e, err := New(m, Options{Shards: shards, Router: r})
		if err != nil {
			t.Fatal(err)
		}
		return func(q []float64, k int) []vec.Neighbor {
			res, err := e.SearchMode(ctx, q, k, route.ModeExact)
			if err != nil {
				t.Fatal(err)
			}
			if res.Routed == nil || res.Routed.Mode != route.ModeExact {
				t.Fatalf("routed query missing exact RouteInfo: %+v", res.Routed)
			}
			if res.Routed.EstRecall != 1 {
				t.Fatalf("exact mode EstRecall = %v, want 1", res.Routed.EstRecall)
			}
			mu.Lock()
			skipped += int64(res.Routed.Skipped)
			mu.Unlock()
			return res.Neighbors
		}
	}

	for _, task := range miningTasks {
		t.Run(task.name, func(t *testing.T) {
			want := task.run(t, data, unrouted)
			got := task.run(t, data, routed)
			if got != want {
				t.Fatalf("routed %s transcript diverged from unrouted\nrouted:   %.200s\nunrouted: %.200s",
					task.name, got, want)
			}
		})
	}
	if skipped == 0 {
		t.Fatal("router never skipped a shard on clustered data — the differential ran without pruning")
	}
	t.Logf("exact routing skipped %d shard visits across the six tasks", skipped)
}

// TestRoutedApproxMeetsRecallTarget is the recall property test: in
// approximate mode with AuditEvery=1, every query measures its true
// recall against a full fan-out; the mean must reach the configured
// target (minus a small ε for estimation noise) while shards are
// actually being skipped.
func TestRoutedApproxMeetsRecallTarget(t *testing.T) {
	t.Parallel()
	const target = 0.9
	data := clusteredData(t, 480, 24, 6, 23)
	r, err := route.NewEven(route.Config{Mode: route.ModeApprox, Recall: target, AuditEvery: 1, Seed: 11}, data, 6)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(data, Options{Shards: 6, Router: r})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	var sum float64
	var audited, totalSkipped int
	const nq = 40
	for i := 0; i < nq; i++ {
		res, err := e.SearchMode(ctx, data.Row(i*11%data.N), 10, route.ModeApprox)
		if err != nil {
			t.Fatal(err)
		}
		ri := res.Routed
		if ri == nil || ri.Mode != route.ModeApprox {
			t.Fatalf("query %d: missing approx RouteInfo: %+v", i, ri)
		}
		if ri.EstRecall < target {
			t.Fatalf("query %d: EstRecall %v below target %v — ApproxPlan stopped early", i, ri.EstRecall, target)
		}
		totalSkipped += ri.Skipped
		if ri.Skipped > 0 {
			if !ri.Audited {
				t.Fatalf("query %d skipped %d shards but was not audited with AuditEvery=1", i, ri.Skipped)
			}
			audited++
			sum += ri.MeasuredRecall
		}
	}
	if totalSkipped == 0 {
		t.Fatal("approx routing never skipped a shard on clustered data")
	}
	if audited == 0 {
		t.Fatal("no query was audited")
	}
	mean := sum / float64(audited)
	const eps = 0.05
	if mean < target-eps {
		t.Fatalf("mean measured recall %.3f below target %v − ε %v (over %d audited queries)",
			mean, target, eps, audited)
	}
	t.Logf("approx routing: %d/%d queries audited, mean measured recall %.3f (target %v), %d shard visits skipped",
		audited, nq, mean, target, totalSkipped)
}

// TestRouterShardMismatchTyped pins the construction-time contract: a
// router shaped for a different shard count (or dimensionality) is a
// typed error from both engines, never a silent misroute; Shards=0
// adopts the router's count.
func TestRouterShardMismatchTyped(t *testing.T) {
	t.Parallel()
	data := clusteredData(t, 120, 16, 4, 3)
	r4, err := route.NewEven(route.Config{}, data, 4)
	if err != nil {
		t.Fatal(err)
	}

	if _, err := New(data, Options{Shards: 3, Router: r4}); !errors.Is(err, route.ErrShardMismatch) {
		t.Fatalf("immutable engine: err = %v, want route.ErrShardMismatch", err)
	}
	if _, err := NewMutable(data, MutableOptions{Options: Options{Shards: 3, Router: r4}}); !errors.Is(err, route.ErrShardMismatch) {
		t.Fatalf("mutable engine: err = %v, want route.ErrShardMismatch", err)
	}

	narrow := vec.NewMatrix(120, 8)
	for i := 0; i < narrow.N; i++ {
		copy(narrow.Row(i), data.Row(i)[:8])
	}
	if _, err := New(narrow, Options{Shards: 4, Router: r4}); err == nil {
		t.Fatal("dimension mismatch accepted")
	}

	e, err := New(data, Options{Router: r4})
	if err != nil {
		t.Fatal(err)
	}
	if got := e.NumShards(); got != 4 {
		t.Fatalf("Shards=0 with a 4-shard router built %d shards", got)
	}

	// An explicit mode without a router is the symmetric typed error.
	plain, err := New(data, Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plain.SearchMode(context.Background(), data.Row(0), 3, route.ModeExact); !errors.Is(err, ErrNoRouter) {
		t.Fatalf("explicit mode without router: err = %v, want ErrNoRouter", err)
	}
	if _, err := plain.SearchMode(context.Background(), data.Row(0), 3, route.ModeApprox); !errors.Is(err, ErrNoRouter) {
		t.Fatalf("explicit approx without router: err = %v, want ErrNoRouter", err)
	}
}

// TestRoutedSkipNeverHostScans pins the skip/breaker interaction: a
// routed-away shard does no work at all for that query — its searcher is
// not called, its meter slot stays nil, and even when its breaker is
// open it is not host-scanned (host scans would show in BreakerOpen).
func TestRoutedSkipNeverHostScans(t *testing.T) {
	t.Parallel()
	data := clusteredData(t, 240, 16, 4, 9)
	searchers := make([]*flakySearcher, 4)
	r, err := route.NewEven(route.Config{Seed: 3}, data, 4)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(data, Options{
		Shards: 4,
		Router: r,
		Factory: func(m *vec.Matrix, shardID int) (knn.Searcher, error) {
			fs := &flakySearcher{inner: knn.NewStandard(m)}
			searchers[shardID] = fs
			return fs, nil
		},
		Resilience: &resilience.Config{
			Breaker: resilience.BreakerConfig{FailureThreshold: 2, CoolDown: time.Minute, HalfOpenProbes: 1},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// A query inside shard 0's cluster; it must skip at least one shard.
	q := data.Row(5)
	res, err := e.SearchMode(ctx, q, 5, route.ModeExact)
	if err != nil {
		t.Fatal(err)
	}
	if res.Routed == nil || res.Routed.Skipped == 0 {
		t.Fatalf("clustered query skipped nothing: %+v", res.Routed)
	}
	victim := res.Routed.SkippedShards[0]

	// Trip the victim shard's breaker with fault-storming queries aimed
	// at its own cluster (so routing visits it).
	searchers[victim].faulty.Store(true)
	vq := data.Row(victim*60 + 5)
	for i := 0; i < 3; i++ {
		if _, err := e.SearchMode(ctx, vq, 5, route.ModeExact); err != nil {
			t.Fatalf("breaker-tripping query %d: %v", i, err)
		}
	}
	if got := e.BreakerStates()[victim]; got != resilience.StateOpen {
		t.Fatalf("victim breaker state = %v, want open", got)
	}
	searchers[victim].faulty.Store(false)

	// The skipped query again, now with the victim's breaker open. The
	// victim must be skipped — not host-scanned.
	before := searchers[victim].calls.Load()
	res, err = e.SearchMode(ctx, q, 5, route.ModeExact)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, id := range res.Routed.SkippedShards {
		if id == victim {
			found = true
		}
	}
	if !found {
		t.Fatalf("victim %d no longer skipped: %+v", victim, res.Routed)
	}
	if got := searchers[victim].calls.Load(); got != before {
		t.Fatalf("skipped shard's searcher ran (%d calls, was %d)", got, before)
	}
	for _, id := range res.BreakerOpen {
		if id == victim {
			t.Fatal("skipped shard reported a breaker-open host scan")
		}
	}
	if res.ShardMeters[victim] != nil {
		t.Fatal("skipped shard charged a meter")
	}

	// Contrast: a query that visits the victim is served by the open
	// breaker's exact host scan, and reports it.
	before = searchers[victim].calls.Load()
	res, err = e.SearchMode(ctx, vq, 5, route.ModeExact)
	if err != nil {
		t.Fatal(err)
	}
	openSeen := false
	for _, id := range res.BreakerOpen {
		if id == victim {
			openSeen = true
		}
	}
	if !openSeen {
		t.Fatalf("visited open-breaker shard not reported in BreakerOpen %v (routed %+v)", res.BreakerOpen, res.Routed)
	}
	if got := searchers[victim].calls.Load(); got != before {
		t.Fatal("open breaker still ran the PIM searcher")
	}
}

// TestRoutedMutableChurnStaysExact drives a routed mutable engine and an
// unrouted twin through the same insert/update/delete sequence with a
// mid-stream compaction, comparing exact-mode results bit-for-bit at
// every quiescent point; a final concurrent phase (mutators racing
// routed queries) runs under the race detector and re-checks equality
// after quiescing.
func TestRoutedMutableChurnStaysExact(t *testing.T) {
	t.Parallel()
	data := clusteredData(t, 300, 16, 5, 29)
	r, err := route.NewEven(route.Config{Seed: 13}, data, 5)
	if err != nil {
		t.Fatal(err)
	}
	mkOpts := func(router *route.Router) MutableOptions {
		return MutableOptions{Options: Options{Shards: 5, Router: router}, MaxDelta: 64}
	}
	routed, err := NewMutable(data, mkOpts(r))
	if err != nil {
		t.Fatal(err)
	}
	plain, err := NewMutable(data, mkOpts(nil))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	compare := func(label string) {
		t.Helper()
		for i := 0; i < 8; i++ {
			q := data.Row(i * 31 % data.N)
			got, err := routed.SearchMode(ctx, q, 10, route.ModeExact)
			if err != nil {
				t.Fatalf("%s routed query %d: %v", label, i, err)
			}
			want, err := plain.Search(ctx, q, 10)
			if err != nil {
				t.Fatalf("%s plain query %d: %v", label, i, err)
			}
			assertExact(t, fmt.Sprintf("%s query %d", label, i), got.Neighbors, want.Neighbors)
		}
	}

	// Deterministic churn applied to both engines in lockstep: inserts
	// pushed toward the [0,1] corner outside the routers' built
	// summaries, updates that drag rows across cluster geometry, deletes
	// that tombstone rows the summaries still cover.
	mutate := func(e *MutableEngine) {
		for i := 0; i < 90; i++ {
			v := make([]float64, data.D)
			for j := range v {
				v[j] = 0.85 + float64((i*7+j)%13)/100.0
			}
			if _, err := e.Insert(v); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 40; i++ {
			id := (i * 17) % data.N
			v := append([]float64(nil), data.Row((id+150)%data.N)...)
			if err := e.Update(id, v); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 30; i++ {
			if err := e.Delete((i*23 + 1) % data.N); err != nil {
				t.Fatal(err)
			}
		}
	}

	compare("pre-churn")
	mutate(routed)
	mutate(plain)
	compare("post-churn")

	if err := routed.Compact(arch.NewMeter()); err != nil {
		t.Fatal(err)
	}
	if err := plain.Compact(arch.NewMeter()); err != nil {
		t.Fatal(err)
	}
	compare("post-compaction")

	// Concurrent phase: inserts and compactions race routed queries.
	// Results are checked only for errors here (cross-engine equality is
	// undefined mid-mutation); the race detector checks the rest.
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			v := make([]float64, data.D)
			for j := range v {
				v[j] = 0.01 + float64((i+j)%7)/100.0
			}
			id, err := routed.Insert(v)
			if err != nil {
				t.Error(err)
				return
			}
			if id%50 == 0 {
				if err := routed.Compact(arch.NewMeter()); err != nil {
					t.Error(err)
					return
				}
			}
			i++
		}
	}()
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 60; i++ {
				q := data.Row((w*67 + i*13) % data.N)
				if _, err := routed.SearchMode(ctx, q, 5, route.ModeExact); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	time.Sleep(30 * time.Millisecond)
	close(stop)
	wg.Wait()

	// Quiesce and re-verify: replay the concurrent inserts on the plain
	// twin so the live sets agree again, then compare bit-for-bit.
	live, _ := routed.Materialize()
	plainLive, _ := plain.Materialize()
	for i := plainLive.N; i < live.N; i++ {
		if _, err := plain.Insert(live.Row(i)); err != nil {
			t.Fatal(err)
		}
	}
	compare("post-concurrency")

	visited, skipped := r.Stats()
	if skipped == 0 {
		t.Fatal("mutable routing never skipped a shard through the churn")
	}
	t.Logf("mutable churn: %d shard visits, %d skipped", visited, skipped)
}
