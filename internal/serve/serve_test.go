package serve

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"pimmine/internal/arch"
	"pimmine/internal/core"
	"pimmine/internal/dataset"
	"pimmine/internal/knn"
	"pimmine/internal/vec"
)

// testData builds a small smooth dataset (same recipe as internal/knn's
// tests: clustered, so the bounds have real pruning power) plus queries.
func testData(t testing.TB, n, d, nq int) (*vec.Matrix, *vec.Matrix) {
	t.Helper()
	prof := dataset.Profile{Name: "serve-test", FullN: n, D: d, Clusters: 8, Correlation: 0.8, Spread: 0.1}
	ds := dataset.Generate(prof, n, 42)
	return ds.X, ds.Queries(nq, 43)
}

func testFramework(t testing.TB) *core.Framework {
	t.Helper()
	fw, err := core.Default()
	if err != nil {
		t.Fatal(err)
	}
	return fw
}

// oracle computes the sequential linear-scan ground truth.
func oracle(data, queries *vec.Matrix, k int) [][]vec.Neighbor {
	exact := knn.NewStandard(data)
	out := make([][]vec.Neighbor, queries.N)
	for qi := 0; qi < queries.N; qi++ {
		out[qi] = exact.Search(queries.Row(qi), k, arch.NewMeter())
	}
	return out
}

// assertExact requires got to match want in both IDs and distances.
func assertExact(t *testing.T, label string, got, want []vec.Neighbor) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d neighbors, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i].Index != want[i].Index || got[i].Dist != want[i].Dist {
			t.Fatalf("%s: neighbor %d = {%d %v}, want {%d %v}",
				label, i, got[i].Index, got[i].Dist, want[i].Index, want[i].Dist)
		}
	}
}

// TestShardedMatchesSequentialOracle is the differential determinism
// test: for shard counts {1, 2, 7} and every ED searcher variant, the
// sharded engine's merged top-k must be identical — IDs and distances —
// to the sequential knn.Standard scan.
func TestShardedMatchesSequentialOracle(t *testing.T) {
	t.Parallel()
	const k = 10
	data, queries := testData(t, 240, 64, 6)
	fw := testFramework(t)
	want := oracle(data, queries, k)

	for _, shards := range []int{1, 2, 7} {
		for _, variant := range Variants() {
			label := fmt.Sprintf("shards=%d/%s", shards, variant)
			e, err := New(data, Options{
				Shards:    shards,
				Variant:   variant,
				Framework: fw,
				CapacityN: data.N,
			})
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			if got := e.NumShards(); got != shards {
				t.Fatalf("%s: %d shards built", label, got)
			}
			if deg := e.DegradedShards(); deg != nil {
				t.Fatalf("%s: unexpected degraded shards %v", label, deg)
			}
			for qi := 0; qi < queries.N; qi++ {
				res, err := e.Search(context.Background(), queries.Row(qi), k)
				if err != nil {
					t.Fatalf("%s query %d: %v", label, qi, err)
				}
				assertExact(t, fmt.Sprintf("%s query %d", label, qi), res.Neighbors, want[qi])
			}
		}
	}
}

// TestDegradedShardStaysExact forces construction failures on some shards
// and checks the engine reports them while still answering exactly.
func TestDegradedShardStaysExact(t *testing.T) {
	t.Parallel()
	const k = 7
	data, queries := testData(t, 150, 32, 4)
	want := oracle(data, queries, k)
	fail := errors.New("shard hardware unavailable")

	e, err := New(data, Options{
		Shards: 3,
		Factory: func(m *vec.Matrix, shardID int) (knn.Searcher, error) {
			if shardID == 1 {
				return nil, fail // middle shard degrades to the host scan
			}
			return knn.NewFNN(m)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	deg := e.DegradedShards()
	if len(deg) != 1 || deg[0] != 1 {
		t.Fatalf("degraded shards = %v, want [1]", deg)
	}
	for qi := 0; qi < queries.N; qi++ {
		res, err := e.Search(context.Background(), queries.Row(qi), k)
		if err != nil {
			t.Fatal(err)
		}
		assertExact(t, fmt.Sprintf("degraded query %d", qi), res.Neighbors, want[qi])
		if len(res.Degraded) != 1 || res.Degraded[0] != 1 {
			t.Fatalf("result reports degraded %v, want [1]", res.Degraded)
		}
	}
}

// TestBatchMatchesSequentialAndMeters checks batch answers and that the
// merged shard meters carry exactly the sequential scan's activity (the
// standard variant touches every object once regardless of sharding).
func TestBatchMatchesSequentialAndMeters(t *testing.T) {
	t.Parallel()
	const k = 5
	data, queries := testData(t, 200, 32, 12)
	seq := knn.NewStandard(data)
	seqMeter := arch.NewMeter()
	want := make([][]vec.Neighbor, queries.N)
	for qi := 0; qi < queries.N; qi++ {
		want[qi] = seq.Search(queries.Row(qi), k, seqMeter)
	}

	e, err := New(data, Options{Shards: 4, Variant: VariantStandard, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.SearchBatch(context.Background(), queries, k)
	if err != nil {
		t.Fatal(err)
	}
	for qi := range want {
		assertExact(t, fmt.Sprintf("batch query %d", qi), res.Results[qi].Neighbors, want[qi])
	}
	if got, want := res.Meter.Total(), seqMeter.Total(); got != want {
		t.Fatalf("batch meter %+v != sequential %+v", got, want)
	}
	if got := e.Meter().Total(); got != seqMeter.Total() {
		t.Fatalf("engine cumulative meter %+v != sequential %+v", got, seqMeter.Total())
	}
}

// slowSearcher delays each search so deadline tests are deterministic.
type slowSearcher struct {
	inner knn.Searcher
	delay time.Duration
}

func (s *slowSearcher) Name() string { return "slow-" + s.inner.Name() }

func (s *slowSearcher) Search(q []float64, k int, m *arch.Meter) []vec.Neighbor {
	time.Sleep(s.delay)
	return s.inner.Search(q, k, m)
}

func TestCancellationAndDeadline(t *testing.T) {
	t.Parallel()
	data, queries := testData(t, 100, 16, 3)

	// Already-canceled context: fail fast, no partial results.
	e, err := New(data, Options{Shards: 2, Variant: VariantStandard})
	if err != nil {
		t.Fatal(err)
	}
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.Search(canceled, queries.Row(0), 3); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled search: %v", err)
	}
	if _, err := e.SearchBatch(canceled, queries, 3); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled batch: %v", err)
	}

	// Per-query deadline against a slow shard searcher.
	slow, err := New(data, Options{
		Shards:       2,
		QueryTimeout: 5 * time.Millisecond,
		Factory: func(m *vec.Matrix, _ int) (knn.Searcher, error) {
			return &slowSearcher{inner: knn.NewStandard(m), delay: 200 * time.Millisecond}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := slow.Search(context.Background(), queries.Row(0), 3); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline search: %v", err)
	}

	// A generous per-query deadline must not interfere.
	ok, err := New(data, Options{Shards: 2, Variant: VariantStandard, QueryTimeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ok.Search(context.Background(), queries.Row(0), 3); err != nil {
		t.Fatalf("generous deadline: %v", err)
	}
}

// TestConcurrentQueriesRaceClean hammers one engine from many goroutines
// (single queries and batches at once) — the race detector is the judge,
// and every answer must still be exact.
func TestConcurrentQueriesRaceClean(t *testing.T) {
	t.Parallel()
	const k = 5
	data, queries := testData(t, 180, 32, 10)
	fw := testFramework(t)
	want := oracle(data, queries, k)

	e, err := New(data, Options{Shards: 3, Variant: VariantFNNPIM, Framework: fw, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 8
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			if g%2 == 0 {
				for qi := 0; qi < queries.N; qi++ {
					res, err := e.Search(context.Background(), queries.Row(qi), k)
					if err != nil {
						errc <- err
						return
					}
					for i := range want[qi] {
						if res.Neighbors[i] != want[qi][i] {
							errc <- fmt.Errorf("goroutine %d query %d inexact under concurrency", g, qi)
							return
						}
					}
				}
				errc <- nil
				return
			}
			res, err := e.SearchBatch(context.Background(), queries, k)
			if err != nil {
				errc <- err
				return
			}
			for qi := range want {
				for i := range want[qi] {
					if res.Results[qi].Neighbors[i] != want[qi][i] {
						errc <- fmt.Errorf("goroutine %d batch query %d inexact", g, qi)
						return
					}
				}
			}
			errc <- nil
		}(g)
	}
	for g := 0; g < goroutines; g++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
}

func TestOptionsValidation(t *testing.T) {
	t.Parallel()
	data, queries := testData(t, 50, 16, 1)
	if _, err := New(nil, Options{}); err == nil {
		t.Fatal("nil dataset accepted")
	}
	if _, err := New(data, Options{Variant: "nope"}); err == nil {
		t.Fatal("unknown variant accepted")
	}
	if _, err := New(data, Options{Variant: VariantFNNPIM}); err == nil {
		t.Fatal("PIM variant without framework accepted")
	}
	// More shards than rows clamp to one row per shard.
	e, err := New(data, Options{Shards: 500, Variant: VariantStandard})
	if err != nil {
		t.Fatal(err)
	}
	if e.NumShards() != data.N {
		t.Fatalf("shards = %d, want %d", e.NumShards(), data.N)
	}
	total := 0
	for _, n := range e.ShardSizes() {
		total += n
	}
	if total != data.N {
		t.Fatalf("shard sizes cover %d rows, want %d", total, data.N)
	}
	if _, err := e.Search(context.Background(), queries.Row(0)[:4], 3); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
	if _, err := e.Search(context.Background(), queries.Row(0), 0); err == nil {
		t.Fatal("k=0 accepted")
	}
}
