package serve

import (
	"context"
	"fmt"

	"pimmine/internal/arch"
	"pimmine/internal/pool"
	"pimmine/internal/route"
	"pimmine/internal/vec"
)

// BatchResult is the outcome of a batch submission.
type BatchResult struct {
	// Results holds one Result per query row, in query order.
	Results []*Result
	// Meter merges every query's activity.
	Meter *arch.Meter
}

// Neighbors flattens the per-query neighbor lists (convenience for
// callers porting from knn.SearchBatch).
func (b *BatchResult) Neighbors() [][]vec.Neighbor {
	out := make([][]vec.Neighbor, len(b.Results))
	for i, r := range b.Results {
		if r != nil {
			out[i] = r.Neighbors
		}
	}
	return out
}

// SearchBatch answers a whole query matrix through the engine's bounded
// worker pool: at most Options.Workers queries are in flight at once,
// each fanning out to the shards, so shards stay busy while no single
// batch monopolizes the engine. Cancellation of ctx (or a per-query
// deadline) aborts the batch with the context's error. Results are
// deterministic and identical to issuing the queries sequentially.
func (e *Engine) SearchBatch(ctx context.Context, queries *vec.Matrix, k int) (*BatchResult, error) {
	return e.SearchBatchMode(ctx, queries, k, route.ModeAuto)
}

// SearchBatchMode is SearchBatch with an explicit routing mode (see
// SearchMode).
func (e *Engine) SearchBatchMode(ctx context.Context, queries *vec.Matrix, k int, mode route.Mode) (*BatchResult, error) {
	if queries == nil || queries.N == 0 {
		return &BatchResult{Meter: arch.NewMeter()}, nil
	}
	if k <= 0 {
		return nil, fmt.Errorf("serve: batch needs k >= 1, got %d", k)
	}
	res := &BatchResult{
		Results: make([]*Result, queries.N),
		Meter:   arch.NewMeter(),
	}
	// Batch queue-depth accounting: jobs enter the gauge on submission and
	// leave exactly once each — when a worker picks them up (JobStart) or
	// when cancellation/failure drains them (JobSkip). The pool guarantees
	// one of the two fires per job, so the gauge returns to its prior value
	// on every exit path.
	var hooks pool.Hooks
	if e.eobs != nil {
		e.eobs.queueDepth.Add(int64(queries.N))
		dec := func(int) { e.eobs.queueDepth.Add(-1) }
		hooks.JobStart = dec
		hooks.JobSkip = dec
	}
	err := pool.RunHooked(ctx, queries.N, e.opts.Workers, func(w int) (pool.Worker, error) {
		return func(qi int) error {
			r, err := e.SearchMode(ctx, queries.Row(qi), k, mode)
			if err != nil {
				return fmt.Errorf("serve: query %d: %w", qi, err)
			}
			res.Results[qi] = r
			return nil
		}, nil
	}, hooks)
	if err != nil {
		return nil, err
	}
	for _, r := range res.Results {
		res.Meter.Merge(r.Meter)
	}
	return res, nil
}
