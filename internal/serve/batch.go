package serve

import (
	"context"
	"fmt"
	"sync/atomic"

	"pimmine/internal/arch"
	"pimmine/internal/pool"
	"pimmine/internal/vec"
)

// BatchResult is the outcome of a batch submission.
type BatchResult struct {
	// Results holds one Result per query row, in query order.
	Results []*Result
	// Meter merges every query's activity.
	Meter *arch.Meter
}

// Neighbors flattens the per-query neighbor lists (convenience for
// callers porting from knn.SearchBatch).
func (b *BatchResult) Neighbors() [][]vec.Neighbor {
	out := make([][]vec.Neighbor, len(b.Results))
	for i, r := range b.Results {
		if r != nil {
			out[i] = r.Neighbors
		}
	}
	return out
}

// SearchBatch answers a whole query matrix through the engine's bounded
// worker pool: at most Options.Workers queries are in flight at once,
// each fanning out to the shards, so shards stay busy while no single
// batch monopolizes the engine. Cancellation of ctx (or a per-query
// deadline) aborts the batch with the context's error. Results are
// deterministic and identical to issuing the queries sequentially.
func (e *Engine) SearchBatch(ctx context.Context, queries *vec.Matrix, k int) (*BatchResult, error) {
	if queries == nil || queries.N == 0 {
		return &BatchResult{Meter: arch.NewMeter()}, nil
	}
	if k <= 0 {
		return nil, fmt.Errorf("serve: batch needs k >= 1, got %d", k)
	}
	res := &BatchResult{
		Results: make([]*Result, queries.N),
		Meter:   arch.NewMeter(),
	}
	// Batch queue-depth accounting: jobs enter the gauge on submission and
	// leave as workers pick them up; whatever cancellation skipped is
	// drained at the end.
	var hooks pool.Hooks
	var started atomic.Int64
	if e.eobs != nil {
		e.eobs.queueDepth.Add(int64(queries.N))
		hooks.JobStart = func(int) {
			started.Add(1)
			e.eobs.queueDepth.Add(-1)
		}
		defer func() {
			e.eobs.queueDepth.Add(started.Load() - int64(queries.N))
		}()
	}
	err := pool.RunHooked(ctx, queries.N, e.opts.Workers, func(w int) (pool.Worker, error) {
		return func(qi int) error {
			r, err := e.Search(ctx, queries.Row(qi), k)
			if err != nil {
				return fmt.Errorf("serve: query %d: %w", qi, err)
			}
			res.Results[qi] = r
			return nil
		}, nil
	}, hooks)
	if err != nil {
		return nil, err
	}
	for _, r := range res.Results {
		res.Meter.Merge(r.Meter)
	}
	return res, nil
}
