// Durability for the mutable engine: WAL-before-apply mutations,
// checkpoint snapshots that truncate the log, and crash recovery that
// rebuilds a byte-identical engine. The exactness argument mirrors the
// delta layer's differential goldens: search transcripts depend only on
// the live row set (global ids plus Float64bits), which is exactly what
// a snapshot image plus the replayed log tail reconstructs — compaction
// timing, delta/tombstone split and epoch counters need not survive the
// crash.
package serve

import (
	"context"
	"errors"
	"fmt"
	"os"
	"runtime"
	"time"

	"pimmine/internal/delta"
	"pimmine/internal/knn"
	"pimmine/internal/obs"
	"pimmine/internal/pim"
	"pimmine/internal/standing"
	"pimmine/internal/vec"
	"pimmine/internal/wal"
)

// Durability configures the WAL + snapshot layer of a mutable engine.
// The zero value (empty Dir) disables durability.
type Durability struct {
	// Dir is the directory holding wal-*.seg segments and
	// snap-*.pimsnap checkpoint images. Setting it enables durability.
	Dir string
	// Policy is the fsync cadence (default wal.SyncAlways: a mutation
	// is durable before it is applied or acknowledged).
	Policy wal.SyncPolicy
	// SyncEvery is the wal.SyncInterval period (default 100ms).
	SyncEvery time.Duration
	// SegmentBytes is the log rotation threshold (default 4 MiB).
	SegmentBytes int64
	// Fsync, when non-nil, replaces the file sync call — the failure
	// injection hook the shutdown regression tests use.
	Fsync func(*os.File) error
}

func (d Durability) walOptions(m *wal.Metrics) wal.Options {
	return wal.Options{
		Policy:       d.Policy,
		SyncEvery:    d.SyncEvery,
		SegmentBytes: d.SegmentBytes,
		Fsync:        d.Fsync,
		Metrics:      m,
	}
}

// Durability sentinels.
var (
	// ErrNotDurable reports a durability operation on an engine built
	// without Durability.Dir.
	ErrNotDurable = errors.New("serve: engine has no durability configured")
	// ErrDurableState reports NewMutable pointed at a directory that
	// already holds recoverable state — refusing protects the existing
	// log from being silently forked; use RecoverMutable.
	ErrDurableState = errors.New("serve: durability directory already holds state (use RecoverMutable)")
	// ErrNoDurableState reports RecoverMutable pointed at a directory
	// with nothing to recover.
	ErrNoDurableState = errors.New("serve: durability directory holds no recoverable state")
)

// initStanding wires the continuous-query registry. Its re-query
// callback fans out over the stores directly — without engine locks —
// because it runs while the caller already holds e.mu (member deletes)
// and the store searches are lock-free by design.
func (e *MutableEngine) initStanding(reg *obs.Registry) error {
	var m *standing.Metrics
	if reg != nil {
		m = standing.NewMetrics(reg)
	}
	requery := func(q []float64, k int) ([]vec.Neighbor, error) {
		outs, err := e.fanOutStores(context.Background(), q, k, nil)
		if err != nil {
			return nil, err
		}
		lists := make([][]vec.Neighbor, 0, len(outs))
		for _, o := range outs {
			lists = append(lists, o.nn)
		}
		return vec.MergeNeighbors(k, lists...), nil
	}
	r, err := standing.NewRegistry(standing.Options{
		Requery: requery,
		Buffer:  e.opts.StandingBuffer,
		Metrics: m,
	})
	if err != nil {
		return err
	}
	e.standing = r
	return nil
}

// initDurabilityFresh opens the log for a newly built engine and seeds
// the directory with an LSN-0 snapshot of the initial dataset, so
// recovery always starts from a snapshot. A directory already holding
// state is refused.
func (e *MutableEngine) initDurabilityFresh(reg *obs.Registry) error {
	d := e.opts.Durability
	if _, err := wal.LatestSnapshot(d.Dir); err == nil {
		return ErrDurableState
	} else if !errors.Is(err, wal.ErrNoSnapshot) {
		return err
	}
	e.walM = wal.NewMetrics(reg)
	log, last, err := wal.Open(d.Dir, d.walOptions(e.walM))
	if err != nil {
		return err
	}
	if last != 0 {
		log.Close()
		return ErrDurableState
	}
	e.log = log
	if err := e.writeSnapshot(0); err != nil {
		log.Close()
		e.log = nil
		return err
	}
	return nil
}

// writeSnapshot materializes every shard and writes the checkpoint
// image covering LSN lsn. Caller must hold e.mu or have exclusive use
// of the engine.
func (e *MutableEngine) writeSnapshot(lsn int64) error {
	s := &wal.Snapshot{LSN: lsn, Dims: e.d, NextID: e.nextID, RR: e.rr}
	for _, st := range e.stores {
		m, ids := st.Materialize()
		s.Shards = append(s.Shards, wal.ShardState{IDs: ids, Data: m.Data})
	}
	if err := wal.WriteSnapshot(e.opts.Durability.Dir, s); err != nil {
		return err
	}
	if e.walM != nil {
		e.walM.Snapshots.Inc()
	}
	return nil
}

// Checkpoint seals the active log segment, writes an atomic snapshot of
// the current live state, and truncates the log and older snapshots the
// new image makes redundant. Mutations stall for the duration (the
// durability analogue of a compaction pause); queries do not.
func (e *MutableEngine) Checkpoint() error {
	release, err := e.acquireMut()
	if err != nil {
		return err
	}
	defer release()
	if e.log == nil {
		return ErrNotDurable
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	lsn := e.log.NextLSN() - 1
	if err := e.log.Rotate(); err != nil {
		return fmt.Errorf("serve: checkpoint rotate: %w", err)
	}
	if err := e.writeSnapshot(lsn); err != nil {
		return fmt.Errorf("serve: checkpoint snapshot: %w", err)
	}
	if err := e.log.TruncateBefore(lsn); err != nil {
		return fmt.Errorf("serve: checkpoint truncate: %w", err)
	}
	if err := wal.RemoveSnapshotsBefore(e.opts.Durability.Dir, lsn); err != nil {
		return fmt.Errorf("serve: checkpoint cleanup: %w", err)
	}
	return nil
}

// RecoverMutable rebuilds a mutable engine from its durability
// directory: the latest valid snapshot image restores every shard (each
// re-running the Theorem 4 sizing and re-tightening routing summaries
// through the same hooks a compaction uses), then the log tail strictly
// after the snapshot LSN is replayed — re-firing OnMutate per record,
// so conservative summary growth is reproduced too. A torn final record
// (crash mid-append) is discarded exactly as wal.Open defines;
// corruption anywhere else refuses recovery with the typed error.
//
// The recovered engine serves byte-identical transcripts to the
// pre-crash engine across every mining task: its live row set (global
// ids + Float64bits) is reconstructed exactly, and the delta
// differential goldens prove transcripts depend on nothing else.
func RecoverMutable(opts MutableOptions) (*MutableEngine, error) {
	d := opts.Durability
	if d.Dir == "" {
		return nil, ErrNotDurable
	}
	snap, err := wal.LatestSnapshot(d.Dir)
	if err != nil {
		if errors.Is(err, wal.ErrNoSnapshot) {
			return nil, ErrNoDurableState
		}
		return nil, err
	}
	s := len(snap.Shards)
	opts.Shards = s
	if err := checkRouter(opts.Router, s, snap.Dims); err != nil {
		return nil, err
	}
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	totalLive := 0
	for _, sh := range snap.Shards {
		totalLive += len(sh.IDs)
	}
	if opts.CapacityN <= 0 {
		opts.CapacityN = totalLive
		if opts.CapacityN == 0 {
			opts.CapacityN = 1
		}
	}
	if opts.Variant == "" {
		opts.Variant = VariantStandard
	}
	build, err := variantBuilder(opts.Options)
	if err != nil {
		return nil, err
	}
	var res *engineResilience
	if opts.Resilience != nil {
		if res, err = newEngineResilience(opts.Resilience); err != nil {
			return nil, err
		}
		if mc := opts.Resilience.MaxConcurrent; mc > 0 && opts.Workers > mc {
			opts.Workers = mc
		}
	}
	e := &MutableEngine{
		d:      snap.Dims,
		opts:   opts,
		nextID: snap.NextID,
		rr:     snap.RR,
		routes: make(map[int]int, totalLive),
		res:    res,
		// Degenerate bounds: a restored engine's shards hold arbitrary
		// id sets, so every id routes through the table instead of a
		// contiguous range check.
		bounds:   make([]int, s+1),
		degraded: make([]bool, s),
	}
	var reg *obs.Registry
	if opts.Obs != nil {
		reg = opts.Obs.Registry()
	}
	shardCap := shardCapacity(opts.Options)
	for id := range snap.Shards {
		shardID := id
		factory := func(m *vec.Matrix, capacityN int) (knn.Searcher, error) {
			srch, ferr := build(m, capacityN)
			if ferr != nil {
				e.degraded[shardID] = true
				return knn.NewStandard(m), nil
			}
			return srch, nil
		}
		dopts := delta.Options{
			Factory:           factory,
			MaxDelta:          opts.MaxDelta,
			MaxTombstoneRatio: opts.MaxTombstoneRatio,
			AutoCompact:       opts.AutoCompact,
			CapacityRows:      shardCap,
		}
		if reg != nil {
			dopts.Metrics = delta.NewMetrics(reg, obs.Label{Key: "shard", Value: fmt.Sprint(id)})
		}
		if r := opts.Router; r != nil {
			dopts.OnMutate = func(v []float64) { r.Observe(shardID, v) }
			dopts.OnCompact = func(base *vec.Matrix) { r.Refresh(shardID, base) }
		}
		if opts.WriteBudget > 0 {
			if opts.Framework != nil {
				model := pim.ModelFor(opts.Framework.Cfg)
				dopts.Model = &model
				dopts.Ledger, err = delta.NewLedger(opts.Framework.Cfg.NumCrossbars(), opts.WriteBudget)
			} else {
				dopts.Ledger, err = delta.NewLedger(2, opts.WriteBudget)
			}
			if err != nil {
				return nil, err
			}
		}
		sh := snap.Shards[id]
		m := &vec.Matrix{N: len(sh.IDs), D: snap.Dims, Data: sh.Data}
		st, err := delta.Restore(m, sh.IDs, snap.NextID, dopts)
		if err != nil {
			return nil, fmt.Errorf("serve: restoring shard %d: %w", id, err)
		}
		e.stores = append(e.stores, st)
		for _, gid := range sh.IDs {
			e.routes[gid] = id
		}
	}
	e.walM = wal.NewMetrics(reg)
	// Open first: it truncates a torn tail, so replay below sees a
	// clean log and new appends land on a record boundary.
	log, _, err := wal.Open(d.Dir, d.walOptions(e.walM))
	if err != nil {
		closeStores(e.stores)
		return nil, err
	}
	start := time.Now()
	replayed := 0
	err = wal.Replay(d.Dir, snap.LSN, func(lsn int64, rec wal.Record) error {
		replayed++
		return e.applyReplay(rec)
	})
	if err != nil {
		log.Close()
		closeStores(e.stores)
		return nil, fmt.Errorf("serve: replaying wal: %w", err)
	}
	e.log = log
	if e.walM != nil {
		e.walM.ReplayedRecords.Set(int64(replayed))
		e.walM.ReplaySeconds.Observe(time.Since(start).Seconds())
	}
	if err := e.initStanding(reg); err != nil {
		log.Close()
		closeStores(e.stores)
		return nil, err
	}
	return e, nil
}

func closeStores(stores []*delta.Store) {
	for _, st := range stores {
		st.Close()
	}
}

// applyReplay re-applies one logged mutation during recovery. The log
// recorded mutations the engine had already validated and routed, so a
// record that fails to apply means the log and snapshot disagree —
// surfaced as an error, never papered over.
func (e *MutableEngine) applyReplay(rec wal.Record) error {
	if rec.Shard >= len(e.stores) {
		return fmt.Errorf("%w: record routes to shard %d of %d", wal.ErrCorrupt, rec.Shard, len(e.stores))
	}
	switch rec.Op {
	case wal.OpInsert:
		if err := e.stores[rec.Shard].InsertAt(rec.ID, rec.Vec); err != nil {
			return err
		}
		e.routes[rec.ID] = rec.Shard
		if rec.ID >= e.nextID {
			e.nextID = rec.ID + 1
		}
		e.rr = (rec.Shard + 1) % len(e.stores)
	case wal.OpUpdate:
		if err := e.stores[rec.Shard].Update(rec.ID, rec.Vec); err != nil {
			return err
		}
	case wal.OpDelete:
		if err := e.stores[rec.Shard].Delete(rec.ID); err != nil {
			return err
		}
		delete(e.routes, rec.ID)
	default:
		return fmt.Errorf("%w: unknown op %d", wal.ErrCorrupt, rec.Op)
	}
	return nil
}

// SubscribeKNN registers a standing k-nearest-neighbor query (see
// internal/standing): the returned subscription carries the initial
// result view and then an event for every mutation that changes it,
// maintained incrementally from the delta. Registration synchronizes
// with the mutation stream, so the init view plus the event sequence
// exactly tracks the engine's applied mutations.
func (e *MutableEngine) SubscribeKNN(q []float64, k int) (*standing.Subscription, error) {
	release, err := e.acquireMut()
	if err != nil {
		return nil, err
	}
	defer release()
	if len(q) != e.d {
		return nil, fmt.Errorf("%w: query has %d dims, dataset has %d",
			standing.ErrBadSubscription, len(q), e.d)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.standing.SubscribeKNN(q, k)
}

// SubscribeRadius registers a radius watch: a KindMatch event for every
// future insert within Euclidean distance radius of q.
func (e *MutableEngine) SubscribeRadius(q []float64, radius float64) (*standing.Subscription, error) {
	release, err := e.acquireMut()
	if err != nil {
		return nil, err
	}
	defer release()
	if len(q) != e.d {
		return nil, fmt.Errorf("%w: query has %d dims, dataset has %d",
			standing.ErrBadSubscription, len(q), e.d)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.standing.SubscribeRadius(q, radius)
}

// Unsubscribe removes a standing subscription and closes its event
// channel. Safe on unknown ids and after Close.
func (e *MutableEngine) Unsubscribe(id int) {
	if e.standing != nil {
		e.standing.Unsubscribe(id)
	}
}

// StandingView returns a copy of a kNN subscription's current result
// view (nil for radius watches or unknown ids).
func (e *MutableEngine) StandingView(id int) []vec.Neighbor {
	if e.standing == nil {
		return nil
	}
	return e.standing.Current(id)
}
