package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pimmine/internal/arch"
	"pimmine/internal/knn"
	"pimmine/internal/resilience"
	"pimmine/internal/vec"
)

// flakySearcher wraps an exact searcher and, while `faulty` is set,
// reports PIM faults on the meter the way internal/fault's corrected-dot
// path does (results stay exact — correction preserves exactness; only
// the fault counters tell the resilience layer the hardware is sick).
// calls counts how often the PIM path actually ran.
type flakySearcher struct {
	inner  knn.Searcher
	faulty atomic.Bool
	calls  atomic.Int64
}

func (s *flakySearcher) Name() string { return "flaky-" + s.inner.Name() }

func (s *flakySearcher) Search(q []float64, k int, m *arch.Meter) []vec.Neighbor {
	s.calls.Add(1)
	if s.faulty.Load() {
		m.C("pim-dot").PIMFaults++
	}
	return s.inner.Search(q, k, m)
}

// TestAdmissionControlRejectsTyped saturates a MaxConcurrent=1,
// MaxQueue=0 engine and checks the second concurrent query is refused
// with resilience.ErrOverloaded — quickly, without waiting out the slow
// in-flight query — and that the engine serves normally again afterward.
func TestAdmissionControlRejectsTyped(t *testing.T) {
	t.Parallel()
	data, queries := testData(t, 60, 16, 2)
	const delay = 100 * time.Millisecond
	e, err := New(data, Options{
		Shards: 1,
		Factory: func(m *vec.Matrix, _ int) (knn.Searcher, error) {
			return &slowSearcher{inner: knn.NewStandard(m), delay: delay}, nil
		},
		Resilience: &resilience.Config{MaxConcurrent: 1},
	})
	if err != nil {
		t.Fatal(err)
	}

	started := make(chan struct{})
	firstDone := make(chan error, 1)
	go func() {
		close(started)
		_, err := e.Search(context.Background(), queries.Row(0), 3)
		firstDone <- err
	}()
	<-started
	// Wait until the first query actually holds the admission slot.
	deadline := time.Now().Add(delay)
	for e.res.lim.InFlight() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first query never acquired the admission slot")
		}
		time.Sleep(time.Millisecond)
	}

	rejectStart := time.Now()
	_, err = e.Search(context.Background(), queries.Row(1), 3)
	if !errors.Is(err, resilience.ErrOverloaded) {
		t.Fatalf("saturated engine returned %v, want ErrOverloaded", err)
	}
	if waited := time.Since(rejectStart); waited > delay/2 {
		t.Fatalf("rejection took %s — it queued instead of failing fast", waited)
	}
	if err := <-firstDone; err != nil {
		t.Fatalf("admitted query failed: %v", err)
	}
	// Slot released: the engine serves again.
	if _, err := e.Search(context.Background(), queries.Row(1), 3); err != nil {
		t.Fatalf("post-overload query failed: %v", err)
	}
}

// TestAdmissionQueueAdmitsWaiters: with MaxQueue=1 a second query waits
// for the slot (and succeeds) while a third is refused.
func TestAdmissionQueueAdmitsWaiters(t *testing.T) {
	t.Parallel()
	data, queries := testData(t, 60, 16, 3)
	block := make(chan struct{})
	var once sync.Once
	e, err := New(data, Options{
		Shards: 1,
		Factory: func(m *vec.Matrix, _ int) (knn.Searcher, error) {
			inner := knn.NewStandard(m)
			return knn.SearcherFunc("gated", func(q []float64, k int, mm *arch.Meter) []vec.Neighbor {
				once.Do(func() { <-block }) // only the first query blocks
				return inner.Search(q, k, mm)
			}), nil
		},
		Resilience: &resilience.Config{MaxConcurrent: 1, MaxQueue: 1},
	})
	if err != nil {
		t.Fatal(err)
	}

	results := make(chan error, 2)
	go func() { _, err := e.Search(context.Background(), queries.Row(0), 3); results <- err }()
	// Wait for query 1 to hold the slot, then enqueue query 2.
	for e.res.lim.InFlight() == 0 {
		time.Sleep(time.Millisecond)
	}
	go func() { _, err := e.Search(context.Background(), queries.Row(1), 3); results <- err }()
	for e.res.lim.Queued() == 0 {
		time.Sleep(time.Millisecond)
	}
	// Queue full: query 3 is refused immediately.
	if _, err := e.Search(context.Background(), queries.Row(2), 3); !errors.Is(err, resilience.ErrOverloaded) {
		t.Fatalf("third query got %v, want ErrOverloaded", err)
	}
	close(block)
	for i := 0; i < 2; i++ {
		if err := <-results; err != nil {
			t.Fatalf("admitted query %d failed: %v", i, err)
		}
	}
}

// TestShedDeadlineTyped warms the shedder's latency view with slow
// queries, then checks a query arriving with a doomed deadline is shed
// with resilience.ErrShedDeadline before any shard work happens, while a
// roomy deadline still serves.
func TestShedDeadlineTyped(t *testing.T) {
	t.Parallel()
	data, queries := testData(t, 60, 16, 2)
	fs := &flakySearcher{}
	e, err := New(data, Options{
		Shards: 1,
		Factory: func(m *vec.Matrix, _ int) (knn.Searcher, error) {
			fs.inner = &slowSearcher{inner: knn.NewStandard(m), delay: 20 * time.Millisecond}
			return fs, nil
		},
		Resilience: &resilience.Config{ShedFactor: 1, MinShedSamples: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := e.Search(context.Background(), queries.Row(0), 3); err != nil {
			t.Fatalf("warm-up query %d: %v", i, err)
		}
	}
	p95, n := e.res.shed.P95()
	if n < 4 || p95 < 20*time.Millisecond {
		t.Fatalf("shedder saw p95=%s over %d samples after warm-up", p95, n)
	}

	calls := fs.calls.Load()
	doomed, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	if _, err := e.Search(doomed, queries.Row(1), 3); !errors.Is(err, resilience.ErrShedDeadline) {
		t.Fatalf("doomed query got %v, want ErrShedDeadline", err)
	}
	if got := fs.calls.Load(); got != calls {
		t.Fatal("shed query still reached the shard searcher")
	}
	roomy, cancel2 := context.WithTimeout(context.Background(), time.Minute)
	defer cancel2()
	if _, err := e.Search(roomy, queries.Row(1), 3); err != nil {
		t.Fatalf("roomy query shed: %v", err)
	}
}

// TestQueryTimeoutTypedErrorChain: the engine-applied QueryTimeout
// surfaces as ErrQueryTimeout AND still matches
// context.DeadlineExceeded, while a caller-imposed deadline matches only
// the latter — so callers can tell whose deadline fired.
func TestQueryTimeoutTypedErrorChain(t *testing.T) {
	t.Parallel()
	data, queries := testData(t, 60, 16, 1)
	slowFactory := func(m *vec.Matrix, _ int) (knn.Searcher, error) {
		return &slowSearcher{inner: knn.NewStandard(m), delay: 200 * time.Millisecond}, nil
	}

	engineTO, err := New(data, Options{Shards: 1, QueryTimeout: 2 * time.Millisecond, Factory: slowFactory})
	if err != nil {
		t.Fatal(err)
	}
	_, err = engineTO.Search(context.Background(), queries.Row(0), 3)
	if !errors.Is(err, ErrQueryTimeout) {
		t.Fatalf("engine timeout returned %v, want ErrQueryTimeout", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("ErrQueryTimeout must keep matching context.DeadlineExceeded, got %v", err)
	}

	noTO, err := New(data, Options{Shards: 1, Factory: slowFactory})
	if err != nil {
		t.Fatal(err)
	}
	callerCtx, cancel := context.WithTimeout(context.Background(), 2*time.Millisecond)
	defer cancel()
	_, err = noTO.Search(callerCtx, queries.Row(0), 3)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("caller deadline returned %v", err)
	}
	if errors.Is(err, ErrQueryTimeout) {
		t.Fatal("caller deadline must not masquerade as the engine's QueryTimeout")
	}
}

// TestBreakerTripsToHostAndRecovers drives one shard through the full
// breaker arc: a fault storm trips it after FailureThreshold consecutive
// failures, open-state queries serve the exact host scan (the PIM
// searcher is not called, Result.BreakerOpen reports the shard, answers
// match the oracle), and once the storm passes a half-open probe
// re-admits PIM traffic and closes the breaker.
func TestBreakerTripsToHostAndRecovers(t *testing.T) {
	t.Parallel()
	const k = 5
	data, queries := testData(t, 80, 16, 4)
	want := oracle(data, queries, k)
	fs := &flakySearcher{}
	cfg := resilience.Config{
		Breaker: resilience.BreakerConfig{FailureThreshold: 2, CoolDown: 20 * time.Millisecond, HalfOpenProbes: 1},
	}
	e, err := New(data, Options{
		Shards: 1,
		Factory: func(m *vec.Matrix, _ int) (knn.Searcher, error) {
			fs.inner = knn.NewStandard(m)
			return fs, nil
		},
		Resilience: &cfg,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Fault storm: two failing queries trip the breaker (no retry budget
	// configured, so each failure is final).
	fs.faulty.Store(true)
	for i := 0; i < 2; i++ {
		res, err := e.Search(context.Background(), queries.Row(0), k)
		if err != nil {
			t.Fatalf("faulty query %d errored: %v — faults must degrade, not fail", i, err)
		}
		assertExact(t, fmt.Sprintf("faulty query %d", i), res.Neighbors, want[0])
		if len(res.BreakerOpen) != 0 {
			t.Fatalf("breaker reported open before tripping: %v", res.BreakerOpen)
		}
	}
	if got := e.BreakerStates()[0]; got != resilience.StateOpen {
		t.Fatalf("breaker state after storm = %v, want open", got)
	}
	if got := e.BreakerTrips(); got != 1 {
		t.Fatalf("trips = %d, want 1", got)
	}

	// Open: the host scan serves; the PIM searcher must not be touched.
	pimCalls := fs.calls.Load()
	for qi := 0; qi < 3; qi++ {
		res, err := e.Search(context.Background(), queries.Row(qi), k)
		if err != nil {
			t.Fatalf("open-breaker query %d: %v", qi, err)
		}
		assertExact(t, fmt.Sprintf("open-breaker query %d", qi), res.Neighbors, want[qi])
		if len(res.BreakerOpen) != 1 || res.BreakerOpen[0] != 0 {
			t.Fatalf("query %d BreakerOpen = %v, want [0]", qi, res.BreakerOpen)
		}
	}
	if fs.calls.Load() != pimCalls {
		t.Fatal("open breaker still sent traffic to the PIM searcher")
	}

	// Storm over + cool-down elapsed: a probe succeeds and closes it.
	fs.faulty.Store(false)
	time.Sleep(cfg.Breaker.CoolDown + 5*time.Millisecond)
	res, err := e.Search(context.Background(), queries.Row(3), k)
	if err != nil {
		t.Fatalf("probe query: %v", err)
	}
	assertExact(t, "probe query", res.Neighbors, want[3])
	if len(res.BreakerOpen) != 0 {
		t.Fatalf("recovered query still reports BreakerOpen %v", res.BreakerOpen)
	}
	if got := e.BreakerStates()[0]; got != resilience.StateClosed {
		t.Fatalf("breaker state after recovery = %v, want closed", got)
	}
	if fs.calls.Load() == pimCalls {
		t.Fatal("recovered breaker never re-admitted PIM traffic")
	}
}

// TestRetryBudgetRetriesTransient: a searcher that faults exactly once
// gets a second attempt from the retry budget; the query succeeds, the
// meter carries both attempts' work, and no breaker trip is recorded.
func TestRetryBudgetRetriesTransient(t *testing.T) {
	t.Parallel()
	const k = 5
	data, queries := testData(t, 80, 16, 1)
	want := oracle(data, queries, k)
	var calls atomic.Int64
	e, err := New(data, Options{
		Shards: 1,
		Factory: func(m *vec.Matrix, _ int) (knn.Searcher, error) {
			inner := knn.NewStandard(m)
			return knn.SearcherFunc("fault-once", func(q []float64, kk int, mm *arch.Meter) []vec.Neighbor {
				if calls.Add(1) == 1 {
					mm.C("pim-dot").PIMFaults++ // transient: first attempt only
				}
				return inner.Search(q, kk, mm)
			}), nil
		},
		Resilience: &resilience.Config{
			Breaker: resilience.BreakerConfig{FailureThreshold: 3, CoolDown: time.Second, HalfOpenProbes: 1},
			Retry:   resilience.RetryConfig{Ratio: 0.1, Burst: 4, BaseBackoff: 100 * time.Microsecond, MaxBackoff: time.Millisecond},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Search(context.Background(), queries.Row(0), k)
	if err != nil {
		t.Fatalf("retried query failed: %v", err)
	}
	assertExact(t, "retried query", res.Neighbors, want[0])
	if got := calls.Load(); got != 2 {
		t.Fatalf("searcher ran %d times, want 2 (attempt + retry)", got)
	}
	// Both attempts' activity is accounted (the retry really did re-scan).
	if got := res.Meter.Total().PIMFaults; got != 1 {
		t.Fatalf("meter faults = %d, want 1 (first attempt's)", got)
	}
	if got := e.BreakerTrips(); got != 0 {
		t.Fatalf("trips = %d after a recovered transient, want 0", got)
	}
	// Dead-crossbar recoveries are permanent failures: no retry is spent.
	calls.Store(10) // any value ≠ 0: the fault-once branch stays off
	before := e.res.retry.Tokens()
	e2, err := New(data, Options{
		Shards: 1,
		Factory: func(m *vec.Matrix, _ int) (knn.Searcher, error) {
			inner := knn.NewStandard(m)
			return knn.SearcherFunc("dead-xbar", func(q []float64, kk int, mm *arch.Meter) []vec.Neighbor {
				mm.C("pim-dot").PIMRecovered++
				return inner.Search(q, kk, mm)
			}), nil
		},
		Resilience: &resilience.Config{
			Retry: resilience.RetryConfig{Ratio: 0.1, Burst: 4},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e2.Search(context.Background(), queries.Row(0), k); err != nil {
		t.Fatal(err)
	}
	if got := e2.res.retry.Tokens(); got != 4 {
		t.Fatalf("permanent failure spent retry tokens: %v of 4 left", got)
	}
	_ = before
}

// TestOverloadGoodputProperty is the deterministic core of the
// ext-overload experiment's acceptance criterion: at 4× the admission
// capacity, every admitted query completes exactly (goodput = capacity,
// ≥80% of peak by construction) and every excess query fails fast with
// the typed rejection — no query hangs, no query returns inexact
// results, no untyped error escapes.
func TestOverloadGoodputProperty(t *testing.T) {
	t.Parallel()
	const (
		k      = 3
		cap    = 2 // MaxConcurrent
		queue  = 1
		burst  = 4 * cap // offered concurrently
		expect = cap + queue
	)
	data, queries := testData(t, 60, 16, 1)
	want := oracle(data, queries, k)
	gate := make(chan struct{})
	e, err := New(data, Options{
		Shards: 1,
		Factory: func(m *vec.Matrix, _ int) (knn.Searcher, error) {
			inner := knn.NewStandard(m)
			return knn.SearcherFunc("gated", func(q []float64, kk int, mm *arch.Meter) []vec.Neighbor {
				<-gate
				return inner.Search(q, kk, mm)
			}), nil
		},
		Resilience: &resilience.Config{MaxConcurrent: cap, MaxQueue: queue},
	})
	if err != nil {
		t.Fatal(err)
	}

	type outcome struct{ err error }
	outs := make(chan outcome, burst)
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := e.Search(context.Background(), queries.Row(0), k)
			if err == nil {
				for j := range want[0] {
					if res.Neighbors[j] != want[0][j] {
						err = errors.New("inexact result under overload")
					}
				}
			}
			outs <- outcome{err}
		}()
	}
	// Let the offered load settle: cap slots held, queue full, the rest
	// rejected (counts are deterministic; only the settling takes time).
	deadline := time.Now().Add(2 * time.Second)
	for e.res.lim.InFlight() < cap || e.res.lim.Queued() < queue {
		if time.Now().After(deadline) {
			t.Fatalf("load never settled: inflight=%d queued=%d", e.res.lim.InFlight(), e.res.lim.Queued())
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()
	close(outs)

	succ, rejected := 0, 0
	for o := range outs {
		switch {
		case o.err == nil:
			succ++
		case errors.Is(o.err, resilience.ErrOverloaded):
			rejected++
		default:
			t.Fatalf("untyped overload error: %v", o.err)
		}
	}
	if succ != expect || rejected != burst-expect {
		t.Fatalf("goodput=%d rejected=%d, want %d/%d", succ, rejected, expect, burst-expect)
	}
}

// TestResilienceRaceHammer runs concurrent searches against an engine
// with every resilience knob on while a storm goroutine flips faults on
// and off (tripping and recovering breakers) and a closer shuts the
// engine down mid-flight. The race detector judges; every error must be
// one of the typed outcomes and every success must be exact.
func TestResilienceRaceHammer(t *testing.T) {
	t.Parallel()
	const k = 4
	data, queries := testData(t, 120, 16, 6)
	want := oracle(data, queries, k)
	shards := 3
	flaky := make([]*flakySearcher, shards)
	cfg := resilience.Default(4)
	cfg.Breaker.CoolDown = 200 * time.Microsecond
	cfg.Breaker.FailureThreshold = 2
	cfg.ShedFactor = 1
	cfg.MinShedSamples = 8
	e, err := New(data, Options{
		Shards:       shards,
		QueryTimeout: time.Second,
		Factory: func(m *vec.Matrix, shardID int) (knn.Searcher, error) {
			flaky[shardID] = &flakySearcher{inner: knn.NewStandard(m)}
			return flaky[shardID], nil
		},
		Resilience: &cfg,
	})
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	// Fault storm: flip shards in and out of fault injection.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			flaky[i%shards].faulty.Store(i%2 == 0)
			time.Sleep(50 * time.Microsecond)
		}
	}()
	// Query hammer.
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				qi := (g + i) % queries.N
				ctx := context.Background()
				if i%4 == 0 { // some callers bring their own deadlines
					var cancel context.CancelFunc
					ctx, cancel = context.WithTimeout(ctx, time.Duration(1+i%40)*time.Millisecond)
					defer cancel()
				}
				res, err := e.Search(ctx, queries.Row(qi), k)
				switch {
				case err == nil:
					for j := range want[qi] {
						if res.Neighbors[j] != want[qi][j] {
							t.Errorf("inexact result during storm (query %d)", qi)
							return
						}
					}
				case errors.Is(err, resilience.ErrOverloaded),
					errors.Is(err, resilience.ErrShedDeadline),
					errors.Is(err, context.DeadlineExceeded),
					errors.Is(err, context.Canceled),
					errors.Is(err, ErrClosed):
				default:
					t.Errorf("untyped error during storm: %v", err)
					return
				}
				_ = e.BreakerStates()
				_ = e.BreakerTrips()
			}
		}(g)
	}
	time.Sleep(50 * time.Millisecond)
	if err := e.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
	close(stop)
	wg.Wait()
}

// TestMutableEngineResilience checks the mutable engine shares the same
// admission / shed / timeout pipeline (no breakers — compaction rebuilds
// heal faulty epochs instead).
func TestMutableEngineResilience(t *testing.T) {
	t.Parallel()
	data, queries := testData(t, 60, 16, 2)
	e, err := NewMutable(data, MutableOptions{
		Options: Options{
			Shards:       2,
			QueryTimeout: time.Minute,
			Resilience:   &resilience.Config{MaxConcurrent: 1, ShedFactor: 1, MinShedSamples: 2},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	for i := 0; i < 3; i++ {
		if _, err := e.Search(context.Background(), queries.Row(0), 3); err != nil {
			t.Fatalf("warm-up %d: %v", i, err)
		}
	}
	// Doomed deadline → typed shed.
	doomed, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	if _, err := e.Search(doomed, queries.Row(1), 3); !errors.Is(err, resilience.ErrShedDeadline) {
		t.Fatalf("mutable doomed query got %v, want ErrShedDeadline", err)
	}
	// Batch workers are clamped to MaxConcurrent, so a batch never
	// rejects its own jobs.
	if e.opts.Workers != 1 {
		t.Fatalf("workers = %d, want clamped to MaxConcurrent=1", e.opts.Workers)
	}
	if _, err := e.SearchBatch(context.Background(), queries, 3); err != nil {
		t.Fatalf("mutable batch under resilience: %v", err)
	}
}
