package serve

import (
	"context"
	"fmt"
	"testing"

	"pimmine/internal/arch"
	"pimmine/internal/core"
	"pimmine/internal/fault"
	"pimmine/internal/pim"
	"pimmine/internal/quant"
)

// faultyFramework builds a framework whose engines suffer the given
// injected faults.
func faultyFramework(t testing.TB, m fault.Model) *core.Framework {
	t.Helper()
	fw, err := core.NewFaulty(arch.Default(), quant.DefaultAlpha, pim.ModeExact, &m)
	if err != nil {
		t.Fatal(err)
	}
	return fw
}

// TestDeadCrossbarsDegradeToHostScan: with certain whole-crossbar failure
// every PIM shard's power-on self test fails, so each shard falls back to
// the host scan — New returns no error, every query succeeds, results are
// exact, and the degradation is reported.
func TestDeadCrossbarsDegradeToHostScan(t *testing.T) {
	t.Parallel()
	const k = 7
	data, queries := testData(t, 150, 32, 4)
	want := oracle(data, queries, k)
	fw := faultyFramework(t, fault.Model{Seed: 3, CrossbarFail: 1})

	for _, variant := range []Variant{VariantStandardPIM, VariantOSTPIM, VariantSMPIM, VariantFNNPIM} {
		e, err := New(data, Options{Shards: 3, Variant: variant, Framework: fw})
		if err != nil {
			t.Fatalf("%s: New must not fail on dead crossbars: %v", variant, err)
		}
		if deg := e.DegradedShards(); len(deg) != 3 {
			t.Fatalf("%s: degraded shards = %v, want all 3", variant, deg)
		}
		for qi := 0; qi < queries.N; qi++ {
			res, err := e.Search(context.Background(), queries.Row(qi), k)
			if err != nil {
				t.Fatalf("%s query %d: %v", variant, qi, err)
			}
			assertExact(t, fmt.Sprintf("%s dead-crossbar query %d", variant, qi), res.Neighbors, want[qi])
		}
	}
}

// TestFaultyShardsStayExactAndMetered: cell-level faults (no dead
// crossbars) keep the PIM searchers — no degradation — and the widened
// bounds keep every answer bit-identical to the host oracle, with fault
// activity surfacing in the per-shard meters.
func TestFaultyShardsStayExactAndMetered(t *testing.T) {
	t.Parallel()
	const k = 7
	data, queries := testData(t, 150, 32, 4)
	want := oracle(data, queries, k)
	fw := faultyFramework(t, fault.Model{
		Seed: 4, StuckAt0: 0.002, StuckAt1: 0.002, Drift: 0.004, DriftLevels: 1, ReadNoise: 3,
	})

	e, err := New(data, Options{Shards: 3, Variant: VariantFNNPIM, Framework: fw})
	if err != nil {
		t.Fatal(err)
	}
	if deg := e.DegradedShards(); deg != nil {
		t.Fatalf("cell faults alone must not degrade shards, got %v", deg)
	}
	for qi := 0; qi < queries.N; qi++ {
		res, err := e.Search(context.Background(), queries.Row(qi), k)
		if err != nil {
			t.Fatal(err)
		}
		assertExact(t, fmt.Sprintf("faulty query %d", qi), res.Neighbors, want[qi])
	}
	if total := e.Meter().Total(); total.PIMFaults == 0 {
		t.Fatal("fault model active but merged shard meters report PIMFaults = 0")
	}
}
