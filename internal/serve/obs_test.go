package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"pimmine/internal/knn"
	"pimmine/internal/obs"
	"pimmine/internal/vec"
)

// TestObservedEngineTraceTree runs an observed engine with every query
// sampled and asserts the acceptance-criterion span tree: engine.search →
// shard → knn searcher → pim-dot / bound-eval → refine.
func TestObservedEngineTraceTree(t *testing.T) {
	t.Parallel()
	const k = 5
	data, queries := testData(t, 200, 32, 4)
	fw := testFramework(t)
	want := oracle(data, queries, k)

	o := obs.New(obs.Config{SampleRate: 1})
	e, err := New(data, Options{
		Shards: 3, Variant: VariantFNNPIM, Framework: fw, CapacityN: data.N, Obs: o,
	})
	if err != nil {
		t.Fatal(err)
	}
	for qi := 0; qi < queries.N; qi++ {
		res, err := e.Search(context.Background(), queries.Row(qi), k)
		if err != nil {
			t.Fatal(err)
		}
		assertExact(t, fmt.Sprintf("observed query %d", qi), res.Neighbors, want[qi])
	}

	traces := o.Tracer().Recent(0)
	if len(traces) != queries.N {
		t.Fatalf("sampled %d traces, want %d", len(traces), queries.N)
	}
	tree := traces[0].Render()
	for _, want := range []string{
		"engine.search",
		"shard 0", "shard 1", "shard 2",
		"knn.FNN-PIM",
		"pim-dot",
		"bound-eval",
		"refine",
	} {
		if !strings.Contains(tree, want) {
			t.Errorf("trace missing span %q:\n%s", want, tree)
		}
	}
	// Structural check: refine is nested under bound-eval, which is under
	// the searcher span, which is under a shard span.
	var shardDepth, searcherDepth, refineDepth int
	for _, line := range strings.Split(tree, "\n") {
		depth := strings.Count(line, "─ ") + strings.Count(line, "│")
		_ = depth
		switch {
		case strings.Contains(line, "shard 0"):
			shardDepth = indentOf(line)
		case strings.Contains(line, "knn.FNN-PIM") && searcherDepth == 0:
			searcherDepth = indentOf(line)
		case strings.Contains(line, "refine") && refineDepth == 0:
			refineDepth = indentOf(line)
		}
	}
	if !(shardDepth < searcherDepth && searcherDepth < refineDepth) {
		t.Errorf("span nesting wrong: shard@%d searcher@%d refine@%d\n%s",
			shardDepth, searcherDepth, refineDepth, tree)
	}
}

// indentOf measures a rendered trace line's tree depth in prefix bytes.
func indentOf(line string) int {
	for i, r := range line {
		switch r {
		case ' ', '│', '├', '└', '─':
		default:
			return i
		}
	}
	return len(line)
}

// TestObservedEngineMetricsEndpoint scrapes /metrics after a batch and
// asserts the acceptance-criterion series are present in valid Prometheus
// text format.
func TestObservedEngineMetricsEndpoint(t *testing.T) {
	t.Parallel()
	const k = 5
	data, queries := testData(t, 200, 32, 8)
	fw := testFramework(t)

	o := obs.New(obs.Config{SampleRate: 2})
	e, err := New(data, Options{
		Shards: 2, Variant: VariantFNNPIM, Framework: fw, CapacityN: data.N, Obs: o,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.SearchBatch(context.Background(), queries, k); err != nil {
		t.Fatal(err)
	}

	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rec := httptest.NewRecorder()
	o.Handler().ServeHTTP(rec, req)
	body, err := io.ReadAll(rec.Result().Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)
	for _, want := range []string{
		fmt.Sprintf("pim_serve_queries_total %d", queries.N),
		fmt.Sprintf(`pim_serve_shard_queries_total{shard="0"} %d`, queries.N),
		fmt.Sprintf(`pim_serve_shard_queries_total{shard="1"} %d`, queries.N),
		"# TYPE pim_serve_query_latency_seconds histogram",
		"pim_serve_query_latency_seconds_bucket",
		fmt.Sprintf("pim_serve_query_latency_seconds_count %d", queries.N),
		"pim_faults_total 0",
		"pim_recovered_total 0",
		"pim_serve_shards 2",
		"pim_serve_inflight_queries 0",
		`pim_meter_calls_total{func=`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("full /metrics body:\n%s", out)
	}
}

// TestMeterRaceWithBatch is the satellite regression test: Engine.Meter()
// merges per-shard cumulative meters and must lock each shard while a
// concurrent SearchBatch mutates them. Run under -race this test is the
// judge; it also checks the merged totals are monotone.
func TestMeterRaceWithBatch(t *testing.T) {
	t.Parallel()
	const k = 5
	data, queries := testData(t, 180, 32, 12)
	fw := testFramework(t)
	e, err := New(data, Options{Shards: 3, Variant: VariantFNNPIM, Framework: fw, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // reader: hammer Meter() until the batches finish
		defer wg.Done()
		var lastOps int64
		for {
			select {
			case <-stop:
				return
			default:
			}
			tot := e.Meter().Total()
			if tot.Ops < lastOps {
				t.Error("merged meter went backwards")
				return
			}
			lastOps = tot.Ops
		}
	}()
	for b := 0; b < 4; b++ {
		if _, err := e.SearchBatch(context.Background(), queries, k); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

// TestBatchQueryTimeout asserts a per-query deadline surfaces as
// context.DeadlineExceeded through SearchBatch, not just Search.
func TestBatchQueryTimeout(t *testing.T) {
	t.Parallel()
	data, queries := testData(t, 100, 16, 4)
	slow, err := New(data, Options{
		Shards:       2,
		Workers:      2,
		QueryTimeout: 5 * time.Millisecond,
		Factory: func(m *vec.Matrix, _ int) (knn.Searcher, error) {
			return &slowSearcher{inner: knn.NewStandard(m), delay: 200 * time.Millisecond}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = slow.SearchBatch(context.Background(), queries, 3)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("batch with slow shards: err = %v, want DeadlineExceeded", err)
	}
}

// TestObservedDeadlineErrorCounted checks failed queries increment the
// error counter and the in-flight gauge drains back to zero.
func TestObservedDeadlineErrorCounted(t *testing.T) {
	t.Parallel()
	data, queries := testData(t, 100, 16, 1)
	o := obs.New(obs.Config{SampleRate: 1})
	slow, err := New(data, Options{
		Shards:       2,
		QueryTimeout: 5 * time.Millisecond,
		Obs:          o,
		Factory: func(m *vec.Matrix, _ int) (knn.Searcher, error) {
			return &slowSearcher{inner: knn.NewStandard(m), delay: 100 * time.Millisecond}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := slow.Search(context.Background(), queries.Row(0), 3); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v", err)
	}
	var b strings.Builder
	if err := o.Registry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"pim_serve_query_errors_total 1",
		"pim_serve_inflight_queries 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q:\n%s", want, out)
		}
	}
}

// benchEngine builds an engine over a fixed workload for the overhead
// benchmarks.
func benchEngine(b *testing.B, o *obs.Observer) (*Engine, *vec.Matrix) {
	b.Helper()
	data, queries := testData(b, 400, 64, 16)
	fw := testFramework(b)
	e, err := New(data, Options{
		Shards: 4, Variant: VariantFNNPIM, Framework: fw, CapacityN: data.N, Workers: 4, Obs: o,
	})
	if err != nil {
		b.Fatal(err)
	}
	return e, queries
}

// BenchmarkServeBatch and BenchmarkServeBatchObserved measure the
// acceptance criterion that registry overhead stays within a few percent:
//
//	go test ./internal/serve -run=NONE -bench='ServeBatch' -benchtime=2s
func BenchmarkServeBatch(b *testing.B) {
	e, queries := benchEngine(b, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.SearchBatch(context.Background(), queries, 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkServeBatchObserved(b *testing.B) {
	// SampleRate 64 models production tracing; metrics hit on every query.
	e, queries := benchEngine(b, obs.New(obs.Config{SampleRate: 64}))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.SearchBatch(context.Background(), queries, 10); err != nil {
			b.Fatal(err)
		}
	}
}
