package serve

import (
	"fmt"

	"pimmine/internal/arch"
	"pimmine/internal/obs"
)

// engineObs holds the engine's registered metric handles. A nil
// *engineObs (observability off) keeps the hot path at one pointer check.
type engineObs struct {
	o            *obs.Observer
	queries      *obs.Counter
	errors       *obs.Counter
	latency      *obs.Histogram
	inflight     *obs.Gauge
	queueDepth   *obs.Gauge
	shardQueries []*obs.Counter

	// Resilience pipeline metrics (registered regardless of whether
	// Options.Resilience is set; they just stay zero without it).
	rejected    *obs.Counter
	shed        *obs.Counter
	retries     *obs.Counter
	breakerHost *obs.Counter

	// Routing tier metrics (stay zero without Options.Router).
	routeQueries        *obs.Counter
	routeVisited        *obs.Counter
	routeSkipped        *obs.Counter
	routeAudits         *obs.Counter
	routeLatency        *obs.Histogram
	routeEstRecall      *obs.Histogram
	routeMeasuredRecall *obs.Histogram
}

// recallBuckets resolve estimated/measured recall distributions around
// the targets users actually set.
var recallBuckets = []float64{0.5, 0.8, 0.9, 0.95, 0.99, 1}

// The note* helpers are nil-safe so the resilience pipeline can report
// outcomes without caring whether observability is wired in.

func (eo *engineObs) noteRejected(err error) {
	if eo == nil {
		return
	}
	eo.rejected.Inc()
	eo.o.Event("serve.rejected", obs.A("reason", err.Error()))
}

func (eo *engineObs) noteShed() {
	if eo == nil {
		return
	}
	eo.shed.Inc()
}

func (eo *engineObs) noteRetries(n int) {
	if eo == nil {
		return
	}
	eo.retries.Add(int64(n))
}

func (eo *engineObs) noteBreakerHostServe() {
	if eo == nil {
		return
	}
	eo.breakerHost.Inc()
}

// newEngineObs registers the engine's metrics and scrape-time collectors
// with the observer's registry.
func newEngineObs(e *Engine, o *obs.Observer) *engineObs {
	reg := o.Registry()
	eo := &engineObs{
		o:       o,
		queries: reg.Counter("pim_serve_queries_total", "Queries answered by the sharded engine."),
		errors:  reg.Counter("pim_serve_query_errors_total", "Queries that returned an error (cancellation, deadline, validation)."),
		latency: reg.Histogram("pim_serve_query_latency_seconds",
			"Wall-clock latency of Engine.Search.", o.LatencyBuckets()),
		inflight:   reg.Gauge("pim_serve_inflight_queries", "Queries currently executing."),
		queueDepth: reg.Gauge("pim_serve_batch_queue_depth", "Batch jobs accepted but not yet started."),
		rejected: reg.Counter("pim_serve_rejected_total",
			"Queries refused by admission control (resilience.ErrOverloaded)."),
		shed: reg.Counter("pim_serve_shed_total",
			"Queries shed because the remaining deadline was below the observed p95 (resilience.ErrShedDeadline)."),
		retries: reg.Counter("pim_serve_pim_retries_total",
			"Transient-fault PIM retries spent from the engine retry budget."),
		breakerHost: reg.Counter("pim_serve_breaker_host_serves_total",
			"Shard queries served by the exact host scan because the shard's circuit breaker was open."),
		routeQueries: reg.Counter("pim_route_queries_total",
			"Queries that passed through the shard-routing tier."),
		routeVisited: reg.Counter("pim_route_shards_visited_total",
			"Shards dispatched by routed queries."),
		routeSkipped: reg.Counter("pim_route_shards_skipped_total",
			"Shards routed away (no work at all, not even a host scan)."),
		routeAudits: reg.Counter("pim_route_audits_total",
			"Approximate queries audited against the full fan-out."),
		routeLatency: reg.Histogram("pim_route_decision_seconds",
			"Wall-clock time spent deciding the visit set.", o.LatencyBuckets()),
		routeEstRecall: reg.Histogram("pim_route_est_recall",
			"Router-estimated recall of approximate answers.", recallBuckets),
		routeMeasuredRecall: reg.Histogram("pim_route_measured_recall",
			"Audited (measured) recall of approximate answers.", recallBuckets),
	}
	eo.shardQueries = make([]*obs.Counter, len(e.shards))
	for i := range e.shards {
		eo.shardQueries[i] = reg.Counter("pim_serve_shard_queries_total",
			"Per-shard query fan-out count.", obs.Label{Key: "shard", Value: fmt.Sprint(i)})
	}
	reg.RegisterCollector(e.collectMetrics)
	if n := len(e.degraded); n > 0 {
		o.Event("serve.degraded-shards", obs.A("shards", fmt.Sprint(e.degraded)))
	}
	return eo
}

// collectMetrics snapshots scrape-time state: shard topology, the merged
// cumulative arch.Meter (per-function call counts plus aggregate hardware
// activity), and the fault layer's corrected/recovered dot counters.
func (e *Engine) collectMetrics(emit func(obs.Sample)) {
	emit(obs.Sample{Name: "pim_serve_shards", Help: "Shard count in effect.",
		Type: obs.TypeGauge, Value: float64(len(e.shards))})
	emit(obs.Sample{Name: "pim_serve_degraded_shards", Help: "Shards serving the host-scan fallback.",
		Type: obs.TypeGauge, Value: float64(len(e.degraded))})
	for _, sh := range e.shards {
		emit(obs.Sample{Name: "pim_serve_shard_rows", Help: "Rows owned by each shard.",
			Type: obs.TypeGauge, Labels: []obs.Label{{Key: "shard", Value: fmt.Sprint(sh.id)}},
			Value: float64(sh.data.N)})
	}

	m := e.Meter() // merged under per-shard locks
	t := m.Total()
	agg := []obs.Sample{
		{Name: "pim_meter_ops_total", Help: "Modeled simple operations (cumulative, all shards)."},
		{Name: "pim_meter_alu_ops_total", Help: "Modeled long-latency ALU operations."},
		{Name: "pim_meter_branches_total", Help: "Modeled data-dependent branches."},
		{Name: "pim_meter_seq_bytes_total", Help: "Modeled bytes streamed sequentially."},
		{Name: "pim_meter_rand_bytes_total", Help: "Modeled bytes fetched randomly."},
		{Name: "pim_meter_pim_cycles_total", Help: "Modeled crossbar compute cycles on the critical path."},
		{Name: "pim_meter_pim_buf_bytes_total", Help: "Modeled PIM buffer-bus traffic bytes."},
		{Name: "pim_faults_total", Help: "PIM dot products corrected through faulty hardware (internal/fault)."},
		{Name: "pim_recovered_total", Help: "PIM dot products lost to dead crossbars and recovered on the host."},
	}
	vals := []int64{t.Ops, t.ALUOps, t.Branches, t.SeqBytes, t.RandBytes,
		t.PIMCycles, t.PIMBufBytes, t.PIMFaults, t.PIMRecovered}
	for i, s := range agg {
		s.Type = obs.TypeCounter
		s.Value = float64(vals[i])
		emit(s)
	}
	for _, fn := range m.Functions() {
		emit(obs.Sample{Name: "pim_meter_calls_total", Help: "Modeled invocations per §IV-B function.",
			Type: obs.TypeCounter, Labels: []obs.Label{{Key: "func", Value: fn}},
			Value: float64(m.Get(fn).Calls)})
	}

	if r := e.opts.Router; r != nil {
		emit(obs.Sample{Name: "pim_route_selectivity",
			Help: "Observed lifetime fraction of shards skipped by the routing tier.",
			Type: obs.TypeGauge, Value: r.Selectivity()})
	}

	if e.res == nil {
		return
	}
	// Resilience state: breaker positions per shard, cumulative trips,
	// limiter occupancy, retry tokens, and the shedder's p95 threshold
	// (in µs — collector values truncate to integers at scrape time).
	for i, st := range e.BreakerStates() {
		emit(obs.Sample{Name: "pim_serve_breaker_state",
			Help: "Per-shard circuit breaker state (0 closed, 1 open, 2 half-open).",
			Type: obs.TypeGauge, Labels: []obs.Label{{Key: "shard", Value: fmt.Sprint(i)}},
			Value: float64(st)})
	}
	emit(obs.Sample{Name: "pim_serve_breaker_trips_total",
		Help: "Circuit breaker trips across all shards.",
		Type: obs.TypeCounter, Value: float64(e.BreakerTrips())})
	if lim := e.res.lim; lim != nil {
		emit(obs.Sample{Name: "pim_serve_admitted_inflight",
			Help: "Queries holding an admission slot.",
			Type: obs.TypeGauge, Value: float64(lim.InFlight())})
		emit(obs.Sample{Name: "pim_serve_admission_queued",
			Help: "Queries waiting in the bounded admission queue.",
			Type: obs.TypeGauge, Value: float64(lim.Queued())})
	}
	if rb := e.res.retry; rb != nil {
		emit(obs.Sample{Name: "pim_serve_retry_tokens",
			Help: "Retry-budget tokens currently available (floor).",
			Type: obs.TypeGauge, Value: rb.Tokens()})
	}
	if p95, n := e.res.shed.P95(); n > 0 {
		emit(obs.Sample{Name: "pim_serve_shed_p95_micros",
			Help: "Observed p95 service time the shedder compares deadlines against.",
			Type: obs.TypeGauge, Value: float64(p95.Microseconds())})
	}
}

// annotateFaults attaches fault-recovery events from a query's private
// shard meter to the shard span (nil-safe; nothing is attached on
// fault-free queries).
func annotateFaults(sp *obs.Span, m *arch.Meter) {
	if sp == nil {
		return
	}
	t := m.Total()
	if t.PIMFaults > 0 || t.PIMRecovered > 0 {
		sp.Annotate("fault-recovery",
			obs.A("corrected_dots", t.PIMFaults),
			obs.A("recovered_dots", t.PIMRecovered))
	}
}
