package serve

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"

	"pimmine/internal/vec"
)

func closeTestData(n, d int) *vec.Matrix {
	rng := rand.New(rand.NewSource(7))
	m := vec.NewMatrix(n, d)
	for i := range m.Data {
		m.Data[i] = rng.Float64()
	}
	return m
}

// Regression: Close must be idempotent and must fail queries issued
// after it with ErrClosed rather than racing torn-down state.
func TestEngineCloseIdempotent(t *testing.T) {
	t.Parallel()
	data := closeTestData(64, 8)
	e, err := New(data, Options{Shards: 4, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	q := data.Row(0)
	if _, err := e.Search(context.Background(), q, 3); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := e.Search(context.Background(), q, 3); !errors.Is(err, ErrClosed) {
		t.Fatalf("search after close err = %v, want ErrClosed", err)
	}
	if _, err := e.SearchBatch(context.Background(), data.Slice(0, 2), 3); !errors.Is(err, ErrClosed) {
		t.Fatalf("batch after close err = %v, want ErrClosed", err)
	}
}

// Concurrent double Close while queries are in flight: every query
// either completes or reports ErrClosed; nothing panics.
func TestEngineCloseConcurrent(t *testing.T) {
	t.Parallel()
	data := closeTestData(64, 8)
	e, err := New(data, Options{Shards: 4, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				_, err := e.Search(context.Background(), data.Row((w*50+i)%data.N), 3)
				if err != nil && !errors.Is(err, ErrClosed) {
					t.Errorf("search err = %v", err)
					return
				}
			}
		}(w)
	}
	for c := 0; c < 2; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := e.Close(); err != nil {
				t.Errorf("close err = %v", err)
			}
		}()
	}
	wg.Wait()
}

func TestMutableEngineCloseIdempotent(t *testing.T) {
	t.Parallel()
	data := closeTestData(64, 8)
	e, err := NewMutable(data, MutableOptions{Options: Options{Shards: 4, Workers: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := e.Search(context.Background(), data.Row(0), 3); !errors.Is(err, ErrClosed) {
		t.Fatalf("search after close err = %v, want ErrClosed", err)
	}
	if _, err := e.Insert(data.Row(0)); !errors.Is(err, ErrClosed) {
		t.Fatalf("insert after close err = %v, want ErrClosed", err)
	}
	if err := e.Delete(0); !errors.Is(err, ErrClosed) {
		t.Fatalf("delete after close err = %v, want ErrClosed", err)
	}
	if err := e.Compact(nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("compact after close err = %v, want ErrClosed", err)
	}
}
