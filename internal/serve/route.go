// Shard routing: the serve-side wiring of internal/route. With
// Options.Router set, every query passes the routing stage between
// shedding and the fan-out:
//
//	acquire → admission → deadline → shed → ROUTE → fan out (visit set)
//
// Exact mode is a two-wave dispatch: the shard with the smallest summary
// lower bound is searched first to seed τ (its k-th candidate distance),
// then every remaining shard whose lower bound is ≤ τ is searched in
// parallel and the rest are skipped. Admissibility makes the skip safe:
// a skipped shard's true minimum distance is ≥ its lower bound > τ ≥ the
// final k-th distance, so none of its rows belongs in the top-k — not
// even on ties, since the exclusion is strict. Routed results are
// therefore bit-identical to the unrouted engine (differential-tested
// across all six mining tasks in route_diff_test.go).
//
// Approximate mode asks the router for the smallest shard prefix whose
// estimated similarity mass reaches the recall target and dispatches
// only that — no second wave, no exactness guarantee, a typed
// Result.Routed annotation instead. When Config.AuditEvery is set, every
// n-th approximate query also searches the skipped shards and reports
// the measured recall next to the estimate (the audit work is
// measurement overhead and deliberately excluded from the result's
// meters).
//
// A skipped shard does no work at all for that query: its goroutine is
// never started, so neither its searcher, its breaker, nor the breaker's
// host-scan fallback runs (asserted by TestRoutedSkipNeverHostScans).
package serve

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"pimmine/internal/obs"
	"pimmine/internal/route"
)

// ErrNoRouter reports an explicit routing mode on an engine built
// without Options.Router.
var ErrNoRouter = fmt.Errorf("serve: explicit routing mode on an engine without a router")

// RouteInfo annotates a routed query's Result.
type RouteInfo struct {
	// Mode is the routing mode that served the query.
	Mode route.Mode
	// Visited and Skipped count shards dispatched and routed away.
	Visited, Skipped int
	// SkippedShards lists the routed-away shard ids (ascending).
	SkippedShards []int
	// EstRecall is the router's estimate of the answer's recall (always
	// 1 in exact mode).
	EstRecall float64
	// Audited marks an approximate query that also searched the skipped
	// shards to measure its true recall; MeasuredRecall is the audited
	// |routed top-k ∩ full top-k| / k (0 when not audited).
	Audited        bool
	MeasuredRecall float64
}

// checkRouter validates a router against the engine shape it is being
// attached to (satellite of the routing tier: disagreement is a typed
// construction-time error, never a query-time failure).
func checkRouter(r *route.Router, shards, dims int) error {
	if r == nil {
		return nil
	}
	if r.NumShards() != shards {
		return fmt.Errorf("serve: %w: router has %d, engine has %d",
			route.ErrShardMismatch, r.NumShards(), shards)
	}
	if r.Dims() != dims {
		return fmt.Errorf("serve: router built over %d dims, dataset has %d", r.Dims(), dims)
	}
	return nil
}

// dispatch runs the routing stage and fans the query out to the visit
// set. Unrouted engines fan out to everything with a nil RouteInfo.
func (e *Engine) dispatch(ctx context.Context, root *obs.Span, q []float64, k int, mode route.Mode) ([]shardOut, *RouteInfo, error) {
	fan := func(ids []int) ([]shardOut, error) { return e.fanOut(ctx, root, q, k, ids) }
	return routeDispatch(e.opts.Router, len(e.shards), q, k, mode, fan,
		func(info *RouteInfo, d time.Duration) { e.noteRouted(root, info, d) })
}

// routeDispatch is the engine-agnostic routing stage: it decides the
// visit set and drives the fan-out closure, which hides whether shards
// are static searchers (Engine) or mutable delta stores (MutableEngine).
// fan(nil) means "all shards".
func routeDispatch(r *route.Router, nShards int, q []float64, k int, mode route.Mode,
	fan func(ids []int) ([]shardOut, error), note func(*RouteInfo, time.Duration)) ([]shardOut, *RouteInfo, error) {
	if r == nil {
		if mode != route.ModeAuto {
			return nil, nil, ErrNoRouter
		}
		outs, err := fan(nil)
		return outs, nil, err
	}
	if mode == route.ModeAuto {
		mode = r.DefaultMode()
	}
	start := time.Now()
	switch mode {
	case route.ModeExact:
		order, lbs := r.ExactOrder(q)
		routeDur := time.Since(start)
		// Wave 1: the best-lower-bound shard seeds the pruning threshold.
		first, err := fan(order[:1])
		if err != nil {
			return nil, nil, err
		}
		tau := firstKth(first, k)
		visit := make([]int, 0, len(order)-1)
		var skipped []int
		for _, id := range order[1:] {
			if lbs[id] <= tau {
				visit = append(visit, id)
			} else {
				skipped = append(skipped, id)
			}
		}
		rest, err := fan(visit)
		if err != nil {
			return nil, nil, err
		}
		outs := append(first, rest...)
		sort.Ints(skipped)
		info := &RouteInfo{Mode: route.ModeExact, Visited: 1 + len(visit),
			Skipped: len(skipped), SkippedShards: skipped, EstRecall: 1}
		note(info, routeDur)
		return outs, info, nil

	case route.ModeApprox:
		visit, est := r.ApproxPlan(q, 0)
		routeDur := time.Since(start)
		skipped := complement(visit, nShards)
		info := &RouteInfo{Mode: route.ModeApprox, Visited: len(visit),
			Skipped: len(skipped), SkippedShards: skipped, EstRecall: est}
		outs, err := fan(visit)
		if err != nil {
			return nil, nil, err
		}
		if len(skipped) > 0 && r.Audit() {
			// Audit: search the skipped shards too and measure the routed
			// answer's recall against the full fan-out. The audit outs are
			// dropped — the served answer stays the routed one, and its
			// meters model the routed work.
			auditOuts, aerr := fan(skipped)
			if aerr == nil {
				info.Audited = true
				info.MeasuredRecall = measureRecall(outs, auditOuts, k)
			}
		}
		note(info, routeDur)
		return outs, info, nil

	default:
		return nil, nil, fmt.Errorf("serve: unknown routing mode %q", mode)
	}
}

// firstKth extracts the pruning threshold τ from the wave-1 answer: the
// k-th candidate distance, or +Inf when the shard holds fewer than k
// rows (then nothing can be proven out and every shard is visited).
func firstKth(first []shardOut, k int) float64 {
	if len(first) == 1 && len(first[0].nn) >= k {
		return first[0].nn[k-1].Dist
	}
	return math.Inf(1)
}

// complement returns 0..n-1 minus the sorted-or-not visit set, ascending.
func complement(visit []int, n int) []int {
	in := make([]bool, n)
	for _, id := range visit {
		in[id] = true
	}
	var out []int
	for id := 0; id < n; id++ {
		if !in[id] {
			out = append(out, id)
		}
	}
	return out
}

// measureRecall computes |routed top-k ∩ full top-k| / |full top-k|,
// where the full top-k merges the routed and audited shard answers.
func measureRecall(routed, audit []shardOut, k int) float64 {
	var routedNN, allNN []vec2
	for _, o := range routed {
		for _, nn := range o.nn {
			routedNN = append(routedNN, vec2{nn.Dist, nn.Index})
			allNN = append(allNN, vec2{nn.Dist, nn.Index})
		}
	}
	for _, o := range audit {
		for _, nn := range o.nn {
			allNN = append(allNN, vec2{nn.Dist, nn.Index})
		}
	}
	sortVec2(routedNN)
	sortVec2(allNN)
	if len(routedNN) > k {
		routedNN = routedNN[:k]
	}
	if len(allNN) > k {
		allNN = allNN[:k]
	}
	if len(allNN) == 0 {
		return 1
	}
	have := make(map[int]bool, len(routedNN))
	for _, nn := range routedNN {
		have[nn.idx] = true
	}
	hit := 0
	for _, nn := range allNN {
		if have[nn.idx] {
			hit++
		}
	}
	return float64(hit) / float64(len(allNN))
}

type vec2 struct {
	dist float64
	idx  int
}

func sortVec2(s []vec2) {
	sort.Slice(s, func(i, j int) bool {
		if s[i].dist != s[j].dist {
			return s[i].dist < s[j].dist
		}
		return s[i].idx < s[j].idx
	})
}

// noteRouted records one routed query on the router's cumulative stats,
// the span tree, and the pim_route_* metrics (nil-safe throughout).
func (e *Engine) noteRouted(root *obs.Span, info *RouteInfo, routeDur time.Duration) {
	e.opts.Router.NoteOutcome(info.Visited, info.Skipped)
	root.Annotate("routed",
		obs.A("mode", string(info.Mode)),
		obs.A("visited", info.Visited),
		obs.A("skipped", info.Skipped),
		obs.A("est_recall", info.EstRecall))
	if e.eobs == nil {
		return
	}
	e.eobs.routeQueries.Inc()
	e.eobs.routeVisited.Add(int64(info.Visited))
	e.eobs.routeSkipped.Add(int64(info.Skipped))
	e.eobs.routeLatency.Observe(routeDur.Seconds())
	if info.Mode == route.ModeApprox {
		e.eobs.routeEstRecall.Observe(info.EstRecall)
		if info.Audited {
			e.eobs.routeAudits.Inc()
			e.eobs.routeMeasuredRecall.Observe(info.MeasuredRecall)
		}
	}
}
