// Overload protection: the serve-side wiring of internal/resilience.
// The admission pipeline in front of every query is
//
//	acquire → admission control → engine deadline → shed → fan out
//
// and inside the fan-out each shard's PIM path sits behind a circuit
// breaker with a transient-fault retry budget. Admission is the only
// lossy stage — a rejected or shed query is a typed error
// (resilience.ErrOverloaded / resilience.ErrShedDeadline) — while a
// breaker refusal merely reroutes the shard to its exact host scan, so
// every admitted query still returns exact results.
package serve

import (
	"context"

	"pimmine/internal/arch"
	"pimmine/internal/knn"
	"pimmine/internal/resilience"
	"pimmine/internal/vec"
)

// ErrQueryTimeout marks a query that exceeded the engine-applied
// Options.QueryTimeout, as opposed to the caller's own deadline or
// cancellation. It unwraps to context.DeadlineExceeded, so existing
// errors.Is(err, context.DeadlineExceeded) checks keep holding.
var ErrQueryTimeout error = queryTimeoutError{}

type queryTimeoutError struct{}

func (queryTimeoutError) Error() string { return "serve: engine query timeout exceeded" }
func (queryTimeoutError) Unwrap() error { return context.DeadlineExceeded }
func (queryTimeoutError) Timeout() bool { return true }

// engineResilience holds one engine's overload-protection state. A nil
// *engineResilience (resilience off) keeps the hot path at one pointer
// check per stage; each inner handle is itself nil when its knob is
// disabled.
type engineResilience struct {
	lim   *resilience.Limiter
	shed  *resilience.Shedder
	retry *resilience.RetryBudget
}

// newEngineResilience validates the config and builds the engine-wide
// handles (per-shard breakers are attached by the caller, which owns the
// shards).
func newEngineResilience(cfg *resilience.Config) (*engineResilience, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	r := &engineResilience{
		shed:  resilience.NewShedder(cfg.ShedFactor, cfg.MinShedSamples, cfg.ShedBuckets),
		retry: resilience.NewRetryBudget(cfg.Retry),
	}
	if cfg.MaxConcurrent > 0 {
		r.lim = resilience.NewLimiter(cfg.MaxConcurrent, cfg.MaxQueue)
	}
	return r, nil
}

// admit runs admission control; the returned release is non-nil exactly
// when a slot must be given back.
func (r *engineResilience) admit(ctx context.Context) (release func(), err error) {
	if r == nil || r.lim == nil {
		return nil, nil
	}
	return r.lim.Acquire(ctx)
}

// checkShed sheds a doomed query (nil-safe).
func (r *engineResilience) checkShed(ctx context.Context) error {
	if r == nil {
		return nil
	}
	return r.shed.Check(ctx)
}

// classifyFaults reads a shard attempt's fault/recovery meters
// (internal/fault): the attempt failed if its PIM path hit injected
// faults at all, and the failure is transient — worth a retry — only
// when no dots were lost to dead crossbars (dead hardware does not come
// back; corrected-cell and read-noise envelopes can).
func classifyFaults(m *arch.Meter) (fail, transient bool) {
	t := m.Total()
	fail = t.PIMFaults > 0 || t.PIMRecovered > 0
	transient = t.PIMRecovered == 0
	return fail, transient
}

// shardAnswer is one shard's contribution to a query, with the
// resilience annotations the fan-out layer reports on spans and metrics.
type shardAnswer struct {
	nn    []vec.Neighbor
	meter *arch.Meter
	// breakerOpen reports that the shard's breaker refused the PIM path
	// and the exact host scan served instead.
	breakerOpen bool
	// retries counts transient-fault retries spent on this shard.
	retries int
}

// search runs one query on the shard through its breaker and retry
// budget. The flow generalizes the one-shot DeadDot fallback of
// internal/fault into a stateful loop: an open breaker serves the exact
// host scan; a closed (or probing) breaker runs the PIM path, retries
// once on a transient fault if the engine-wide budget allows, and
// reports the final outcome back to the breaker.
func (sh *shard) search(ctx context.Context, q []float64, k int) shardAnswer {
	var done func(ok bool)
	if sh.breaker != nil {
		var err error
		done, err = sh.breaker.Allow()
		if err != nil { // resilience.ErrCircuitOpen: reroute, never fail
			nn, m := sh.searchOnce(ctx, q, k, true)
			return shardAnswer{nn: nn, meter: m, breakerOpen: true}
		}
	}
	nn, m := sh.searchOnce(ctx, q, k, false)
	fail, transient := classifyFaults(m)
	retries := 0
	if fail && transient && sh.retry.Allow() {
		if resilience.Sleep(ctx, sh.retry.Backoff(0)) == nil {
			retries = 1
			nn2, m2 := sh.searchOnce(ctx, q, k, false)
			fail, _ = classifyFaults(m2)
			m.Merge(m2) // the query really did both attempts' work
			nn = nn2
		}
	}
	if done != nil {
		done(!fail)
	}
	if !fail {
		sh.retry.OnSuccess()
	}
	return shardAnswer{nn: nn, meter: m, retries: retries}
}

// searchOnce is one attempt on one path: the shard's configured searcher
// or, when host is set, its exact host-scan fallback. Neighbors come
// back translated to global indices.
func (sh *shard) searchOnce(ctx context.Context, q []float64, k int, host bool) ([]vec.Neighbor, *arch.Meter) {
	m := arch.NewMeter()
	sh.mu.Lock()
	s := sh.searcher
	if host {
		s = sh.host
	}
	nn := knn.SearchTraced(ctx, s, q, k, m)
	sh.meter.Merge(m)
	sh.mu.Unlock()
	for i := range nn {
		nn[i].Index += sh.offset
	}
	return nn, m
}

// BreakerStates returns every shard's breaker state (StateClosed where
// breakers are off or the shard is build-time degraded).
func (e *Engine) BreakerStates() []resilience.State {
	states := make([]resilience.State, len(e.shards))
	for i, sh := range e.shards {
		states[i] = sh.breaker.State()
	}
	return states
}

// BreakerTrips returns the cumulative trip count across all shards.
func (e *Engine) BreakerTrips() int64 {
	var n int64
	for _, sh := range e.shards {
		n += sh.breaker.Trips()
	}
	return n
}
