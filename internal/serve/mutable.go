// Mutable serving: the sharded engine layered over internal/delta's
// mutable stores. Each shard owns a delta.Store (host-side delta buffer,
// tombstones, endurance-ledgered compaction) over its slice of the
// dataset; the engine owns the global id space, routing initial ids by
// contiguous range and inserted ids round-robin. Because ids are
// allocated monotonically and every store keeps its rows in ascending
// global-id order, per-shard results are canonical under (dist, id) and
// the shard merge stays exact — byte-identical to a fresh engine built
// over the merged live dataset.
package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"pimmine/internal/arch"
	"pimmine/internal/delta"
	"pimmine/internal/knn"
	"pimmine/internal/obs"
	"pimmine/internal/pim"
	"pimmine/internal/pool"
	"pimmine/internal/quant"
	"pimmine/internal/route"
	"pimmine/internal/standing"
	"pimmine/internal/vec"
	"pimmine/internal/wal"
)

// MutableOptions configures NewMutable.
type MutableOptions struct {
	// Options carries the shard count, variant, framework, capacity,
	// worker pool and observability wiring, with the same defaults as
	// the immutable engine. Options.Factory is ignored — mutable shards
	// must be rebuildable, so searchers come from the variant builder.
	Options

	// MaxDelta and MaxTombstoneRatio are per-shard compaction triggers
	// (see delta.Options; defaults 256 rows and 0.25).
	MaxDelta          int
	MaxTombstoneRatio float64
	// AutoCompact lets each store compact in the background when a
	// trigger trips; otherwise call Compact explicitly.
	AutoCompact bool
	// WriteBudget, when positive, meters compaction endurance: each
	// shard gets a wear-leveling ledger whose tiles allow this many
	// programming cycles. PIM variants price images in Theorem 4
	// crossbars; host variants charge one tile per image against a
	// two-tile (double-buffered) ledger. Zero disables metering.
	WriteBudget uint32

	// Durability, when Dir is set, makes the engine crash-safe: every
	// accepted mutation is appended to a write-ahead log before it is
	// applied, Checkpoint writes atomic snapshots that truncate the
	// log, and RecoverMutable rebuilds a byte-identical engine from the
	// latest snapshot plus the log tail (see internal/wal).
	Durability Durability
	// StandingBuffer is the per-subscription event channel capacity for
	// standing queries (default 16; see internal/standing).
	StandingBuffer int
}

// MutableEngine is the sharded mutable query engine: Search/SearchBatch
// stay lock-free against Insert/Update/Delete and background
// compaction, per shard, via delta's epoch snapshots. Mutations
// serialize on the engine's routing lock (mutation throughput is not
// the design target; query concurrency is).
type MutableEngine struct {
	d      int
	opts   MutableOptions
	stores []*delta.Store
	// bounds[i]..bounds[i+1] is shard i's initial contiguous id range.
	bounds []int

	mu     sync.Mutex // guards nextID, rr, routes, and store mutation order
	nextID int
	rr     int
	routes map[int]int // inserted id → shard

	// res carries admission control and deadline-aware shedding (nil when
	// Options.Resilience is nil). The mutable engine takes no per-shard
	// breakers: compaction rebuilds searchers each epoch, so a
	// fault-storming epoch already heals through the delta layer's
	// degraded-rebuild path rather than a breaker's cool-down.
	res *engineResilience

	closeMu sync.RWMutex
	closed  bool

	degraded []bool // per shard: variant build failed, serving host scan

	// log is the write-ahead log (nil when Durability.Dir is unset).
	// Mutations append under e.mu before applying, so log order equals
	// apply order and replay reconstructs the exact mutation sequence.
	log  *wal.Log
	walM *wal.Metrics

	// standing is the continuous-query registry; its hooks run under
	// e.mu after each applied mutation, so every subscription observes
	// the mutations in the order the engine applied them.
	standing *standing.Registry
}

// NewMutable partitions data row-wise into per-shard mutable stores.
// Rows keep their ids (0..N-1) across mutations and compactions;
// inserts extend the id space monotonically.
func NewMutable(data *vec.Matrix, opts MutableOptions) (*MutableEngine, error) {
	if data == nil || data.N == 0 {
		return nil, fmt.Errorf("serve: empty dataset")
	}
	if opts.Shards <= 0 {
		if opts.Router != nil {
			opts.Shards = opts.Router.NumShards()
		} else {
			opts.Shards = runtime.GOMAXPROCS(0)
		}
	}
	if opts.Shards > data.N {
		opts.Shards = data.N
	}
	if err := checkRouter(opts.Router, opts.Shards, data.D); err != nil {
		return nil, err
	}
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.CapacityN <= 0 {
		opts.CapacityN = data.N
	}
	if opts.Variant == "" {
		opts.Variant = VariantStandard
	}
	build, err := variantBuilder(opts.Options)
	if err != nil {
		return nil, err
	}
	var res *engineResilience
	if opts.Resilience != nil {
		if res, err = newEngineResilience(opts.Resilience); err != nil {
			return nil, err
		}
		if mc := opts.Resilience.MaxConcurrent; mc > 0 && opts.Workers > mc {
			opts.Workers = mc
		}
	}
	e := &MutableEngine{
		d:      data.D,
		opts:   opts,
		nextID: data.N,
		routes: make(map[int]int),
		res:    res,
	}
	shardCap := shardCapacity(opts.Options)
	var reg *obs.Registry
	if opts.Obs != nil {
		reg = opts.Obs.Registry()
	}
	s := opts.Shards
	base, rem := data.N/s, data.N%s
	lo := 0
	e.degraded = make([]bool, s)
	for id := 0; id < s; id++ {
		rows := base
		if id < rem {
			rows++
		}
		shardID := id
		// Graceful degradation mirrors the immutable engine: a variant
		// build failure (e.g. dead crossbars after fault injection)
		// falls back to the exact host scan for that epoch and is
		// reported, never fatal. The ledger charge stands — the
		// programming attempt happened.
		factory := func(m *vec.Matrix, capacityN int) (knn.Searcher, error) {
			srch, err := build(m, capacityN)
			if err != nil {
				e.degraded[shardID] = true
				return knn.NewStandard(m), nil
			}
			return srch, nil
		}
		dopts := delta.Options{
			Factory:           factory,
			MaxDelta:          opts.MaxDelta,
			MaxTombstoneRatio: opts.MaxTombstoneRatio,
			AutoCompact:       opts.AutoCompact,
			CapacityRows:      shardCap,
			IDOffset:          lo,
		}
		if reg != nil {
			dopts.Metrics = delta.NewMetrics(reg, obs.Label{Key: "shard", Value: fmt.Sprint(id)})
		}
		if r := opts.Router; r != nil {
			// Summary maintenance rides the store's mutation lock: every
			// insert/update conservatively grows the shard's summary
			// before the row becomes visible, and every compaction
			// rebuilds it tight from the fresh live base image — so the
			// published summary always covers the published snapshot and
			// exact routing stays admissible through churn.
			dopts.OnMutate = func(v []float64) { r.Observe(shardID, v) }
			dopts.OnCompact = func(base *vec.Matrix) { r.Refresh(shardID, base) }
		}
		if opts.WriteBudget > 0 {
			if opts.Framework != nil {
				model := pim.ModelFor(opts.Framework.Cfg)
				dopts.Model = &model
				dopts.Ledger, err = delta.NewLedger(opts.Framework.Cfg.NumCrossbars(), opts.WriteBudget)
			} else {
				// Host variants: image-granularity accounting with
				// double buffering (old epoch holds its tile until the
				// last reader drains).
				dopts.Ledger, err = delta.NewLedger(2, opts.WriteBudget)
			}
			if err != nil {
				return nil, err
			}
		}
		st, err := delta.New(data.Slice(lo, lo+rows), dopts)
		if err != nil {
			return nil, fmt.Errorf("serve: shard %d: %w", id, err)
		}
		e.stores = append(e.stores, st)
		e.bounds = append(e.bounds, lo)
		lo += rows
	}
	e.bounds = append(e.bounds, lo)
	if err := e.initStanding(reg); err != nil {
		return nil, err
	}
	if opts.Durability.Dir != "" {
		if err := e.initDurabilityFresh(reg); err != nil {
			return nil, err
		}
	}
	return e, nil
}

// NumShards returns the partition count in effect.
func (e *MutableEngine) NumShards() int { return len(e.stores) }

// Router returns the attached shard router (nil when unrouted).
func (e *MutableEngine) Router() *route.Router { return e.opts.Router }

// DegradedShards returns the ids of shards whose current epoch serves
// the host fallback.
func (e *MutableEngine) DegradedShards() []int {
	var out []int
	for i, d := range e.degraded {
		if d {
			out = append(out, i)
		}
	}
	return out
}

// shardOf locates the store owning an id: initial ids by range,
// inserted ids through the routing table. Returns -1 when unknown.
func (e *MutableEngine) shardOf(id int) int {
	if id >= 0 && id < e.bounds[len(e.bounds)-1] {
		// bounds is ascending; the owning shard is the last lower bound.
		return sort.SearchInts(e.bounds, id+1) - 1
	}
	if sh, ok := e.routes[id]; ok {
		return sh
	}
	return -1
}

// checkVec pre-validates what the store would reject, so a durable
// engine never logs a record its store then refuses — log order must
// equal apply order or replay would diverge from the served history.
func (e *MutableEngine) checkVec(v []float64) error {
	if len(v) != e.d {
		return fmt.Errorf("serve: vector has %d dims, dataset has %d", len(v), e.d)
	}
	if err := quant.CheckVec(v); err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	return nil
}

// logMutation appends one record to the WAL (no-op when not durable).
// Called under e.mu, after validation and before the store apply.
func (e *MutableEngine) logMutation(op wal.Op, sh, id int, v []float64) error {
	if e.log == nil {
		return nil
	}
	if _, err := e.log.Append(wal.Record{Op: op, Shard: sh, ID: id, Vec: v}); err != nil {
		return fmt.Errorf("serve: wal append: %w", err)
	}
	return nil
}

// Insert adds a vector under a fresh global id, placing it round-robin
// across shards. The vector must be normalized (quant.CheckVec). On a
// durable engine the insert is logged (and, under wal.SyncAlways,
// fsynced) before it is applied.
func (e *MutableEngine) Insert(v []float64) (int, error) {
	release, err := e.acquireMut()
	if err != nil {
		return 0, err
	}
	defer release()
	if err := e.checkVec(v); err != nil {
		return 0, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	id := e.nextID
	sh := e.rr
	if err := e.logMutation(wal.OpInsert, sh, id, v); err != nil {
		return 0, err
	}
	if err := e.stores[sh].InsertAt(id, v); err != nil {
		return 0, err
	}
	e.nextID++
	e.rr = (e.rr + 1) % len(e.stores)
	e.routes[id] = sh
	e.standing.OnInsert(id, v)
	return id, nil
}

// Update replaces the vector of an existing id in place (the id, and
// with it the tie order, is preserved).
func (e *MutableEngine) Update(id int, v []float64) error {
	release, err := e.acquireMut()
	if err != nil {
		return err
	}
	defer release()
	if err := e.checkVec(v); err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	sh := e.shardOf(id)
	if sh < 0 || !e.stores[sh].Has(id) {
		return fmt.Errorf("%w: %d", delta.ErrNotFound, id)
	}
	if err := e.logMutation(wal.OpUpdate, sh, id, v); err != nil {
		return err
	}
	if err := e.stores[sh].Update(id, v); err != nil {
		return err
	}
	e.standing.OnUpdate(id, v)
	return nil
}

// Delete removes an id.
func (e *MutableEngine) Delete(id int) error {
	release, err := e.acquireMut()
	if err != nil {
		return err
	}
	defer release()
	e.mu.Lock()
	defer e.mu.Unlock()
	sh := e.shardOf(id)
	if sh < 0 || !e.stores[sh].Has(id) {
		return fmt.Errorf("%w: %d", delta.ErrNotFound, id)
	}
	if err := e.logMutation(wal.OpDelete, sh, id, nil); err != nil {
		return err
	}
	if err := e.stores[sh].Delete(id); err != nil {
		return err
	}
	delete(e.routes, id)
	e.standing.OnDelete(id)
	return nil
}

// acquireMut and acquireQuery gate operations against Close. Queries
// and mutations both hold the read side; Close takes the write side, so
// it drains everything in flight and is idempotent.
func (e *MutableEngine) acquireMut() (func(), error) {
	e.closeMu.RLock()
	if e.closed {
		e.closeMu.RUnlock()
		return nil, ErrClosed
	}
	return e.closeMu.RUnlock, nil
}

// Search answers one exact kNN query over the live rows of every shard.
// It never blocks on mutations or compactions. With Options.Resilience
// set, admission control and deadline-aware shedding run in front of the
// fan-out exactly as on the immutable engine (typed
// resilience.ErrOverloaded / resilience.ErrShedDeadline rejections); an
// Options.QueryTimeout surfaces as ErrQueryTimeout.
func (e *MutableEngine) Search(ctx context.Context, q []float64, k int) (*Result, error) {
	return e.SearchMode(ctx, q, k, route.ModeAuto)
}

// SearchMode is Search with an explicit routing mode (see
// Engine.SearchMode; the mutable engine routes over summaries kept
// fresh through churn by the delta layer's OnMutate/OnCompact hooks).
func (e *MutableEngine) SearchMode(ctx context.Context, q []float64, k int, mode route.Mode) (*Result, error) {
	release, err := e.acquireMut()
	if err != nil {
		return nil, err
	}
	defer release()
	if len(q) != e.d {
		return nil, fmt.Errorf("serve: query has %d dims, dataset has %d", len(q), e.d)
	}
	if k <= 0 {
		return nil, fmt.Errorf("serve: need k >= 1, got %d", k)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if lrelease, lerr := e.res.admit(ctx); lerr != nil {
		return nil, lerr
	} else if lrelease != nil {
		defer lrelease()
	}
	if e.opts.QueryTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeoutCause(ctx, e.opts.QueryTimeout, ErrQueryTimeout)
		defer cancel()
	}
	if serr := e.res.checkShed(ctx); serr != nil {
		return nil, serr
	}
	start := time.Now()
	outs, info, err := routeDispatch(e.opts.Router, len(e.stores), q, k, mode,
		func(ids []int) ([]shardOut, error) { return e.fanOutStores(ctx, q, k, ids) },
		func(ri *RouteInfo, _ time.Duration) { e.opts.Router.NoteOutcome(ri.Visited, ri.Skipped) })
	if err != nil {
		return nil, err
	}
	meters := make([]*arch.Meter, len(e.stores))
	lists := make([][]vec.Neighbor, 0, len(outs))
	for _, o := range outs {
		meters[o.id] = o.meter
		lists = append(lists, o.nn)
	}
	meter := arch.NewMeter()
	for _, m := range meters {
		if m != nil {
			meter.Merge(m)
		}
	}
	if e.res != nil {
		e.res.shed.Observe(time.Since(start))
	}
	return &Result{
		Neighbors:   vec.MergeNeighbors(k, lists...),
		Meter:       meter,
		ShardMeters: meters,
		Degraded:    e.DegradedShards(),
		Routed:      info,
	}, nil
}

// fanOutStores dispatches one query to the given store ids in parallel
// and collects every answer (ids nil = all stores).
func (e *MutableEngine) fanOutStores(ctx context.Context, q []float64, k int, ids []int) ([]shardOut, error) {
	if ids == nil {
		ids = make([]int, len(e.stores))
		for i := range ids {
			ids[i] = i
		}
	}
	type out struct {
		shardOut
		err error
	}
	ch := make(chan out, len(ids))
	for _, i := range ids {
		go func(i int, st *delta.Store) {
			m := arch.NewMeter()
			nn, err := st.Search(q, k, m)
			ch <- out{shardOut: shardOut{id: i, nn: nn, meter: m}, err: err}
		}(i, e.stores[i])
	}
	outs := make([]shardOut, 0, len(ids))
	type shardErr struct {
		id  int
		err error
	}
	var fails []shardErr
	for range ids {
		select {
		case o := <-ch:
			if o.err != nil {
				// Keep collecting: the caller sees every failed shard
				// joined (matching the pool's errors.Join discipline),
				// not just whichever one lost the race.
				fails = append(fails, shardErr{id: o.id, err: o.err})
				continue
			}
			outs = append(outs, o.shardOut)
		case <-ctx.Done():
			return nil, context.Cause(ctx)
		}
	}
	if len(fails) > 0 {
		sort.Slice(fails, func(i, j int) bool { return fails[i].id < fails[j].id })
		errs := make([]error, len(fails))
		for i, f := range fails {
			errs[i] = fmt.Errorf("serve: shard %d: %w", f.id, f.err)
		}
		return nil, errors.Join(errs...)
	}
	return outs, nil
}

// SearchBatch answers a query matrix through a bounded worker pool,
// exactly like the immutable engine's batch path.
func (e *MutableEngine) SearchBatch(ctx context.Context, queries *vec.Matrix, k int) (*BatchResult, error) {
	return e.SearchBatchMode(ctx, queries, k, route.ModeAuto)
}

// SearchBatchMode is SearchBatch with an explicit routing mode.
func (e *MutableEngine) SearchBatchMode(ctx context.Context, queries *vec.Matrix, k int, mode route.Mode) (*BatchResult, error) {
	if queries == nil || queries.N == 0 {
		return &BatchResult{Meter: arch.NewMeter()}, nil
	}
	if k <= 0 {
		return nil, fmt.Errorf("serve: batch needs k >= 1, got %d", k)
	}
	res := &BatchResult{
		Results: make([]*Result, queries.N),
		Meter:   arch.NewMeter(),
	}
	err := pool.Run(ctx, queries.N, e.opts.Workers, func(w int) (pool.Worker, error) {
		return func(qi int) error {
			r, err := e.SearchMode(ctx, queries.Row(qi), k, mode)
			if err != nil {
				return fmt.Errorf("serve: query %d: %w", qi, err)
			}
			res.Results[qi] = r
			return nil
		}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, r := range res.Results {
		res.Meter.Merge(r.Meter)
	}
	return res, nil
}

// Compact folds every shard's delta and tombstones into fresh base
// images (shards compact independently; a shard with nothing to fold is
// a no-op). The first error aborts and is returned; remaining shards
// keep their current epochs.
func (e *MutableEngine) Compact(meter *arch.Meter) error {
	release, err := e.acquireMut()
	if err != nil {
		return err
	}
	defer release()
	for i, st := range e.stores {
		if err := st.Compact(meter); err != nil {
			return fmt.Errorf("serve: shard %d: %w", i, err)
		}
	}
	return nil
}

// Stats aggregates per-shard delta statistics.
func (e *MutableEngine) Stats() []delta.Stats {
	out := make([]delta.Stats, len(e.stores))
	for i, st := range e.stores {
		out[i] = st.Stats()
	}
	return out
}

// Materialize merges every shard's live rows into one matrix in
// ascending global id order with the id directory — the dataset an
// equivalent fresh engine would be built from.
func (e *MutableEngine) Materialize() (*vec.Matrix, []int) {
	type part struct {
		m   *vec.Matrix
		ids []int
	}
	parts := make([]part, len(e.stores))
	total := 0
	for i, st := range e.stores {
		m, ids := st.Materialize()
		parts[i] = part{m, ids}
		total += len(ids)
	}
	// K-way merge by ascending id (per-shard lists are already sorted).
	ids := make([]int, 0, total)
	out := vec.NewMatrix(total, e.d)
	cursor := make([]int, len(parts))
	for row := 0; row < total; row++ {
		best := -1
		for i, p := range parts {
			if cursor[i] >= len(p.ids) {
				continue
			}
			if best < 0 || p.ids[cursor[i]] < parts[best].ids[cursor[best]] {
				best = i
			}
		}
		p := parts[best]
		copy(out.Row(row), p.m.Row(cursor[best]))
		ids = append(ids, p.ids[cursor[best]])
		cursor[best]++
	}
	return out, ids
}

// Close shuts every shard store down (draining background compactions),
// closes the standing-query registry, and — on a durable engine —
// flushes and fsyncs the write-ahead log before returning, so every
// acknowledged mutation is on disk when Close hands control back.
// Idempotent: repeated Close on a non-durable engine returns nil (the
// original contract); on a durable engine it returns ErrClosed, so a
// caller retrying after a failed flush can tell "already shut down"
// from a fresh flush failure.
func (e *MutableEngine) Close() error {
	e.closeMu.Lock()
	already := e.closed
	e.closed = true
	e.closeMu.Unlock()
	if already {
		if e.log != nil {
			return ErrClosed
		}
		// Non-durable: closing again is harmless and keeps Close's
		// contract symmetric with the immutable engine.
		return nil
	}
	if e.standing != nil {
		e.standing.Close()
	}
	for _, st := range e.stores {
		st.Close()
	}
	if e.log != nil {
		// The log's Close fsyncs the active segment first; a failure
		// surfaces here (the engine is closed regardless — a second
		// Close reports ErrClosed, never retries the flush).
		if err := e.log.Close(); err != nil {
			return fmt.Errorf("serve: wal close: %w", err)
		}
	}
	return nil
}

// Dims returns the dataset dimensionality (the wire layer validates
// query vectors against it).
func (e *MutableEngine) Dims() int { return e.d }

// Rows returns the current live row count across shards.
func (e *MutableEngine) Rows() int {
	total := 0
	for _, st := range e.stores {
		total += st.Stats().LiveRows
	}
	return total
}

// Workers returns the effective batch worker count.
func (e *MutableEngine) Workers() int { return e.opts.Workers }
