package serve

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"pimmine/internal/standing"
	"pimmine/internal/vec"
	"pimmine/internal/wal"
)

func durableTestData(n, d int, seed int64) *vec.Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := vec.NewMatrix(n, d)
	for i := range m.Data {
		m.Data[i] = rng.Float64()
	}
	return m
}

// churn runs a deterministic mutation script against a mutable engine,
// returning the ids it inserted.
func churn(t *testing.T, e *MutableEngine, seed int64, ops int) []int {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var inserted []int
	live := map[int]bool{}
	_, liveIDs := e.Materialize()
	for _, id := range liveIDs {
		live[id] = true
	}
	pick := func() int {
		ids := make([]int, 0, len(live))
		for id := range live {
			ids = append(ids, id)
		}
		for i := 1; i < len(ids); i++ {
			for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
				ids[j], ids[j-1] = ids[j-1], ids[j]
			}
		}
		return ids[rng.Intn(len(ids))]
	}
	rv := func() []float64 {
		v := make([]float64, e.Dims())
		for i := range v {
			v[i] = rng.Float64()
		}
		return v
	}
	for op := 0; op < ops; op++ {
		switch r := rng.Intn(4); {
		case r < 2 || len(live) == 0:
			id, err := e.Insert(rv())
			if err != nil {
				t.Fatal(err)
			}
			live[id] = true
			inserted = append(inserted, id)
		case r == 2:
			id := pick()
			if err := e.Delete(id); err != nil {
				t.Fatal(err)
			}
			delete(live, id)
		default:
			if err := e.Update(pick(), rv()); err != nil {
				t.Fatal(err)
			}
		}
	}
	return inserted
}

// transcript captures a batch of search answers for bit-exact
// comparison.
func transcript(t *testing.T, e *MutableEngine, seed int64, nq, k int) [][]vec.Neighbor {
	t.Helper()
	queries := durableTestData(nq, e.Dims(), seed)
	res, err := e.SearchBatch(context.Background(), queries, k)
	if err != nil {
		t.Fatal(err)
	}
	out := make([][]vec.Neighbor, queries.N)
	for i, r := range res.Results {
		out[i] = r.Neighbors
	}
	return out
}

func requireSameTranscript(t *testing.T, phase string, got, want [][]vec.Neighbor) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d answers, want %d", phase, len(got), len(want))
	}
	for qi := range want {
		if len(got[qi]) != len(want[qi]) {
			t.Fatalf("%s: query %d: %d neighbors, want %d", phase, qi, len(got[qi]), len(want[qi]))
		}
		for j := range want[qi] {
			g, w := got[qi][j], want[qi][j]
			if g.Index != w.Index || math.Float64bits(g.Dist) != math.Float64bits(w.Dist) {
				t.Fatalf("%s: query %d neighbor %d = %+v, want %+v", phase, qi, j, g, w)
			}
		}
	}
}

// TestDurableCrashRecoverByteIdentical is the serve-level acceptance
// property: abandon a durable engine without Close (a crash), recover
// from its directory, and require byte-identical search transcripts —
// through churn, a checkpoint, more churn, and a second crash.
func TestDurableCrashRecoverByteIdentical(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	data := durableTestData(90, 6, 1)
	opts := MutableOptions{
		Options:    Options{Shards: 3, Workers: 2},
		MaxDelta:   1 << 20,
		Durability: Durability{Dir: dir},
	}
	e, err := NewMutable(data, opts)
	if err != nil {
		t.Fatal(err)
	}
	churn(t, e, 2, 120)
	want := transcript(t, e, 3, 16, 5)
	wantRows := e.Rows()
	// Crash: no Close, no flush beyond SyncAlways's per-record fsync.

	r1, err := RecoverMutable(opts)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Rows() != wantRows {
		t.Fatalf("recovered %d rows, want %d", r1.Rows(), wantRows)
	}
	requireSameTranscript(t, "after first crash", transcript(t, r1, 3, 16, 5), want)

	// The recovered engine must continue the id/shard sequence exactly:
	// more churn, a checkpoint (snapshot + log truncation), more churn,
	// then a second crash and recovery.
	churn(t, r1, 4, 60)
	if err := r1.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	churn(t, r1, 5, 60)
	want2 := transcript(t, r1, 6, 16, 5)
	rows2 := r1.Rows()

	r2, err := RecoverMutable(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if r2.Rows() != rows2 {
		t.Fatalf("second recovery %d rows, want %d", r2.Rows(), rows2)
	}
	requireSameTranscript(t, "after second crash", transcript(t, r2, 6, 16, 5), want2)

	// And the recovered engine keeps mutating + compacting normally.
	churn(t, r2, 7, 30)
	if err := r2.Compact(nil); err != nil {
		t.Fatal(err)
	}
}

// TestDurableRecoveredContinuesIdentically drives the same post-crash
// mutation script through the surviving original and the recovered
// engine: ids, shard placement and transcripts must stay in lockstep.
func TestDurableRecoveredContinuesIdentically(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	data := durableTestData(40, 5, 10)
	opts := MutableOptions{
		Options:    Options{Shards: 2, Workers: 2},
		MaxDelta:   1 << 20,
		Durability: Durability{Dir: dir},
	}
	orig, err := NewMutable(data, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer orig.Close()
	churn(t, orig, 11, 50)

	rec, err := RecoverMutable(opts)
	if err != nil {
		t.Fatal(err)
	}
	// Recovery leaves the shared directory; further durable appends from
	// two engines would interleave, so continue the recovered engine
	// non-durably... not possible — instead just compare the next ids.
	idsA := churn(t, orig, 12, 40)
	defer rec.Close()

	// The recovered engine must assign the same fresh ids as the
	// original would (nextID and round-robin cursor survived the crash).
	// Note rec's churn writes to the same WAL dir orig already extended;
	// that is fine here because neither engine recovers again.
	idsB := churn(t, rec, 12, 40)
	if len(idsA) != len(idsB) {
		t.Fatalf("id streams diverge in length: %d vs %d", len(idsA), len(idsB))
	}
	for i := range idsA {
		if idsA[i] != idsB[i] {
			t.Fatalf("fresh id %d: original %d, recovered %d", i, idsA[i], idsB[i])
		}
	}
	requireSameTranscript(t, "post-crash lockstep",
		transcript(t, rec, 13, 12, 4), transcript(t, orig, 13, 12, 4))
}

// TestDurableEmptyShardRecovery deletes every row of a small engine
// (leaving some shards empty at checkpoint time) and recovers through
// the tombstoned-placeholder path.
func TestDurableEmptyShardRecovery(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	data := durableTestData(6, 4, 20)
	opts := MutableOptions{
		Options:    Options{Shards: 3, Workers: 1},
		MaxDelta:   1 << 20,
		Durability: Durability{Dir: dir},
	}
	e, err := NewMutable(data, opts)
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < 6; id++ {
		if err := e.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	r, err := RecoverMutable(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Rows() != 0 {
		t.Fatalf("recovered %d rows, want 0", r.Rows())
	}
	// The placeholder must be invisible: a search over the empty engine
	// returns no neighbors, and inserts repopulate normally.
	res, err := r.Search(context.Background(), []float64{0, 0, 0, 0}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Neighbors) != 0 {
		t.Fatalf("empty engine answered %v", res.Neighbors)
	}
	id, err := r.Insert([]float64{0.1, 0.2, 0.3, 0.4})
	if err != nil {
		t.Fatal(err)
	}
	if id != 6 {
		t.Fatalf("post-recovery insert id = %d, want 6 (watermark survived)", id)
	}
	res, err = r.Search(context.Background(), []float64{0.1, 0.2, 0.3, 0.4}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Neighbors) != 1 || res.Neighbors[0].Index != 6 {
		t.Fatalf("search after repopulating = %v", res.Neighbors)
	}
	// Round-robin the remaining shards back to life, then compact —
	// which also discards the restore placeholders.
	for i := 0; i < 2; i++ {
		if _, err := r.Insert([]float64{0.5, 0.5, 0.5, 0.5}); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Compact(nil); err != nil {
		t.Fatal(err)
	}
}

// TestDurableCheckpointTruncatesLog verifies a checkpoint actually
// shrinks the on-disk log and drops superseded snapshots.
func TestDurableCheckpointTruncatesLog(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	data := durableTestData(30, 4, 30)
	opts := MutableOptions{
		Options:    Options{Shards: 2, Workers: 1},
		MaxDelta:   1 << 20,
		Durability: Durability{Dir: dir, SegmentBytes: 1 << 10},
	}
	e, err := NewMutable(data, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	churn(t, e, 31, 200)
	segs := func() int {
		m, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
		return len(m)
	}
	snaps := func() int {
		m, _ := filepath.Glob(filepath.Join(dir, "snap-*.pimsnap"))
		return len(m)
	}
	before := segs()
	if before < 3 {
		t.Fatalf("churn produced only %d segments; rotation not exercised", before)
	}
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if after := segs(); after >= before {
		t.Fatalf("checkpoint left %d segments (was %d)", after, before)
	}
	if n := snaps(); n != 1 {
		t.Fatalf("%d snapshots on disk after checkpoint, want 1", n)
	}
	r, err := RecoverMutable(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	requireSameTranscript(t, "post-truncation recovery",
		transcript(t, r, 32, 10, 4), transcript(t, e, 32, 10, 4))
}

// TestDurableTornTailRecovery appends a partial record to the active
// segment (a crash mid-append) and requires recovery to discard exactly
// the torn suffix.
func TestDurableTornTailRecovery(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	data := durableTestData(20, 4, 40)
	opts := MutableOptions{
		Options:    Options{Shards: 2, Workers: 1},
		MaxDelta:   1 << 20,
		Durability: Durability{Dir: dir},
	}
	e, err := NewMutable(data, opts)
	if err != nil {
		t.Fatal(err)
	}
	churn(t, e, 41, 40)
	want := transcript(t, e, 42, 8, 3)
	// Tear the tail: append half a record's worth of garbage to the
	// newest segment.
	m, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil || len(m) == 0 {
		t.Fatalf("no segments: %v", err)
	}
	newest := m[len(m)-1]
	f, err := os.OpenFile(newest, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x2a, 0x00, 0x00, 0x00, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	r, err := RecoverMutable(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	requireSameTranscript(t, "torn tail", transcript(t, r, 42, 8, 3), want)
}

// TestDurableDirectoryDiscipline covers the constructor/recovery
// sentinels: a fresh NewMutable refuses a directory holding state, and
// RecoverMutable refuses an empty or unconfigured one.
func TestDurableDirectoryDiscipline(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	data := durableTestData(10, 3, 50)
	opts := MutableOptions{
		Options:    Options{Shards: 2, Workers: 1},
		Durability: Durability{Dir: dir},
	}
	e, err := NewMutable(data, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := NewMutable(data, opts); !errors.Is(err, ErrDurableState) {
		t.Fatalf("NewMutable over existing state = %v, want ErrDurableState", err)
	}
	if _, err := RecoverMutable(MutableOptions{Durability: Durability{Dir: t.TempDir()}}); !errors.Is(err, ErrNoDurableState) {
		t.Fatalf("RecoverMutable over empty dir = %v, want ErrNoDurableState", err)
	}
	if _, err := RecoverMutable(MutableOptions{}); !errors.Is(err, ErrNotDurable) {
		t.Fatalf("RecoverMutable without Dir = %v, want ErrNotDurable", err)
	}
	nd, err := NewMutable(durableTestData(10, 3, 51), MutableOptions{Options: Options{Shards: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if err := nd.Checkpoint(); !errors.Is(err, ErrNotDurable) {
		t.Fatalf("Checkpoint on non-durable engine = %v, want ErrNotDurable", err)
	}
	nd.Close()
}

// TestDurableCloseFlushRegression is the shutdown fix's regression: a
// durable engine whose final flush fails must surface that error from
// the first Close, and every later Close must report ErrClosed — it is
// shut down, not retryable.
func TestDurableCloseFlushRegression(t *testing.T) {
	t.Parallel()
	failing := errors.New("injected fsync failure")
	dir := t.TempDir()
	armed := false
	opts := MutableOptions{
		Options: Options{Shards: 2, Workers: 1},
		Durability: Durability{
			Dir:    dir,
			Policy: wal.SyncNever, // appends buffer; Close owes the flush
			Fsync: func(f *os.File) error {
				if armed {
					return failing
				}
				return f.Sync()
			},
		},
	}
	e, err := NewMutable(durableTestData(12, 3, 60), opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Insert([]float64{0.1, 0.2, 0.3}); err != nil {
		t.Fatal(err)
	}
	armed = true
	if err := e.Close(); !errors.Is(err, failing) {
		t.Fatalf("first Close = %v, want the injected fsync failure", err)
	}
	for i := 0; i < 2; i++ {
		if err := e.Close(); !errors.Is(err, ErrClosed) {
			t.Fatalf("Close #%d after failed flush = %v, want ErrClosed", i+2, err)
		}
	}
	// Every mutation before the failed flush was still applied and
	// logged; with the fault cleared, recovery replays them.
	armed = false
	r, err := RecoverMutable(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Rows() != 13 {
		t.Fatalf("recovered %d rows, want 13", r.Rows())
	}
}

// TestDurableCleanCloseFsyncs verifies the healthy path: Close on a
// SyncNever engine fsyncs the buffered tail, so recovery sees every
// acknowledged mutation.
func TestDurableCleanCloseFsyncs(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	syncs := 0
	opts := MutableOptions{
		Options: Options{Shards: 2, Workers: 1},
		Durability: Durability{
			Dir:    dir,
			Policy: wal.SyncNever,
			Fsync: func(f *os.File) error {
				syncs++
				return f.Sync()
			},
		},
	}
	e, err := NewMutable(durableTestData(8, 3, 70), opts)
	if err != nil {
		t.Fatal(err)
	}
	pre := syncs
	churn(t, e, 71, 20)
	if syncs != pre {
		t.Fatalf("SyncNever fsynced %d times during churn", syncs-pre)
	}
	want := transcript(t, e, 72, 6, 3)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if syncs == pre {
		t.Fatal("Close did not fsync the buffered log tail")
	}
	r, err := RecoverMutable(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	requireSameTranscript(t, "after clean close", transcript(t, r, 72, 6, 3), want)
}

// TestMutableStandingSubscription exercises the engine-level standing
// tier: a kNN subscription's maintained view must match a one-shot
// Search bit-for-bit after every mutation, and radius watches fire on
// qualifying inserts.
func TestMutableStandingSubscription(t *testing.T) {
	t.Parallel()
	data := durableTestData(40, 4, 80)
	e, err := NewMutable(data, MutableOptions{
		Options:        Options{Shards: 2, Workers: 2},
		MaxDelta:       1 << 20,
		StandingBuffer: 512,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	q := []float64{0.5, 0.5, 0.5, 0.5}
	sub, err := e.SubscribeKNN(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.SubscribeKNN([]float64{1}, 5); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
	init := <-sub.Events()
	if init.Kind != standing.KindInit {
		t.Fatalf("first event kind = %v", init.Kind)
	}
	rng := rand.New(rand.NewSource(81))
	for op := 0; op < 60; op++ {
		v := make([]float64, 4)
		for i := range v {
			v[i] = rng.Float64()
		}
		switch rng.Intn(3) {
		case 0:
			if _, err := e.Insert(v); err != nil {
				t.Fatal(err)
			}
		case 1:
			if err := e.Update(rng.Intn(40), v); err != nil {
				t.Fatal(err)
			}
		default:
			// Deletes against already-removed ids are fine to skip.
			if err := e.Delete(40 + rng.Intn(op+1)); err != nil {
				continue
			}
		}
		want, err := e.Search(context.Background(), q, 5)
		if err != nil {
			t.Fatal(err)
		}
		got := e.StandingView(sub.ID())
		if len(got) != len(want.Neighbors) {
			t.Fatalf("op %d: view has %d neighbors, one-shot %d", op, len(got), len(want.Neighbors))
		}
		for j := range got {
			if got[j].Index != want.Neighbors[j].Index ||
				math.Float64bits(got[j].Dist) != math.Float64bits(want.Neighbors[j].Dist) {
				t.Fatalf("op %d neighbor %d: view %+v, one-shot %+v", op, j, got[j], want.Neighbors[j])
			}
		}
	}
	e.Unsubscribe(sub.ID())
	for range sub.Events() {
	}

	rsub, err := e.SubscribeRadius(q, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	id, err := e.Insert([]float64{0.5, 0.5, 0.5, 0.501})
	if err != nil {
		t.Fatal(err)
	}
	ev := <-rsub.Events()
	if ev.Kind != standing.KindMatch || ev.Trigger != id {
		t.Fatalf("radius event = %+v, want match on %d", ev, id)
	}
	e.Unsubscribe(rsub.ID())
}
