// Package serve implements the sharded concurrent query engine: the
// serving layer that turns the per-query searchers of internal/knn into
// a multi-tenant kNN service.
//
// The dataset is partitioned row-wise into S shards. Each shard owns an
// independent searcher — for the PIM variants, an independent PIM array
// sized with Theorem 4 against the shard's slice of the full-scale
// cardinality, mirroring how near-data systems partition a corpus across
// memory modules and merge per-partition top-k results (Lee et al.,
// "Application-Driven Near-Data Processing for Similarity Search"). A
// query fans out to all shards, each shard computes its local top-k under
// its own activity meter, and the per-shard heaps are merged into the
// exact global top-k: every global neighbor is in its shard's local top-k
// under the same (distance, index) total order, so the merge loses
// nothing and sharded results are bit-identical to a sequential scan
// (property-tested in serve_test.go).
//
// Shard searchers reuse internal buffers and meters are not
// goroutine-safe, so each shard serializes access with a mutex; queries
// pipeline across shards, which is where batch throughput comes from.
// A shard whose searcher construction fails degrades gracefully to the
// host-side exact scan for that shard — results stay exact, the
// degradation is reported on every Result, and the engine keeps serving.
package serve

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"pimmine/internal/arch"
	"pimmine/internal/bound"
	"pimmine/internal/core"
	"pimmine/internal/knn"
	"pimmine/internal/obs"
	"pimmine/internal/pim"
	"pimmine/internal/resilience"
	"pimmine/internal/route"
	"pimmine/internal/vec"
)

// Variant names the per-shard searcher algorithm.
type Variant string

// The ED searcher variants of internal/knn. PIM variants require
// Options.Framework; each shard then programs its own PIM array.
const (
	VariantStandard    Variant = "standard"
	VariantOST         Variant = "ost"
	VariantSM          Variant = "sm"
	VariantFNN         Variant = "fnn"
	VariantStandardPIM Variant = "standard-pim"
	VariantOSTPIM      Variant = "ost-pim"
	VariantSMPIM       Variant = "sm-pim"
	VariantFNNPIM      Variant = "fnn-pim"
)

// Variants lists every supported variant (host variants first).
func Variants() []Variant {
	return []Variant{
		VariantStandard, VariantOST, VariantSM, VariantFNN,
		VariantStandardPIM, VariantOSTPIM, VariantSMPIM, VariantFNNPIM,
	}
}

// Factory builds the searcher for one shard. Custom factories override
// Options.Variant (tests use them to force the degraded path; callers can
// plug in searchers the stock variants don't cover).
type Factory func(shard *vec.Matrix, shardID int) (knn.Searcher, error)

// Options configures New.
type Options struct {
	// Shards is the partition count S; defaults to GOMAXPROCS, clamped to
	// the dataset cardinality.
	Shards int
	// Variant selects the per-shard searcher (default VariantStandard).
	Variant Variant
	// Framework supplies the hardware model and quantizer for the PIM
	// variants; each shard gets its own array via Framework.NewEngine.
	Framework *core.Framework
	// CapacityN is the full-scale cardinality for Theorem 4 sizing,
	// divided evenly across shards (each shard's integer vectors must fit
	// its own crossbar budget); defaults to the dataset's N.
	CapacityN int
	// Workers bounds the batch worker pool (how many queries are in
	// flight at once); defaults to GOMAXPROCS.
	Workers int
	// QueryTimeout, when positive, is the per-query deadline applied on
	// top of the caller's context.
	QueryTimeout time.Duration
	// Factory overrides Variant when non-nil.
	Factory Factory
	// Obs, when non-nil, wires the engine into the observability
	// subsystem (internal/obs): query counters, latency histograms,
	// per-shard fan-out counters and meter/fault collectors register with
	// its registry, and sampled queries record an engine → shard →
	// bound-eval → pim-dot → refine span tree. Nil keeps the hot path
	// observation-free.
	Obs *obs.Observer
	// Router, when non-nil, engages the shard-routing tier
	// (internal/route): every query consults the per-shard summaries and
	// is dispatched only to shards that can contribute to its top-k.
	// The router's shard count must agree with the engine's — New rejects
	// a disagreement with route.ErrShardMismatch at construction time;
	// when Shards is zero the engine adopts the router's count. Exact
	// mode keeps results bit-identical to the unrouted engine;
	// approximate mode trades exactness for latency and annotates every
	// Result with Result.Routed. A routed-away shard is never touched at
	// all for that query — not even its breaker's host-scan fallback runs.
	Router *route.Router
	// Resilience, when non-nil, engages the overload-protection layer
	// (internal/resilience): admission control with a bounded wait queue
	// in front of Search/SearchBatch, deadline-aware shedding against
	// the observed p95 service time, per-shard circuit breakers that
	// reroute a fault-storming shard to its exact host scan, and a
	// jittered-backoff retry budget for transient PIM faults. Rejected
	// and shed queries return typed errors (resilience.ErrOverloaded,
	// resilience.ErrShedDeadline); admitted queries always return exact
	// results. When MaxConcurrent is set, Workers is clamped to it so a
	// batch cannot reject its own jobs.
	Resilience *resilience.Config
}

// shard is one row-range of the dataset with its private searcher.
// searcher, meter and the searcher's internal buffers are guarded by mu:
// one query at a time per shard, with queries pipelining across shards.
type shard struct {
	id     int
	name   string // span label, precomputed off the query hot path
	offset int    // global index of local row 0
	data   *vec.Matrix

	mu       sync.Mutex
	searcher knn.Searcher
	meter    *arch.Meter // cumulative shard activity
	degraded bool

	// Overload protection (nil/unset unless Options.Resilience engages
	// it): breaker gates the PIM path, host is the exact host-scan
	// fallback served while the breaker is open, retry is the shared
	// engine-wide transient-fault budget. The search flow lives in
	// resilience.go.
	breaker *resilience.Breaker
	host    knn.Searcher
	retry   *resilience.RetryBudget
}

// ErrClosed reports an operation on an engine after Close.
var ErrClosed = fmt.Errorf("serve: engine closed")

// Engine is the sharded concurrent query engine. It is safe for
// concurrent use by multiple goroutines.
type Engine struct {
	data     *vec.Matrix
	shards   []*shard
	degraded []int // shard ids that fell back to the host exact scan
	opts     Options
	eobs     *engineObs        // nil when Options.Obs is nil
	res      *engineResilience // nil when Options.Resilience is nil

	// closeMu gates the query paths against Close: queries hold the
	// read side for their duration, so Close drains in-flight work.
	closeMu sync.RWMutex
	closed  bool
}

// Close drains in-flight queries and shuts the engine down; subsequent
// queries return ErrClosed. It is idempotent — a second (or concurrent)
// Close neither panics nor deadlocks, it just waits for the same drain.
func (e *Engine) Close() error {
	e.closeMu.Lock()
	e.closed = true
	e.closeMu.Unlock()
	return nil
}

// acquire takes a query lease; the returned release must be called when
// the query finishes. It fails once Close has run.
func (e *Engine) acquire() (release func(), err error) {
	e.closeMu.RLock()
	if e.closed {
		e.closeMu.RUnlock()
		return nil, ErrClosed
	}
	return e.closeMu.RUnlock, nil
}

// New partitions data row-wise and builds one searcher per shard. A shard
// whose construction fails falls back to the exact host scan and is
// reported by DegradedShards (and on every Result); only configuration
// errors — unknown variant, missing framework, empty data — fail New.
func New(data *vec.Matrix, opts Options) (*Engine, error) {
	if data == nil || data.N == 0 {
		return nil, fmt.Errorf("serve: empty dataset")
	}
	if opts.Shards <= 0 {
		if opts.Router != nil {
			opts.Shards = opts.Router.NumShards()
		} else {
			opts.Shards = runtime.GOMAXPROCS(0)
		}
	}
	if opts.Shards > data.N {
		opts.Shards = data.N
	}
	if err := checkRouter(opts.Router, opts.Shards, data.D); err != nil {
		return nil, err
	}
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.CapacityN <= 0 {
		opts.CapacityN = data.N
	}
	if opts.Variant == "" {
		opts.Variant = VariantStandard
	}
	factory := opts.Factory
	if factory == nil {
		var err error
		factory, err = variantFactory(opts)
		if err != nil {
			return nil, err
		}
	}
	var res *engineResilience
	if opts.Resilience != nil {
		var err error
		if res, err = newEngineResilience(opts.Resilience); err != nil {
			return nil, err
		}
		// A batch must not reject its own jobs: the worker pool is the
		// batch's admission, so it never outnumbers the concurrency cap.
		if mc := opts.Resilience.MaxConcurrent; mc > 0 && opts.Workers > mc {
			opts.Workers = mc
		}
	}

	e := &Engine{data: data, opts: opts, res: res}
	s := opts.Shards
	base, rem := data.N/s, data.N%s
	lo := 0
	for id := 0; id < s; id++ {
		rows := base
		if id < rem {
			rows++
		}
		sh := &shard{id: id, name: fmt.Sprintf("shard %d", id), offset: lo, data: data.Slice(lo, lo+rows), meter: arch.NewMeter()}
		searcher, err := factory(sh.data, id)
		if err != nil {
			// Graceful degradation: this shard serves the exact host
			// scan; results stay exact, throughput modeling degrades.
			searcher = knn.NewStandard(sh.data)
			sh.degraded = true
			e.degraded = append(e.degraded, id)
		}
		sh.searcher = searcher
		e.shards = append(e.shards, sh)
		lo += rows
	}
	if res != nil {
		for _, sh := range e.shards {
			if sh.degraded {
				continue // already serving the host scan permanently
			}
			sh.retry = res.retry
			if opts.Resilience.Breaker.FailureThreshold > 0 {
				sh.breaker = resilience.NewBreaker(opts.Resilience.Breaker)
				sh.host = knn.NewStandard(sh.data)
			}
		}
	}
	if opts.Obs != nil {
		e.eobs = newEngineObs(e, opts.Obs)
	}
	return e, nil
}

// checkAlive gates a freshly built PIM shard searcher on its array's
// power-on self test: a shard whose array has dead crossbars (fault
// injection, internal/fault) reports an error here, which New turns into
// the graceful host-scan fallback — the caller sees exact results and a
// degraded-shard report, never an error. Shards whose arrays are healthy
// but merely faulty (stuck/drifted cells) keep their PIM searcher: the
// widened bounds already preserve exactness.
func checkAlive(s knn.Searcher, eng *pim.Engine, err error) (knn.Searcher, error) {
	if err != nil {
		return nil, err
	}
	if n := eng.DeadCrossbars(); n > 0 {
		return nil, fmt.Errorf("serve: shard PIM array has %d dead crossbars", n)
	}
	return s, nil
}

// capFactory builds a searcher over a matrix with an explicit Theorem 4
// sizing cardinality. It is the capacity-parameterized core both the
// static per-shard Factory and the mutable engine's compaction rebuilds
// (internal/delta, which re-runs dimension selection as occupancy
// changes) are derived from.
type capFactory func(m *vec.Matrix, capacityN int) (knn.Searcher, error)

// variantBuilder maps a Variant to a capacity-parameterized searcher
// constructor. PIM variants build a fresh array per call — programming
// is what burns endurance, so reuse is deliberately impossible here and
// accounted for by the caller (the delta ledger or the one-shot shard
// build).
func variantBuilder(opts Options) (capFactory, error) {
	fw := opts.Framework
	needFW := func(v Variant) error {
		if fw == nil {
			return fmt.Errorf("serve: variant %q needs Options.Framework", v)
		}
		return nil
	}
	switch v := opts.Variant; v {
	case VariantStandard:
		return func(m *vec.Matrix, _ int) (knn.Searcher, error) {
			return knn.NewStandard(m), nil
		}, nil
	case VariantOST:
		return func(m *vec.Matrix, _ int) (knn.Searcher, error) {
			return knn.NewOST(m, m.D/2)
		}, nil
	case VariantSM:
		return func(m *vec.Matrix, _ int) (knn.Searcher, error) {
			return knn.NewSM(m, bound.FNNLevels(m.D)[2])
		}, nil
	case VariantFNN:
		return func(m *vec.Matrix, _ int) (knn.Searcher, error) {
			return knn.NewFNN(m)
		}, nil
	case VariantStandardPIM:
		if err := needFW(v); err != nil {
			return nil, err
		}
		return func(m *vec.Matrix, capacityN int) (knn.Searcher, error) {
			eng, err := fw.NewEngine()
			if err != nil {
				return nil, err
			}
			s, err := knn.NewStandardPIM(eng, m, fw.Quant, capacityN)
			return checkAlive(s, eng, err)
		}, nil
	case VariantOSTPIM:
		if err := needFW(v); err != nil {
			return nil, err
		}
		return func(m *vec.Matrix, capacityN int) (knn.Searcher, error) {
			eng, err := fw.NewEngine()
			if err != nil {
				return nil, err
			}
			s, err := knn.NewOSTPIM(eng, m, fw.Quant, m.D/2, capacityN)
			return checkAlive(s, eng, err)
		}, nil
	case VariantSMPIM:
		if err := needFW(v); err != nil {
			return nil, err
		}
		return func(m *vec.Matrix, capacityN int) (knn.Searcher, error) {
			eng, err := fw.NewEngine()
			if err != nil {
				return nil, err
			}
			s, err := knn.NewSMPIM(eng, m, fw.Quant, bound.FNNLevels(m.D)[2], capacityN)
			return checkAlive(s, eng, err)
		}, nil
	case VariantFNNPIM:
		if err := needFW(v); err != nil {
			return nil, err
		}
		return func(m *vec.Matrix, capacityN int) (knn.Searcher, error) {
			eng, err := fw.NewEngine()
			if err != nil {
				return nil, err
			}
			s, err := knn.NewFNNPIM(eng, m, fw.Quant, capacityN)
			return checkAlive(s, eng, err)
		}, nil
	default:
		return nil, fmt.Errorf("serve: unknown variant %q", opts.Variant)
	}
}

// shardCapacity is the Theorem 4 sizing per shard: each shard answers
// for an even share of the full-scale cardinality on its own array.
func shardCapacity(opts Options) int {
	return (opts.CapacityN + opts.Shards - 1) / opts.Shards
}

// variantFactory maps a Variant to a per-shard searcher constructor with
// the shard capacity fixed at engine-build time.
func variantFactory(opts Options) (Factory, error) {
	build, err := variantBuilder(opts)
	if err != nil {
		return nil, err
	}
	shardCap := shardCapacity(opts)
	return func(m *vec.Matrix, _ int) (knn.Searcher, error) {
		return build(m, shardCap)
	}, nil
}

// NumShards returns the partition count in effect.
func (e *Engine) NumShards() int { return len(e.shards) }

// Dims returns the dataset dimensionality (queries must match it).
func (e *Engine) Dims() int { return e.data.D }

// Rows returns the dataset cardinality.
func (e *Engine) Rows() int { return e.data.N }

// Workers returns the batch worker-pool width in effect.
func (e *Engine) Workers() int { return e.opts.Workers }

// Router returns the attached shard router (nil when unrouted).
func (e *Engine) Router() *route.Router { return e.opts.Router }

// ShardSizes returns the row count of every shard.
func (e *Engine) ShardSizes() []int {
	sizes := make([]int, len(e.shards))
	for i, sh := range e.shards {
		sizes[i] = sh.data.N
	}
	return sizes
}

// DegradedShards returns the ids of shards serving the host fallback
// (nil when every shard built its configured searcher).
func (e *Engine) DegradedShards() []int {
	if len(e.degraded) == 0 {
		return nil
	}
	out := make([]int, len(e.degraded))
	copy(out, e.degraded)
	return out
}

// Meter returns a merged snapshot of the cumulative per-shard activity
// since the engine was built.
func (e *Engine) Meter() *arch.Meter {
	total := arch.NewMeter()
	for _, sh := range e.shards {
		sh.mu.Lock()
		total.Merge(sh.meter)
		sh.mu.Unlock()
	}
	return total
}

// Result is one query's answer.
type Result struct {
	// Neighbors is the exact global top-k, ascending by (distance, index).
	Neighbors []vec.Neighbor
	// Meter merges the per-shard activity this query caused.
	Meter *arch.Meter
	// ShardMeters holds each shard's private activity for this query
	// (indexed by shard id). Shards run in parallel, so the query's
	// modeled latency is the maximum over shards — the merged Meter
	// models total work, not the critical path.
	ShardMeters []*arch.Meter
	// Degraded lists shards that served the host fallback for this query.
	Degraded []int
	// BreakerOpen lists shards whose circuit breaker refused the PIM
	// path for this query, so the exact host scan served instead
	// (results are still exact; only throughput modeling degrades).
	BreakerOpen []int
	// Routed annotates how the routing tier handled this query (nil when
	// the engine has no router). Skipped shards have nil ShardMeters
	// entries — they did no work at all.
	Routed *RouteInfo
}

// shardOut carries one shard's contribution back to the query goroutine.
type shardOut struct {
	id          int
	nn          []vec.Neighbor
	meter       *arch.Meter
	breakerOpen bool
}

// Search answers one kNN query by fanning out to every shard and merging
// the per-shard top-k heaps into the exact global top-k. It honors ctx
// cancellation and, when Options.QueryTimeout is set, a per-query
// deadline (surfaced as ErrQueryTimeout, which still matches
// context.DeadlineExceeded); a canceled query returns the context's
// cause. With Options.Resilience set, the query first passes admission
// control (resilience.ErrOverloaded when the engine is saturated) and
// deadline-aware shedding (resilience.ErrShedDeadline when the
// remaining deadline is below the observed p95 service time); both
// reject in microseconds, before any shard work is dispatched. Search
// is safe to call concurrently.
//
// With Options.Router set, Search routes in the router's default mode;
// SearchMode overrides it per query.
func (e *Engine) Search(ctx context.Context, q []float64, k int) (*Result, error) {
	return e.SearchMode(ctx, q, k, route.ModeAuto)
}

// SearchMode is Search with an explicit routing mode: route.ModeExact
// keeps results bit-identical to the unrouted engine while skipping
// shards whose summary lower bound proves them out of the top-k;
// route.ModeApprox visits shards by sketch similarity toward the
// router's recall target; route.ModeAuto takes the router's default.
// An explicit mode on an engine without a router is ErrNoRouter.
func (e *Engine) SearchMode(ctx context.Context, q []float64, k int, mode route.Mode) (res *Result, err error) {
	release, err := e.acquire()
	if err != nil {
		return nil, err
	}
	defer release()
	if len(q) != e.data.D {
		return nil, fmt.Errorf("serve: query has %d dims, dataset has %d", len(q), e.data.D)
	}
	if k <= 0 {
		return nil, fmt.Errorf("serve: need k >= 1, got %d", k)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	// Admission control: when the concurrency cap and its wait queue are
	// both full, answer "no" now — a typed rejection in microseconds —
	// instead of queueing into certain timeout and burning crossbar
	// transfers on a query that cannot finish.
	if lrelease, lerr := e.res.admit(ctx); lerr != nil {
		e.eobs.noteRejected(lerr)
		return nil, lerr
	} else if lrelease != nil {
		defer lrelease()
	}
	if e.opts.QueryTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeoutCause(ctx, e.opts.QueryTimeout, ErrQueryTimeout)
		defer cancel()
	}
	start := time.Now()
	var root *obs.Span
	if e.eobs != nil {
		e.eobs.inflight.Add(1)
		ctx, root = e.eobs.o.Tracer().Start(ctx, "engine.search")
		root.SetAttr("k", k)
		root.SetAttr("shards", len(e.shards))
		defer func() {
			e.eobs.inflight.Add(-1)
			e.eobs.queries.Inc()
			e.eobs.latency.Observe(time.Since(start).Seconds())
			if err != nil {
				e.eobs.errors.Inc()
				root.SetAttr("error", err)
			}
			root.End()
		}()
	}
	// Deadline-aware shedding: a query whose remaining deadline is below
	// the observed p95 service time cannot finish; shed it before any
	// PIM transfer budget (Eq. 13's Tcost) is spent on it.
	if serr := e.res.checkShed(ctx); serr != nil {
		e.eobs.noteShed()
		root.Annotate("shed", obs.A("reason", serr.Error()))
		return nil, serr
	}

	// Route, then fan out to the visit set (everything when unrouted).
	outs, info, err := e.dispatch(ctx, root, q, k, mode)
	if err != nil {
		return nil, err
	}
	if cerr := ctx.Err(); cerr != nil {
		return nil, context.Cause(ctx) // a shard may have skipped its work
	}
	// Global top-k = k minimum under the (distance, index) total order —
	// the same order every searcher's TopK heap resolves ties with, which
	// is what makes the merge exactly equal to a sequential scan.
	meters := make([]*arch.Meter, len(e.shards))
	merged := make([]vec.Neighbor, 0, len(outs)*k)
	var breakerOpen []int
	for _, o := range outs {
		merged = append(merged, o.nn...)
		meters[o.id] = o.meter
		if o.breakerOpen {
			breakerOpen = append(breakerOpen, o.id)
		}
	}
	merged = topK(merged, k)
	meter := arch.NewMeter()
	for _, m := range meters {
		if m != nil {
			meter.Merge(m)
		}
	}
	// Feed the shedder only with completed queries: its p95 must track
	// real service time, not the latency of rejections.
	if e.res != nil {
		e.res.shed.Observe(time.Since(start))
	}
	return &Result{Neighbors: merged, Meter: meter, ShardMeters: meters,
		Degraded: e.DegradedShards(), BreakerOpen: breakerOpen, Routed: info}, nil
}

// topK sorts candidates by the canonical (distance, index) total order
// and truncates to k.
func topK(merged []vec.Neighbor, k int) []vec.Neighbor {
	sort.Slice(merged, func(i, j int) bool {
		if merged[i].Dist != merged[j].Dist {
			return merged[i].Dist < merged[j].Dist
		}
		return merged[i].Index < merged[j].Index
	})
	if len(merged) > k {
		merged = merged[:k]
	}
	return merged
}

// fanOut dispatches one query to the given shard ids in parallel and
// collects every answer (ids nil = all shards). The channel is buffered
// so a shard goroutine can always deliver and exit, even when the query
// gave up on the deadline.
func (e *Engine) fanOut(ctx context.Context, root *obs.Span, q []float64, k int, ids []int) ([]shardOut, error) {
	n := len(ids)
	if ids == nil {
		n = len(e.shards)
	}
	out := make(chan shardOut, n)
	dispatch := func(sh *shard) {
		go func() {
			if ctx.Err() != nil {
				out <- shardOut{id: sh.id}
				return
			}
			sp := root.StartChild(sh.name)
			if e.eobs != nil {
				e.eobs.shardQueries[sh.id].Inc()
			}
			ans := sh.search(obs.ContextWithSpan(ctx, sp), q, k)
			annotateFaults(sp, ans.meter)
			if ans.breakerOpen {
				sp.Annotate("breaker-open", obs.A("path", "host-scan"))
				e.eobs.noteBreakerHostServe()
			}
			if ans.retries > 0 {
				sp.Annotate("pim-retry", obs.A("retries", ans.retries))
				e.eobs.noteRetries(ans.retries)
			}
			sp.End()
			out <- shardOut{id: sh.id, nn: ans.nn, meter: ans.meter, breakerOpen: ans.breakerOpen}
		}()
	}
	if ids == nil {
		for _, sh := range e.shards {
			dispatch(sh)
		}
	} else {
		for _, id := range ids {
			dispatch(e.shards[id])
		}
	}
	outs := make([]shardOut, 0, n)
	for i := 0; i < n; i++ {
		select {
		case o := <-out:
			outs = append(outs, o)
		case <-ctx.Done():
			return nil, context.Cause(ctx)
		}
	}
	return outs, nil
}
