package serve

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"pimmine/internal/delta"
	"pimmine/internal/vec"
)

// TestMutableDifferentialVsFresh is the engine-level differential: a
// mutated dataset served through the mutable engine must answer every
// query byte-identically to a fresh immutable engine built over the
// equivalent final dataset — before and after compaction.
func TestMutableDifferentialVsFresh(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(11))
	data := vec.NewMatrix(120, 8)
	for i := range data.Data {
		data.Data[i] = rng.Float64()
	}
	me, err := NewMutable(data, MutableOptions{
		Options:  Options{Shards: 3, Workers: 2},
		MaxDelta: 1 << 20, // no auto trigger; compaction is explicit below
	})
	if err != nil {
		t.Fatal(err)
	}
	defer me.Close()

	live := map[int]bool{}
	for i := 0; i < data.N; i++ {
		live[i] = true
	}
	rv := func() []float64 {
		v := make([]float64, data.D)
		for i := range v {
			v[i] = rng.Float64()
		}
		return v
	}
	pick := func() int {
		ids := make([]int, 0, len(live))
		for id := range live {
			ids = append(ids, id)
		}
		// Deterministic pick despite map order: smallest-index trick is
		// biased, so sort then sample.
		for i := 1; i < len(ids); i++ {
			for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
				ids[j], ids[j-1] = ids[j-1], ids[j]
			}
		}
		return ids[rng.Intn(len(ids))]
	}
	for step := 0; step < 150; step++ {
		switch rng.Intn(3) {
		case 0:
			id, err := me.Insert(rv())
			if err != nil {
				t.Fatal(err)
			}
			live[id] = true
		case 1:
			id := pick()
			if err := me.Delete(id); err != nil {
				t.Fatal(err)
			}
			delete(live, id)
		case 2:
			if err := me.Update(pick(), rv()); err != nil {
				t.Fatal(err)
			}
		}
	}

	check := func(phase string) {
		t.Helper()
		final, ids := me.Materialize()
		if final.N != len(live) {
			t.Fatalf("%s: materialized %d rows, want %d", phase, final.N, len(live))
		}
		fresh, err := New(final, Options{Shards: 3, Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		defer fresh.Close()
		queries := vec.NewMatrix(20, data.D)
		qrng := rand.New(rand.NewSource(13))
		for i := range queries.Data {
			queries.Data[i] = qrng.Float64()
		}
		got, err := me.SearchBatch(context.Background(), queries, 5)
		if err != nil {
			t.Fatal(err)
		}
		want, err := fresh.SearchBatch(context.Background(), queries, 5)
		if err != nil {
			t.Fatal(err)
		}
		for qi := range want.Results {
			w := want.Results[qi].Neighbors
			g := got.Results[qi].Neighbors
			if len(g) != len(w) {
				t.Fatalf("%s: query %d: got %d neighbors, want %d", phase, qi, len(g), len(w))
			}
			for j := range w {
				// The fresh engine answers in positions of the
				// materialized matrix; map through the id directory
				// (monotone, so canonical tie order is preserved).
				mapped := vec.Neighbor{Index: ids[w[j].Index], Dist: w[j].Dist}
				if g[j] != mapped {
					t.Fatalf("%s: query %d neighbor %d = %+v, want %+v", phase, qi, j, g[j], mapped)
				}
			}
		}
	}

	check("pre-compaction")
	if err := me.Compact(nil); err != nil {
		t.Fatal(err)
	}
	for _, s := range me.Stats() {
		if s.DeltaRows != 0 || s.Tombstones != 0 {
			t.Fatalf("post-compaction stats not clean: %+v", s)
		}
	}
	check("post-compaction")
}

func TestMutableRoutesAcrossShards(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(17))
	data := vec.NewMatrix(10, 4)
	for i := range data.Data {
		data.Data[i] = rng.Float64()
	}
	me, err := NewMutable(data, MutableOptions{Options: Options{Shards: 3}})
	if err != nil {
		t.Fatal(err)
	}
	defer me.Close()
	if me.NumShards() != 3 {
		t.Fatalf("NumShards = %d", me.NumShards())
	}
	// Initial ids are range-routed: update/delete across all of them.
	for id := 0; id < data.N; id += 3 {
		if err := me.Update(id, data.Row(id)); err != nil {
			t.Fatalf("update %d: %v", id, err)
		}
	}
	// Inserted ids are table-routed; after delete the route is gone.
	id, err := me.Insert(data.Row(0))
	if err != nil {
		t.Fatal(err)
	}
	if id != data.N {
		t.Fatalf("first inserted id = %d, want %d", id, data.N)
	}
	if err := me.Delete(id); err != nil {
		t.Fatal(err)
	}
	if err := me.Delete(id); !errors.Is(err, delta.ErrNotFound) {
		t.Fatalf("deleting dead route err = %v", err)
	}
	if err := me.Update(9999, data.Row(0)); !errors.Is(err, delta.ErrNotFound) {
		t.Fatalf("updating unknown id err = %v", err)
	}
}

// TestMutableHammerChurnVsSearch is the delta-compaction race hammer:
// concurrent Insert/Update/Delete against SearchBatch with background
// compaction enabled, run under -race in CI. Results are checked for
// structural sanity (canonical order, live-id membership is impossible
// to assert mid-churn, but distances must be sorted and ids distinct).
func TestMutableHammerChurnVsSearch(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(23))
	data := vec.NewMatrix(96, 6)
	for i := range data.Data {
		data.Data[i] = rng.Float64()
	}
	me, err := NewMutable(data, MutableOptions{
		Options:     Options{Shards: 4, Workers: 4},
		MaxDelta:    8,
		AutoCompact: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer me.Close()

	deadline := time.Now().Add(300 * time.Millisecond)
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			wrng := rand.New(rand.NewSource(seed))
			var mine []int
			for time.Now().Before(deadline) {
				v := make([]float64, data.D)
				for i := range v {
					v[i] = wrng.Float64()
				}
				switch {
				case len(mine) == 0 || wrng.Intn(3) == 0:
					id, err := me.Insert(v)
					if err != nil {
						t.Error(err)
						return
					}
					mine = append(mine, id)
				case wrng.Intn(2) == 0:
					i := wrng.Intn(len(mine))
					if err := me.Update(mine[i], v); err != nil {
						t.Error(err)
						return
					}
				default:
					i := wrng.Intn(len(mine))
					if err := me.Delete(mine[i]); err != nil {
						t.Error(err)
						return
					}
					mine[i] = mine[len(mine)-1]
					mine = mine[:len(mine)-1]
				}
			}
		}(int64(100 + w))
	}
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			qrng := rand.New(rand.NewSource(seed))
			for time.Now().Before(deadline) {
				queries := vec.NewMatrix(4, data.D)
				for i := range queries.Data {
					queries.Data[i] = qrng.Float64()
				}
				res, err := me.SearchBatch(context.Background(), queries, 5)
				if err != nil {
					t.Error(err)
					return
				}
				for _, r := range res.Results {
					nn := r.Neighbors
					for j := 1; j < len(nn); j++ {
						if nn[j].Dist < nn[j-1].Dist ||
							(nn[j].Dist == nn[j-1].Dist && nn[j].Index <= nn[j-1].Index) {
							t.Errorf("non-canonical result order: %v", nn)
							return
						}
					}
				}
			}
		}(int64(200 + r))
	}
	wg.Wait()

	// Quiesce and verify the final state is exactly searchable.
	if err := me.Compact(nil); err != nil {
		t.Fatal(err)
	}
	final, ids := me.Materialize()
	if final.N != len(ids) || final.N == 0 {
		t.Fatalf("materialized %d rows / %d ids", final.N, len(ids))
	}
	q := final.Row(0)
	res, err := me.Search(context.Background(), q, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Neighbors) != 1 || res.Neighbors[0].Dist != 0 || res.Neighbors[0].Index != ids[0] {
		t.Fatalf("self-query after quiesce: %+v, want id %d at dist 0", res.Neighbors, ids[0])
	}
}

// TestFanOutJoinsAllShardErrors pins the join discipline: when several
// shards fail in one fan-out, the caller sees every failed shard in a
// joined error, not just whichever goroutine lost the race — the
// placement layer's quorum accounting depends on seeing them all.
func TestFanOutJoinsAllShardErrors(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(23))
	data := vec.NewMatrix(90, 6)
	for i := range data.Data {
		data.Data[i] = rng.Float64()
	}
	me, err := NewMutable(data, MutableOptions{Options: Options{Shards: 3}})
	if err != nil {
		t.Fatal(err)
	}
	defer me.Close()

	// Sabotage shards 0 and 2 directly; shard 1 stays healthy.
	me.stores[0].Close()
	me.stores[2].Close()

	_, err = me.Search(context.Background(), data.Row(0), 3)
	if err == nil {
		t.Fatal("search over two closed shards succeeded")
	}
	if !errors.Is(err, delta.ErrClosed) {
		t.Fatalf("error not rooted in delta.ErrClosed: %v", err)
	}
	for _, want := range []string{"shard 0", "shard 2"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("joined error omits %q: %v", want, err)
		}
	}
	if strings.Contains(err.Error(), "shard 1") {
		t.Fatalf("healthy shard blamed in %v", err)
	}
}
