package pool

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunProcessesEveryJob(t *testing.T) {
	t.Parallel()
	const jobs = 100
	var done [jobs]int32
	err := Run(context.Background(), jobs, 7, func(w int) (Worker, error) {
		return func(job int) error {
			atomic.AddInt32(&done[job], 1)
			return nil
		}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for job, n := range done {
		if n != 1 {
			t.Fatalf("job %d ran %d times", job, n)
		}
	}
}

func TestRunPerWorkerState(t *testing.T) {
	t.Parallel()
	const jobs, workers = 50, 4
	counts := make([]int, workers) // written only by worker w: no races
	err := Run(context.Background(), jobs, workers, func(w int) (Worker, error) {
		return func(job int) error {
			counts[w]++
			return nil
		}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != jobs {
		t.Fatalf("processed %d jobs, want %d", total, jobs)
	}
}

func TestRunJoinsAllWorkerErrors(t *testing.T) {
	t.Parallel()
	errA := errors.New("worker A failed")
	errB := errors.New("worker B failed")
	var calls int32
	err := Run(context.Background(), 10, 2, func(w int) (Worker, error) {
		if atomic.AddInt32(&calls, 1) == 1 {
			return nil, errA
		}
		return nil, errB
	})
	if !errors.Is(err, errA) || !errors.Is(err, errB) {
		t.Fatalf("joined error must contain both failures, got: %v", err)
	}
}

func TestRunSurvivingWorkersFinishJobs(t *testing.T) {
	t.Parallel()
	boom := errors.New("setup boom")
	var processed int32
	var calls int32
	err := Run(context.Background(), 20, 3, func(w int) (Worker, error) {
		if atomic.AddInt32(&calls, 1) == 1 {
			return nil, boom // one dead worker must not stall the pool
		}
		return func(job int) error {
			atomic.AddInt32(&processed, 1)
			return nil
		}, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("setup error lost: %v", err)
	}
	// A dead worker consumes no jobs, so the survivors handle all of them.
	if n := atomic.LoadInt32(&processed); n != 20 {
		t.Fatalf("surviving workers processed %d of 20 jobs", n)
	}
}

// Per-job accounting on the setup-failure path: when some workers die in
// setup, every job still runs exactly once — none dropped to the dead
// workers, none double-dispatched to the survivors — and the dead workers
// consume nothing. This pins the contract the serving layer relies on
// when a shard's PIM programming fails: totals alone (as in
// TestRunSurvivingWorkersFinishJobs) would not catch a drop+duplicate
// pair that cancels out.
func TestRunSetupFailureExactlyOncePerJob(t *testing.T) {
	t.Parallel()
	const jobs, workers = 200, 5
	boom := errors.New("setup boom")
	var ran [jobs]int32
	byWorker := make([]int32, workers) // written only by worker w
	err := Run(context.Background(), jobs, workers, func(w int) (Worker, error) {
		if w == 1 || w == 3 { // deterministic by worker id, not call order
			return nil, boom
		}
		return func(job int) error {
			atomic.AddInt32(&ran[job], 1)
			byWorker[w]++
			return nil
		}, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("setup error lost: %v", err)
	}
	for job, n := range ran {
		if n != 1 {
			t.Fatalf("job %d ran %d times, want exactly once", job, n)
		}
	}
	for _, w := range []int{1, 3} {
		if byWorker[w] != 0 {
			t.Fatalf("dead worker %d consumed %d jobs", w, byWorker[w])
		}
	}
	var total int32
	for _, c := range byWorker {
		total += c
	}
	if total != jobs {
		t.Fatalf("survivors processed %d of %d jobs", total, jobs)
	}
}

func TestRunAllWorkersDeadDoesNotDeadlock(t *testing.T) {
	t.Parallel()
	boom := errors.New("setup boom")
	err := Run(context.Background(), 1000, 4, func(w int) (Worker, error) {
		return nil, boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("setup error lost: %v", err)
	}
}

func TestRunCancellation(t *testing.T) {
	t.Parallel()
	ctx, cancel := context.WithCancel(context.Background())
	var processed int32
	var once sync.Once
	err := Run(ctx, 10000, 2, func(w int) (Worker, error) {
		return func(job int) error {
			atomic.AddInt32(&processed, 1)
			once.Do(cancel) // cancel after the first job
			return nil
		}, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if n := atomic.LoadInt32(&processed); n == 10000 {
		t.Fatal("cancellation did not stop dispatch")
	}
}

func TestRunDeadline(t *testing.T) {
	t.Parallel()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	err := Run(ctx, 1000000, 1, func(w int) (Worker, error) {
		return func(job int) error {
			time.Sleep(100 * time.Microsecond)
			return nil
		}, nil
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
}

func TestRunEmptyAndClamped(t *testing.T) {
	t.Parallel()
	if err := Run(context.Background(), 0, 4, nil); err != nil {
		t.Fatalf("zero jobs: %v", err)
	}
	// More workers than jobs: workers clamp; setup must run at most jobs times.
	var setups int32
	err := Run(context.Background(), 2, 16, func(w int) (Worker, error) {
		atomic.AddInt32(&setups, 1)
		return func(job int) error { return nil }, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := atomic.LoadInt32(&setups); n > 2 {
		t.Fatalf("%d worker setups for 2 jobs", n)
	}
}

// TestRunHookedCountsProcessedJobs checks JobStart/JobDone fire exactly
// once per processed job and never for jobs drained after cancellation.
func TestRunHookedCountsProcessedJobs(t *testing.T) {
	t.Parallel()
	var started, done, processed int32
	h := Hooks{
		JobStart: func(job int) { atomic.AddInt32(&started, 1) },
		JobDone:  func(job int) { atomic.AddInt32(&done, 1) },
	}
	err := RunHooked(context.Background(), 100, 4, func(w int) (Worker, error) {
		return func(job int) error {
			atomic.AddInt32(&processed, 1)
			return nil
		}, nil
	}, h)
	if err != nil {
		t.Fatal(err)
	}
	if started != 100 || done != 100 || processed != 100 {
		t.Fatalf("started=%d done=%d processed=%d, want 100 each", started, done, processed)
	}

	// Canceled run: hooks fire only for jobs that actually processed.
	started, done, processed = 0, 0, 0
	ctx, cancel := context.WithCancel(context.Background())
	err = RunHooked(ctx, 100000, 2, func(w int) (Worker, error) {
		return func(job int) error {
			if atomic.AddInt32(&processed, 1) == 10 {
				cancel()
			}
			return nil
		}, nil
	}, h)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want Canceled, got %v", err)
	}
	s, d, p := atomic.LoadInt32(&started), atomic.LoadInt32(&done), atomic.LoadInt32(&processed)
	if s != p || d != p {
		t.Fatalf("hooks fired started=%d done=%d for %d processed jobs", s, d, p)
	}
	if p == 100000 {
		t.Fatal("cancellation did not stop dispatch")
	}
}

// TestRunHookedSkipsFailedWorkerDrain: after a worker errors, its drained
// jobs must not fire hooks.
func TestRunHookedSkipsFailedWorkerDrain(t *testing.T) {
	t.Parallel()
	var started int32
	boom := errors.New("boom")
	err := RunHooked(context.Background(), 50, 1, func(w int) (Worker, error) {
		return func(job int) error {
			if job == 4 {
				return boom
			}
			return nil
		}, nil
	}, Hooks{JobStart: func(job int) { atomic.AddInt32(&started, 1) }})
	if !errors.Is(err, boom) {
		t.Fatalf("want boom, got %v", err)
	}
	// Jobs 0..4 started; 5..49 drained unprocessed on the failed worker.
	if n := atomic.LoadInt32(&started); n != 5 {
		t.Fatalf("JobStart fired %d times, want 5", n)
	}
}

// checkExactlyOnce runs RunHooked under the given setup and asserts the
// hook contract the serving layer's queue-depth gauge depends on: every
// job 0..jobs-1 fires exactly one of {JobStart, JobSkip}, JobDone fires
// exactly once per started job, and a gauge incremented per submission
// and decremented in JobStart/JobSkip returns to zero.
func checkExactlyOnce(t *testing.T, ctx context.Context, jobs, workers int, setup Setup) {
	t.Helper()
	started := make([]int32, jobs)
	done := make([]int32, jobs)
	skipped := make([]int32, jobs)
	var gauge atomic.Int64
	gauge.Add(int64(jobs))
	h := Hooks{
		JobStart: func(job int) { atomic.AddInt32(&started[job], 1); gauge.Add(-1) },
		JobDone:  func(job int) { atomic.AddInt32(&done[job], 1) },
		JobSkip:  func(job int) { atomic.AddInt32(&skipped[job], 1); gauge.Add(-1) },
	}
	_ = RunHooked(ctx, jobs, workers, setup, h)
	for job := 0; job < jobs; job++ {
		s, d, k := started[job], done[job], skipped[job]
		if s+k != 1 {
			t.Fatalf("job %d: started=%d skipped=%d, want exactly one of the two", job, s, k)
		}
		if d != s {
			t.Fatalf("job %d: done=%d for started=%d", job, d, s)
		}
	}
	if g := gauge.Load(); g != 0 {
		t.Fatalf("queue gauge leaked: %d (want 0)", g)
	}
}

// TestRunHookedJobSkipExactlyOnce pins the exactly-once accounting across
// every way a job can be abandoned: mid-run cancellation (undispatched
// jobs skip on the dispatcher, in-flight drains skip on workers), a
// worker error (its drained share skips), partial and total setup
// failure, and the clean run (no skips at all). Before JobSkip existed,
// drained jobs fired no hook at all and submission-side gauges leaked.
func TestRunHookedJobSkipExactlyOnce(t *testing.T) {
	t.Parallel()

	t.Run("clean", func(t *testing.T) {
		t.Parallel()
		checkExactlyOnce(t, context.Background(), 200, 4, func(w int) (Worker, error) {
			return func(job int) error { return nil }, nil
		})
	})

	t.Run("cancel-mid-run", func(t *testing.T) {
		t.Parallel()
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		var processed int32
		checkExactlyOnce(t, ctx, 5000, 3, func(w int) (Worker, error) {
			return func(job int) error {
				if atomic.AddInt32(&processed, 1) == 7 {
					cancel()
				}
				return nil
			}, nil
		})
	})

	t.Run("worker-error", func(t *testing.T) {
		t.Parallel()
		checkExactlyOnce(t, context.Background(), 300, 2, func(w int) (Worker, error) {
			return func(job int) error {
				if job == 10 {
					return errors.New("boom")
				}
				return nil
			}, nil
		})
	})

	t.Run("partial-setup-failure", func(t *testing.T) {
		t.Parallel()
		checkExactlyOnce(t, context.Background(), 100, 4, func(w int) (Worker, error) {
			if w%2 == 0 {
				return nil, errors.New("setup boom")
			}
			return func(job int) error { return nil }, nil
		})
	})

	t.Run("all-setup-failure", func(t *testing.T) {
		t.Parallel()
		checkExactlyOnce(t, context.Background(), 500, 4, func(w int) (Worker, error) {
			return nil, errors.New("setup boom")
		})
	})

	t.Run("pre-canceled", func(t *testing.T) {
		t.Parallel()
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		checkExactlyOnce(t, ctx, 50, 2, func(w int) (Worker, error) {
			return func(job int) error { return nil }, nil
		})
	})
}
