// Package pool provides the bounded worker pool shared by the batch and
// serving layers: a fixed number of workers drain an indexed job stream,
// each worker owning private state (searchers reuse internal buffers and
// activity meters are not goroutine-safe, so per-worker state is the
// pattern that keeps the whole suite race-detector clean).
//
// The pool honors context cancellation — dispatch stops and pending jobs
// are skipped once the context is done — and reports every failure: all
// worker errors are combined with errors.Join, so a caller inspecting the
// returned error with errors.Is sees each distinct failure, not just the
// first one.
package pool

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
)

// Worker processes one job index.
type Worker func(job int) error

// Setup builds worker w's private state and returns its job function.
// Setup runs on the worker goroutine, so expensive construction (e.g.
// programming a PIM payload) happens concurrently across workers.
type Setup func(w int) (Worker, error)

// Hooks observes pool execution (all fields optional). JobStart fires on
// the worker goroutine just before a job is processed, JobDone just after.
// JobSkip fires exactly once for every job that was admitted to the run
// but never processed — drained by a failed/canceled worker, or never
// dispatched because dispatch stopped early. Every job 0..jobs-1 thus
// fires exactly one of {JobStart+JobDone, JobSkip}, so gauges that
// increment on submission and decrement in the hooks can never leak
// (regression-tested in pool_test.go). Hook functions must be safe for
// concurrent use — the serving layer points them at atomic gauges (queue
// depth, in-flight jobs).
type Hooks struct {
	JobStart func(job int)
	JobDone  func(job int)
	JobSkip  func(job int)
}

// Run executes jobs 0..jobs-1 across at most workers goroutines.
//
// Dispatch order is 0..jobs-1 but assignment to workers is nondeterministic;
// jobs must be independent. A worker whose Setup fails records its error
// and exits without consuming any jobs — its share goes to the surviving
// workers; if every worker fails setup, dispatch aborts. A worker whose
// Worker call fails records the first error and drains its remaining jobs
// without processing. When ctx is done, dispatch stops and not-yet-started
// jobs are skipped.
//
// The returned error joins the context error (if any) with every worker
// error via errors.Join; nil means every job ran to completion.
func Run(ctx context.Context, jobs, workers int, setup Setup) error {
	return RunHooked(ctx, jobs, workers, setup, Hooks{})
}

// RunHooked is Run with execution hooks (see Hooks).
func RunHooked(ctx context.Context, jobs, workers int, setup Setup, h Hooks) error {
	if jobs <= 0 {
		return nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if workers < 1 {
		workers = 1
	}
	if workers > jobs {
		workers = jobs
	}

	ch := make(chan int)
	errs := make([]error, workers)
	var dead int32
	allDead := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			work, err := setup(w)
			if err != nil {
				errs[w] = err
				if int(atomic.AddInt32(&dead, 1)) == workers {
					close(allDead) // no receivers left: unblock the dispatcher
				}
				return
			}
			for job := range ch {
				if errs[w] != nil || ctx.Err() != nil {
					// Failed or canceled: drain without processing, but
					// still account for the job — exactly one skip.
					if h.JobSkip != nil {
						h.JobSkip(job)
					}
					continue
				}
				if h.JobStart != nil {
					h.JobStart(job)
				}
				if err := work(job); err != nil {
					errs[w] = err
				}
				if h.JobDone != nil {
					h.JobDone(job)
				}
			}
		}(w)
	}
	next := 0
dispatch:
	for ; next < jobs; next++ {
		select {
		case ch <- next:
		case <-ctx.Done():
			break dispatch
		case <-allDead:
			break dispatch
		}
	}
	close(ch)
	wg.Wait()
	// Jobs that were never dispatched are skipped here, after the workers
	// finish, so a job can never be skipped twice (dispatched jobs were
	// either processed or drained-and-skipped on a worker).
	if h.JobSkip != nil {
		for job := next; job < jobs; job++ {
			h.JobSkip(job)
		}
	}
	return errors.Join(append([]error{ctx.Err()}, errs...)...)
}
