// Package pool provides the bounded worker pool shared by the batch and
// serving layers: a fixed number of workers drain an indexed job stream,
// each worker owning private state (searchers reuse internal buffers and
// activity meters are not goroutine-safe, so per-worker state is the
// pattern that keeps the whole suite race-detector clean).
//
// The pool honors context cancellation — dispatch stops and pending jobs
// are skipped once the context is done — and reports every failure: all
// worker errors are combined with errors.Join, so a caller inspecting the
// returned error with errors.Is sees each distinct failure, not just the
// first one.
package pool

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
)

// Worker processes one job index.
type Worker func(job int) error

// Setup builds worker w's private state and returns its job function.
// Setup runs on the worker goroutine, so expensive construction (e.g.
// programming a PIM payload) happens concurrently across workers.
type Setup func(w int) (Worker, error)

// Hooks observes pool execution (all fields optional). JobStart fires on
// the worker goroutine just before a job is processed, JobDone just after
// (neither fires for jobs drained without processing after a failure or
// cancellation). Hook functions must be safe for concurrent use — the
// serving layer points them at atomic gauges (queue depth, in-flight
// jobs).
type Hooks struct {
	JobStart func(job int)
	JobDone  func(job int)
}

// Run executes jobs 0..jobs-1 across at most workers goroutines.
//
// Dispatch order is 0..jobs-1 but assignment to workers is nondeterministic;
// jobs must be independent. A worker whose Setup fails records its error
// and exits without consuming any jobs — its share goes to the surviving
// workers; if every worker fails setup, dispatch aborts. A worker whose
// Worker call fails records the first error and drains its remaining jobs
// without processing. When ctx is done, dispatch stops and not-yet-started
// jobs are skipped.
//
// The returned error joins the context error (if any) with every worker
// error via errors.Join; nil means every job ran to completion.
func Run(ctx context.Context, jobs, workers int, setup Setup) error {
	return RunHooked(ctx, jobs, workers, setup, Hooks{})
}

// RunHooked is Run with execution hooks (see Hooks).
func RunHooked(ctx context.Context, jobs, workers int, setup Setup, h Hooks) error {
	if jobs <= 0 {
		return nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if workers < 1 {
		workers = 1
	}
	if workers > jobs {
		workers = jobs
	}

	ch := make(chan int)
	errs := make([]error, workers)
	var dead int32
	allDead := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			work, err := setup(w)
			if err != nil {
				errs[w] = err
				if int(atomic.AddInt32(&dead, 1)) == workers {
					close(allDead) // no receivers left: unblock the dispatcher
				}
				return
			}
			for job := range ch {
				if errs[w] != nil || ctx.Err() != nil {
					continue // failed or canceled: drain without processing
				}
				if h.JobStart != nil {
					h.JobStart(job)
				}
				if err := work(job); err != nil {
					errs[w] = err
				}
				if h.JobDone != nil {
					h.JobDone(job)
				}
			}
		}(w)
	}
dispatch:
	for job := 0; job < jobs; job++ {
		select {
		case ch <- job:
		case <-ctx.Done():
			break dispatch
		case <-allDead:
			break dispatch
		}
	}
	close(ch)
	wg.Wait()
	return errors.Join(append([]error{ctx.Err()}, errs...)...)
}
