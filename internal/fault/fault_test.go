package fault_test

import (
	"math/rand"
	"testing"

	"pimmine/internal/arch"
	"pimmine/internal/fault"
	"pimmine/internal/pim"
	"pimmine/internal/vec"
)

// testConfig shrinks the crossbars so simulate-mode tests stay fast while
// still exercising weight slicing (8-bit operands in 2-bit cells → 4 cells
// per operand) and multi-chunk payloads (dims > M).
func testConfig() arch.Config {
	cfg := arch.Default()
	cfg.Crossbar.M = 16
	return cfg
}

const testOpBits = 8

// buildPayload programs n×dims random 8-bit vectors into a fresh engine.
func buildPayload(t *testing.T, cfg arch.Config, mode pim.Mode, inj pim.FaultInjector, rows []uint32, n, dims int) (*pim.Engine, *pim.Payload) {
	t.Helper()
	eng, err := pim.NewFaultyEngine(cfg, mode, inj)
	if err != nil {
		t.Fatal(err)
	}
	p, err := eng.ProgramWidth("test/payload", n, dims, 1, testOpBits, func(i int) []uint32 {
		return rows[i*dims : (i+1)*dims]
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng, p
}

func randomRows(rng *rand.Rand, n, dims int) []uint32 {
	rows := make([]uint32, n*dims)
	for i := range rows {
		rows[i] = uint32(rng.Intn(1 << testOpBits))
	}
	return rows
}

// heavyModel injects every fault kind at a high rate.
func heavyModel(seed int64) fault.Model {
	return fault.Model{
		Seed:         seed,
		StuckAt0:     0.02,
		StuckAt1:     0.02,
		Drift:        0.05,
		DriftLevels:  2,
		ReadNoise:    7,
		CrossbarFail: 0.1,
	}
}

// TestExactMatchesSimulate is the core differential property: the
// analytic fault path (exact mode) must be bit-identical to the physical
// one (cell-read hooks inside the bit-sliced crossbar simulator), for the
// same model and seed, across multi-chunk payloads and many queries.
func TestExactMatchesSimulate(t *testing.T) {
	cfg := testConfig()
	const n, dims = 37, 40 // 40 dims > M=16 → 3 chunks per group
	rng := rand.New(rand.NewSource(7))
	rows := randomRows(rng, n, dims)
	model := heavyModel(99)

	engines := make(map[string]*pim.Engine)
	payloads := make(map[string]*pim.Payload)
	for name, mode := range map[string]pim.Mode{"exact": pim.ModeExact, "simulate": pim.ModeSimulate} {
		inj, err := fault.NewInjector(model, cfg.Crossbar)
		if err != nil {
			t.Fatal(err)
		}
		engines[name], payloads[name] = buildPayload(t, cfg, mode, inj, rows, n, dims)
	}

	for q := 0; q < 10; q++ {
		input := randomRows(rng, 1, dims)
		got := map[string][]int64{}
		for name, eng := range engines {
			dst, err := eng.QueryAll(arch.NewMeter(), arch.FuncED, payloads[name], input, nil)
			if err != nil {
				t.Fatal(err)
			}
			got[name] = append([]int64(nil), dst...)
		}
		for i := 0; i < n; i++ {
			if got["exact"][i] != got["simulate"][i] {
				t.Fatalf("query %d vector %d: exact %d != simulate %d",
					q, i, got["exact"][i], got["simulate"][i])
			}
		}
	}
}

// TestCorrectedDotsAdmissible: every corrected dot must be ≥ the true
// integer dot product (the invariant that keeps all lower bounds lower
// bounds and all upper bounds upper bounds).
func TestCorrectedDotsAdmissible(t *testing.T) {
	cfg := testConfig()
	const n, dims = 64, 24
	rng := rand.New(rand.NewSource(21))
	rows := randomRows(rng, n, dims)
	inj, err := fault.NewInjector(heavyModel(5), cfg.Crossbar)
	if err != nil {
		t.Fatal(err)
	}
	eng, p := buildPayload(t, cfg, pim.ModeExact, inj, rows, n, dims)

	for q := 0; q < 20; q++ {
		input := randomRows(rng, 1, dims)
		dst, err := eng.QueryAll(arch.NewMeter(), arch.FuncED, p, input, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			truth := vec.IntDot(rows[i*dims:(i+1)*dims], input)
			if dst[i] < truth {
				t.Fatalf("query %d vector %d: corrected dot %d below true %d", q, i, dst[i], truth)
			}
		}
	}
}

// TestDeterminism: same seed → identical corrected dots; the injector is
// a pure function of (seed, payload, geometry, query).
func TestDeterminism(t *testing.T) {
	cfg := testConfig()
	const n, dims = 20, 16
	rng := rand.New(rand.NewSource(3))
	rows := randomRows(rng, n, dims)
	input := randomRows(rng, 1, dims)

	run := func(seed int64) []int64 {
		inj, err := fault.NewInjector(heavyModel(seed), cfg.Crossbar)
		if err != nil {
			t.Fatal(err)
		}
		eng, p := buildPayload(t, cfg, pim.ModeExact, inj, rows, n, dims)
		dst, err := eng.QueryAll(arch.NewMeter(), arch.FuncED, p, input, nil)
		if err != nil {
			t.Fatal(err)
		}
		return dst
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("vector %d: same seed gave %d then %d", i, a[i], b[i])
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical fault effects (suspicious)")
	}
}

// TestDeadCrossbarSentinel: with certain whole-crossbar failure, every
// dot is the DeadDot sentinel, the injector reports dead tiles before the
// first query (power-on self test), and the meter counts recoveries.
func TestDeadCrossbarSentinel(t *testing.T) {
	cfg := testConfig()
	const n, dims = 10, 8
	rng := rand.New(rand.NewSource(11))
	rows := randomRows(rng, n, dims)
	inj, err := fault.NewInjector(fault.Model{Seed: 1, CrossbarFail: 1}, cfg.Crossbar)
	if err != nil {
		t.Fatal(err)
	}
	eng, p := buildPayload(t, cfg, pim.ModeExact, inj, rows, n, dims)
	if eng.DeadCrossbars() == 0 {
		t.Fatal("DeadCrossbars = 0 before first query; self test missing")
	}
	meter := arch.NewMeter()
	dst, err := eng.QueryAll(meter, arch.FuncED, p, randomRows(rng, 1, dims), nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range dst {
		if d != pim.DeadDot {
			t.Fatalf("vector %d: dot %d, want DeadDot sentinel", i, d)
		}
	}
	if got := meter.Get(arch.FuncED).PIMRecovered; got != int64(n) {
		t.Fatalf("PIMRecovered = %d, want %d", got, n)
	}
	if f, r := eng.FaultCounts(); r != int64(n) || f != 0 {
		t.Fatalf("FaultCounts = (%d, %d), want (0, %d)", f, r, n)
	}
}

// TestFaultMetering: cell faults show up in PIMFaults; a fault-free model
// leaves counters at zero.
func TestFaultMetering(t *testing.T) {
	cfg := testConfig()
	const n, dims = 48, 16
	rng := rand.New(rand.NewSource(17))
	rows := randomRows(rng, n, dims)
	inj, err := fault.NewInjector(fault.Model{Seed: 2, StuckAt0: 0.2}, cfg.Crossbar)
	if err != nil {
		t.Fatal(err)
	}
	eng, p := buildPayload(t, cfg, pim.ModeExact, inj, rows, n, dims)
	meter := arch.NewMeter()
	if _, err := eng.QueryAll(meter, arch.FuncED, p, randomRows(rng, 1, dims), nil); err != nil {
		t.Fatal(err)
	}
	if meter.Get(arch.FuncED).PIMFaults == 0 {
		t.Fatal("20% stuck-at-0 cells but PIMFaults = 0")
	}

	clean, err := fault.NewInjector(fault.Model{Seed: 2}, cfg.Crossbar)
	if err != nil {
		t.Fatal(err)
	}
	eng2, p2 := buildPayload(t, cfg, pim.ModeExact, clean, rows, n, dims)
	m2 := arch.NewMeter()
	if _, err := eng2.QueryAll(m2, arch.FuncED, p2, randomRows(rng, 1, dims), nil); err != nil {
		t.Fatal(err)
	}
	if c := m2.Get(arch.FuncED); c.PIMFaults != 0 || c.PIMRecovered != 0 {
		t.Fatalf("zero model but counters (%d, %d)", c.PIMFaults, c.PIMRecovered)
	}
}

// TestZeroModelIsTransparent: an all-zero model must not perturb any dot.
func TestZeroModelIsTransparent(t *testing.T) {
	cfg := testConfig()
	const n, dims = 16, 20
	rng := rand.New(rand.NewSource(29))
	rows := randomRows(rng, n, dims)
	inj, err := fault.NewInjector(fault.Model{Seed: 77}, cfg.Crossbar)
	if err != nil {
		t.Fatal(err)
	}
	eng, p := buildPayload(t, cfg, pim.ModeExact, inj, rows, n, dims)
	input := randomRows(rng, 1, dims)
	dst, err := eng.QueryAll(arch.NewMeter(), arch.FuncED, p, input, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range dst {
		if truth := vec.IntDot(rows[i*dims:(i+1)*dims], input); dst[i] != truth {
			t.Fatalf("vector %d: zero model changed dot %d → %d", i, truth, dst[i])
		}
	}
}

// TestAppendExtendsFaultMaps: growing an appendable payload keeps the
// exact/simulate differential property — the injector extends its fault
// maps over fresh tiles without rewriting existing ones.
func TestAppendExtendsFaultMaps(t *testing.T) {
	cfg := testConfig()
	const dims, n0, extra = 16, 3, 9 // perGroup = 4 → append crosses groups
	rng := rand.New(rand.NewSource(31))
	rows := randomRows(rng, n0+extra, dims)
	model := heavyModel(13)

	type built struct {
		eng *pim.Engine
		ap  *pim.AppendablePayload
	}
	b := map[string]built{}
	for name, mode := range map[string]pim.Mode{"exact": pim.ModeExact, "simulate": pim.ModeSimulate} {
		inj, err := fault.NewInjector(model, cfg.Crossbar)
		if err != nil {
			t.Fatal(err)
		}
		eng, err := pim.NewFaultyEngine(cfg, mode, inj)
		if err != nil {
			t.Fatal(err)
		}
		ap, err := eng.ProgramAppendable("test/append", n0, n0+extra, dims, 1, testOpBits, func(i int) []uint32 {
			return rows[i*dims : (i+1)*dims]
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ap.Append(extra, func(i int) []uint32 {
			return rows[i*dims : (i+1)*dims]
		}); err != nil {
			t.Fatal(err)
		}
		b[name] = built{eng, ap}
	}

	input := randomRows(rng, 1, dims)
	var exact, sim []int64
	for name, bb := range b {
		dst, err := bb.ap.QueryAll(arch.NewMeter(), arch.FuncED, input, nil)
		if err != nil {
			t.Fatal(err)
		}
		if name == "exact" {
			exact = append([]int64(nil), dst...)
		} else {
			sim = append([]int64(nil), dst...)
		}
	}
	if len(exact) != n0+extra {
		t.Fatalf("got %d dots, want %d", len(exact), n0+extra)
	}
	for i := range exact {
		if exact[i] != sim[i] {
			t.Fatalf("vector %d after append: exact %d != simulate %d", i, exact[i], sim[i])
		}
	}
}

func TestModelValidate(t *testing.T) {
	bad := []fault.Model{
		{StuckAt0: -0.1},
		{StuckAt1: 1.5},
		{StuckAt0: 0.6, StuckAt1: 0.6},
		{Drift: 0.1},                   // DriftLevels missing
		{Drift: 0.1, DriftLevels: 200}, // beyond int8
		{ReadNoise: -1},
		{CrossbarFail: 2},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Fatalf("model %d (%+v) validated", i, m)
		}
	}
	good := heavyModel(1)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	if !good.Enabled() {
		t.Fatal("heavy model reports disabled")
	}
	if (fault.Model{}).Enabled() {
		t.Fatal("zero model reports enabled")
	}
}

func TestDeriveSeedSpreads(t *testing.T) {
	seen := map[int64]bool{}
	for seq := 0; seq < 100; seq++ {
		s := fault.DeriveSeed(42, seq)
		if seen[s] {
			t.Fatalf("DeriveSeed collision at seq %d", seq)
		}
		seen[s] = true
	}
}
