package fault_test

import (
	"testing"

	"pimmine/internal/arch"
	"pimmine/internal/fault"
	"pimmine/internal/pim"
	"pimmine/internal/vec"
)

// FuzzFaultAdmissible fuzzes the exactness-preservation invariant: under
// ANY bounded stuck-at/drift/noise fault pattern — rates, magnitudes, data
// and query all attacker-chosen — every corrected dot product is either
// the DeadDot sentinel or ≥ the true integer dot product. Since every
// PIM lower bound consumes −2·dot and every upper bound +dot, this is
// precisely the property that keeps filter-and-refine exact under faults
// (the widened LB never exceeds the true distance).
//
// It is also a differential fuzzer: the analytic exact-mode fault path
// must agree bit-for-bit with the physical simulate-mode path.
func FuzzFaultAdmissible(f *testing.F) {
	f.Add(int64(1), uint8(5), uint8(5), uint8(12), uint8(2), uint8(9), uint8(0), []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16})
	f.Add(int64(99), uint8(0), uint8(255), uint8(0), uint8(1), uint8(0), uint8(30), []byte{255, 0, 255, 0, 128, 64, 32, 16})
	f.Add(int64(-7), uint8(255), uint8(0), uint8(255), uint8(127), uint8(255), uint8(255), []byte{0, 0, 0, 0, 7, 7, 7, 7, 200, 200})
	f.Add(int64(0), uint8(0), uint8(0), uint8(0), uint8(0), uint8(0), uint8(0), []byte{42})

	f.Fuzz(func(t *testing.T, seed int64, s0, s1, dr, drLvl, noise, xfail uint8, data []byte) {
		if len(data) == 0 {
			return
		}
		model := fault.Model{
			Seed:         seed,
			StuckAt0:     float64(s0) / 255 / 3, // rates sum ≤ 1
			StuckAt1:     float64(s1) / 255 / 3,
			Drift:        float64(dr) / 255 / 3,
			DriftLevels:  int(drLvl%127) + 1,
			ReadNoise:    int64(noise),
			CrossbarFail: float64(xfail) / 255,
		}
		if err := model.Validate(); err != nil {
			t.Fatalf("constructed model invalid: %v", err)
		}

		cfg := arch.Default()
		cfg.Crossbar.M = 8 // tiny tiles: fuzz crosses chunk/group borders cheaply
		const opBits = 8
		dims := len(data)
		if dims > 24 {
			dims = 24
		}
		n := len(data) / dims
		if n < 1 {
			n = 1
		}
		if n > 16 {
			n = 16
		}
		rows := make([]uint32, n*dims)
		for i := range rows {
			rows[i] = uint32(data[i%len(data)])
		}
		input := make([]uint32, dims)
		for i := range input {
			// A distinct-but-derived query exercises noise hashing.
			input[i] = uint32(data[(i*7+3)%len(data)])
		}

		dots := map[string][]int64{}
		for name, mode := range map[string]pim.Mode{"exact": pim.ModeExact, "simulate": pim.ModeSimulate} {
			inj, err := fault.NewInjector(model, cfg.Crossbar)
			if err != nil {
				t.Fatal(err)
			}
			eng, err := pim.NewFaultyEngine(cfg, mode, inj)
			if err != nil {
				t.Fatal(err)
			}
			p, err := eng.ProgramWidth("fuzz", n, dims, 1, opBits, func(i int) []uint32 {
				return rows[i*dims : (i+1)*dims]
			})
			if err != nil {
				t.Fatal(err)
			}
			dst, err := eng.QueryAll(arch.NewMeter(), arch.FuncED, p, input, nil)
			if err != nil {
				t.Fatal(err)
			}
			dots[name] = append([]int64(nil), dst...)
		}

		for i := 0; i < n; i++ {
			if dots["exact"][i] != dots["simulate"][i] {
				t.Fatalf("vector %d: exact %d != simulate %d", i, dots["exact"][i], dots["simulate"][i])
			}
			truth := vec.IntDot(rows[i*dims:(i+1)*dims], input)
			if got := dots["exact"][i]; got < truth {
				t.Fatalf("vector %d: corrected dot %d below true %d (LB would over-prune)", i, got, truth)
			}
		}
	})
}
