// Package fault is a deterministic, seedable fault-injection layer for the
// PIM substrate. It models the failure modes that separate simulated
// accelerators from deployed ones — stuck-at-0/1 cells, bounded
// conductance drift, transient read noise, and whole-crossbar failure —
// and pairs every fault model with a recovery path that keeps
// filter-and-refine exact:
//
//   - Cell faults (stuck-at, drift) are known per cell after programming
//     (ReRAM program-and-verify reads every cell back), so the injector
//     derives, per affected vector, both the exact signed error its faulty
//     cells contribute to a dot product and a non-negative error envelope
//     that bounds it. Corrected dots are returned as faulty + envelope ≥
//     true dot. Since every lower bound of Theorems 1–2 consumes the dot
//     product as −2·dot and every similarity upper bound consumes it as
//     +dot, overestimating the dot keeps all bounds admissible — this
//     extends Theorem 3's quantization-slack argument (the 4d/α + 2d/α²
//     envelope) with a hardware-slack term, and no searcher changes.
//   - Transient read noise (post-ADC, |noise| ≤ ReadNoise) is compensated
//     the same way: the returned dot adds noise + ReadNoise ≥ 0.
//   - A dead crossbar loses its vectors' dots entirely; the injector
//     reports pim.DeadDot for them, a sentinel so large that no bound can
//     prune the object, which forces exact host refinement (never-prune
//     recovery). The serve layer additionally degrades a shard with dead
//     crossbars to the host scan outright.
//
// Everything is a pure function of (Model.Seed, payload name, tile
// coordinates), so fault maps are reproducible across runs and identical
// between exact and simulate engine modes: the analytic error applied in
// exact mode is bit-for-bit the error the bit-sliced crossbar simulator
// produces through its cell-read hooks (property-tested).
package fault

import (
	"fmt"
	"math/bits"
	"sync"

	"pimmine/internal/crossbar"
	"pimmine/internal/pim"
)

// Model configures the injected fault distribution. The zero value injects
// nothing. All rates are per-trial probabilities in [0,1].
type Model struct {
	// Seed drives every pseudo-random draw; equal seeds (with equal
	// geometry) reproduce identical fault maps.
	Seed int64
	// StuckAt0 is the per-cell probability of a cell stuck at level 0
	// (lowest conductance).
	StuckAt0 float64
	// StuckAt1 is the per-cell probability of a cell stuck at the full
	// level 2^CellBits−1.
	StuckAt1 float64
	// Drift is the per-cell probability of a static conductance drift.
	Drift float64
	// DriftLevels bounds a drifted cell's level offset: the observed level
	// is the programmed one shifted by a nonzero offset in
	// [−DriftLevels, +DriftLevels], clamped to the cell's range. Must be
	// ≥ 1 when Drift > 0.
	DriftLevels int
	// ReadNoise bounds the transient post-ADC noise added to every dot
	// product: |noise| ≤ ReadNoise, drawn fresh per (vector, query).
	ReadNoise int64
	// CrossbarFail is the per-tile probability that a whole crossbar is
	// dead (detected at attach time — a power-on self test).
	CrossbarFail float64
}

// Validate checks the model for usability.
func (m Model) Validate() error {
	rates := []struct {
		name string
		v    float64
	}{
		{"StuckAt0", m.StuckAt0}, {"StuckAt1", m.StuckAt1},
		{"Drift", m.Drift}, {"CrossbarFail", m.CrossbarFail},
	}
	for _, r := range rates {
		if r.v < 0 || r.v > 1 || r.v != r.v {
			return fmt.Errorf("fault: %s rate %v outside [0,1]", r.name, r.v)
		}
	}
	if s := m.StuckAt0 + m.StuckAt1 + m.Drift; s > 1 {
		return fmt.Errorf("fault: cell fault rates sum to %v > 1", s)
	}
	if m.Drift > 0 && m.DriftLevels < 1 {
		return fmt.Errorf("fault: Drift %v needs DriftLevels >= 1", m.Drift)
	}
	if m.DriftLevels < 0 || m.DriftLevels > 127 {
		return fmt.Errorf("fault: DriftLevels %d outside [0,127]", m.DriftLevels)
	}
	if m.ReadNoise < 0 {
		return fmt.Errorf("fault: negative ReadNoise %d", m.ReadNoise)
	}
	return nil
}

// Enabled reports whether the model injects any fault at all.
func (m Model) Enabled() bool {
	return m.StuckAt0 > 0 || m.StuckAt1 > 0 || m.Drift > 0 ||
		m.ReadNoise > 0 || m.CrossbarFail > 0
}

// DeriveSeed mixes a base seed with a sequence number, giving each engine
// (e.g. each serve shard) of one framework an independent fault universe
// while staying reproducible from the base seed.
func DeriveSeed(seed int64, seq int) int64 {
	return int64(splitmix(uint64(seed) ^ splitmix(uint64(seq)+0xd1b54a32d192ed03)))
}

// Cell fault kinds.
const (
	kindStuck0 = uint8(iota)
	kindStuck1
	kindDrift
)

// cellFault is one faulty cell of a tile.
type cellFault struct {
	kind  uint8
	drift int8 // signed level offset, kindDrift only
}

// observe maps a programmed level to the level a faulty read returns.
func observe(cf cellFault, level, maxLevel uint16) uint16 {
	switch cf.kind {
	case kindStuck0:
		return 0
	case kindStuck1:
		return maxLevel
	default:
		l := int(level) + int(cf.drift)
		if l < 0 {
			return 0
		}
		if l > int(maxLevel) {
			return maxLevel
		}
		return uint16(l)
	}
}

// vecFault is one faulty cell mapped into payload-vector coordinates: the
// dimension it stores a slice of and the slice's bit position (which is
// also the S&A weight shift — cell k of a group stores operand bits
// [(cpo−1−k)·h, (cpo−k)·h)).
type vecFault struct {
	dim   int32
	shift uint8
	cf    cellFault
}

// tile is the derived fault map of one crossbar.
type tile struct {
	dead  bool
	cells map[int32]cellFault // row*M+col → fault, for the read hook
}

// payloadFaults is the per-payload fault state.
type payloadFaults struct {
	seed    uint64
	covered int                // groups with derived tiles so far
	tiles   map[[2]int]*tile   // (group, chunk) → map
	vecs    map[int][]vecFault // vector index → its faulty cells
	deadGrp map[int]bool       // groups containing a dead tile
}

// Injector implements pim.FaultInjector for one engine. Safe for
// concurrent use: Attach extends state under a write lock, query-path
// reads take a read lock.
type Injector struct {
	model    Model
	spec     crossbar.Spec
	maxLevel uint16

	mu       sync.RWMutex
	payloads map[string]*payloadFaults
	dead     int
}

// NewInjector builds an injector for crossbars of the given geometry.
func NewInjector(m Model, spec crossbar.Spec) (*Injector, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return &Injector{
		model:    m,
		spec:     spec,
		maxLevel: uint16(1)<<uint(spec.CellBits) - 1,
		payloads: make(map[string]*payloadFaults),
	}, nil
}

// Model returns the fault model in effect.
func (in *Injector) Model() Model { return in.model }

// Attach implements pim.FaultInjector: it derives fault maps for every
// tile covering the payload's current N that is not yet mapped. Extension
// is append-only — earlier tiles keep their faults — so re-attaching
// after an append never rewrites history, mirroring how real cell defects
// are discovered once and remembered.
func (in *Injector) Attach(p *pim.Payload) error {
	perGroup, chunks := p.Layout()
	if perGroup <= 0 {
		return fmt.Errorf("fault: payload %q has no tile layout", p.Name)
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	pf := in.payloads[p.Name]
	if pf == nil {
		pf = &payloadFaults{
			seed:    splitmix(uint64(in.model.Seed) ^ hashString(p.Name)),
			tiles:   make(map[[2]int]*tile),
			vecs:    make(map[int][]vecFault),
			deadGrp: make(map[int]bool),
		}
		in.payloads[p.Name] = pf
	}
	groups := p.Groups()
	cpo := in.spec.CellsPerOperand(p.OpBits)
	for g := pf.covered; g < groups; g++ {
		for c := 0; c < chunks; c++ {
			in.deriveTile(pf, p, g, c, perGroup, cpo)
		}
	}
	pf.covered = groups
	return nil
}

// deriveTile generates tile (g, c)'s fault map from its deterministic seed
// and folds the occupied cells into per-vector fault lists. Cells are
// visited in fixed index order, so the per-vector lists — and with them
// the saturation behavior of the error envelope — are reproducible.
func (in *Injector) deriveTile(pf *payloadFaults, p *pim.Payload, g, c, perGroup, cpo int) {
	seed := splitmix(pf.seed ^ splitmix(uint64(g)<<32|uint64(uint32(c))))
	t := &tile{cells: make(map[int32]cellFault)}
	pf.tiles[[2]int{g, c}] = t

	var seq uint64
	next := func() uint64 { seq++; return splitmix(seed + seq) }
	if u01(next()) < in.model.CrossbarFail {
		t.dead = true
		pf.deadGrp[g] = true
		in.dead++
		// A dead tile's cell map is irrelevant: all of its group's dots
		// are replaced wholesale by pim.DeadDot.
		return
	}

	pCell := in.model.StuckAt0 + in.model.StuckAt1 + in.model.Drift
	if pCell <= 0 {
		return
	}
	m := in.spec.M
	// Dimensions this chunk covers (rows beyond it are never programmed or
	// read) and the occupied column span.
	chunkDims := p.Dims - c*m
	if chunkDims > m {
		chunkDims = m
	}
	for row := 0; row < m; row++ {
		for col := 0; col < m; col++ {
			u := u01(next())
			if u >= pCell {
				continue
			}
			var cf cellFault
			switch {
			case u < in.model.StuckAt0:
				cf = cellFault{kind: kindStuck0}
			case u < in.model.StuckAt0+in.model.StuckAt1:
				cf = cellFault{kind: kindStuck1}
			default:
				r := next()
				mag := int8(1 + r%uint64(in.model.DriftLevels))
				if r&(1<<63) != 0 {
					mag = -mag
				}
				cf = cellFault{kind: kindDrift, drift: mag}
			}
			t.cells[int32(row)*int32(m)+int32(col)] = cf
			// Map into vector coordinates when the cell can ever be read:
			// slot v of this group, weight slice k, dimension row of chunk c.
			v, k := col/cpo, col%cpo
			if v >= perGroup || row >= chunkDims {
				continue
			}
			pf.vecs[g*perGroup+v] = append(pf.vecs[g*perGroup+v], vecFault{
				dim:   int32(c*m + row),
				shift: uint8((cpo - 1 - k) * in.spec.CellBits),
				cf:    cf,
			})
		}
	}
}

// TileFault implements pim.FaultInjector: the cell-read hook the simulate
// mode installs on tile (g, c).
func (in *Injector) TileFault(p *pim.Payload, g, c int) crossbar.ReadFault {
	in.mu.RLock()
	pf := in.payloads[p.Name]
	var t *tile
	if pf != nil {
		t = pf.tiles[[2]int{g, c}]
	}
	in.mu.RUnlock()
	if t == nil || len(t.cells) == 0 {
		return nil
	}
	m := int32(in.spec.M)
	maxLevel := in.maxLevel
	cells := t.cells // frozen after derivation
	return func(row, col int, level uint16) uint16 {
		cf, ok := cells[int32(row)*m+int32(col)]
		if !ok {
			return level
		}
		return observe(cf, level, maxLevel)
	}
}

// DeadCrossbars implements pim.FaultInjector.
func (in *Injector) DeadCrossbars() int {
	in.mu.RLock()
	defer in.mu.RUnlock()
	return in.dead
}

// satMax caps the error envelope. An envelope at or beyond the cap cannot
// be proven to dominate the (wrapping) signed error, so the vector is
// handled like a dead-crossbar one: sentinel dot, never pruned, refined
// exactly on the host. Below the cap, Σ|contrib| < 2^59 bounds |delta|,
// so no intermediate wrapped.
const satMax = int64(1) << 59

// Apply implements pim.FaultInjector. For every vector of the batch it
// rewrites dst[i] into an admissible overestimate of the true dot product:
//
//	dst[i] = trueDot + delta + envelope [+ noise + ReadNoise]
//
// where delta is the signed error the vector's faulty cells inject
// (already physically present in dst when simulated; added analytically
// in exact mode — the two are bit-identical by construction) and
// envelope = Σ|per-cell contribution| ≥ |delta|. Vectors in a dead group,
// or whose envelope saturates, get pim.DeadDot instead.
func (in *Injector) Apply(p *pim.Payload, simulated bool, input []uint32, dst []int64) (faulty, recovered int64) {
	in.mu.RLock()
	pf := in.payloads[p.Name]
	in.mu.RUnlock()
	if pf == nil {
		return 0, 0
	}
	perGroup, _ := p.Layout()
	noisy := in.model.ReadNoise > 0
	var inputHash uint64
	if noisy {
		inputHash = hashInput(input)
	}
	for i := range dst {
		if pf.deadGrp[i/perGroup] {
			dst[i] = pim.DeadDot
			recovered++
			continue
		}
		var adj, env int64
		touched := false
		if cfs := pf.vecs[i]; len(cfs) > 0 {
			row := p.Row(i)
			sat := false
			for _, vf := range cfs {
				prog := uint16(row[vf.dim]>>vf.shift) & in.maxLevel
				obs := observe(vf.cf, prog, in.maxLevel)
				d := int64(obs) - int64(prog)
				if d == 0 {
					continue
				}
				touched = true
				// Exact signed error, in the crossbar's wrapping S&A
				// arithmetic: (obs−prog) · input[dim] · 2^shift.
				if !simulated {
					adj += d * int64(input[vf.dim]) << vf.shift
				}
				// Envelope contribution |d|·input·2^shift, saturating.
				mag := d
				if mag < 0 {
					mag = -mag
				}
				hi, lo := bits.Mul64(uint64(mag), uint64(input[vf.dim]))
				if hi != 0 || lo > uint64(satMax)>>vf.shift {
					sat = true
					break
				}
				env += int64(lo) << vf.shift
				if env >= satMax {
					sat = true
					break
				}
			}
			if sat {
				dst[i] = pim.DeadDot
				recovered++
				continue
			}
			adj += env
		}
		if noisy {
			touched = true
			adj += in.noiseFor(pf.seed, i, inputHash) + in.model.ReadNoise
		}
		if touched {
			dst[i] += adj
			faulty++
		}
	}
	return faulty, recovered
}

// noiseFor draws the transient read noise for one (vector, query) pair:
// uniform in [−ReadNoise, +ReadNoise], a pure function of its inputs so
// exact and simulate modes agree bit-for-bit.
func (in *Injector) noiseFor(seed uint64, i int, inputHash uint64) int64 {
	h := splitmix(seed ^ splitmix(uint64(i)+0x2545f4914f6cdd1d) ^ inputHash)
	span := uint64(2*in.model.ReadNoise + 1)
	return int64(h%span) - in.model.ReadNoise
}

// splitmix is the SplitMix64 mixer — the per-draw core of the injector's
// counter-based deterministic randomness.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// u01 maps a 64-bit draw to [0, 1).
func u01(x uint64) float64 { return float64(x>>11) / (1 << 53) }

// hashString is FNV-1a over a string.
func hashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * 1099511628211
	}
	return h
}

// hashInput is FNV-1a over a query vector's words.
func hashInput(input []uint32) uint64 {
	h := uint64(14695981039346656037)
	for _, v := range input {
		h = (h ^ uint64(v&0xff)) * 1099511628211
		h = (h ^ uint64(v>>8&0xff)) * 1099511628211
		h = (h ^ uint64(v>>16&0xff)) * 1099511628211
		h = (h ^ uint64(v>>24&0xff)) * 1099511628211
	}
	return h
}

// Compile-time interface check.
var _ pim.FaultInjector = (*Injector)(nil)
