package knn

import (
	"pimmine/internal/arch"
	"pimmine/internal/bound"
	"pimmine/internal/measure"
	"pimmine/internal/vec"
)

// DeltaScan searches a host-side delta buffer exactly: a brute-force ED
// scan over the (small) delta matrix, optionally pre-filtered by an
// LB_OST index built over the same matrix, capped by the base index's
// current k-th distance so rows that cannot enter the merged global
// top-k are pruned early.
//
// Returned indices are delta-local row numbers; the caller translates
// them to global ids. Exactness requires two tie-handling rules:
//
//   - The cap prune is strict (lb > cap): a delta row whose exact
//     distance TIES the base k-th can still win the merged tie on a
//     smaller global id (updates keep their original — possibly small —
//     id), so only rows provably strictly worse may be dropped. Pass
//     cap = +Inf when the base holds fewer than k results.
//   - Within the delta, rows must be stored in ascending global-id
//     order; then scan order equals id order and TopK's incumbent-wins
//     tie rule yields exactly the (dist, id) total order the merge uses.
func DeltaScan(delta *vec.Matrix, ix *bound.OSTIndex, q []float64, k int, cap float64, meter *arch.Meter) []vec.Neighbor {
	if delta == nil || delta.N == 0 {
		return nil
	}
	top := vec.NewTopK(k)
	var qTail float64
	if ix != nil {
		qTail = ix.QueryTail(q)
	}
	survivors := 0
	for i := 0; i < delta.N; i++ {
		if ix != nil {
			lb := ix.LB(i, q, qTail)
			if lb > cap || lb > top.Threshold() {
				continue
			}
		}
		survivors++
		ed := measure.SqEuclidean(delta.Row(i), q)
		if ed > cap {
			continue
		}
		top.Push(i, ed)
	}
	if meter != nil {
		if ix != nil {
			costBoundScan(meter.C("LBDelta"), int64(delta.N), ix.TransferDims())
		}
		costExactRefine(meter.C(arch.FuncED), int64(survivors), delta.D)
		meter.C(arch.FuncOther).Ops += int64(delta.N)
	}
	return top.Results()
}

// DeltaCost returns the modeled per-query host cost of scanning a delta
// of n rows (bound stage + worst-case full refine) in abstract "work"
// units comparable across deltas; the compactor uses it as the
// query-cost trigger. It intentionally over-approximates (assumes no
// pruning) so compaction fires before real latency degrades.
func DeltaCost(n, d int, tombstones int) float64 {
	if n <= 0 && tombstones <= 0 {
		return 0
	}
	// Bound stage moves d/2+1 operands per row, refine moves d; each
	// tombstone forces the base search to over-fetch one extra result.
	return float64(n)*(float64(d)*1.5+1) + float64(tombstones)*float64(d)
}
