package knn

import (
	"testing"

	"pimmine/internal/arch"
	"pimmine/internal/dataset"
)

func TestClassifierValidation(t *testing.T) {
	data, _ := testData(t, 50, 16)
	s := NewStandard(data)
	if _, err := NewClassifier(nil, []int{1}, 3); err == nil {
		t.Fatal("nil searcher must be rejected")
	}
	if _, err := NewClassifier(s, nil, 3); err == nil {
		t.Fatal("empty labels must be rejected")
	}
	if _, err := NewClassifier(s, []int{1}, 0); err == nil {
		t.Fatal("k=0 must be rejected")
	}
}

// On well-separated clusters, kNN classification recovers the generating
// labels with high accuracy, and the PIM searcher produces identical
// decisions to the host searcher.
func TestClassifierAccuracyAndPIMAgreement(t *testing.T) {
	prof := dataset.Profile{Name: "t", FullN: 600, D: 64, Clusters: 6, Correlation: 0.8, Spread: 0.08}
	ds := dataset.Generate(prof, 600, 31)
	queriesX := ds.Queries(40, 32)

	// Ground truth: each query's generating cluster equals its exact
	// nearest neighbor's label with near-certainty on tight clusters.
	exact := NewStandard(ds.X)
	expected := make([]int, queriesX.N)
	queries := make([][]float64, queriesX.N)
	for i := 0; i < queriesX.N; i++ {
		queries[i] = queriesX.Row(i)
		nn := exact.Search(queries[i], 1, arch.NewMeter())
		expected[i] = ds.Labels[nn[0].Index]
	}

	hostC, err := NewClassifier(exact, ds.Labels, 7)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := hostC.Accuracy(queries, expected, arch.NewMeter())
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.9 {
		t.Fatalf("host classification accuracy %.2f below 0.9 on separated clusters", acc)
	}

	eng := newEngine(t)
	q := defaultQuant(t)
	pimS, err := NewStandardPIM(eng, ds.X, q, ds.X.N)
	if err != nil {
		t.Fatal(err)
	}
	pimC, err := NewClassifier(pimS, ds.Labels, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i, qv := range queries {
		hl, hv := hostC.Classify(qv, arch.NewMeter())
		pl, pv := pimC.Classify(qv, arch.NewMeter())
		if hl != pl || hv != pv {
			t.Fatalf("query %d: host (%d,%d) != PIM (%d,%d)", i, hl, hv, pl, pv)
		}
	}
}

func TestAccuracyValidation(t *testing.T) {
	data, _ := testData(t, 50, 16)
	c, err := NewClassifier(NewStandard(data), make([]int, 50), 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Accuracy([][]float64{data.Row(0)}, []int{0, 1}, arch.NewMeter()); err == nil {
		t.Fatal("length mismatch must be rejected")
	}
	acc, err := c.Accuracy(nil, nil, arch.NewMeter())
	if err != nil || acc != 0 {
		t.Fatalf("empty accuracy = %v, %v", acc, err)
	}
}
