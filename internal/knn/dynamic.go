package knn

import (
	"fmt"

	"pimmine/internal/arch"
	"pimmine/internal/measure"
	"pimmine/internal/pim"
	"pimmine/internal/pimbound"
	"pimmine/internal/quant"
	"pimmine/internal/vec"
)

// DynamicPIM is an insert-capable PIM kNN index — the §VII future-work
// exploration made concrete. It reserves crossbar headroom up front
// (pim.AppendablePayload) so inserts program only fresh cells: zero
// endurance cost on existing data, no re-programming, and searches stay
// single-pass. The filter is LB_PIM-ED at full dimensionality, so the
// reservation must satisfy Theorem 4 for the *reserved* row count.
type DynamicPIM struct {
	data *vec.Matrix // owned copy that grows with Add
	Ix   *pimbound.EDIndex
	pay  *pim.AppendablePayload
	dots []int64
}

// NewDynamicPIM indexes the initial data and reserves headroom for
// reserveRows total rows.
func NewDynamicPIM(eng *pim.Engine, initial *vec.Matrix, q quant.Quantizer, reserveRows int) (*DynamicPIM, error) {
	if initial.N == 0 {
		return nil, fmt.Errorf("knn: dynamic index needs at least one initial row")
	}
	ix := pimbound.BuildED(initial, q)
	pay, err := eng.ProgramAppendable("dynamic-pim/floors", initial.N, reserveRows,
		initial.D, 1, eng.Config().OperandBits, ix.Floor)
	if err != nil {
		return nil, err
	}
	return &DynamicPIM{data: initial.Clone(), Ix: ix, pay: pay}, nil
}

// Name implements Searcher.
func (d *DynamicPIM) Name() string { return "Dynamic-PIM" }

// Len returns the current number of indexed rows.
func (d *DynamicPIM) Len() int { return d.data.N }

// Headroom returns how many more rows fit the reservation.
func (d *DynamicPIM) Headroom() int { return d.pay.CapacityRows - d.data.N }

// Add inserts new rows (values in [0,1]). Only fresh crossbar cells are
// programmed; the modeled programming time accumulates on the payload and
// can be charged to a meter with RecordInsertCost.
func (d *DynamicPIM) Add(rows *vec.Matrix) error {
	if rows.D != d.data.D {
		return fmt.Errorf("knn: adding %d-dim rows to %d-dim index", rows.D, d.data.D)
	}
	if rows.N == 0 {
		return nil
	}
	if rows.N > d.Headroom() {
		return fmt.Errorf("knn: adding %d rows exceeds headroom %d", rows.N, d.Headroom())
	}
	if err := d.Ix.AppendRows(rows); err != nil {
		return err
	}
	// Grow the owned data copy for exact refinement.
	grown := vec.NewMatrix(d.data.N+rows.N, d.data.D)
	copy(grown.Data, d.data.Data)
	copy(grown.Data[d.data.N*d.data.D:], rows.Data)
	d.data = grown
	if _, err := d.pay.Append(rows.N, d.Ix.Floor); err != nil {
		return err
	}
	return nil
}

// RecordInsertCost charges accumulated insert programming time to a meter.
func (d *DynamicPIM) RecordInsertCost(m *arch.Meter) {
	d.pay.RecordAppendCost(m, "LBPIM-ED")
}

// Search filters with LB_PIM-ED over the current contents and refines
// survivors exactly; results match an exact scan of the same contents.
func (d *DynamicPIM) Search(q []float64, k int, meter *arch.Meter) []vec.Neighbor {
	qf := d.Ix.Query(q)
	var err error
	d.dots, err = d.pay.QueryAll(meter, "LBPIM-ED", qf.Floor, d.dots)
	if err != nil {
		panic(fmt.Sprintf("knn: Dynamic-PIM query-all: %v", err))
	}
	top := vec.NewTopK(k)
	survivors := 0
	for i := 0; i < d.data.N; i++ {
		if d.Ix.LB(i, qf, d.dots[i]) > top.Threshold() {
			continue
		}
		survivors++
		top.Push(i, measure.SqEuclidean(d.data.Row(i), q))
	}
	costPIMBound(meter.C("LBPIM-ED"), int64(d.data.N), 2)
	costExactRefine(meter.C(arch.FuncED), int64(survivors), d.data.D)
	meter.C(arch.FuncOther).Ops += int64(d.data.N)
	return top.Results()
}
