package knn

import (
	"testing"

	"pimmine/internal/arch"
	"pimmine/internal/vec"
)

// Zero-allocation regression tests for the steady-state query paths: once
// a searcher is warmed up (scratch buffers sized, meter buckets created),
// SearchAppend must not touch the heap. A regression here silently
// reintroduces per-query GC pressure on the hot path, so any allocation
// fails the test outright.

// searchersUnderTest builds every ED-family searcher over one dataset and
// engine. All of them implement AppendSearcher.
func searchersUnderTest(t *testing.T) []AppendSearcher {
	t.Helper()
	data, _ := testData(t, 300, 64)
	q := defaultQuant(t)
	eng := newEngine(t)
	std := NewStandard(data)
	ost, err := NewOST(data, data.D/2)
	if err != nil {
		t.Fatal(err)
	}
	sm, err := NewSM(data, 16)
	if err != nil {
		t.Fatal(err)
	}
	fnn, err := NewFNN(data)
	if err != nil {
		t.Fatal(err)
	}
	stdPIM, err := NewStandardPIM(eng, data, q, data.N)
	if err != nil {
		t.Fatal(err)
	}
	smPIM, err := NewSMPIM(eng, data, q, 16, data.N)
	if err != nil {
		t.Fatal(err)
	}
	ostPIM, err := NewOSTPIM(eng, data, q, data.D/2, data.N)
	if err != nil {
		t.Fatal(err)
	}
	fnnPIM, err := NewFNNPIM(eng, data, q, data.N)
	if err != nil {
		t.Fatal(err)
	}
	return []AppendSearcher{std, ost, sm, fnn, stdPIM, smPIM, ostPIM, fnnPIM}
}

func TestSearchAppendZeroAllocs(t *testing.T) {
	const k = 10
	data, queries := testData(t, 300, 64)
	_ = data
	searchers := searchersUnderTest(t)
	for _, s := range searchers {
		s := s
		t.Run(s.Name(), func(t *testing.T) {
			meter := arch.NewMeter()
			dst := make([]vec.Neighbor, 0, k)
			// Warm up: size scratch, create meter buckets, grow TopK.
			for i := 0; i < 3; i++ {
				dst = s.SearchAppend(queries.Row(i%queries.N), k, meter, dst[:0])
			}
			allocs := testing.AllocsPerRun(20, func() {
				dst = s.SearchAppend(queries.Row(0), k, meter, dst[:0])
			})
			if allocs != 0 {
				t.Fatalf("%s: steady-state SearchAppend allocated %.1f times per query, want 0", s.Name(), allocs)
			}
			if len(dst) != k {
				t.Fatalf("%s: returned %d neighbors, want %d", s.Name(), len(dst), k)
			}
		})
	}
}

// TestSearchAppendMatchesSearch pins the allocation-free path identical to
// Search: same neighbors, same order, same meter activity.
func TestSearchAppendMatchesSearch(t *testing.T) {
	const k = 7
	_, queries := testData(t, 300, 64)
	for _, s := range searchersUnderTest(t) {
		s := s
		t.Run(s.Name(), func(t *testing.T) {
			var dst []vec.Neighbor
			for qi := 0; qi < queries.N; qi++ {
				m1 := arch.NewMeter()
				m2 := arch.NewMeter()
				want := s.Search(queries.Row(qi), k, m1)
				dst = s.SearchAppend(queries.Row(qi), k, m2, dst[:0])
				if len(dst) != len(want) {
					t.Fatalf("query %d: %d neighbors, Search gave %d", qi, len(dst), len(want))
				}
				for i := range want {
					if dst[i] != want[i] {
						t.Fatalf("query %d pos %d: %+v, Search gave %+v", qi, i, dst[i], want[i])
					}
				}
				for _, fn := range m1.Functions() {
					if m1.Get(fn) != m2.Get(fn) {
						t.Fatalf("query %d: meter %q diverged: %+v vs %+v", qi, fn, m1.Get(fn), m2.Get(fn))
					}
				}
			}
		})
	}
}

// TestSearchBatchPerQueryAllocs pins the batch arena: growing the batch
// must not grow per-query allocations (the fixed overhead — result
// header, arena, meters, pool — is amortized; each extra query costs 0).
func TestSearchBatchPerQueryAllocs(t *testing.T) {
	const k = 5
	data, _ := testData(t, 300, 64)
	prof := 64
	queries := data.Slice(0, prof)
	std := NewStandard(data)
	newSearcher := func() (Searcher, error) { return std, nil }

	run := func(n int) float64 {
		qs := queries.Slice(0, n)
		return testing.AllocsPerRun(5, func() {
			if _, err := SearchBatch(newSearcher, qs, k, 1); err != nil {
				t.Fatal(err)
			}
		})
	}
	run(8) // warm std's scratch
	small, large := run(8), run(64)
	// Per-query cost must be zero: all growth comes from the O(1)-per-call
	// fixed overhead plus the two O(n) arena/result allocations, which
	// differ by a handful of allocs, not by one-per-query.
	if extra := large - small; extra > 8 {
		t.Fatalf("batch of 64 allocates %.0f more than batch of 8 (%.0f vs %.0f); per-query path is allocating", extra, large, small)
	}
}
