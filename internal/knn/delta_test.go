package knn

import (
	"math"
	"math/rand"
	"testing"

	"pimmine/internal/arch"
	"pimmine/internal/bound"
	"pimmine/internal/measure"
	"pimmine/internal/vec"
)

// TestDeltaScanExact checks DeltaScan against a brute-force reference,
// with and without the OST prefilter, across random caps — including
// caps that exactly tie candidate distances, the case the strict-prune
// rule exists for.
func TestDeltaScanExact(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(30)
		d := 2 + rng.Intn(6)
		k := 1 + rng.Intn(5)
		m := vec.NewMatrix(n, d)
		for i := range m.Data {
			// Coarse grid values force exact distance ties.
			m.Data[i] = float64(rng.Intn(4)) / 4
		}
		q := make([]float64, d)
		for i := range q {
			q[i] = float64(rng.Intn(4)) / 4
		}
		var ix *bound.OSTIndex
		if trial%2 == 0 {
			var err error
			ix, err = bound.BuildOST(m, d/2)
			if err != nil {
				t.Fatal(err)
			}
		}
		cap := math.Inf(1)
		if trial%3 == 0 {
			// Pick a cap equal to a real candidate distance.
			cap = measure.SqEuclidean(m.Row(rng.Intn(n)), q)
		}
		meter := arch.NewMeter()
		got := DeltaScan(m, ix, q, k, cap, meter)

		ref := vec.NewTopK(k)
		for i := 0; i < n; i++ {
			ed := measure.SqEuclidean(m.Row(i), q)
			if ed > cap {
				continue
			}
			ref.Push(i, ed)
		}
		want := ref.Results()
		if len(got) != len(want) {
			t.Fatalf("trial %d: len %d != %d (cap=%v)", trial, len(got), len(want), cap)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: got[%d]=%+v want %+v", trial, i, got[i], want[i])
			}
		}
	}
}

func TestDeltaScanEmpty(t *testing.T) {
	t.Parallel()
	if got := DeltaScan(nil, nil, []float64{1}, 3, math.Inf(1), nil); got != nil {
		t.Fatalf("nil delta returned %v", got)
	}
	m := vec.NewMatrix(0, 4)
	if got := DeltaScan(m, nil, make([]float64, 4), 3, math.Inf(1), nil); got != nil {
		t.Fatalf("empty delta returned %v", got)
	}
}

func TestDeltaScanMeters(t *testing.T) {
	t.Parallel()
	m := vec.NewMatrix(8, 4)
	for i := range m.Data {
		m.Data[i] = float64(i%5) / 5
	}
	ix, err := bound.BuildOST(m, 2)
	if err != nil {
		t.Fatal(err)
	}
	meter := arch.NewMeter()
	DeltaScan(m, ix, make([]float64, 4), 3, math.Inf(1), meter)
	if meter.C("LBDelta").SeqBytes == 0 {
		t.Fatal("bound stage recorded no traffic")
	}
	if meter.C(arch.FuncED).Ops == 0 {
		t.Fatal("refine stage recorded no ops")
	}
}
