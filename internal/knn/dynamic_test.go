package knn

import (
	"testing"

	"pimmine/internal/arch"
	"pimmine/internal/dataset"
)

func TestDynamicPIMInsertAndSearch(t *testing.T) {
	prof := dataset.Profile{Name: "t", FullN: 900, D: 48, Clusters: 8, Correlation: 0.8, Spread: 0.1}
	all := dataset.Generate(prof, 900, 55)
	queries := all.Queries(4, 56)
	initialN := 300

	initial := all.X.Clone()
	initial.N = initialN
	initial.Data = initial.Data[:initialN*initial.D]

	eng := newEngine(t)
	q := defaultQuant(t)
	dyn, err := NewDynamicPIM(eng, initial, q, 900)
	if err != nil {
		t.Fatal(err)
	}
	if dyn.Len() != initialN || dyn.Headroom() != 600 {
		t.Fatalf("len=%d headroom=%d", dyn.Len(), dyn.Headroom())
	}

	// checkAgainstScan verifies the dynamic index matches an exact scan of
	// the same logical contents.
	checkAgainstScan := func(n int) {
		t.Helper()
		view := all.X.Clone()
		view.N = n
		view.Data = view.Data[:n*view.D]
		std := NewStandard(view)
		for qi := 0; qi < queries.N; qi++ {
			want := std.Search(queries.Row(qi), 10, arch.NewMeter())
			got := dyn.Search(queries.Row(qi), 10, arch.NewMeter())
			for i := range want {
				if got[i].Dist != want[i].Dist {
					t.Fatalf("n=%d query %d pos %d: %v != %v", n, qi, i, got[i], want[i])
				}
			}
		}
	}
	checkAgainstScan(initialN)

	// Insert the rest in two batches.
	batch1 := all.X.Clone()
	batch1.Data = batch1.Data[initialN*all.X.D : 600*all.X.D]
	batch1.N = 300
	if err := dyn.Add(batch1); err != nil {
		t.Fatal(err)
	}
	checkAgainstScan(600)

	batch2 := all.X.Clone()
	batch2.Data = batch2.Data[600*all.X.D:]
	batch2.N = 300
	if err := dyn.Add(batch2); err != nil {
		t.Fatal(err)
	}
	checkAgainstScan(900)

	if dyn.Headroom() != 0 {
		t.Fatalf("headroom = %d after filling reservation", dyn.Headroom())
	}
	if err := dyn.Add(batch2); err == nil {
		t.Fatal("insert beyond reservation must fail")
	}
	m := arch.NewMeter()
	dyn.RecordInsertCost(m)
	if m.Get("LBPIM-ED").PIMWriteNs <= 0 {
		t.Fatal("insert programming time must be chargeable")
	}
}

func TestDynamicPIMValidation(t *testing.T) {
	data, _ := testData(t, 50, 16)
	eng := newEngine(t)
	q := defaultQuant(t)
	dyn, err := NewDynamicPIM(eng, data, q, 60)
	if err != nil {
		t.Fatal(err)
	}
	bad, _ := testData(t, 5, 8)
	if err := dyn.Add(bad); err == nil {
		t.Fatal("dimension mismatch must be rejected")
	}
	empty := data.Clone()
	empty.N, empty.Data = 0, empty.Data[:0]
	if err := dyn.Add(empty); err != nil {
		t.Fatal("empty add must be a no-op")
	}
}
