// Package knn implements the kNN classification algorithms evaluated in
// §VI-C of the paper and their PIM-optimized counterparts:
//
//	Standard      linear scan with exact ED        (baseline)
//	OST           LB_OST filter + refine           (Liaw et al. 2010)
//	SM            LB_SM filter + refine            (Yi & Faloutsos 2000)
//	FNN           LB_FNN cascade + refine          (Hwang et al. 2012)
//	*-PIM         the same with the bottleneck bound replaced by its
//	              PIM-aware bound computed on the ReRAM array (§V)
//	FNN-PIM-opt   FNN-PIM with §V-D's execution-plan optimization
//
// plus Hamming-distance scans over binary codes (Fig 14) and CS/PCC
// maximum-similarity scans (Fig 13d).
//
// Every algorithm performs the real computation — results are exact and
// integration tests assert each variant returns the same neighbor set as
// the exact scan — while recording modeled hardware activity into an
// arch.Meter for the timing model.
package knn

import (
	"pimmine/internal/arch"
	"pimmine/internal/vec"
)

// Searcher is a kNN algorithm bound to a dataset. Search must append its
// activity to the meter (which may be shared across queries).
type Searcher interface {
	Name() string
	Search(q []float64, k int, meter *arch.Meter) []vec.Neighbor
}

// AppendSearcher is the allocation-free face of a Searcher: SearchAppend
// appends the k nearest neighbors to dst (in the same ascending
// (Dist, Index) order Search returns) and returns the extended slice.
// Searchers reuse internal scratch buffers across calls, so a warmed-up
// searcher performs zero heap allocations per query when dst has capacity
// for k neighbors — the property the alloc regression tests pin. The
// scratch makes SearchAppend non-reentrant: one searcher serves one
// goroutine, exactly as Search always has (SearchBatch builds one per
// worker).
//
// Every searcher in this package implements AppendSearcher, and Search is
// defined as SearchAppend(q, k, meter, nil) — so both entry points return
// identical neighbors and record identical meter activity.
type AppendSearcher interface {
	Searcher
	SearchAppend(q []float64, k int, meter *arch.Meter, dst []vec.Neighbor) []vec.Neighbor
}

// reuseTopK returns t reset for k neighbors, allocating only on first use
// (or when k outgrows the retained heap) — the per-query collector reset
// of every SearchAppend implementation.
func reuseTopK(t *vec.TopK, k int) *vec.TopK {
	if t == nil {
		return vec.NewTopK(k)
	}
	t.Reset(k)
	return t
}

// SearcherFunc adapts a function (plus a name) into a Searcher — the
// closure analogue of http.HandlerFunc, used by tests and by callers
// plugging ad-hoc searchers into the serving layer's Factory.
func SearcherFunc(name string, fn func(q []float64, k int, meter *arch.Meter) []vec.Neighbor) Searcher {
	return funcSearcher{name: name, fn: fn}
}

type funcSearcher struct {
	name string
	fn   func(q []float64, k int, meter *arch.Meter) []vec.Neighbor
}

func (s funcSearcher) Name() string { return s.name }
func (s funcSearcher) Search(q []float64, k int, m *arch.Meter) []vec.Neighbor {
	return s.fn(q, k, m)
}

// StageStat reports one filtering stage of a query: how many candidates
// entered, how many survived, and the per-object data-transfer cost in
// operands — the inputs to Fig 15 and the §V-D plan optimizer.
type StageStat struct {
	Name         string
	In, Out      int
	TransferDims int
}

// PruneRatio returns the fraction of entering candidates the stage pruned.
func (s StageStat) PruneRatio() float64 {
	if s.In == 0 {
		return 0
	}
	return 1 - float64(s.Out)/float64(s.In)
}

// Stager is implemented by filter-and-refine searchers that expose their
// last query's per-stage statistics.
type Stager interface {
	LastStages() []StageStat
}

// Preprocessor is implemented by searchers whose construction does
// offline work with a modeled hardware cost — for the PIM variants,
// programming the quantized payloads onto crossbars. Callers that
// rebuild searchers at runtime (the delta compactor) use it to charge
// re-programming to the meter.
type Preprocessor interface {
	RecordPreprocessing(meter *arch.Meter)
}

// operandBytes is the modeled width of one data operand (32 bits,
// matching arch.Config's default; meters deliberately count bytes so they
// are independent of the configuration object).
const operandBytes = 4

// costBoundScan records the host cost of evaluating a precomputed bound
// against n objects in a sequential scan, with tdims operands transferred
// and ~3 ops consumed per operand, plus a compare/branch per object.
func costBoundScan(c *arch.Counters, n int64, tdims int) {
	c.Ops += n * int64(3*tdims+2)
	c.SeqBytes += n * int64(tdims) * operandBytes
	c.Branches += n
	c.Calls += n
}

// costExactRefine records the host cost of exact d-dimensional ED on n
// surviving candidates. Survivors are visited in ascending index order
// (the scan order), so their traffic still prefetches like a sparse
// sequential stream and is charged at the sequential rate.
func costExactRefine(c *arch.Counters, n int64, d int) {
	c.Ops += n * int64(3*d)
	c.SeqBytes += n * int64(d) * operandBytes
	c.Branches += n
	c.Calls += n
}

// costExactScan records the host cost of exact ED over the whole dataset
// in a sequential scan (the Standard baseline).
func costExactScan(c *arch.Counters, n int64, d int) {
	c.Ops += n * int64(3*d)
	c.SeqBytes += n * int64(d) * operandBytes
	c.Branches += n
	c.Calls += n
}

// costPIMBound records the host-side cost of combining PIM results with
// the precomputed Φ values (function G of Eq. 3): per consulted object the
// CPU moves `operands` values (Fig 8: Φ(p) and the dot product(s); Φ(q) is
// computed once and cached) and spends a handful of ops.
func costPIMBound(c *arch.Counters, n int64, operands int) {
	c.Ops += n * int64(2*operands+4)
	c.SeqBytes += n * int64(operands) * operandBytes
	c.Branches += n
	c.Calls += n
}
