package knn

import (
	"testing"

	"pimmine/internal/arch"
	"pimmine/internal/dataset"
	"pimmine/internal/fault"
	"pimmine/internal/lsh"
	"pimmine/internal/pim"
)

// faultyEngine builds an exact-mode engine with an aggressive cell-fault
// model (no dead crossbars: those are covered by the serve tests).
func faultyEngine(t *testing.T, seed int64) *pim.Engine {
	t.Helper()
	inj, err := fault.NewInjector(fault.Model{
		Seed: seed, StuckAt0: 0.005, StuckAt1: 0.005, Drift: 0.01, DriftLevels: 1, ReadNoise: 5,
	}, arch.Default().Crossbar)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := pim.NewFaultyEngine(arch.Default(), pim.ModeExact, inj)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// Exactness under faults (the extended Theorem 3 claim): every ED PIM
// searcher built on a faulty engine still returns exactly the host scan's
// neighbors, because corrected dots only widen the lower bounds.
func TestEDSearchersExactUnderFaults(t *testing.T) {
	data, queries := testData(t, 400, 64)
	q := defaultQuant(t)
	std := NewStandard(data)

	builds := []struct {
		name  string
		build func(eng *pim.Engine) (Searcher, error)
	}{
		{"Standard-PIM", func(eng *pim.Engine) (Searcher, error) {
			return NewStandardPIM(eng, data, q, data.N)
		}},
		{"FNN-PIM", func(eng *pim.Engine) (Searcher, error) {
			return NewFNNPIM(eng, data, q, data.N)
		}},
		{"OST-PIM", func(eng *pim.Engine) (Searcher, error) {
			return NewOSTPIM(eng, data, q, data.D/2, data.N)
		}},
	}
	for bi, b := range builds {
		s, err := b.build(faultyEngine(t, int64(100+bi)))
		if err != nil {
			t.Fatalf("%s: %v", b.name, err)
		}
		for qi := 0; qi < queries.N; qi++ {
			qv := queries.Row(qi)
			want := std.Search(qv, 10, arch.NewMeter())
			meter := arch.NewMeter()
			got := s.Search(qv, 10, meter)
			assertSameNeighbors(t, b.name+"/faulty", got, want)
		}
	}
}

// HD-PIM under faults switches from exact PIM distances to
// filter-and-refine; results stay bit-identical to the XOR+popcount scan
// and the refinement shows up as random-access traffic.
func TestHDPIMExactUnderFaults(t *testing.T) {
	prof := dataset.Profile{Name: "hd-fault", FullN: 500, D: 64, Clusters: 8, Correlation: 0.1, Spread: 0.3}
	ds := dataset.Generate(prof, 300, 7)
	hasher := lsh.NewHasher(prof.D, 128, 8)
	codes := hasher.HashAll(ds.X)
	qCodes := hasher.HashAll(ds.Queries(4, 9))

	std := NewHDStandard(codes)
	eng := faultyEngine(t, 55)
	hp, err := NewHDPIM(eng, codes, len(codes))
	if err != nil {
		t.Fatal(err)
	}
	var faults int64
	for _, qc := range qCodes {
		want := std.Search(qc, 10, arch.NewMeter())
		meter := arch.NewMeter()
		got := hp.Search(qc, 10, meter)
		assertSameNeighbors(t, "HD-PIM/faulty", got, want)
		c := meter.Get(arch.FuncHD)
		if c.RandBytes == 0 {
			t.Fatal("faulty HD-PIM did not refine any candidate")
		}
		faults += c.PIMFaults
	}
	if faults == 0 {
		t.Fatal("fault model active but PIMFaults = 0 across all queries")
	}
}
