package knn

import (
	"fmt"

	"pimmine/internal/arch"
	"pimmine/internal/pim"
	"pimmine/internal/pimbound"
	"pimmine/internal/quant"
	"pimmine/internal/vec"
)

// ApproxPIM is the *counterpoint* the paper argues against in §II-A:
// GraphR-style direct in-PIM approximation, where the quantized
// fixed-point computation IS the answer — no bound, no refinement. The
// squared distance is estimated entirely from PIM-side quantities as
//
//	ED̂(p,q) = (Φ̂(p̄) + Φ̂(q̄) − 2·⌊p̄⌋·⌊q̄⌋) / α²,  Φ̂(x̄) = Σ ⌊x̄ᵢ⌋²
//
// i.e. the exact formula evaluated on the floored integers. The paper:
// "such precision loss may compromise the accuracy of results in data
// mining tasks (e.g., kNN classification)". This searcher exists so the
// ext-approx experiment can *measure* that recall loss against the exact
// bound-based searchers, across α.
type ApproxPIM struct {
	Data *vec.Matrix
	Ix   *pimbound.EDIndex
	eng  *pim.Engine
	pay  *pim.Payload
	// phiFloor holds Σ⌊p̄ᵢ⌋² per object (the approximation's Φ — distinct
	// from the bound's exact-float Φ).
	phiFloor []float64
	dots     []int64
}

// NewApproxPIM quantizes the dataset and programs the floors. capacityN
// follows the usual Theorem 4 admission check.
func NewApproxPIM(eng *pim.Engine, data *vec.Matrix, q quant.Quantizer, capacityN int) (*ApproxPIM, error) {
	if !eng.Model().Fits(capacityN, data.D, 1) {
		return nil, fmt.Errorf("knn: %d-dim floors for N=%d exceed PIM capacity", data.D, capacityN)
	}
	ix := pimbound.BuildED(data, q)
	a := &ApproxPIM{Data: data, Ix: ix, phiFloor: make([]float64, data.N)}
	for i := 0; i < data.N; i++ {
		var phi float64
		for _, f := range ix.Floor(i) {
			phi += float64(f) * float64(f)
		}
		a.phiFloor[i] = phi
	}
	var err error
	a.pay, err = eng.Program("approx-pim/floors", data.N, data.D, 1, ix.Floor)
	if err != nil {
		return nil, err
	}
	a.eng = eng
	return a, nil
}

// Name implements Searcher.
func (a *ApproxPIM) Name() string { return "Approx-PIM" }

// Search ranks objects purely by the quantized distance estimate. No
// exact refinement happens — that is the point of the counterpoint.
func (a *ApproxPIM) Search(q []float64, k int, meter *arch.Meter) []vec.Neighbor {
	qf := a.Ix.Query(q)
	var qPhi float64
	for _, f := range qf.Floor {
		qPhi += float64(f) * float64(f)
	}
	var err error
	a.dots, err = a.eng.QueryAll(meter, "ED-approx", a.pay, qf.Floor, a.dots)
	if err != nil {
		panic(fmt.Sprintf("knn: Approx-PIM query-all: %v", err))
	}
	alpha2 := a.Ix.Q.Alpha * a.Ix.Q.Alpha
	top := vec.NewTopK(k)
	for i := 0; i < a.Data.N; i++ {
		est := (a.phiFloor[i] + qPhi - 2*float64(a.dots[i])) / alpha2
		top.Push(i, est)
	}
	// Host combine: 2 operands per object, no refinement at all.
	costPIMBound(meter.C("ED-approx"), int64(a.Data.N), 2)
	meter.C(arch.FuncOther).Ops += int64(a.Data.N)
	return top.Results()
}
