package knn

import (
	"testing"

	"pimmine/internal/arch"
	"pimmine/internal/dataset"
	"pimmine/internal/lsh"
	"pimmine/internal/measure"
	"pimmine/internal/pim"
	"pimmine/internal/quant"
	"pimmine/internal/vec"
)

// testData builds a small smooth dataset where bounds have real pruning
// power, plus query vectors.
func testData(t *testing.T, n, d int) (*vec.Matrix, *vec.Matrix) {
	t.Helper()
	prof := dataset.Profile{Name: "test", FullN: n, D: d, Clusters: 8, Correlation: 0.8, Spread: 0.1}
	ds := dataset.Generate(prof, n, 42)
	return ds.X, ds.Queries(5, 43)
}

func newEngine(t *testing.T) *pim.Engine {
	t.Helper()
	eng, err := pim.NewEngine(arch.Default(), pim.ModeExact)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func defaultQuant(t *testing.T) quant.Quantizer {
	t.Helper()
	q, err := quant.New(quant.DefaultAlpha)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// assertSameNeighbors checks that two result sets contain the same
// distance multiset (indices may differ only under exact distance ties).
func assertSameNeighbors(t *testing.T, name string, got, want []vec.Neighbor) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d neighbors, want %d", name, len(got), len(want))
	}
	for i := range want {
		if got[i].Dist != want[i].Dist {
			t.Fatalf("%s: neighbor %d dist %v, want %v", name, i, got[i].Dist, want[i].Dist)
		}
		if got[i].Index != want[i].Index && got[i].Dist != want[i].Dist {
			t.Fatalf("%s: neighbor %d index %d, want %d", name, i, got[i].Index, want[i].Index)
		}
	}
}

// Accuracy preservation (§V-B): every ED searcher returns exactly the
// exact scan's k nearest neighbors.
func TestAllEDSearchersExact(t *testing.T) {
	data, queries := testData(t, 400, 64)
	q := defaultQuant(t)
	eng := newEngine(t)

	std := NewStandard(data)
	ost, err := NewOST(data, data.D/2)
	if err != nil {
		t.Fatal(err)
	}
	sm, err := NewSM(data, 16)
	if err != nil {
		t.Fatal(err)
	}
	fnn, err := NewFNN(data)
	if err != nil {
		t.Fatal(err)
	}
	stdPIM, err := NewStandardPIM(eng, data, q, data.N)
	if err != nil {
		t.Fatal(err)
	}
	fnnPIM, err := NewFNNPIM(eng, data, q, data.N)
	if err != nil {
		t.Fatal(err)
	}
	fnnPIMOpt, err := NewFNNPIMOptimized(eng, data, q, data.N, nil)
	if err != nil {
		t.Fatal(err)
	}
	smPIM, err := NewSMPIM(eng, data, q, 16, data.N)
	if err != nil {
		t.Fatal(err)
	}
	ostPIM, err := NewOSTPIM(eng, data, q, data.D/2, data.N)
	if err != nil {
		t.Fatal(err)
	}

	searchers := []Searcher{ost, sm, fnn, stdPIM, fnnPIM, fnnPIMOpt, smPIM, ostPIM}
	for qi := 0; qi < queries.N; qi++ {
		qv := queries.Row(qi)
		for _, k := range []int{1, 5, 20} {
			want := std.Search(qv, k, arch.NewMeter())
			for _, s := range searchers {
				got := s.Search(qv, k, arch.NewMeter())
				assertSameNeighbors(t, s.Name(), got, want)
			}
		}
	}
}

// Bounds must actually prune on smooth data — otherwise the experiments
// are vacuous.
func TestFiltersPrune(t *testing.T) {
	data, queries := testData(t, 500, 64)
	q := defaultQuant(t)
	eng := newEngine(t)
	fnnPIM, err := NewFNNPIM(eng, data, q, data.N)
	if err != nil {
		t.Fatal(err)
	}
	fnnPIM.Search(queries.Row(0), 10, arch.NewMeter())
	stages := fnnPIM.LastStages()
	if len(stages) == 0 {
		t.Fatal("no stage stats recorded")
	}
	if pr := stages[0].PruneRatio(); pr < 0.3 {
		t.Fatalf("LB_PIM-FNN pruned only %.1f%% on smooth data", pr*100)
	}
}

// Meter accounting: a PIM search must record PIM cycles and buffer bytes,
// and the exact scan must record the full d·b transfer (Fig 8).
func TestMeterAccounting(t *testing.T) {
	data, queries := testData(t, 200, 32)
	std := NewStandard(data)
	m := arch.NewMeter()
	std.Search(queries.Row(0), 5, m)
	ed := m.Get(arch.FuncED)
	if ed.SeqBytes != int64(data.N)*int64(data.D)*4 {
		t.Fatalf("Standard SeqBytes = %d, want %d", ed.SeqBytes, data.N*data.D*4)
	}

	q := defaultQuant(t)
	eng := newEngine(t)
	sp, err := NewStandardPIM(eng, data, q, data.N)
	if err != nil {
		t.Fatal(err)
	}
	m2 := arch.NewMeter()
	sp.Search(queries.Row(0), 5, m2)
	pb := m2.Get(sp.filter.funcName())
	if pb.PIMCycles == 0 || pb.PIMBufBytes == 0 {
		t.Fatalf("Standard-PIM recorded no PIM activity: %+v", pb)
	}
	if m2.Get(arch.FuncED).SeqBytes == 0 {
		t.Fatal("refinement must record memory traffic")
	}
}

func TestStandardPIMUsesTheorem4S(t *testing.T) {
	data, _ := testData(t, 200, 420)
	q := defaultQuant(t)
	eng := newEngine(t)
	// Sized against MSD's full cardinality, Theorem 4 gives s=105.
	sp, err := NewStandardPIM(eng, data, q, 992272)
	if err != nil {
		t.Fatal(err)
	}
	if sp.S() != 105 {
		t.Fatalf("Standard-PIM s = %d, want 105 (paper, MSD)", sp.S())
	}
}

// Preprocessing cost is recorded for PIM variants (Fig 17's input).
func TestRecordPreprocessing(t *testing.T) {
	data, _ := testData(t, 100, 64)
	q := defaultQuant(t)
	eng := newEngine(t)
	sp, err := NewStandardPIM(eng, data, q, data.N)
	if err != nil {
		t.Fatal(err)
	}
	m := arch.NewMeter()
	sp.RecordPreprocessing(m)
	if m.Total().PIMWriteNs <= 0 {
		t.Fatal("preprocessing must charge ReRAM write time")
	}
}

// HD searchers: PIM result is bit-exact with the XOR+popcount scan.
func TestHDSearchersExact(t *testing.T) {
	prof := dataset.Profile{Name: "gist-mini", FullN: 500, D: 64, Clusters: 8, Correlation: 0.1, Spread: 0.3}
	ds := dataset.Generate(prof, 300, 7)
	hasher := lsh.NewHasher(prof.D, 128, 8)
	codes := hasher.HashAll(ds.X)
	queriesX := ds.Queries(4, 9)
	qCodes := hasher.HashAll(queriesX)

	std := NewHDStandard(codes)
	eng := newEngine(t)
	hp, err := NewHDPIM(eng, codes, len(codes))
	if err != nil {
		t.Fatal(err)
	}
	for _, qc := range qCodes {
		want := std.Search(qc, 10, arch.NewMeter())
		got := hp.Search(qc, 10, arch.NewMeter())
		assertSameNeighbors(t, "HD-PIM", got, want)
	}
}

// CS and PCC: the PIM upper-bound filter preserves the exact top-k.
func TestSimSearchersExact(t *testing.T) {
	data, queries := testData(t, 300, 64)
	q := defaultQuant(t)
	for _, kind := range []measure.Kind{measure.CS, measure.PCC} {
		std, err := NewSimStandard(data, kind)
		if err != nil {
			t.Fatal(err)
		}
		eng := newEngine(t)
		pimS, err := NewSimPIM(eng, data, q, kind, data.N)
		if err != nil {
			t.Fatal(err)
		}
		for qi := 0; qi < queries.N; qi++ {
			qv := queries.Row(qi)
			want := std.Search(qv, 10, arch.NewMeter())
			got := pimS.Search(qv, 10, arch.NewMeter())
			assertSameNeighbors(t, "Sim-PIM/"+kind.String(), got, want)
		}
	}
}

func TestSimStandardRejectsED(t *testing.T) {
	data, _ := testData(t, 50, 16)
	if _, err := NewSimStandard(data, measure.ED); err == nil {
		t.Fatal("SimStandard must reject non-similarity kinds")
	}
}

// Determinism: same data, same query → identical results and stages.
func TestSearchDeterminism(t *testing.T) {
	data, queries := testData(t, 300, 64)
	q := defaultQuant(t)
	eng := newEngine(t)
	fnnPIM, err := NewFNNPIM(eng, data, q, data.N)
	if err != nil {
		t.Fatal(err)
	}
	qv := queries.Row(0)
	r1 := fnnPIM.Search(qv, 10, arch.NewMeter())
	s1 := append([]StageStat(nil), fnnPIM.LastStages()...)
	r2 := fnnPIM.Search(qv, 10, arch.NewMeter())
	assertSameNeighbors(t, "determinism", r2, r1)
	for i, st := range fnnPIM.LastStages() {
		if st != s1[i] {
			t.Fatalf("stage %d differs across runs: %+v vs %+v", i, st, s1[i])
		}
	}
}

// SimLEMP: the UB_part filter preserves the exact CS top-k and prunes.
func TestSimLEMPExactAndPrunes(t *testing.T) {
	data, queries := testData(t, 400, 64)
	std, err := NewSimStandard(data, measure.CS)
	if err != nil {
		t.Fatal(err)
	}
	lemp, err := NewSimLEMP(data, data.D/2)
	if err != nil {
		t.Fatal(err)
	}
	for qi := 0; qi < queries.N; qi++ {
		qv := queries.Row(qi)
		want := std.Search(qv, 10, arch.NewMeter())
		got := lemp.Search(qv, 10, arch.NewMeter())
		assertSameNeighbors(t, "LEMP", got, want)
	}
	stages := lemp.LastStages()
	if len(stages) == 0 || stages[0].PruneRatio() <= 0 {
		t.Fatalf("UB_part pruned nothing: %+v", stages)
	}
	if _, err := NewSimLEMP(data, 0); err == nil {
		t.Fatal("invalid head length must be rejected")
	}
}
