package knn

import (
	"errors"
	"sync/atomic"
	"testing"

	"pimmine/internal/arch"
	"pimmine/internal/pim"
)

func TestSearchBatchMatchesSequential(t *testing.T) {
	data, _ := testData(t, 400, 64)
	queries := data // search the dataset against itself for plenty of queries
	seq := NewStandard(data)
	seqMeter := arch.NewMeter()
	want := make([][]int, queries.N)
	for qi := 0; qi < queries.N; qi++ {
		nn := seq.Search(queries.Row(qi), 5, seqMeter)
		for _, n := range nn {
			want[qi] = append(want[qi], n.Index)
		}
	}

	res, err := SearchBatch(func() (Searcher, error) {
		return NewStandard(data), nil
	}, queries, 5, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Neighbors) != queries.N {
		t.Fatalf("got %d result lists", len(res.Neighbors))
	}
	for qi := range want {
		for i, idx := range want[qi] {
			if res.Neighbors[qi][i].Index != idx {
				t.Fatalf("query %d pos %d: %d != %d", qi, i, res.Neighbors[qi][i].Index, idx)
			}
		}
	}
	// Merged meter equals the sequential meter (same total activity).
	if res.Meter.Total() != seqMeter.Total() {
		t.Fatalf("merged meter %+v != sequential %+v", res.Meter.Total(), seqMeter.Total())
	}
}

func TestSearchBatchPIMWorkers(t *testing.T) {
	data, queries := testData(t, 300, 64)
	q := defaultQuant(t)
	// Each worker needs its own engine (payload names are engine-scoped).
	res, err := SearchBatch(func() (Searcher, error) {
		eng, err := pim.NewEngine(arch.Default(), pim.ModeExact)
		if err != nil {
			return nil, err
		}
		return NewStandardPIM(eng, data, q, data.N)
	}, queries, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	exact := NewStandard(data)
	for qi := 0; qi < queries.N; qi++ {
		want := exact.Search(queries.Row(qi), 10, arch.NewMeter())
		for i := range want {
			if res.Neighbors[qi][i].Dist != want[i].Dist {
				t.Fatalf("query %d pos %d inexact", qi, i)
			}
		}
	}
}

func TestSearchBatchErrors(t *testing.T) {
	data, queries := testData(t, 50, 16)
	if _, err := SearchBatch(func() (Searcher, error) {
		return NewStandard(data), nil
	}, queries, 0, 2); err == nil {
		t.Fatal("k=0 must be rejected")
	}
	boom := errors.New("boom")
	if _, err := SearchBatch(func() (Searcher, error) {
		return nil, boom
	}, queries, 5, 2); !errors.Is(err, boom) {
		t.Fatalf("constructor error not propagated: %v", err)
	}
	res, err := SearchBatch(nil, nil, 5, 2)
	if err != nil || len(res.Neighbors) != 0 {
		t.Fatalf("empty batch: %v, %v", res, err)
	}
}

// TestSearchBatchJoinsWorkerErrors: when several workers fail, every
// failure must survive into the returned (joined) error — historically
// only the first non-nil entry was kept.
func TestSearchBatchJoinsWorkerErrors(t *testing.T) {
	_, queries := testData(t, 50, 16)
	errA := errors.New("worker A broke")
	errB := errors.New("worker B broke")
	var calls int32
	_, err := SearchBatch(func() (Searcher, error) {
		if atomic.AddInt32(&calls, 1) == 1 {
			return nil, errA
		}
		return nil, errB
	}, queries, 5, 2)
	if err == nil {
		t.Fatal("two failed workers produced no error")
	}
	if !errors.Is(err, errA) || !errors.Is(err, errB) {
		t.Fatalf("joined error must carry both failures, got: %v", err)
	}
}
