package knn

import (
	"fmt"

	"pimmine/internal/arch"
)

// Classifier turns any Searcher into a kNN classifier: a query takes the
// majority label among its k nearest neighbors (ties resolved toward the
// smaller label for determinism). This is the paper's actual kNN
// classification task; because every Searcher in this package returns the
// exact neighbor set, classification decisions are identical across the
// host and PIM variants.
type Classifier struct {
	Searcher Searcher
	Labels   []int
	K        int
}

// NewClassifier builds a classifier over a labeled dataset. len(Labels)
// must cover every index the searcher can return.
func NewClassifier(s Searcher, labels []int, k int) (*Classifier, error) {
	if s == nil {
		return nil, fmt.Errorf("knn: classifier needs a searcher")
	}
	if len(labels) == 0 {
		return nil, fmt.Errorf("knn: classifier needs labels")
	}
	if k < 1 {
		return nil, fmt.Errorf("knn: classifier needs k >= 1, got %d", k)
	}
	return &Classifier{Searcher: s, Labels: labels, K: k}, nil
}

// Classify returns the majority label among q's K nearest neighbors and
// the vote count it received.
func (c *Classifier) Classify(q []float64, meter *arch.Meter) (label, votes int) {
	nn := c.Searcher.Search(q, c.K, meter)
	counts := make(map[int]int, c.K)
	for _, n := range nn {
		if n.Index < 0 || n.Index >= len(c.Labels) {
			panic(fmt.Sprintf("knn: neighbor index %d outside labels (%d)", n.Index, len(c.Labels)))
		}
		counts[c.Labels[n.Index]]++
	}
	label, votes = -1, -1
	for l, v := range counts {
		if v > votes || (v == votes && l < label) {
			label, votes = l, v
		}
	}
	return label, votes
}

// Accuracy classifies every row of a labeled query set and returns the
// fraction matching the expected labels.
func (c *Classifier) Accuracy(queries [][]float64, expected []int, meter *arch.Meter) (float64, error) {
	if len(queries) != len(expected) {
		return 0, fmt.Errorf("knn: %d queries with %d expected labels", len(queries), len(expected))
	}
	if len(queries) == 0 {
		return 0, nil
	}
	correct := 0
	for i, q := range queries {
		if got, _ := c.Classify(q, meter); got == expected[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(queries)), nil
}
