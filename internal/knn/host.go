package knn

import (
	"fmt"

	"pimmine/internal/arch"
	"pimmine/internal/bound"
	"pimmine/internal/measure"
	"pimmine/internal/vec"
)

// ---------------------------------------------------------------------------
// Standard: exact linear scan.
// ---------------------------------------------------------------------------

// Standard is the exact ED linear scan over a dataset.
type Standard struct {
	Data *vec.Matrix
	top  *vec.TopK
}

// NewStandard builds the baseline scan.
func NewStandard(data *vec.Matrix) *Standard { return &Standard{Data: data} }

// Name implements Searcher.
func (s *Standard) Name() string { return "Standard" }

// Search scans all objects with exact ED.
func (s *Standard) Search(q []float64, k int, meter *arch.Meter) []vec.Neighbor {
	return s.SearchAppend(q, k, meter, nil)
}

// SearchAppend implements AppendSearcher.
func (s *Standard) SearchAppend(q []float64, k int, meter *arch.Meter, dst []vec.Neighbor) []vec.Neighbor {
	s.top = reuseTopK(s.top, k)
	for i := 0; i < s.Data.N; i++ {
		s.top.Push(i, measure.SqEuclidean(s.Data.Row(i), q))
	}
	costExactScan(meter.C(arch.FuncED), int64(s.Data.N), s.Data.D)
	meter.C(arch.FuncOther).Ops += int64(s.Data.N) // heap maintenance
	return s.top.AppendResults(dst)
}

// ---------------------------------------------------------------------------
// OST: LB_OST filter + exact refinement.
// ---------------------------------------------------------------------------

// OST prunes with the orthogonal-search-tree bound before refining.
type OST struct {
	Data   *vec.Matrix
	Ix     *bound.OSTIndex
	top    *vec.TopK
	stages []StageStat
}

// NewOST builds the OST searcher with head length d0 (the paper's baseline
// setting uses half the dimensions; callers may tune).
func NewOST(data *vec.Matrix, d0 int) (*OST, error) {
	ix, err := bound.BuildOST(data, d0)
	if err != nil {
		return nil, err
	}
	return &OST{Data: data, Ix: ix}, nil
}

// Name implements Searcher.
func (o *OST) Name() string { return "OST" }

// LastStages implements Stager.
func (o *OST) LastStages() []StageStat { return o.stages }

// Search filters with LB_OST, then refines survivors with exact ED.
func (o *OST) Search(q []float64, k int, meter *arch.Meter) []vec.Neighbor {
	return o.SearchAppend(q, k, meter, nil)
}

// SearchAppend implements AppendSearcher.
func (o *OST) SearchAppend(q []float64, k int, meter *arch.Meter, dst []vec.Neighbor) []vec.Neighbor {
	qTail := o.Ix.QueryTail(q)
	o.top = reuseTopK(o.top, k)
	top := o.top
	survivors := 0
	for i := 0; i < o.Data.N; i++ {
		if o.Ix.LB(i, q, qTail) > top.Threshold() {
			continue
		}
		survivors++
		top.Push(i, measure.SqEuclidean(o.Data.Row(i), q))
	}
	costBoundScan(meter.C("LBOST"), int64(o.Data.N), o.Ix.TransferDims())
	costExactRefine(meter.C(arch.FuncED), int64(survivors), o.Data.D)
	meter.C(arch.FuncOther).Ops += int64(o.Data.N)
	o.stages = append(o.stages[:0],
		StageStat{Name: "LBOST", In: o.Data.N, Out: survivors, TransferDims: o.Ix.TransferDims()},
		StageStat{Name: "ED", In: survivors, Out: k, TransferDims: o.Data.D})
	return top.AppendResults(dst)
}

// ---------------------------------------------------------------------------
// SM: LB_SM filter + exact refinement.
// ---------------------------------------------------------------------------

// SM prunes with the segmented-mean bound before refining.
type SM struct {
	Data   *vec.Matrix
	Ix     *bound.SMIndex
	top    *vec.TopK
	qMu    []float64 // query segment-mean scratch
	stages []StageStat
}

// NewSM builds the SM searcher with segs segments.
func NewSM(data *vec.Matrix, segs int) (*SM, error) {
	ix, err := bound.BuildSM(data, segs)
	if err != nil {
		return nil, err
	}
	return &SM{Data: data, Ix: ix}, nil
}

// Name implements Searcher.
func (s *SM) Name() string { return "SM" }

// LastStages implements Stager.
func (s *SM) LastStages() []StageStat { return s.stages }

// Search filters with LB_SM, then refines survivors with exact ED.
func (s *SM) Search(q []float64, k int, meter *arch.Meter) []vec.Neighbor {
	return s.SearchAppend(q, k, meter, nil)
}

// SearchAppend implements AppendSearcher.
func (s *SM) SearchAppend(q []float64, k int, meter *arch.Meter, dst []vec.Neighbor) []vec.Neighbor {
	if s.qMu == nil {
		s.qMu = make([]float64, s.Ix.Segs)
	}
	if err := s.Ix.QueryMuInto(q, s.qMu); err != nil {
		panic(fmt.Sprintf("knn: SM query: %v", err)) // shape mismatch is a caller bug
	}
	s.top = reuseTopK(s.top, k)
	top := s.top
	survivors := 0
	for i := 0; i < s.Data.N; i++ {
		if s.Ix.LB(i, s.qMu) > top.Threshold() {
			continue
		}
		survivors++
		top.Push(i, measure.SqEuclidean(s.Data.Row(i), q))
	}
	costBoundScan(meter.C("LBSM"), int64(s.Data.N), s.Ix.TransferDims())
	costExactRefine(meter.C(arch.FuncED), int64(survivors), s.Data.D)
	meter.C(arch.FuncOther).Ops += int64(s.Data.N)
	s.stages = append(s.stages[:0],
		StageStat{Name: "LBSM", In: s.Data.N, Out: survivors, TransferDims: s.Ix.TransferDims()},
		StageStat{Name: "ED", In: survivors, Out: k, TransferDims: s.Data.D})
	return top.AppendResults(dst)
}

// ---------------------------------------------------------------------------
// FNN: cascade of LB_FNN bounds of increasing granularity + refinement.
// ---------------------------------------------------------------------------

// fnnQStats is one granularity's query-side segment statistics, reused
// across queries by the cascaded searchers.
type fnnQStats struct{ mu, sigma []float64 }

// FNN applies the paper's three-level LB_FNN cascade (granularities near
// d/64, d/16, d/4 — Fig 12a) before exact refinement.
type FNN struct {
	Data   *vec.Matrix
	Levels []*bound.FNNIndex // ascending granularity

	names   []string // per-level meter bucket / stage names
	top     *vec.TopK
	qs      []fnnQStats
	entered []int
	stages  []StageStat
}

// NewFNN builds the FNN searcher with the standard cascade for the data's
// dimensionality.
func NewFNN(data *vec.Matrix) (*FNN, error) {
	levels := bound.FNNLevels(data.D)
	return NewFNNWithLevels(data, levels[:])
}

// NewFNNWithLevels builds the cascade with explicit segment counts
// (ascending). Duplicate granularities are collapsed.
func NewFNNWithLevels(data *vec.Matrix, segCounts []int) (*FNN, error) {
	f := &FNN{Data: data}
	seen := map[int]bool{}
	for _, segs := range segCounts {
		if seen[segs] {
			continue
		}
		seen[segs] = true
		ix, err := bound.BuildFNN(data, segs)
		if err != nil {
			return nil, err
		}
		f.Levels = append(f.Levels, ix)
	}
	if len(f.Levels) == 0 {
		return nil, fmt.Errorf("knn: FNN needs at least one granularity")
	}
	for _, ix := range f.Levels {
		f.names = append(f.names, fmt.Sprintf("LBFNN-%d", ix.Segs))
		f.qs = append(f.qs, fnnQStats{mu: make([]float64, ix.Segs), sigma: make([]float64, ix.Segs)})
	}
	f.entered = make([]int, len(f.Levels)+1)
	return f, nil
}

// Name implements Searcher.
func (f *FNN) Name() string { return "FNN" }

// LastStages implements Stager.
func (f *FNN) LastStages() []StageStat { return f.stages }

// Search runs the cascade. Each level is evaluated lazily: an object only
// reaches level j+1 if level j failed to prune it, exactly as in Fig 12(a).
func (f *FNN) Search(q []float64, k int, meter *arch.Meter) []vec.Neighbor {
	return f.SearchAppend(q, k, meter, nil)
}

// SearchAppend implements AppendSearcher.
func (f *FNN) SearchAppend(q []float64, k int, meter *arch.Meter, dst []vec.Neighbor) []vec.Neighbor {
	for li, ix := range f.Levels {
		if err := ix.QueryStatsInto(q, f.qs[li].mu, f.qs[li].sigma); err != nil {
			panic(fmt.Sprintf("knn: FNN query: %v", err))
		}
	}
	f.top = reuseTopK(f.top, k)
	top := f.top
	entered := f.entered
	for i := range entered {
		entered[i] = 0
	}
	f.stages = f.stages[:0]
	for i := 0; i < f.Data.N; i++ {
		pruned := false
		for li, ix := range f.Levels {
			entered[li]++
			if ix.LB(i, f.qs[li].mu, f.qs[li].sigma) > top.Threshold() {
				pruned = true
				break
			}
		}
		if pruned {
			continue
		}
		entered[len(f.Levels)]++
		top.Push(i, measure.SqEuclidean(f.Data.Row(i), q))
	}
	for li, ix := range f.Levels {
		costBoundScan(meter.C(f.names[li]), int64(entered[li]), ix.TransferDims())
		f.stages = append(f.stages, StageStat{
			Name: f.names[li], In: entered[li], Out: entered[li+1], TransferDims: ix.TransferDims(),
		})
	}
	survivors := entered[len(f.Levels)]
	costExactRefine(meter.C(arch.FuncED), int64(survivors), f.Data.D)
	meter.C(arch.FuncOther).Ops += int64(f.Data.N)
	f.stages = append(f.stages, StageStat{Name: "ED", In: survivors, Out: k, TransferDims: f.Data.D})
	return top.AppendResults(dst)
}
