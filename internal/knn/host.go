package knn

import (
	"fmt"

	"pimmine/internal/arch"
	"pimmine/internal/bound"
	"pimmine/internal/measure"
	"pimmine/internal/vec"
)

// ---------------------------------------------------------------------------
// Standard: exact linear scan.
// ---------------------------------------------------------------------------

// Standard is the exact ED linear scan over a dataset.
type Standard struct {
	Data *vec.Matrix
}

// NewStandard builds the baseline scan.
func NewStandard(data *vec.Matrix) *Standard { return &Standard{Data: data} }

// Name implements Searcher.
func (s *Standard) Name() string { return "Standard" }

// Search scans all objects with exact ED.
func (s *Standard) Search(q []float64, k int, meter *arch.Meter) []vec.Neighbor {
	top := vec.NewTopK(k)
	for i := 0; i < s.Data.N; i++ {
		top.Push(i, measure.SqEuclidean(s.Data.Row(i), q))
	}
	costExactScan(meter.C(arch.FuncED), int64(s.Data.N), s.Data.D)
	meter.C(arch.FuncOther).Ops += int64(s.Data.N) // heap maintenance
	return top.Results()
}

// ---------------------------------------------------------------------------
// OST: LB_OST filter + exact refinement.
// ---------------------------------------------------------------------------

// OST prunes with the orthogonal-search-tree bound before refining.
type OST struct {
	Data   *vec.Matrix
	Ix     *bound.OSTIndex
	stages []StageStat
}

// NewOST builds the OST searcher with head length d0 (the paper's baseline
// setting uses half the dimensions; callers may tune).
func NewOST(data *vec.Matrix, d0 int) (*OST, error) {
	ix, err := bound.BuildOST(data, d0)
	if err != nil {
		return nil, err
	}
	return &OST{Data: data, Ix: ix}, nil
}

// Name implements Searcher.
func (o *OST) Name() string { return "OST" }

// LastStages implements Stager.
func (o *OST) LastStages() []StageStat { return o.stages }

// Search filters with LB_OST, then refines survivors with exact ED.
func (o *OST) Search(q []float64, k int, meter *arch.Meter) []vec.Neighbor {
	qTail := o.Ix.QueryTail(q)
	top := vec.NewTopK(k)
	survivors := 0
	for i := 0; i < o.Data.N; i++ {
		if o.Ix.LB(i, q, qTail) > top.Threshold() {
			continue
		}
		survivors++
		top.Push(i, measure.SqEuclidean(o.Data.Row(i), q))
	}
	costBoundScan(meter.C("LBOST"), int64(o.Data.N), o.Ix.TransferDims())
	costExactRefine(meter.C(arch.FuncED), int64(survivors), o.Data.D)
	meter.C(arch.FuncOther).Ops += int64(o.Data.N)
	o.stages = []StageStat{
		{Name: "LBOST", In: o.Data.N, Out: survivors, TransferDims: o.Ix.TransferDims()},
		{Name: "ED", In: survivors, Out: k, TransferDims: o.Data.D},
	}
	return top.Results()
}

// ---------------------------------------------------------------------------
// SM: LB_SM filter + exact refinement.
// ---------------------------------------------------------------------------

// SM prunes with the segmented-mean bound before refining.
type SM struct {
	Data   *vec.Matrix
	Ix     *bound.SMIndex
	stages []StageStat
}

// NewSM builds the SM searcher with segs segments.
func NewSM(data *vec.Matrix, segs int) (*SM, error) {
	ix, err := bound.BuildSM(data, segs)
	if err != nil {
		return nil, err
	}
	return &SM{Data: data, Ix: ix}, nil
}

// Name implements Searcher.
func (s *SM) Name() string { return "SM" }

// LastStages implements Stager.
func (s *SM) LastStages() []StageStat { return s.stages }

// Search filters with LB_SM, then refines survivors with exact ED.
func (s *SM) Search(q []float64, k int, meter *arch.Meter) []vec.Neighbor {
	qMu, err := s.Ix.QueryMu(q)
	if err != nil {
		panic(fmt.Sprintf("knn: SM query: %v", err)) // shape mismatch is a caller bug
	}
	top := vec.NewTopK(k)
	survivors := 0
	for i := 0; i < s.Data.N; i++ {
		if s.Ix.LB(i, qMu) > top.Threshold() {
			continue
		}
		survivors++
		top.Push(i, measure.SqEuclidean(s.Data.Row(i), q))
	}
	costBoundScan(meter.C("LBSM"), int64(s.Data.N), s.Ix.TransferDims())
	costExactRefine(meter.C(arch.FuncED), int64(survivors), s.Data.D)
	meter.C(arch.FuncOther).Ops += int64(s.Data.N)
	s.stages = []StageStat{
		{Name: "LBSM", In: s.Data.N, Out: survivors, TransferDims: s.Ix.TransferDims()},
		{Name: "ED", In: survivors, Out: k, TransferDims: s.Data.D},
	}
	return top.Results()
}

// ---------------------------------------------------------------------------
// FNN: cascade of LB_FNN bounds of increasing granularity + refinement.
// ---------------------------------------------------------------------------

// FNN applies the paper's three-level LB_FNN cascade (granularities near
// d/64, d/16, d/4 — Fig 12a) before exact refinement.
type FNN struct {
	Data   *vec.Matrix
	Levels []*bound.FNNIndex // ascending granularity
	stages []StageStat
}

// NewFNN builds the FNN searcher with the standard cascade for the data's
// dimensionality.
func NewFNN(data *vec.Matrix) (*FNN, error) {
	levels := bound.FNNLevels(data.D)
	return NewFNNWithLevels(data, levels[:])
}

// NewFNNWithLevels builds the cascade with explicit segment counts
// (ascending). Duplicate granularities are collapsed.
func NewFNNWithLevels(data *vec.Matrix, segCounts []int) (*FNN, error) {
	f := &FNN{Data: data}
	seen := map[int]bool{}
	for _, segs := range segCounts {
		if seen[segs] {
			continue
		}
		seen[segs] = true
		ix, err := bound.BuildFNN(data, segs)
		if err != nil {
			return nil, err
		}
		f.Levels = append(f.Levels, ix)
	}
	if len(f.Levels) == 0 {
		return nil, fmt.Errorf("knn: FNN needs at least one granularity")
	}
	return f, nil
}

// Name implements Searcher.
func (f *FNN) Name() string { return "FNN" }

// LastStages implements Stager.
func (f *FNN) LastStages() []StageStat { return f.stages }

// Search runs the cascade. Each level is evaluated lazily: an object only
// reaches level j+1 if level j failed to prune it, exactly as in Fig 12(a).
func (f *FNN) Search(q []float64, k int, meter *arch.Meter) []vec.Neighbor {
	type qstats struct{ mu, sigma []float64 }
	qs := make([]qstats, len(f.Levels))
	for li, ix := range f.Levels {
		mu, sigma, err := ix.QueryStats(q)
		if err != nil {
			panic(fmt.Sprintf("knn: FNN query: %v", err))
		}
		qs[li] = qstats{mu, sigma}
	}
	top := vec.NewTopK(k)
	entered := make([]int, len(f.Levels)+1)
	f.stages = f.stages[:0]
	for i := 0; i < f.Data.N; i++ {
		pruned := false
		for li, ix := range f.Levels {
			entered[li]++
			if ix.LB(i, qs[li].mu, qs[li].sigma) > top.Threshold() {
				pruned = true
				break
			}
		}
		if pruned {
			continue
		}
		entered[len(f.Levels)]++
		top.Push(i, measure.SqEuclidean(f.Data.Row(i), q))
	}
	for li, ix := range f.Levels {
		name := fmt.Sprintf("LBFNN-%d", ix.Segs)
		costBoundScan(meter.C(name), int64(entered[li]), ix.TransferDims())
		f.stages = append(f.stages, StageStat{
			Name: name, In: entered[li], Out: entered[li+1], TransferDims: ix.TransferDims(),
		})
	}
	survivors := entered[len(f.Levels)]
	costExactRefine(meter.C(arch.FuncED), int64(survivors), f.Data.D)
	meter.C(arch.FuncOther).Ops += int64(f.Data.N)
	f.stages = append(f.stages, StageStat{Name: "ED", In: survivors, Out: k, TransferDims: f.Data.D})
	return top.Results()
}
