package knn

import (
	"context"
	"fmt"

	"pimmine/internal/arch"
	"pimmine/internal/obs"
	"pimmine/internal/vec"
)

// ContextSearcher is implemented by searchers that emit observability
// spans into a context-carried trace (internal/obs): the per-query span
// tree decomposes a search the same way §IV's profiling decomposes time —
// bound evaluation, PIM dot products, exact refinement. SearchCtx returns
// exactly what Search returns; with no active trace in ctx it degrades to
// a plain Search.
type ContextSearcher interface {
	Searcher
	SearchCtx(ctx context.Context, q []float64, k int, meter *arch.Meter) []vec.Neighbor
}

// SearchTraced runs s under the context's trace when supported: the
// serving layer calls this so per-shard spans gain searcher children
// without every Searcher implementation changing.
func SearchTraced(ctx context.Context, s Searcher, q []float64, k int, meter *arch.Meter) []vec.Neighbor {
	if cs, ok := s.(ContextSearcher); ok && obs.SpanFromContext(ctx) != nil {
		return cs.SearchCtx(ctx, q, k, meter)
	}
	return s.Search(q, k, meter)
}

// stageAttrs renders one StageStat as span attributes.
func stageAttrs(st StageStat) []obs.Attr {
	return []obs.Attr{
		obs.A("in", st.In), obs.A("out", st.Out),
		obs.A("pruned", fmt.Sprintf("%.1f%%", 100*st.PruneRatio())),
		obs.A("transfer_dims", st.TransferDims),
	}
}

// hostStageSpans derives bound-eval and refine children from a completed
// host search's stage statistics (the stages are interleaved in one scan
// loop, so their wall time is not separable; counts and modeled transfer
// dims carry the breakdown instead).
func hostStageSpans(sp *obs.Span, stages []StageStat) {
	if sp == nil || len(stages) == 0 {
		return
	}
	be := sp.AddChild("bound-eval", 0)
	for _, st := range stages[:len(stages)-1] {
		be.Annotate(st.Name, stageAttrs(st)...)
	}
	last := stages[len(stages)-1]
	be.AddChild("refine", 0, stageAttrs(last)...)
}

// SearchCtx implements ContextSearcher: the exact scan is pure
// refinement.
func (s *Standard) SearchCtx(ctx context.Context, q []float64, k int, meter *arch.Meter) []vec.Neighbor {
	_, sp := obs.StartSpan(ctx, "knn."+s.Name())
	defer sp.End()
	nn := s.Search(q, k, meter)
	sp.AddChild("refine", 0, obs.A("in", s.Data.N), obs.A("out", k), obs.A("transfer_dims", s.Data.D))
	return nn
}

// SearchCtx implements ContextSearcher.
func (o *OST) SearchCtx(ctx context.Context, q []float64, k int, meter *arch.Meter) []vec.Neighbor {
	_, sp := obs.StartSpan(ctx, "knn."+o.Name())
	defer sp.End()
	nn := o.Search(q, k, meter)
	hostStageSpans(sp, o.stages)
	return nn
}

// SearchCtx implements ContextSearcher.
func (s *SM) SearchCtx(ctx context.Context, q []float64, k int, meter *arch.Meter) []vec.Neighbor {
	_, sp := obs.StartSpan(ctx, "knn."+s.Name())
	defer sp.End()
	nn := s.Search(q, k, meter)
	hostStageSpans(sp, s.stages)
	return nn
}

// SearchCtx implements ContextSearcher.
func (f *FNN) SearchCtx(ctx context.Context, q []float64, k int, meter *arch.Meter) []vec.Neighbor {
	_, sp := obs.StartSpan(ctx, "knn."+f.Name())
	defer sp.End()
	nn := f.Search(q, k, meter)
	hostStageSpans(sp, f.stages)
	return nn
}

// Compile-time interface checks for the traced searchers.
var (
	_ ContextSearcher = (*Standard)(nil)
	_ ContextSearcher = (*OST)(nil)
	_ ContextSearcher = (*SM)(nil)
	_ ContextSearcher = (*FNN)(nil)
	_ ContextSearcher = (*StandardPIM)(nil)
	_ ContextSearcher = (*FNNPIM)(nil)
	_ ContextSearcher = (*SMPIM)(nil)
	_ ContextSearcher = (*OSTPIM)(nil)
)
