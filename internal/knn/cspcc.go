package knn

import (
	"fmt"

	"pimmine/internal/arch"
	"pimmine/internal/measure"
	"pimmine/internal/pim"
	"pimmine/internal/pimbound"
	"pimmine/internal/quant"
	"pimmine/internal/vec"
)

// Maximum-similarity search under CS or PCC (Fig 13d): the k most similar
// objects are the k with the largest similarity, so internally we search
// on negated similarity with the same TopK machinery.

// SimStandard is the exact linear scan under CS or PCC.
type SimStandard struct {
	Data *vec.Matrix
	Kind measure.Kind // measure.CS or measure.PCC
}

// NewSimStandard builds the exact similarity scan. kind must be CS or PCC.
func NewSimStandard(data *vec.Matrix, kind measure.Kind) (*SimStandard, error) {
	if kind != measure.CS && kind != measure.PCC {
		return nil, fmt.Errorf("knn: SimStandard needs CS or PCC, got %v", kind)
	}
	return &SimStandard{Data: data, Kind: kind}, nil
}

// Name implements Searcher.
func (s *SimStandard) Name() string { return "Standard" }

// Search scans all objects exactly; Neighbor.Dist holds the negated
// similarity so smaller = more similar.
func (s *SimStandard) Search(q []float64, k int, meter *arch.Meter) []vec.Neighbor {
	top := vec.NewTopK(k)
	fn := arch.FuncCS
	for i := 0; i < s.Data.N; i++ {
		var sim float64
		if s.Kind == measure.CS {
			sim = measure.Cosine(s.Data.Row(i), q)
		} else {
			sim = measure.Pearson(s.Data.Row(i), q)
			fn = arch.FuncPCC
		}
		top.Push(i, -sim)
	}
	c := meter.C(fn)
	n, d := int64(s.Data.N), s.Data.D
	c.Ops += n * int64(4*d)
	c.ALUOps += n * 2 // sqrt + division per object
	c.SeqBytes += n * int64(d) * operandBytes
	c.Branches += n
	c.Calls += n
	meter.C(arch.FuncOther).Ops += n
	return top.Results()
}

// SimPIM filters with the PIM upper bound UB_PIM-CS / UB_PIM-PCC (§V-B)
// before exact refinement: objects whose upper-bounded similarity cannot
// reach the current k-th best are pruned without touching their vectors.
type SimPIM struct {
	Data   *vec.Matrix
	Kind   measure.Kind
	Ix     *pimbound.CSIndex
	eng    *pim.Engine
	pay    *pim.Payload
	dots   []int64
	stages []StageStat
}

// NewSimPIM quantizes the dataset and programs the floor payload. The
// full d dims are needed for the inner-product bound, so Theorem 4 must
// admit them at full dimensionality (CS/PCC experiments run on datasets
// where this holds; otherwise an error is returned).
func NewSimPIM(eng *pim.Engine, data *vec.Matrix, q quant.Quantizer, kind measure.Kind, capacityN int) (*SimPIM, error) {
	if kind != measure.CS && kind != measure.PCC {
		return nil, fmt.Errorf("knn: SimPIM needs CS or PCC, got %v", kind)
	}
	if !eng.Model().Fits(capacityN, data.D, 1) {
		return nil, fmt.Errorf("knn: %d-dim floors for N=%d exceed PIM capacity", data.D, capacityN)
	}
	ix := pimbound.BuildCS(data, q)
	a := &SimPIM{Data: data, Kind: kind, Ix: ix, eng: eng}
	var err error
	a.pay, err = eng.Program(fmt.Sprintf("sim-pim/%v", kind), data.N, data.D, 1, ix.Floor)
	if err != nil {
		return nil, err
	}
	return a, nil
}

// Name implements Searcher.
func (a *SimPIM) Name() string { return "Standard-PIM" }

// LastStages implements Stager.
func (a *SimPIM) LastStages() []StageStat { return a.stages }

// RecordPreprocessing charges offline payload programming to the meter.
func (a *SimPIM) RecordPreprocessing(meter *arch.Meter) {
	pim.RecordProgramCost(meter, a.boundName(), a.pay)
}

func (a *SimPIM) boundName() string {
	if a.Kind == measure.CS {
		return "UBPIM-CS"
	}
	return "UBPIM-PCC"
}

// Search prunes with the PIM upper bound and refines survivors exactly.
func (a *SimPIM) Search(q []float64, k int, meter *arch.Meter) []vec.Neighbor {
	qf := a.Ix.Query(q)
	var err error
	a.dots, err = a.eng.QueryAll(meter, a.boundName(), a.pay, qf.Floor, a.dots)
	if err != nil {
		panic(fmt.Sprintf("knn: SimPIM query-all: %v", err))
	}
	top := vec.NewTopK(k)
	survivors := 0
	exactFn := arch.FuncCS
	if a.Kind == measure.PCC {
		exactFn = arch.FuncPCC
	}
	for i := 0; i < a.Data.N; i++ {
		var ub float64
		if a.Kind == measure.CS {
			ub = a.Ix.UBCS(i, qf, a.dots[i])
		} else {
			ub = a.Ix.UBPCC(i, qf, a.dots[i])
		}
		// Prune when even the upper bound cannot beat the k-th best
		// (threshold holds negated similarity).
		if -ub > top.Threshold() {
			continue
		}
		survivors++
		var sim float64
		if a.Kind == measure.CS {
			sim = measure.Cosine(a.Data.Row(i), q)
		} else {
			sim = measure.Pearson(a.Data.Row(i), q)
		}
		top.Push(i, -sim)
	}
	// Per consultation: Φ values and the dot product (Fig 8) — 3 operands
	// (dot, Σ⌊p̄⌋, norm/Φa; the query side is cached).
	costPIMBound(meter.C(a.boundName()), int64(a.Data.N), 3)
	n := int64(survivors)
	c := meter.C(exactFn)
	c.Ops += n * int64(4*a.Data.D)
	c.ALUOps += n * 2
	c.SeqBytes += n * int64(a.Data.D) * operandBytes
	c.Branches += n
	c.Calls += n
	meter.C(arch.FuncOther).Ops += int64(a.Data.N)
	a.stages = []StageStat{
		{Name: a.boundName(), In: a.Data.N, Out: survivors, TransferDims: 3},
		{Name: exactFn, In: survivors, Out: k, TransferDims: a.Data.D},
	}
	return top.Results()
}
