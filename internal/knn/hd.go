package knn

import (
	"fmt"

	"pimmine/internal/arch"
	"pimmine/internal/measure"
	"pimmine/internal/pim"
	"pimmine/internal/pimbound"
	"pimmine/internal/vec"
)

// HDSearcher is a kNN algorithm over binary codes (Fig 14's workload).
type HDSearcher interface {
	Name() string
	Search(q measure.BitVector, k int, meter *arch.Meter) []vec.Neighbor
}

// ---------------------------------------------------------------------------
// HDStandard: exact Hamming linear scan. §II-C notes no bound technique
// significantly beats a linear scan for kNN on HD, so the scan is the
// baseline and PIM accelerates the scan itself.
// ---------------------------------------------------------------------------

// HDStandard scans packed codes with XOR+popcount.
type HDStandard struct {
	Codes []measure.BitVector
}

// NewHDStandard builds the baseline Hamming scan.
func NewHDStandard(codes []measure.BitVector) *HDStandard { return &HDStandard{Codes: codes} }

// Name implements HDSearcher.
func (h *HDStandard) Name() string { return "Standard" }

// Search scans all codes exactly.
func (h *HDStandard) Search(q measure.BitVector, k int, meter *arch.Meter) []vec.Neighbor {
	top := vec.NewTopK(k)
	for i, c := range h.Codes {
		top.Push(i, float64(measure.Hamming(c, q)))
	}
	// Conventional cost: the whole code (d bits) streams from memory per
	// object; XOR+popcount+add per 64-bit word.
	n := int64(len(h.Codes))
	if n > 0 {
		d := h.Codes[0].Bits
		words := int64((d + 63) / 64)
		c := meter.C(arch.FuncHD)
		c.SeqBytes += n * int64(d) / 8
		c.Ops += n * words * 3
		c.Branches += n
		c.Calls += n
	}
	meter.C(arch.FuncOther).Ops += n
	return top.Results()
}

// ---------------------------------------------------------------------------
// HD-PIM: Table 4's exact PIM decomposition of the Hamming distance in
// its single-payload form (see pimbound). Binary operands are exact
// integers, so there is no refinement step at all.
// ---------------------------------------------------------------------------

// HDPIM is the PIM-accelerated exact Hamming scan. It uses the
// single-payload form HD(p,q) = Ones(p) + Ones(q) − 2·p·q (see
// pimbound.HDIndex): one 1-bit crossbar payload, one dot-product pass per
// query, two operands (Φ(p) and the dot product) moved per object — the
// paper's "data transfer of 64-bit" per object.
type HDPIM struct {
	Ix      *pimbound.HDIndex
	eng     *pim.Engine
	payBits *pim.Payload
	dots    []int64
}

// NewHDPIM programs the single code payload as 1-bit operands: binary
// codes pack 32× denser than quantized integer vectors and need no weight
// slicing (one cell per bit), which is how Fig 14's 10M 1024-bit codes
// fit the 2GB PIM array. The capacity check uses the full array for
// binary payloads, since the weight-slicing periphery the default
// utilization reserves is not needed at 1-bit operands.
func NewHDPIM(eng *pim.Engine, codes []measure.BitVector, capacityN int) (*HDPIM, error) {
	ix, err := pimbound.BuildHD(codes)
	if err != nil {
		return nil, err
	}
	if ix.D == 0 {
		return nil, fmt.Errorf("knn: HD-PIM needs at least one code")
	}
	model := eng.Model()
	model.Utilization = 1.0
	if !model.FitsB(capacityN, ix.D, 1, 1) {
		return nil, fmt.Errorf("knn: %d-bit codes for N=%d exceed PIM capacity", ix.D, capacityN)
	}
	a := &HDPIM{Ix: ix, eng: eng}
	a.payBits, err = eng.ProgramWidth("hd-pim/bits", len(codes), ix.D, 1, 1, func(i int) []uint32 {
		return ix.Bits[i*ix.D : (i+1)*ix.D]
	})
	if err != nil {
		return nil, err
	}
	return a, nil
}

// Name implements HDSearcher.
func (a *HDPIM) Name() string { return "Standard-PIM" }

// RecordPreprocessing charges offline payload programming to the meter.
func (a *HDPIM) RecordPreprocessing(meter *arch.Meter) {
	pim.RecordProgramCost(meter, arch.FuncHD, a.payBits)
}

// Search computes exact Hamming distances entirely from PIM dot products.
//
// Under a fault injector (pim.Engine.Faulty) the corrected dots
// overestimate the true dot products, so HD1 degrades from an exact value
// to a lower bound; the search then switches to filter-and-refine — prune
// with the bound, recompute survivors' Hamming distances on the host —
// which keeps results bit-identical to the exact scan.
func (a *HDPIM) Search(q measure.BitVector, k int, meter *arch.Meter) []vec.Neighbor {
	qf := a.Ix.Query(q)
	qOnes := q.Ones()
	var err error
	a.dots, err = a.eng.QueryAll(meter, arch.FuncHD, a.payBits, qf.Bits, a.dots)
	if err != nil {
		panic(fmt.Sprintf("knn: HD-PIM query-all: %v", err))
	}
	top := vec.NewTopK(k)
	n := len(a.dots)
	if a.eng.Faulty() {
		var refined int64
		words := int64((a.Ix.D + 63) / 64)
		for i := 0; i < n; i++ {
			lb := float64(a.Ix.HD1(i, qOnes, a.dots[i]))
			if lb > top.Threshold() {
				continue
			}
			top.Push(i, float64(measure.Hamming(a.Ix.Codes[i], q)))
			refined++
		}
		// Refinement cost: survivors' codes are fetched with random access
		// and re-scanned on the host.
		c := meter.C(arch.FuncHD)
		c.RandBytes += refined * int64(a.Ix.D) / 8
		c.Ops += refined * words * 3
	} else {
		for i := 0; i < n; i++ {
			top.Push(i, float64(a.Ix.HD1(i, qOnes, a.dots[i])))
		}
	}
	// Host combine: two 32-bit operands per object — the dot product and
	// Φ(p)=Ones(p) (the paper's "data transfer of 64-bit" for HD) — plus
	// two adds and a shift.
	c := meter.C(arch.FuncHD)
	c.SeqBytes += int64(n) * 8
	c.Ops += int64(n) * 3
	c.Branches += int64(n)
	c.Calls += int64(n)
	meter.C(arch.FuncOther).Ops += int64(n)
	return top.Results()
}
