package knn

import (
	"pimmine/internal/arch"
	"pimmine/internal/bound"
	"pimmine/internal/measure"
	"pimmine/internal/vec"
)

// SimLEMP is the host-side bound-based baseline for maximum cosine
// similarity search, built on Table 3's UB_part (Teflioudi et al., LEMP):
// CS(p,q) ≤ UB_part(p,q) / (‖p‖‖q‖), so objects whose bounded similarity
// cannot reach the current k-th best are pruned before the exact
// computation. This is the CS analogue of the OST/SM/FNN ED baselines —
// §II-C: "Prior works focus on devising upper bound UB ... such as
// UB_part".
type SimLEMP struct {
	Data   *vec.Matrix
	Ix     *bound.PartIndex
	stages []StageStat
}

// NewSimLEMP builds the searcher with head length d0.
func NewSimLEMP(data *vec.Matrix, d0 int) (*SimLEMP, error) {
	ix, err := bound.BuildPart(data, d0)
	if err != nil {
		return nil, err
	}
	return &SimLEMP{Data: data, Ix: ix}, nil
}

// Name implements Searcher.
func (s *SimLEMP) Name() string { return "LEMP" }

// LastStages implements Stager.
func (s *SimLEMP) LastStages() []StageStat { return s.stages }

// Search returns the k most cosine-similar objects (Neighbor.Dist holds
// the negated similarity, matching SimStandard).
func (s *SimLEMP) Search(q []float64, k int, meter *arch.Meter) []vec.Neighbor {
	qTail := s.Ix.QueryTail(q)
	qNorm := vec.Norm(q)
	top := vec.NewTopK(k)
	survivors := 0
	for i := 0; i < s.Data.N; i++ {
		var ub float64
		if pn := s.Ix.Norm[i]; pn > 0 && qNorm > 0 {
			ub = s.Ix.UBDot(i, q, qTail) / (pn * qNorm)
		}
		if -ub > top.Threshold() {
			continue
		}
		survivors++
		top.Push(i, -measure.Cosine(s.Data.Row(i), q))
	}
	costBoundScan(meter.C("UBpart"), int64(s.Data.N), s.Ix.TransferDims())
	n := int64(survivors)
	c := meter.C(arch.FuncCS)
	c.Ops += n * int64(4*s.Data.D)
	c.ALUOps += n * 2
	c.SeqBytes += n * int64(s.Data.D) * operandBytes
	c.Branches += n
	c.Calls += n
	meter.C(arch.FuncOther).Ops += int64(s.Data.N)
	s.stages = []StageStat{
		{Name: "UBpart", In: s.Data.N, Out: survivors, TransferDims: s.Ix.TransferDims()},
		{Name: arch.FuncCS, In: survivors, Out: k, TransferDims: s.Data.D},
	}
	return top.Results()
}

var _ Searcher = (*SimLEMP)(nil)
