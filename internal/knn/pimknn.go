package knn

import (
	"context"
	"fmt"
	"time"

	"pimmine/internal/arch"
	"pimmine/internal/bound"
	"pimmine/internal/measure"
	"pimmine/internal/obs"
	"pimmine/internal/pim"
	"pimmine/internal/pimbound"
	"pimmine/internal/quant"
	"pimmine/internal/vec"
)

// fnnFilter wraps an LB_PIM-FNN payload pair (⌊µ⌋ and ⌊σ⌋ crossbar
// payloads, Fig 10) and evaluates Theorem 2's bound for every object.
type fnnFilter struct {
	ix    *pimbound.FNNIndex
	eng   *pim.Engine
	muPay *pim.Payload
	sgPay *pim.Payload
	fname string // cached funcName, so the hot path never fmt.Sprintfs

	// Steady-state scratch: the QueryAllParallel argument slices, the
	// query feature buffers and the dot-product destinations are built
	// once so prepare performs zero heap allocations per query.
	pays     []*pim.Payload
	inputs   [][]uint32
	dsts     [][]int64
	qMu, qSg []uint32
	dotsMu   []int64
	dotsSg   []int64
}

// newFNNFilter quantizes the dataset's segment statistics at granularity
// segs and programs both payloads.
func newFNNFilter(eng *pim.Engine, data *vec.Matrix, q quant.Quantizer, segs int, tag string) (*fnnFilter, error) {
	ix, err := pimbound.BuildFNN(data, q, segs)
	if err != nil {
		return nil, err
	}
	f := &fnnFilter{ix: ix, eng: eng, fname: fmt.Sprintf("LBPIM-FNN-%d", segs)}
	f.muPay, err = eng.Program(tag+"/mu", data.N, segs, 2, ix.MuFloor)
	if err != nil {
		return nil, err
	}
	f.sgPay, err = eng.Program(tag+"/sigma", data.N, segs, 2, ix.SigmaFloor)
	if err != nil {
		return nil, err
	}
	f.pays = []*pim.Payload{f.muPay, f.sgPay}
	f.inputs = make([][]uint32, 2)
	f.dsts = make([][]int64, 2)
	f.qMu = make([]uint32, segs)
	f.qSg = make([]uint32, segs)
	return f, nil
}

// funcName is the meter bucket / stage name for this filter.
func (f *fnnFilter) funcName() string { return f.fname }

// prepare runs the query's PIM passes and returns the query features;
// bounds are then available for every object via lb. The ⌊µ⌋ and ⌊σ⌋
// payloads live in disjoint crossbar groups (Fig 10's crossbar a /
// crossbar b), so both dot products come out of one concurrent pass
// (§V-C's parallel function groups).
func (f *fnnFilter) prepare(q []float64, meter *arch.Meter) (pimbound.FNNQuery, error) {
	qf, err := f.ix.QueryInto(q, f.qMu, f.qSg)
	if err != nil {
		return pimbound.FNNQuery{}, err
	}
	f.inputs[0], f.inputs[1] = qf.MuFloor, qf.SigmaFloor
	f.dsts[0], f.dsts[1] = f.dotsMu, f.dotsSg
	dsts, err := f.eng.QueryAllParallel(meter, f.fname, f.pays, f.inputs, f.dsts)
	if err != nil {
		return pimbound.FNNQuery{}, err
	}
	f.dotsMu, f.dotsSg = dsts[0], dsts[1]
	return qf, nil
}

func (f *fnnFilter) lb(i int, qf pimbound.FNNQuery) float64 {
	return f.ix.LB(i, qf, f.dotsMu[i], f.dotsSg[i])
}

// hostOperands is the per-consultation transfer: Φ(p̂) plus two dot
// products (Φ(q̂) is cached) — Fig 8's 3·b bits.
func (f *fnnFilter) hostOperands() int { return 3 }

// recordProgram charges the offline programming to a meter.
func (f *fnnFilter) recordProgram(meter *arch.Meter) {
	pim.RecordProgramCost(meter, f.funcName(), f.muPay)
	pim.RecordProgramCost(meter, f.funcName(), f.sgPay)
}

// ---------------------------------------------------------------------------
// Standard-PIM: linear scan with a single LB_PIM-FNN filter at the
// Theorem 4 dimensionality, then exact refinement. Matches §VI-C's
// Standard-PIM (e.g. s=105 on MSD, s=50 on ImageNet when sized against
// the full dataset cardinalities).
// ---------------------------------------------------------------------------

// StandardPIM is the PIM-optimized linear scan.
type StandardPIM struct {
	Data     *vec.Matrix
	filter   *fnnFilter
	spanName string
	top      *vec.TopK
	stages   []StageStat
}

// NewStandardPIM sizes the compressed dimensionality with Theorem 4
// against capacityN objects (pass the dataset's full-scale cardinality to
// reproduce the paper's constraint; the generated data may be smaller) and
// programs the payloads.
func NewStandardPIM(eng *pim.Engine, data *vec.Matrix, q quant.Quantizer, capacityN int) (*StandardPIM, error) {
	s := eng.Model().ChooseS(capacityN, pim.Divisors(data.D), 2)
	if s == 0 {
		return nil, fmt.Errorf("knn: no compressed dimensionality of d=%d fits the PIM array for N=%d", data.D, capacityN)
	}
	f, err := newFNNFilter(eng, data, q, s, "standard-pim")
	if err != nil {
		return nil, err
	}
	return &StandardPIM{Data: data, filter: f, spanName: "knn.Standard-PIM"}, nil
}

// S returns the Theorem 4 compressed dimensionality in use.
func (s *StandardPIM) S() int { return s.filter.ix.Segs }

// Name implements Searcher.
func (s *StandardPIM) Name() string { return "Standard-PIM" }

// LastStages implements Stager.
func (s *StandardPIM) LastStages() []StageStat { return s.stages }

// RecordPreprocessing charges offline payload programming to the meter.
func (s *StandardPIM) RecordPreprocessing(meter *arch.Meter) { s.filter.recordProgram(meter) }

// Search filters with LB_PIM-FNN and refines survivors exactly.
func (s *StandardPIM) Search(q []float64, k int, meter *arch.Meter) []vec.Neighbor {
	return s.searchAppend(context.Background(), q, k, meter, nil)
}

// SearchAppend implements AppendSearcher.
func (s *StandardPIM) SearchAppend(q []float64, k int, meter *arch.Meter, dst []vec.Neighbor) []vec.Neighbor {
	return s.searchAppend(context.Background(), q, k, meter, dst)
}

// SearchCtx implements ContextSearcher: Search with per-phase spans
// (pim-dot, bound-eval, refine) emitted into the context's trace.
func (s *StandardPIM) SearchCtx(ctx context.Context, q []float64, k int, meter *arch.Meter) []vec.Neighbor {
	return s.searchAppend(ctx, q, k, meter, nil)
}

func (s *StandardPIM) searchAppend(ctx context.Context, q []float64, k int, meter *arch.Meter, dst []vec.Neighbor) []vec.Neighbor {
	_, sp := obs.StartSpan(ctx, s.spanName)
	defer sp.End()
	pd := sp.StartChild("pim-dot")
	qf, err := s.filter.prepare(q, meter)
	if err != nil {
		panic(fmt.Sprintf("knn: Standard-PIM prepare: %v", err))
	}
	if pd != nil {
		pd.SetAttr("func", s.filter.funcName())
		pd.SetAttr("dots", 2*s.Data.N)
	}
	pd.End()
	be := sp.StartChild("bound-eval")
	traced := sp != nil
	var refineDur time.Duration
	s.top = reuseTopK(s.top, k)
	top := s.top
	survivors := 0
	for i := 0; i < s.Data.N; i++ {
		if s.filter.lb(i, qf) > top.Threshold() {
			continue
		}
		survivors++
		if traced {
			t0 := time.Now()
			top.Push(i, measure.SqEuclidean(s.Data.Row(i), q))
			refineDur += time.Since(t0)
		} else {
			top.Push(i, measure.SqEuclidean(s.Data.Row(i), q))
		}
	}
	fn := s.filter.funcName()
	if traced {
		be.Annotate(fn, obs.A("in", s.Data.N), obs.A("out", survivors))
		be.AddChild("refine", refineDur, obs.A("in", survivors), obs.A("out", k), obs.A("transfer_dims", s.Data.D))
		be.End()
	}
	costPIMBound(meter.C(fn), int64(s.Data.N), s.filter.hostOperands())
	costExactRefine(meter.C(arch.FuncED), int64(survivors), s.Data.D)
	meter.C(arch.FuncOther).Ops += int64(s.Data.N)
	s.stages = append(s.stages[:0],
		StageStat{Name: fn, In: s.Data.N, Out: survivors, TransferDims: s.filter.hostOperands()},
		StageStat{Name: "ED", In: survivors, Out: k, TransferDims: s.Data.D})
	return top.AppendResults(dst)
}

// ---------------------------------------------------------------------------
// FNN-PIM: the FNN cascade with its bottleneck (coarsest) bound replaced
// by LB_PIM-FNN at the Theorem 4 dimensionality; the finer original
// bounds stay in place (§VI-C's default plan). FNN-PIM-optimize drops the
// host bounds the §V-D plan optimizer rejects.
// ---------------------------------------------------------------------------

// FNNPIM is the PIM-optimized FNN cascade.
type FNNPIM struct {
	Data       *vec.Matrix
	filter     *fnnFilter
	HostLevels []*bound.FNNIndex // remaining original bounds, ascending granularity
	variant    string
	spanName   string

	hostNames []string // per-host-level meter bucket / stage names
	top       *vec.TopK
	qs        []fnnQStats
	entered   []int
	stages    []StageStat
}

// NewFNNPIM builds the default plan: LB_PIM-FNN(s) followed by the
// original cascade's finer levels (those with granularity above the
// replaced bottleneck level).
func NewFNNPIM(eng *pim.Engine, data *vec.Matrix, q quant.Quantizer, capacityN int) (*FNNPIM, error) {
	levels := bound.FNNLevels(data.D)
	return newFNNPIM(eng, data, q, capacityN, levels[1:], "FNN-PIM")
}

// NewFNNPIMOptimized builds FNN-PIM with an explicit set of retained host
// granularities (possibly none), as selected by the §V-D plan optimizer.
func NewFNNPIMOptimized(eng *pim.Engine, data *vec.Matrix, q quant.Quantizer, capacityN int, hostSegs []int) (*FNNPIM, error) {
	return newFNNPIM(eng, data, q, capacityN, hostSegs, "FNN-PIM-optimize")
}

func newFNNPIM(eng *pim.Engine, data *vec.Matrix, q quant.Quantizer, capacityN int, hostSegs []int, variant string) (*FNNPIM, error) {
	s := eng.Model().ChooseS(capacityN, pim.Divisors(data.D), 2)
	if s == 0 {
		return nil, fmt.Errorf("knn: no compressed dimensionality of d=%d fits the PIM array for N=%d", data.D, capacityN)
	}
	f, err := newFNNFilter(eng, data, q, s, variant)
	if err != nil {
		return nil, err
	}
	a := &FNNPIM{Data: data, filter: f, variant: variant, spanName: "knn." + variant}
	for _, segs := range hostSegs {
		if segs == s {
			continue // subsumed by the PIM bound at equal granularity
		}
		ix, err := bound.BuildFNN(data, segs)
		if err != nil {
			return nil, err
		}
		a.HostLevels = append(a.HostLevels, ix)
		a.hostNames = append(a.hostNames, fmt.Sprintf("LBFNN-%d", segs))
		a.qs = append(a.qs, fnnQStats{mu: make([]float64, segs), sigma: make([]float64, segs)})
	}
	a.entered = make([]int, len(a.HostLevels)+2) // [pim, host..., exact]
	return a, nil
}

// S returns the Theorem 4 compressed dimensionality in use.
func (a *FNNPIM) S() int { return a.filter.ix.Segs }

// Name implements Searcher.
func (a *FNNPIM) Name() string { return a.variant }

// LastStages implements Stager.
func (a *FNNPIM) LastStages() []StageStat { return a.stages }

// RecordPreprocessing charges offline payload programming to the meter.
func (a *FNNPIM) RecordPreprocessing(meter *arch.Meter) { a.filter.recordProgram(meter) }

// Search runs the PIM bound first (it is computed in one batch on the
// array), then the retained host bounds, then exact refinement.
func (a *FNNPIM) Search(q []float64, k int, meter *arch.Meter) []vec.Neighbor {
	return a.searchAppend(context.Background(), q, k, meter, nil)
}

// SearchAppend implements AppendSearcher.
func (a *FNNPIM) SearchAppend(q []float64, k int, meter *arch.Meter, dst []vec.Neighbor) []vec.Neighbor {
	return a.searchAppend(context.Background(), q, k, meter, dst)
}

// SearchCtx implements ContextSearcher: Search with per-phase spans
// (pim-dot, bound-eval with one event per cascade stage, refine) emitted
// into the context's trace.
func (a *FNNPIM) SearchCtx(ctx context.Context, q []float64, k int, meter *arch.Meter) []vec.Neighbor {
	return a.searchAppend(ctx, q, k, meter, nil)
}

func (a *FNNPIM) searchAppend(ctx context.Context, q []float64, k int, meter *arch.Meter, dst []vec.Neighbor) []vec.Neighbor {
	_, sp := obs.StartSpan(ctx, a.spanName)
	defer sp.End()
	pd := sp.StartChild("pim-dot")
	qf, err := a.filter.prepare(q, meter)
	if err != nil {
		panic(fmt.Sprintf("knn: %s prepare: %v", a.variant, err))
	}
	if pd != nil {
		pd.SetAttr("func", a.filter.funcName())
		pd.SetAttr("dots", 2*a.Data.N)
	}
	pd.End()
	qs := a.qs
	for li, ix := range a.HostLevels {
		if serr := ix.QueryStatsInto(q, qs[li].mu, qs[li].sigma); serr != nil {
			panic(fmt.Sprintf("knn: %s query: %v", a.variant, serr))
		}
	}
	be := sp.StartChild("bound-eval")
	traced := sp != nil
	var refineDur time.Duration
	a.top = reuseTopK(a.top, k)
	top := a.top
	entered := a.entered // [pim, host..., exact]
	for i := range entered {
		entered[i] = 0
	}
	for i := 0; i < a.Data.N; i++ {
		entered[0]++
		if a.filter.lb(i, qf) > top.Threshold() {
			continue
		}
		pruned := false
		for li, ix := range a.HostLevels {
			entered[1+li]++
			if ix.LB(i, qs[li].mu, qs[li].sigma) > top.Threshold() {
				pruned = true
				break
			}
		}
		if pruned {
			continue
		}
		entered[1+len(a.HostLevels)]++
		if traced {
			t0 := time.Now()
			top.Push(i, measure.SqEuclidean(a.Data.Row(i), q))
			refineDur += time.Since(t0)
		} else {
			top.Push(i, measure.SqEuclidean(a.Data.Row(i), q))
		}
	}
	fn := a.filter.funcName()
	costPIMBound(meter.C(fn), int64(entered[0]), a.filter.hostOperands())
	a.stages = a.stages[:0]
	a.stages = append(a.stages, StageStat{
		Name: fn, In: entered[0], Out: entered[1], TransferDims: a.filter.hostOperands(),
	})
	for li, ix := range a.HostLevels {
		costBoundScan(meter.C(a.hostNames[li]), int64(entered[1+li]), ix.TransferDims())
		a.stages = append(a.stages, StageStat{
			Name: a.hostNames[li], In: entered[1+li], Out: entered[2+li], TransferDims: ix.TransferDims(),
		})
	}
	survivors := entered[1+len(a.HostLevels)]
	costExactRefine(meter.C(arch.FuncED), int64(survivors), a.Data.D)
	meter.C(arch.FuncOther).Ops += int64(a.Data.N)
	a.stages = append(a.stages, StageStat{Name: "ED", In: survivors, Out: k, TransferDims: a.Data.D})
	if traced {
		for _, st := range a.stages[:len(a.stages)-1] {
			be.Annotate(st.Name, stageAttrs(st)...)
		}
		be.AddChild("refine", refineDur, obs.A("in", survivors), obs.A("out", k), obs.A("transfer_dims", a.Data.D))
		be.End()
	}
	return top.AppendResults(dst)
}

// ---------------------------------------------------------------------------
// SM-PIM: LB_SM's bottleneck replaced by its PIM-aware form — Theorem 1's
// floor trick applied to the segment-mean vectors, scaled by the segment
// length l:  LB_PIM-SM(p,q) = l · LB_PIM-ED(µ(p̂), µ(q̂)) ≤ LB_SM ≤ ED.
// ---------------------------------------------------------------------------

// SMPIM is the PIM-optimized segmented-mean searcher.
type SMPIM struct {
	Data   *vec.Matrix
	Ix     *pimbound.EDIndex // over the µ vectors
	L      int
	eng    *pim.Engine
	pay    *pim.Payload
	dots   []int64
	top    *vec.TopK
	qMu    []float64 // query segment-mean scratch
	qSg    []float64 // query segment-σ scratch (computed, discarded)
	qFloor []uint32  // query floor scratch
	stages []StageStat
}

// NewSMPIM derives segment means at granularity segs (compressed further
// if Theorem 4 requires), quantizes them and programs the payload.
func NewSMPIM(eng *pim.Engine, data *vec.Matrix, q quant.Quantizer, segs, capacityN int) (*SMPIM, error) {
	// Respect capacity: shrink to the largest fitting divisor granularity.
	if !eng.Model().Fits(capacityN, segs, 1) {
		segs = eng.Model().ChooseS(capacityN, pim.Divisors(data.D), 1)
		if segs == 0 {
			return nil, fmt.Errorf("knn: no SM granularity fits the PIM array for N=%d", capacityN)
		}
	}
	mus := vec.NewMatrix(data.N, segs)
	for i := 0; i < data.N; i++ {
		mu, _, err := vec.SegmentStats(data.Row(i), segs)
		if err != nil {
			return nil, err
		}
		copy(mus.Row(i), mu)
	}
	ix := pimbound.BuildED(mus, q)
	a := &SMPIM{
		Data: data, Ix: ix, L: data.D / segs, eng: eng,
		qMu: make([]float64, segs), qSg: make([]float64, segs), qFloor: make([]uint32, segs),
	}
	var err error
	a.pay, err = eng.Program("sm-pim/mu", data.N, segs, 1, ix.Floor)
	if err != nil {
		return nil, err
	}
	return a, nil
}

// Name implements Searcher.
func (a *SMPIM) Name() string { return "SM-PIM" }

// LastStages implements Stager.
func (a *SMPIM) LastStages() []StageStat { return a.stages }

// RecordPreprocessing charges offline payload programming to the meter.
func (a *SMPIM) RecordPreprocessing(meter *arch.Meter) {
	pim.RecordProgramCost(meter, "LBPIM-SM", a.pay)
}

// Search filters with LB_PIM-SM and refines survivors exactly.
func (a *SMPIM) Search(q []float64, k int, meter *arch.Meter) []vec.Neighbor {
	return a.searchAppend(context.Background(), q, k, meter, nil)
}

// SearchAppend implements AppendSearcher.
func (a *SMPIM) SearchAppend(q []float64, k int, meter *arch.Meter, dst []vec.Neighbor) []vec.Neighbor {
	return a.searchAppend(context.Background(), q, k, meter, dst)
}

// SearchCtx implements ContextSearcher: Search with per-phase spans
// emitted into the context's trace.
func (a *SMPIM) SearchCtx(ctx context.Context, q []float64, k int, meter *arch.Meter) []vec.Neighbor {
	return a.searchAppend(ctx, q, k, meter, nil)
}

func (a *SMPIM) searchAppend(ctx context.Context, q []float64, k int, meter *arch.Meter, dst []vec.Neighbor) []vec.Neighbor {
	_, sp := obs.StartSpan(ctx, "knn.SM-PIM")
	defer sp.End()
	if err := vec.SegmentStatsInto(q, a.Ix.D, a.qMu, a.qSg); err != nil {
		panic(fmt.Sprintf("knn: SM-PIM query: %v", err))
	}
	qf := a.Ix.QueryInto(a.qMu, a.qFloor)
	pd := sp.StartChild("pim-dot")
	var err error
	a.dots, err = a.eng.QueryAll(meter, "LBPIM-SM", a.pay, qf.Floor, a.dots)
	if err != nil {
		panic(fmt.Sprintf("knn: SM-PIM query-all: %v", err))
	}
	if pd != nil {
		pd.SetAttr("func", "LBPIM-SM")
		pd.SetAttr("dots", a.Data.N)
	}
	pd.End()
	be := sp.StartChild("bound-eval")
	traced := sp != nil
	var refineDur time.Duration
	a.top = reuseTopK(a.top, k)
	top := a.top
	survivors := 0
	for i := 0; i < a.Data.N; i++ {
		if float64(a.L)*a.Ix.LB(i, qf, a.dots[i]) > top.Threshold() {
			continue
		}
		survivors++
		if traced {
			t0 := time.Now()
			top.Push(i, measure.SqEuclidean(a.Data.Row(i), q))
			refineDur += time.Since(t0)
		} else {
			top.Push(i, measure.SqEuclidean(a.Data.Row(i), q))
		}
	}
	if traced {
		be.Annotate("LBPIM-SM", obs.A("in", a.Data.N), obs.A("out", survivors))
		be.AddChild("refine", refineDur, obs.A("in", survivors), obs.A("out", k), obs.A("transfer_dims", a.Data.D))
		be.End()
	}
	costPIMBound(meter.C("LBPIM-SM"), int64(a.Data.N), 2)
	costExactRefine(meter.C(arch.FuncED), int64(survivors), a.Data.D)
	meter.C(arch.FuncOther).Ops += int64(a.Data.N)
	a.stages = append(a.stages[:0],
		StageStat{Name: "LBPIM-SM", In: a.Data.N, Out: survivors, TransferDims: 2},
		StageStat{Name: "ED", In: survivors, Out: k, TransferDims: a.Data.D})
	return top.AppendResults(dst)
}

// ---------------------------------------------------------------------------
// OST-PIM: LB_OST's head partial distance replaced by Theorem 1's floor
// trick over the head prefix, keeping the exact tail-norm term (both tail
// norms are precomputed scalars):
//
//	LB_PIM-OST(p,q) = LB_PIM-ED(p_head, q_head) + (‖p_tail‖ − ‖q_tail‖)²
// ---------------------------------------------------------------------------

// OSTPIM is the PIM-optimized orthogonal-search-tree searcher.
type OSTPIM struct {
	Data   *vec.Matrix
	Ix     *pimbound.EDIndex // over the head prefix
	Tail   []float64         // ‖p_tail‖ per object
	D0     int
	eng    *pim.Engine
	pay    *pim.Payload
	dots   []int64
	top    *vec.TopK
	qFloor []uint32 // query head floor scratch
	stages []StageStat
}

// NewOSTPIM builds the PIM head filter with head length d0, clamped to
// Theorem 4 capacity.
func NewOSTPIM(eng *pim.Engine, data *vec.Matrix, q quant.Quantizer, d0, capacityN int) (*OSTPIM, error) {
	if d0 <= 0 || d0 >= data.D {
		return nil, fmt.Errorf("knn: OST-PIM head length %d outside (0,%d)", d0, data.D)
	}
	if fit := eng.Model().MaxFitting(capacityN, d0, 1); fit < d0 {
		if fit == 0 {
			return nil, fmt.Errorf("knn: no OST head length fits the PIM array for N=%d", capacityN)
		}
		d0 = fit
	}
	heads := vec.NewMatrix(data.N, d0)
	tails := make([]float64, data.N)
	for i := 0; i < data.N; i++ {
		row := data.Row(i)
		copy(heads.Row(i), row[:d0])
		tails[i] = vec.Norm(row[d0:])
	}
	ix := pimbound.BuildED(heads, q)
	a := &OSTPIM{Data: data, Ix: ix, Tail: tails, D0: d0, eng: eng, qFloor: make([]uint32, d0)}
	var err error
	a.pay, err = eng.Program("ost-pim/head", data.N, d0, 1, ix.Floor)
	if err != nil {
		return nil, err
	}
	return a, nil
}

// Name implements Searcher.
func (a *OSTPIM) Name() string { return "OST-PIM" }

// LastStages implements Stager.
func (a *OSTPIM) LastStages() []StageStat { return a.stages }

// RecordPreprocessing charges offline payload programming to the meter.
func (a *OSTPIM) RecordPreprocessing(meter *arch.Meter) {
	pim.RecordProgramCost(meter, "LBPIM-OST", a.pay)
}

// Search filters with LB_PIM-OST and refines survivors exactly.
func (a *OSTPIM) Search(q []float64, k int, meter *arch.Meter) []vec.Neighbor {
	return a.searchAppend(context.Background(), q, k, meter, nil)
}

// SearchAppend implements AppendSearcher.
func (a *OSTPIM) SearchAppend(q []float64, k int, meter *arch.Meter, dst []vec.Neighbor) []vec.Neighbor {
	return a.searchAppend(context.Background(), q, k, meter, dst)
}

// SearchCtx implements ContextSearcher: Search with per-phase spans
// emitted into the context's trace.
func (a *OSTPIM) SearchCtx(ctx context.Context, q []float64, k int, meter *arch.Meter) []vec.Neighbor {
	return a.searchAppend(ctx, q, k, meter, nil)
}

func (a *OSTPIM) searchAppend(ctx context.Context, q []float64, k int, meter *arch.Meter, dst []vec.Neighbor) []vec.Neighbor {
	_, sp := obs.StartSpan(ctx, "knn.OST-PIM")
	defer sp.End()
	qf := a.Ix.QueryInto(q[:a.D0], a.qFloor)
	qTail := vec.Norm(q[a.D0:])
	pd := sp.StartChild("pim-dot")
	var err error
	a.dots, err = a.eng.QueryAll(meter, "LBPIM-OST", a.pay, qf.Floor, a.dots)
	if err != nil {
		panic(fmt.Sprintf("knn: OST-PIM query-all: %v", err))
	}
	if pd != nil {
		pd.SetAttr("func", "LBPIM-OST")
		pd.SetAttr("dots", a.Data.N)
	}
	pd.End()
	be := sp.StartChild("bound-eval")
	traced := sp != nil
	var refineDur time.Duration
	a.top = reuseTopK(a.top, k)
	top := a.top
	survivors := 0
	for i := 0; i < a.Data.N; i++ {
		dt := a.Tail[i] - qTail
		if a.Ix.LB(i, qf, a.dots[i])+dt*dt > top.Threshold() {
			continue
		}
		survivors++
		if traced {
			t0 := time.Now()
			top.Push(i, measure.SqEuclidean(a.Data.Row(i), q))
			refineDur += time.Since(t0)
		} else {
			top.Push(i, measure.SqEuclidean(a.Data.Row(i), q))
		}
	}
	if traced {
		be.Annotate("LBPIM-OST", obs.A("in", a.Data.N), obs.A("out", survivors))
		be.AddChild("refine", refineDur, obs.A("in", survivors), obs.A("out", k), obs.A("transfer_dims", a.Data.D))
		be.End()
	}
	// Per consultation: Φ(p_head), dot, ‖p_tail‖ → 3 operands.
	costPIMBound(meter.C("LBPIM-OST"), int64(a.Data.N), 3)
	costExactRefine(meter.C(arch.FuncED), int64(survivors), a.Data.D)
	meter.C(arch.FuncOther).Ops += int64(a.Data.N)
	a.stages = append(a.stages[:0],
		StageStat{Name: "LBPIM-OST", In: a.Data.N, Out: survivors, TransferDims: 3},
		StageStat{Name: "ED", In: survivors, Out: k, TransferDims: a.Data.D})
	return top.AppendResults(dst)
}
