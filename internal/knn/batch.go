package knn

import (
	"fmt"
	"runtime"
	"sync"

	"pimmine/internal/arch"
	"pimmine/internal/vec"
)

// BatchResult holds the per-query neighbor lists of a batch search plus
// the merged activity meter.
type BatchResult struct {
	Neighbors [][]vec.Neighbor
	Meter     *arch.Meter
}

// SearchBatch answers a whole query matrix concurrently. Searchers reuse
// internal buffers and meters are not goroutine-safe, so each worker owns
// a private Searcher built by newSearcher and a private meter; meters are
// merged into the result. Results are deterministic and identical to
// sequential execution (queries are independent).
//
// workers ≤ 0 selects GOMAXPROCS.
func SearchBatch(newSearcher func() (Searcher, error), queries *vec.Matrix, k, workers int) (*BatchResult, error) {
	if queries == nil || queries.N == 0 {
		return &BatchResult{Meter: arch.NewMeter()}, nil
	}
	if k <= 0 {
		return nil, fmt.Errorf("knn: batch search needs k >= 1, got %d", k)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > queries.N {
		workers = queries.N
	}

	res := &BatchResult{
		Neighbors: make([][]vec.Neighbor, queries.N),
		Meter:     arch.NewMeter(),
	}
	jobs := make(chan int)
	errs := make([]error, workers)
	meters := make([]*arch.Meter, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s, err := newSearcher()
			if err != nil {
				errs[w] = err
				// Drain so the dispatcher never blocks.
				for range jobs {
				}
				return
			}
			m := arch.NewMeter()
			meters[w] = m
			for qi := range jobs {
				res.Neighbors[qi] = s.Search(queries.Row(qi), k, m)
			}
		}(w)
	}
	for qi := 0; qi < queries.N; qi++ {
		jobs <- qi
	}
	close(jobs)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("knn: batch worker: %w", err)
		}
	}
	for _, m := range meters {
		if m != nil {
			res.Meter.Merge(m)
		}
	}
	return res, nil
}
