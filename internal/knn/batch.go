package knn

import (
	"context"
	"fmt"
	"runtime"

	"pimmine/internal/arch"
	"pimmine/internal/pool"
	"pimmine/internal/vec"
)

// BatchResult holds the per-query neighbor lists of a batch search plus
// the merged activity meter.
type BatchResult struct {
	Neighbors [][]vec.Neighbor
	Meter     *arch.Meter
}

// SearchBatch answers a whole query matrix concurrently. Searchers reuse
// internal buffers and meters are not goroutine-safe, so each worker owns
// a private Searcher built by newSearcher and a private meter; meters are
// merged into the result. Results are deterministic and identical to
// sequential execution (queries are independent).
//
// Dispatch delegates to the shared bounded pool (internal/pool), so when
// several workers fail the returned error joins every failure — check
// with errors.Is — instead of keeping only the first. Sharded serving on
// top of this layer lives in internal/serve.
//
// workers ≤ 0 selects GOMAXPROCS.
func SearchBatch(newSearcher func() (Searcher, error), queries *vec.Matrix, k, workers int) (*BatchResult, error) {
	if queries == nil || queries.N == 0 {
		return &BatchResult{Meter: arch.NewMeter()}, nil
	}
	if k <= 0 {
		return nil, fmt.Errorf("knn: batch search needs k >= 1, got %d", k)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > queries.N {
		workers = queries.N
	}

	res := &BatchResult{
		Neighbors: make([][]vec.Neighbor, queries.N),
		Meter:     arch.NewMeter(),
	}
	// One flat neighbor arena for the whole batch: query qi appends into
	// the disjoint stride-k region flat[qi*k : (qi+1)*k], so workers never
	// contend and AppendSearcher workers allocate nothing per query. A
	// query returns at most k neighbors, so the region never reallocates.
	flat := make([]vec.Neighbor, queries.N*k)
	meters := make([]*arch.Meter, workers)
	err := pool.Run(context.Background(), queries.N, workers, func(w int) (pool.Worker, error) {
		s, err := newSearcher()
		if err != nil {
			return nil, fmt.Errorf("knn: batch worker: %w", err)
		}
		m := arch.NewMeter()
		meters[w] = m
		if as, ok := s.(AppendSearcher); ok {
			return func(qi int) error {
				res.Neighbors[qi] = as.SearchAppend(queries.Row(qi), k, m, flat[qi*k:qi*k:(qi+1)*k])
				return nil
			}, nil
		}
		return func(qi int) error {
			res.Neighbors[qi] = s.Search(queries.Row(qi), k, m)
			return nil
		}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, m := range meters {
		if m != nil {
			res.Meter.Merge(m)
		}
	}
	return res, nil
}
