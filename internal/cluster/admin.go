package cluster

import (
	"fmt"
	"time"
)

// Admin operations drive the failure model; the chaos harness calls
// them, and operators (or tests) can too. All placement-affecting ops
// serialize on the engine mutation lock so reads always observe a
// consistent replica list.

func (e *Engine) nodeByID(id int) (*node, error) {
	if id < 0 || id >= len(e.nodes) {
		return nil, fmt.Errorf("cluster: node %d outside 0..%d", id, len(e.nodes)-1)
	}
	return e.nodes[id], nil
}

// KillNode takes a node down hard: its replicas are destroyed (stores
// closed), as if the DIMM lost power. Shards it hosted drop below R
// until Repair re-ships them. Killing a dead node is a no-op.
func (e *Engine) KillNode(id int) error {
	release, err := e.acquire()
	if err != nil {
		return err
	}
	defer release()
	n, err := e.nodeByID(id)
	if err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if n.state.Load() == nodeDown {
		return nil
	}
	e.killLocked(n)
	return nil
}

// killLocked destroys n's replicas and marks it down. Caller holds e.mu.
func (e *Engine) killLocked(n *node) {
	n.state.Store(nodeDown)
	for _, sh := range e.shards {
		sh.mu.Lock()
		kept := sh.replicas[:0]
		for _, r := range sh.replicas {
			if r.node == n {
				r.store.Close()
				continue
			}
			kept = append(kept, r)
		}
		sh.replicas = kept
		sh.mu.Unlock()
	}
	e.met.inc(e.met.kills)
	e.met.nodesUp(e.NodesUp())
}

// RestoreNode brings a killed or paused node back up, empty. Replicas
// it lost come back only through Repair (anti-entropy re-replication).
func (e *Engine) RestoreNode(id int) error {
	release, err := e.acquire()
	if err != nil {
		return err
	}
	defer release()
	n, err := e.nodeByID(id)
	if err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	n.state.Store(nodeUp)
	e.met.nodesUp(e.NodesUp())
	return nil
}

// PauseNode stops a node serving reads and receiving writes but keeps
// its state; under churn its replicas go stale and are excluded from
// reads until Repair catches them up. Pausing a dead node is an error.
func (e *Engine) PauseNode(id int) error {
	release, err := e.acquire()
	if err != nil {
		return err
	}
	defer release()
	n, err := e.nodeByID(id)
	if err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if n.state.Load() == nodeDown {
		return fmt.Errorf("cluster: pause node %d: %w", id, ErrNodeDown)
	}
	n.state.Store(nodePaused)
	e.met.nodesUp(e.NodesUp())
	return nil
}

// UnpauseNode resumes a paused node. Its replicas rejoin reads only if
// still current (no writes landed meanwhile) — otherwise Repair must
// re-ship first.
func (e *Engine) UnpauseNode(id int) error {
	release, err := e.acquire()
	if err != nil {
		return err
	}
	defer release()
	n, err := e.nodeByID(id)
	if err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if n.state.Load() == nodeDown {
		return fmt.Errorf("cluster: unpause node %d: %w", id, ErrNodeDown)
	}
	n.state.Store(nodeUp)
	e.met.nodesUp(e.NodesUp())
	return nil
}

// SlowNode injects extra per-visit dwell on a node (0 clears it).
func (e *Engine) SlowNode(id int, d time.Duration) error {
	release, err := e.acquire()
	if err != nil {
		return err
	}
	defer release()
	n, err := e.nodeByID(id)
	if err != nil {
		return err
	}
	if n.state.Load() == nodeDown {
		return fmt.Errorf("cluster: slow node %d: %w", id, ErrNodeDown)
	}
	n.slow.Store(int64(d))
	return nil
}

// InjectFaults makes the node's next count shard visits fail, feeding
// its breaker; reads fail over to replicas, bit-identically.
func (e *Engine) InjectFaults(id, count int) error {
	release, err := e.acquire()
	if err != nil {
		return err
	}
	defer release()
	n, err := e.nodeByID(id)
	if err != nil {
		return err
	}
	if n.state.Load() == nodeDown {
		return fmt.Errorf("cluster: inject faults node %d: %w", id, ErrNodeDown)
	}
	n.faults.Store(int64(count))
	return nil
}

// SetLink severs or heals one direction of a link. from/to of -1
// address the coordinator, so SetLink(-1, 3, false) makes node 3
// unreachable for queries and writes (an asymmetric partition: node 3
// could still ship snapshots out if its outbound links are up).
func (e *Engine) SetLink(from, to int, up bool) error {
	release, err := e.acquire()
	if err != nil {
		return err
	}
	defer release()
	if from < -1 || from >= len(e.nodes) || to < -1 || to >= len(e.nodes) {
		return fmt.Errorf("cluster: link %d->%d outside -1..%d", from, to, len(e.nodes)-1)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.links[from+1][to+1].Store(up)
	return nil
}

// HealLinks restores every link.
func (e *Engine) HealLinks() error {
	release, err := e.acquire()
	if err != nil {
		return err
	}
	defer release()
	e.mu.Lock()
	defer e.mu.Unlock()
	for i := range e.links {
		for j := range e.links[i] {
			e.links[i][j].Store(true)
		}
	}
	return nil
}

// NodeState describes one node for introspection and the chaos harness.
type NodeState struct {
	ID        int
	Up        bool
	Paused    bool
	Reachable bool // coordinator -> node link
	Wear      int64
	Replicas  int
}

// Nodes returns a snapshot of node states.
func (e *Engine) Nodes() []NodeState {
	out := make([]NodeState, len(e.nodes))
	counts := make([]int, len(e.nodes))
	for _, sh := range e.shards {
		for _, r := range sh.snapshot() {
			counts[r.node.id]++
		}
	}
	for i, n := range e.nodes {
		s := n.state.Load()
		out[i] = NodeState{
			ID:        i,
			Up:        s == nodeUp,
			Paused:    s == nodePaused,
			Reachable: e.reachable(-1, i),
			Wear:      n.wear.Load(),
			Replicas:  counts[i],
		}
	}
	return out
}

// disableResult reports what a check-and-disable helper did.
type disableResult int

const (
	disableApplied   disableResult = iota
	disableRedundant               // node already in the requested state
	disableUnsafe                  // would leave a shard with no live current replica
)

// The *IfSafe helpers decide quorum safety and apply the state change
// under one e.mu critical section: checking canDisable and then calling
// KillNode/PauseNode/SetLink separately would let a concurrent admin op
// or write invalidate the check in between. The chaos harness routes
// every disabling step through these so its safety bound ("a query
// issued at any point between steps can always be answered") holds even
// against concurrent mutation.

// killNodeIfSafe kills node id iff it is not already down and (force or
// quorum-safe).
func (e *Engine) killNodeIfSafe(id int, force bool) (disableResult, error) {
	release, err := e.acquire()
	if err != nil {
		return 0, err
	}
	defer release()
	n, err := e.nodeByID(id)
	if err != nil {
		return 0, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if n.state.Load() == nodeDown {
		return disableRedundant, nil
	}
	if !force && !e.canDisable(id) {
		return disableUnsafe, nil
	}
	e.killLocked(n)
	return disableApplied, nil
}

// pauseNodeIfSafe pauses node id iff it is up and (force or quorum-safe).
func (e *Engine) pauseNodeIfSafe(id int, force bool) (disableResult, error) {
	release, err := e.acquire()
	if err != nil {
		return 0, err
	}
	defer release()
	n, err := e.nodeByID(id)
	if err != nil {
		return 0, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if n.state.Load() != nodeUp {
		return disableRedundant, nil
	}
	if !force && !e.canDisable(id) {
		return disableUnsafe, nil
	}
	n.state.Store(nodePaused)
	e.met.nodesUp(e.NodesUp())
	return disableApplied, nil
}

// severCoordLinkIfSafe severs the coordinator->id link iff it is intact,
// the node is up, and (force or quorum-safe).
func (e *Engine) severCoordLinkIfSafe(id int, force bool) (disableResult, error) {
	release, err := e.acquire()
	if err != nil {
		return 0, err
	}
	defer release()
	n, err := e.nodeByID(id)
	if err != nil {
		return 0, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.reachable(-1, id) {
		return disableRedundant, nil
	}
	if n.state.Load() != nodeUp || (!force && !e.canDisable(id)) {
		return disableUnsafe, nil
	}
	e.links[0][id+1].Store(false)
	return disableApplied, nil
}

// canDisable reports whether taking node id out of service (kill,
// pause, or partition from the coordinator) leaves every shard at least
// one live, reachable, current replica. Callers that act on the answer
// must hold e.mu across check and action (see the *IfSafe helpers).
func (e *Engine) canDisable(id int) bool {
	for _, sh := range e.shards {
		cur := sh.version.Load()
		ok := false
		for _, r := range sh.snapshot() {
			if r.node.id == id {
				continue
			}
			if e.nodeLive(r.node) && r.version.Load() >= cur {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}
