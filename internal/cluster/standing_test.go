package cluster

import (
	"context"
	"math/rand"
	"testing"
)

// TestStandingLockstepAcrossFailover is the satellite subscription
// test: standing kNN views must stay lockstep-equivalent to one-shot
// re-queries after every single mutation, including while a node is
// killed mid-churn and repaired back to R replicas. The requery hook
// serves from whichever current replicas survive, so fail-over must be
// invisible in the stream.
func TestStandingLockstepAcrossFailover(t *testing.T) {
	t.Parallel()
	data := randMatrix(150, 10, 31)
	eng := newTestEngine(t, data, Options{
		Nodes: 4, Replicas: 2, Shards: 5, Seed: 5, StandingBuffer: 4096,
	})
	ctx := context.Background()
	const k = 6

	subs := make(map[int][]float64, 3)
	for i := 0; i < 3; i++ {
		q := append([]float64(nil), data.Row(i*47)...)
		sub, err := eng.SubscribeKNN(q, k)
		if err != nil {
			t.Fatalf("SubscribeKNN: %v", err)
		}
		subs[sub.ID()] = q
	}
	checkLockstep := func(step string) {
		t.Helper()
		for id, q := range subs {
			res, err := eng.Search(ctx, q, k)
			if err != nil {
				t.Fatalf("%s: one-shot re-query: %v", step, err)
			}
			if !sameNeighbors(eng.StandingView(id), res.Neighbors) {
				t.Fatalf("%s: subscription %d view diverged from one-shot re-query", step, id)
			}
		}
	}
	checkLockstep("initial")

	rng := rand.New(rand.NewSource(8))
	live := make([]int, data.N)
	for i := range live {
		live[i] = i
	}
	randVec := func() []float64 {
		v := make([]float64, data.D)
		for i := range v {
			v[i] = rng.Float64()
		}
		return v
	}
	mutate := func(step string) {
		t.Helper()
		switch rng.Intn(3) {
		case 0:
			id, err := eng.Insert(randVec())
			if err != nil {
				t.Fatalf("%s: insert: %v", step, err)
			}
			live = append(live, id)
		case 1:
			id := live[rng.Intn(len(live))]
			if err := eng.Update(id, randVec()); err != nil {
				t.Fatalf("%s: update %d: %v", step, id, err)
			}
		case 2:
			if len(live) <= 4*k {
				return
			}
			i := rng.Intn(len(live))
			if err := eng.Delete(live[i]); err != nil {
				t.Fatalf("%s: delete %d: %v", step, live[i], err)
			}
			live = append(live[:i], live[i+1:]...)
		}
	}

	for i := 0; i < 25; i++ {
		mutate("pre-kill churn")
		checkLockstep("pre-kill churn")
	}

	// Kill a node whose loss keeps every shard quorate, keep churning:
	// the subscriptions now ride fail-over replicas.
	victim := -1
	for id := range eng.nodes {
		if eng.canDisable(id) {
			victim = id
			break
		}
	}
	if victim < 0 {
		t.Fatal("no node can be killed without losing quorum")
	}
	if err := eng.KillNode(victim); err != nil {
		t.Fatalf("KillNode(%d): %v", victim, err)
	}
	checkLockstep("after kill")
	for i := 0; i < 25; i++ {
		mutate("mid-failover churn")
		checkLockstep("mid-failover churn")
	}

	// Restore + repair back to R replicas, then keep going.
	if err := eng.RestoreNode(victim); err != nil {
		t.Fatalf("RestoreNode(%d): %v", victim, err)
	}
	if _, err := eng.Repair(); err != nil {
		t.Fatalf("Repair: %v", err)
	}
	checkLockstep("after repair")
	for i := 0; i < 15; i++ {
		mutate("post-repair churn")
		checkLockstep("post-repair churn")
	}

	// The event stream agrees with the final view: the last event each
	// subscription delivered carries its current canonical result.
	for id, q := range subs {
		res, err := eng.Search(ctx, q, k)
		if err != nil {
			t.Fatalf("final re-query: %v", err)
		}
		if !sameNeighbors(eng.StandingView(id), res.Neighbors) {
			t.Fatalf("subscription %d final view diverged", id)
		}
		if err := eng.Unsubscribe(id); err != nil {
			t.Fatalf("Unsubscribe(%d): %v", id, err)
		}
	}
}
