// Package cluster is the multi-node placement layer: the sharded exact
// engine generalized so every shard lives as R bit-identical replicas on
// simulated PIM nodes. Shards are placed on nodes by a consistent-hash
// ring (R-distinct-node preference lists), inserted ids are routed onto
// shards by a second ring over the id space, and every replica of a
// shard applies the same mutation sequence to an identical delta.Store —
// which is the whole correctness story: any current replica returns
// Float64bits-identical neighbors, so fail-over (node kill, pause,
// partition, breaker-open) never changes an answer, only who computes
// it. The differential goldens in diff_test.go pin that across all six
// mining tasks with any single node down.
//
// Reads pick, per shard, the least-loaded current replica on a live,
// reachable node (breaker-approved first; breakers are ignored on the
// second pass because serving an exact answer beats protecting a node).
// Writes apply to every writable (live and current) replica under the
// engine mutation lock; replicas on paused or partitioned nodes go stale
// (their version falls behind the shard's) and are excluded from reads
// and later writes until anti-entropy (Repair) ships them a fresh
// PIMSNAP1 snapshot — the same image format
// the durability layer uses on disk, priced against the inter-node link
// bandwidth like any other data movement. Typed errors tell callers what
// retrying buys: ErrNoQuorum (no live replica at all), ErrRebalancing
// (replicas exist but are stale — anti-entropy will catch them up),
// ErrNodeDown (an admin op addressed a dead node).
package cluster

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pimmine/internal/arch"
	"pimmine/internal/delta"
	"pimmine/internal/knn"
	"pimmine/internal/obs"
	"pimmine/internal/pool"
	"pimmine/internal/resilience"
	"pimmine/internal/route"
	"pimmine/internal/serve"
	"pimmine/internal/standing"
	"pimmine/internal/vec"
)

// Typed placement-layer errors. All three surface through netserve's
// sentinel→status table as 503s; ErrNoQuorum and ErrRebalancing carry
// Retry-After (anti-entropy or a node restore can make a retry succeed),
// ErrNodeDown does not (a dead node stays dead until something repairs
// the cluster).
var (
	// ErrNoQuorum reports that a shard has no replica on any live,
	// reachable node (reads), or no writable replica (writes).
	ErrNoQuorum = errors.New("cluster: no live replica for shard")
	// ErrNodeDown reports an operation addressed to a node that is down.
	ErrNodeDown = errors.New("cluster: node is down")
	// ErrRebalancing reports that a shard's surviving replicas are all
	// stale or mid-install; anti-entropy will catch them up — retry.
	ErrRebalancing = errors.New("cluster: shard replicas stale, rebalancing")
)

// Node states.
const (
	nodeUp int32 = iota
	nodePaused
	nodeDown
)

// Factory builds the per-replica base searcher, mirroring delta.Options.
type Factory = delta.Factory

// Options configures a cluster engine.
type Options struct {
	// Nodes is the simulated PIM node count (default 4).
	Nodes int
	// Replicas is R, the copies kept per shard (default min(2, Nodes)).
	// New rejects explicitly-set Replicas > Nodes.
	Replicas int
	// Shards partitions the id space (default Nodes, clamped to the row
	// count like serve.Engine).
	Shards int
	// VirtualNodes per ring member (default 16).
	VirtualNodes int
	// Seed perturbs the placement rings (default 1).
	Seed int64
	// Workers bounds SearchBatch fan-out (default GOMAXPROCS).
	Workers int
	// Factory builds each replica's base searcher (default exact host
	// scan, knn.NewStandard).
	Factory Factory
	// Router enables sketch-routed fan-out. Must cover exactly Shards
	// shards over the same dimensionality.
	Router *route.Router
	// Breaker configures the per-node circuit breakers; the zero value
	// disables them.
	Breaker resilience.BreakerConfig
	// LinkGBs prices inter-node snapshot shipping, in GB/s == bytes/ns
	// (default 12.5, i.e. a 100 Gb/s fabric — deliberately slower than
	// arch.Config.InternalBusGBs: crossing nodes costs more than
	// crossing a bus).
	LinkGBs float64
	// NodeServiceTime simulates per-shard-visit dwell on a node; a
	// node's visits serialize, which is what makes goodput scale with
	// node count in the ext-cluster sweep (default 0: no dwell).
	NodeServiceTime time.Duration
	// MaxDelta / MaxTombstoneRatio configure each replica's delta store
	// (defaults 256 / 0.25).
	MaxDelta          int
	MaxTombstoneRatio float64
	// StandingBuffer sizes standing-subscription event channels.
	StandingBuffer int
	// Obs exports pim_cluster_* metrics when set.
	Obs *obs.Observer
}

type node struct {
	id       int
	mu       sync.Mutex // serializes this node's shard visits (one PIM pipeline)
	state    atomic.Int32
	slow     atomic.Int64 // injected extra dwell, ns
	faults   atomic.Int64 // injected search failures remaining
	wear     atomic.Int64 // crossbar programmings (replica installs)
	inflight atomic.Int64
	breaker  *resilience.Breaker
}

var errInjectedFault = errors.New("cluster: injected node fault")

// visit runs one shard search on the node, holding its pipeline.
func (n *node) visit(st *delta.Store, q []float64, k int, dwell time.Duration, m *arch.Meter) ([]vec.Neighbor, error) {
	n.inflight.Add(1)
	defer n.inflight.Add(-1)
	n.mu.Lock()
	defer n.mu.Unlock()
	if d := dwell + time.Duration(n.slow.Load()); d > 0 {
		time.Sleep(d)
	}
	if f := n.faults.Load(); f > 0 && n.faults.CompareAndSwap(f, f-1) {
		return nil, errInjectedFault
	}
	return st.Search(q, k, m)
}

type replica struct {
	node    *node
	store   *delta.Store
	version atomic.Uint64 // last mutation applied (or snapshot version installed)
}

type cshard struct {
	id      int
	version atomic.Uint64 // bumps once per applied mutation
	mu      sync.RWMutex  // guards the replicas slice (placement changes)
	// replicas in ring-preference order; reads rotate by load.
	replicas []*replica
}

func (sh *cshard) snapshot() []*replica {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	out := make([]*replica, len(sh.replicas))
	copy(out, sh.replicas)
	return out
}

// Engine is a multi-node placement layer over replicated shard stores.
// It satisfies the same query surface as serve.Engine (netserve's
// queryEngine), returning *serve.Result.
type Engine struct {
	d        int
	initialN int // rows in the initial image (ids below this use bounds)
	opts     Options
	nodes    []*node
	breakers *resilience.BreakerSet // one breaker per node
	shards   []*cshard
	bounds   []int // initial contiguous id range starts, bounds[i] = lo of shard i
	idRing   *ring // inserted ids -> shards

	// links[from][to]: directed reachability; index 0 is the
	// coordinator/host, 1+i is node i. Asymmetric partitions sever
	// individual directions.
	links [][]atomic.Bool

	mu     sync.Mutex // mutation + placement lock
	nextID int
	routes map[int]int // inserted id -> shard

	closeMu sync.RWMutex
	closed  bool

	standing *standing.Registry
	met      *metrics

	shipMu sync.Mutex
	ship   ShipStats
}

// ShipStats accumulates snapshot-shipping traffic and its modeled cost.
type ShipStats struct {
	// Ships counts replica installs from a shipped snapshot.
	Ships int
	// Bytes is total encoded PIMSNAP1 bytes moved between nodes.
	Bytes int64
	// ModeledNs is the transfer time those bytes cost at LinkGBs.
	ModeledNs float64
}

// New builds the placement layer over data. The initial image is split
// into contiguous shard ranges exactly like serve.Engine (so routed and
// unrouted engines agree shard-for-shard); each shard is then installed
// on its R preferred nodes.
func New(data *vec.Matrix, opts Options) (*Engine, error) {
	if data == nil || data.N == 0 {
		return nil, fmt.Errorf("cluster: empty dataset")
	}
	if opts.Nodes == 0 {
		opts.Nodes = 4
	}
	if opts.Nodes < 0 {
		return nil, fmt.Errorf("cluster: node count %d must be positive", opts.Nodes)
	}
	if opts.Replicas == 0 {
		opts.Replicas = min(2, opts.Nodes)
	}
	if opts.Replicas < 0 {
		return nil, fmt.Errorf("cluster: replica count %d must be positive", opts.Replicas)
	}
	if opts.Replicas > opts.Nodes {
		return nil, fmt.Errorf("cluster: replicas %d > nodes %d", opts.Replicas, opts.Nodes)
	}
	if opts.Shards == 0 {
		opts.Shards = opts.Nodes
	}
	if opts.Shards < 0 {
		return nil, fmt.Errorf("cluster: shard count %d must be positive", opts.Shards)
	}
	if opts.Shards > data.N {
		opts.Shards = data.N
	}
	if opts.VirtualNodes <= 0 {
		opts.VirtualNodes = 16
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.Factory == nil {
		opts.Factory = func(base *vec.Matrix, _ int) (knn.Searcher, error) {
			return knn.NewStandard(base), nil
		}
	}
	if opts.LinkGBs <= 0 {
		opts.LinkGBs = 12.5
	}
	if opts.MaxDelta <= 0 {
		opts.MaxDelta = 256
	}
	if opts.MaxTombstoneRatio <= 0 {
		opts.MaxTombstoneRatio = 0.25
	}
	if opts.Router != nil {
		if opts.Router.NumShards() != opts.Shards {
			return nil, fmt.Errorf("cluster: router covers %d shards, engine has %d: %w",
				opts.Router.NumShards(), opts.Shards, route.ErrShardMismatch)
		}
		if opts.Router.Dims() != data.D {
			return nil, fmt.Errorf("cluster: router dims %d != data dims %d: %w",
				opts.Router.Dims(), data.D, route.ErrShardMismatch)
		}
	}

	e := &Engine{
		d:        data.D,
		initialN: data.N,
		opts:     opts,
		nextID:   data.N,
		routes:   make(map[int]int),
	}
	e.met = newMetrics(opts.Obs, opts.Nodes)

	e.breakers = resilience.NewBreakerSet(opts.Nodes, opts.Breaker)
	e.nodes = make([]*node, opts.Nodes)
	for i := range e.nodes {
		e.nodes[i] = &node{id: i, breaker: e.breakers.Get(i)}
	}
	e.links = make([][]atomic.Bool, opts.Nodes+1)
	for i := range e.links {
		e.links[i] = make([]atomic.Bool, opts.Nodes+1)
		for j := range e.links[i] {
			e.links[i][j].Store(true)
		}
	}

	nodeRing := newRing(opts.Nodes, opts.VirtualNodes, opts.Seed)
	e.idRing = newRing(opts.Shards, opts.VirtualNodes, opts.Seed+1)

	e.shards = make([]*cshard, opts.Shards)
	e.bounds = make([]int, opts.Shards)
	base, rem := data.N/opts.Shards, data.N%opts.Shards
	lo := 0
	for id := 0; id < opts.Shards; id++ {
		rows := base
		if id < rem {
			rows++
		}
		sh := &cshard{id: id}
		part := data.Slice(lo, lo+rows)
		for _, nid := range nodeRing.pref(fmt.Sprintf("shard-%d", id), opts.Replicas) {
			st, err := delta.New(part, e.replicaDeltaOptions(id, lo))
			if err != nil {
				e.closeStoresLocked()
				return nil, fmt.Errorf("cluster: shard %d replica on node %d: %w", id, nid, err)
			}
			n := e.nodes[nid]
			n.wear.Add(1)
			e.met.wearAdd(nid, 1)
			sh.replicas = append(sh.replicas, &replica{node: n, store: st})
		}
		e.shards[id] = sh
		e.bounds[id] = lo
		lo += rows
	}
	e.met.nodesUp(opts.Nodes)

	reg, err := standing.NewRegistry(standing.Options{
		Requery: func(q []float64, k int) ([]vec.Neighbor, error) {
			// Runs under e.mu via the mutation hooks: must not
			// re-acquire engine locks.
			return e.searchAll(context.Background(), q, k)
		},
		Buffer: opts.StandingBuffer,
	})
	if err != nil {
		e.closeStoresLocked()
		return nil, err
	}
	e.standing = reg
	return e, nil
}

func (e *Engine) replicaDeltaOptions(shardID, lo int) delta.Options {
	return delta.Options{
		Factory:           e.opts.Factory,
		MaxDelta:          e.opts.MaxDelta,
		MaxTombstoneRatio: e.opts.MaxTombstoneRatio,
		IDOffset:          lo,
	}
}

func (e *Engine) closeStoresLocked() {
	for _, sh := range e.shards {
		if sh == nil {
			continue
		}
		for _, r := range sh.replicas {
			r.store.Close()
		}
	}
}

// reachable reports directed link state; from/to index -1 addresses the
// coordinator.
func (e *Engine) reachable(from, to int) bool {
	return e.links[from+1][to+1].Load()
}

func (e *Engine) nodeLive(n *node) bool {
	return n.state.Load() == nodeUp && e.reachable(-1, n.id)
}

// Dims returns the vector dimensionality.
func (e *Engine) Dims() int { return e.d }

// NumShards returns the shard count.
func (e *Engine) NumShards() int { return len(e.shards) }

// NumNodes returns the node count.
func (e *Engine) NumNodes() int { return len(e.nodes) }

// Replicas returns R.
func (e *Engine) Replicas() int { return e.opts.Replicas }

// Workers returns the batch fan-out width.
func (e *Engine) Workers() int { return e.opts.Workers }

// Router returns the optional shard router.
func (e *Engine) Router() *route.Router { return e.opts.Router }

// NodesUp counts nodes currently up (ignoring partitions).
func (e *Engine) NodesUp() int {
	up := 0
	for _, n := range e.nodes {
		if n.state.Load() == nodeUp {
			up++
		}
	}
	return up
}

// Wear returns per-node crossbar-programming counts (replica installs).
func (e *Engine) Wear() []int64 {
	out := make([]int64, len(e.nodes))
	for i, n := range e.nodes {
		out[i] = n.wear.Load()
	}
	return out
}

// ShipStats returns cumulative snapshot-shipping traffic.
func (e *Engine) ShipStats() ShipStats {
	e.shipMu.Lock()
	defer e.shipMu.Unlock()
	return e.ship
}

// Rows returns the live row count, summed over one current replica per
// shard (replicas are identical, so any current one is authoritative).
func (e *Engine) Rows() int {
	total := 0
	for _, sh := range e.shards {
		for _, r := range sh.snapshot() {
			if r.version.Load() >= sh.version.Load() {
				total += r.store.Stats().LiveRows
				break
			}
		}
	}
	return total
}

// BreakerStates returns each node's circuit-breaker state (all
// StateClosed when breakers are disabled).
func (e *Engine) BreakerStates() []resilience.State {
	return e.breakers.States()
}

// acquire guards the query/mutation surface against Close.
func (e *Engine) acquire() (func(), error) {
	e.closeMu.RLock()
	if e.closed {
		e.closeMu.RUnlock()
		return nil, serve.ErrClosed
	}
	return e.closeMu.RUnlock, nil
}

// Close shuts the engine: standing subscriptions end, every replica
// store closes. In-flight queries finish first.
func (e *Engine) Close() error {
	e.closeMu.Lock()
	defer e.closeMu.Unlock()
	if e.closed {
		return nil
	}
	e.closed = true
	e.standing.Close()
	e.closeStoresLocked()
	return nil
}

type shardRes struct {
	id       int
	nn       []vec.Neighbor
	meter    *arch.Meter
	failover bool
}

// searchShard serves one shard from the best available replica.
//
// Pass 1 considers replicas that are current, on a live reachable node,
// and whose breaker admits the call, least-loaded first. Pass 2 drops
// the breaker condition: an open breaker reroutes load while healthy
// replicas exist, but never costs an exact answer. A replica whose
// store fails (injected fault, closed by a concurrent kill) feeds its
// breaker and the next candidate is tried — bit-identical replicas make
// that fail-over invisible in the result.
func (e *Engine) searchShard(sh *cshard, q []float64, k int) (shardRes, error) {
	reps := sh.snapshot()
	cur := sh.version.Load()
	avail := reps[:0:0]
	for _, r := range reps {
		if e.nodeLive(r.node) && r.version.Load() >= cur {
			avail = append(avail, r)
		}
	}
	if len(avail) == 0 {
		if len(reps) > 0 {
			// Live hosts may exist but hold stale copies: anti-entropy
			// will catch them up, so tell the caller to retry.
			for _, r := range reps {
				if e.nodeLive(r.node) {
					e.met.inc(e.met.rebalancing)
					return shardRes{}, fmt.Errorf("shard %d: %w", sh.id, ErrRebalancing)
				}
			}
		}
		e.met.inc(e.met.noQuorum)
		return shardRes{}, fmt.Errorf("shard %d: %w", sh.id, ErrNoQuorum)
	}
	// Least-loaded first; ties keep preference order. Replicas are
	// bit-identical, so balancing is free — it is also what keeps
	// goodput ≥ 80% after a node kill (the dead node's visits spread
	// over every survivor instead of doubling one neighbor).
	sort.SliceStable(avail, func(i, j int) bool {
		return avail[i].node.inflight.Load() < avail[j].node.inflight.Load()
	})
	res := shardRes{id: sh.id, meter: arch.NewMeter()}
	var errs []error
	// Pass 1: breaker-approved candidates. Pass 2: ignore breakers.
	for pass := 0; pass < 2; pass++ {
		for i, r := range avail {
			if r == nil {
				continue
			}
			done := func(bool) {}
			if pass == 0 {
				d, err := r.node.breaker.Allow()
				if err != nil {
					res.failover = true
					continue
				}
				done = d
			}
			nn, err := r.node.visit(r.store, q, k, e.opts.NodeServiceTime, res.meter)
			done(err == nil)
			if err != nil {
				errs = append(errs, fmt.Errorf("shard %d node %d: %w", sh.id, r.node.id, err))
				res.failover = true
				avail[i] = nil
				continue
			}
			if res.failover {
				e.met.inc(e.met.failovers)
			}
			res.nn = nn
			return res, nil
		}
	}
	errs = append(errs, fmt.Errorf("shard %d: %w", sh.id, ErrNoQuorum))
	e.met.inc(e.met.noQuorum)
	return shardRes{}, errors.Join(errs...)
}

// fanShards searches the given shard ids concurrently. Every shard's
// outcome is collected; failures are joined in shard order rather than
// first-error-wins, so a caller sees each dead shard, not just the
// fastest one to fail.
func (e *Engine) fanShards(ctx context.Context, ids []int, q []float64, k int) ([]shardRes, error) {
	if err := ctx.Err(); err != nil {
		return nil, context.Cause(ctx)
	}
	type out struct {
		res shardRes
		err error
	}
	ch := make(chan out, len(ids))
	for _, id := range ids {
		go func(sh *cshard) {
			if err := ctx.Err(); err != nil {
				ch <- out{err: fmt.Errorf("shard %d: %w", sh.id, context.Cause(ctx))}
				return
			}
			r, err := e.searchShard(sh, q, k)
			ch <- out{res: r, err: err}
		}(e.shards[id])
	}
	outs := make([]shardRes, 0, len(ids))
	var errs []error
	for range ids {
		o := <-ch
		if o.err != nil {
			errs = append(errs, o.err)
			continue
		}
		outs = append(outs, o.res)
	}
	if len(errs) > 0 {
		sort.Slice(errs, func(i, j int) bool { return errs[i].Error() < errs[j].Error() })
		return nil, errors.Join(errs...)
	}
	sort.Slice(outs, func(i, j int) bool { return outs[i].id < outs[j].id })
	return outs, nil
}

// searchAll is the unrouted exact path: visit every shard, merge.
// It takes no engine locks, so the standing-query requery hook (which
// runs under the mutation lock) can use it directly.
func (e *Engine) searchAll(ctx context.Context, q []float64, k int) ([]vec.Neighbor, error) {
	ids := make([]int, len(e.shards))
	for i := range ids {
		ids[i] = i
	}
	outs, err := e.fanShards(ctx, ids, q, k)
	if err != nil {
		return nil, err
	}
	lists := make([][]vec.Neighbor, len(outs))
	for i, o := range outs {
		lists[i] = o.nn
	}
	return vec.MergeNeighbors(k, lists...), nil
}

// Search returns the exact k nearest neighbors of q under the engine's
// default routing mode.
func (e *Engine) Search(ctx context.Context, q []float64, k int) (*serve.Result, error) {
	return e.SearchMode(ctx, q, k, route.ModeAuto)
}

// SearchMode is Search with an explicit routing mode, mirroring
// serve.Engine.SearchMode.
func (e *Engine) SearchMode(ctx context.Context, q []float64, k int, mode route.Mode) (*serve.Result, error) {
	release, err := e.acquire()
	if err != nil {
		return nil, err
	}
	defer release()
	if len(q) != e.d {
		return nil, fmt.Errorf("cluster: query dims %d != data dims %d", len(q), e.d)
	}
	if k <= 0 {
		return nil, fmt.Errorf("cluster: k %d must be positive", k)
	}
	if err := ctx.Err(); err != nil {
		return nil, context.Cause(ctx)
	}
	e.met.inc(e.met.queries)

	r := e.opts.Router
	if mode == route.ModeAuto {
		if r == nil {
			return e.assemble(ctx, q, k, nil, nil)
		}
		mode = r.DefaultMode()
	}
	if r == nil {
		return nil, fmt.Errorf("cluster: mode %q: %w", mode, serve.ErrNoRouter)
	}
	switch mode {
	case route.ModeExact:
		return e.searchExactRouted(ctx, q, k, r)
	case route.ModeApprox:
		visit, est := r.ApproxPlan(q, 0)
		info := &serve.RouteInfo{Mode: route.ModeApprox, Visited: len(visit),
			Skipped: len(e.shards) - len(visit), EstRecall: est}
		return e.assemble(ctx, q, k, visit, info)
	default:
		return nil, fmt.Errorf("cluster: unknown routing mode %q", mode)
	}
}

// searchExactRouted is the two-wave exact plan, node-aware: the seed
// shard (wave 1) is the lowest-bound shard that is actually servable,
// so a dead best shard cannot stall the plan; wave 2 visits every shard
// whose admissible lower bound beats the seeded kth distance. A shard
// with no live replica only fails the query if the bound says it could
// hold a top-k row — routing proves dead shards out of the answer.
func (e *Engine) searchExactRouted(ctx context.Context, q []float64, k int, r *route.Router) (*serve.Result, error) {
	order, lbs := r.ExactOrderAvail(q, e.shardServable)
	first, err := e.fanShards(ctx, order[:1], q, k)
	if err != nil {
		return nil, err
	}
	tau := kthDist(first[0].nn, k)
	visit := []int{order[0]}
	for _, id := range order[1:] {
		if lbs[id] <= tau {
			visit = append(visit, id)
		}
	}
	rest, err := e.fanShards(ctx, visit[1:], q, k)
	if err != nil {
		return nil, err
	}
	outs := append(first, rest...)
	skipped := complementShards(visit, len(e.shards))
	r.NoteOutcome(len(visit), len(skipped))
	info := &serve.RouteInfo{Mode: route.ModeExact, Visited: len(visit),
		Skipped: len(skipped), SkippedShards: skipped, EstRecall: 1}
	return e.assembleOuts(outs, k, info)
}

// shardServable reports whether a shard has at least one current
// replica on a live, reachable node — the availability predicate the
// router's node-aware exact order seeds from.
func (e *Engine) shardServable(id int) bool {
	sh := e.shards[id]
	cur := sh.version.Load()
	for _, r := range sh.snapshot() {
		if e.nodeLive(r.node) && r.version.Load() >= cur {
			return true
		}
	}
	return false
}

// assemble fans out over visit (nil = all shards) and merges.
func (e *Engine) assemble(ctx context.Context, q []float64, k int, visit []int, info *serve.RouteInfo) (*serve.Result, error) {
	if visit == nil {
		visit = make([]int, len(e.shards))
		for i := range visit {
			visit[i] = i
		}
	}
	outs, err := e.fanShards(ctx, visit, q, k)
	if err != nil {
		return nil, err
	}
	return e.assembleOuts(outs, k, info)
}

func (e *Engine) assembleOuts(outs []shardRes, k int, info *serve.RouteInfo) (*serve.Result, error) {
	sort.Slice(outs, func(i, j int) bool { return outs[i].id < outs[j].id })
	total := arch.NewMeter()
	shardMeters := make([]*arch.Meter, len(e.shards))
	lists := make([][]vec.Neighbor, 0, len(outs))
	var failover []int
	for _, o := range outs {
		lists = append(lists, o.nn)
		shardMeters[o.id] = o.meter
		total.Merge(o.meter)
		if o.failover {
			failover = append(failover, o.id)
		}
	}
	return &serve.Result{
		Neighbors:   vec.MergeNeighbors(k, lists...),
		Meter:       total,
		ShardMeters: shardMeters,
		BreakerOpen: failover,
		Routed:      info,
	}, nil
}

// SearchBatch answers queries (row-major, len = n*Dims) with at most
// Workers queries in flight, joining every per-query failure.
func (e *Engine) SearchBatch(ctx context.Context, queries *vec.Matrix, k int) (*serve.BatchResult, error) {
	release, err := e.acquire()
	if err != nil {
		return nil, err
	}
	defer release()
	if queries == nil || queries.N == 0 {
		return nil, fmt.Errorf("cluster: empty query batch")
	}
	if queries.D != e.d {
		return nil, fmt.Errorf("cluster: query dims %d != data dims %d", queries.D, e.d)
	}
	results := make([]*serve.Result, queries.N)
	err = pool.Run(ctx, queries.N, e.opts.Workers, func(int) (pool.Worker, error) {
		return func(job int) error {
			r, err := e.SearchMode(ctx, queries.Row(job), k, route.ModeAuto)
			if err != nil {
				return fmt.Errorf("query %d: %w", job, err)
			}
			results[job] = r
			return nil
		}, nil
	})
	if err != nil {
		return nil, err
	}
	total := arch.NewMeter()
	for _, r := range results {
		total.Merge(r.Meter)
	}
	return &serve.BatchResult{Results: results, Meter: total}, nil
}

func kthDist(nn []vec.Neighbor, k int) float64 {
	if len(nn) < k {
		return math.Inf(1)
	}
	return nn[k-1].Dist
}

func complementShards(visit []int, n int) []int {
	in := make([]bool, n)
	for _, id := range visit {
		in[id] = true
	}
	var out []int
	for i := 0; i < n; i++ {
		if !in[i] {
			out = append(out, i)
		}
	}
	return out
}
