package cluster

import (
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Chaos is a deterministic failure injector: node kills, pauses,
// asymmetric partitions, and slow nodes, drawn from a seeded schedule.
// Every step is replayable — the same seed over the same engine
// produces the same event log (pinned by a CI golden), because every
// choice comes from the seeded generator and the engine's state evolves
// only through the steps themselves.
//
// Chaos is safety-bounded by default: it refuses any step that would
// leave some shard without a live, current replica, so a query issued
// at any point between steps can always be answered — which is what
// lets the race hammer exactness-verify every success. The quorum check
// and the state change happen in one engine critical section (the
// *IfSafe helpers in admin.go), so a concurrent admin op or write
// cannot invalidate the check before it is acted on. Restores run
// anti-entropy Repair, so R recovers after each kill.
type Chaos struct {
	eng *Engine
	rng *rand.Rand
	cfg ChaosConfig

	mu  sync.Mutex
	n   int
	log []string
}

// ChaosConfig tunes the harness; the zero value is usable.
type ChaosConfig struct {
	// MaxSlow bounds injected per-visit dwell (default 2ms).
	MaxSlow time.Duration
	// AllowTotalLoss disables the quorum safety check, letting chaos
	// kill a shard's last replica (for tests exercising ErrNoQuorum).
	AllowTotalLoss bool
}

// NewChaos builds a harness over eng with a seeded schedule.
func NewChaos(eng *Engine, seed int64, cfg ChaosConfig) *Chaos {
	if cfg.MaxSlow <= 0 {
		cfg.MaxSlow = 2 * time.Millisecond
	}
	return &Chaos{eng: eng, rng: rand.New(rand.NewSource(seed)), cfg: cfg}
}

// Step applies one chaos event and returns its log line. Unsafe or
// inapplicable draws (killing the last quorum holder, pausing a dead
// node) are logged as refusals rather than retried, keeping the
// schedule a pure function of the seed.
func (c *Chaos) Step() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	op := c.rng.Intn(8)
	target := c.rng.Intn(len(c.eng.nodes))
	line := c.apply(op, target)
	entry := fmt.Sprintf("step %03d: %s", c.n, line)
	c.n++
	c.log = append(c.log, entry)
	return entry
}

// Steps applies n events and returns their log lines.
func (c *Chaos) Steps(n int) []string {
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, c.Step())
	}
	return out
}

// Log returns every event applied so far.
func (c *Chaos) Log() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.log...)
}

func (c *Chaos) apply(op, target int) string {
	e := c.eng
	switch op {
	case 0: // kill
		res, err := e.killNodeIfSafe(target, c.cfg.AllowTotalLoss)
		switch {
		case err != nil:
			return fmt.Sprintf("kill node%d failed: %v", target, err)
		case res == disableRedundant:
			return fmt.Sprintf("kill node%d refused: already down", target)
		case res == disableUnsafe:
			return fmt.Sprintf("kill node%d refused: would lose quorum", target)
		}
		return fmt.Sprintf("kill node%d", target)
	case 1: // restore + anti-entropy
		if e.nodes[target].state.Load() == nodeUp {
			return fmt.Sprintf("restore node%d refused: already up", target)
		}
		if err := e.RestoreNode(target); err != nil {
			return fmt.Sprintf("restore node%d failed: %v", target, err)
		}
		ships, err := e.Repair()
		if err != nil {
			return fmt.Sprintf("restore node%d, repair shipped %d with errors: %v", target, ships, err)
		}
		return fmt.Sprintf("restore node%d, repair shipped %d", target, ships)
	case 2: // pause
		res, err := e.pauseNodeIfSafe(target, c.cfg.AllowTotalLoss)
		switch {
		case err != nil:
			return fmt.Sprintf("pause node%d failed: %v", target, err)
		case res == disableRedundant:
			return fmt.Sprintf("pause node%d refused: not up", target)
		case res == disableUnsafe:
			return fmt.Sprintf("pause node%d refused: would lose quorum", target)
		}
		return fmt.Sprintf("pause node%d", target)
	case 3: // unpause
		if e.nodes[target].state.Load() != nodePaused {
			return fmt.Sprintf("unpause node%d refused: not paused", target)
		}
		if err := e.UnpauseNode(target); err != nil {
			return fmt.Sprintf("unpause node%d failed: %v", target, err)
		}
		return fmt.Sprintf("unpause node%d", target)
	case 4: // asymmetric partition: sever coordinator -> target
		res, err := e.severCoordLinkIfSafe(target, c.cfg.AllowTotalLoss)
		switch {
		case err != nil:
			return fmt.Sprintf("partition node%d failed: %v", target, err)
		case res == disableRedundant:
			return fmt.Sprintf("partition node%d refused: already severed", target)
		case res == disableUnsafe:
			return fmt.Sprintf("partition node%d refused: would lose quorum", target)
		}
		return fmt.Sprintf("partition coordinator->node%d", target)
	case 5: // heal all links
		if err := e.HealLinks(); err != nil {
			return fmt.Sprintf("heal links failed: %v", err)
		}
		return "heal all links"
	case 6: // slow
		if e.nodes[target].state.Load() == nodeDown {
			return fmt.Sprintf("slow node%d refused: down", target)
		}
		d := time.Duration(c.rng.Int63n(int64(c.cfg.MaxSlow)))
		if err := e.SlowNode(target, d); err != nil {
			return fmt.Sprintf("slow node%d failed: %v", target, err)
		}
		return fmt.Sprintf("slow node%d by %v", target, d)
	case 7: // unslow
		if e.nodes[target].state.Load() == nodeDown {
			return fmt.Sprintf("unslow node%d refused: down", target)
		}
		if err := e.SlowNode(target, 0); err != nil {
			return fmt.Sprintf("unslow node%d failed: %v", target, err)
		}
		return fmt.Sprintf("unslow node%d", target)
	}
	return "unreachable"
}
