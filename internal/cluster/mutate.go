package cluster

import (
	"errors"
	"fmt"
	"sort"

	"pimmine/internal/standing"
	"pimmine/internal/vec"
)

// Writes apply to every writable replica of the owning shard under the
// engine mutation lock. Writable means live AND current: a replica that
// went stale while paused or partitioned stays excluded from writes
// after its node rejoins — otherwise the first post-rejoin write would
// stamp it current while it still misses the intermediate mutations.
// Stale replicas return to service only through Repair's snapshot ship,
// so every current replica has seen the same prefix of the same
// mutation sequence.
//
// Commit rule: a mutation commits iff at least one writable replica
// applies it. The shard version then bumps and the replicas that
// applied are stamped with it; a replica whose apply failed keeps its
// old version and is treated exactly like one that was paused for the
// write — stale, excluded from reads, re-shipped by the next Repair —
// so a divergent copy can never serve. Only when every writable replica
// fails is the mutation refused with the joined errors and no version
// change. A write that finds no writable replica at all is refused
// before touching anything: ErrRebalancing when live-but-stale replicas
// exist (anti-entropy will make a retry succeed), ErrNoQuorum when no
// replica is live.

// shardOf maps a global id to its shard: initial ids by the contiguous
// range split, inserted ids by the consistent-hash id ring (recorded in
// routes at insert time).
func (e *Engine) shardOf(id int) (int, error) {
	if id < 0 {
		return 0, fmt.Errorf("cluster: negative id %d", id)
	}
	if id < e.initialN {
		return sort.SearchInts(e.bounds, id+1) - 1, nil
	}
	if sh, ok := e.routes[id]; ok {
		return sh, nil
	}
	return 0, fmt.Errorf("cluster: unknown id %d", id)
}

// writableReplicas returns the replicas a write may land on: live,
// reachable, and current. Stale replicas are excluded even when their
// node is back up; see the commit rule above.
func (e *Engine) writableReplicas(sh *cshard) []*replica {
	cur := sh.version.Load()
	var out []*replica
	for _, r := range sh.replicas {
		if e.nodeLive(r.node) && r.version.Load() >= cur {
			out = append(out, r)
		}
	}
	return out
}

// writeRefusedLocked picks the typed error for a shard with no writable
// replica: a live-but-stale copy means anti-entropy can fix it (retry
// after Repair), no live copy at all means quorum is gone.
func (e *Engine) writeRefusedLocked(sh *cshard) error {
	for _, r := range sh.replicas {
		if e.nodeLive(r.node) {
			return ErrRebalancing
		}
	}
	return ErrNoQuorum
}

// commitLocked runs op on every writable replica of sh and applies the
// commit rule. Caller holds e.mu.
func (e *Engine) commitLocked(sh *cshard, op func(*replica) error) error {
	reps := e.writableReplicas(sh)
	if len(reps) == 0 {
		return e.writeRefusedLocked(sh)
	}
	var applied []*replica
	var errs []error
	for _, r := range reps {
		if err := op(r); err != nil {
			errs = append(errs, fmt.Errorf("node %d: %w", r.node.id, err))
			continue
		}
		applied = append(applied, r)
	}
	if len(applied) == 0 {
		return errors.Join(errs...)
	}
	ver := sh.version.Load() + 1
	for _, r := range applied {
		r.version.Store(ver)
	}
	sh.version.Store(ver)
	if len(errs) > 0 {
		// Failed replicas stay at the old version: stale, excluded
		// from reads and writes, re-shipped by the next Repair.
		e.met.inc(e.met.degradedWrites)
	}
	return nil
}

// Insert adds a vector, assigning the next global id. The id is routed
// to a shard by consistent hash and the insert lands on every writable
// replica of that shard.
func (e *Engine) Insert(v []float64) (int, error) {
	release, err := e.acquire()
	if err != nil {
		return 0, err
	}
	defer release()
	if len(v) != e.d {
		return 0, fmt.Errorf("cluster: vector dims %d != data dims %d", len(v), e.d)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	id := e.nextID
	shID := e.idRing.owner(fmt.Sprintf("id-%d", id))
	err = e.commitLocked(e.shards[shID], func(r *replica) error { return r.store.InsertAt(id, v) })
	if err != nil {
		return 0, fmt.Errorf("cluster: insert shard %d: %w", shID, err)
	}
	e.routes[id] = shID
	e.nextID++
	e.standing.OnInsert(id, v)
	return id, nil
}

// Update replaces the vector stored under id on every writable replica.
func (e *Engine) Update(id int, v []float64) error {
	release, err := e.acquire()
	if err != nil {
		return err
	}
	defer release()
	if len(v) != e.d {
		return fmt.Errorf("cluster: vector dims %d != data dims %d", len(v), e.d)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.applyLocked(id, func(r *replica) error { return r.store.Update(id, v) },
		func() { e.standing.OnUpdate(id, v) })
}

// Delete tombstones id on every writable replica.
func (e *Engine) Delete(id int) error {
	release, err := e.acquire()
	if err != nil {
		return err
	}
	defer release()
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.applyLocked(id, func(r *replica) error { return r.store.Delete(id) },
		func() { e.standing.OnDelete(id) })
}

func (e *Engine) applyLocked(id int, op func(*replica) error, hook func()) error {
	shID, err := e.shardOf(id)
	if err != nil {
		return err
	}
	if err := e.commitLocked(e.shards[shID], op); err != nil {
		return fmt.Errorf("cluster: shard %d: %w", shID, err)
	}
	hook()
	return nil
}

// SubscribeKNN opens a standing k-nearest-neighbors subscription whose
// events stay lockstep-equivalent to one-shot re-queries — including
// across replica fail-over, because the requery hook serves from
// whatever current replicas survive.
func (e *Engine) SubscribeKNN(q []float64, k int) (*standing.Subscription, error) {
	release, err := e.acquire()
	if err != nil {
		return nil, err
	}
	defer release()
	if len(q) != e.d {
		return nil, fmt.Errorf("cluster: query dims %d != data dims %d: %w", len(q), e.d, standing.ErrBadSubscription)
	}
	return e.standing.SubscribeKNN(q, k)
}

// SubscribeRadius opens a standing radius watch.
func (e *Engine) SubscribeRadius(q []float64, radius float64) (*standing.Subscription, error) {
	release, err := e.acquire()
	if err != nil {
		return nil, err
	}
	defer release()
	if len(q) != e.d {
		return nil, fmt.Errorf("cluster: query dims %d != data dims %d: %w", len(q), e.d, standing.ErrBadSubscription)
	}
	return e.standing.SubscribeRadius(q, radius)
}

// StandingView returns a copy of a kNN subscription's current result
// view (nil for unknown or radius subscriptions).
func (e *Engine) StandingView(id int) []vec.Neighbor {
	release, err := e.acquire()
	if err != nil {
		return nil
	}
	defer release()
	return e.standing.Current(id)
}

// Unsubscribe tears down a standing subscription.
func (e *Engine) Unsubscribe(id int) error {
	release, err := e.acquire()
	if err != nil {
		return err
	}
	defer release()
	e.standing.Unsubscribe(id)
	return nil
}

// Materialize flattens the live dataset (rows ascending by global id),
// reading one current replica per shard.
func (e *Engine) Materialize() (*vec.Matrix, []int, error) {
	release, err := e.acquire()
	if err != nil {
		return nil, nil, err
	}
	defer release()
	e.mu.Lock()
	defer e.mu.Unlock()
	type part struct {
		m   *vec.Matrix
		ids []int
	}
	parts := make([]part, 0, len(e.shards))
	total := 0
	for _, sh := range e.shards {
		r, err := e.currentReplicaLocked(sh)
		if err != nil {
			return nil, nil, err
		}
		m, ids := r.store.Materialize()
		parts = append(parts, part{m, ids})
		total += len(ids)
	}
	out := vec.NewMatrix(total, e.d)
	ids := make([]int, 0, total)
	// K-way merge by ascending id; per-shard id lists are ascending.
	cursor := make([]int, len(parts))
	for len(ids) < total {
		best, bestID := -1, 0
		for i, p := range parts {
			if cursor[i] >= len(p.ids) {
				continue
			}
			if best == -1 || p.ids[cursor[i]] < bestID {
				best, bestID = i, p.ids[cursor[i]]
			}
		}
		copy(out.Row(len(ids)), parts[best].m.Row(cursor[best]))
		ids = append(ids, bestID)
		cursor[best]++
	}
	return out, ids, nil
}

// currentReplicaLocked picks any live current replica of sh.
func (e *Engine) currentReplicaLocked(sh *cshard) (*replica, error) {
	cur := sh.version.Load()
	live := false
	for _, r := range sh.replicas {
		if !e.nodeLive(r.node) {
			continue
		}
		live = true
		if r.version.Load() >= cur {
			return r, nil
		}
	}
	if live {
		return nil, fmt.Errorf("cluster: shard %d: %w", sh.id, ErrRebalancing)
	}
	return nil, fmt.Errorf("cluster: shard %d: %w", sh.id, ErrNoQuorum)
}
