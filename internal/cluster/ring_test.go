package cluster

import (
	"fmt"
	"reflect"
	"testing"
)

func TestRingDeterministicAndDistinct(t *testing.T) {
	t.Parallel()
	a := newRing(4, 16, 9)
	b := newRing(4, 16, 9)
	if !reflect.DeepEqual(a.points, b.points) {
		t.Fatal("same seed produced different rings")
	}
	for i := 0; i < 32; i++ {
		key := fmt.Sprintf("key-%d", i)
		p := a.pref(key, 3)
		if len(p) != 3 {
			t.Fatalf("pref(%q, 3) returned %d members", key, len(p))
		}
		seen := map[int]bool{}
		for _, m := range p {
			if seen[m] {
				t.Fatalf("pref(%q, 3) repeated member %d: %v", key, m, p)
			}
			seen[m] = true
		}
		if got := b.pref(key, 3); !reflect.DeepEqual(got, p) {
			t.Fatalf("pref(%q) differs between identically seeded rings", key)
		}
		if a.owner(key) != p[0] {
			t.Fatalf("owner(%q) != pref[0]", key)
		}
	}
	// want is clamped to the member count.
	if got := a.pref("clamp", 99); len(got) != 4 {
		t.Fatalf("pref clamp returned %d members, want 4", len(got))
	}
}

// TestRingSpread guards the avalanche fix: FNV alone hashed the
// structured vnode keys to near-consecutive values, collapsing the
// circle into one arc per member so every preference list named the
// same node pair. With the finalizer, ownership over many keys must
// touch every member, and no member may own a giant majority.
func TestRingSpread(t *testing.T) {
	t.Parallel()
	const members, keys = 4, 400
	r := newRing(members, 16, 1)
	counts := make([]int, members)
	for i := 0; i < keys; i++ {
		counts[r.owner(fmt.Sprintf("shard-%d", i))]++
	}
	for m, c := range counts {
		if c == 0 {
			t.Fatalf("member %d owns no keys: %v", m, counts)
		}
		if c > keys*6/10 {
			t.Fatalf("member %d owns %d/%d keys, placement degenerate: %v", m, c, keys, counts)
		}
	}
}

func TestRingSeedChangesLayout(t *testing.T) {
	t.Parallel()
	a := newRing(4, 16, 1)
	b := newRing(4, 16, 2)
	diff := 0
	for i := 0; i < 64; i++ {
		key := fmt.Sprintf("key-%d", i)
		if a.owner(key) != b.owner(key) {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("different seeds produced identical placement for 64 keys")
	}
}
