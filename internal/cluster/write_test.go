package cluster

import (
	"context"
	"errors"
	"testing"

	"pimmine/internal/vec"
)

// vecConcat stacks matrices row-wise into one dataset model.
func vecConcat(ms ...*vec.Matrix) *vec.Matrix {
	n := 0
	for _, m := range ms {
		n += m.N
	}
	out := vec.NewMatrix(n, ms[0].D)
	at := 0
	for _, m := range ms {
		copy(out.Data[at:], m.Data)
		at += len(m.Data)
	}
	return out
}

// TestStaleReplicaExcludedFromWritesAfterUnpause pins the write-path
// version gate: a replica that went stale while its node was paused
// must not receive (and be promoted by) writes after the node rejoins —
// it would be stamped current while missing the mutations that landed
// during the pause. Pause B; insert; unpause B; insert; every read must
// still be bit-exact, and B's stale copies must stay stale until Repair.
func TestStaleReplicaExcludedFromWritesAfterUnpause(t *testing.T) {
	t.Parallel()
	data := randMatrix(80, 8, 31)
	eng := newTestEngine(t, data, Options{Nodes: 2, Replicas: 2, Shards: 2, Seed: 3})
	ctx := context.Background()
	if err := eng.PauseNode(1); err != nil {
		t.Fatalf("PauseNode: %v", err)
	}
	phase1 := randMatrix(6, 8, 310)
	for i := 0; i < phase1.N; i++ {
		if _, err := eng.Insert(phase1.Row(i)); err != nil {
			t.Fatalf("paused-phase insert %d: %v", i, err)
		}
	}
	// Shards that took a write while node 1 was paused now hold a stale
	// replica on node 1.
	staleShards := map[int]bool{}
	for _, sh := range eng.shards {
		if sh.version.Load() > 0 {
			staleShards[sh.id] = true
		}
	}
	if len(staleShards) == 0 {
		t.Fatal("no shard took a write while node 1 was paused")
	}
	if err := eng.UnpauseNode(1); err != nil {
		t.Fatalf("UnpauseNode: %v", err)
	}
	phase2 := randMatrix(6, 8, 311)
	for i := 0; i < phase2.N; i++ {
		if _, err := eng.Insert(phase2.Row(i)); err != nil {
			t.Fatalf("post-unpause insert %d: %v", i, err)
		}
	}
	// The post-unpause writes must have skipped node 1's stale copies.
	for _, sh := range eng.shards {
		if !staleShards[sh.id] {
			continue
		}
		cur := sh.version.Load()
		for _, r := range sh.snapshot() {
			if r.node.id == 1 && r.version.Load() >= cur {
				t.Fatalf("shard %d: node 1 replica promoted to current by a post-unpause write", sh.id)
			}
		}
	}
	// Reads stay bit-exact against the full post-churn dataset.
	model := vecConcat(data, phase1, phase2)
	for i := 0; i < 16; i++ {
		q := model.Row(i * 11 % model.N)
		res, err := eng.Search(ctx, q, 5)
		if err != nil {
			t.Fatalf("search %d: %v", i, err)
		}
		if !sameNeighbors(res.Neighbors, exactTruth(model, q, 5)) {
			t.Fatalf("search %d inexact with a rejoined stale replica present", i)
		}
	}
	// Repair re-ships the stale copies; everything is current and still
	// exact.
	if ships, err := eng.Repair(); err != nil || ships == 0 {
		t.Fatalf("Repair: ships=%d err=%v", ships, err)
	}
	for _, sh := range eng.shards {
		cur := sh.version.Load()
		for _, r := range sh.snapshot() {
			if r.version.Load() < cur {
				t.Fatalf("shard %d still has a stale replica after Repair", sh.id)
			}
		}
	}
	for i := 0; i < 8; i++ {
		q := model.Row(i * 13 % model.N)
		res, err := eng.Search(ctx, q, 5)
		if err != nil {
			t.Fatalf("post-repair search: %v", err)
		}
		if !sameNeighbors(res.Neighbors, exactTruth(model, q, 5)) {
			t.Fatalf("post-repair search %d inexact", i)
		}
	}
}

// TestPartialWriteFailureCommitsAndMarksFailedStale pins the commit
// rule: when an op applies on some writable replicas and fails on
// others, the mutation commits on the successes and the failed replicas
// go stale (for Repair) instead of surviving as divergent current
// copies. When every replica fails, nothing commits.
func TestPartialWriteFailureCommitsAndMarksFailedStale(t *testing.T) {
	t.Parallel()
	data := randMatrix(60, 8, 32)
	eng := newTestEngine(t, data, Options{Nodes: 2, Replicas: 2, Shards: 1})
	ctx := context.Background()
	sh := eng.shards[0]
	victim := sh.replicas[1]
	boom := errors.New("boom")

	// Partial failure: replica 0 applies, the victim fails.
	v := data.Row(1)
	eng.mu.Lock()
	err := eng.commitLocked(sh, func(r *replica) error {
		if r == victim {
			return boom
		}
		return r.store.Update(0, v)
	})
	eng.mu.Unlock()
	if err != nil {
		t.Fatalf("partial failure did not commit: %v", err)
	}
	if got := sh.version.Load(); got != 1 {
		t.Fatalf("shard version %d after partial failure, want 1", got)
	}
	if victim.version.Load() != 0 {
		t.Fatal("failed replica was stamped current")
	}

	// Total failure: no replica applies, nothing commits, the surviving
	// current replica keeps its version.
	eng.mu.Lock()
	err = eng.commitLocked(sh, func(*replica) error { return boom })
	eng.mu.Unlock()
	if !errors.Is(err, boom) {
		t.Fatalf("all-replica failure: got %v, want the joined op error", err)
	}
	if got := sh.version.Load(); got != 1 {
		t.Fatalf("shard version %d after all-replica failure, want 1", got)
	}
	if sh.replicas[0].version.Load() != 1 {
		t.Fatal("all-replica failure disturbed the current replica's version")
	}

	// A follow-up write through the public API skips the stale copy.
	if err := eng.Update(5, data.Row(6)); err != nil {
		t.Fatalf("follow-up update: %v", err)
	}
	if victim.version.Load() != 0 {
		t.Fatal("stale replica received a follow-up write")
	}

	// Reads serve only the committed state, bit-exactly.
	model := data.Clone()
	copy(model.Row(0), v)
	copy(model.Row(5), data.Row(6))
	for i := 0; i < 10; i++ {
		q := model.Row(i * 7 % model.N)
		res, err := eng.Search(ctx, q, 5)
		if err != nil {
			t.Fatalf("search %d: %v", i, err)
		}
		if !sameNeighbors(res.Neighbors, exactTruth(model, q, 5)) {
			t.Fatalf("search %d inexact with a divergent stale replica present", i)
		}
	}

	// Repair replaces the stale copy; the shard is fully current and
	// still exact.
	if ships, err := eng.Repair(); err != nil || ships == 0 {
		t.Fatalf("Repair: ships=%d err=%v", ships, err)
	}
	cur := sh.version.Load()
	for _, r := range sh.snapshot() {
		if r.version.Load() < cur {
			t.Fatal("shard still has a stale replica after Repair")
		}
	}
	q := model.Row(3)
	res, err := eng.Search(ctx, q, 5)
	if err != nil {
		t.Fatalf("post-repair search: %v", err)
	}
	if !sameNeighbors(res.Neighbors, exactTruth(model, q, 5)) {
		t.Fatal("post-repair search inexact")
	}
}

// TestWriteRefusedWhenOnlyStaleReplicasSurvive mirrors the read path's
// ErrRebalancing: a shard whose only live replicas are stale refuses
// writes with ErrRebalancing (Repair can fix it), not ErrNoQuorum.
func TestWriteRefusedWhenOnlyStaleReplicasSurvive(t *testing.T) {
	t.Parallel()
	data := randMatrix(80, 8, 33)
	eng := newTestEngine(t, data, Options{Nodes: 2, Replicas: 2, Shards: 2, Seed: 3})
	if err := eng.PauseNode(1); err != nil {
		t.Fatalf("PauseNode: %v", err)
	}
	for i := 0; i < 8; i++ {
		if _, err := eng.Insert(data.Row(i)); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	if err := eng.UnpauseNode(1); err != nil {
		t.Fatalf("UnpauseNode: %v", err)
	}
	if err := eng.KillNode(0); err != nil {
		t.Fatalf("KillNode: %v", err)
	}
	// Find an id in a shard that took writes: only node 1's stale copy
	// survives there.
	target := -1
	for id := 0; id < data.N; id++ {
		sh, err := eng.shardOf(id)
		if err != nil {
			t.Fatalf("shardOf: %v", err)
		}
		if eng.shards[sh].version.Load() > 0 {
			target = id
			break
		}
	}
	if target < 0 {
		t.Fatal("no initial shard took a write")
	}
	if err := eng.Update(target, data.Row(0)); !errors.Is(err, ErrRebalancing) {
		t.Fatalf("write to all-stale shard: got %v, want ErrRebalancing", err)
	}
}

// TestSingleNodeDefaultReplicasClamp pins the Options default: Replicas
// unset clamps to min(2, Nodes) instead of failing a single-node
// cluster, while explicitly-set Replicas > Nodes is still rejected.
func TestSingleNodeDefaultReplicasClamp(t *testing.T) {
	t.Parallel()
	data := randMatrix(40, 8, 34)
	eng := newTestEngine(t, data, Options{Nodes: 1})
	if eng.Replicas() != 1 {
		t.Fatalf("Replicas() = %d on a single-node cluster, want 1", eng.Replicas())
	}
	q := data.Row(0)
	res, err := eng.Search(context.Background(), q, 3)
	if err != nil {
		t.Fatalf("search: %v", err)
	}
	if !sameNeighbors(res.Neighbors, exactTruth(data, q, 3)) {
		t.Fatal("single-node search inexact")
	}
	if _, err := New(data, Options{Nodes: 1, Replicas: 2}); err == nil {
		t.Fatal("explicit replicas > nodes accepted")
	}
}
