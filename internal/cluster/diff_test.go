package cluster

import (
	"context"
	"fmt"
	"math"
	"strconv"
	"strings"
	"testing"

	"pimmine/internal/dataset"
	"pimmine/internal/serve"
	"pimmine/internal/vec"
)

// This file is the placement layer's central differential guarantee:
// all six mining tasks produce byte-identical transcripts (ids and
// float64 bit patterns) on a 4-node R=2 cluster with ANY single node
// killed, compared against the plain single-process serve.Engine. The
// drivers are the same six used by the routing tier's differential in
// internal/serve — kNN, outlier, DBSCAN neighborhoods, motif, ε-join,
// k-means — reduced to engine queries.

// clusteredData groups generated rows by mixture component so shards
// are content-local (same helper as the serve differential).
func clusteredData(t testing.TB, n, d, clusters int, seed int64) *vec.Matrix {
	t.Helper()
	prof := dataset.Profile{Name: "cluster-diff", FullN: n, D: d, Clusters: clusters, Correlation: 0.4, Spread: 0.08}
	ds := dataset.Generate(prof, n, seed)
	m := vec.NewMatrix(n, d)
	i := 0
	for c := 0; c < clusters; c++ {
		for r := 0; r < n; r++ {
			if ds.Labels[r] == c {
				copy(m.Row(i), ds.X.Row(r))
				i++
			}
		}
	}
	return m
}

type searchFn func(q []float64, k int) []vec.Neighbor

type engineFactory func(data *vec.Matrix, shards int) searchFn

func renderNN(sb *strings.Builder, nn []vec.Neighbor) {
	for _, n := range nn {
		sb.WriteString(strconv.Itoa(n.Index))
		sb.WriteByte(':')
		sb.WriteString(strconv.FormatUint(math.Float64bits(n.Dist), 16))
		sb.WriteByte(' ')
	}
	sb.WriteByte('\n')
}

func growK(search searchFn, q []float64, thr float64, n int) []vec.Neighbor {
	for k := 8; ; k *= 2 {
		if k > n {
			k = n
		}
		nn := search(q, k)
		if len(nn) < k || nn[len(nn)-1].Dist > thr || k == n {
			return nn
		}
	}
}

var miningTasks = []struct {
	name string
	run  func(t *testing.T, data *vec.Matrix, mk engineFactory) string
}{
	{"knn", func(t *testing.T, data *vec.Matrix, mk engineFactory) string {
		search := mk(data, 6)
		var sb strings.Builder
		for i := 0; i < 12; i++ {
			q := data.Row((i * 29) % data.N)
			renderNN(&sb, search(q, 10))
		}
		return sb.String()
	}},
	{"outlier", func(t *testing.T, data *vec.Matrix, mk engineFactory) string {
		search := mk(data, 6)
		const k = 5
		type scored struct {
			id   int
			dist float64
		}
		var all []scored
		for i := 0; i < 60; i++ {
			nn := search(data.Row(i), k+1)
			kd := math.Inf(1)
			seen := 0
			for _, n := range nn {
				if n.Index == i {
					continue
				}
				seen++
				if seen == k {
					kd = n.Dist
					break
				}
			}
			all = append(all, scored{i, kd})
		}
		for pass := 0; pass < 5; pass++ {
			best := pass
			for j := pass + 1; j < len(all); j++ {
				if all[j].dist > all[best].dist ||
					(all[j].dist == all[best].dist && all[j].id < all[best].id) {
					best = j
				}
			}
			all[pass], all[best] = all[best], all[pass]
		}
		var sb strings.Builder
		for _, s := range all[:5] {
			fmt.Fprintf(&sb, "%d:%x ", s.id, math.Float64bits(s.dist))
		}
		return sb.String()
	}},
	{"dbscan", func(t *testing.T, data *vec.Matrix, mk engineFactory) string {
		search := mk(data, 6)
		eps2 := search(data.Row(0), 8)[7].Dist * 1.25
		var sb strings.Builder
		for i := 0; i < 15; i++ {
			q := data.Row((i * 41) % data.N)
			for _, n := range growK(search, q, eps2, data.N) {
				if n.Dist <= eps2 {
					fmt.Fprintf(&sb, "%d:%x ", n.Index, math.Float64bits(n.Dist))
				}
			}
			sb.WriteByte('\n')
		}
		return sb.String()
	}},
	{"motif", func(t *testing.T, data *vec.Matrix, mk engineFactory) string {
		search := mk(data, 6)
		const w = 5
		var sb strings.Builder
		for i := 0; i < 20; i++ {
			var match *vec.Neighbor
			for k := 8; match == nil; k *= 2 {
				if k > data.N {
					k = data.N
				}
				for _, n := range search(data.Row(i), k) {
					if intAbs(n.Index-i) >= w {
						m := n
						match = &m
						break
					}
				}
				if k == data.N {
					break
				}
			}
			if match != nil {
				fmt.Fprintf(&sb, "%d->%d:%x\n", i, match.Index, math.Float64bits(match.Dist))
			}
		}
		return sb.String()
	}},
	{"join", func(t *testing.T, data *vec.Matrix, mk engineFactory) string {
		search := mk(data, 6)
		eps2 := search(data.Row(3), 6)[5].Dist * 1.1
		var sb strings.Builder
		for i := 0; i < 10; i++ {
			q := data.Row(data.N/2 + i*7)
			for _, n := range growK(search, q, eps2, data.N) {
				if n.Dist <= eps2 {
					fmt.Fprintf(&sb, "%d:%x ", n.Index, math.Float64bits(n.Dist))
				}
			}
			sb.WriteByte('\n')
		}
		return sb.String()
	}},
	{"kmeans", func(t *testing.T, data *vec.Matrix, mk engineFactory) string {
		const kc, iters = 8, 3
		d := data.D
		centers := vec.NewMatrix(kc, d)
		for c := 0; c < kc; c++ {
			copy(centers.Row(c), data.Row(c*37))
		}
		var sb strings.Builder
		for it := 0; it < iters; it++ {
			assign := mk(centers, 2)
			sums := vec.NewMatrix(kc, d)
			counts := make([]int, kc)
			for i := 0; i < 120; i++ {
				p := data.Row(i * 3 % data.N)
				c := assign(p, 1)[0].Index
				fmt.Fprintf(&sb, "%d ", c)
				counts[c]++
				row := sums.Row(c)
				for j, v := range p {
					row[j] += v
				}
			}
			sb.WriteByte('\n')
			for c := 0; c < kc; c++ {
				if counts[c] == 0 {
					continue
				}
				row, sum := centers.Row(c), sums.Row(c)
				for j := range row {
					row[j] = sum[j] / float64(counts[c])
				}
			}
		}
		for c := 0; c < kc; c++ {
			for _, v := range centers.Row(c) {
				fmt.Fprintf(&sb, "%x ", math.Float64bits(v))
			}
		}
		return sb.String()
	}},
}

func intAbs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// serveFactory builds the single-process baseline.
func serveFactory(t *testing.T, ctx context.Context) engineFactory {
	return func(data *vec.Matrix, shards int) searchFn {
		eng, err := serve.New(data, serve.Options{Shards: shards})
		if err != nil {
			t.Fatalf("serve.New: %v", err)
		}
		t.Cleanup(func() { eng.Close() })
		return func(q []float64, k int) []vec.Neighbor {
			res, err := eng.Search(ctx, q, k)
			if err != nil {
				t.Fatalf("serve search: %v", err)
			}
			return res.Neighbors
		}
	}
}

// clusterFactory builds a 4-node R=2 cluster and kills the given node
// before serving anything (kill < 0 keeps all nodes up).
func clusterFactory(t *testing.T, ctx context.Context, kill int) engineFactory {
	return func(data *vec.Matrix, shards int) searchFn {
		eng, err := New(data, Options{Nodes: 4, Replicas: 2, Shards: shards, Seed: 7})
		if err != nil {
			t.Fatalf("cluster.New: %v", err)
		}
		t.Cleanup(func() { eng.Close() })
		if kill >= 0 {
			if err := eng.KillNode(kill); err != nil {
				t.Fatalf("KillNode(%d): %v", kill, err)
			}
		}
		return func(q []float64, k int) []vec.Neighbor {
			res, err := eng.Search(ctx, q, k)
			if err != nil {
				t.Fatalf("cluster search (node %d down): %v", kill, err)
			}
			return res.Neighbors
		}
	}
}

// TestAnySingleNodeDownBitIdenticalAcrossTasks kills each of the four
// nodes in turn and requires every mining-task transcript to match the
// plain serve.Engine byte for byte — fail-over must be invisible in the
// answers, not merely tolerable.
func TestAnySingleNodeDownBitIdenticalAcrossTasks(t *testing.T) {
	t.Parallel()
	data := clusteredData(t, 360, 24, 6, 17)
	ctx := context.Background()
	want := make(map[string]string, len(miningTasks))
	for _, task := range miningTasks {
		want[task.name] = task.run(t, data, serveFactory(t, ctx))
	}
	for kill := -1; kill < 4; kill++ {
		kill := kill
		name := fmt.Sprintf("kill=%d", kill)
		t.Run(name, func(t *testing.T) {
			for _, task := range miningTasks {
				got := task.run(t, data, clusterFactory(t, ctx, kill))
				if got != want[task.name] {
					t.Fatalf("task %s: cluster transcript with node %d down differs from serve baseline\ncluster:\n%s\nserve:\n%s",
						task.name, kill, got, want[task.name])
				}
			}
		})
	}
}
