package cluster

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pimmine/internal/serve"
	"pimmine/internal/vec"
)

// TestNodeKillRaceHammer is the satellite race test: concurrent Search,
// SearchBatch, and identity-Update callers hammer the engine while a
// safety-bounded chaos schedule kills, restores, pauses, and partitions
// nodes. Every success must be bit-exact against the static truth;
// every failure must carry one of the typed cluster sentinels (a
// transient window between a kill and a retry is allowed, an untyped or
// wrong answer is not). The writer replaces rows with their own values,
// so the logical dataset never changes while the write path (version
// gating, commit rule, quorum refusal) races the chaos steps. Run under
// -race in CI.
func TestNodeKillRaceHammer(t *testing.T) {
	t.Parallel()
	data := randMatrix(240, 12, 21)
	eng := newTestEngine(t, data, Options{Nodes: 4, Replicas: 2, Shards: 6, Seed: 5})
	const k = 5
	// Truth per query row, computed once up front.
	truth := make([][]vec.Neighbor, data.N)
	for i := 0; i < data.N; i++ {
		truth[i] = exactTruth(data, data.Row(i), k)
	}

	ctx := context.Background()
	var successes, failures atomic.Int64
	checkErr := func(err error) {
		failures.Add(1)
		if !errors.Is(err, ErrNoQuorum) && !errors.Is(err, ErrRebalancing) && !errors.Is(err, serve.ErrClosed) {
			t.Errorf("untyped hammer failure: %v", err)
		}
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				row := (i*13 + w*31) % data.N
				res, err := eng.Search(ctx, data.Row(row), k)
				if err != nil {
					checkErr(err)
					continue
				}
				if !sameNeighbors(res.Neighbors, truth[row]) {
					t.Errorf("worker %d: inexact success for row %d", w, row)
					return
				}
				successes.Add(1)
			}
		}(w)
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			qs := vec.NewMatrix(4, data.D)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				rows := make([]int, qs.N)
				for j := range rows {
					rows[j] = (i*7 + w*17 + j*53) % data.N
					copy(qs.Row(j), data.Row(rows[j]))
				}
				br, err := eng.SearchBatch(ctx, qs, k)
				if err != nil {
					checkErr(err)
					continue
				}
				for j, res := range br.Results {
					if !sameNeighbors(res.Neighbors, truth[rows[j]]) {
						t.Errorf("batch worker %d: inexact success for row %d", w, rows[j])
						return
					}
				}
				successes.Add(1)
			}
		}(w)
	}

	// Identity updates: bit-identical vectors under unchanged ids keep
	// the truth tables valid while exercising the replicated write path
	// against concurrent kills, pauses, and partitions.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			row := (i * 29) % data.N
			if err := eng.Update(row, data.Row(row)); err != nil {
				checkErr(err)
			}
		}
	}()

	c := NewChaos(eng, 7, ChaosConfig{MaxSlow: 100 * time.Microsecond})
	for i := 0; i < 60; i++ {
		c.Step()
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()

	if successes.Load() == 0 {
		t.Fatal("hammer made no successful queries")
	}
	t.Logf("hammer: %d successes, %d typed failures across 60 chaos steps",
		successes.Load(), failures.Load())
}
