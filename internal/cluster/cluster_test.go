package cluster

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"

	"pimmine/internal/arch"
	"pimmine/internal/knn"
	"pimmine/internal/resilience"
	"pimmine/internal/route"
	"pimmine/internal/serve"
	"pimmine/internal/standing"
	"pimmine/internal/vec"
)

func randMatrix(n, d int, seed int64) *vec.Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := vec.NewMatrix(n, d)
	for i := range m.Data {
		m.Data[i] = rng.Float64()
	}
	return m
}

func newTestEngine(t *testing.T, data *vec.Matrix, opts Options) *Engine {
	t.Helper()
	eng, err := New(data, opts)
	if err != nil {
		t.Fatalf("cluster.New: %v", err)
	}
	t.Cleanup(func() { eng.Close() })
	return eng
}

// exactTruth computes the sequential-scan answer, the bit-exact oracle.
func exactTruth(data *vec.Matrix, q []float64, k int) []vec.Neighbor {
	return knn.NewStandard(data).Search(q, k, arch.NewMeter())
}

func sameNeighbors(a, b []vec.Neighbor) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Index != b[i].Index ||
			math.Float64bits(a[i].Dist) != math.Float64bits(b[i].Dist) {
			return false
		}
	}
	return true
}

func TestValidation(t *testing.T) {
	t.Parallel()
	data := randMatrix(40, 8, 1)
	if _, err := New(nil, Options{}); err == nil {
		t.Fatal("nil data accepted")
	}
	if _, err := New(data, Options{Nodes: 2, Replicas: 3}); err == nil {
		t.Fatal("replicas > nodes accepted")
	}
	if _, err := New(data, Options{Nodes: -1}); err == nil {
		t.Fatal("negative nodes accepted")
	}
	if _, err := New(data, Options{Replicas: -2}); err == nil {
		t.Fatal("negative replicas accepted")
	}
	r, err := route.NewEven(route.Config{}, data, 3)
	if err != nil {
		t.Fatalf("route.NewEven: %v", err)
	}
	if _, err := New(data, Options{Nodes: 4, Shards: 5, Router: r}); !errors.Is(err, route.ErrShardMismatch) {
		t.Fatalf("router shard mismatch not rejected: %v", err)
	}
}

func TestAccessorsAndPlacement(t *testing.T) {
	t.Parallel()
	data := randMatrix(100, 8, 2)
	eng := newTestEngine(t, data, Options{Nodes: 4, Replicas: 2, Shards: 8})
	if eng.Dims() != 8 || eng.Rows() != 100 || eng.NumShards() != 8 ||
		eng.NumNodes() != 4 || eng.Replicas() != 2 || eng.NodesUp() != 4 {
		t.Fatalf("accessors: dims=%d rows=%d shards=%d nodes=%d R=%d up=%d",
			eng.Dims(), eng.Rows(), eng.NumShards(), eng.NumNodes(), eng.Replicas(), eng.NodesUp())
	}
	// Every shard holds exactly R replicas on distinct nodes.
	total := 0
	for _, sh := range eng.shards {
		seen := map[int]bool{}
		for _, r := range sh.replicas {
			if seen[r.node.id] {
				t.Fatalf("shard %d has two replicas on node %d", sh.id, r.node.id)
			}
			seen[r.node.id] = true
		}
		if len(sh.replicas) != 2 {
			t.Fatalf("shard %d has %d replicas, want 2", sh.id, len(sh.replicas))
		}
		total += len(sh.replicas)
	}
	// Initial installs count as wear.
	wear := int64(0)
	for _, w := range eng.Wear() {
		wear += w
	}
	if wear != int64(total) {
		t.Fatalf("total wear %d != total installs %d", wear, total)
	}
}

func TestFailoverOnInjectedFaultsStaysExact(t *testing.T) {
	t.Parallel()
	data := randMatrix(200, 12, 3)
	eng := newTestEngine(t, data, Options{
		Nodes: 4, Replicas: 2, Shards: 6,
		Breaker: resilience.BreakerConfig{FailureThreshold: 2, CoolDown: time.Hour},
	})
	ctx := context.Background()
	// Every visit to the node holding shard 0's preferred replica fails
	// for a while: reads must fail over and stay bit-exact throughout.
	victim := eng.shards[0].replicas[0].node.id
	if err := eng.InjectFaults(victim, 50); err != nil {
		t.Fatalf("InjectFaults: %v", err)
	}
	sawFailover := false
	for i := 0; i < 20; i++ {
		q := data.Row(i * 7 % data.N)
		res, err := eng.Search(ctx, q, 5)
		if err != nil {
			t.Fatalf("search %d: %v", i, err)
		}
		if !sameNeighbors(res.Neighbors, exactTruth(data, q, 5)) {
			t.Fatalf("search %d inexact under injected faults", i)
		}
		if len(res.BreakerOpen) > 0 {
			sawFailover = true
		}
	}
	if !sawFailover {
		t.Fatal("no result reported fail-over despite injected faults")
	}
	states := eng.BreakerStates()
	if states[victim] != resilience.StateOpen {
		t.Fatalf("node %d breaker state %v, want open", victim, states[victim])
	}
}

func TestNoQuorumTyped(t *testing.T) {
	t.Parallel()
	data := randMatrix(60, 8, 4)
	eng := newTestEngine(t, data, Options{Nodes: 2, Replicas: 1, Shards: 4})
	victim := eng.shards[0].replicas[0].node.id
	if err := eng.KillNode(victim); err != nil {
		t.Fatalf("KillNode: %v", err)
	}
	_, err := eng.Search(context.Background(), data.Row(0), 3)
	if !errors.Is(err, ErrNoQuorum) {
		t.Fatalf("search with R=1 and host killed: got %v, want ErrNoQuorum", err)
	}
	// All dead shards are reported, not just the first to fail.
	lost := 0
	for _, sh := range eng.shards {
		if len(sh.snapshot()) == 0 {
			lost++
		}
	}
	if lost < 2 {
		t.Skipf("placement put fewer than 2 shards on node 0 (%d)", lost)
	}
	if got := strings.Count(err.Error(), "shard "); got < lost {
		t.Fatalf("joined error mentions %d shards, want >= %d: %v", got, lost, err)
	}
}

func TestRebalancingTypedWhenOnlyStaleSurvives(t *testing.T) {
	t.Parallel()
	data := randMatrix(80, 8, 5)
	eng := newTestEngine(t, data, Options{Nodes: 2, Replicas: 2, Shards: 2, Seed: 3})
	// Pause node 1, write to every shard (replicas on node 1 go stale),
	// then kill node 0: only stale copies survive.
	if err := eng.PauseNode(1); err != nil {
		t.Fatalf("PauseNode: %v", err)
	}
	for i := 0; i < 8; i++ {
		if _, err := eng.Insert(data.Row(i)); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	if err := eng.UnpauseNode(1); err != nil {
		t.Fatalf("UnpauseNode: %v", err)
	}
	if err := eng.KillNode(0); err != nil {
		t.Fatalf("KillNode: %v", err)
	}
	_, err := eng.Search(context.Background(), data.Row(0), 3)
	if !errors.Is(err, ErrRebalancing) {
		t.Fatalf("search with only stale replicas: got %v, want ErrRebalancing", err)
	}
}

func TestRepairRestoresReplicationAfterKill(t *testing.T) {
	t.Parallel()
	data := randMatrix(120, 10, 6)
	eng := newTestEngine(t, data, Options{Nodes: 4, Replicas: 2, Shards: 8})
	if err := eng.KillNode(2); err != nil {
		t.Fatalf("KillNode: %v", err)
	}
	ships, err := eng.Repair()
	if err != nil {
		t.Fatalf("Repair: %v", err)
	}
	if ships == 0 {
		t.Fatal("Repair shipped nothing after a kill")
	}
	for _, sh := range eng.shards {
		live := 0
		for _, r := range sh.snapshot() {
			if r.node.state.Load() != nodeDown {
				live++
			}
		}
		if live != 2 {
			t.Fatalf("shard %d has %d live replicas after repair, want 2", sh.id, live)
		}
	}
	st := eng.ShipStats()
	if st.Ships != ships || st.Bytes <= 0 || st.ModeledNs <= 0 {
		t.Fatalf("ship stats %+v inconsistent with %d ships", st, ships)
	}
	// Transfer is priced at LinkGBs GB/s == bytes/ns.
	wantNs := float64(st.Bytes) / 12.5
	if math.Abs(st.ModeledNs-wantNs) > 1e-6*wantNs {
		t.Fatalf("modeled ns %v, want %v", st.ModeledNs, wantNs)
	}
	// Queries are exact again with node 2 still down.
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		q := data.Row(i * 11 % data.N)
		res, err := eng.Search(ctx, q, 4)
		if err != nil {
			t.Fatalf("post-repair search: %v", err)
		}
		if !sameNeighbors(res.Neighbors, exactTruth(data, q, 4)) {
			t.Fatalf("post-repair search %d inexact", i)
		}
	}
}

func TestPausedStaleReplicaExcludedUntilRepair(t *testing.T) {
	t.Parallel()
	data := randMatrix(90, 8, 7)
	eng := newTestEngine(t, data, Options{Nodes: 3, Replicas: 2, Shards: 3})
	ctx := context.Background()
	if err := eng.PauseNode(1); err != nil {
		t.Fatalf("PauseNode: %v", err)
	}
	// Writes land only on reachable replicas; paused copies go stale.
	extra := randMatrix(6, 8, 70)
	for i := 0; i < extra.N; i++ {
		if _, err := eng.Insert(extra.Row(i)); err != nil {
			t.Fatalf("insert: %v", err)
		}
	}
	if err := eng.UnpauseNode(1); err != nil {
		t.Fatalf("UnpauseNode: %v", err)
	}
	// Model of the post-churn dataset for the oracle.
	model := vec.NewMatrix(data.N+extra.N, 8)
	copy(model.Data, data.Data)
	copy(model.Data[data.N*8:], extra.Data)
	for i := 0; i < 12; i++ {
		q := model.Row(i * 13 % model.N)
		res, err := eng.Search(ctx, q, 5)
		if err != nil {
			t.Fatalf("search: %v", err)
		}
		if !sameNeighbors(res.Neighbors, exactTruth(model, q, 5)) {
			t.Fatalf("search %d inexact with stale replica present", i)
		}
	}
	if ships, err := eng.Repair(); err != nil || ships == 0 {
		t.Fatalf("Repair: ships=%d err=%v", ships, err)
	}
	// After anti-entropy, every replica is current again.
	for _, sh := range eng.shards {
		cur := sh.version.Load()
		for _, r := range sh.snapshot() {
			if r.version.Load() < cur {
				t.Fatalf("shard %d still has a stale replica after Repair", sh.id)
			}
		}
	}
}

func TestAsymmetricPartition(t *testing.T) {
	t.Parallel()
	data := randMatrix(100, 8, 8)
	eng := newTestEngine(t, data, Options{Nodes: 4, Replicas: 2, Shards: 8})
	ctx := context.Background()
	if err := eng.SetLink(-1, 1, false); err != nil {
		t.Fatalf("SetLink: %v", err)
	}
	for i := 0; i < 10; i++ {
		q := data.Row(i * 9 % data.N)
		res, err := eng.Search(ctx, q, 4)
		if err != nil {
			t.Fatalf("search under partition: %v", err)
		}
		if !sameNeighbors(res.Neighbors, exactTruth(data, q, 4)) {
			t.Fatalf("search %d inexact under partition", i)
		}
	}
	if err := eng.HealLinks(); err != nil {
		t.Fatalf("HealLinks: %v", err)
	}
}

func TestWriteRefusedWithoutQuorum(t *testing.T) {
	t.Parallel()
	data := randMatrix(40, 6, 9)
	eng := newTestEngine(t, data, Options{Nodes: 2, Replicas: 1, Shards: 2})
	if err := eng.KillNode(0); err != nil {
		t.Fatalf("KillNode: %v", err)
	}
	// Find an id whose shard lost its only replica.
	target := -1
	for id := 0; id < data.N; id++ {
		sh, err := eng.shardOf(id)
		if err != nil {
			t.Fatalf("shardOf: %v", err)
		}
		if len(eng.shards[sh].snapshot()) == 0 {
			target = id
			break
		}
	}
	if target < 0 {
		t.Skip("node 0 hosted no shard")
	}
	if err := eng.Update(target, data.Row(0)); !errors.Is(err, ErrNoQuorum) {
		t.Fatalf("update into lost shard: got %v, want ErrNoQuorum", err)
	}
	if err := eng.Delete(target); !errors.Is(err, ErrNoQuorum) {
		t.Fatalf("delete into lost shard: got %v, want ErrNoQuorum", err)
	}
}

func TestAdminOpsOnDeadNode(t *testing.T) {
	t.Parallel()
	data := randMatrix(40, 6, 10)
	eng := newTestEngine(t, data, Options{Nodes: 3, Replicas: 2})
	if err := eng.KillNode(1); err != nil {
		t.Fatalf("KillNode: %v", err)
	}
	if err := eng.PauseNode(1); !errors.Is(err, ErrNodeDown) {
		t.Fatalf("pause dead node: got %v, want ErrNodeDown", err)
	}
	if err := eng.SlowNode(1, time.Millisecond); !errors.Is(err, ErrNodeDown) {
		t.Fatalf("slow dead node: got %v, want ErrNodeDown", err)
	}
	if err := eng.InjectFaults(1, 3); !errors.Is(err, ErrNodeDown) {
		t.Fatalf("inject into dead node: got %v, want ErrNodeDown", err)
	}
	if err := eng.KillNode(7); err == nil {
		t.Fatal("out-of-range node accepted")
	}
}

func TestMutationsMatchSingleStoreModel(t *testing.T) {
	t.Parallel()
	data := randMatrix(100, 8, 11)
	eng := newTestEngine(t, data, Options{Nodes: 4, Replicas: 2, Shards: 4, Seed: 5})
	ctx := context.Background()
	// Model: a plain mutable serve engine over the same data sees the
	// same logical dataset; answers must agree bit-for-bit.
	model, err := serve.NewMutable(data, serve.MutableOptions{Options: serve.Options{Shards: 1}})
	if err != nil {
		t.Fatalf("NewMutable: %v", err)
	}
	t.Cleanup(func() { model.Close() })

	rng := rand.New(rand.NewSource(99))
	live := map[int]bool{}
	for i := 0; i < data.N; i++ {
		live[i] = true
	}
	nextID := data.N
	for step := 0; step < 120; step++ {
		switch op := rng.Intn(3); {
		case op == 0:
			v := make([]float64, 8)
			for j := range v {
				v[j] = rng.Float64()
			}
			id, err := eng.Insert(v)
			if err != nil {
				t.Fatalf("step %d insert: %v", step, err)
			}
			mid, err := model.Insert(v)
			if err != nil {
				t.Fatalf("model insert: %v", err)
			}
			if id != mid || id != nextID {
				t.Fatalf("step %d: cluster id %d, model id %d, want %d", step, id, mid, nextID)
			}
			live[id] = true
			nextID++
		case op == 1 && len(live) > 0:
			id := pickLive(rng, live)
			v := make([]float64, 8)
			for j := range v {
				v[j] = rng.Float64()
			}
			if err := eng.Update(id, v); err != nil {
				t.Fatalf("step %d update %d: %v", step, id, err)
			}
			if err := model.Update(id, v); err != nil {
				t.Fatalf("model update: %v", err)
			}
		case op == 2 && len(live) > 1:
			id := pickLive(rng, live)
			if err := eng.Delete(id); err != nil {
				t.Fatalf("step %d delete %d: %v", step, id, err)
			}
			if err := model.Delete(id); err != nil {
				t.Fatalf("model delete: %v", err)
			}
			delete(live, id)
		}
		if step%20 == 19 {
			q := make([]float64, 8)
			for j := range q {
				q[j] = rng.Float64()
			}
			got, err := eng.Search(ctx, q, 6)
			if err != nil {
				t.Fatalf("step %d search: %v", step, err)
			}
			want, err := model.Search(ctx, q, 6)
			if err != nil {
				t.Fatalf("model search: %v", err)
			}
			if !sameNeighbors(got.Neighbors, want.Neighbors) {
				t.Fatalf("step %d: cluster diverged from model", step)
			}
		}
	}
	// Materialize agrees with the model's flattened view.
	gm, gids, err := eng.Materialize()
	if err != nil {
		t.Fatalf("Materialize: %v", err)
	}
	mm, mids := model.Materialize()
	if len(gids) != len(mids) {
		t.Fatalf("materialize ids: %d vs %d", len(gids), len(mids))
	}
	for i := range gids {
		if gids[i] != mids[i] {
			t.Fatalf("materialize id %d: %d vs %d", i, gids[i], mids[i])
		}
		for j := 0; j < 8; j++ {
			if math.Float64bits(gm.Row(i)[j]) != math.Float64bits(mm.Row(i)[j]) {
				t.Fatalf("materialize row %d differs", i)
			}
		}
	}
}

func pickLive(rng *rand.Rand, live map[int]bool) int {
	ids := make([]int, 0, len(live))
	for id := range live {
		ids = append(ids, id)
	}
	min := ids[0]
	for _, id := range ids {
		if id < min {
			min = id
		}
	}
	// Deterministic choice independent of map order.
	n := rng.Intn(len(ids))
	sortInts(ids)
	return ids[n]
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

func TestSearchBatchMatchesSingleQueries(t *testing.T) {
	t.Parallel()
	data := randMatrix(150, 10, 12)
	eng := newTestEngine(t, data, Options{Nodes: 4, Replicas: 2, Shards: 6})
	ctx := context.Background()
	queries := randMatrix(12, 10, 13)
	br, err := eng.SearchBatch(ctx, queries, 5)
	if err != nil {
		t.Fatalf("SearchBatch: %v", err)
	}
	for i := 0; i < queries.N; i++ {
		want := exactTruth(data, queries.Row(i), 5)
		if !sameNeighbors(br.Results[i].Neighbors, want) {
			t.Fatalf("batch query %d inexact", i)
		}
	}
}

func TestClosedEngine(t *testing.T) {
	t.Parallel()
	data := randMatrix(50, 6, 14)
	eng, err := New(data, Options{Nodes: 2, Replicas: 2})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := eng.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := eng.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := eng.Search(context.Background(), data.Row(0), 3); !errors.Is(err, serve.ErrClosed) {
		t.Fatalf("search on closed engine: got %v, want serve.ErrClosed", err)
	}
	if _, err := eng.Insert(data.Row(0)); !errors.Is(err, serve.ErrClosed) {
		t.Fatalf("insert on closed engine: got %v, want serve.ErrClosed", err)
	}
	if _, err := eng.SubscribeKNN(data.Row(0), 3); !errors.Is(err, serve.ErrClosed) {
		t.Fatalf("subscribe on closed engine: got %v, want serve.ErrClosed", err)
	}
}

func TestSubscriptionValidation(t *testing.T) {
	t.Parallel()
	data := randMatrix(50, 6, 15)
	eng := newTestEngine(t, data, Options{Nodes: 2, Replicas: 2})
	if _, err := eng.SubscribeKNN([]float64{1, 2}, 3); !errors.Is(err, standing.ErrBadSubscription) {
		t.Fatalf("bad dims subscription: got %v, want ErrBadSubscription", err)
	}
}

func TestRoutedExactSkipsDeadShard(t *testing.T) {
	t.Parallel()
	// Content-local shards so routing can prove far shards out; then a
	// dead shard that the bound excludes must not fail the query.
	data := clusteredData(t, 240, 16, 6, 21)
	r, err := route.NewEven(route.Config{}, data, 6)
	if err != nil {
		t.Fatalf("route.NewEven: %v", err)
	}
	eng := newTestEngine(t, data, Options{Nodes: 6, Replicas: 1, Shards: 6, Router: r})
	ctx := context.Background()
	// Hosted shards per node (R=1: killing a node loses its shards).
	hosted := make([][]int, eng.NumNodes())
	for _, sh := range eng.shards {
		for _, rep := range sh.snapshot() {
			hosted[rep.node.id] = append(hosted[rep.node.id], sh.id)
		}
	}
	// Find a query whose routed plan skips every shard of some node.
	var q []float64
	killNode := -1
	for i := 0; i < data.N && killNode < 0; i++ {
		res, err := eng.SearchMode(ctx, data.Row(i), 5, route.ModeExact)
		if err != nil {
			t.Fatalf("routed search: %v", err)
		}
		if res.Routed == nil || len(res.Routed.SkippedShards) == 0 {
			continue
		}
		skipped := map[int]bool{}
		for _, s := range res.Routed.SkippedShards {
			skipped[s] = true
		}
		for n, shs := range hosted {
			if len(shs) == 0 {
				continue
			}
			all := true
			for _, s := range shs {
				if !skipped[s] {
					all = false
					break
				}
			}
			if all {
				q, killNode = data.Row(i), n
				break
			}
		}
	}
	if killNode < 0 {
		t.Skip("no query's skip set covered a whole node on this dataset")
	}
	// Killing that node loses its shards entirely — yet the routed
	// query succeeds, because the admissible bound proves every lost
	// shard irrelevant to this query's top-k.
	if err := eng.KillNode(killNode); err != nil {
		t.Fatalf("KillNode: %v", err)
	}
	res, err := eng.SearchMode(ctx, q, 5, route.ModeExact)
	if err != nil {
		t.Fatalf("routed search with skipped shard dead: %v", err)
	}
	if !sameNeighbors(res.Neighbors, exactTruth(data, q, 5)) {
		t.Fatal("routed answer inexact with dead skipped shard")
	}
	// Unrouted fan-out over the same engine must fail: it cannot prove
	// the dead shard out.
	if _, err := eng.assemble(ctx, q, 5, nil, nil); !errors.Is(err, ErrNoQuorum) {
		t.Fatalf("unrouted fan-out with dead shard: got %v, want ErrNoQuorum", err)
	}
}

func TestRebalanceMovesOffMostWornNode(t *testing.T) {
	t.Parallel()
	data := randMatrix(120, 8, 16)
	eng := newTestEngine(t, data, Options{Nodes: 4, Replicas: 2, Shards: 8})
	// Wear node 0 artificially: kill/restore/repair cycles ship onto
	// others, so instead bump its counter directly through the ledger
	// the engine consults.
	eng.nodes[0].wear.Add(50)
	moved, err := eng.Rebalance()
	if err != nil {
		t.Fatalf("Rebalance: %v", err)
	}
	if !moved {
		t.Fatal("Rebalance declined to move off a node with 50 extra wear")
	}
	// The move itself must not cost exactness.
	ctx := context.Background()
	for i := 0; i < 8; i++ {
		q := data.Row(i * 17 % data.N)
		res, err := eng.Search(ctx, q, 4)
		if err != nil {
			t.Fatalf("post-rebalance search: %v", err)
		}
		if !sameNeighbors(res.Neighbors, exactTruth(data, q, 4)) {
			t.Fatalf("post-rebalance search %d inexact", i)
		}
	}
}
