package cluster

import (
	"errors"
	"fmt"

	"pimmine/internal/delta"
	"pimmine/internal/wal"
)

// Snapshot shipping moves a shard replica between nodes as an encoded
// PIMSNAP1 image — the same CRC-framed format the durability layer
// writes to disk, so a shipped replica is byte-for-byte the image a
// crash recovery would install. The transfer is priced like any other
// data movement in this repo: bytes over a link running at
// Options.LinkGBs (GB/s == bytes/ns), accumulated in ShipStats and the
// pim_cluster_ship_* metrics. Installing the image programs the target
// node's crossbars, so the target's wear counter advances — which is
// exactly what Repair and Rebalance consult to pick the least-worn
// destination.

// shipLocked copies sh's state from src onto node dst and returns the
// installed replica. Caller holds e.mu. The source node must be up and
// its link to dst intact.
func (e *Engine) shipLocked(sh *cshard, src *replica, dst *node) (*replica, error) {
	if src.node.state.Load() != nodeUp {
		return nil, fmt.Errorf("cluster: ship shard %d from node %d: %w", sh.id, src.node.id, ErrNodeDown)
	}
	if !e.reachable(src.node.id, dst.id) {
		return nil, fmt.Errorf("cluster: ship shard %d: link %d->%d severed", sh.id, src.node.id, dst.id)
	}
	data, ids := src.store.Materialize()
	snap := &wal.Snapshot{
		Dims:   e.d,
		NextID: src.store.NextID(),
		RR:     0,
		Shards: []wal.ShardState{{IDs: ids, Data: append([]float64(nil), data.Data...)}},
	}
	img := wal.EncodeSnapshot(snap)
	dec, err := wal.DecodeSnapshot(img)
	if err != nil {
		return nil, fmt.Errorf("cluster: ship shard %d: %w", sh.id, err)
	}
	st, err := restoreShard(dec, 0, e.replicaDeltaOptions(sh.id, 0))
	if err != nil {
		return nil, fmt.Errorf("cluster: install shard %d on node %d: %w", sh.id, dst.id, err)
	}
	bytes := int64(len(img))
	ns := float64(bytes) / e.opts.LinkGBs
	e.shipMu.Lock()
	e.ship.Ships++
	e.ship.Bytes += bytes
	e.ship.ModeledNs += ns
	e.shipMu.Unlock()
	e.met.shipped(bytes, ns)
	dst.wear.Add(1)
	e.met.wearAdd(dst.id, 1)
	rep := &replica{node: dst, store: st}
	rep.version.Store(src.version.Load())
	return rep, nil
}

// restoreShard turns one decoded snapshot shard into a delta store.
func restoreShard(snap *wal.Snapshot, shard int, opts delta.Options) (*delta.Store, error) {
	ss := snap.Shards[shard]
	m := matrixFrom(ss.Data, snap.Dims)
	return delta.Restore(m, ss.IDs, snap.NextID, opts)
}

// Repair is anti-entropy: every shard is brought back to R current
// replicas — stale copies on live nodes are replaced, missing copies
// are shipped to the least-worn eligible node. Returns the number of
// snapshot installs performed. A shard with no live current replica at
// all cannot be repaired and contributes an ErrNoQuorum to the joined
// error; the other shards are still repaired.
func (e *Engine) Repair() (int, error) {
	release, err := e.acquire()
	if err != nil {
		return 0, err
	}
	defer release()
	e.mu.Lock()
	defer e.mu.Unlock()
	ships := 0
	var errs []error
	for _, sh := range e.shards {
		n, err := e.repairShardLocked(sh)
		ships += n
		if err != nil {
			errs = append(errs, err)
		}
	}
	if ships > 0 {
		e.met.add(e.met.repairs, int64(ships))
	}
	return ships, errors.Join(errs...)
}

func (e *Engine) repairShardLocked(sh *cshard) (int, error) {
	cur := sh.version.Load()
	var src *replica
	for _, r := range sh.replicas {
		if e.nodeLive(r.node) && r.version.Load() >= cur {
			src = r
			break
		}
	}
	if src == nil {
		return 0, fmt.Errorf("cluster: repair shard %d: %w", sh.id, ErrNoQuorum)
	}
	ships := 0
	// Replace stale replicas on live nodes in place.
	for i, r := range sh.replicas {
		if r == src || r.version.Load() >= cur || !e.nodeLive(r.node) {
			continue
		}
		fresh, err := e.shipLocked(sh, src, r.node)
		if err != nil {
			continue // unreachable from src right now; a later Repair retries
		}
		old := r
		sh.mu.Lock()
		sh.replicas[i] = fresh
		sh.mu.Unlock()
		old.store.Close()
		ships++
	}
	// Ship missing replicas to the least-worn eligible nodes.
	for e.liveReplicaCountLocked(sh) < e.opts.Replicas {
		dst := e.leastWornTargetLocked(sh, src)
		if dst == nil {
			break // nowhere eligible; R stays degraded until topology heals
		}
		fresh, err := e.shipLocked(sh, src, dst)
		if err != nil {
			break
		}
		sh.mu.Lock()
		sh.replicas = append(sh.replicas, fresh)
		sh.mu.Unlock()
		ships++
	}
	return ships, nil
}

func (e *Engine) liveReplicaCountLocked(sh *cshard) int {
	n := 0
	for _, r := range sh.replicas {
		if r.node.state.Load() != nodeDown {
			n++
		}
	}
	return n
}

// leastWornTargetLocked picks the least-worn up node that does not
// already hold a replica of sh and is reachable from src.
func (e *Engine) leastWornTargetLocked(sh *cshard, src *replica) *node {
	holds := make(map[int]bool, len(sh.replicas))
	for _, r := range sh.replicas {
		holds[r.node.id] = true
	}
	var best *node
	for _, n := range e.nodes {
		if n.state.Load() != nodeUp || holds[n.id] || !e.reachable(src.node.id, n.id) {
			continue
		}
		if best == nil || n.wear.Load() < best.wear.Load() ||
			(n.wear.Load() == best.wear.Load() && n.id < best.id) {
			best = n
		}
	}
	return best
}

// Rebalance performs one endurance-leveling move: among all replicas,
// it moves one off the most-worn node onto the least-worn node that
// could take it, and returns whether a move happened. Wear only grows
// on install, so repeated calls converge instead of ping-ponging.
func (e *Engine) Rebalance() (bool, error) {
	release, err := e.acquire()
	if err != nil {
		return false, err
	}
	defer release()
	e.mu.Lock()
	defer e.mu.Unlock()
	// Find the most-worn node hosting at least one movable replica.
	var worst *node
	for _, n := range e.nodes {
		if n.state.Load() != nodeUp {
			continue
		}
		if worst == nil || n.wear.Load() > worst.wear.Load() {
			worst = n
		}
	}
	if worst == nil {
		return false, ErrNoQuorum
	}
	for _, sh := range e.shards {
		cur := sh.version.Load()
		for i, r := range sh.replicas {
			if r.node != worst || r.version.Load() < cur {
				continue
			}
			dst := e.leastWornTargetLocked(sh, r)
			if dst == nil || dst.wear.Load()+1 >= worst.wear.Load() {
				continue // the move would not level anything
			}
			fresh, err := e.shipLocked(sh, r, dst)
			if err != nil {
				continue
			}
			sh.mu.Lock()
			sh.replicas[i] = fresh
			sh.mu.Unlock()
			r.store.Close()
			e.met.inc(e.met.rebalances)
			return true, nil
		}
	}
	return false, nil
}
