package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// ring is a consistent-hash ring: members (nodes or shards) project
// vnodes points each onto a 64-bit circle, and a key is owned by the
// first point clockwise from its hash. Preference lists walk further
// clockwise collecting distinct members, which is what gives R-way
// replication its placement: replica r of a shard lands on the r-th
// distinct node after the shard's point, so losing one node scatters
// its shards' fail-over load across the survivors instead of doubling
// one neighbor. The seed perturbs every point, so two engines built
// with different seeds get independent layouts while the same seed is
// bit-reproducible (the chaos determinism golden depends on that).
type ring struct {
	points  []ringPoint
	members int
}

type ringPoint struct {
	hash   uint64
	member int
}

func newRing(members, vnodes int, seed int64) *ring {
	r := &ring{
		points:  make([]ringPoint, 0, members*vnodes),
		members: members,
	}
	for m := 0; m < members; m++ {
		for v := 0; v < vnodes; v++ {
			h := ringHash(fmt.Sprintf("%d/member-%d/vnode-%d", seed, m, v))
			r.points = append(r.points, ringPoint{hash: h, member: m})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		return a.member < b.member
	})
	return r
}

func ringHash(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return mix64(h.Sum64())
}

// mix64 is the splitmix64 finalizer. Raw FNV of keys that differ only
// in a trailing counter produces near-consecutive values, which turns
// the circle into one giant arc per member and every preference list
// into the same node pair; the avalanche scatters them.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// pref returns the first want distinct members clockwise from key's
// hash. want is clamped to the member count.
func (r *ring) pref(key string, want int) []int {
	if want > r.members {
		want = r.members
	}
	h := ringHash(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]int, 0, want)
	seen := make(map[int]bool, want)
	for i := 0; i < len(r.points) && len(out) < want; i++ {
		p := r.points[(start+i)%len(r.points)]
		if seen[p.member] {
			continue
		}
		seen[p.member] = true
		out = append(out, p.member)
	}
	return out
}

// owner returns the single member owning key.
func (r *ring) owner(key string) int {
	return r.pref(key, 1)[0]
}
