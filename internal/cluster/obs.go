package cluster

import (
	"strconv"

	"pimmine/internal/obs"
	"pimmine/internal/vec"
)

// metrics holds the pim_cluster_* instruments. Every field may be nil
// (no Observer configured); obs instruments are nil-safe, so call sites
// never guard.
type metrics struct {
	queries        *obs.Counter
	failovers      *obs.Counter
	noQuorum       *obs.Counter
	rebalancing    *obs.Counter
	degradedWrites *obs.Counter
	kills       *obs.Counter
	repairs     *obs.Counter
	rebalances  *obs.Counter
	ships       *obs.Counter
	shipBytes   *obs.Counter
	shipNs      *obs.Counter
	upGauge     *obs.Gauge
	wear        []*obs.Gauge
}

func newMetrics(o *obs.Observer, nodes int) *metrics {
	m := &metrics{}
	if o == nil {
		return m
	}
	reg := o.Registry()
	m.queries = reg.Counter("pim_cluster_queries_total", "Queries dispatched through the placement layer.")
	m.failovers = reg.Counter("pim_cluster_failovers_total", "Shard reads served by a non-preferred replica (breaker-open, fault, or dead node).")
	m.noQuorum = reg.Counter("pim_cluster_noquorum_total", "Shard reads refused because no live replica existed.")
	m.rebalancing = reg.Counter("pim_cluster_rebalancing_total", "Shard reads refused because every surviving replica was stale.")
	m.degradedWrites = reg.Counter("pim_cluster_degraded_writes_total", "Mutations that committed on a strict subset of writable replicas; failed replicas went stale for Repair.")
	m.kills = reg.Counter("pim_cluster_node_kills_total", "Nodes taken down hard (chaos or admin).")
	m.repairs = reg.Counter("pim_cluster_repairs_total", "Replica installs performed by anti-entropy Repair.")
	m.rebalances = reg.Counter("pim_cluster_rebalances_total", "Endurance-leveling replica moves.")
	m.ships = reg.Counter("pim_cluster_ship_total", "Snapshots shipped between nodes.")
	m.shipBytes = reg.Counter("pim_cluster_ship_bytes_total", "Encoded PIMSNAP1 bytes shipped between nodes.")
	m.shipNs = reg.Counter("pim_cluster_ship_ns_total", "Modeled inter-node transfer time at LinkGBs, in ns.")
	m.upGauge = reg.Gauge("pim_cluster_nodes_up", "Nodes currently up.")
	m.wear = make([]*obs.Gauge, nodes)
	for i := range m.wear {
		m.wear[i] = reg.Gauge("pim_cluster_node_wear", "Crossbar programmings (replica installs) per node.",
			obs.Label{Key: "node", Value: strconv.Itoa(i)})
	}
	return m
}

func (m *metrics) inc(c *obs.Counter)          { c.Inc() }
func (m *metrics) add(c *obs.Counter, n int64) { c.Add(n) }
func (m *metrics) nodesUp(n int)               { m.upGauge.Set(int64(n)) }

func (m *metrics) wearAdd(nodeID int, n int64) {
	if m.wear != nil {
		m.wear[nodeID].Add(n)
	}
}

func (m *metrics) shipped(bytes int64, ns float64) {
	m.ships.Inc()
	m.shipBytes.Add(bytes)
	m.shipNs.Add(int64(ns))
}

// matrixFrom wraps a decoded snapshot's row-major payload as a matrix.
func matrixFrom(data []float64, d int) *vec.Matrix {
	return &vec.Matrix{N: len(data) / d, D: d, Data: data}
}
