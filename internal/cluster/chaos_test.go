package cluster

import (
	"context"
	"strings"
	"testing"
	"time"
)

// TestChaosSameSeedSameSchedule is the determinism golden: two
// identical engines driven by identically seeded harnesses must emit
// byte-identical event logs, including refusals.
func TestChaosSameSeedSameSchedule(t *testing.T) {
	t.Parallel()
	data := randMatrix(160, 10, 11)
	logs := make([][]string, 2)
	for i := range logs {
		eng := newTestEngine(t, data, Options{Nodes: 4, Replicas: 2, Shards: 6, Seed: 5})
		c := NewChaos(eng, 42, ChaosConfig{MaxSlow: 200 * time.Microsecond})
		c.Steps(60)
		logs[i] = c.Log()
	}
	if len(logs[0]) != 60 {
		t.Fatalf("log has %d entries, want 60", len(logs[0]))
	}
	for i := range logs[0] {
		if logs[0][i] != logs[1][i] {
			t.Fatalf("schedules diverge at step %d:\n  a: %s\n  b: %s", i, logs[0][i], logs[1][i])
		}
	}
	joined := strings.Join(logs[0], "\n")
	for _, want := range []string{"kill node", "restore node", "refused"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("seed 42 schedule never produced %q — pick a livelier seed:\n%s", want, joined)
		}
	}
}

// TestChaosKeepsEngineServable drives the safety-bounded harness and
// requires an exact answer after every single step: the quorum check
// must never let chaos strand a shard.
func TestChaosKeepsEngineServable(t *testing.T) {
	t.Parallel()
	data := randMatrix(200, 12, 13)
	eng := newTestEngine(t, data, Options{Nodes: 4, Replicas: 2, Shards: 6, Seed: 5})
	c := NewChaos(eng, 99, ChaosConfig{MaxSlow: 100 * time.Microsecond})
	ctx := context.Background()
	for i := 0; i < 80; i++ {
		line := c.Step()
		q := data.Row(i * 7 % data.N)
		res, err := eng.Search(ctx, q, 5)
		if err != nil {
			t.Fatalf("after %q: search failed: %v", line, err)
		}
		if !sameNeighbors(res.Neighbors, exactTruth(data, q, 5)) {
			t.Fatalf("after %q: search inexact", line)
		}
	}
}
