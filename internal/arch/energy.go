package arch

// Energy modeling. Table 1 of the paper motivates ReRAM PIM partly through
// energy (ReRAM write energy 10⁻¹³ J/bit vs DRAM 10⁻¹⁴ J/bit, but data
// *transfer* costs "200 times more than floating-point computation" [21]).
// This file turns the same activity counters the timing model consumes
// into an energy estimate, so experiments can report joules alongside
// modeled time.
//
// All per-event energies are in picojoules; results are reported in
// microjoules. Defaults follow the usual architecture-literature orders
// of magnitude (Horowitz ISSCC'14 for CPU/DRAM; Table 1 for ReRAM writes).

// EnergyModel holds per-event energies in pJ.
type EnergyModel struct {
	// CPUOpPJ is one scalar ALU operation including pipeline overhead.
	CPUOpPJ float64
	// DRAMBytePJ is DRAM access energy per byte moved to the CPU.
	DRAMBytePJ float64
	// BusBytePJ is the in-memory bus energy per byte (PIM results into
	// the buffer array — on-die, far cheaper than going to the CPU).
	BusBytePJ float64
	// CrossbarCyclePJ is one crossbar compute cycle including DAC/ADC/S&A
	// periphery, per active crossbar... the model charges per critical-
	// path cycle with the array-wide periphery folded in.
	CrossbarCyclePJ float64
	// ReRAMWriteBitPJ is programming energy per cell-bit (Table 1:
	// 10⁻¹³ J/bit = 0.1 pJ/bit).
	ReRAMWriteBitPJ float64
}

// DefaultEnergy returns the calibrated energy model.
func DefaultEnergy() EnergyModel {
	return EnergyModel{
		CPUOpPJ:         20,
		DRAMBytePJ:      160, // ≈ 20 pJ/bit: the "200× more than compute" gap [21]
		BusBytePJ:       8,
		CrossbarCyclePJ: 400, // array-wide periphery per critical-path cycle
		ReRAMWriteBitPJ: 0.1, // Table 1
	}
}

// Energy is the modeled energy breakdown in microjoules.
type Energy struct {
	CPU     float64 // host computation
	Memory  float64 // DRAM/memory-array traffic to the CPU
	PIM     float64 // crossbar compute + buffer bus
	Program float64 // offline ReRAM programming
}

// Total returns the sum of all components in µJ.
func (e Energy) Total() float64 { return e.CPU + e.Memory + e.PIM + e.Program }

// Add returns the component-wise sum.
func (e Energy) Add(o Energy) Energy {
	return Energy{
		CPU:     e.CPU + o.CPU,
		Memory:  e.Memory + o.Memory,
		PIM:     e.PIM + o.PIM,
		Program: e.Program + o.Program,
	}
}

// Energy converts activity counters to modeled energy. Programming energy
// is derived from the recorded write time: PIMWriteNs at WriteLatency per
// row-write of m cells × h bits each.
func (c Config) Energy(em EnergyModel, ct Counters) Energy {
	const pjToUj = 1e-6
	var e Energy
	e.CPU = float64(ct.Ops+ct.ALUOps) * em.CPUOpPJ * pjToUj
	e.Memory = float64(ct.SeqBytes+ct.RandBytes) * em.DRAMBytePJ * pjToUj
	e.PIM = (float64(ct.PIMCycles)*em.CrossbarCyclePJ +
		float64(ct.PIMBufBytes)*em.BusBytePJ) * pjToUj
	// Row-writes on the critical path: PIMWriteNs / WriteLatencyNs, each
	// programming M cells of CellBits bits.
	if c.Crossbar.WriteLatencyNs > 0 {
		rowWrites := ct.PIMWriteNs / c.Crossbar.WriteLatencyNs
		bitsPerRow := float64(c.Crossbar.M * c.Crossbar.CellBits)
		e.Program = rowWrites * bitsPerRow * em.ReRAMWriteBitPJ * pjToUj
	}
	return e
}

// EnergyMeter returns per-function energies and the total for a meter.
func (c Config) EnergyMeter(em EnergyModel, m *Meter) (perFunc map[string]Energy, total Energy) {
	perFunc = make(map[string]Energy, len(m.Functions()))
	for _, name := range m.Functions() {
		e := c.Energy(em, m.Get(name))
		perFunc[name] = e
		total = total.Add(e)
	}
	return perFunc, total
}
