package arch

import "sort"

// Counters accumulates the modeled activity of one function (in the §IV-B
// sense: ED, a bound function, bound maintenance, or "Other"). Algorithms
// add aggregated per-scan totals, so recording is cheap.
type Counters struct {
	// Ops counts simple arithmetic/logic operations (add, sub, mul, cmp).
	Ops int64
	// ALUOps counts long-latency operations (division, sqrt).
	ALUOps int64
	// Branches counts data-dependent branches (bound checks, heap pushes).
	Branches int64
	// SeqBytes counts bytes streamed from memory in sequential scans.
	SeqBytes int64
	// RandBytes counts bytes fetched with random access (candidate
	// refinement after filtering, center lookups).
	RandBytes int64
	// PIMCycles counts crossbar compute cycles on the critical path
	// (parallel crossbars contribute one set of cycles per pass).
	PIMCycles int64
	// PIMBufBytes counts PIM results moved into the buffer array over the
	// internal bus.
	PIMBufBytes int64
	// PIMWriteNs accumulates crossbar programming time (offline stage).
	PIMWriteNs float64
	// PIMFaults counts PIM dot products that passed through faulty
	// hardware (stuck cells, drifted cells, read noise) and were returned
	// with their error envelope applied (internal/fault).
	PIMFaults int64
	// PIMRecovered counts PIM dot products lost to dead crossbars and
	// recovered by the never-prune fallback (the object is refined
	// exactly on the host instead).
	PIMRecovered int64
	// Calls counts invocations, for reporting.
	Calls int64
}

// Add accumulates other into c.
func (c *Counters) Add(other Counters) {
	c.Ops += other.Ops
	c.ALUOps += other.ALUOps
	c.Branches += other.Branches
	c.SeqBytes += other.SeqBytes
	c.RandBytes += other.RandBytes
	c.PIMCycles += other.PIMCycles
	c.PIMBufBytes += other.PIMBufBytes
	c.PIMWriteNs += other.PIMWriteNs
	c.PIMFaults += other.PIMFaults
	c.PIMRecovered += other.PIMRecovered
	c.Calls += other.Calls
}

// Meter groups counters by function name, giving §IV-B's per-function
// breakdown for free. Meters are not safe for concurrent use; every
// algorithm run owns its meter.
type Meter struct {
	funcs map[string]*Counters
}

// NewMeter returns an empty meter.
func NewMeter() *Meter { return &Meter{funcs: make(map[string]*Counters)} }

// C returns (creating if needed) the counters for the named function.
func (m *Meter) C(name string) *Counters {
	c, ok := m.funcs[name]
	if !ok {
		c = &Counters{}
		m.funcs[name] = c
	}
	return c
}

// Functions returns the recorded function names, sorted for determinism.
func (m *Meter) Functions() []string {
	names := make([]string, 0, len(m.funcs))
	for name := range m.funcs {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Get returns the counters for name, or a zero value if never recorded.
func (m *Meter) Get(name string) Counters {
	if c, ok := m.funcs[name]; ok {
		return *c
	}
	return Counters{}
}

// Total sums all functions' counters.
func (m *Meter) Total() Counters {
	var t Counters
	for _, c := range m.funcs {
		t.Add(*c)
	}
	return t
}

// Merge adds every function of other into m.
func (m *Meter) Merge(other *Meter) {
	for name, c := range other.funcs {
		m.C(name).Add(*c)
	}
}

// Clone returns a deep copy of the meter — a consistent snapshot that the
// caller may read while the original keeps accumulating (under whatever
// lock guards the original; meters themselves stay single-owner).
func (m *Meter) Clone() *Meter {
	c := NewMeter()
	c.Merge(m)
	return c
}

// Reset drops all recorded activity.
func (m *Meter) Reset() { m.funcs = make(map[string]*Counters) }

// Conventional well-known function names shared across packages, so the
// profiler and the plan optimizer can find them.
const (
	FuncED     = "ED"
	FuncHD     = "HD"
	FuncCS     = "CS"
	FuncPCC    = "PCC"
	FuncOther  = "Other"
	FuncUpdate = "bound-update"
)
