// Package arch models the two hardware platforms of Table 5 of the paper:
// the conventional architecture (Xeon E5-2620 + DRAM) and the
// ReRAM-PIM-based architecture (same host, ReRAM main memory with a 2 GB
// PIM array, 16 MB eDRAM buffer array and a 50 GB/s internal bus).
//
// The paper measures its baselines on real hardware and models the PIM
// side with NVSim + Quartz. We have neither the testbed nor those
// simulators, so both sides are driven by one analytic model: algorithms
// record their activity (arithmetic ops, memory traffic, branches, PIM
// cycles, buffer traffic) into Meters, and Config.Time converts counters
// into modeled time using Eq. 1's five host components
// (Tc, Tcache, TALU, TBr, TFe) plus a PIM component. Following §VI-A, the
// total time of a PIM-optimized algorithm is the *sum* of the host time
// (Quartz's role) and the PIM time (NVSim's role).
//
// The host constants are calibrated so that Tcache accounts for 62–83% of
// the Fig 5 workloads' time, matching the paper's profiling; see
// DESIGN.md §6.
package arch

import (
	"fmt"

	"pimmine/internal/crossbar"
)

// Config holds every hardware parameter of the model. The zero value is
// unusable; start from Default.
type Config struct {
	// ---- Host processor (Table 5: Broadwell 2.10 GHz Intel Xeon E5-2620).

	// CPUFreqGHz is the core clock.
	CPUFreqGHz float64
	// IPC is the effective scalar instructions per cycle sustained on
	// this workload class.
	IPC float64
	// CacheLineBytes is the transfer granularity between DRAM and caches.
	CacheLineBytes int
	// MissLatencyNs is the full stall of an unhidden last-level miss.
	MissLatencyNs float64
	// PrefetchEff is the fraction of sequential-scan miss latency hidden
	// by hardware prefetchers (0 = none, 1 = all hidden).
	PrefetchEff float64
	// ALUStallNs is the added stall of one long-latency ALU op (div/sqrt).
	ALUStallNs float64
	// BranchMissRate is the fraction of recorded data-dependent branches
	// that mispredict.
	BranchMissRate float64
	// BranchMissPenaltyNs is the pipeline refill cost per misprediction.
	BranchMissPenaltyNs float64
	// FrontEndFrac models TFe as a fixed fraction of Tc.
	FrontEndFrac float64
	// OperandBits is the modeled width of one data operand (the paper
	// keeps 32-bit integers/floats end to end).
	OperandBits int

	// ---- ReRAM-based memory (Table 5).

	// MemArrayBytes is the conventional-storage portion of ReRAM memory.
	MemArrayBytes int64
	// BufferArrayBytes is the eDRAM buffer that decouples PIM from the CPU.
	BufferArrayBytes int64
	// PIMArrayBytes is the crossbar storage available for PIM operands.
	PIMArrayBytes int64
	// InternalBusGBs is the in-memory bus bandwidth (GB/s) used when PIM
	// results move into the buffer array.
	InternalBusGBs float64
	// Crossbar is the per-tile geometry (256×256 2-bit cells by default).
	Crossbar crossbar.Spec
}

// Default returns the paper's Table 5 configuration with host constants
// calibrated per DESIGN.md §6.
func Default() Config {
	return Config{
		CPUFreqGHz:          2.10,
		IPC:                 2.0,
		CacheLineBytes:      64,
		MissLatencyNs:       80,
		PrefetchEff:         0.5,
		ALUStallNs:          8,
		BranchMissRate:      0.05,
		BranchMissPenaltyNs: 7,
		FrontEndFrac:        0.20,
		OperandBits:         32,

		MemArrayBytes:    14 << 30,
		BufferArrayBytes: 16 << 20,
		PIMArrayBytes:    2 << 30,
		InternalBusGBs:   50,
		Crossbar: crossbar.Spec{
			M:              256,
			CellBits:       2,
			DACBits:        2,
			ReadLatencyNs:  29.31,
			WriteLatencyNs: 50.88,
		},
	}
}

// Validate checks the configuration for usability.
func (c Config) Validate() error {
	switch {
	case c.CPUFreqGHz <= 0 || c.IPC <= 0:
		return fmt.Errorf("arch: non-positive CPU rate (freq=%v, ipc=%v)", c.CPUFreqGHz, c.IPC)
	case c.CacheLineBytes <= 0:
		return fmt.Errorf("arch: non-positive cache line %d", c.CacheLineBytes)
	case c.MissLatencyNs <= 0:
		return fmt.Errorf("arch: non-positive miss latency %v", c.MissLatencyNs)
	case c.PrefetchEff < 0 || c.PrefetchEff >= 1:
		return fmt.Errorf("arch: prefetch efficiency %v outside [0,1)", c.PrefetchEff)
	case c.OperandBits <= 0 || c.OperandBits > 64:
		return fmt.Errorf("arch: operand width %d outside [1,64]", c.OperandBits)
	case c.PIMArrayBytes <= 0 || c.InternalBusGBs <= 0:
		return fmt.Errorf("arch: non-positive PIM array/bus (%d bytes, %v GB/s)", c.PIMArrayBytes, c.InternalBusGBs)
	}
	return c.Crossbar.Validate()
}

// NumCrossbars returns C, the number of crossbars the PIM array holds:
// PIMArrayBytes·8 / (m²·h). With Table 5 defaults this is 131072, the
// figure quoted in §VI-A.
func (c Config) NumCrossbars() int {
	bitsPerXbar := int64(c.Crossbar.M) * int64(c.Crossbar.M) * int64(c.Crossbar.CellBits)
	return int(c.PIMArrayBytes * 8 / bitsPerXbar)
}

// OperandBytes returns the modeled size of one operand in bytes.
func (c Config) OperandBytes() int64 { return int64(c.OperandBits) / 8 }
