package arch

import "fmt"

// Breakdown is Eq. 1's decomposition of modeled execution time, extended
// with the PIM component. All values are nanoseconds.
type Breakdown struct {
	Tc     float64 // computation time
	Tcache float64 // memory stall time (cache/TLB misses)
	TALU   float64 // long-latency ALU stalls
	TBr    float64 // branch misprediction stalls
	TFe    float64 // front-end (fetch/decode) stalls
	TPIM   float64 // in-memory compute + buffering (NVSim's portion)
}

// Host returns the host-side total Tc+Tcache+TALU+TBr+TFe.
func (b Breakdown) Host() float64 { return b.Tc + b.Tcache + b.TALU + b.TBr + b.TFe }

// Total returns host time plus PIM time — the paper sums the Quartz (host)
// and NVSim (PIM) estimates (§VI-A).
func (b Breakdown) Total() float64 { return b.Host() + b.TPIM }

// Add returns the component-wise sum of two breakdowns.
func (b Breakdown) Add(o Breakdown) Breakdown {
	return Breakdown{
		Tc:     b.Tc + o.Tc,
		Tcache: b.Tcache + o.Tcache,
		TALU:   b.TALU + o.TALU,
		TBr:    b.TBr + o.TBr,
		TFe:    b.TFe + o.TFe,
		TPIM:   b.TPIM + o.TPIM,
	}
}

// String formats the breakdown in ms for reports.
func (b Breakdown) String() string {
	return fmt.Sprintf("total=%.3fms (Tc=%.3f Tcache=%.3f TALU=%.3f TBr=%.3f TFe=%.3f TPIM=%.3f)",
		b.Total()/1e6, b.Tc/1e6, b.Tcache/1e6, b.TALU/1e6, b.TBr/1e6, b.TFe/1e6, b.TPIM/1e6)
}

// Time converts activity counters to modeled time under this hardware
// configuration:
//
//	Tc     = Ops / (freq·IPC)
//	Tcache = seqLines·(1−prefetchEff)·missLat + randLines·missLat
//	TALU   = ALUOps·stall
//	TBr    = Branches·missRate·penalty
//	TFe    = frontEndFrac·Tc
//	TPIM   = PIMCycles·readLat + PIMBufBytes/bus + PIMWriteNs
func (c Config) Time(ct Counters) Breakdown {
	opsPerNs := c.CPUFreqGHz * c.IPC
	var b Breakdown
	b.Tc = float64(ct.Ops) / opsPerNs
	line := float64(c.CacheLineBytes)
	b.Tcache = float64(ct.SeqBytes)/line*(1-c.PrefetchEff)*c.MissLatencyNs +
		float64(ct.RandBytes)/line*c.MissLatencyNs
	b.TALU = float64(ct.ALUOps) * c.ALUStallNs
	b.TBr = float64(ct.Branches) * c.BranchMissRate * c.BranchMissPenaltyNs
	b.TFe = c.FrontEndFrac * b.Tc
	busBytesPerNs := c.InternalBusGBs // 1 GB/s == 1 byte/ns (decimal GB)
	b.TPIM = float64(ct.PIMCycles)*c.Crossbar.ReadLatencyNs +
		float64(ct.PIMBufBytes)/busBytesPerNs +
		ct.PIMWriteNs
	return b
}

// TimeMeter returns the per-function breakdowns and the overall total for
// a whole meter.
func (c Config) TimeMeter(m *Meter) (perFunc map[string]Breakdown, total Breakdown) {
	perFunc = make(map[string]Breakdown, len(m.Functions()))
	for _, name := range m.Functions() {
		b := c.Time(m.Get(name))
		perFunc[name] = b
		total = total.Add(b)
	}
	return perFunc, total
}
