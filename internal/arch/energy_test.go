package arch

import (
	"math"
	"testing"
)

func TestEnergyComponents(t *testing.T) {
	cfg := Default()
	em := DefaultEnergy()
	ct := Counters{
		Ops:         1_000_000,
		ALUOps:      1000,
		SeqBytes:    4_000_000,
		RandBytes:   64,
		PIMCycles:   16,
		PIMBufBytes: 8000,
		PIMWriteNs:  50.88 * 10, // 10 row-writes
	}
	e := cfg.Energy(em, ct)
	wantCPU := float64(1_001_000) * 20 * 1e-6
	if math.Abs(e.CPU-wantCPU) > 1e-9 {
		t.Errorf("CPU energy = %v µJ, want %v", e.CPU, wantCPU)
	}
	wantMem := float64(4_000_064) * 160 * 1e-6
	if math.Abs(e.Memory-wantMem) > 1e-9 {
		t.Errorf("memory energy = %v µJ, want %v", e.Memory, wantMem)
	}
	wantPIM := (16*400 + 8000*8) * 1e-6
	if math.Abs(e.PIM-wantPIM) > 1e-9 {
		t.Errorf("PIM energy = %v µJ, want %v", e.PIM, wantPIM)
	}
	wantProg := 10 * float64(256*2) * 0.1 * 1e-6
	if math.Abs(e.Program-wantProg) > 1e-9 {
		t.Errorf("program energy = %v µJ, want %v", e.Program, wantProg)
	}
	if math.Abs(e.Total()-(e.CPU+e.Memory+e.PIM+e.Program)) > 1e-12 {
		t.Error("Total must sum components")
	}
}

func TestEnergyAdd(t *testing.T) {
	a := Energy{CPU: 1, Memory: 2, PIM: 3, Program: 4}
	b := a.Add(a)
	if b.CPU != 2 || b.Program != 8 {
		t.Fatalf("Add = %+v", b)
	}
}

// The energy story of the paper: moving d operands to the CPU costs far
// more than the PIM-side work for the same logical distance computation.
func TestEnergyPIMAdvantage(t *testing.T) {
	cfg := Default()
	em := DefaultEnergy()
	n, d := int64(100_000), int64(420)
	// Conventional: full vectors move to the CPU.
	conv := cfg.Energy(em, Counters{Ops: 3 * n * d, SeqBytes: 4 * n * d})
	// PIM: one batch pass + 3 operands per object for G.
	pim := cfg.Energy(em, Counters{
		Ops:         10 * n,
		SeqBytes:    12 * n,
		PIMCycles:   16,
		PIMBufBytes: 8 * n,
	})
	if pim.Total() >= conv.Total()/5 {
		t.Fatalf("PIM energy %v µJ not clearly below conventional %v µJ", pim.Total(), conv.Total())
	}
}

func TestEnergyMeter(t *testing.T) {
	cfg := Default()
	em := DefaultEnergy()
	m := NewMeter()
	m.C("ED").Ops = 100
	m.C("Other").SeqBytes = 64
	per, total := cfg.EnergyMeter(em, m)
	if len(per) != 2 {
		t.Fatalf("per-function energies: %d entries", len(per))
	}
	if math.Abs(total.Total()-(per["ED"].Total()+per["Other"].Total())) > 1e-12 {
		t.Fatal("total must sum per-function energies")
	}
}
