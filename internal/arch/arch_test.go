package arch

import (
	"math"
	"testing"
)

func TestDefaultValid(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesBadConfigs(t *testing.T) {
	for _, mutate := range []func(*Config){
		func(c *Config) { c.CPUFreqGHz = 0 },
		func(c *Config) { c.IPC = -1 },
		func(c *Config) { c.CacheLineBytes = 0 },
		func(c *Config) { c.MissLatencyNs = 0 },
		func(c *Config) { c.PrefetchEff = 1 },
		func(c *Config) { c.OperandBits = 0 },
		func(c *Config) { c.PIMArrayBytes = 0 },
		func(c *Config) { c.InternalBusGBs = 0 },
		func(c *Config) { c.Crossbar.M = 0 },
	} {
		cfg := Default()
		mutate(&cfg)
		if cfg.Validate() == nil {
			t.Errorf("Validate accepted bad config %+v", cfg)
		}
	}
}

func TestTable5Defaults(t *testing.T) {
	cfg := Default()
	if cfg.CPUFreqGHz != 2.10 {
		t.Errorf("CPU freq = %v, Table 5 has 2.10 GHz", cfg.CPUFreqGHz)
	}
	if cfg.PIMArrayBytes != 2<<30 {
		t.Errorf("PIM array = %d, Table 5 has 2GB", cfg.PIMArrayBytes)
	}
	if cfg.MemArrayBytes != 14<<30 {
		t.Errorf("memory array = %d, Table 5 has 14GB", cfg.MemArrayBytes)
	}
	if cfg.BufferArrayBytes != 16<<20 {
		t.Errorf("buffer array = %d, Table 5 has 16MB", cfg.BufferArrayBytes)
	}
	if cfg.InternalBusGBs != 50 {
		t.Errorf("bus = %v, Table 5 has 50GB/s", cfg.InternalBusGBs)
	}
	if cfg.Crossbar.M != 256 || cfg.Crossbar.CellBits != 2 {
		t.Errorf("crossbar = %+v, Table 5 has 256×256 2-bit", cfg.Crossbar)
	}
	if cfg.Crossbar.ReadLatencyNs != 29.31 || cfg.Crossbar.WriteLatencyNs != 50.88 {
		t.Errorf("latencies = %v/%v, Table 5 has 29.31/50.88", cfg.Crossbar.ReadLatencyNs, cfg.Crossbar.WriteLatencyNs)
	}
}

func TestMeterBasics(t *testing.T) {
	m := NewMeter()
	m.C("ED").Ops = 10
	m.C("LBFNN").SeqBytes = 100
	m.C("ED").Calls = 2
	if got := m.Get("ED"); got.Ops != 10 || got.Calls != 2 {
		t.Fatalf("Get(ED) = %+v", got)
	}
	if got := m.Get("missing"); got != (Counters{}) {
		t.Fatalf("Get(missing) = %+v, want zero", got)
	}
	names := m.Functions()
	if len(names) != 2 || names[0] != "ED" || names[1] != "LBFNN" {
		t.Fatalf("Functions = %v (must be sorted)", names)
	}
	tot := m.Total()
	if tot.Ops != 10 || tot.SeqBytes != 100 {
		t.Fatalf("Total = %+v", tot)
	}
	other := NewMeter()
	other.C("ED").Ops = 5
	m.Merge(other)
	if m.Get("ED").Ops != 15 {
		t.Fatal("Merge must accumulate")
	}
	m.Reset()
	if len(m.Functions()) != 0 {
		t.Fatal("Reset must clear")
	}
}

func TestTimeComponents(t *testing.T) {
	cfg := Default()
	ct := Counters{
		Ops:         1000,
		ALUOps:      10,
		Branches:    100,
		SeqBytes:    6400,
		RandBytes:   640,
		PIMCycles:   16,
		PIMBufBytes: 5000,
		PIMWriteNs:  123,
	}
	b := cfg.Time(ct)
	wantTc := 1000.0 / (2.10 * 2.0)
	if math.Abs(b.Tc-wantTc) > 1e-9 {
		t.Errorf("Tc = %v, want %v", b.Tc, wantTc)
	}
	wantCache := 6400.0/64*(1-0.5)*80 + 640.0/64*80
	if math.Abs(b.Tcache-wantCache) > 1e-9 {
		t.Errorf("Tcache = %v, want %v", b.Tcache, wantCache)
	}
	if b.TALU != 10*cfg.ALUStallNs {
		t.Errorf("TALU = %v", b.TALU)
	}
	wantPIM := 16*29.31 + 5000.0/50 + 123
	if math.Abs(b.TPIM-wantPIM) > 1e-9 {
		t.Errorf("TPIM = %v, want %v", b.TPIM, wantPIM)
	}
	if math.Abs(b.Total()-(b.Host()+b.TPIM)) > 1e-9 {
		t.Error("Total must be Host+TPIM (the paper sums Quartz and NVSim)")
	}
}

// Calibration (DESIGN.md §6): on a plain sequential ED scan — the shape of
// the Fig 5 workloads — Tcache must account for 62–83% of host time.
func TestTcacheCalibrationBand(t *testing.T) {
	cfg := Default()
	// Per scanned element: 3 ops, 4 bytes sequential, ~1/64 branch.
	n := int64(1_000_000)
	ct := Counters{Ops: 3 * n, SeqBytes: 4 * n, Branches: n / 16}
	b := cfg.Time(ct)
	frac := b.Tcache / b.Host()
	if frac < 0.62 || frac > 0.83 {
		t.Fatalf("Tcache fraction = %.1f%%, outside the paper's 62–83%% band", frac*100)
	}
}

func TestBreakdownAddString(t *testing.T) {
	a := Breakdown{Tc: 1, Tcache: 2, TALU: 3, TBr: 4, TFe: 5, TPIM: 6}
	b := a.Add(a)
	if b.Tc != 2 || b.TPIM != 12 {
		t.Fatalf("Add = %+v", b)
	}
	if s := a.String(); s == "" {
		t.Fatal("String must format something")
	}
}

func TestTimeMeter(t *testing.T) {
	cfg := Default()
	m := NewMeter()
	m.C("ED").Ops = 100
	m.C("Other").Ops = 50
	per, total := cfg.TimeMeter(m)
	if len(per) != 2 {
		t.Fatalf("per-function map has %d entries", len(per))
	}
	if math.Abs(total.Tc-(per["ED"].Tc+per["Other"].Tc)) > 1e-9 {
		t.Fatal("total must sum the per-function breakdowns")
	}
}

func TestOperandBytes(t *testing.T) {
	if got := Default().OperandBytes(); got != 4 {
		t.Fatalf("OperandBytes = %d, want 4", got)
	}
}
