package quant

import (
	"errors"
	"math"
	"testing"

	"pimmine/internal/vec"
)

func TestCheckTypedErrors(t *testing.T) {
	t.Parallel()
	cases := []struct {
		v    float64
		want error
	}{
		{0, nil},
		{1, nil},
		{0.5, nil},
		{math.NaN(), ErrNotFinite},
		{math.Inf(1), ErrNotFinite},
		{math.Inf(-1), ErrNotFinite},
		{-0.001, ErrOutOfRange},
		{1.001, ErrOutOfRange},
	}
	for _, c := range cases {
		err := Check(c.v)
		if c.want == nil {
			if err != nil {
				t.Errorf("Check(%v) = %v, want nil", c.v, err)
			}
			continue
		}
		if !errors.Is(err, c.want) {
			t.Errorf("Check(%v) = %v, want errors.Is %v", c.v, err, c.want)
		}
	}
}

func TestCheckVecReportsDimension(t *testing.T) {
	t.Parallel()
	if err := CheckVec([]float64{0, 0.5, 1}); err != nil {
		t.Fatalf("valid vector rejected: %v", err)
	}
	err := CheckVec([]float64{0.1, math.NaN(), 0.2})
	if !errors.Is(err, ErrNotFinite) {
		t.Fatalf("NaN not reported as ErrNotFinite: %v", err)
	}
	err = CheckVec([]float64{0.1, 0.2, 1.5})
	if !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("out-of-range not reported as ErrOutOfRange: %v", err)
	}
	// A vector that passes CheckVec must be safe for Floor.
	q := Quantizer{Alpha: DefaultAlpha}
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("Floor panicked on CheckVec-validated input: %v", r)
		}
	}()
	q.FloorVec([]float64{0, 1, 0.999999}, nil)
}

func TestNormalizeGlobal(t *testing.T) {
	t.Parallel()
	m := vec.NewMatrix(2, 3)
	copy(m.Data, []float64{2, 4, 6, 8, 10, 12})
	tr, err := Normalize(m)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Lo != 2 || tr.Span != 10 {
		t.Fatalf("transform = %+v, want {2 10}", tr)
	}
	want := []float64{0, 0.2, 0.4, 0.6, 0.8, 1}
	for i, v := range m.Data {
		if v != want[i] {
			t.Fatalf("data[%d] = %v, want %v", i, v, want[i])
		}
	}
	if err := CheckVec(m.Data); err != nil {
		t.Fatalf("normalized data fails CheckVec: %v", err)
	}
	// Queries map through the same transform, clamped.
	if got := tr.Apply(7); got != 0.5 {
		t.Fatalf("Apply(7) = %v, want 0.5", got)
	}
	if got := tr.Apply(-100); got != 0 {
		t.Fatalf("Apply(-100) = %v, want clamp to 0", got)
	}
	if got := tr.Apply(100); got != 1 {
		t.Fatalf("Apply(100) = %v, want clamp to 1", got)
	}
}

func TestNormalizeZeroRange(t *testing.T) {
	t.Parallel()
	m := vec.NewMatrix(3, 2)
	for i := range m.Data {
		m.Data[i] = 7.5
	}
	tr, err := Normalize(m)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Span == 0 {
		t.Fatal("zero-range normalize must record nonzero Span")
	}
	for i, v := range m.Data {
		if v != 0 {
			t.Fatalf("data[%d] = %v, want 0 for zero-range input", i, v)
		}
	}
	// Apply on the recorded transform must not divide by zero.
	if got := tr.Apply(7.5); math.IsNaN(got) || math.IsInf(got, 0) {
		t.Fatalf("Apply on zero-range transform = %v", got)
	}
}

func TestNormalizeSinglePoint(t *testing.T) {
	t.Parallel()
	// A single-point dataset has zero range in every dimension under
	// both the global and per-dimension recipes.
	m := vec.NewMatrix(1, 4)
	copy(m.Data, []float64{3, -1, 0, 42})
	mGlobal := m.Clone()
	tr, err := Normalize(mGlobal)
	if err != nil {
		t.Fatal(err)
	}
	// Global: range is [-1,42], so values normalize normally.
	if tr.Lo != -1 || tr.Span != 43 {
		t.Fatalf("global transform = %+v, want {-1 43}", tr)
	}
	if err := CheckVec(mGlobal.Data); err != nil {
		t.Fatalf("normalized single point fails CheckVec: %v", err)
	}

	ts, err := NormalizeDims(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 4 {
		t.Fatalf("got %d transforms, want 4", len(ts))
	}
	for j, v := range m.Data {
		if v != 0 {
			t.Fatalf("per-dim single point data[%d] = %v, want 0", j, v)
		}
		if ts[j].Span == 0 {
			t.Fatalf("dim %d recorded zero Span", j)
		}
	}
}

func TestNormalizeDimsZeroRangeDimension(t *testing.T) {
	t.Parallel()
	// Dimension 1 is constant; dimensions 0 and 2 vary.
	m := vec.NewMatrix(3, 3)
	copy(m.Data, []float64{
		0, 5, 10,
		1, 5, 20,
		2, 5, 30,
	})
	ts, err := NormalizeDims(m)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if got := m.Data[i*3+1]; got != 0 {
			t.Fatalf("constant dim row %d = %v, want 0", i, got)
		}
	}
	if ts[1].Span == 0 {
		t.Fatal("constant dim recorded zero Span")
	}
	// Varying dims span [0,1] exactly.
	if m.Data[0*3+0] != 0 || m.Data[2*3+0] != 1 {
		t.Fatalf("dim 0 endpoints = %v, %v", m.Data[0], m.Data[6])
	}
	if m.Data[0*3+2] != 0 || m.Data[2*3+2] != 1 {
		t.Fatalf("dim 2 endpoints = %v, %v", m.Data[2], m.Data[8])
	}
	if err := CheckVec(m.Data); err != nil {
		t.Fatalf("per-dim normalized data fails CheckVec: %v", err)
	}
}

func TestNormalizeRejectsNonFinite(t *testing.T) {
	t.Parallel()
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		m := vec.NewMatrix(2, 2)
		copy(m.Data, []float64{1, 2, 3, 4})
		orig := append([]float64(nil), m.Data...)
		m.Data[3] = bad
		orig[3] = bad
		if _, err := Normalize(m); !errors.Is(err, ErrNotFinite) {
			t.Fatalf("Normalize(%v) err = %v, want ErrNotFinite", bad, err)
		}
		for i, v := range m.Data {
			same := v == orig[i] || (math.IsNaN(v) && math.IsNaN(orig[i]))
			if !same {
				t.Fatalf("Normalize mutated data before rejecting: idx %d", i)
			}
		}
		if _, err := NormalizeDims(m); !errors.Is(err, ErrNotFinite) {
			t.Fatalf("NormalizeDims(%v) err = %v, want ErrNotFinite", bad, err)
		}
	}
}

func TestNormalizeEmpty(t *testing.T) {
	t.Parallel()
	tr, err := Normalize(nil)
	if err != nil || tr.Span == 0 {
		t.Fatalf("Normalize(nil) = %+v, %v", tr, err)
	}
	ts, err := NormalizeDims(nil)
	if err != nil || ts != nil {
		t.Fatalf("NormalizeDims(nil) = %v, %v", ts, err)
	}
}
