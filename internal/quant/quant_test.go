package quant

import (
	"math"
	"math/rand"
	"testing"
)

func TestNewValidation(t *testing.T) {
	t.Parallel()
	if _, err := New(0.5); err == nil {
		t.Fatal("alpha < 1 must be rejected")
	}
	if _, err := New(math.NaN()); err == nil {
		t.Fatal("NaN alpha must be rejected")
	}
	if _, err := New(math.Inf(1)); err == nil {
		t.Fatal("Inf alpha must be rejected")
	}
	if _, err := New(1e10); err == nil {
		t.Fatal("alpha beyond 32-bit operand range must be rejected")
	}
	if _, err := New(DefaultAlpha); err != nil {
		t.Fatalf("paper alpha rejected: %v", err)
	}
}

func TestOperandBits(t *testing.T) {
	t.Parallel()
	q, _ := New(1e6)
	if got := q.OperandBits(); got != 20 {
		t.Fatalf("OperandBits(1e6) = %d, want 20", got)
	}
	q3, _ := New(3)
	if got := q3.OperandBits(); got != 2 {
		t.Fatalf("OperandBits(3) = %d, want 2", got)
	}
}

func TestFloor(t *testing.T) {
	t.Parallel()
	q, _ := New(1000)
	for _, tc := range []struct {
		v    float64
		want uint32
	}{
		{0, 0}, {1, 1000}, {0.5532, 553}, {0.9742, 974}, {0.0009, 0},
	} {
		if got := q.Floor(tc.v); got != tc.want {
			t.Errorf("Floor(%v) = %d, want %d", tc.v, got, tc.want)
		}
	}
}

func TestFloorPanicsOutOfRange(t *testing.T) {
	t.Parallel()
	q, _ := New(10)
	for _, bad := range []float64{-0.1, 1.1, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Floor(%v) must panic", bad)
				}
			}()
			q.Floor(bad)
		}()
	}
}

func TestFloorVec(t *testing.T) {
	t.Parallel()
	q, _ := New(1000)
	// Fig 9's example vector.
	got := q.FloorVec([]float64{0.5532, 0.9742, 0.7375, 0.6557}, nil)
	want := []uint32{553, 974, 737, 655}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("FloorVec = %v, want %v", got, want)
		}
	}
	// Reuses the destination buffer when it is large enough.
	buf := make([]uint32, 8)
	got2 := q.FloorVec([]float64{0.1}, buf)
	if &got2[0] != &buf[0] || got2[0] != 100 {
		t.Fatal("FloorVec must reuse the provided buffer")
	}
}

func TestErrorBound(t *testing.T) {
	t.Parallel()
	q, _ := New(1e6)
	d := 420
	want := 4*float64(d)/1e6 + 2*float64(d)/1e12
	if got := q.ErrorBound(d); math.Abs(got-want) > 1e-18 {
		t.Fatalf("ErrorBound = %v, want %v", got, want)
	}
	// Theorem 3: error shrinks as alpha grows.
	q2, _ := New(1e3)
	if q2.ErrorBound(d) <= q.ErrorBound(d) {
		t.Fatal("error bound must be inversely proportional to alpha")
	}
}

// Property: the floor never exceeds the scaled value and is within 1 of it.
func TestFloorPropertyQuick(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(3))
	q, _ := New(1e6)
	for i := 0; i < 1000; i++ {
		v := rng.Float64()
		f := float64(q.Floor(v))
		s := q.Scaled(v)
		if f > s || s-f >= 1 {
			t.Fatalf("Floor(%v)=%v not in (scaled-1, scaled]=(%v-1, %v]", v, f, s, s)
		}
	}
}
