// Package quant implements §V-B's integer quantization pipeline that makes
// floating-point vectors consumable by ReRAM PIM crossbars, which only
// operate on non-negative integers.
//
// Given values already normalized into [0,1] (see internal/dataset), a
// vector p is scaled by the factor α (p̄ᵢ = pᵢ·α, Eq. 5) and its integer
// part ⌊p̄ᵢ⌋ is taken (Eq. 6). The floor vector is what gets programmed
// onto (or injected into) crossbars; the fractional remainder is what the
// PIM-aware bounds of internal/pimbound account for, with Theorem 3
// bounding the resulting slack by 4d/α + 2d/α².
package quant

import (
	"fmt"
	"math"
)

// DefaultAlpha is the paper's scaling factor (§VI-A: "chose α as 10⁶").
const DefaultAlpha = 1e6

// Quantizer scales normalized [0,1] values by Alpha and floors them to
// non-negative integers.
type Quantizer struct {
	Alpha float64
}

// New returns a quantizer with the given scaling factor. Alpha must be at
// least 1; the paper uses 10⁶.
func New(alpha float64) (Quantizer, error) {
	if alpha < 1 || math.IsInf(alpha, 0) || math.IsNaN(alpha) {
		return Quantizer{}, fmt.Errorf("quant: invalid alpha %v (need finite alpha >= 1)", alpha)
	}
	if alpha > math.MaxUint32 {
		return Quantizer{}, fmt.Errorf("quant: alpha %v exceeds 32-bit operand range", alpha)
	}
	return Quantizer{Alpha: alpha}, nil
}

// OperandBits returns the number of bits needed to represent a quantized
// value, i.e. ⌈log2(α+1)⌉. With the paper's α=10⁶ this is 20 bits; the
// paper nevertheless models 32-bit integer operands "to keep consistent
// with host processor", and internal/arch does the same.
func (q Quantizer) OperandBits() int {
	return int(math.Ceil(math.Log2(q.Alpha + 1)))
}

// Floor quantizes one normalized value: ⌊v·α⌋. Values must lie in [0,1];
// out-of-range input is a caller bug and panics, because a silently
// clamped value would invalidate the bound proofs.
func (q Quantizer) Floor(v float64) uint32 {
	if v < 0 || v > 1 || math.IsNaN(v) {
		panic(fmt.Sprintf("quant: value %v outside [0,1]", v))
	}
	return uint32(v * q.Alpha)
}

// FloorVec quantizes a whole normalized vector into dst, allocating when
// dst is nil or too short, and returns it.
func (q Quantizer) FloorVec(v []float64, dst []uint32) []uint32 {
	if cap(dst) < len(v) {
		dst = make([]uint32, len(v))
	}
	dst = dst[:len(v)]
	for i, x := range v {
		dst[i] = q.Floor(x)
	}
	return dst
}

// Scaled returns p̄ᵢ = v·α as a float (used by Φ precomputation, which
// needs Σ p̄ᵢ² with full precision).
func (q Quantizer) Scaled(v float64) float64 { return v * q.Alpha }

// ErrorBound returns Theorem 3's upper bound on the gap between the exact
// squared Euclidean distance and LB_PIM-ED for d-dimensional vectors:
//
//	ED(p,q) − LB_PIM-ED(p,q) ≤ 4d/α + 2d/α²
//
// The bound is inversely proportional to α: larger scaling factors give
// tighter PIM bounds.
func (q Quantizer) ErrorBound(d int) float64 {
	df := float64(d)
	return 4*df/q.Alpha + 2*df/(q.Alpha*q.Alpha)
}
