package quant_test

import (
	"encoding/binary"
	"math"
	"testing"

	"pimmine/internal/measure"
	"pimmine/internal/pimbound"
	"pimmine/internal/quant"
	"pimmine/internal/vec"
)

// fuzzMaxD caps the fuzzed dimensionality so d·α² stays far below the
// int64 range of the host reference dot product.
const fuzzMaxD = 512

// unitVec reinterprets raw bytes as float64s and folds each finite value
// into [0,1) — the quantizer's input domain — keeping at most maxD dims.
func unitVec(raw []byte, maxD int) []float64 {
	out := make([]float64, 0, len(raw)/8)
	for len(raw) >= 8 && len(out) < maxD {
		v := math.Float64frombits(binary.LittleEndian.Uint64(raw[:8]))
		raw = raw[8:]
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		out = append(out, math.Abs(v)-math.Floor(math.Abs(v)))
	}
	return out
}

// encVec is the inverse seed helper: packs float64s little-endian.
func encVec(vals ...float64) []byte {
	raw := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(raw[i*8:], math.Float64bits(v))
	}
	return raw
}

// FuzzQuantizeErrorBound fuzzes Theorem 3 end to end: quantize two
// arbitrary [0,1] vectors with an arbitrary scaling factor, run the
// integer quantize→dot→reconstruct pipeline (LB_PIM-ED, Theorem 1), and
// assert the reconstruction never over-estimates the true squared
// Euclidean distance and never lags it by more than 4d/α + 2d/α².
func FuzzQuantizeErrorBound(f *testing.F) {
	f.Add(encVec(0.5, 0.25, 0.75), encVec(0.1, 0.9, 0.0), float64(quant.DefaultAlpha))
	f.Add(encVec(1, 1, 1, 1), encVec(0, 0, 0, 0), 2.0)
	f.Add(encVec(0.123456789), encVec(0.987654321), 37.0)
	f.Add([]byte("arbitrary byte soup, reinterpreted"), []byte("as float64 bit patterns"), 1e3)

	f.Fuzz(func(t *testing.T, rawP, rawQ []byte, alphaRaw float64) {
		if math.IsNaN(alphaRaw) || math.IsInf(alphaRaw, 0) {
			t.Skip("alpha out of domain")
		}
		// Fold alpha into [1, 1e8]: below 1 quant.New rejects by contract,
		// above ~1e8 the host int64 reference dot could overflow, which is
		// outside the theorem's exact-integer-arithmetic precondition.
		alpha := 1 + math.Mod(math.Abs(alphaRaw), 1e8)
		qz, err := quant.New(alpha)
		if err != nil {
			t.Fatalf("folded alpha %v rejected: %v", alpha, err)
		}
		p := unitVec(rawP, fuzzMaxD)
		qv := unitVec(rawQ, fuzzMaxD)
		n := min(len(p), len(qv))
		if n == 0 {
			t.Skip("no finite dims")
		}
		p, qv = p[:n], qv[:n]

		m, err := vec.FromRows([][]float64{p})
		if err != nil {
			t.Fatalf("FromRows: %v", err)
		}
		ix := pimbound.BuildED(m, qz)
		qf := ix.Query(qv)
		lb := ix.LB(0, qf, ix.HostDot(0, qf))
		ed := measure.SqEuclidean(p, qv)
		gap := ed - lb
		if gap < -1e-9 {
			t.Fatalf("Theorem 1 violated: LB %v > ED %v (alpha=%v d=%d)", lb, ed, alpha, n)
		}
		if bound := qz.ErrorBound(n); gap > bound+1e-9 {
			t.Fatalf("Theorem 3 violated: gap %v > bound %v (alpha=%v d=%d)", gap, bound, alpha, n)
		}
	})
}
