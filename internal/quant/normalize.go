package quant

import (
	"errors"
	"fmt"
	"math"

	"pimmine/internal/vec"
)

// The quantizer's input contract is "finite values in [0,1]" (§V-B
// normalizes before scaling by α). Floor enforces that contract with a
// panic because its callers feed it already-validated data on hot paths;
// the functions in this file are the validated boundary for data arriving
// from outside the pipeline — online inserts, user-supplied matrices —
// where a malformed vector must surface as an error, not a crash.

// Typed validation errors. Wrapped errors carry the offending position;
// match with errors.Is.
var (
	// ErrNotFinite reports a NaN or ±Inf input value.
	ErrNotFinite = errors.New("quant: non-finite value")
	// ErrOutOfRange reports a finite value outside the normalized [0,1]
	// domain the quantizer requires.
	ErrOutOfRange = errors.New("quant: value outside [0,1]")
)

// Check validates one normalized value for quantization.
func Check(v float64) error {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return fmt.Errorf("%w: %v", ErrNotFinite, v)
	}
	if v < 0 || v > 1 {
		return fmt.Errorf("%w: %v", ErrOutOfRange, v)
	}
	return nil
}

// CheckVec validates a whole vector, reporting the first offending
// dimension. A vector that passes CheckVec is safe for Floor/FloorVec.
func CheckVec(v []float64) error {
	for i, x := range v {
		if err := Check(x); err != nil {
			return fmt.Errorf("dim %d: %w", i, err)
		}
	}
	return nil
}

// Transform is an affine min-max map x ↦ (x − Lo) / Span into [0,1]; Span
// is never zero (zero-range data records Span 1 and maps to 0).
type Transform struct {
	Lo, Span float64
}

// Apply maps one raw value into the normalized domain, clamped to [0,1]
// (queries drawn near the data's range can land slightly outside it, as
// internal/dataset's query generator does).
func (t Transform) Apply(v float64) float64 {
	x := (v - t.Lo) / t.Span
	switch {
	case x < 0:
		return 0
	case x > 1:
		return 1
	}
	return x
}

// ApplyVec maps a raw vector into dst (allocating when dst is too short)
// and returns it.
func (t Transform) ApplyVec(v []float64, dst []float64) []float64 {
	if cap(dst) < len(v) {
		dst = make([]float64, len(v))
	}
	dst = dst[:len(v)]
	for i, x := range v {
		dst[i] = t.Apply(x)
	}
	return dst
}

// Normalize min-max normalizes a matrix in place with one global
// transform (the §V-B recipe: an isotropic affine map preserves
// nearest-neighbor and clustering structure exactly) and returns the
// transform so queries can be mapped into the same space.
//
// Edge cases are well defined rather than degenerate: a zero-range matrix
// (every value equal — including any single-point 1×d dataset with
// constant values) maps to all zeros with Span recorded as 1, so Apply
// never divides by zero; any NaN or ±Inf input is rejected with
// ErrNotFinite and the matrix is left untouched.
func Normalize(m *vec.Matrix) (Transform, error) {
	if m == nil || len(m.Data) == 0 {
		return Transform{Lo: 0, Span: 1}, nil
	}
	lo, hi := m.Data[0], m.Data[0]
	for i, v := range m.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return Transform{}, fmt.Errorf("quant: row %d dim %d: %w: %v", i/m.D, i%m.D, ErrNotFinite, v)
		}
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	span := hi - lo
	if span == 0 {
		for i := range m.Data {
			m.Data[i] = 0
		}
		return Transform{Lo: lo, Span: 1}, nil
	}
	for i := range m.Data {
		m.Data[i] = (m.Data[i] - lo) / span
	}
	return Transform{Lo: lo, Span: span}, nil
}

// NormalizeDims min-max normalizes each dimension independently in place
// and returns one Transform per dimension. Zero-range dimensions (every
// row holds the same value there — always the case for a single-point
// dataset) map to 0 with Span 1; NaN/±Inf inputs are rejected with
// ErrNotFinite before any value is modified.
//
// Unlike Normalize, the per-dimension map is anisotropic and does NOT
// preserve Euclidean structure; it is the right choice only when
// dimensions carry incommensurate units and the caller wants each to
// span the full quantization range.
func NormalizeDims(m *vec.Matrix) ([]Transform, error) {
	if m == nil || m.N == 0 || m.D == 0 {
		return nil, nil
	}
	for i, v := range m.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("quant: row %d dim %d: %w: %v", i/m.D, i%m.D, ErrNotFinite, v)
		}
	}
	ts := make([]Transform, m.D)
	for j := 0; j < m.D; j++ {
		lo, hi := m.Data[j], m.Data[j]
		for i := 1; i < m.N; i++ {
			v := m.Data[i*m.D+j]
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		span := hi - lo
		if span == 0 {
			for i := 0; i < m.N; i++ {
				m.Data[i*m.D+j] = 0
			}
			ts[j] = Transform{Lo: lo, Span: 1}
			continue
		}
		for i := 0; i < m.N; i++ {
			m.Data[i*m.D+j] = (m.Data[i*m.D+j] - lo) / span
		}
		ts[j] = Transform{Lo: lo, Span: span}
	}
	return ts, nil
}
