// Package dataset generates the synthetic stand-ins for the eight real
// datasets of Table 6 of the paper (ImageNet, MSD, GIST, Trevi, Year,
// Notre, NUS-WIDE, Enron).
//
// The real datasets are not redistributable here, so each is replaced by a
// seeded generator that preserves the properties the paper's experiments
// depend on:
//
//   - the dimensionality d (exactly as in Table 6),
//   - the value range after normalization ([0,1]),
//   - cluster structure (points drawn around shared centers, so k-means
//     and kNN behave realistically rather than degenerating to uniform
//     noise), and
//   - the *segment-statistic informativeness* that drives pruning power:
//     MSD-like data has strongly correlated adjacent dimensions, so
//     LB_FNN's per-segment mean/σ carry a lot of information and prune
//     well; GIST-like data is nearly white noise across dimensions, so
//     LB_FNN prunes poorly — matching the paper's §VI-C observations.
//
// FullN records the paper's original cardinality for data-transfer-cost
// math; generated matrices are scaled down (configurable) so tests and
// benches run on a laptop.
package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"pimmine/internal/vec"
)

// Profile describes one synthetic dataset family.
type Profile struct {
	Name  string
	FullN int // cardinality in the paper's Table 6
	D     int // dimensionality (exactly as in Table 6)

	// Clusters is the number of Gaussian mixture components points are
	// drawn from.
	Clusters int

	// Correlation in [0,1) controls smoothness across adjacent
	// dimensions via an AR(1) filter: 0 = white noise (GIST-like, weak
	// segment-statistic pruning), 0.95 = very smooth (MSD-like, strong
	// pruning).
	Correlation float64

	// Spread is the per-dimension noise σ around a cluster center before
	// normalization; smaller values give tighter clusters.
	Spread float64
}

// Profiles lists the eight Table 6 datasets in the paper's order.
// The correlation values are calibrated, not measured from the originals:
// they are chosen so the relative pruning behaviour reported in §VI
// (strong on MSD, weak on GIST, intermediate elsewhere) is reproduced.
var Profiles = []Profile{
	{Name: "ImageNet", FullN: 2340173, D: 150, Clusters: 64, Correlation: 0.70, Spread: 0.12},
	{Name: "MSD", FullN: 992272, D: 420, Clusters: 32, Correlation: 0.92, Spread: 0.08},
	{Name: "GIST", FullN: 1000000, D: 960, Clusters: 16, Correlation: 0.50, Spread: 1.20},
	{Name: "Trevi", FullN: 100000, D: 4096, Clusters: 8, Correlation: 0.85, Spread: 0.08},
	{Name: "Year", FullN: 515345, D: 90, Clusters: 32, Correlation: 0.75, Spread: 0.10},
	{Name: "Notre", FullN: 332668, D: 128, Clusters: 32, Correlation: 0.80, Spread: 0.10},
	{Name: "NUS-WIDE", FullN: 269648, D: 500, Clusters: 64, Correlation: 0.80, Spread: 0.10},
	{Name: "Enron", FullN: 100000, D: 1369, Clusters: 32, Correlation: 0.60, Spread: 0.15},
}

// ByName returns the profile with the given name.
func ByName(name string) (Profile, error) {
	for _, p := range Profiles {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("dataset: unknown profile %q", name)
}

// SizeBytes reports the paper's Table 6 on-disk size of the full dataset
// assuming 32-bit values, in bytes.
func (p Profile) SizeBytes() int64 {
	return int64(p.FullN) * int64(p.D) * 4
}

// Dataset is a generated dataset: a normalized matrix in [0,1] plus the
// label of the mixture component each row was drawn from (used by the
// classification examples) and the profile it came from. The mixture
// centers and the min-max transform are retained so Queries can draw
// in-distribution queries into the same normalized space.
type Dataset struct {
	Profile Profile
	X       *vec.Matrix
	Labels  []int

	centers  [][]float64
	lo, span float64 // min-max transform applied to X
}

// Generate draws n rows from the profile's mixture using the given seed
// and min-max normalizes all values into [0,1]. The same (profile, n,
// seed) always yields the same dataset.
func Generate(p Profile, n int, seed int64) *Dataset {
	if n <= 0 {
		panic(fmt.Sprintf("dataset: non-positive n=%d", n))
	}
	rng := rand.New(rand.NewSource(seed))
	centers := make([][]float64, p.Clusters)
	for c := range centers {
		centers[c] = smoothVector(rng, p.D, p.Correlation, 1.0)
	}
	m := vec.NewMatrix(n, p.D)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		c := rng.Intn(p.Clusters)
		labels[i] = c
		noise := smoothVector(rng, p.D, p.Correlation, p.Spread)
		row := m.Row(i)
		for j := 0; j < p.D; j++ {
			row[j] = centers[c][j] + noise[j]
		}
	}
	lo, span := normalize(m)
	return &Dataset{Profile: p, X: m, Labels: labels, centers: centers, lo: lo, span: span}
}

// Queries draws nq query vectors from the dataset's own mixture — the
// same cluster centers, fresh noise — and maps them into the dataset's
// normalized space with the same min-max transform (clamped to [0,1],
// which the PIM quantizer requires). Queries are therefore
// in-distribution, as the paper's held-out queries are, but are not
// dataset members.
func (ds *Dataset) Queries(nq int, seed int64) *vec.Matrix {
	if nq <= 0 {
		panic(fmt.Sprintf("dataset: non-positive nq=%d", nq))
	}
	rng := rand.New(rand.NewSource(seed ^ 0x5e3779b97f4a7c15))
	p := ds.Profile
	q := vec.NewMatrix(nq, p.D)
	for i := 0; i < nq; i++ {
		c := rng.Intn(p.Clusters)
		noise := smoothVector(rng, p.D, p.Correlation, p.Spread)
		row := q.Row(i)
		for j := 0; j < p.D; j++ {
			v := (ds.centers[c][j] + noise[j] - ds.lo) / ds.span
			switch {
			case v < 0:
				v = 0
			case v > 1:
				v = 1
			}
			row[j] = v
		}
	}
	return q
}

// smoothVector draws a d-dim vector whose increments follow an AR(1)
// process with coefficient corr: v[j] = corr·v[j-1] + (1-corr)·g, g~N(0,σ).
// corr=0 reduces to i.i.d. Gaussian noise.
func smoothVector(rng *rand.Rand, d int, corr, sigma float64) []float64 {
	v := make([]float64, d)
	prev := rng.NormFloat64() * sigma
	for j := 0; j < d; j++ {
		g := rng.NormFloat64() * sigma
		prev = corr*prev + (1-corr)*g
		v[j] = prev
	}
	return v
}

// normalize maps all matrix values into [0,1] with a single global min-max
// transform, as §V-B of the paper prescribes before scaling by α. A global
// (rather than per-dimension) transform is an isotropic affine map, so it
// preserves nearest-neighbor and clustering structure exactly. It returns
// the transform so queries can be mapped into the same space.
func normalize(m *vec.Matrix) (lo, span float64) {
	if len(m.Data) == 0 {
		return 0, 1
	}
	lo, hi := m.Data[0], m.Data[0]
	for _, v := range m.Data {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	span = hi - lo
	if span == 0 {
		for i := range m.Data {
			m.Data[i] = 0
		}
		return lo, 1
	}
	for i := range m.Data {
		m.Data[i] = (m.Data[i] - lo) / span
	}
	return lo, span
}
