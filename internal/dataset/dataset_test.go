package dataset

import (
	"math"
	"testing"

	"pimmine/internal/vec"
)

func TestProfilesMatchTable6(t *testing.T) {
	t.Parallel()
	// Table 6's (N, d) pairs must be preserved exactly.
	want := map[string][2]int{
		"ImageNet": {2340173, 150},
		"MSD":      {992272, 420},
		"GIST":     {1000000, 960},
		"Trevi":    {100000, 4096},
		"Year":     {515345, 90},
		"Notre":    {332668, 128},
		"NUS-WIDE": {269648, 500},
		"Enron":    {100000, 1369},
	}
	if len(Profiles) != len(want) {
		t.Fatalf("%d profiles, want %d", len(Profiles), len(want))
	}
	for _, p := range Profiles {
		w, ok := want[p.Name]
		if !ok {
			t.Errorf("unexpected profile %q", p.Name)
			continue
		}
		if p.FullN != w[0] || p.D != w[1] {
			t.Errorf("%s: (N,d) = (%d,%d), Table 6 has (%d,%d)", p.Name, p.FullN, p.D, w[0], w[1])
		}
	}
}

func TestByName(t *testing.T) {
	t.Parallel()
	p, err := ByName("MSD")
	if err != nil || p.D != 420 {
		t.Fatalf("ByName(MSD) = %+v, %v", p, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown name must error")
	}
}

func TestGenerateNormalizedAndDeterministic(t *testing.T) {
	t.Parallel()
	p, _ := ByName("Year")
	ds1 := Generate(p, 200, 5)
	ds2 := Generate(p, 200, 5)
	if !vec.Equal(ds1.X.Data, ds2.X.Data, 0) {
		t.Fatal("generation must be deterministic per seed")
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range ds1.X.Data {
		lo, hi = math.Min(lo, v), math.Max(hi, v)
	}
	if lo < 0 || hi > 1 {
		t.Fatalf("values outside [0,1]: [%v, %v]", lo, hi)
	}
	if lo != 0 || hi != 1 {
		t.Fatalf("min-max normalization must hit both ends, got [%v, %v]", lo, hi)
	}
	if len(ds1.Labels) != 200 {
		t.Fatalf("labels = %d", len(ds1.Labels))
	}
	for _, l := range ds1.Labels {
		if l < 0 || l >= p.Clusters {
			t.Fatalf("label %d outside [0,%d)", l, p.Clusters)
		}
	}
}

func TestQueriesDifferFromData(t *testing.T) {
	t.Parallel()
	p, _ := ByName("Notre")
	ds := Generate(p, 100, 5)
	q := ds.Queries(10, 5)
	if q.N != 10 || q.D != p.D {
		t.Fatalf("queries shape %dx%d", q.N, q.D)
	}
	if vec.Equal(q.Row(0), ds.X.Row(0), 1e-12) {
		t.Fatal("queries must not replicate dataset rows")
	}
}

// The correlation knob must control segment-statistic informativeness:
// high-correlation (MSD-like) data has much higher variance across
// segment means than white-noise (GIST-like) data relative to its total
// variance — this is what drives the pruning-power differences in §VI-C.
func TestCorrelationControlsSegmentStructure(t *testing.T) {
	t.Parallel()
	segRatio := func(corr float64) float64 {
		p := Profile{Name: "x", FullN: 1000, D: 256, Clusters: 4, Correlation: corr, Spread: 0.2}
		ds := Generate(p, 100, 11)
		var between, within float64
		for i := 0; i < ds.X.N; i++ {
			mu, sigma, err := vec.SegmentStats(ds.X.Row(i), 16)
			if err != nil {
				t.Fatal(err)
			}
			between += vec.Std(mu)
			within += vec.Mean(sigma)
		}
		return between / within
	}
	smooth := segRatio(0.92)
	noisy := segRatio(0.02)
	if smooth <= 1.5*noisy {
		t.Fatalf("correlated data's segment structure (%.3f) must dominate white noise's (%.3f)", smooth, noisy)
	}
}

func TestSizeBytes(t *testing.T) {
	t.Parallel()
	p, _ := ByName("Trevi")
	// 100000 × 4096 × 4B ≈ 1.56 GB (Table 6 lists 3.0GB for float64 /
	// original storage; we model 32-bit operands).
	if got := p.SizeBytes(); got != int64(100000)*4096*4 {
		t.Fatalf("SizeBytes = %d", got)
	}
}

func TestGeneratePanicsOnBadN(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Fatal("Generate(n<=0) must panic")
		}
	}()
	Generate(Profiles[0], 0, 1)
}
