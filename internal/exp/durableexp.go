package exp

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"pimmine/internal/serve"
	"pimmine/internal/vec"
	"pimmine/internal/wal"
)

func init() {
	register("ext-durable", ExtDurable)
}

// ExtDurable measures the crash-recovery cost of the durable mutable
// engine: an insert/update/delete workload runs against a WAL-backed
// engine and, after every mutation burst, a recovery probe rebuilds a
// second engine from the directory (snapshot + replay) as a crash at
// that instant would. The table reports replay time against log length
// (records since the last checkpoint, on-disk segment bytes) and the
// savings a mid-sweep Checkpoint buys by truncating the log. Every
// probe is verified two ways: its answers are exact against a
// canonical scan over its own materialized rows, and bit-identical to
// the never-crashed engine's answers — the recovery invariant the
// crash/recover goldens pin per record.
func ExtDurable(s *Suite) (*Table, error) {
	t := &Table{
		ID:    "ext-durable",
		Title: "Durable engine crash recovery (MSD, WAL + snapshot, k=10)",
		Header: []string{"Phase", "Live rows", "WAL records", "WAL KiB",
			"Replay ms", "Wall µs/query", "Checkpoint ms"},
	}
	const k = 10
	w, err := s.knnWorkloadFor("MSD")
	if err != nil {
		return nil, err
	}
	dir, err := os.MkdirTemp("", "pimbench-durable-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	opts := serve.MutableOptions{
		Options:  serve.Options{Shards: 4, Workers: 2, Obs: s.Obs},
		MaxDelta: w.data.N * 4,
		Durability: serve.Durability{
			Dir: dir,
			// Small segments so rotation and checkpoint truncation are
			// visible within a laptop-scale sweep.
			SegmentBytes: 64 << 10,
		},
	}
	eng, err := serve.NewMutable(w.data, opts)
	if err != nil {
		return nil, err
	}
	defer eng.Close()

	rng := rand.New(rand.NewSource(s.Seed + 99))
	live := make([]int, w.data.N)
	for i := range live {
		live[i] = i
	}
	randVec := func() []float64 {
		// Mutations stay inside the dataset's normalized [0,1] domain.
		v := make([]float64, w.data.D)
		for i := range v {
			v[i] = rng.Float64()
		}
		return v
	}
	mutate := func(ops int) error {
		for i := 0; i < ops; i++ {
			switch r := rng.Intn(4); {
			case r < 2 || len(live) < 2:
				id, err := eng.Insert(randVec())
				if err != nil {
					return err
				}
				live = append(live, id)
			case r == 2:
				j := rng.Intn(len(live))
				if err := eng.Delete(live[j]); err != nil {
					return err
				}
				live[j] = live[len(live)-1]
				live = live[:len(live)-1]
			default:
				if err := eng.Update(live[rng.Intn(len(live))], randVec()); err != nil {
					return err
				}
			}
		}
		return nil
	}

	// logState reads the directory as a recovery would see it: records
	// past the latest checkpoint and on-disk segment bytes.
	logState := func() (records int, bytes int64, err error) {
		snap, err := wal.LatestSnapshot(dir)
		if err != nil {
			return 0, 0, err
		}
		err = wal.Replay(dir, snap.LSN, func(int64, wal.Record) error {
			records++
			return nil
		})
		if err != nil {
			return 0, 0, err
		}
		segs, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
		if err != nil {
			return 0, 0, err
		}
		for _, seg := range segs {
			fi, err := os.Stat(seg)
			if err != nil {
				return 0, 0, err
			}
			bytes += fi.Size()
		}
		return records, bytes, nil
	}

	queries := w.queries
	// verify pins a result set exact against a canonical scan over an
	// engine's materialized live rows.
	verify := func(phase string, e *serve.MutableEngine, got [][]vec.Neighbor) error {
		final, ids := e.Materialize()
		for qi := 0; qi < queries.N; qi++ {
			top := vec.NewTopK(k)
			for i := 0; i < final.N; i++ {
				var d float64
				for c := 0; c < final.D; c++ {
					x := final.Row(i)[c] - queries.Row(qi)[c]
					d += x * x
				}
				top.Push(ids[i], d)
			}
			want := top.Results()
			for i := range want {
				if got[qi][i] != want[i] {
					return fmt.Errorf("ext-durable: %s query %d inexact: got %+v want %+v",
						phase, qi, got[qi][i], want[i])
				}
			}
		}
		return nil
	}

	ops := w.data.N / 16
	if ops < 2 {
		ops = 2
	}
	const phases = 8
	ckptAfter := phases / 2
	var preRecords, postRecords int
	var preBytes, postBytes int64
	for phase := 1; phase <= phases; phase++ {
		if err := mutate(ops); err != nil {
			return nil, err
		}
		// With SyncAlways every applied mutation is already durable, so
		// a crash right now loses nothing; the probe replays the full
		// suffix past the last checkpoint.
		records, bytes, err := logState()
		if err != nil {
			return nil, err
		}
		probeOpts := opts
		probeOpts.Obs = nil // probes must not pollute the live engine's metrics
		rStart := time.Now()
		probe, err := serve.RecoverMutable(probeOpts)
		if err != nil {
			return nil, fmt.Errorf("ext-durable: phase %d recover: %w", phase, err)
		}
		replayMs := time.Since(rStart).Seconds() * 1e3

		qStart := time.Now()
		res, err := probe.SearchBatch(context.Background(), queries, k)
		if err != nil {
			probe.Close()
			return nil, err
		}
		wallPerQ := time.Since(qStart).Seconds() * 1e6 / float64(queries.N)
		if err := verify(fmt.Sprintf("phase %d probe", phase), probe, res.Neighbors()); err != nil {
			probe.Close()
			return nil, err
		}
		liveRes, err := eng.SearchBatch(context.Background(), queries, k)
		if err != nil {
			probe.Close()
			return nil, err
		}
		for qi := 0; qi < queries.N; qi++ {
			got, want := res.Neighbors()[qi], liveRes.Neighbors()[qi]
			for i := range want {
				if got[i] != want[i] {
					probe.Close()
					return nil, fmt.Errorf("ext-durable: phase %d recovered answer diverges from live engine at query %d rank %d: got %+v want %+v",
						phase, qi, i, got[i], want[i])
				}
			}
		}
		if err := probe.Close(); err != nil {
			return nil, err
		}

		// Mid-sweep checkpoint: snapshot the state, truncate the log,
		// and report what the next crash no longer has to replay.
		ckpt := "-"
		if phase == ckptAfter {
			preRecords, preBytes = records, bytes
			cStart := time.Now()
			if err := eng.Checkpoint(); err != nil {
				return nil, fmt.Errorf("ext-durable: checkpoint: %w", err)
			}
			ckpt = fmt.Sprintf("%.2f", time.Since(cStart).Seconds()*1e3)
			postRecords, postBytes, err = logState()
			if err != nil {
				return nil, err
			}
		}

		t.AddRow(
			fmt.Sprintf("%d", phase),
			fmt.Sprintf("%d", len(live)),
			fmt.Sprintf("%d", records),
			fmt.Sprintf("%.1f", float64(bytes)/1024),
			fmt.Sprintf("%.2f", replayMs),
			fmt.Sprintf("%.0f", wallPerQ),
			ckpt,
		)
	}
	t.Note("every phase applies %d mutations (50%% insert / 25%% update / 25%% delete) under SyncAlways, then a recovery probe rebuilds the engine from snapshot+WAL; probe answers are verified exact against a canonical scan and bit-identical to the live engine's; the phase-%d checkpoint truncated the log from %d records / %.1f KiB to %d records / %.1f KiB",
		ops, ckptAfter, preRecords, float64(preBytes)/1024, postRecords, float64(postBytes)/1024)
	return t, nil
}
