package exp

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"pimmine/internal/crossbar"
	"pimmine/internal/measure"
	"pimmine/internal/vec"
)

func init() {
	register("ext-kernels", ExtKernels)
}

// benchNs measures one operation's wall-clock nanoseconds: it runs f in
// growing batches until a batch takes at least minBatch, three times, and
// keeps the best (least-interrupted) batch. Best-of keeps the artifact
// stable across noisy CI machines; unlike the modeled times everywhere
// else in this harness, these are real measured nanoseconds.
func benchNs(f func()) float64 {
	const minBatch = 2 * time.Millisecond
	iters := 1
	best := math.MaxFloat64
	for rep := 0; rep < 3; rep++ {
		for {
			start := time.Now()
			for i := 0; i < iters; i++ {
				f()
			}
			elapsed := time.Since(start)
			if elapsed >= minBatch {
				if ns := float64(elapsed.Nanoseconds()) / float64(iters); ns < best {
					best = ns
				}
				break
			}
			iters *= 4
		}
	}
	return best
}

// ExtKernels benchmarks the optimized hot-path kernels against their
// retained scalar references — the perf half of the kernel-equivalence
// harness (the tests and fuzzers pin bit-identity; this pins the speedup
// that justifies the optimized code's existence). Every pair is checked
// for agreement on the benchmark inputs before timing, so a divergence
// fails the run rather than producing a meaningless speedup row.
func ExtKernels(s *Suite) (*Table, error) {
	t := &Table{
		ID:     "ext-kernels",
		Title:  "Optimized kernels vs retained scalar references (measured wall clock)",
		Header: []string{"Kernel", "Shape", "Ref(ns/op)", "Opt(ns/op)", "Speedup"},
	}
	rng := rand.New(rand.NewSource(s.Seed))

	// Word-parallel bit-plane crossbar vs cell-at-a-time reference, on the
	// paper's Table 5 geometry (M=256, 2-bit cells, 2-bit DACs, 8-bit
	// operands → 64 dims per vector slot at full packing).
	spec := crossbar.Spec{M: 256, CellBits: 2, DACBits: 2, ReadLatencyNs: 29.31, WriteLatencyNs: 50.88}
	const dims, opBits = 256, 8
	nvecs := spec.VectorsPerCrossbar(dims, opBits)
	xb := crossbar.New(spec)
	for v := 0; v < nvecs; v++ {
		vals := make([]uint32, dims)
		for i := range vals {
			vals[i] = rng.Uint32() & 0xff
		}
		if _, err := xb.ProgramVector(vals, opBits); err != nil {
			return nil, fmt.Errorf("ext-kernels: program crossbar: %w", err)
		}
	}
	input := make([]uint32, dims)
	for i := range input {
		input[i] = rng.Uint32() & 0xff
	}
	want, _, err := xb.DotAllRef(input, opBits)
	if err != nil {
		return nil, fmt.Errorf("ext-kernels: DotAllRef: %w", err)
	}
	dst := make([]int64, nvecs)
	if _, err := xb.DotAllInto(input, opBits, dst); err != nil {
		return nil, fmt.Errorf("ext-kernels: DotAllInto: %w", err)
	}
	for i := range dst {
		if dst[i] != want[i] {
			return nil, fmt.Errorf("ext-kernels: crossbar DotAll diverges from reference at vector %d", i)
		}
	}
	refNs := benchNs(func() { xb.DotAllRef(input, opBits) })
	optNs := benchNs(func() { xb.DotAllInto(input, opBits, dst) })
	t.AddRow("CrossbarDotAll", fmt.Sprintf("M=%d d=%d op=%db ×%d vecs", spec.M, dims, opBits, nvecs),
		ms2(refNs), ms2(optNs), speedup(refNs, optNs))

	// Same kernel on the HD decomposition shape (Table 4): 1-bit operands,
	// 1-bit input — one cell per operand packs a vector per row, and the
	// word-parallel planes collapse to a single AND+popcount per 64 cells.
	bvecs := spec.VectorsPerCrossbar(dims, 1)
	xbb := crossbar.New(spec)
	for v := 0; v < bvecs; v++ {
		vals := make([]uint32, dims)
		for i := range vals {
			vals[i] = rng.Uint32() & 1
		}
		if _, err := xbb.ProgramVector(vals, 1); err != nil {
			return nil, fmt.Errorf("ext-kernels: program binary crossbar: %w", err)
		}
	}
	binput := make([]uint32, dims)
	for i := range binput {
		binput[i] = rng.Uint32() & 1
	}
	bwant, _, err := xbb.DotAllRef(binput, 1)
	if err != nil {
		return nil, fmt.Errorf("ext-kernels: binary DotAllRef: %w", err)
	}
	bdst := make([]int64, bvecs)
	if _, err := xbb.DotAllInto(binput, 1, bdst); err != nil {
		return nil, fmt.Errorf("ext-kernels: binary DotAllInto: %w", err)
	}
	for i := range bdst {
		if bdst[i] != bwant[i] {
			return nil, fmt.Errorf("ext-kernels: binary crossbar DotAll diverges from reference at vector %d", i)
		}
	}
	refNs = benchNs(func() { xbb.DotAllRef(binput, 1) })
	optNs = benchNs(func() { xbb.DotAllInto(binput, 1, bdst) })
	t.AddRow("CrossbarDotAll-HD", fmt.Sprintf("M=%d d=%d op=1b ×%d vecs", spec.M, dims, bvecs),
		ms2(refNs), ms2(optNs), speedup(refNs, optNs))

	// Host-side kernels at a typical Table 6 dimensionality.
	const d = 420
	fa := make([]float64, d)
	fb := make([]float64, d)
	ia := make([]uint32, d)
	ib := make([]uint32, d)
	for i := 0; i < d; i++ {
		fa[i] = rng.NormFloat64()
		fb[i] = rng.NormFloat64()
		ia[i] = rng.Uint32() & 0xff
		ib[i] = rng.Uint32() & 0xff
	}
	type pair struct {
		name     string
		ref, opt func()
		agree    bool
	}
	var sink float64
	var isink int64
	pairs := []pair{
		{"IntDot", func() { isink = vec.IntDotRef(ia, ib) }, func() { isink = vec.IntDot(ia, ib) },
			vec.IntDot(ia, ib) == vec.IntDotRef(ia, ib)},
		{"Dot", func() { sink = vec.DotRef(fa, fb) }, func() { sink = vec.Dot(fa, fb) },
			math.Float64bits(vec.Dot(fa, fb)) == math.Float64bits(vec.DotRef(fa, fb))},
		{"SqNorm", func() { sink = vec.SqNormRef(fa) }, func() { sink = vec.SqNorm(fa) },
			math.Float64bits(vec.SqNorm(fa)) == math.Float64bits(vec.SqNormRef(fa))},
		{"SqEuclidean", func() { sink = measure.SqEuclideanRef(fa, fb) }, func() { sink = measure.SqEuclidean(fa, fb) },
			math.Float64bits(measure.SqEuclidean(fa, fb)) == math.Float64bits(measure.SqEuclideanRef(fa, fb))},
	}
	for _, p := range pairs {
		if !p.agree {
			return nil, fmt.Errorf("ext-kernels: %s diverges from its reference", p.name)
		}
		refNs := benchNs(p.ref)
		optNs := benchNs(p.opt)
		t.AddRow(p.name, fmt.Sprintf("d=%d", d), ms2(refNs), ms2(optNs), speedup(refNs, optNs))
	}
	_, _ = sink, isink

	// The zero-alloc refine scratch path: per-query FNN feature statistics
	// through caller-owned buffers (SegmentStatsInto, what SearchAppend
	// uses) vs the allocating SegmentStats it replaced on the hot path.
	const segs = 105 // s for MSD at full scale (Theorem 4)
	muBuf := make([]float64, segs)
	sgBuf := make([]float64, segs)
	if err := vec.SegmentStatsInto(fa, segs, muBuf, sgBuf); err != nil {
		return nil, fmt.Errorf("ext-kernels: SegmentStatsInto: %w", err)
	}
	muRef, sgRef, err := vec.SegmentStats(fa, segs)
	if err != nil {
		return nil, fmt.Errorf("ext-kernels: SegmentStats: %w", err)
	}
	for i := range muRef {
		if math.Float64bits(muRef[i]) != math.Float64bits(muBuf[i]) ||
			math.Float64bits(sgRef[i]) != math.Float64bits(sgBuf[i]) {
			return nil, fmt.Errorf("ext-kernels: SegmentStatsInto diverges from SegmentStats at segment %d", i)
		}
	}
	refNs = benchNs(func() { vec.SegmentStats(fa, segs) })
	optNs = benchNs(func() { vec.SegmentStatsInto(fa, segs, muBuf, sgBuf) })
	t.AddRow("SegmentStats", fmt.Sprintf("d=%d s=%d", d, segs), ms2(refNs), ms2(optNs), speedup(refNs, optNs))
	t.Note("all pairs verified bit-identical on the benchmark inputs before timing")
	t.Note("measured wall clock (best of 3), not modeled PIM time; float kernels keep the reference's evaluation order, so their win is bounds-check elimination only")
	return t, nil
}

// ms2 formats a nanosecond measurement.
func ms2(ns float64) string { return fmt.Sprintf("%.1f", ns) }
