package exp

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"pimmine/internal/arch"
	"pimmine/internal/cluster"
	"pimmine/internal/knn"
	"pimmine/internal/vec"
)

func init() {
	register("ext-cluster", ExtCluster)
}

// Cluster-experiment shape: a fixed shard count is placed over a
// growing fleet of simulated PIM nodes, each node a serialized pipeline
// with a pinned per-visit service time — so aggregate capacity grows
// with the node count and goodput should scale near-linearly. The final
// cell re-runs the largest fleet and kills one node mid-window: R-way
// replication plus least-inflight replica selection must absorb the
// loss, retaining most of the steady goodput with every surviving
// answer still bit-exact.
var (
	clusterServiceDelay = raceScale * 300 * time.Microsecond
	clusterWindow       = raceScale * 300 * time.Millisecond
)

const clusterShards = 8

// ExtCluster measures goodput versus node count on the multi-node
// placement layer, then mid-sweep-kills a node at the largest fleet.
// Every success is verified exact against the sequential scan; failures
// must be the typed cluster sentinels (tolerated only as a transient
// around the kill instant).
func ExtCluster(s *Suite) (*Table, error) {
	t := &Table{
		ID:     "ext-cluster",
		Title:  fmt.Sprintf("Goodput vs node count, R=%d replication, one mid-run node kill (MSD, k=10)", s.Replicas),
		Header: []string{"Nodes", "Replicas", "Clients", "Attempts", "Goodput qps", "OK", "Typed fail", "Scaling"},
	}
	const k = 10
	ds, err := s.Data("MSD")
	if err != nil {
		return nil, err
	}
	nq := 4 * s.Queries
	queries := ds.Queries(nq, s.Seed+303)
	exact := knn.NewStandard(ds.X)
	truth := make([][]vec.Neighbor, queries.N)
	for qi := 0; qi < queries.N; qi++ {
		truth[qi] = exact.Search(queries.Row(qi), k, arch.NewMeter())
	}

	reps := func(nodes int) int {
		r := s.Replicas
		if r > nodes {
			r = nodes
		}
		return r
	}
	build := func(nodes int) (*cluster.Engine, error) {
		return cluster.New(ds.X, cluster.Options{
			Nodes:           nodes,
			Replicas:        reps(nodes),
			Shards:          clusterShards,
			Seed:            s.Seed,
			NodeServiceTime: clusterServiceDelay,
			Obs:             s.Obs,
		})
	}

	type cell struct {
		attempts int64
		ok       int64
		typed    int64
	}
	runCell := func(eng *cluster.Engine, clients int, mid func()) (*cell, error) {
		// Warm-up outside the measured window.
		for i := 0; i < 8; i++ {
			if _, err := eng.Search(context.Background(), queries.Row(i%queries.N), k); err != nil {
				return nil, fmt.Errorf("warm-up: %w", err)
			}
		}
		c := &cell{}
		var untyped atomic.Value
		stop := time.Now().Add(clusterWindow)
		var timer *time.Timer
		if mid != nil {
			timer = time.AfterFunc(clusterWindow/2, mid)
		}
		var wg sync.WaitGroup
		for w := 0; w < clients; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; time.Now().Before(stop); i++ {
					qi := (w + i*clients) % queries.N
					res, err := eng.Search(context.Background(), queries.Row(qi), k)
					atomic.AddInt64(&c.attempts, 1)
					switch {
					case err == nil:
						for j := range truth[qi] {
							if res.Neighbors[j] != truth[qi][j] {
								untyped.Store(fmt.Errorf("query %d inexact under placement", qi))
								return
							}
						}
						atomic.AddInt64(&c.ok, 1)
					case errors.Is(err, cluster.ErrNoQuorum), errors.Is(err, cluster.ErrRebalancing):
						// A read can race the kill instant; typed and
						// transient, so counted, never fatal.
						atomic.AddInt64(&c.typed, 1)
					default:
						untyped.Store(fmt.Errorf("untyped cluster error: %w", err))
						return
					}
				}
			}(w)
		}
		wg.Wait()
		if timer != nil {
			timer.Stop()
		}
		if err, ok := untyped.Load().(error); ok && err != nil {
			return nil, err
		}
		return c, nil
	}

	maxNodes := s.Nodes
	if maxNodes < 1 {
		maxNodes = 1
	}
	var sweep []int
	for n := 1; n <= maxNodes; n *= 2 {
		sweep = append(sweep, n)
	}
	goodputs := make(map[int]float64, len(sweep))
	for _, nodes := range sweep {
		eng, err := build(nodes)
		if err != nil {
			return nil, err
		}
		clients := 2 * nodes
		c, err := runCell(eng, clients, nil)
		if err != nil {
			eng.Close()
			return nil, fmt.Errorf("ext-cluster %d nodes: %w", nodes, err)
		}
		if err := eng.Close(); err != nil {
			return nil, err
		}
		goodput := float64(c.ok) / clusterWindow.Seconds()
		goodputs[nodes] = goodput
		t.AddRow(
			fmt.Sprintf("%d", nodes),
			fmt.Sprintf("%d", reps(nodes)),
			fmt.Sprintf("%d", clients),
			fmt.Sprintf("%d", c.attempts),
			fmt.Sprintf("%.0f", goodput),
			pctShare(c.ok, c.attempts),
			pctShare(c.typed, c.attempts),
			fmt.Sprintf("%.2fx", goodput/goodputs[1]),
		)
	}

	// Mid-run kill at the largest fleet: one node dies halfway through
	// the window, chosen by the seeded chaos draw.
	last := sweep[len(sweep)-1]
	retained := 100.0
	if last > 1 && reps(last) > 1 {
		eng, err := build(last)
		if err != nil {
			return nil, err
		}
		victim := rand.New(rand.NewSource(s.ChaosSeed)).Intn(last)
		var killErr atomic.Value
		c, err := runCell(eng, 2*last, func() {
			if err := eng.KillNode(victim); err != nil {
				killErr.Store(err)
			}
		})
		if err == nil {
			if e, ok := killErr.Load().(error); ok && e != nil {
				err = fmt.Errorf("mid-run kill: %w", e)
			}
		}
		if err != nil {
			eng.Close()
			return nil, fmt.Errorf("ext-cluster kill cell: %w", err)
		}
		if err := eng.Close(); err != nil {
			return nil, err
		}
		goodput := float64(c.ok) / clusterWindow.Seconds()
		retained = 100 * goodput / goodputs[last]
		t.AddRow(
			fmt.Sprintf("%d (node %d killed mid-run)", last, victim),
			fmt.Sprintf("%d", reps(last)),
			fmt.Sprintf("%d", 2*last),
			fmt.Sprintf("%d", c.attempts),
			fmt.Sprintf("%.0f", goodput),
			pctShare(c.ok, c.attempts),
			pctShare(c.typed, c.attempts),
			fmt.Sprintf("%.0f%% retained", retained),
		)
		// Exactness is enforced per query; retention is timing-dependent
		// on shared runners, so it warns rather than fails.
		if retained < 80 {
			t.Note("WARNING: goodput retained %.0f%% of steady after a mid-run node kill, below the 80%% target", retained)
		}
	}
	t.Note("fixed %d shards placed by consistent hashing, %s pipeline service per shard visit; closed-loop clients, every success verified exact against the sequential scan",
		clusterShards, clusterServiceDelay)
	t.Note("kill cell: one node destroyed mid-window; R-way replicas plus least-inflight selection absorb the loss with answers bit-identical throughout")
	return t, nil
}

// pctShare formats n/total as a percentage.
func pctShare(n, total int64) string {
	if total == 0 {
		return "0.0%"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(n)/float64(total))
}
