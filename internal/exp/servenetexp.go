package exp

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pimmine/internal/arch"
	"pimmine/internal/knn"
	"pimmine/internal/netserve"
	"pimmine/internal/serve"
	"pimmine/internal/vec"
)

func init() {
	register("ext-serve-net", ExtServeNet)
}

// ext-serve-net shape: the network front-end (internal/netserve) serves a
// paced engine over a real loopback listener; per-tenant clients offer a
// 10:1-skewed load at 1x and 2x of the engine's known capacity, once
// through a single shared queue (every request rides the default tenant —
// plain FIFO) and once with per-tenant weighted-fair queueing. Goodput
// says whether fairness costs throughput; Jain's index over per-tenant
// goodput says whether the hot tenant can capture the server.
// Service time is large against per-request HTTP overhead (~2 ms on
// loopback) so capacity is set by the modeled service, not the wire; the
// window is long enough that per-tenant goodput counts are stable for
// Jain. Ten cold tenants (not fewer) matter: at 2x offered load each
// cold tenant's demand (0.1 x capacity) must exceed its fair entitlement
// (capacity/11) so every tenant stays backlogged — that is the regime
// where WFQ equalizes goodput and Jain can reach 1.0. With fewer cold
// tenants they would be underloaded and raw-goodput Jain caps below 0.9
// no matter how fair the scheduler is.
var (
	serveNetService = raceScale * 5 * time.Millisecond   // per-query service time
	serveNetWindow  = raceScale * 800 * time.Millisecond // measured wall window per cell
	serveNetWarmup  = raceScale * 50 * time.Millisecond  // unmeasured ramp
)

const (
	// One admission slot: each query holds every shard's mutex for the
	// paced service time, so the engine serves one query at a time no
	// matter how many slots overlap — a single slot makes the front-end
	// queue the only scheduler and capacity exactly 1/service.
	serveNetSlots      = 1
	serveNetColdGroups = 10 // cold tenants, one paced client each
	serveNetHotClients = 10 // hot-tenant clients: 10:1 offered-load skew
	serveNetK          = 10
)

// serveNetJain is Jain's fairness index (Σx)²/(n·Σx²) over per-group
// goodput: 1.0 = perfect equality, 1/n = one group captured everything.
func serveNetJain(xs []float64) float64 {
	var sum, sq float64
	for _, x := range xs {
		sum += x
		sq += x * x
	}
	if sq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sq)
}

// renderNeighbors prints a result with float64 bits in hex, so the wire
// answer is compared against the direct scan at full precision.
func renderNeighbors(nn []vec.Neighbor) string {
	var b strings.Builder
	for _, n := range nn {
		fmt.Fprintf(&b, "%d:%016x;", n.Index, math.Float64bits(n.Dist))
	}
	return b.String()
}

// ExtServeNet measures goodput and multi-tenant fairness of the network
// serving front-end versus offered load. Capacity is known exactly
// (slots / service time); clients are paced to offer 1x and 2x that
// aggregate with a 10:1 hot-tenant skew. The "shared" discipline funnels
// everyone through one queue (what a tenant-blind server does); "fair"
// gives each tenant its own weighted-fair queue. At 1x both disciplines
// serve everyone and Jain just reflects the demand skew (nothing needs
// isolating); at 2x the shared queue keeps serving the hot tenant its
// demand share while the fair queue caps it at its entitlement and
// spreads the reclaimed slots across the cold tenants — raw-goodput
// Jain collapses toward 1/n for shared and recovers toward 1.0 for
// fair. Every answer is verified exact against the sequential scan.
func ExtServeNet(s *Suite) (*Table, error) {
	t := &Table{
		ID:     "ext-serve-net",
		Title:  "Network serving: goodput and Jain fairness vs offered load (MSD, k=10)",
		Header: []string{"Offered", "Queue", "Goodput qps", "Capacity share", "Jain", "OK", "Rejected", "Hot share"},
	}
	ds, err := s.Data("MSD")
	if err != nil {
		return nil, err
	}
	queries := ds.Queries(s.Queries, s.Seed+303)
	exact := knn.NewStandard(ds.X)
	truth := make([]string, queries.N)
	for qi := 0; qi < queries.N; qi++ {
		truth[qi] = renderNeighbors(exact.Search(queries.Row(qi), serveNetK, arch.NewMeter()))
	}
	bodies := make([][]byte, queries.N)
	for qi := 0; qi < queries.N; qi++ {
		b, err := json.Marshal(netserve.QueryRequest{Query: queries.Row(qi), K: serveNetK})
		if err != nil {
			return nil, err
		}
		bodies[qi] = b
	}

	paced := func(m *vec.Matrix, _ int) (knn.Searcher, error) {
		inner := knn.NewStandard(m)
		return knn.SearcherFunc("paced-standard", func(q []float64, kk int, mm *arch.Meter) []vec.Neighbor {
			time.Sleep(serveNetService)
			return inner.Search(q, kk, mm)
		}), nil
	}

	groups := make([]string, 0, serveNetColdGroups+1)
	groups = append(groups, "hot")
	for i := 0; i < serveNetColdGroups; i++ {
		groups = append(groups, fmt.Sprintf("cold%d", i))
	}
	capacity := float64(serveNetSlots) / serveNetService.Seconds()

	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 64}}

	runCell := func(mult int, fair bool) (goodput, jainIdx, hotShare float64, okN, rejN int64, err error) {
		eng, err := serve.New(ds.X, serve.Options{Shards: 1, Factory: paced, Workers: serveNetSlots, Obs: s.Obs})
		if err != nil {
			return 0, 0, 0, 0, 0, err
		}
		srv, err := netserve.New(netserve.Options{Engine: eng, Slots: serveNetSlots, MaxQueue: 32, Obs: s.Obs})
		if err != nil {
			eng.Close()
			return 0, 0, 0, 0, 0, err
		}
		hs := srv.NewHTTPServer("")
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			eng.Close()
			return 0, 0, 0, 0, 0, err
		}
		go hs.Serve(ln)
		url := "http://" + ln.Addr().String() + "/v1/search"
		defer func() {
			hs.Close()
			srv.Drain()
		}()

		// Paced offered load: aggregate = mult x capacity split 10:1:…:1,
		// so each client (hot has 10, cold tenants 1 each) offers the same
		// per-client rate and the skew is purely tenant population.
		unit := float64(mult) * capacity / float64(serveNetHotClients+serveNetColdGroups)
		interval := time.Duration(float64(time.Second) / unit)

		type groupCell struct{ ok, rejected, bad atomic.Int64 }
		cells := make(map[string]*groupCell, len(groups))
		for _, g := range groups {
			cells[g] = &groupCell{}
		}
		var exactErr atomic.Value
		var measuring atomic.Bool
		stopAt := time.Now().Add(serveNetWarmup + serveNetWindow)
		var wg sync.WaitGroup
		worker := func(group string, c int) {
			defer wg.Done()
			cell := cells[group]
			for i := 0; ; i++ {
				begin := time.Now()
				if !begin.Before(stopAt) {
					return
				}
				qi := (c + i) % queries.N
				req, rerr := http.NewRequest(http.MethodPost, url, bytes.NewReader(bodies[qi]))
				if rerr != nil {
					exactErr.Store(rerr)
					return
				}
				req.Header.Set("Content-Type", "application/json")
				if fair {
					req.Header.Set("X-Tenant", group)
				}
				resp, rerr := client.Do(req)
				if rerr != nil {
					exactErr.Store(rerr)
					return
				}
				switch resp.StatusCode {
				case http.StatusOK:
					var qr netserve.QueryResponse
					derr := json.NewDecoder(resp.Body).Decode(&qr)
					resp.Body.Close()
					if derr != nil {
						exactErr.Store(derr)
						return
					}
					wire := make([]vec.Neighbor, len(qr.Neighbors))
					for i, n := range qr.Neighbors {
						wire[i] = vec.Neighbor{Index: n.Index, Dist: n.Dist}
					}
					if got := renderNeighbors(wire); got != truth[qi] {
						exactErr.Store(fmt.Errorf("ext-serve-net: query %d inexact over the wire", qi))
						return
					}
					if measuring.Load() {
						cell.ok.Add(1)
					}
				case http.StatusTooManyRequests:
					resp.Body.Close()
					if measuring.Load() {
						cell.rejected.Add(1)
					}
				default:
					resp.Body.Close()
					if measuring.Load() {
						cell.bad.Add(1)
					}
				}
				// Pace to the offered rate; a slow response eats the gap
				// (closed loop), so offered load never exceeds the target.
				if sleep := interval - time.Since(begin); sleep > 0 {
					time.Sleep(sleep)
				}
			}
		}
		for c := 0; c < serveNetHotClients; c++ {
			wg.Add(1)
			go worker("hot", c)
		}
		for i := 0; i < serveNetColdGroups; i++ {
			wg.Add(1)
			go worker(groups[1+i], serveNetHotClients+i)
		}
		time.Sleep(serveNetWarmup)
		measuring.Store(true)
		wg.Wait()
		if err, ok := exactErr.Load().(error); ok && err != nil {
			return 0, 0, 0, 0, 0, err
		}
		xs := make([]float64, len(groups))
		for i, g := range groups {
			xs[i] = float64(cells[g].ok.Load())
			okN += cells[g].ok.Load()
			rejN += cells[g].rejected.Load()
			if n := cells[g].bad.Load(); n > 0 {
				return 0, 0, 0, 0, 0, fmt.Errorf("ext-serve-net: %d responses with unexpected status in group %s", n, g)
			}
		}
		goodput = float64(okN) / serveNetWindow.Seconds()
		if okN > 0 {
			hotShare = xs[0] / float64(okN)
		}
		return goodput, serveNetJain(xs), hotShare, okN, rejN, nil
	}

	var peak, fair2xGoodput, fair2xJain float64
	for _, mult := range []int{1, 2} {
		for _, fair := range []bool{false, true} {
			goodput, jainIdx, hotShare, okN, rejN, err := runCell(mult, fair)
			if err != nil {
				return nil, fmt.Errorf("ext-serve-net %dx fair=%v: %w", mult, fair, err)
			}
			if goodput > peak {
				peak = goodput
			}
			name := "shared"
			if fair {
				name = "fair"
			}
			if mult == 2 && fair {
				fair2xGoodput, fair2xJain = goodput, jainIdx
			}
			t.AddRow(
				fmt.Sprintf("%dx", mult),
				name,
				fmt.Sprintf("%.0f", goodput),
				pct(goodput/capacity),
				fmt.Sprintf("%.3f", jainIdx),
				fmt.Sprintf("%d", okN),
				fmt.Sprintf("%d", rejN),
				pct(hotShare),
			)
		}
	}
	if fair2xJain < 0.9 {
		t.Note("WARNING: fair-queue Jain %.3f < 0.90 at 2x offered load — tenant isolation degraded", fair2xJain)
	}
	if peak > 0 && fair2xGoodput < 0.8*peak {
		t.Note("WARNING: fair-queue goodput %.0f qps at 2x is below 80%% of peak %.0f qps — fairness is costing throughput", fair2xGoodput, peak)
	}
	t.Note("capacity %d slots x %s service = %.0f qps; offered = mult x capacity split 10:1 across 1 hot + %d cold tenants; every 200 verified exact over the wire",
		serveNetSlots, serveNetService, capacity, serveNetColdGroups)
	t.Note("shared = tenant-blind single queue (all requests ride the default tenant); fair = per-tenant weighted-fair queue (internal/resilience WFQ behind internal/netserve)")
	return t, nil
}
