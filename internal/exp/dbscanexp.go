package exp

import (
	"fmt"

	"pimmine/internal/arch"
	"pimmine/internal/dbscan"
	"pimmine/internal/quant"
)

func init() {
	register("ext-dbscan", ExtDBSCAN)
}

// ExtDBSCAN measures host vs PIM density-based clustering — §II-C names
// density-based clustering among the framework's target tasks; DBSCAN's
// ε-range queries are pure similarity computations, so LB_PIM-ED prunes
// them exactly like the kNN filter.
func ExtDBSCAN(s *Suite) (*Table, error) {
	t := &Table{
		ID:     "ext-dbscan",
		Title:  "DBSCAN density clustering (minPts=4) — extension",
		Header: []string{"Dataset", "eps", "clusters", "Host(ms)", "PIM(ms)", "Speedup"},
	}
	q, err := quant.New(s.Quant.Alpha)
	if err != nil {
		return nil, err
	}
	for _, cfg := range []struct {
		name string
		eps  float64
	}{{"Year", 0.45}, {"Notre", 0.5}} {
		ds, err := s.Data(cfg.name)
		if err != nil {
			return nil, err
		}
		mHost := arch.NewMeter()
		want, err := dbscan.New(ds.X).Run(cfg.eps, 4, mHost)
		if err != nil {
			return nil, err
		}
		eng, err := s.engine()
		if err != nil {
			return nil, err
		}
		pimC, err := dbscan.NewPIM(eng, ds.X, q, ds.Profile.FullN)
		if err != nil {
			return nil, err
		}
		mPIM := arch.NewMeter()
		got, err := pimC.Run(cfg.eps, 4, mPIM)
		if err != nil {
			return nil, err
		}
		for i := range want.Labels {
			if want.Labels[i] != got.Labels[i] {
				return nil, fmt.Errorf("ext-dbscan: PIM clustering diverges on %s", cfg.name)
			}
		}
		h, p := s.modeledMs(mHost), s.modeledMs(mPIM)
		t.AddRow(cfg.name, fmt.Sprintf("%.2f", cfg.eps), fmt.Sprintf("%d", want.Clusters),
			ms(h), ms(p), speedup(h, p))
	}
	t.Note("clusterings verified identical between host and PIM paths")
	return t, nil
}
