//go:build race

package exp

// raceEnabled reports whether the race detector is compiled in. Timing-
// calibrated experiments (ext-overload) widen their service times and
// deadlines by raceScale under the detector: instrumented code runs an
// order of magnitude slower, and a deadline sized for production speed
// would time out every query before the mechanism under test ever
// engages.
const (
	raceEnabled = true
	raceScale   = 6
)
