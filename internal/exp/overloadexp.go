package exp

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"pimmine/internal/arch"
	"pimmine/internal/knn"
	"pimmine/internal/obs"
	"pimmine/internal/resilience"
	"pimmine/internal/serve"
	"pimmine/internal/vec"
)

func init() {
	register("ext-overload", ExtOverload)
}

// Overload-experiment shape: a paced shard searcher emulates a fixed PIM
// service time, closed-loop clients emulate offered load, and the same
// sweep runs against a baseline engine (per-query deadline only) and a
// resilient engine (admission control + deadline shedding on top). The
// numbers that matter are goodput — queries answered within their
// deadline per second — as offered load passes capacity.
// Timings scale by raceScale so the sweep still exercises admission and
// shedding (rather than pure timeouts) under the race detector's ~10×
// slowdown; the shape of the result is the same either way.
var (
	overloadServiceDelay = raceScale * time.Millisecond       // per-shard service time
	overloadDeadline     = raceScale * 8 * time.Millisecond   // per-query deadline
	overloadWindow       = raceScale * 250 * time.Millisecond // measured wall window per cell
	// Clients sleep this long after a typed rejection before retrying —
	// the retry-after discipline real clients follow. Spinning on
	// microsecond rejections is a self-inflicted DoS: on a small host the
	// retry storm starves the very queries the limiter admitted.
	overloadBackoff = raceScale * time.Millisecond
)

const (
	overloadShards      = 2 //
	overloadCap         = 2 // resilient MaxConcurrent
	overloadQueue       = 2 // resilient MaxQueue
	overloadClientsBase = 4 // clients at 1× offered load
)

// overloadCell is one (engine, offered-load) measurement.
type overloadCell struct {
	attempts int64
	ok       int64
	rejected int64
	shed     int64
	timeout  int64
}

// ExtOverload measures goodput versus offered load with and without the
// overload-protection layer (internal/resilience). Closed-loop clients
// hammer a sharded engine whose shard service time is pinned, so
// capacity is known; at 1× capacity both engines serve everything, and
// past capacity the baseline burns its shard time on queries that are
// already doomed to miss their deadline (classic congestion collapse)
// while the resilient engine rejects the excess in microseconds — typed
// ErrOverloaded / ErrShedDeadline errors — and keeps its shard time for
// queries that can still finish. Every successful answer is verified
// exact against the sequential scan; any untyped error fails the run.
func ExtOverload(s *Suite) (*Table, error) {
	t := &Table{
		ID:     "ext-overload",
		Title:  "Goodput vs offered load: baseline vs resilient engine (MSD, k=10)",
		Header: []string{"Offered", "Engine", "Attempts", "Goodput qps", "OK", "Rejected", "Shed", "Timeout"},
	}
	const k = 10
	ds, err := s.Data("MSD")
	if err != nil {
		return nil, err
	}
	nq := 4 * s.Queries
	queries := ds.Queries(nq, s.Seed+202)
	exact := knn.NewStandard(ds.X)
	truth := make([][]vec.Neighbor, queries.N)
	for qi := 0; qi < queries.N; qi++ {
		truth[qi] = exact.Search(queries.Row(qi), k, arch.NewMeter())
	}

	// The paced searcher: exact results, pinned service time, so cell
	// capacity is overloadShards-independent and known in advance.
	paced := func(m *vec.Matrix, _ int) (knn.Searcher, error) {
		inner := knn.NewStandard(m)
		return knn.SearcherFunc("paced-standard", func(q []float64, kk int, mm *arch.Meter) []vec.Neighbor {
			time.Sleep(overloadServiceDelay)
			return inner.Search(q, kk, mm)
		}), nil
	}

	build := func(resilient bool) (*serve.Engine, error) {
		opts := serve.Options{
			Shards:       overloadShards,
			Factory:      paced,
			QueryTimeout: overloadDeadline,
			Obs:          s.Obs,
		}
		if resilient {
			opts.Resilience = &resilience.Config{
				MaxConcurrent:  overloadCap,
				MaxQueue:       overloadQueue,
				ShedFactor:     1,
				MinShedSamples: 16,
				// The default power-of-two latency buckets are too coarse
				// around a single-digit-millisecond deadline: an
				// interpolated p95 snaps to the next bucket bound and can
				// overshoot the deadline itself, shedding everything. Size
				// the shed histogram to the regime it judges.
				ShedBuckets: obs.ExpBuckets(raceScale*500e-6, 1.25, 16),
			}
		}
		return serve.New(ds.X, opts)
	}

	runCell := func(eng *serve.Engine, clients int) (*overloadCell, error) {
		// Warm-up outside the measured window: primes the shedder's p95
		// and the runtime (first-touch allocations, goroutine ramp). A
		// loaded host can overshoot the 1 ms service sleep past the
		// engine deadline, so deadline misses are retried — only an
		// untyped error or a warm-up that cannot complete at all fails.
		for done, i := 0, 0; done < 20; i++ {
			_, err := eng.Search(context.Background(), queries.Row(i%queries.N), k)
			switch {
			case err == nil:
				done++
			case errors.Is(err, context.DeadlineExceeded) && i < 200:
			default:
				return nil, fmt.Errorf("warm-up: %w", err)
			}
		}
		cell := &overloadCell{}
		var untyped atomic.Value
		stop := time.Now().Add(overloadWindow)
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				for i := 0; time.Now().Before(stop); i++ {
					qi := (c + i*clients) % queries.N
					ctx, cancel := context.WithTimeout(context.Background(), overloadDeadline)
					res, err := eng.Search(ctx, queries.Row(qi), k)
					cancel()
					atomic.AddInt64(&cell.attempts, 1)
					switch {
					case err == nil:
						for j := range truth[qi] {
							if res.Neighbors[j] != truth[qi][j] {
								untyped.Store(fmt.Errorf("query %d inexact under overload", qi))
								return
							}
						}
						atomic.AddInt64(&cell.ok, 1)
					case errors.Is(err, resilience.ErrOverloaded):
						atomic.AddInt64(&cell.rejected, 1)
						time.Sleep(overloadBackoff)
					case errors.Is(err, resilience.ErrShedDeadline):
						atomic.AddInt64(&cell.shed, 1)
						time.Sleep(overloadBackoff)
					case errors.Is(err, context.DeadlineExceeded):
						atomic.AddInt64(&cell.timeout, 1)
					default:
						untyped.Store(fmt.Errorf("untyped overload error: %w", err))
						return
					}
				}
			}(c)
		}
		wg.Wait()
		if err, ok := untyped.Load().(error); ok && err != nil {
			return nil, err
		}
		return cell, nil
	}

	share := func(n, total int64) string {
		if total == 0 {
			return "0.0%"
		}
		return fmt.Sprintf("%.1f%%", 100*float64(n)/float64(total))
	}

	var baseGoodput, resGoodput float64
	for _, mult := range []int{1, 2, 4} {
		clients := mult * overloadClientsBase
		for _, resilient := range []bool{false, true} {
			// A heavily loaded host (suite start-up, shared CI runner) can
			// slow the first warmed queries past the deadline, poisoning
			// the fresh shedder's p95 above the deadline itself — and since
			// only successes feed the histogram, that engine then sheds
			// every query including the warm-up's. The histogram is
			// engine-local, so the recovery is a fresh engine, retried
			// after the transient contention has passed.
			var eng *serve.Engine
			var cell *overloadCell
			var err error
			for attempt := 0; ; attempt++ {
				eng, err = build(resilient)
				if err != nil {
					return nil, err
				}
				cell, err = runCell(eng, clients)
				if err == nil {
					break
				}
				closeErr := eng.Close()
				if attempt < 2 && errors.Is(err, resilience.ErrShedDeadline) && closeErr == nil {
					continue
				}
				return nil, fmt.Errorf("ext-overload %dx resilient=%v: %w", mult, resilient, err)
			}
			goodput := float64(cell.ok) / overloadWindow.Seconds()
			name := "baseline"
			if resilient {
				name = "resilient"
			}
			if mult == 4 {
				if resilient {
					resGoodput = goodput
				} else {
					baseGoodput = goodput
				}
			}
			t.AddRow(
				fmt.Sprintf("%dx", mult),
				name,
				fmt.Sprintf("%d", cell.attempts),
				fmt.Sprintf("%.0f", goodput),
				share(cell.ok, cell.attempts),
				share(cell.rejected, cell.attempts),
				share(cell.shed, cell.attempts),
				share(cell.timeout, cell.attempts),
			)
			if err := eng.Close(); err != nil {
				return nil, err
			}
		}
	}
	// The deterministic properties (typed errors, exactness) were
	// enforced per query above. Goodput ordering is timing-dependent on
	// shared CI runners, so it's a sanity check, not a hard gate — but a
	// resilient engine losing to the baseline at 4× capacity means the
	// admission layer is broken.
	if resGoodput < baseGoodput {
		t.Note("WARNING: resilient goodput %.0f qps below baseline %.0f qps at 4x offered load", resGoodput, baseGoodput)
	}
	t.Note("service time %s/shard, deadline %s, admission %d concurrent + %d queued; clients back off %s after a typed rejection; every success verified exact, every failure a typed error",
		overloadServiceDelay, overloadDeadline, overloadCap, overloadQueue, overloadBackoff)
	t.Note("baseline = per-query deadline only; resilient adds admission control and p95 deadline shedding (internal/resilience)")
	return t, nil
}
