// Package exp is the experiment harness: one runner per table and figure
// of the paper's evaluation (§IV profiling figures and §VI results). Each
// runner builds the workload on the synthetic Table 6 datasets, executes
// the real algorithms with activity metering, and renders a Table whose
// rows mirror what the paper reports (modeled milliseconds, speedups,
// pruning ratios, component shares).
//
// Dataset cardinalities are scaled down so a run completes on a laptop;
// Theorem 4 capacity decisions always use the full Table 6 cardinalities,
// so compressed dimensionalities match the paper (s=105 on MSD, s=50 on
// ImageNet). EXPERIMENTS.md records paper-vs-measured for every runner.
package exp

import (
	"fmt"
	"sort"
	"strings"

	"pimmine/internal/arch"
	"pimmine/internal/core"
	"pimmine/internal/dataset"
	"pimmine/internal/obs"
	"pimmine/internal/pim"
	"pimmine/internal/quant"
)

// Suite holds the shared configuration of an experiment run.
type Suite struct {
	Cfg   arch.Config
	Quant quant.Quantizer
	// ScaleN caps generated dataset cardinality (rows); very
	// high-dimensional profiles (d ≥ 2048) are further reduced 4×.
	ScaleN int
	// Queries is the pilot/query batch size for kNN experiments.
	Queries int
	// Seed drives all generation and initialization.
	Seed int64
	// Full enables the expensive sweeps (k up to 1024 in Table 7);
	// default runs keep k ≤ 64 so the whole suite stays fast.
	Full bool
	// Shards caps the ext-serve shard sweep (1,2,4,… up to Shards).
	Shards int
	// Recall is the ext-route approximate mode's target recall
	// (pimbench -recall, default 0.95).
	Recall float64
	// Nodes caps the ext-cluster node sweep (1,2,4,… up to Nodes;
	// pimbench -nodes, default 8).
	Nodes int
	// Replicas is the ext-cluster replication factor (pimbench
	// -replicas, default 2; clamped to each cell's node count).
	Replicas int
	// ChaosSeed seeds the ext-cluster mid-sweep node kill (pimbench
	// -chaos).
	ChaosSeed int64
	// Obs, when non-nil, wires the serving experiments into the
	// observability subsystem (pimbench -metrics-addr).
	Obs *obs.Observer

	cache map[string]*dataset.Dataset
}

// NewSuite builds a suite with the paper's hardware and α=10⁶.
func NewSuite() *Suite {
	q, err := quant.New(quant.DefaultAlpha)
	if err != nil {
		panic(err) // DefaultAlpha is a valid constant
	}
	return &Suite{
		Cfg:       arch.Default(),
		Quant:     q,
		ScaleN:    2000,
		Queries:   5,
		Seed:      1,
		Shards:    8,
		Recall:    0.95,
		Nodes:     8,
		Replicas:  2,
		ChaosSeed: 42,
		cache:     make(map[string]*dataset.Dataset),
	}
}

// Data returns the (cached) scaled dataset for a Table 6 profile name.
func (s *Suite) Data(name string) (*dataset.Dataset, error) {
	if ds, ok := s.cache[name]; ok {
		return ds, nil
	}
	prof, err := dataset.ByName(name)
	if err != nil {
		return nil, err
	}
	n := s.ScaleN
	if prof.D >= 2048 {
		n = s.ScaleN / 4
	}
	if n > prof.FullN {
		n = prof.FullN
	}
	ds := dataset.Generate(prof, n, s.Seed)
	s.cache[name] = ds
	return ds, nil
}

// engine builds a fresh PIM array.
func (s *Suite) engine() (*pim.Engine, error) {
	return pim.NewEngine(s.Cfg, pim.ModeExact)
}

// newFramework wires the §III-B framework with the suite's settings.
func newFramework(s *Suite) (*core.Framework, error) {
	return core.New(s.Cfg, s.Quant.Alpha, pim.ModeExact)
}

// coreKNNOptions builds framework options for a workload, sizing Theorem 4
// against the full-scale cardinality.
func coreKNNOptions(w *knnWorkload, s *Suite) core.KNNOptions {
	return core.KNNOptions{CapacityN: w.fullN, K: 10, Pilot: w.queries}
}

// modeledMs converts a meter to total modeled milliseconds.
func (s *Suite) modeledMs(m *arch.Meter) float64 {
	_, total := s.Cfg.TimeMeter(m)
	return total.Total() / 1e6
}

// ---------------------------------------------------------------------------
// Table rendering
// ---------------------------------------------------------------------------

// Table is one experiment's result in paper-style rows.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Note appends a footnote.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Runner is one experiment entry point.
type Runner func(*Suite) (*Table, error)

// Registry maps experiment ids (fig5 … table7) to runners; cmd/pimbench
// drives it.
var Registry = map[string]Runner{}

func register(id string, r Runner) { Registry[id] = r }

// IDs returns the registered experiment ids in sorted order.
func IDs() []string {
	ids := make([]string, 0, len(Registry))
	for id := range Registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// ms formats a modeled millisecond value.
func ms(v float64) string { return fmt.Sprintf("%.3f", v) }

// speedup formats a ratio.
func speedup(base, v float64) string {
	if v == 0 {
		return "inf"
	}
	return fmt.Sprintf("%.1fx", base/v)
}

// pct formats a fraction as a percentage.
func pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }
