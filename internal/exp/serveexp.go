package exp

import (
	"context"
	"fmt"
	"time"

	"pimmine/internal/arch"
	"pimmine/internal/knn"
	"pimmine/internal/serve"
	"pimmine/internal/vec"
)

func init() {
	register("ext-serve", ExtServe)
}

// ExtServe measures the sharded concurrent query engine (internal/serve):
// shard-scaling throughput on MSD with the FNN-PIM searcher per shard.
// Real PIM evaluations show throughput comes from keeping many PIM units
// busy concurrently; here every shard owns an independent array and
// queries pipeline across shards. Results are verified exact against the
// sequential linear scan on every run. The shard sweep is 1,2,4,… up to
// Suite.Shards (pimbench -shards).
func ExtServe(s *Suite) (*Table, error) {
	t := &Table{
		ID:     "ext-serve",
		Title:  "Sharded concurrent query engine (MSD, FNN-PIM per shard, k=10)",
		Header: []string{"Shards", "Modeled latency ms/query", "Latency speedup", "Modeled work ms/query", "Wall qps", "Degraded"},
	}
	const k = 10
	w, err := s.knnWorkloadFor("MSD")
	if err != nil {
		return nil, err
	}
	// A serving workload needs more queries than the pilot batch.
	nq := 8 * s.Queries
	queries := w.queries
	if queries.N < nq {
		ds, err := s.Data("MSD")
		if err != nil {
			return nil, err
		}
		queries = ds.Queries(nq, s.Seed+101)
	}
	exact := knn.NewStandard(w.data)
	truth := make([][]vec.Neighbor, queries.N)
	for qi := 0; qi < queries.N; qi++ {
		truth[qi] = exact.Search(queries.Row(qi), k, arch.NewMeter())
	}

	fw, err := newFramework(s)
	if err != nil {
		return nil, err
	}
	maxShards := s.Shards
	if maxShards < 1 {
		maxShards = 1
	}
	var baseMs float64
	for shards := 1; shards <= maxShards; shards *= 2 {
		eng, err := serve.New(w.data, serve.Options{
			Shards:    shards,
			Variant:   serve.VariantFNNPIM,
			Framework: fw,
			CapacityN: w.fullN,
			Obs:       s.Obs,
		})
		if err != nil {
			return nil, err
		}
		start := time.Now()
		res, err := eng.SearchBatch(context.Background(), queries, k)
		if err != nil {
			return nil, err
		}
		wall := time.Since(start)
		for qi := range truth {
			got := res.Results[qi].Neighbors
			for i := range truth[qi] {
				if got[i] != truth[qi][i] {
					return nil, fmt.Errorf("ext-serve: shards=%d query %d inexact", shards, qi)
				}
			}
		}
		// Shards answer in parallel, so a query's modeled latency is its
		// slowest shard; the merged meter models total work (the host-side
		// cost a single-socket deployment would still pay).
		var latencyNs, workMs float64
		for _, r := range res.Results {
			qMax := 0.0
			for _, m := range r.ShardMeters {
				if m == nil {
					continue
				}
				_, b := s.Cfg.TimeMeter(m)
				if ns := b.Total(); ns > qMax {
					qMax = ns
				}
			}
			latencyNs += qMax
		}
		latencyMs := latencyNs / 1e6 / float64(queries.N)
		workMs = s.modeledMs(res.Meter) / float64(queries.N)
		if shards == 1 {
			baseMs = latencyMs
		}
		t.AddRow(
			fmt.Sprintf("%d", shards),
			ms(latencyMs),
			speedup(baseMs, latencyMs),
			ms(workMs),
			fmt.Sprintf("%.0f", float64(queries.N)/wall.Seconds()),
			fmt.Sprintf("%d", len(eng.DegradedShards())),
		)
	}
	t.Note("results verified exact against the sequential scan over %d queries; latency takes the slowest shard per query (shards fan out in parallel), work sums all shards", queries.N)
	return t, nil
}
