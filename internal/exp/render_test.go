package exp

import (
	"strings"
	"testing"
)

func sampleTable() *Table {
	t := &Table{
		ID:     "x",
		Title:  "Sample",
		Header: []string{"A", "B"},
	}
	t.AddRow("1", "two, with comma")
	t.AddRow(`quote"d`, "3")
	t.Note("a note")
	return t
}

func TestMarkdownRender(t *testing.T) {
	md := sampleTable().Markdown()
	for _, want := range []string{"### x — Sample", "| A | B |", "|---|---|", "| 1 | two, with comma |", "*a note*"} {
		if !strings.Contains(md, want) {
			t.Fatalf("markdown missing %q:\n%s", want, md)
		}
	}
}

func TestCSVRender(t *testing.T) {
	csv := sampleTable().CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv has %d lines", len(lines))
	}
	if lines[0] != "A,B" {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[1] != `1,"two, with comma"` {
		t.Fatalf("comma cell not quoted: %q", lines[1])
	}
	if lines[2] != `"quote""d",3` {
		t.Fatalf("quote cell not escaped: %q", lines[2])
	}
}

func TestRenderDispatch(t *testing.T) {
	tbl := sampleTable()
	for _, f := range []string{"", "text", "markdown", "md", "csv"} {
		if _, err := tbl.Render(f); err != nil {
			t.Fatalf("Render(%q): %v", f, err)
		}
	}
	if _, err := tbl.Render("xml"); err == nil {
		t.Fatal("unknown format must error")
	}
}
