package exp

import (
	"encoding/json"
	"strings"
	"testing"
)

func sampleTable() *Table {
	t := &Table{
		ID:     "x",
		Title:  "Sample",
		Header: []string{"A", "B"},
	}
	t.AddRow("1", "two, with comma")
	t.AddRow(`quote"d`, "3")
	t.Note("a note")
	return t
}

func TestMarkdownRender(t *testing.T) {
	md := sampleTable().Markdown()
	for _, want := range []string{"### x — Sample", "| A | B |", "|---|---|", "| 1 | two, with comma |", "*a note*"} {
		if !strings.Contains(md, want) {
			t.Fatalf("markdown missing %q:\n%s", want, md)
		}
	}
}

func TestCSVRender(t *testing.T) {
	csv := sampleTable().CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv has %d lines", len(lines))
	}
	if lines[0] != "A,B" {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[1] != `1,"two, with comma"` {
		t.Fatalf("comma cell not quoted: %q", lines[1])
	}
	if lines[2] != `"quote""d",3` {
		t.Fatalf("quote cell not escaped: %q", lines[2])
	}
}

func TestRenderDispatch(t *testing.T) {
	tbl := sampleTable()
	for _, f := range []string{"", "text", "markdown", "md", "csv"} {
		if _, err := tbl.Render(f); err != nil {
			t.Fatalf("Render(%q): %v", f, err)
		}
	}
	if _, err := tbl.Render("xml"); err == nil {
		t.Fatal("unknown format must error")
	}
}

func TestJSONRender(t *testing.T) {
	js, err := sampleTable().JSON()
	if err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		ID     string     `json:"id"`
		Title  string     `json:"title"`
		Header []string   `json:"header"`
		Rows   [][]string `json:"rows"`
		Notes  []string   `json:"notes"`
	}
	if err := json.Unmarshal([]byte(js), &parsed); err != nil {
		t.Fatalf("JSON() produced invalid JSON: %v\n%s", err, js)
	}
	if parsed.ID != "x" || parsed.Title != "Sample" {
		t.Fatalf("id/title = %q/%q", parsed.ID, parsed.Title)
	}
	if len(parsed.Rows) != 2 || parsed.Rows[0][1] != "two, with comma" {
		t.Fatalf("rows = %v", parsed.Rows)
	}
	if len(parsed.Notes) != 1 || parsed.Notes[0] != "a note" {
		t.Fatalf("notes = %v", parsed.Notes)
	}
	if !strings.HasSuffix(js, "\n") {
		t.Fatal("artifact must end with a newline")
	}
	if _, err := sampleTable().Render("json"); err != nil {
		t.Fatalf(`Render("json"): %v`, err)
	}
}
