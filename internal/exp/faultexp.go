package exp

import (
	"context"
	"fmt"

	"pimmine/internal/arch"
	"pimmine/internal/core"
	"pimmine/internal/fault"
	"pimmine/internal/knn"
	"pimmine/internal/pim"
	"pimmine/internal/serve"
	"pimmine/internal/vec"
)

func init() {
	register("ext-fault", ExtFault)
}

// ExtFault sweeps injected crossbar fault severity and reports the
// degradation curve of the fault-tolerant engine (internal/fault): because
// corrected dot products only widen the PIM lower bounds (the extended
// Theorem 3 envelope) and dead crossbars fall back to the host scan,
// recall stays pinned at 100% at every severity — the cost of faults is
// extra refinement work and, at total failure, the loss of PIM speedup.
// Every row is verified bit-identical against the sequential host scan;
// any mismatch fails the experiment.
func ExtFault(s *Suite) (*Table, error) {
	t := &Table{
		ID:     "ext-fault",
		Title:  "Fault-injection degradation curve (MSD, FNN-PIM, 3 shards, k=10)",
		Header: []string{"Fault model", "Recall", "Faulty dots", "Recovered dots", "Degraded shards", "Modeled ms/query", "Slowdown"},
	}
	const k = 10
	const shards = 3
	w, err := s.knnWorkloadFor("MSD")
	if err != nil {
		return nil, err
	}
	exact := knn.NewStandard(w.data)
	truth := make([][]vec.Neighbor, w.queries.N)
	for qi := 0; qi < w.queries.N; qi++ {
		truth[qi] = exact.Search(w.queries.Row(qi), k, arch.NewMeter())
	}

	levels := []struct {
		name  string
		model *fault.Model
	}{
		{"none", nil},
		{"light 1e-4", &fault.Model{Seed: s.Seed, StuckAt0: 5e-5, StuckAt1: 5e-5, Drift: 1e-4, DriftLevels: 1}},
		{"moderate 1e-3", &fault.Model{Seed: s.Seed, StuckAt0: 5e-4, StuckAt1: 5e-4, Drift: 1e-3, DriftLevels: 2, ReadNoise: 2}},
		{"heavy 1e-2", &fault.Model{Seed: s.Seed, StuckAt0: 5e-3, StuckAt1: 5e-3, Drift: 1e-2, DriftLevels: 3, ReadNoise: 8}},
		{"crossbar fail p=0.3", &fault.Model{Seed: s.Seed, StuckAt0: 5e-4, StuckAt1: 5e-4, Drift: 1e-3, DriftLevels: 2, CrossbarFail: 0.3}},
		{"crossbar fail p=1.0", &fault.Model{Seed: s.Seed, CrossbarFail: 1}},
	}

	var baseMs float64
	for _, lv := range levels {
		fw, err := core.NewFaulty(s.Cfg, s.Quant.Alpha, pim.ModeExact, lv.model)
		if err != nil {
			return nil, err
		}
		eng, err := serve.New(w.data, serve.Options{
			Shards:    shards,
			Variant:   serve.VariantFNNPIM,
			Framework: fw,
			CapacityN: w.fullN,
		})
		if err != nil {
			return nil, err
		}
		res, err := eng.SearchBatch(context.Background(), w.queries, k)
		if err != nil {
			return nil, err
		}
		for qi := range truth {
			got := res.Results[qi].Neighbors
			for i := range truth[qi] {
				if got[i] != truth[qi][i] {
					return nil, fmt.Errorf("ext-fault: model %q query %d inexact (neighbor %d: got %v want %v)",
						lv.name, qi, i, got[i], truth[qi][i])
				}
			}
		}
		total := eng.Meter().Total()
		perQueryMs := s.modeledMs(res.Meter) / float64(w.queries.N)
		if baseMs == 0 {
			baseMs = perQueryMs
		}
		t.AddRow(
			lv.name,
			pct(1.0), // enforced above: any miss aborts the run
			fmt.Sprintf("%d", total.PIMFaults),
			fmt.Sprintf("%d", total.PIMRecovered),
			fmt.Sprintf("%d/%d", len(eng.DegradedShards()), shards),
			ms(perQueryMs),
			fmt.Sprintf("%.2fx", perQueryMs/baseMs),
		)
	}
	t.Note("every row is checked bit-identical against the host linear scan (%d queries × k=%d); a dead crossbar fails the shard's power-on self test and that shard serves the host fallback", w.queries.N, k)
	t.Note("faulty dots = PIM dot products touched by an injected fault; recovered = dots replaced by the never-prune sentinel (saturated envelope or dead crossbar)")
	return t, nil
}
