//go:build !race

package exp

// See race.go: without the race detector experiments run at their
// calibrated speed.
const (
	raceEnabled = false
	raceScale   = 1
)
