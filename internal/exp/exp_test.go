package exp

import (
	"strconv"
	"strings"
	"testing"
)

// fastSuite shrinks the workloads so the full experiment registry runs in
// seconds.
func fastSuite() *Suite {
	s := NewSuite()
	s.ScaleN = 600
	s.Queries = 2
	return s
}

// Every registered experiment must run and produce a non-empty table.
func TestAllExperimentsRun(t *testing.T) {
	s := fastSuite()
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			tbl, err := Registry[id](s)
			if err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			if len(tbl.Rows) == 0 {
				t.Fatalf("%s: empty table", id)
			}
			if out := tbl.String(); !strings.Contains(out, tbl.Title) {
				t.Fatalf("%s: rendering lost the title", id)
			}
			for _, row := range tbl.Rows {
				if len(row) != len(tbl.Header) {
					t.Fatalf("%s: row %v does not match header %v", id, row, tbl.Header)
				}
			}
		})
	}
}

func TestIDsComplete(t *testing.T) {
	want := []string{
		"ext-approx", "ext-churn", "ext-cluster", "ext-dbscan", "ext-durable", "ext-fault", "ext-join", "ext-kernels", "ext-motif", "ext-outlier", "ext-overload", "ext-route", "ext-scale", "ext-serve", "ext-serve-net",
		"fig13a", "fig13b", "fig13c", "fig13d", "fig14", "fig15", "fig16",
		"fig17", "fig18", "fig5", "fig6", "fig7", "table1", "table5",
		"table6", "table7",
	}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("registry has %d entries %v, want %d", len(got), got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("IDs() = %v, want %v", got, want)
		}
	}
}

// Shape assertions against the paper (DESIGN.md §6): who wins and how the
// ordering falls, on the fast suite.
func TestFig13aShapes(t *testing.T) {
	s := fastSuite()
	tbl, err := Fig13a(s)
	if err != nil {
		t.Fatal(err)
	}
	sp := make(map[string]float64)
	for _, row := range tbl.Rows {
		v, err := strconv.ParseFloat(strings.TrimSuffix(row[5], "x"), 64)
		if err != nil {
			t.Fatalf("bad speedup cell %q", row[5])
		}
		sp[row[0]] = v
	}
	// PIM never materially loses, wins clearly wherever the bound has
	// pruning power, and GIST benefits least: its Theorem 4 granularity
	// (s=120) is too coarse for the near-white GIST signal — the paper's
	// "slight optimization on GIST" observation.
	for name, v := range sp {
		if v < 0.95 {
			t.Errorf("%s: Standard-PIM materially slower than Standard (%.2fx)", name, v)
		}
	}
	for _, name := range []string{"ImageNet", "MSD", "Trevi"} {
		if sp[name] <= 1.2 {
			t.Errorf("%s: expected a clear PIM win, got %.2fx", name, sp[name])
		}
		if sp["GIST"] >= sp[name] {
			t.Errorf("GIST (%.1fx) should benefit least (%s %.1fx)", sp["GIST"], name, sp[name])
		}
	}
}

func TestFig13cSpeedupDeclinesWithK(t *testing.T) {
	s := fastSuite()
	tbl, err := Fig13c(s)
	if err != nil {
		t.Fatal(err)
	}
	var sp []float64
	for _, row := range tbl.Rows {
		v, _ := strconv.ParseFloat(strings.TrimSuffix(row[3], "x"), 64)
		sp = append(sp, v)
	}
	if len(sp) != 3 || sp[0] <= sp[2] {
		t.Fatalf("speedups %v should decline from k=1 to k=100", sp)
	}
}

func TestFig14PIMGainGrowsWithBits(t *testing.T) {
	s := fastSuite()
	tbl, err := Fig14(s)
	if err != nil {
		t.Fatal(err)
	}
	var sp []float64
	for _, row := range tbl.Rows {
		v, _ := strconv.ParseFloat(strings.TrimSuffix(row[3], "x"), 64)
		sp = append(sp, v)
	}
	if sp[len(sp)-1] <= sp[0] {
		t.Fatalf("speedups %v should grow with code length", sp)
	}
}

func TestTable7PIMWinsForStandard(t *testing.T) {
	s := fastSuite()
	tbl, err := Table7(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		std, _ := strconv.ParseFloat(row[2], 64)
		stdPIM, _ := strconv.ParseFloat(row[3], 64)
		if stdPIM >= std {
			t.Errorf("%s k=%s: Standard-PIM (%.2f) not faster than Standard (%.2f)", row[0], row[1], stdPIM, std)
		}
	}
}

func TestDataCachedAndScaled(t *testing.T) {
	s := fastSuite()
	d1, err := s.Data("MSD")
	if err != nil {
		t.Fatal(err)
	}
	d2, _ := s.Data("MSD")
	if d1 != d2 {
		t.Fatal("dataset must be cached")
	}
	if d1.X.N != 600 {
		t.Fatalf("scaled N = %d, want 600", d1.X.N)
	}
	trevi, err := s.Data("Trevi")
	if err != nil {
		t.Fatal(err)
	}
	if trevi.X.N != 150 {
		t.Fatalf("high-d dataset N = %d, want ScaleN/4", trevi.X.N)
	}
}

// Fig 15's headline: the PIM bound's pruning ratio sits within a point of
// the equal-granularity host bound at 1/70th the per-object transfer.
func TestFig15Shapes(t *testing.T) {
	s := fastSuite()
	tbl, err := Fig15(s)
	if err != nil {
		t.Fatal(err)
	}
	var hostTop, pimRatio float64
	var pimTransfer int
	for _, row := range tbl.Rows {
		ratio, err := strconv.ParseFloat(strings.TrimSuffix(row[1], "%"), 64)
		if err != nil {
			t.Fatalf("bad ratio cell %q", row[1])
		}
		transfer, _ := strconv.Atoi(row[2])
		if strings.HasPrefix(row[0], "LBPIM") {
			pimRatio, pimTransfer = ratio, transfer
		} else if ratio > hostTop {
			hostTop = ratio
		}
	}
	if pimTransfer != 3 {
		t.Fatalf("PIM bound transfer = %d operands, want 3 (Fig 8)", pimTransfer)
	}
	if hostTop-pimRatio > 1.0 {
		t.Fatalf("PIM prune ratio %.1f%% more than a point below host's %.1f%%", pimRatio, hostTop)
	}
}

// Fig 16's headline: the optimized plan is never slower than the default
// PIM plan, which is never slower than the host baseline.
func TestFig16Ordering(t *testing.T) {
	s := fastSuite()
	tbl, err := Fig16(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		fnn, _ := strconv.ParseFloat(row[1], 64)
		pim, _ := strconv.ParseFloat(row[2], 64)
		opt, _ := strconv.ParseFloat(row[3], 64)
		if !(opt <= pim*1.001 && pim <= fnn*1.001) {
			t.Fatalf("k=%s: ordering violated (FNN %.3f, PIM %.3f, opt %.3f)", row[0], fnn, pim, opt)
		}
	}
}

// ext-approx: approximation recall must be imperfect at coarse α and the
// bound-based column must be exactly 1.0 everywhere.
func TestExtApproxShapes(t *testing.T) {
	s := fastSuite()
	tbl, err := ExtApprox(s)
	if err != nil {
		t.Fatal(err)
	}
	first, _ := strconv.ParseFloat(tbl.Rows[0][1], 64)
	if first >= 1 {
		t.Fatalf("coarsest alpha recall = %v; approximation should lose results", first)
	}
	for _, row := range tbl.Rows {
		if row[2] != "1.000" {
			t.Fatalf("bound-based recall %q != 1.000", row[2])
		}
	}
}

// ext-scale: the Standard-PIM speedup must grow monotonically with N.
func TestExtScaleMonotone(t *testing.T) {
	s := fastSuite()
	tbl, err := ExtScale(s)
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for _, row := range tbl.Rows {
		v, err := strconv.ParseFloat(strings.TrimSuffix(row[4], "x"), 64)
		if err != nil {
			t.Fatalf("bad speedup cell %q", row[4])
		}
		if v < prev*0.95 { // allow tiny noise, require growth overall
			t.Fatalf("speedup shrank with N: %v after %v", v, prev)
		}
		prev = v
	}
	if prev < 2 {
		t.Fatalf("largest-scale speedup %vx too small", prev)
	}
}
