package exp

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"pimmine/internal/serve"
	"pimmine/internal/vec"
)

func init() {
	register("ext-churn", ExtChurn)
}

// ExtChurn replays mixed read/write traffic against the mutable engine
// (internal/delta under internal/serve) and reports how query latency
// tracks delta fill, and what each compaction pause costs. The workload
// alternates mutation bursts (50% insert / 25% update / 25% delete)
// with timed query batches; when any shard's delta crosses the
// compaction trigger the harness compacts explicitly and reports the
// wall-clock pause, the re-chosen Theorem 4 split, and the endurance
// budget drained from the wear-leveling ledger. Every phase's results
// are verified exact against a canonical scan over the materialized
// live dataset.
func ExtChurn(s *Suite) (*Table, error) {
	t := &Table{
		ID:    "ext-churn",
		Title: "Mutable engine churn (MSD, FNN-PIM base + host delta, k=10)",
		Header: []string{"Phase", "Live rows", "Delta rows", "Tombstones",
			"Wall µs/query", "Modeled ms/query", "Compaction pause ms", "Endurance left"},
	}
	const k = 10
	w, err := s.knnWorkloadFor("MSD")
	if err != nil {
		return nil, err
	}
	fw, err := newFramework(s)
	if err != nil {
		return nil, err
	}
	maxDelta := w.data.N / 8
	if maxDelta < 4 {
		maxDelta = 4
	}
	eng, err := serve.NewMutable(w.data, serve.MutableOptions{
		Options: serve.Options{
			Shards:    4,
			Variant:   serve.VariantFNNPIM,
			Framework: fw,
			CapacityN: w.fullN + w.data.N, // headroom for inserted rows
			Obs:       s.Obs,
		},
		MaxDelta:    maxDelta,
		WriteBudget: 64,
	})
	if err != nil {
		return nil, err
	}
	defer eng.Close()

	rng := rand.New(rand.NewSource(s.Seed + 77))
	live := make([]int, w.data.N)
	for i := range live {
		live[i] = i
	}
	randVec := func() []float64 {
		// Mutations stay inside the dataset's normalized [0,1] domain.
		v := make([]float64, w.data.D)
		for i := range v {
			v[i] = rng.Float64()
		}
		return v
	}
	mutate := func(ops int) error {
		for i := 0; i < ops; i++ {
			switch r := rng.Intn(4); {
			case r < 2 || len(live) < 2:
				id, err := eng.Insert(randVec())
				if err != nil {
					return err
				}
				live = append(live, id)
			case r == 2:
				j := rng.Intn(len(live))
				if err := eng.Delete(live[j]); err != nil {
					return err
				}
				live[j] = live[len(live)-1]
				live = live[:len(live)-1]
			default:
				if err := eng.Update(live[rng.Intn(len(live))], randVec()); err != nil {
					return err
				}
			}
		}
		return nil
	}
	sumStats := func() (deltaRows, tombs, liveRows, chosenS int, endurance uint64) {
		for _, st := range eng.Stats() {
			deltaRows += st.DeltaRows
			tombs += st.Tombstones
			liveRows += st.LiveRows
			chosenS = st.ChosenS
			if st.Endurance != nil {
				endurance += st.Endurance.Remaining
			}
		}
		return
	}

	queries := w.queries
	verify := func(phase string, got [][]vec.Neighbor) error {
		final, ids := eng.Materialize()
		for qi := 0; qi < queries.N; qi++ {
			top := vec.NewTopK(k)
			for i := 0; i < final.N; i++ {
				var d float64
				for c := 0; c < final.D; c++ {
					x := final.Row(i)[c] - queries.Row(qi)[c]
					d += x * x
				}
				top.Push(ids[i], d)
			}
			want := top.Results()
			for i := range want {
				if got[qi][i] != want[i] {
					return fmt.Errorf("ext-churn: %s query %d inexact: got %+v want %+v",
						phase, qi, got[qi][i], want[i])
				}
			}
		}
		return nil
	}

	ops := w.data.N / 16
	if ops < 2 {
		ops = 2
	}
	for phase := 1; phase <= 8; phase++ {
		if err := mutate(ops); err != nil {
			return nil, err
		}
		start := time.Now()
		res, err := eng.SearchBatch(context.Background(), queries, k)
		if err != nil {
			return nil, err
		}
		wallPerQ := time.Since(start).Seconds() * 1e6 / float64(queries.N)
		if err := verify(fmt.Sprintf("phase %d", phase), res.Neighbors()); err != nil {
			return nil, err
		}
		modeled := s.modeledMs(res.Meter) / float64(queries.N)

		// Compact when any shard trips its delta threshold, timing the
		// mutation stall the fold causes.
		pause := "-"
		needs := false
		for _, st := range eng.Stats() {
			if st.DeltaRows >= maxDelta/4 {
				needs = true
			}
		}
		if needs {
			cStart := time.Now()
			if err := eng.Compact(nil); err != nil {
				return nil, fmt.Errorf("ext-churn: compact: %w", err)
			}
			pause = fmt.Sprintf("%.2f", time.Since(cStart).Seconds()*1e3)
		}
		deltaRows, tombs, liveRows, _, endurance := sumStats()
		t.AddRow(
			fmt.Sprintf("%d", phase),
			fmt.Sprintf("%d", liveRows),
			fmt.Sprintf("%d", deltaRows),
			fmt.Sprintf("%d", tombs),
			fmt.Sprintf("%.0f", wallPerQ),
			ms(modeled),
			pause,
			fmt.Sprintf("%d", endurance),
		)
	}
	var compactions int
	for _, st := range eng.Stats() {
		compactions += st.Compactions
	}
	t.Note("every phase applies %d mutations (50%% insert / 25%% update / 25%% delete) then answers %d queries, verified exact against a canonical scan over the materialized live rows; %d shard compactions re-ran Theorem 4 and drew on a 64-writes/tile wear ledger", ops, queries.N, compactions)
	return t, nil
}
