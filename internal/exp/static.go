package exp

import (
	"fmt"

	"pimmine/internal/dataset"
)

func init() {
	register("table1", Table1)
	register("table5", Table5)
	register("table6", Table6)
}

// Table1 reproduces the paper's Table 1: characteristics of representative
// NVM techniques (reference values from Boukhobza et al. [14]).
func Table1(s *Suite) (*Table, error) {
	t := &Table{
		ID:     "table1",
		Title:  "Characteristics of representative NVM techniques",
		Header: []string{"Memory", "Volatile", "Endurance", "Read(ns)", "Write(ns)", "Cell(F²)", "WriteEnergy(J/bit)"},
	}
	t.AddRow("DRAM", "yes", "10^15", "~10", "~10", "60-100", "10^-14")
	t.AddRow("ReRAM", "no", "10^8-10^11", "~10", "~50", "4-10", "10^-13")
	t.AddRow("PCM", "no", "10^8-10^9", "20-60", "20-150", "4-12", "10^-11")
	t.AddRow("STT-RAM", "no", "10^12-10^15", "2-35", "3-50", "6-50", "10^-13")
	t.Note("static reference table; ReRAM's density and write energy motivate PIM (§I)")
	return t, nil
}

// Table5 reports the hardware platform configuration in effect.
func Table5(s *Suite) (*Table, error) {
	t := &Table{
		ID:     "table5",
		Title:  "Hardware platform configuration",
		Header: []string{"Component", "Value"},
	}
	cfg := s.Cfg
	t.AddRow("CPU", fmt.Sprintf("%.2f GHz (Broadwell Xeon E5-2620 model), IPC %.1f", cfg.CPUFreqGHz, cfg.IPC))
	t.AddRow("DRAM baseline", "16GB DIMM DDR4 (modeled)")
	t.AddRow("Memory array", fmt.Sprintf("%d GB ReRAM", cfg.MemArrayBytes>>30))
	t.AddRow("Buffer array", fmt.Sprintf("%d MB eDRAM", cfg.BufferArrayBytes>>20))
	t.AddRow("PIM array", fmt.Sprintf("%d GB ReRAM (%d crossbars)", cfg.PIMArrayBytes>>30, cfg.NumCrossbars()))
	t.AddRow("Internal bus", fmt.Sprintf("%.0f GB/s", cfg.InternalBusGBs))
	t.AddRow("Crossbar", fmt.Sprintf("%d×%d cells, %d-bit precision", cfg.Crossbar.M, cfg.Crossbar.M, cfg.Crossbar.CellBits))
	t.AddRow("ReRAM latency", fmt.Sprintf("read %.2f ns / write %.2f ns", cfg.Crossbar.ReadLatencyNs, cfg.Crossbar.WriteLatencyNs))
	return t, nil
}

// Table6 reports the dataset statistics: the paper's full-scale (N, d)
// plus the scaled cardinality this suite generates.
func Table6(s *Suite) (*Table, error) {
	t := &Table{
		ID:     "table6",
		Title:  "Statistics of (synthetic stand-ins for the) real datasets",
		Header: []string{"Dataset", "N(paper)", "d", "Size(paper)", "N(generated)"},
	}
	for _, p := range dataset.Profiles {
		ds, err := s.Data(p.Name)
		if err != nil {
			return nil, err
		}
		t.AddRow(p.Name,
			fmt.Sprintf("%d", p.FullN),
			fmt.Sprintf("%d", p.D),
			fmt.Sprintf("%.1f GB", float64(p.SizeBytes())/(1<<30)),
			fmt.Sprintf("%d", ds.X.N))
	}
	t.Note("generated data preserves d, [0,1] range, cluster structure and pruning behaviour; see DESIGN.md §2")
	return t, nil
}
