package exp

import (
	"fmt"

	"pimmine/internal/arch"
	"pimmine/internal/kmeans"
	"pimmine/internal/profile"
	"pimmine/internal/quant"
	"pimmine/internal/vec"
)

func init() {
	register("table7", Table7)
	register("fig18", Fig18)
}

// kmeansDatasets are the §VI-D evaluation datasets in Table 7's order.
var kmeansDatasets = []string{"Year", "Notre", "NUS-WIDE", "Enron"}

// kmeansKs returns the cluster-count sweep; the default (fast) suite stops
// at 64, the full suite runs Table 7's complete {4, 64, 256, 1024}.
func (s *Suite) kmeansKs() []int {
	if s.Full {
		return []int{4, 64, 256, 1024}
	}
	return []int{4, 64}
}

// kmeansPairs builds the four base algorithms and their PIM counterparts
// over a dataset, sharing one PIM assist.
func (s *Suite) kmeansPairs(data *vec.Matrix, capacityN int) ([][2]kmeans.Algorithm, error) {
	eng, err := s.engine()
	if err != nil {
		return nil, err
	}
	q, err := quant.New(s.Quant.Alpha)
	if err != nil {
		return nil, err
	}
	assist, err := kmeans.NewAssist(eng, data, q, capacityN)
	if err != nil {
		return nil, err
	}
	return [][2]kmeans.Algorithm{
		{kmeans.NewLloyd(data), kmeans.NewLloydPIM(data, assist)},
		{kmeans.NewElkan(data), kmeans.NewElkanPIM(data, assist)},
		{kmeans.NewDrake(data), kmeans.NewDrakePIM(data, assist)},
		{kmeans.NewYinyang(data), kmeans.NewYinyangPIM(data, assist)},
	}, nil
}

// runPerIter runs an algorithm for a few iterations and returns modeled
// ms per iteration.
func (s *Suite) runPerIter(alg kmeans.Algorithm, initial *vec.Matrix, iters int) (float64, error) {
	m := arch.NewMeter()
	res := alg.Run(initial, iters, m)
	if res.Iterations == 0 {
		return 0, fmt.Errorf("exp: %s ran zero iterations", alg.Name())
	}
	return s.modeledMs(m) / float64(res.Iterations), nil
}

// Table7: k-means execution time per iteration for every dataset ×
// k × algorithm pair.
func Table7(s *Suite) (*Table, error) {
	t := &Table{
		ID:    "table7",
		Title: "k-means execution time per iteration (ms/iter)",
		Header: []string{"Dataset", "k",
			"Standard", "Standard-PIM", "Elkan", "Elkan-PIM",
			"Drake", "Drake-PIM", "Yinyang", "Yinyang-PIM"},
	}
	const iters = 8
	for _, name := range kmeansDatasets {
		ds, err := s.Data(name)
		if err != nil {
			return nil, err
		}
		pairs, err := s.kmeansPairs(ds.X, ds.Profile.FullN)
		if err != nil {
			return nil, err
		}
		for _, k := range s.kmeansKs() {
			if k > ds.X.N {
				continue
			}
			initial, err := kmeans.InitCenters(ds.X, k, s.Seed)
			if err != nil {
				return nil, err
			}
			row := []string{name, fmt.Sprintf("%d", k)}
			for _, pair := range pairs {
				for _, alg := range pair {
					perIter, err := s.runPerIter(alg, initial, iters)
					if err != nil {
						return nil, err
					}
					row = append(row, ms(perIter))
				}
			}
			t.AddRow(row...)
		}
	}
	t.Note("paper: PIM speeds up every algorithm; up to 33.4x for Standard, marginal for Elkan")
	if !s.Full {
		t.Note("fast suite sweeps k∈{4,64}; set Full for the paper's {4,64,256,1024}")
	}
	return t, nil
}

// Fig18: PIM-optimized vs PIM-oracle for the Standard and Drake families
// as k grows (NUS-WIDE).
func Fig18(s *Suite) (*Table, error) {
	t := &Table{
		ID:     "fig18",
		Title:  "k-means PIM vs PIM-oracle vs k (NUS-WIDE)",
		Header: []string{"Family", "k", "No-PIM(ms/iter)", "PIM(ms/iter)", "Oracle(ms/iter)"},
	}
	ds, err := s.Data("NUS-WIDE")
	if err != nil {
		return nil, err
	}
	pairs, err := s.kmeansPairs(ds.X, ds.Profile.FullN)
	if err != nil {
		return nil, err
	}
	families := map[string][2]kmeans.Algorithm{
		"Standard": pairs[0],
		"Drake":    pairs[2],
	}
	const iters = 8
	for _, fam := range []string{"Standard", "Drake"} {
		pair := families[fam]
		for _, k := range s.kmeansKs() {
			if k > ds.X.N {
				continue
			}
			initial, err := kmeans.InitCenters(ds.X, k, s.Seed)
			if err != nil {
				return nil, err
			}
			baseMeter := arch.NewMeter()
			baseRes := pair[0].Run(initial, iters, baseMeter)
			baseMs := s.modeledMs(baseMeter) / float64(baseRes.Iterations)
			pimMs, err := s.runPerIter(pair[1], initial, iters)
			if err != nil {
				return nil, err
			}
			r := profile.New(fam, s.Cfg, baseMeter)
			oracleMs := r.PIMOracleAuto() / 1e6 / float64(baseRes.Iterations)
			t.AddRow(fam, fmt.Sprintf("%d", k), ms(baseMs), ms(pimMs), ms(oracleMs))
		}
	}
	t.Note("paper: the gap Standard→PIM is wide and PIM tracks the oracle closely for Drake")
	return t, nil
}
