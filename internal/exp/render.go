package exp

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Markdown renders the table as a GitHub-flavored Markdown table (used to
// regenerate the EXPERIMENTS.md record).
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.ID, t.Title)
	b.WriteString("| " + strings.Join(t.Header, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Header)) + "\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n*%s*\n", n)
	}
	return b.String()
}

// CSV renders the table as comma-separated values with a header row.
// Cells containing commas or quotes are quoted per RFC 4180.
func (t *Table) CSV() string {
	var b strings.Builder
	writeCSVRow(&b, t.Header)
	for _, row := range t.Rows {
		writeCSVRow(&b, row)
	}
	return b.String()
}

func writeCSVRow(b *strings.Builder, cells []string) {
	for i, c := range cells {
		if i > 0 {
			b.WriteByte(',')
		}
		if strings.ContainsAny(c, ",\"\n") {
			b.WriteByte('"')
			b.WriteString(strings.ReplaceAll(c, `"`, `""`))
			b.WriteByte('"')
		} else {
			b.WriteString(c)
		}
	}
	b.WriteByte('\n')
}

// JSON renders the table as an indented machine-readable object — the
// BENCH_*.json artifact format CI uploads from the bench-smoke job.
func (t *Table) JSON() (string, error) {
	out := struct {
		ID     string     `json:"id"`
		Title  string     `json:"title"`
		Header []string   `json:"header"`
		Rows   [][]string `json:"rows"`
		Notes  []string   `json:"notes,omitempty"`
	}{t.ID, t.Title, t.Header, t.Rows, t.Notes}
	b, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return "", fmt.Errorf("exp: render json: %w", err)
	}
	return string(b) + "\n", nil
}

// Render formats the table in the requested format: "text" (default),
// "markdown", "csv" or "json".
func (t *Table) Render(format string) (string, error) {
	switch format {
	case "", "text":
		return t.String(), nil
	case "markdown", "md":
		return t.Markdown(), nil
	case "csv":
		return t.CSV(), nil
	case "json":
		return t.JSON()
	}
	return "", fmt.Errorf("exp: unknown format %q (text|markdown|csv|json)", format)
}
