package exp

import (
	"fmt"

	"pimmine/internal/arch"
	"pimmine/internal/eval"
	"pimmine/internal/knn"
	"pimmine/internal/quant"
	"pimmine/internal/vec"
)

func init() {
	register("ext-approx", ExtApprox)
}

// ExtApprox measures the §II-A argument: GraphR-style direct in-PIM
// approximation (quantized computation as the answer) loses recall at
// coarse quantization, while the paper's bound-based filter-and-refine
// keeps recall at exactly 1.0 for *every* α — the whole reason the
// framework computes bounds instead of answers in PIM.
func ExtApprox(s *Suite) (*Table, error) {
	t := &Table{
		ID:     "ext-approx",
		Title:  "Direct PIM approximation vs bound-based exactness (MSD, k=10)",
		Header: []string{"alpha", "Approx recall@10", "Bound-based recall@10"},
	}
	w, err := s.knnWorkloadFor("MSD")
	if err != nil {
		return nil, err
	}
	exact := knn.NewStandard(w.data)
	truth := make([][]vec.Neighbor, w.queries.N)
	for qi := 0; qi < w.queries.N; qi++ {
		truth[qi] = exact.Search(w.queries.Row(qi), 10, arch.NewMeter())
	}
	for _, alpha := range []float64{4, 16, 256, 1e6} {
		q, err := quant.New(alpha)
		if err != nil {
			return nil, err
		}
		engA, err := s.engine()
		if err != nil {
			return nil, err
		}
		approx, err := knn.NewApproxPIM(engA, w.data, q, w.data.N)
		if err != nil {
			return nil, err
		}
		engB, err := s.engine()
		if err != nil {
			return nil, err
		}
		bounded, err := knn.NewStandardPIM(engB, w.data, q, w.data.N)
		if err != nil {
			return nil, err
		}
		gotA := make([][]vec.Neighbor, w.queries.N)
		gotB := make([][]vec.Neighbor, w.queries.N)
		for qi := 0; qi < w.queries.N; qi++ {
			gotA[qi] = approx.Search(w.queries.Row(qi), 10, arch.NewMeter())
			gotB[qi] = bounded.Search(w.queries.Row(qi), 10, arch.NewMeter())
		}
		ra, err := eval.MeanRecall(gotA, truth)
		if err != nil {
			return nil, err
		}
		rb, err := eval.MeanRecall(gotB, truth)
		if err != nil {
			return nil, err
		}
		if rb != 1 {
			return nil, fmt.Errorf("ext-approx: bound-based recall %.3f != 1 at alpha=%v", rb, alpha)
		}
		t.AddRow(fmt.Sprintf("%.0e", alpha), fmt.Sprintf("%.3f", ra), fmt.Sprintf("%.3f", rb))
	}
	t.Note("§II-A: fixed-point precision loss 'may compromise the accuracy of results'; bounds never do")
	return t, nil
}
