package exp

import (
	"fmt"

	"pimmine/internal/arch"
	"pimmine/internal/bound"
	"pimmine/internal/knn"
	"pimmine/internal/lsh"
	"pimmine/internal/measure"
	"pimmine/internal/pim"
	"pimmine/internal/pimbound"
	"pimmine/internal/plan"
)

func init() {
	register("fig13a", Fig13a)
	register("fig13b", Fig13b)
	register("fig13c", Fig13c)
	register("fig13d", Fig13d)
	register("fig14", Fig14)
	register("fig15", Fig15)
	register("fig16", Fig16)
	register("fig17", Fig17)
}

// runSearcher measures the mean modeled per-query time of a searcher.
func (s *Suite) runSearcher(alg knn.Searcher, w *knnWorkload, k int) float64 {
	m := arch.NewMeter()
	for qi := 0; qi < w.queries.N; qi++ {
		alg.Search(w.queries.Row(qi), k, m)
	}
	return s.modeledMs(m) / float64(w.queries.N)
}

// Fig13a: Standard vs Standard-PIM across datasets (k=10, ED). The
// speedup must grow with dimensionality and collapse on GIST, whose white
// noise defeats LB_FNN-style pruning.
func Fig13a(s *Suite) (*Table, error) {
	t := &Table{
		ID:     "fig13a",
		Title:  "kNN time vs dataset (Standard vs Standard-PIM, k=10, ED)",
		Header: []string{"Dataset", "d", "s(Thm4)", "Standard(ms/q)", "Standard-PIM(ms/q)", "Speedup"},
	}
	for _, name := range []string{"ImageNet", "MSD", "Trevi", "GIST"} {
		w, err := s.knnWorkloadFor(name)
		if err != nil {
			return nil, err
		}
		std := knn.NewStandard(w.data)
		eng, err := s.engine()
		if err != nil {
			return nil, err
		}
		sp, err := knn.NewStandardPIM(eng, w.data, s.Quant, w.fullN)
		if err != nil {
			return nil, err
		}
		base := s.runSearcher(std, w, 10)
		pimMs := s.runSearcher(sp, w, 10)
		t.AddRow(name, fmt.Sprintf("%d", w.data.D), fmt.Sprintf("%d", sp.S()),
			ms(base), ms(pimMs), speedup(base, pimMs))
	}
	t.Note("paper: up to 453x on Trevi; slight gain on GIST (LB_FNN prunes weakly there)")
	return t, nil
}

// Fig13b: the four algorithms ± PIM plus PIM-oracle on MSD (k=10).
func Fig13b(s *Suite) (*Table, error) {
	t := &Table{
		ID:     "fig13b",
		Title:  "kNN time vs algorithm on MSD (k=10)",
		Header: []string{"Algorithm", "No-PIM(ms/q)", "PIM(ms/q)", "PIM-oracle(ms/q)", "Speedup"},
	}
	w, err := s.knnWorkloadFor("MSD")
	if err != nil {
		return nil, err
	}
	data := w.data
	build := func(name string, eng *pim.Engine) (knn.Searcher, knn.Searcher, error) {
		switch name {
		case "Standard":
			p, err := knn.NewStandardPIM(eng, data, s.Quant, w.fullN)
			return knn.NewStandard(data), p, err
		case "OST":
			h, err := knn.NewOST(data, data.D/2)
			if err != nil {
				return nil, nil, err
			}
			p, err := knn.NewOSTPIM(eng, data, s.Quant, data.D/2, w.fullN)
			return h, p, err
		case "SM":
			h, err := knn.NewSM(data, 28)
			if err != nil {
				return nil, nil, err
			}
			p, err := knn.NewSMPIM(eng, data, s.Quant, 28, w.fullN)
			return h, p, err
		case "FNN":
			h, err := knn.NewFNN(data)
			if err != nil {
				return nil, nil, err
			}
			p, err := knn.NewFNNPIM(eng, data, s.Quant, w.fullN)
			return h, p, err
		}
		return nil, nil, fmt.Errorf("exp: unknown algorithm %q", name)
	}
	for _, name := range []string{"Standard", "OST", "SM", "FNN"} {
		eng, err := s.engine()
		if err != nil {
			return nil, err
		}
		host, pimAlg, err := build(name, eng)
		if err != nil {
			return nil, err
		}
		baseMs := s.runSearcher(host, w, 10)
		pimMs := s.runSearcher(pimAlg, w, 10)
		// PIM-oracle: time of everything except the PIM-aware functions.
		r := s.profileKNN(name, host, w, 10)
		oracle := r.PIMOracleAuto() / 1e6 / float64(w.queries.N)
		t.AddRow(name, ms(baseMs), ms(pimMs), ms(oracle), speedup(baseMs, pimMs))
	}
	t.Note("paper: state-of-art algorithms are 3.9x over Standard; PIM lifts them to 40.8x on average")
	return t, nil
}

// Fig13c: Standard vs Standard-PIM as k varies on MSD.
func Fig13c(s *Suite) (*Table, error) {
	t := &Table{
		ID:     "fig13c",
		Title:  "kNN time vs k on MSD (Standard vs Standard-PIM)",
		Header: []string{"k", "Standard(ms/q)", "Standard-PIM(ms/q)", "Speedup"},
	}
	w, err := s.knnWorkloadFor("MSD")
	if err != nil {
		return nil, err
	}
	std := knn.NewStandard(w.data)
	eng, err := s.engine()
	if err != nil {
		return nil, err
	}
	sp, err := knn.NewStandardPIM(eng, w.data, s.Quant, w.fullN)
	if err != nil {
		return nil, err
	}
	for _, k := range []int{1, 10, 100} {
		base := s.runSearcher(std, w, k)
		pimMs := s.runSearcher(sp, w, k)
		t.AddRow(fmt.Sprintf("%d", k), ms(base), ms(pimMs), speedup(base, pimMs))
	}
	t.Note("paper: 71.5x/57.1x/29.2x — speedup declines as k grows (more refinement)")
	return t, nil
}

// Fig13d: Standard vs Standard-PIM under ED, CS and PCC on MSD.
func Fig13d(s *Suite) (*Table, error) {
	t := &Table{
		ID:     "fig13d",
		Title:  "kNN time vs distance function on MSD (k=10)",
		Header: []string{"Distance", "Standard(ms/q)", "Standard-PIM(ms/q)", "Speedup"},
	}
	w, err := s.knnWorkloadFor("MSD")
	if err != nil {
		return nil, err
	}
	// ED row.
	eng, err := s.engine()
	if err != nil {
		return nil, err
	}
	sp, err := knn.NewStandardPIM(eng, w.data, s.Quant, w.fullN)
	if err != nil {
		return nil, err
	}
	base := s.runSearcher(knn.NewStandard(w.data), w, 10)
	pimMs := s.runSearcher(sp, w, 10)
	t.AddRow("ED", ms(base), ms(pimMs), speedup(base, pimMs))
	// CS and PCC rows.
	for _, kind := range []measure.Kind{measure.CS, measure.PCC} {
		std, err := knn.NewSimStandard(w.data, kind)
		if err != nil {
			return nil, err
		}
		eng, err := s.engine()
		if err != nil {
			return nil, err
		}
		simPIM, err := knn.NewSimPIM(eng, w.data, s.Quant, kind, w.data.N)
		if err != nil {
			return nil, err
		}
		b := s.runSearcher(std, w, 10)
		p := s.runSearcher(simPIM, w, 10)
		t.AddRow(kind.String(), ms(b), ms(p), speedup(b, p))
	}
	t.Note("paper: similar gaps across measures, slightly weaker on PCC (bound shares the µ/σ statistics)")
	return t, nil
}

// Fig14: HD kNN on SimHash binary codes as code length varies. PIM only
// pays off beyond ~128 bits (the PIM path always moves 64 result bits per
// object regardless of code length).
func Fig14(s *Suite) (*Table, error) {
	t := &Table{
		ID:     "fig14",
		Title:  "kNN on binary codes vs dimension (HD, k=10)",
		Header: []string{"Bits", "Standard(ms/q)", "Standard-PIM(ms/q)", "Speedup"},
	}
	ds, err := s.Data("GIST")
	if err != nil {
		return nil, err
	}
	queries := ds.Queries(s.Queries, s.Seed+200)
	for _, bits := range []int{128, 256, 512, 1024} {
		hasher := lsh.NewHasher(ds.X.D, bits, s.Seed+300)
		codes := hasher.HashAll(ds.X)
		qCodes := hasher.HashAll(queries)
		std := knn.NewHDStandard(codes)
		eng, err := s.engine()
		if err != nil {
			return nil, err
		}
		// Capacity check against the paper's 10M-code workload.
		hp, err := knn.NewHDPIM(eng, codes, 10_000_000)
		if err != nil {
			return nil, err
		}
		mStd, mPIM := arch.NewMeter(), arch.NewMeter()
		for _, qc := range qCodes {
			std.Search(qc, 10, mStd)
			hp.Search(qc, 10, mPIM)
		}
		b := s.modeledMs(mStd) / float64(len(qCodes))
		p := s.modeledMs(mPIM) / float64(len(qCodes))
		t.AddRow(fmt.Sprintf("%d", bits), ms(b), ms(p), speedup(b, p))
	}
	t.Note("paper: little gain at 128 bits (HD already moves only d bits); speedup grows with code length")
	return t, nil
}

// Fig15: pruning ratio and full-scale data-transfer cost of the FNN
// cascade bounds vs the PIM-aware bound on MSD (α=10⁶).
func Fig15(s *Suite) (*Table, error) {
	t := &Table{
		ID:     "fig15",
		Title:  "Pruning ratio and transfer cost of bounds (MSD, k=10, α=10⁶)",
		Header: []string{"Bound", "PruneRatio", "Transfer/object", "FullDataset(MB)"},
	}
	w, err := s.knnWorkloadFor("MSD")
	if err != nil {
		return nil, err
	}
	data := w.data
	exact := knn.NewStandard(data)
	levels := bound.FNNLevels(data.D)

	sEff := pim.ModelFor(s.Cfg).ChooseS(w.fullN, pim.Divisors(data.D), 2)
	pimIx, err := pimbound.BuildFNN(data, s.Quant, sEff)
	if err != nil {
		return nil, err
	}
	hostIxs := make([]*bound.FNNIndex, 0, len(levels))
	for _, segs := range levels {
		ix, err := bound.BuildFNN(data, segs)
		if err != nil {
			return nil, err
		}
		hostIxs = append(hostIxs, ix)
	}

	hostSum := make([]float64, len(hostIxs))
	var pimSum float64
	lbs := make([]float64, data.N)
	for qi := 0; qi < w.queries.N; qi++ {
		qv := w.queries.Row(qi)
		nn := exact.Search(qv, 10, arch.NewMeter())
		threshold := nn[len(nn)-1].Dist
		for li, ix := range hostIxs {
			mu, sigma, err := ix.QueryStats(qv)
			if err != nil {
				return nil, err
			}
			for i := 0; i < data.N; i++ {
				lbs[i] = ix.LB(i, mu, sigma)
			}
			hostSum[li] += plan.PruneRatio(lbs, threshold)
		}
		qf, err := pimIx.Query(qv)
		if err != nil {
			return nil, err
		}
		for i := 0; i < data.N; i++ {
			dm, dsg := pimIx.HostDots(i, qf)
			lbs[i] = pimIx.LB(i, qf, dm, dsg)
		}
		pimSum += plan.PruneRatio(lbs, threshold)
	}
	nq := float64(w.queries.N)
	fullMB := func(transferDims int) string {
		bytes := float64(w.fullN) * float64(transferDims) * 4
		return fmt.Sprintf("%.1f", bytes/(1<<20))
	}
	for li, ix := range hostIxs {
		t.AddRow(fmt.Sprintf("LBFNN-%d", ix.Segs), pct(hostSum[li]/nq),
			fmt.Sprintf("%d", ix.TransferDims()), fullMB(ix.TransferDims()))
	}
	t.AddRow(fmt.Sprintf("LBPIM-FNN-%d", sEff), pct(pimSum/nq), "3", fullMB(3))
	t.Note("paper: LB_PIM-FNN-105 prunes ~99%% at 3·b bits/object; original bounds cost d′·b or 2d′·b")
	return t, nil
}

// Fig16: execution-plan optimization on MSD — FNN vs FNN-PIM (default
// plan) vs FNN-PIM-optimize (§V-D plan) vs the oracle, as k varies.
func Fig16(s *Suite) (*Table, error) {
	t := &Table{
		ID:     "fig16",
		Title:  "Execution-plan optimization (FNN family on MSD)",
		Header: []string{"k", "FNN(ms/q)", "FNN-PIM(ms/q)", "FNN-PIM-opt(ms/q)", "Oracle(ms/q)", "Plan"},
	}
	w, err := s.knnWorkloadFor("MSD")
	if err != nil {
		return nil, err
	}
	fw, err := newFramework(s)
	if err != nil {
		return nil, err
	}
	acc, err := fw.AccelerateKNN(w.data, coreKNNOptions(w, s))
	if err != nil {
		return nil, err
	}
	for _, k := range []int{1, 10, 100} {
		baseMs := s.runSearcher(acc.Baseline, w, k)
		pimMs := s.runSearcher(acc.PIM, w, k)
		optMs := s.runSearcher(acc.Optimized, w, k)
		r := s.profileKNN("FNN", acc.Baseline, w, k)
		oracle := r.PIMOracleAuto() / 1e6 / float64(w.queries.N)
		t.AddRow(fmt.Sprintf("%d", k), ms(baseMs), ms(pimMs), ms(optMs), ms(oracle), acc.Plan.String())
	}
	t.Note("paper: FNN-PIM-optimize drops the original bounds and approaches FNN-PIM-oracle")
	return t, nil
}

// Fig17: pre-processing time of FNN vs FNN-PIM-optimize per dataset. The
// host baseline precomputes three granularities of segment statistics and
// writes them to DRAM; the PIM variant precomputes one granularity plus Φ
// but pays ReRAM programming latency.
func Fig17(s *Suite) (*Table, error) {
	t := &Table{
		ID:     "fig17",
		Title:  "Pre-processing time (FNN vs FNN-PIM-optimize)",
		Header: []string{"Dataset", "FNN(ms)", "FNN-PIM-opt(ms)", "Ratio"},
	}
	for _, name := range []string{"ImageNet", "MSD", "Trevi", "GIST"} {
		w, err := s.knnWorkloadFor(name)
		if err != nil {
			return nil, err
		}
		data := w.data
		levels := bound.FNNLevels(data.D)

		// FNN: 3 granularities, host compute + DRAM write.
		mHost := arch.NewMeter()
		c := mHost.C("preprocess")
		for _, segs := range levels {
			c.Ops += int64(data.N) * int64(data.D) * 3 // mean+σ accumulation
			c.SeqBytes += int64(data.N) * int64(data.D) * 4
			c.SeqBytes += int64(data.N) * int64(2*segs) * 4 // DRAM write-back
		}
		hostMs := s.modeledMs(mHost)

		// FNN-PIM-optimize: one granularity, Φ precompute, ReRAM program.
		eng, err := s.engine()
		if err != nil {
			return nil, err
		}
		pimAlg, err := knn.NewFNNPIMOptimized(eng, data, s.Quant, w.fullN, nil)
		if err != nil {
			return nil, err
		}
		mPIM := arch.NewMeter()
		cp := mPIM.C("preprocess")
		cp.Ops += int64(data.N) * int64(data.D) * 4 // stats + quantization + Φ
		cp.SeqBytes += int64(data.N) * int64(data.D) * 4
		pimAlg.RecordPreprocessing(mPIM)
		pimMs := s.modeledMs(mPIM)

		t.AddRow(name, ms(hostMs), ms(pimMs), fmt.Sprintf("%.2fx", pimMs/hostMs))
	}
	t.Note("paper: PIM pre-processing is 1.9x slower on average (ReRAM writes) but writes ~33%% less data")
	return t, nil
}
