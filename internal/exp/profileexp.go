package exp

import (
	"pimmine/internal/arch"
	"pimmine/internal/kmeans"
	"pimmine/internal/knn"
	"pimmine/internal/profile"
	"pimmine/internal/vec"
)

func init() {
	register("fig5", Fig5)
	register("fig6", Fig6)
	register("fig7", Fig7)
}

// knnProfileAlgos builds the four §IV kNN algorithms over MSD.
func (s *Suite) knnProfileAlgos() (map[string]knn.Searcher, *knnWorkload, error) {
	w, err := s.knnWorkloadFor("MSD")
	if err != nil {
		return nil, nil, err
	}
	data := w.data
	ost, err := knn.NewOST(data, data.D/2)
	if err != nil {
		return nil, nil, err
	}
	sm, err := knn.NewSM(data, 28)
	if err != nil {
		return nil, nil, err
	}
	fnn, err := knn.NewFNN(data)
	if err != nil {
		return nil, nil, err
	}
	return map[string]knn.Searcher{
		"Standard": knn.NewStandard(data),
		"OST":      ost,
		"SM":       sm,
		"FNN":      fnn,
	}, w, nil
}

// knnWorkload bundles one dataset with its query batch.
type knnWorkload struct {
	name    string
	data    *vec.Matrix
	queries *vec.Matrix
	fullN   int
}

// profileKNN runs a searcher over the query batch and profiles it.
func (s *Suite) profileKNN(name string, alg knn.Searcher, w *knnWorkload, k int) *profile.Report {
	m := arch.NewMeter()
	for qi := 0; qi < w.queries.N; qi++ {
		alg.Search(w.queries.Row(qi), k, m)
	}
	return profile.New(name, s.Cfg, m)
}

// kmeansProfileAlgos builds the four §IV k-means algorithms over NUS-WIDE.
func (s *Suite) kmeansProfileAlgos() (map[string]kmeans.Algorithm, *knnWorkload, error) {
	w, err := s.knnWorkloadFor("NUS-WIDE")
	if err != nil {
		return nil, nil, err
	}
	data := w.data
	return map[string]kmeans.Algorithm{
		"Standard": kmeans.NewLloyd(data),
		"Elkan":    kmeans.NewElkan(data),
		"Drake":    kmeans.NewDrake(data),
		"Yinyang":  kmeans.NewYinyang(data),
	}, w, nil
}

// profileKMeans runs an algorithm for a few iterations and profiles it.
func (s *Suite) profileKMeans(name string, alg kmeans.Algorithm, w *knnWorkload, k, iters int) (*profile.Report, int, error) {
	initial, err := kmeans.InitCenters(w.data, k, s.Seed)
	if err != nil {
		return nil, 0, err
	}
	m := arch.NewMeter()
	res := alg.Run(initial, iters, m)
	return profile.New(name, s.Cfg, m), res.Iterations, nil
}

var knnOrder = []string{"Standard", "FNN", "SM", "OST"}
var kmeansOrder = []string{"Standard", "Elkan", "Drake", "Yinyang"}

// Fig5 reproduces the hardware-component profiling: Tcache must dominate
// (62–83% in the paper) for both workloads.
func Fig5(s *Suite) (*Table, error) {
	t := &Table{
		ID:     "fig5",
		Title:  "Profiling by hardware component (kNN on MSD k=10; k-means on NUS-WIDE k=64)",
		Header: []string{"Workload", "Algorithm", "Tc", "Tcache", "TALU", "TBr", "TFe"},
	}
	algos, w, err := s.knnProfileAlgos()
	if err != nil {
		return nil, err
	}
	for _, name := range knnOrder {
		r := s.profileKNN(name, algos[name], w, 10)
		sh := r.HardwareShares()
		t.AddRow("kNN", name, pct(sh["Tc"]), pct(sh["Tcache"]), pct(sh["TALU"]), pct(sh["TBr"]), pct(sh["TFe"]))
	}
	kalgos, kw, err := s.kmeansProfileAlgos()
	if err != nil {
		return nil, err
	}
	for _, name := range kmeansOrder {
		r, _, err := s.profileKMeans(name, kalgos[name], kw, 64, 5)
		if err != nil {
			return nil, err
		}
		sh := r.HardwareShares()
		t.AddRow("k-means", name, pct(sh["Tc"]), pct(sh["Tcache"]), pct(sh["TALU"]), pct(sh["TBr"]), pct(sh["TFe"]))
	}
	t.Note("paper: Tcache accounts for 65-83%% (kNN) and 62-75%% (k-means) of total time")
	return t, nil
}

// Fig6 reproduces the per-function breakdown: ED dominates Standard;
// bound functions dominate the bound-based algorithms.
func Fig6(s *Suite) (*Table, error) {
	t := &Table{
		ID:     "fig6",
		Title:  "Execution time breakdown by function",
		Header: []string{"Workload", "Algorithm", "Function", "Share"},
	}
	algos, w, err := s.knnProfileAlgos()
	if err != nil {
		return nil, err
	}
	for _, name := range knnOrder {
		r := s.profileKNN(name, algos[name], w, 10)
		for _, fn := range r.Functions() {
			t.AddRow("kNN", name, fn, pct(r.FunctionShares()[fn]))
		}
	}
	kalgos, kw, err := s.kmeansProfileAlgos()
	if err != nil {
		return nil, err
	}
	for _, name := range kmeansOrder {
		r, _, err := s.profileKMeans(name, kalgos[name], kw, 64, 5)
		if err != nil {
			return nil, err
		}
		for _, fn := range r.Functions() {
			t.AddRow("k-means", name, fn, pct(r.FunctionShares()[fn]))
		}
	}
	t.Note("paper: ED/bounds take 72-86%% for kNN; ED takes 52-96%% for k-means")
	return t, nil
}

// Fig7 compares No-PIM with the Eq. 2 PIM-oracle for both workloads.
func Fig7(s *Suite) (*Table, error) {
	t := &Table{
		ID:     "fig7",
		Title:  "No-PIM vs PIM-oracle (Eq. 2)",
		Header: []string{"Workload", "Algorithm", "No-PIM(ms)", "PIM-oracle(ms)", "Potential"},
	}
	algos, w, err := s.knnProfileAlgos()
	if err != nil {
		return nil, err
	}
	for _, name := range knnOrder {
		r := s.profileKNN(name, algos[name], w, 10)
		total := r.Total.Total()
		oracle := r.PIMOracleAuto()
		t.AddRow("kNN", name, ms(total/1e6), ms(oracle/1e6), speedup(total, oracle))
	}
	kalgos, kw, err := s.kmeansProfileAlgos()
	if err != nil {
		return nil, err
	}
	for _, name := range kmeansOrder {
		r, _, err := s.profileKMeans(name, kalgos[name], kw, 64, 5)
		if err != nil {
			return nil, err
		}
		total := r.Total.Total()
		oracle := r.PIMOracleAuto()
		t.AddRow("k-means", name, ms(total/1e6), ms(oracle/1e6), speedup(total, oracle))
	}
	t.Note("paper: PIM-oracle is 183.9x faster for kNN Standard, 51.4x for k-means Standard; only 2.2x for Elkan")
	return t, nil
}

// knnWorkloadFor loads a dataset and query batch.
func (s *Suite) knnWorkloadFor(name string) (*knnWorkload, error) {
	ds, err := s.Data(name)
	if err != nil {
		return nil, err
	}
	return &knnWorkload{
		name:    name,
		data:    ds.X,
		queries: ds.Queries(s.Queries, s.Seed+100),
		fullN:   ds.Profile.FullN,
	}, nil
}
