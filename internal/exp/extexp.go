package exp

import (
	"fmt"
	"math"
	"math/rand"

	"pimmine/internal/arch"
	"pimmine/internal/join"
	"pimmine/internal/motif"
	"pimmine/internal/outlier"
	"pimmine/internal/quant"
)

func init() {
	register("ext-outlier", ExtOutlier)
	register("ext-motif", ExtMotif)
	register("ext-join", ExtJoin)
}

// ExtOutlier measures host vs PIM top-n kNN-distance outlier detection —
// an extension beyond the paper's evaluation covering the outlier task
// its introduction names.
func ExtOutlier(s *Suite) (*Table, error) {
	t := &Table{
		ID:     "ext-outlier",
		Title:  "Distance-based outlier detection (top-5, k=10) — extension",
		Header: []string{"Dataset", "Host(ms)", "PIM(ms)", "Speedup", "ExactDistances(host→PIM)"},
	}
	q, err := quant.New(s.Quant.Alpha)
	if err != nil {
		return nil, err
	}
	for _, name := range []string{"Year", "NUS-WIDE"} {
		ds, err := s.Data(name)
		if err != nil {
			return nil, err
		}
		host := outlier.NewDetector(ds.X)
		mHost := arch.NewMeter()
		want, err := host.TopN(5, 10, mHost)
		if err != nil {
			return nil, err
		}
		eng, err := s.engine()
		if err != nil {
			return nil, err
		}
		pimDet, err := outlier.NewDetectorPIM(eng, ds.X, q, ds.Profile.FullN)
		if err != nil {
			return nil, err
		}
		mPIM := arch.NewMeter()
		got, err := pimDet.TopN(5, 10, mPIM)
		if err != nil {
			return nil, err
		}
		for i := range want {
			if want[i] != got[i] {
				return nil, fmt.Errorf("ext-outlier: PIM result diverges on %s", name)
			}
		}
		h, p := s.modeledMs(mHost), s.modeledMs(mPIM)
		t.AddRow(name, ms(h), ms(p), speedup(h, p),
			fmt.Sprintf("%d → %d", mHost.Get(arch.FuncED).Calls, mPIM.Get(arch.FuncED).Calls))
	}
	t.Note("results verified identical between host and PIM paths")
	return t, nil
}

// ExtMotif measures host vs PIM motif and discord discovery on a planted
// synthetic series.
func ExtMotif(s *Suite) (*Table, error) {
	t := &Table{
		ID:     "ext-motif",
		Title:  "Time-series motif & discord discovery (w=64) — extension",
		Header: []string{"Task", "Host(ms)", "PIM(ms)", "Speedup"},
	}
	const n, w = 3000, 64
	rng := rand.New(rand.NewSource(s.Seed))
	series := make([]float64, n)
	v := 0.0
	for i := range series {
		v += rng.NormFloat64()
		series[i] = v
	}
	pattern := make([]float64, w)
	for i := range pattern {
		pattern[i] = 6 * math.Sin(float64(i)/4)
	}
	copy(series[500:], pattern)
	for i, p := range pattern {
		series[2200+i] = p + rng.NormFloat64()*0.01
	}
	windows, _, err := motif.Windows(series, w)
	if err != nil {
		return nil, err
	}
	q, err := quant.New(s.Quant.Alpha)
	if err != nil {
		return nil, err
	}
	eng, err := s.engine()
	if err != nil {
		return nil, err
	}
	pimF, err := motif.NewFinderPIM(eng, windows, q, windows.N)
	if err != nil {
		return nil, err
	}
	hostF := motif.NewFinder(windows)

	mh, mp := arch.NewMeter(), arch.NewMeter()
	wantM, err := hostF.Top(mh)
	if err != nil {
		return nil, err
	}
	gotM, err := pimF.Top(mp)
	if err != nil {
		return nil, err
	}
	if wantM != gotM {
		return nil, fmt.Errorf("ext-motif: PIM motif diverges")
	}
	h, p := s.modeledMs(mh), s.modeledMs(mp)
	t.AddRow("motif", ms(h), ms(p), speedup(h, p))

	mh, mp = arch.NewMeter(), arch.NewMeter()
	wantD, err := hostF.Discord(mh)
	if err != nil {
		return nil, err
	}
	gotD, err := pimF.Discord(mp)
	if err != nil {
		return nil, err
	}
	if wantD != gotD {
		return nil, fmt.Errorf("ext-motif: PIM discord diverges")
	}
	h, p = s.modeledMs(mh), s.modeledMs(mp)
	t.AddRow("discord", ms(h), ms(p), speedup(h, p))
	t.Note("planted motif at offsets (500, 2200); both paths find it exactly")
	return t, nil
}

// ExtJoin measures host vs PIM kNN join between two relations.
func ExtJoin(s *Suite) (*Table, error) {
	t := &Table{
		ID:     "ext-join",
		Title:  "kNN similarity join (|R|=50, k=5) — extension",
		Header: []string{"Inner dataset", "Host(ms)", "PIM(ms)", "Speedup"},
	}
	q, err := quant.New(s.Quant.Alpha)
	if err != nil {
		return nil, err
	}
	for _, name := range []string{"Notre", "NUS-WIDE"} {
		ds, err := s.Data(name)
		if err != nil {
			return nil, err
		}
		outer := ds.Queries(50, s.Seed+400)
		host := join.NewJoiner(ds.X)
		mHost := arch.NewMeter()
		want, err := host.KNN(outer, 5, false, mHost)
		if err != nil {
			return nil, err
		}
		eng, err := s.engine()
		if err != nil {
			return nil, err
		}
		pimJ, err := join.NewJoinerPIM(eng, ds.X, q, ds.Profile.FullN)
		if err != nil {
			return nil, err
		}
		mPIM := arch.NewMeter()
		got, err := pimJ.KNN(outer, 5, false, mPIM)
		if err != nil {
			return nil, err
		}
		for i := range want {
			for pos := range want[i] {
				if want[i][pos].Dist != got[i][pos].Dist {
					return nil, fmt.Errorf("ext-join: PIM join diverges on %s", name)
				}
			}
		}
		h, p := s.modeledMs(mHost), s.modeledMs(mPIM)
		t.AddRow(name, ms(h), ms(p), speedup(h, p))
	}
	t.Note("join results verified identical between host and PIM paths")
	return t, nil
}
