package exp

import (
	"context"
	"fmt"
	"sort"
	"time"

	"pimmine/internal/dataset"
	"pimmine/internal/route"
	"pimmine/internal/serve"
	"pimmine/internal/vec"
)

func init() {
	register("ext-route", ExtRoute)
}

// routeClustered generates a clustered dataset with rows grouped by
// mixture component, so the engine's contiguous shards are content-local
// — the regime the routing tier is built for. (Interleaved rows give
// every shard the same bounding box and nothing can ever be pruned;
// real deployments get locality from time- or key-partitioned ingest.)
func routeClustered(n, d, clusters int, spread float64, seed int64) *vec.Matrix {
	prof := dataset.Profile{Name: "route-sweep", FullN: n, D: d, Clusters: clusters, Correlation: 0.4, Spread: spread}
	ds := dataset.Generate(prof, n, seed)
	m := vec.NewMatrix(n, d)
	i := 0
	for c := 0; c < clusters; c++ {
		for r := 0; r < n; r++ {
			if ds.Labels[r] == c {
				copy(m.Row(i), ds.X.Row(r))
				i++
			}
		}
	}
	return m
}

// ExtRoute sweeps the sketch-based shard-routing tier: for each shard
// count, the same query stream runs unrouted (full fan-out), with exact
// routing (admissible pruning, bit-identical results — verified on every
// run) and with approximate routing at the suite's recall target. The
// table reports shards visited per query, modeled work, wall-clock p95
// latency, and — for the approximate mode — the measured recall against
// the unrouted truth.
func ExtRoute(s *Suite) (*Table, error) {
	target := s.Recall
	if target <= 0 || target > 1 {
		return nil, fmt.Errorf("ext-route: recall target %v outside (0, 1]", target)
	}
	t := &Table{
		ID:     "ext-route",
		Title:  fmt.Sprintf("Sketch-based shard routing (clustered, k=10, recall target %.2f)", target),
		Header: []string{"Shards", "Mode", "Visited/query", "Work ms/query", "p95 ms", "Recall"},
	}
	const k = 10
	const clusters = 8
	n := s.ScaleN
	if n < 16*clusters {
		n = 16 * clusters
	}
	// Spread is set where clusters overlap at the edges: tight clusters
	// make exact pruning unbeatable, full overlap starves the sketches.
	// The overlapped-edge regime is where the approximate mode earns its
	// keep — admissible bounds cannot prune what geometrically overlaps,
	// but similarity mass still concentrates where the answers live.
	data := routeClustered(n, 64, clusters, 0.45, s.Seed)
	nq := 8 * s.Queries
	queries := vec.NewMatrix(nq, data.D)
	for i := 0; i < nq; i++ {
		copy(queries.Row(i), data.Row((i*131)%data.N))
	}

	maxShards := s.Shards
	if maxShards < 2 {
		maxShards = 2
	}
	for shards := 2; shards <= maxShards; shards *= 2 {
		// A light size prior: the sweep measures how far sketch mass alone
		// can carry routing; the default 0.3 hedge would force a near-full
		// fan-out at high recall targets regardless of the sketches.
		r, err := route.NewEven(route.Config{Recall: target, SizePrior: 0.05, Seed: s.Seed}, data, shards)
		if err != nil {
			return nil, err
		}
		routed, err := serve.New(data, serve.Options{Shards: shards, Router: r, Obs: s.Obs})
		if err != nil {
			return nil, err
		}
		plain, err := serve.New(data, serve.Options{Shards: shards})
		if err != nil {
			return nil, err
		}

		// Unrouted truth (and its latency distribution). Exact modes are
		// verified bit-identical against it — ids and distances both.
		truth := make([][]vec.Neighbor, nq)
		run := func(search func(q []float64, k int) (*serve.Result, error), exact bool) (visited, workMs, p95ms, recall float64, err error) {
			durs := make([]float64, nq)
			var work, vis, rec float64
			for qi := 0; qi < nq; qi++ {
				start := time.Now()
				res, err := search(queries.Row(qi), k)
				if err != nil {
					return 0, 0, 0, 0, err
				}
				durs[qi] = float64(time.Since(start).Nanoseconds()) / 1e6
				work += s.modeledMs(res.Meter)
				if res.Routed != nil {
					vis += float64(res.Routed.Visited)
				} else {
					vis += float64(shards)
				}
				switch {
				case truth[qi] == nil:
					truth[qi] = res.Neighbors
					rec += 1
				case exact:
					for i := range truth[qi] {
						if res.Neighbors[i] != truth[qi][i] {
							return 0, 0, 0, 0, fmt.Errorf("query %d inexact at rank %d", qi, i)
						}
					}
					rec += 1
				default:
					rec += overlap(res.Neighbors, truth[qi])
				}
			}
			sort.Float64s(durs)
			return vis / float64(nq), work / float64(nq), durs[(nq*95)/100], rec / float64(nq), nil
		}

		type modeRun struct {
			name   string
			search func(q []float64, k int) (*serve.Result, error)
			exact  bool
		}
		ctx := context.Background()
		runs := []modeRun{
			{"unrouted", func(q []float64, k int) (*serve.Result, error) { return plain.Search(ctx, q, k) }, true},
			{"exact", func(q []float64, k int) (*serve.Result, error) {
				return routed.SearchMode(ctx, q, k, route.ModeExact)
			}, true},
			{"approx", func(q []float64, k int) (*serve.Result, error) {
				return routed.SearchMode(ctx, q, k, route.ModeApprox)
			}, false},
		}
		for _, mr := range runs {
			vis, work, p95, rec, err := run(mr.search, mr.exact)
			if err != nil {
				return nil, fmt.Errorf("ext-route: shards=%d %s: %w", shards, mr.name, err)
			}
			recCell := fmt.Sprintf("%.3f", rec)
			if mr.exact {
				recCell = "1.000 (exact)"
			}
			t.AddRow(
				fmt.Sprintf("%d", shards),
				mr.name,
				fmt.Sprintf("%.2f", vis),
				ms(work),
				fmt.Sprintf("%.3f", p95),
				recCell,
			)
		}
	}
	t.Note("rows grouped by cluster so shards are content-local; exact routing is verified bit-identical to the unrouted fan-out on every query; approx recall is measured against the unrouted truth over %d queries", nq)
	return t, nil
}

// overlap is |got ∩ want| / |want| by row id.
func overlap(got, want []vec.Neighbor) float64 {
	if len(want) == 0 {
		return 1
	}
	ids := make(map[int]bool, len(got))
	for _, n := range got {
		ids[n.Index] = true
	}
	hit := 0
	for _, n := range want {
		if ids[n.Index] {
			hit++
		}
	}
	return float64(hit) / float64(len(want))
}
