package exp

import (
	"fmt"

	"pimmine/internal/arch"
	"pimmine/internal/dataset"
	"pimmine/internal/knn"
)

func init() {
	register("ext-scale", ExtScale)
}

// ExtScale sweeps the generated cardinality on MSD and shows Standard-PIM's
// speedup *growing* with N — the scaling argument behind EXPERIMENTS.md's
// reading guide. A kNN filter cannot prune below k/N of the data, so small
// generated datasets cap the measurable speedup; the paper's 10⁵–10⁶-row
// datasets admit its two-orders-of-magnitude factors. Theorem 4 sizing is
// held at the paper's full N throughout, so s=105 for every row.
func ExtScale(s *Suite) (*Table, error) {
	t := &Table{
		ID:     "ext-scale",
		Title:  "Standard-PIM speedup vs dataset scale (MSD, k=10)",
		Header: []string{"N", "prune floor k/N", "Standard(ms/q)", "Standard-PIM(ms/q)", "Speedup"},
	}
	prof, err := dataset.ByName("MSD")
	if err != nil {
		return nil, err
	}
	sizes := []int{250, 500, 1000, 2000}
	if s.Full {
		sizes = append(sizes, 4000, 8000)
	}
	for _, n := range sizes {
		ds := dataset.Generate(prof, n, s.Seed)
		queries := ds.Queries(s.Queries, s.Seed+500)
		std := knn.NewStandard(ds.X)
		eng, err := s.engine()
		if err != nil {
			return nil, err
		}
		sp, err := knn.NewStandardPIM(eng, ds.X, s.Quant, prof.FullN)
		if err != nil {
			return nil, err
		}
		mStd, mPIM := arch.NewMeter(), arch.NewMeter()
		for qi := 0; qi < queries.N; qi++ {
			std.Search(queries.Row(qi), 10, mStd)
			sp.Search(queries.Row(qi), 10, mPIM)
		}
		base := s.modeledMs(mStd) / float64(queries.N)
		pimMs := s.modeledMs(mPIM) / float64(queries.N)
		t.AddRow(fmt.Sprintf("%d", n),
			fmt.Sprintf("%.1f%%", 100*10.0/float64(n)),
			ms(base), ms(pimMs), speedup(base, pimMs))
	}
	t.Note("speedup grows with N toward the paper's full-scale factors; the k/N pruning floor is the binding cap at small N")
	return t, nil
}
