package motif

import (
	"fmt"
	"math"

	"pimmine/internal/arch"
	"pimmine/internal/measure"
	"pimmine/internal/pimbound"
)

// Discord discovery is motif discovery's dual and the paper's other named
// time-series task (§I: "motif discovery and anomaly detection"): the
// discord is the subsequence farthest from its nearest non-overlapping
// neighbor — the most anomalous window of the series (Keogh's HOT SAX
// formulation).
//
// The scan uses the classic early-abandon structure: window i is
// disqualified the moment any neighbor closer than the best discord
// score is found. The PIM path strengthens this with LB_PIM-ED — a
// neighbor whose *lower bound* already exceeds the running nearest
// distance can't improve it, and an exact distance below the current
// best score disqualifies i immediately.

// Discord is the most anomalous window.
type Discord struct {
	I int // window offset
	// Dist is the true distance to I's nearest non-overlapping window.
	Dist float64
}

// Discord returns the top discord of the finder's windows.
func (f *Finder) Discord(meter *arch.Meter) (Discord, error) {
	n := f.Win.N
	if n < f.W+1 {
		return Discord{}, fmt.Errorf("motif: series too short for non-overlapping pairs")
	}
	best := Discord{I: -1, Dist: -1}
	bestSq := -1.0
	var exact, consults int64
	for i := 0; i < n; i++ {
		var qf pimbound.EDQuery
		if f.ix != nil {
			qf = f.ix.Query(f.Win.Row(i))
			var err error
			f.dots, err = f.eng.QueryAll(meter, "LBPIM-ED", f.pay, qf.Floor, f.dots)
			if err != nil {
				return Discord{}, err
			}
		}
		p := f.Win.Row(i)
		nnSq := math.Inf(1)
		for j := 0; j < n; j++ {
			if absInt(i-j) < f.W {
				continue // trivial match exclusion
			}
			if f.ix != nil {
				consults++
				// A neighbor provably farther than the current nearest
				// cannot shrink it.
				if f.ix.LB(j, qf, f.dots[j]) >= nnSq {
					continue
				}
			}
			exact++
			if d := measure.SqEuclidean(p, f.Win.Row(j)); d < nnSq {
				nnSq = d
				if nnSq <= bestSq {
					break // i cannot beat the best discord: abandon early
				}
			}
		}
		if nnSq > bestSq && !math.IsInf(nnSq, 1) {
			bestSq = nnSq
			best = Discord{I: i, Dist: math.Sqrt(nnSq)}
		}
	}
	f.recordCosts(meter, exact, consults)
	return best, nil
}
