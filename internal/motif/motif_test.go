package motif

import (
	"math"
	"math/rand"
	"testing"

	"pimmine/internal/arch"
	"pimmine/internal/measure"
	"pimmine/internal/pim"
	"pimmine/internal/quant"
	"pimmine/internal/vec"
)

// plantedSeries builds a noisy random-walk series with one near-identical
// pattern planted at two known offsets.
func plantedSeries(n, w, at1, at2 int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	s := make([]float64, n)
	v := 0.0
	for i := range s {
		v += rng.NormFloat64()
		s[i] = v
	}
	pattern := make([]float64, w)
	for i := range pattern {
		pattern[i] = 10 * math.Sin(float64(i)/3)
	}
	copy(s[at1:], pattern)
	for i := range pattern {
		s[at2+i] = pattern[i] + rng.NormFloat64()*0.01
	}
	return s
}

func bruteForce(win *vec.Matrix, w int) Motif {
	best := Motif{Dist: math.Inf(1)}
	bestSq := math.Inf(1)
	for i := 0; i < win.N; i++ {
		for j := i + w; j < win.N; j++ {
			if d := measure.SqEuclidean(win.Row(i), win.Row(j)); d < bestSq {
				bestSq = d
				best = Motif{I: i, J: j, Dist: math.Sqrt(d)}
			}
		}
	}
	return best
}

func newPIMFinder(t *testing.T, win *vec.Matrix) *Finder {
	t.Helper()
	eng, err := pim.NewEngine(arch.Default(), pim.ModeExact)
	if err != nil {
		t.Fatal(err)
	}
	q, err := quant.New(quant.DefaultAlpha)
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewFinderPIM(eng, win, q, win.N)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestWindowsValidation(t *testing.T) {
	if _, _, err := Windows([]float64{1, 2, 3}, 1); err == nil {
		t.Fatal("w<2 must be rejected")
	}
	if _, _, err := Windows([]float64{1, 2, 3}, 4); err == nil {
		t.Fatal("w>len must be rejected")
	}
	win, _, err := Windows([]float64{1, 2, 3, 4}, 2)
	if err != nil || win.N != 3 || win.D != 2 {
		t.Fatalf("Windows shape = %dx%d, %v", win.N, win.D, err)
	}
	for _, v := range win.Data {
		if v < 0 || v > 1 {
			t.Fatalf("window value %v outside [0,1]", v)
		}
	}
	// Constant series must not divide by zero.
	if _, _, err := Windows([]float64{5, 5, 5, 5}, 2); err != nil {
		t.Fatal(err)
	}
}

func TestTopFindsPlantedMotif(t *testing.T) {
	const n, w, at1, at2 = 600, 32, 100, 400
	series := plantedSeries(n, w, at1, at2, 5)
	win, _, err := Windows(series, w)
	if err != nil {
		t.Fatal(err)
	}
	want := bruteForce(win, w)
	if want.I != at1 || want.J != at2 {
		t.Fatalf("brute force found (%d,%d), planted (%d,%d)", want.I, want.J, at1, at2)
	}
	host := NewFinder(win)
	got, err := host.Top(arch.NewMeter())
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("host Top = %+v, brute force %+v", got, want)
	}
	pimF := newPIMFinder(t, win)
	gotPIM, err := pimF.Top(arch.NewMeter())
	if err != nil {
		t.Fatal(err)
	}
	if gotPIM != want {
		t.Fatalf("PIM Top = %+v, brute force %+v", gotPIM, want)
	}
}

func TestPIMFinderPrunes(t *testing.T) {
	series := plantedSeries(800, 32, 100, 500, 6)
	win, _, err := Windows(series, 32)
	if err != nil {
		t.Fatal(err)
	}
	mHost, mPIM := arch.NewMeter(), arch.NewMeter()
	if _, err := NewFinder(win).Top(mHost); err != nil {
		t.Fatal(err)
	}
	if _, err := newPIMFinder(t, win).Top(mPIM); err != nil {
		t.Fatal(err)
	}
	hostExact := mHost.Get(arch.FuncED).Calls
	pimExact := mPIM.Get(arch.FuncED).Calls
	if pimExact*2 >= hostExact {
		t.Fatalf("PIM finder computed %d exact distances vs host %d — expected >2x pruning", pimExact, hostExact)
	}
}

func TestTopKExclusionZones(t *testing.T) {
	const w = 16
	series := plantedSeries(500, w, 50, 300, 7)
	win, _, err := Windows(series, w)
	if err != nil {
		t.Fatal(err)
	}
	motifs, err := NewFinder(win).TopK(3, arch.NewMeter())
	if err != nil {
		t.Fatal(err)
	}
	if len(motifs) == 0 {
		t.Fatal("no motifs found")
	}
	if motifs[0].I != 50 || motifs[0].J != 300 {
		t.Fatalf("best motif = (%d,%d), planted (50,300)", motifs[0].I, motifs[0].J)
	}
	for a := 0; a < len(motifs); a++ {
		if motifs[a].J-motifs[a].I < w {
			t.Fatalf("motif %d overlaps itself: %+v", a, motifs[a])
		}
		for b := a + 1; b < len(motifs); b++ {
			ma, mb := motifs[a], motifs[b]
			if absInt(ma.I-mb.I) < w && absInt(ma.J-mb.J) < w {
				t.Fatalf("motifs %d and %d trivially match: %+v vs %+v", a, b, ma, mb)
			}
		}
		if a > 0 && motifs[a].Dist < motifs[a-1].Dist {
			t.Fatal("motifs not sorted by ascending distance")
		}
	}
}

func TestFinderValidation(t *testing.T) {
	win, _, err := Windows([]float64{1, 2, 3, 4}, 2)
	if err != nil {
		t.Fatal(err)
	}
	f := NewFinder(win)
	if _, err := f.TopK(0, arch.NewMeter()); err == nil {
		t.Fatal("k=0 must be rejected")
	}
	tiny, _, err := Windows([]float64{1, 2, 3}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewFinder(tiny).Top(arch.NewMeter()); err == nil {
		t.Fatal("series without non-overlapping pairs must be rejected")
	}
}
