// Package motif implements time-series motif discovery — another of the
// similarity-based mining tasks the paper's introduction cites (§I,
// "motif discovery and anomaly detection" [3]). The task: given a series
// and a window length w, find the pair of non-overlapping subsequences
// with the smallest Euclidean distance (the top motif, Mueen [3]).
//
// The host algorithm is the classic scan with early abandonment; the
// PIM-optimized variant quantizes the sliding windows onto the PIM array
// once and consults LB_PIM-ED (Theorem 1) before every exact distance —
// the same filter-and-refine recipe the paper applies to kNN, so the
// discovered motif is exact (tested against brute force).
package motif

import (
	"fmt"
	"math"
	"sort"

	"pimmine/internal/arch"
	"pimmine/internal/measure"
	"pimmine/internal/pim"
	"pimmine/internal/pimbound"
	"pimmine/internal/quant"
	"pimmine/internal/vec"
)

const operandBytes = 4

// Motif is the best non-overlapping pair found.
type Motif struct {
	I, J int // window start offsets, I < J, J−I ≥ w
	// Dist is the true Euclidean distance between the two windows.
	Dist float64
}

// Windows expands a series into its n−w+1 sliding windows, min-max
// normalized into [0,1] with one global affine map (distance-order
// preserving, and the range Theorem 1 requires). The scale factor of the
// normalization is returned so distances can be mapped back if needed.
func Windows(series []float64, w int) (*vec.Matrix, float64, error) {
	if w < 2 || w > len(series) {
		return nil, 0, fmt.Errorf("motif: window %d outside [2,%d]", w, len(series))
	}
	lo, hi := series[0], series[0]
	for _, v := range series {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	span := hi - lo
	if span == 0 {
		span = 1
	}
	n := len(series) - w + 1
	m := vec.NewMatrix(n, w)
	for i := 0; i < n; i++ {
		row := m.Row(i)
		for j := 0; j < w; j++ {
			row[j] = (series[i+j] - lo) / span
		}
	}
	return m, span, nil
}

// Finder locates the top motif of one window matrix. With a non-nil PIM
// index it runs the PIM-optimized path.
type Finder struct {
	Win *vec.Matrix
	W   int

	eng  *pim.Engine
	ix   *pimbound.EDIndex
	pay  *pim.Payload
	dots []int64
}

// NewFinder builds the host-only finder over pre-computed windows.
func NewFinder(windows *vec.Matrix) *Finder {
	return &Finder{Win: windows, W: windows.D}
}

// NewFinderPIM quantizes the windows and programs them onto the array.
func NewFinderPIM(eng *pim.Engine, windows *vec.Matrix, q quant.Quantizer, capacityN int) (*Finder, error) {
	if !eng.Model().Fits(capacityN, windows.D, 1) {
		return nil, fmt.Errorf("motif: %d-dim windows for N=%d exceed PIM capacity", windows.D, capacityN)
	}
	ix := pimbound.BuildED(windows, q)
	pay, err := eng.Program("motif/windows", windows.N, windows.D, 1, ix.Floor)
	if err != nil {
		return nil, err
	}
	return &Finder{Win: windows, W: windows.D, eng: eng, ix: ix, pay: pay}, nil
}

// Name reports which path the finder runs.
func (f *Finder) Name() string {
	if f.ix != nil {
		return "Finder-PIM"
	}
	return "Finder"
}

// Top returns the closest pair of windows whose offsets differ by at
// least the window length (the standard trivial-match exclusion).
func (f *Finder) Top(meter *arch.Meter) (Motif, error) {
	n := f.Win.N
	if n < f.W+1 {
		return Motif{}, fmt.Errorf("motif: series too short for non-overlapping pairs (windows=%d, w=%d)", n, f.W)
	}
	best := Motif{I: -1, J: -1, Dist: math.Inf(1)}
	bestSq := math.Inf(1)
	var exact, consults int64
	for i := 0; i < n; i++ {
		var qf pimbound.EDQuery
		if f.ix != nil {
			qf = f.ix.Query(f.Win.Row(i))
			var err error
			f.dots, err = f.eng.QueryAll(meter, "LBPIM-ED", f.pay, qf.Floor, f.dots)
			if err != nil {
				return Motif{}, err
			}
		}
		p := f.Win.Row(i)
		for j := i + f.W; j < n; j++ {
			if f.ix != nil {
				consults++
				if f.ix.LB(j, qf, f.dots[j]) >= bestSq {
					continue
				}
			}
			exact++
			if d := measure.SqEuclidean(p, f.Win.Row(j)); d < bestSq {
				bestSq = d
				best = Motif{I: i, J: j, Dist: math.Sqrt(d)}
			}
		}
	}
	f.recordCosts(meter, exact, consults)
	return best, nil
}

// TopK returns the k best non-overlapping pairs by ascending distance,
// where pairs are additionally required not to trivially match an
// already-reported motif (both endpoints at least w away from the
// corresponding endpoints of every better pair).
func (f *Finder) TopK(k int, meter *arch.Meter) ([]Motif, error) {
	if k < 1 {
		return nil, fmt.Errorf("motif: k must be >= 1, got %d", k)
	}
	n := f.Win.N
	if n < f.W+1 {
		return nil, fmt.Errorf("motif: series too short for non-overlapping pairs")
	}
	// Collect candidate pairs through the same filter machinery, then
	// greedily pick non-overlapping winners. The candidate set is bounded
	// by keeping the best pair per i (sufficient for greedy selection on
	// typical series, exact for k=1).
	type cand struct {
		m  Motif
		sq float64
	}
	cands := make([]cand, 0, n)
	var exact, consults int64
	for i := 0; i < n; i++ {
		var qf pimbound.EDQuery
		if f.ix != nil {
			qf = f.ix.Query(f.Win.Row(i))
			var err error
			f.dots, err = f.eng.QueryAll(meter, "LBPIM-ED", f.pay, qf.Floor, f.dots)
			if err != nil {
				return nil, err
			}
		}
		p := f.Win.Row(i)
		bi := cand{m: Motif{I: -1}, sq: math.Inf(1)}
		for j := i + f.W; j < n; j++ {
			if f.ix != nil {
				consults++
				if f.ix.LB(j, qf, f.dots[j]) >= bi.sq {
					continue
				}
			}
			exact++
			if d := measure.SqEuclidean(p, f.Win.Row(j)); d < bi.sq {
				bi = cand{m: Motif{I: i, J: j, Dist: math.Sqrt(d)}, sq: d}
			}
		}
		if bi.m.I >= 0 {
			cands = append(cands, bi)
		}
	}
	f.recordCosts(meter, exact, consults)
	// Greedy selection by ascending distance with exclusion zones.
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].sq != cands[b].sq {
			return cands[a].sq < cands[b].sq
		}
		return cands[a].m.I < cands[b].m.I
	})
	var out []Motif
	for _, c := range cands {
		if len(out) == k {
			break
		}
		clash := false
		for _, m := range out {
			if absInt(c.m.I-m.I) < f.W || absInt(c.m.J-m.J) < f.W ||
				absInt(c.m.I-m.J) < f.W || absInt(c.m.J-m.I) < f.W {
				clash = true
				break
			}
		}
		if !clash {
			out = append(out, c.m)
		}
	}
	return out, nil
}

func (f *Finder) recordCosts(meter *arch.Meter, exact, consults int64) {
	w := int64(f.W)
	ed := meter.C(arch.FuncED)
	ed.Ops += exact * 3 * w
	ed.SeqBytes += exact * w * operandBytes
	ed.Branches += exact
	ed.Calls += exact
	if consults > 0 {
		c := meter.C("LBPIM-ED")
		c.Ops += consults * 8
		c.SeqBytes += consults * 2 * operandBytes
		c.Branches += consults
		c.Calls += consults
	}
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
