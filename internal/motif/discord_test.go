package motif

import (
	"math"
	"math/rand"
	"testing"

	"pimmine/internal/arch"
	"pimmine/internal/measure"
	"pimmine/internal/vec"
)

// periodicSeriesWithAnomaly builds a clean periodic series with one
// corrupted region — the classic discord benchmark setup.
func periodicSeriesWithAnomaly(n, at, w int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	s := make([]float64, n)
	for i := range s {
		s[i] = math.Sin(float64(i)/8) + rng.NormFloat64()*0.02
	}
	for i := 0; i < w; i++ {
		s[at+i] += 3 * math.Sin(float64(i)) // break the periodic pattern
	}
	return s
}

func bruteDiscord(win *vec.Matrix, w int) Discord {
	best := Discord{I: -1, Dist: -1}
	for i := 0; i < win.N; i++ {
		nn := math.Inf(1)
		for j := 0; j < win.N; j++ {
			if absInt(i-j) < w {
				continue
			}
			if d := measure.SqEuclidean(win.Row(i), win.Row(j)); d < nn {
				nn = d
			}
		}
		if !math.IsInf(nn, 1) && math.Sqrt(nn) > best.Dist {
			best = Discord{I: i, Dist: math.Sqrt(nn)}
		}
	}
	return best
}

func TestDiscordFindsAnomaly(t *testing.T) {
	const n, w, at = 800, 32, 400
	series := periodicSeriesWithAnomaly(n, at, w, 8)
	win, _, err := Windows(series, w)
	if err != nil {
		t.Fatal(err)
	}
	want := bruteDiscord(win, w)
	// The discord must overlap the corrupted region.
	if want.I < at-w || want.I > at+w {
		t.Fatalf("brute discord at %d, anomaly planted at %d", want.I, at)
	}
	host, err := NewFinder(win).Discord(arch.NewMeter())
	if err != nil {
		t.Fatal(err)
	}
	if host.I != want.I || math.Abs(host.Dist-want.Dist) > 1e-12 {
		t.Fatalf("host discord %+v, brute %+v", host, want)
	}
	pimF := newPIMFinder(t, win)
	got, err := pimF.Discord(arch.NewMeter())
	if err != nil {
		t.Fatal(err)
	}
	if got.I != want.I || math.Abs(got.Dist-want.Dist) > 1e-12 {
		t.Fatalf("PIM discord %+v, brute %+v", got, want)
	}
}

func TestDiscordPIMPrunes(t *testing.T) {
	series := periodicSeriesWithAnomaly(1000, 500, 32, 9)
	win, _, err := Windows(series, 32)
	if err != nil {
		t.Fatal(err)
	}
	mHost, mPIM := arch.NewMeter(), arch.NewMeter()
	if _, err := NewFinder(win).Discord(mHost); err != nil {
		t.Fatal(err)
	}
	if _, err := newPIMFinder(t, win).Discord(mPIM); err != nil {
		t.Fatal(err)
	}
	if mPIM.Get(arch.FuncED).Calls >= mHost.Get(arch.FuncED).Calls {
		t.Fatalf("PIM discord computed %d exact distances vs host %d",
			mPIM.Get(arch.FuncED).Calls, mHost.Get(arch.FuncED).Calls)
	}
}

func TestDiscordValidation(t *testing.T) {
	tiny, _, err := Windows([]float64{1, 2, 3}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewFinder(tiny).Discord(arch.NewMeter()); err == nil {
		t.Fatal("series without non-overlapping pairs must be rejected")
	}
}
