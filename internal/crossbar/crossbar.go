// Package crossbar simulates a ReRAM crossbar as described in §II-A of the
// paper (Figs 1–3): an m×m grid of h-bit resistive cells that computes
// analog dot products between an input vector injected on the wordlines
// (rows) and the operand vectors pre-programmed along the bitlines
// (columns).
//
// The simulator is functional and deterministic — it reproduces the
// *digital* value the crossbar pipeline produces, including:
//
//   - weight slicing: a b-bit operand is segmented into ⌈b/h⌉ h-bit parts
//     stored in adjacent cells of the same row (Fig 2), recombined by the
//     shift-and-add (S&A) circuit;
//   - input slicing: a b-bit multiplicand is injected ⌈b/dac⌉ DAC-width
//     slices at a time, one slice per cycle, with S&A recombination;
//   - multi-vector packing: with s-dimensional operands (s ≤ m), each
//     crossbar concurrently stores and processes m·h/b vectors (§V-C).
//
// Cycle counts and cell-write counts (endurance, §V-C) are tracked so
// internal/arch can convert activity into modeled time. Analog
// non-idealities are not modeled; the paper likewise assumes exact analog
// dot products and relies on integer operands for exactness.
package crossbar

import (
	"errors"
	"fmt"
)

// Spec describes the crossbar geometry and peripheral circuit widths.
// The paper's configuration (Table 5) is 256×256 cells of 2-bit precision
// with read/write latencies 29.31/50.88 ns.
type Spec struct {
	M              int     // crossbar is M×M cells
	CellBits       int     // h: bits per cell
	DACBits        int     // input slice width per cycle
	ReadLatencyNs  float64 // latency of one compute cycle
	WriteLatencyNs float64 // latency of programming one row of cells
}

// Validate checks the spec for usability.
func (s Spec) Validate() error {
	switch {
	case s.M <= 0:
		return fmt.Errorf("crossbar: non-positive dimension M=%d", s.M)
	case s.CellBits <= 0 || s.CellBits > 16:
		return fmt.Errorf("crossbar: cell precision h=%d outside [1,16]", s.CellBits)
	case s.DACBits <= 0 || s.DACBits > 16:
		return fmt.Errorf("crossbar: DAC width %d outside [1,16]", s.DACBits)
	case s.ReadLatencyNs <= 0 || s.WriteLatencyNs <= 0:
		return errors.New("crossbar: latencies must be positive")
	}
	return nil
}

// CellsPerOperand returns ⌈b/h⌉, the number of adjacent cells one b-bit
// operand occupies (Fig 2's weight slicing).
func (s Spec) CellsPerOperand(operandBits int) int {
	return (operandBits + s.CellBits - 1) / s.CellBits
}

// VectorsPerCrossbar returns how many s-dimensional b-bit vectors one
// crossbar stores when dims ≤ M: M/⌈b/h⌉ column groups (§V-C: "m·h/b
// objects ... processed concurrently"). Returns 0 if dims > M.
func (s Spec) VectorsPerCrossbar(dims, operandBits int) int {
	if dims > s.M || dims <= 0 {
		return 0
	}
	return s.M / s.CellsPerOperand(operandBits)
}

// InputCycles returns ⌈b/dac⌉, the number of compute cycles needed to
// stream a b-bit input through the DACs.
func (s Spec) InputCycles(inputBits int) int {
	return (inputBits + s.DACBits - 1) / s.DACBits
}

// Crossbar is one programmable m×m tile. Operand vectors are laid out
// along column groups: vector v occupies columns
// [v·cpo, (v+1)·cpo) where cpo = CellsPerOperand, with dimension i of the
// vector in row i (MSB-first cell order within the group).
type Crossbar struct {
	spec  Spec
	cells []uint16 // M×M row-major, each value < 2^CellBits
	// writes counts programming operations per cell for endurance
	// tracking (§V-C motivates avoiding re-programming).
	writes []uint32

	// planes is the word-parallel mirror of cells: for column c and cell
	// bit t, the words planes[(c·h+t)·W : (c·h+t+1)·W] hold one bit per
	// row (row r lives in word r/64, bit r%64) saying whether that cell's
	// level has bit t set. DotAll computes column sums as
	// Σ_t Σ_u 2^(t+u)·popcount(cellPlane_t & inputPlane_u), touching 64
	// cells per uint64 op instead of one. Maintained by ProgramVector and
	// Reset; never read by the endurance or programming paths.
	planes     []uint64
	planeWords int // W = ⌈M/64⌉ words per plane

	opBits int // bits per stored operand (0 until first program)
	dims   int // dimensionality of stored vectors
	nvecs  int // number of vectors currently programmed

	// readFault, when set, models cell-level non-idealities: every read
	// of a cell during DotAll observes readFault(row, col, programmed)
	// instead of the programmed level (internal/fault injects stuck-at
	// and drifted cells through this hook). Programming and endurance
	// accounting always see the true cells.
	readFault ReadFault
}

// ReadFault maps a programmed cell level to the level the analog read
// actually observes. row/col are cell coordinates within the tile; the
// returned level must stay within the cell's range [0, 2^CellBits).
// The hook must be a pure function of its arguments: the word-parallel
// read path materializes each faulted cell once per DotAll call instead
// of once per compute cycle (internal/fault's frozen fault maps satisfy
// this by construction).
type ReadFault func(row, col int, programmed uint16) uint16

// SetReadFault installs (or, with nil, removes) the cell-read fault hook.
func (c *Crossbar) SetReadFault(f ReadFault) { c.readFault = f }

// New creates an empty crossbar. It panics on an invalid spec, since specs
// come from static configuration.
func New(spec Spec) *Crossbar {
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	n := spec.M * spec.M
	w := (spec.M + 63) / 64
	return &Crossbar{
		spec:       spec,
		cells:      make([]uint16, n),
		writes:     make([]uint32, n),
		planes:     make([]uint64, spec.M*spec.CellBits*w),
		planeWords: w,
	}
}

// Spec returns the crossbar's geometry.
func (c *Crossbar) Spec() Spec { return c.spec }

// Vectors returns how many vectors are currently programmed.
func (c *Crossbar) Vectors() int { return c.nvecs }

// Dims returns the dimensionality of the programmed vectors (0 if none).
func (c *Crossbar) Dims() int { return c.dims }

// ProgramVector stores one vector of non-negative operandBits-bit values
// into the next free column group. All vectors programmed into one
// crossbar must share dims and operandBits. Returns the write time in ns
// (rows are written in parallel across the column group: one write op per
// occupied row).
func (c *Crossbar) ProgramVector(values []uint32, operandBits int) (float64, error) {
	if len(values) == 0 || len(values) > c.spec.M {
		return 0, fmt.Errorf("crossbar: vector of %d dims does not fit %d rows", len(values), c.spec.M)
	}
	if operandBits <= 0 || operandBits > 32 {
		return 0, fmt.Errorf("crossbar: operand width %d outside [1,32]", operandBits)
	}
	if c.nvecs > 0 && (len(values) != c.dims || operandBits != c.opBits) {
		return 0, fmt.Errorf("crossbar: mixed layouts (have %d-dim %d-bit, got %d-dim %d-bit)",
			c.dims, c.opBits, len(values), operandBits)
	}
	cpo := c.spec.CellsPerOperand(operandBits)
	if (c.nvecs+1)*cpo > c.spec.M {
		return 0, fmt.Errorf("crossbar: full (%d vectors of %d columns each)", c.nvecs, cpo)
	}
	maxVal := uint64(1)<<uint(operandBits) - 1
	col0 := c.nvecs * cpo
	for row, v := range values {
		if uint64(v) > maxVal {
			return 0, fmt.Errorf("crossbar: value %d exceeds %d-bit operand", v, operandBits)
		}
		// MSB-first cell order, as in Fig 2's '25' → 01|10|01 example.
		for k := 0; k < cpo; k++ {
			shift := uint((cpo - 1 - k) * c.spec.CellBits)
			cell := uint16(v >> shift & (1<<uint(c.spec.CellBits) - 1))
			idx := row*c.spec.M + col0 + k
			c.cells[idx] = cell
			c.writes[idx]++
			c.setPlanes(row, col0+k, cell)
		}
	}
	c.opBits = operandBits
	c.dims = len(values)
	c.nvecs++
	// One row-parallel write op per occupied row.
	return float64(len(values)) * c.spec.WriteLatencyNs, nil
}

// DotAll injects the input vector on the wordlines and returns the dot
// product of the input with every programmed vector, together with the
// number of compute cycles consumed (⌈inputBits/dac⌉ — all columns and all
// weight slices operate concurrently; only input slicing is serial).
//
// The computation is bit-exact: per cycle each column accumulates the
// analog sum of inputSlice×cell products, the ADC digitizes it, and the
// S&A circuit shifts partial results by the DAC width per input cycle and
// by the cell width per weight-slice position. Internally the column sums
// are evaluated word-parallel over bit planes (64 cells per uint64 op);
// DotAllRef retains the cell-at-a-time form and the equivalence harness
// pins the two bit-identical.
func (c *Crossbar) DotAll(input []uint32, inputBits int) ([]int64, int, error) {
	out := make([]int64, c.nvecs)
	cycles, err := c.DotAllInto(input, inputBits, out)
	if err != nil {
		return nil, 0, err
	}
	return out, cycles, nil
}

// DotAllInto is DotAll writing into dst (len must be Vectors()); the
// steady-state query path reuses dst and the pooled plane scratch, so a
// warmed-up simulate-mode query performs no allocations.
func (c *Crossbar) DotAllInto(input []uint32, inputBits int, dst []int64) (int, error) {
	cycles, err := c.checkQuery(input, inputBits)
	if err != nil {
		return 0, err
	}
	if len(dst) != c.nvecs {
		return 0, fmt.Errorf("crossbar: result buffer has %d slots, %d vectors programmed", len(dst), c.nvecs)
	}
	c.dotWordParallel(input, inputBits, dst)
	return cycles, nil
}

// checkQuery validates a query against the programmed layout and returns
// the cycle count.
func (c *Crossbar) checkQuery(input []uint32, inputBits int) (int, error) {
	if c.nvecs == 0 {
		return 0, errors.New("crossbar: no vectors programmed")
	}
	if len(input) != c.dims {
		return 0, fmt.Errorf("crossbar: input has %d dims, stored vectors have %d", len(input), c.dims)
	}
	if inputBits <= 0 || inputBits > 32 {
		return 0, fmt.Errorf("crossbar: input width %d outside [1,32]", inputBits)
	}
	maxVal := uint64(1)<<uint(inputBits) - 1
	for _, v := range input {
		if uint64(v) > maxVal {
			return 0, fmt.Errorf("crossbar: input value %d exceeds %d-bit width", v, inputBits)
		}
	}
	return c.spec.InputCycles(inputBits), nil
}

// DotAllRef is the retained cell-at-a-time reference implementation of
// DotAll — a direct transcription of the Fig 2/3 pipeline, kept as the
// executable specification the kernel-equivalence tests and fuzzers pin
// the word-parallel path against. It must never be optimized.
func (c *Crossbar) DotAllRef(input []uint32, inputBits int) ([]int64, int, error) {
	cycles, err := c.checkQuery(input, inputBits)
	if err != nil {
		return nil, 0, err
	}
	cpo := c.spec.CellsPerOperand(c.opBits)
	dacMask := uint32(1)<<uint(c.spec.DACBits) - 1
	out := make([]int64, c.nvecs)
	for cyc := 0; cyc < cycles; cyc++ {
		// Input slice for this cycle, LSB-first streaming.
		inShift := uint(cyc * c.spec.DACBits)
		for v := 0; v < c.nvecs; v++ {
			col0 := v * cpo
			for k := 0; k < cpo; k++ {
				// Analog column sum for weight-slice k of vector v.
				var colSum int64
				for row := 0; row < c.dims; row++ {
					slice := input[row] >> inShift & dacMask
					if slice == 0 {
						continue
					}
					level := c.cells[row*c.spec.M+col0+k]
					if c.readFault != nil {
						level = c.readFault(row, col0+k, level)
					}
					colSum += int64(slice) * int64(level)
				}
				// S&A: shift by input-cycle position and weight-slice position.
				wShift := uint((cpo - 1 - k) * c.spec.CellBits)
				out[v] += colSum << inShift << wShift
			}
		}
	}
	return out, cycles, nil
}

// Reset clears all programmed vectors (but keeps endurance counters, since
// re-programming is precisely the wear the paper's §V-C avoids).
func (c *Crossbar) Reset() {
	for i := range c.cells {
		c.cells[i] = 0
	}
	for i := range c.planes {
		c.planes[i] = 0
	}
	c.opBits, c.dims, c.nvecs = 0, 0, 0
}

// EnduranceStats summarizes cell wear.
type EnduranceStats struct {
	MaxWrites   uint32
	TotalWrites uint64
	CellsUsed   int
}

// Endurance returns the crossbar's wear statistics.
func (c *Crossbar) Endurance() EnduranceStats {
	var st EnduranceStats
	for _, w := range c.writes {
		if w > 0 {
			st.CellsUsed++
			st.TotalWrites += uint64(w)
			if w > st.MaxWrites {
				st.MaxWrites = w
			}
		}
	}
	return st
}
