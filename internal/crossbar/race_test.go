package crossbar

import (
	"math/rand"
	"sync"
	"testing"
)

// TestScratchPoolConcurrent hammers the shared dot-product scratch pool
// from many goroutines querying distinct crossbars (the serve layer's
// sharded engines do exactly this). Run under -race it proves pooled
// scratch is never shared between in-flight queries; the result check
// proves buffers are re-zeroed correctly on reuse.
func TestScratchPoolConcurrent(t *testing.T) {
	t.Parallel()
	spec := Spec{M: 96, CellBits: 2, DACBits: 2, ReadLatencyNs: 1, WriteLatencyNs: 1}
	const workers = 8
	const iters = 50

	xbs := make([]*Crossbar, workers)
	inputs := make([][]uint32, workers)
	wants := make([][]int64, workers)
	for w := 0; w < workers; w++ {
		rng := rand.New(rand.NewSource(int64(100 + w)))
		xbs[w] = buildRandom(t, spec, rng, 4, 77, 8)
		in := make([]uint32, 77)
		for i := range in {
			in[i] = rng.Uint32() & 0xff
		}
		inputs[w] = in
		want, _, err := xbs[w].DotAllRef(in, 8)
		if err != nil {
			t.Fatal(err)
		}
		wants[w] = want
	}

	var wg sync.WaitGroup
	errs := make(chan string, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			dst := make([]int64, xbs[w].Vectors())
			for it := 0; it < iters; it++ {
				if _, err := xbs[w].DotAllInto(inputs[w], 8, dst); err != nil {
					errs <- err.Error()
					return
				}
				for v := range dst {
					if dst[v] != wants[w][v] {
						errs <- "concurrent DotAllInto diverged from reference"
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}
