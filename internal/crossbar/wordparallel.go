package crossbar

import (
	"math/bits"
	"sync"
)

// This file holds the word-parallel DotAll kernel: instead of walking the
// grid cell by cell, the column sums of §II-A are computed over *bit
// planes*. For cell bit t and input-slice bit u,
//
//	Σ_row slice(row)·level(row) = Σ_t Σ_u 2^(t+u) · |{row : level_t ∧ slice_u}|
//
// and the set intersection over up to 64 rows is one AND + POPCNT on a
// uint64 — the same transformation real bit-serial PIM substrates apply,
// here reused to make the *simulation* of the analog array word-parallel.
// With the paper's Table 5 spec (2-bit cells, 2-bit DACs, 256 rows) the
// inner loop shrinks from 256 multiply-adds to 4·⌈256/64⌉ = 16 word ops
// per column. Results are bit-identical to DotAllRef: both evaluate the
// exact same integer column sums, only the summation order over rows
// changes (integer addition is associative, unlike the float kernels in
// internal/vec which preserve evaluation order instead).

// dotScratch is the per-call scratch of the word-parallel kernel: input
// bit planes for one cycle and, when a read-fault hook is installed, the
// faulted cell planes materialized once per call. Pooled so steady-state
// queries are allocation-free and concurrent queries on different
// crossbars never share a buffer (each Get is exclusive until Put).
type dotScratch struct {
	in      []uint64 // DACBits×W input planes for the current cycle
	faulted []uint64 // usedCols×CellBits×W faulted cell planes
}

var scratchPool = sync.Pool{New: func() any { return new(dotScratch) }}

// grow returns s[:n], reallocating when the capacity is short. The
// contents are undefined; callers zero what they use.
func grow(s []uint64, n int) []uint64 {
	if cap(s) < n {
		return make([]uint64, n)
	}
	return s[:n]
}

// setPlanes mirrors one programmed cell into the bit planes. Cells are
// written at most once per program (column groups are always fresh and
// Reset clears the planes), so bits only ever need setting.
func (c *Crossbar) setPlanes(row, col int, level uint16) {
	w := c.planeWords
	base := col*c.spec.CellBits*w + row>>6
	bit := uint64(1) << (uint(row) & 63)
	for t := 0; t < c.spec.CellBits; t++ {
		if level>>uint(t)&1 == 1 {
			c.planes[base+t*w] |= bit
		}
	}
}

// faultedPlanes materializes the bit planes the analog read observes under
// the installed read-fault hook, covering the occupied columns only. The
// hook is required to be pure (see ReadFault), so reading each cell once
// per call is equivalent to the reference's once-per-cycle reads.
func (c *Crossbar) faultedPlanes(sc *dotScratch, usedCols int) []uint64 {
	h := c.spec.CellBits
	w := c.planeWords
	sc.faulted = grow(sc.faulted, usedCols*h*w)
	fp := sc.faulted
	for i := range fp {
		fp[i] = 0
	}
	m := c.spec.M
	for row := 0; row < c.dims; row++ {
		bit := uint64(1) << (uint(row) & 63)
		word := row >> 6
		for col := 0; col < usedCols; col++ {
			level := c.readFault(row, col, c.cells[row*m+col])
			base := col*h*w + word
			for t := 0; t < h; t++ {
				if level>>uint(t)&1 == 1 {
					fp[base+t*w] |= bit
				}
			}
		}
	}
	return fp
}

// dotWordParallel accumulates the dot product of input with every
// programmed vector into out (len == nvecs, pre-zeroed by callers via
// make or explicit clearing below).
func (c *Crossbar) dotWordParallel(input []uint32, inputBits int, out []int64) {
	for i := range out {
		out[i] = 0
	}
	spec := c.spec
	h := spec.CellBits
	dac := spec.DACBits
	w := c.planeWords
	cpo := spec.CellsPerOperand(c.opBits)
	cycles := spec.InputCycles(inputBits)
	dacMask := uint32(1)<<uint(dac) - 1
	usedCols := c.nvecs * cpo

	sc := scratchPool.Get().(*dotScratch)
	planes := c.planes
	if c.readFault != nil {
		planes = c.faultedPlanes(sc, usedCols)
	}
	sc.in = grow(sc.in, dac*w)
	in := sc.in

	for cyc := 0; cyc < cycles; cyc++ {
		inShift := uint(cyc * dac)
		// Build the input bit planes for this cycle (LSB-first streaming,
		// exactly the slice the DACs inject in the reference).
		for i := range in {
			in[i] = 0
		}
		for row := 0; row < c.dims; row++ {
			slice := input[row] >> inShift & dacMask
			for slice != 0 {
				u := bits.TrailingZeros32(slice)
				in[u*w+row>>6] |= 1 << (uint(row) & 63)
				slice &= slice - 1
			}
		}
		for v := 0; v < c.nvecs; v++ {
			col0 := v * cpo
			for k := 0; k < cpo; k++ {
				cp := planes[(col0+k)*h*w : (col0+k+1)*h*w]
				var colSum int64
				for t := 0; t < h; t++ {
					tp := cp[t*w : t*w+w]
					for u := 0; u < dac; u++ {
						up := in[u*w : u*w+w]
						pc := 0
						for i := 0; i < len(tp) && i < len(up); i++ {
							pc += bits.OnesCount64(tp[i] & up[i])
						}
						colSum += int64(pc) << uint(t+u)
					}
				}
				// S&A: shift by input-cycle and weight-slice position,
				// identically to the reference.
				wShift := uint((cpo - 1 - k) * h)
				out[v] += colSum << inShift << wShift
			}
		}
	}
	scratchPool.Put(sc)
}
