package crossbar

import (
	"math/rand"
	"testing"
)

// paperSpec is the Table 5 crossbar: 256×256 2-bit cells.
func paperSpec() Spec {
	return Spec{M: 256, CellBits: 2, DACBits: 2, ReadLatencyNs: 29.31, WriteLatencyNs: 50.88}
}

// tinySpec matches the 3×3 2-bit examples of Figs 1–3.
func tinySpec() Spec {
	return Spec{M: 3, CellBits: 2, DACBits: 2, ReadLatencyNs: 1, WriteLatencyNs: 1}
}

func TestSpecValidate(t *testing.T) {
	good := paperSpec()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, mutate := range []func(*Spec){
		func(s *Spec) { s.M = 0 },
		func(s *Spec) { s.CellBits = 0 },
		func(s *Spec) { s.CellBits = 17 },
		func(s *Spec) { s.DACBits = 0 },
		func(s *Spec) { s.ReadLatencyNs = 0 },
		func(s *Spec) { s.WriteLatencyNs = -1 },
	} {
		s := paperSpec()
		mutate(&s)
		if s.Validate() == nil {
			t.Errorf("Validate accepted bad spec %+v", s)
		}
	}
}

func TestGeometryHelpers(t *testing.T) {
	s := paperSpec()
	if got := s.CellsPerOperand(32); got != 16 {
		t.Fatalf("CellsPerOperand(32) = %d, want 16", got)
	}
	if got := s.CellsPerOperand(6); got != 3 {
		t.Fatalf("CellsPerOperand(6) = %d, want 3 (Fig 2)", got)
	}
	// §V-C: m·h/b objects per crossbar = 256·2/32 = 16.
	if got := s.VectorsPerCrossbar(100, 32); got != 16 {
		t.Fatalf("VectorsPerCrossbar = %d, want 16", got)
	}
	if got := s.VectorsPerCrossbar(300, 32); got != 0 {
		t.Fatalf("VectorsPerCrossbar(dims>M) = %d, want 0", got)
	}
	if got := s.InputCycles(32); got != 16 {
		t.Fatalf("InputCycles(32) = %d, want 16", got)
	}
	if got := s.InputCycles(3); got != 2 {
		t.Fatalf("InputCycles(3) = %d, want 2", got)
	}
}

// Fig 1's example: vectors [3,1,0],[1,2,3],[2,0,1] programmed on a 3×3
// crossbar, input [3,1,2] → outputs 10, 11, 8.
func TestFig1Example(t *testing.T) {
	c := New(tinySpec())
	for _, v := range [][]uint32{{3, 1, 0}, {1, 2, 3}, {2, 0, 1}} {
		if _, err := c.ProgramVector(v, 2); err != nil {
			t.Fatal(err)
		}
	}
	out, cycles, err := c.DotAll([]uint32{3, 1, 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{10, 11, 8}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("Fig 1 outputs = %v, want %v", out, want)
		}
	}
	if cycles != 1 {
		t.Fatalf("2-bit input on 2-bit DAC should take 1 cycle, got %d", cycles)
	}
}

// Fig 2's example: 6-bit operands [9,20] and [25,14] on 2-bit cells;
// [25,14]·[9,20] = 225+280 = 505 (the figure's final S&A result).
func TestFig2HighPrecision(t *testing.T) {
	spec := tinySpec()
	c := New(spec)
	// Store [25, 14] as a 2-dim 6-bit vector: each operand spans 3 cells.
	if _, err := c.ProgramVector([]uint32{25, 14}, 6); err != nil {
		t.Fatal(err)
	}
	out, cycles, err := c.DotAll([]uint32{9, 20}, 6)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 505 {
		t.Fatalf("Fig 2 dot = %d, want 505", out[0])
	}
	if cycles != 3 {
		t.Fatalf("6-bit input on 2-bit DAC should take 3 cycles, got %d", cycles)
	}
}

// Property: the bit-sliced pipeline equals a plain integer dot product for
// random widths, dimensions and cell precisions.
func TestDotAllMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 200; trial++ {
		m := 1 + rng.Intn(32)
		h := []int{1, 2, 4}[rng.Intn(3)]
		dac := []int{1, 2, 4}[rng.Intn(3)]
		spec := Spec{M: m, CellBits: h, DACBits: dac, ReadLatencyNs: 1, WriteLatencyNs: 1}
		c := New(spec)
		opBits := 1 + rng.Intn(20)
		dims := 1 + rng.Intn(m)
		capVecs := spec.VectorsPerCrossbar(dims, opBits)
		if capVecs == 0 {
			continue // operand too wide for this tiny crossbar
		}
		nvec := 1 + rng.Intn(capVecs)
		vecs := make([][]uint32, nvec)
		maxVal := uint32(1)<<uint(opBits) - 1
		for v := range vecs {
			vecs[v] = make([]uint32, dims)
			for i := range vecs[v] {
				vecs[v][i] = rng.Uint32() % (maxVal + 1)
			}
			if _, err := c.ProgramVector(vecs[v], opBits); err != nil {
				t.Fatalf("trial %d: program: %v", trial, err)
			}
		}
		input := make([]uint32, dims)
		for i := range input {
			input[i] = rng.Uint32() % (maxVal + 1)
		}
		out, _, err := c.DotAll(input, opBits)
		if err != nil {
			t.Fatalf("trial %d: dot: %v", trial, err)
		}
		for v := range vecs {
			var want int64
			for i := range input {
				want += int64(vecs[v][i]) * int64(input[i])
			}
			if out[v] != want {
				t.Fatalf("trial %d (m=%d h=%d dac=%d b=%d): vec %d got %d want %d",
					trial, m, h, dac, opBits, v, out[v], want)
			}
		}
	}
}

func TestProgramValidation(t *testing.T) {
	c := New(tinySpec())
	if _, err := c.ProgramVector([]uint32{1, 2, 3, 4}, 2); err == nil {
		t.Fatal("vector longer than M must be rejected")
	}
	if _, err := c.ProgramVector([]uint32{5}, 2); err == nil {
		t.Fatal("value exceeding operand width must be rejected")
	}
	if _, err := c.ProgramVector([]uint32{1}, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ProgramVector([]uint32{1, 2}, 2); err == nil {
		t.Fatal("mixed dimensionalities must be rejected")
	}
	if _, err := c.ProgramVector([]uint32{1}, 4); err == nil {
		t.Fatal("mixed operand widths must be rejected")
	}
}

func TestCrossbarFull(t *testing.T) {
	c := New(tinySpec()) // 3 columns, 2-bit cells
	// 4-bit operands need 2 cells → only 1 vector fits in 3 columns.
	if _, err := c.ProgramVector([]uint32{7}, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ProgramVector([]uint32{7}, 4); err == nil {
		t.Fatal("overfilling the crossbar must be rejected")
	}
}

func TestDotAllValidation(t *testing.T) {
	c := New(tinySpec())
	if _, _, err := c.DotAll([]uint32{1}, 2); err == nil {
		t.Fatal("DotAll on empty crossbar must fail")
	}
	if _, err := c.ProgramVector([]uint32{1, 2}, 2); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.DotAll([]uint32{1}, 2); err == nil {
		t.Fatal("input dimensionality mismatch must fail")
	}
	if _, _, err := c.DotAll([]uint32{9, 9}, 2); err == nil {
		t.Fatal("input value exceeding width must fail")
	}
}

func TestEnduranceTracking(t *testing.T) {
	c := New(tinySpec())
	if _, err := c.ProgramVector([]uint32{1, 2, 3}, 2); err != nil {
		t.Fatal(err)
	}
	st := c.Endurance()
	if st.CellsUsed != 3 || st.MaxWrites != 1 || st.TotalWrites != 3 {
		t.Fatalf("endurance after one program = %+v", st)
	}
	c.Reset()
	if c.Vectors() != 0 {
		t.Fatal("Reset must clear vectors")
	}
	if _, err := c.ProgramVector([]uint32{1, 2, 3}, 2); err != nil {
		t.Fatal(err)
	}
	if st := c.Endurance(); st.MaxWrites != 2 {
		t.Fatalf("re-programming must accumulate wear, got %+v", st)
	}
}

func TestProgramWriteTime(t *testing.T) {
	spec := tinySpec()
	c := New(spec)
	ns, err := c.ProgramVector([]uint32{1, 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ns != 2*spec.WriteLatencyNs {
		t.Fatalf("write time = %v, want one write op per occupied row", ns)
	}
}
