package crossbar

import (
	"math/rand"
	"testing"
)

// buildRandom programs nvecs random dims-dim opBits-bit vectors into a
// fresh crossbar of the given spec.
func buildRandom(t testing.TB, spec Spec, rng *rand.Rand, nvecs, dims, opBits int) *Crossbar {
	t.Helper()
	c := New(spec)
	maxVal := uint64(1)<<uint(opBits) - 1
	for v := 0; v < nvecs; v++ {
		vals := make([]uint32, dims)
		for i := range vals {
			vals[i] = uint32(rng.Uint64() & maxVal)
		}
		if _, err := c.ProgramVector(vals, opBits); err != nil {
			t.Fatalf("ProgramVector: %v", err)
		}
	}
	return c
}

// TestDotAllMatchesRef pins the word-parallel DotAll bit-identical to the
// retained cell-at-a-time reference across a grid of geometries, operand
// widths and edge sizes (1 dim, non-multiple-of-64 dims, full crossbars).
func TestDotAllMatchesRef(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(7))
	specs := []Spec{
		{M: 256, CellBits: 2, DACBits: 2, ReadLatencyNs: 29.31, WriteLatencyNs: 50.88}, // Table 5
		{M: 64, CellBits: 1, DACBits: 1, ReadLatencyNs: 1, WriteLatencyNs: 1},
		{M: 65, CellBits: 3, DACBits: 4, ReadLatencyNs: 1, WriteLatencyNs: 1},
		{M: 16, CellBits: 16, DACBits: 16, ReadLatencyNs: 1, WriteLatencyNs: 1},
		{M: 3, CellBits: 5, DACBits: 7, ReadLatencyNs: 1, WriteLatencyNs: 1},
	}
	for _, spec := range specs {
		for _, opBits := range []int{1, 2, 7, 8, 17, 32} {
			cpo := spec.CellsPerOperand(opBits)
			maxVecs := spec.M / cpo
			if maxVecs == 0 {
				continue
			}
			for _, dims := range []int{1, 2, spec.M/2 + 1, spec.M} {
				if dims <= 0 || dims > spec.M {
					continue
				}
				nvecs := rng.Intn(maxVecs) + 1
				c := buildRandom(t, spec, rng, nvecs, dims, opBits)
				for _, inBits := range []int{1, 3, 8, 32} {
					input := make([]uint32, dims)
					maxIn := uint64(1)<<uint(inBits) - 1
					for i := range input {
						input[i] = uint32(rng.Uint64() & maxIn)
					}
					want, wantCyc, err := c.DotAllRef(input, inBits)
					if err != nil {
						t.Fatalf("DotAllRef: %v", err)
					}
					got, gotCyc, err := c.DotAll(input, inBits)
					if err != nil {
						t.Fatalf("DotAll: %v", err)
					}
					if gotCyc != wantCyc {
						t.Fatalf("spec=%+v opBits=%d dims=%d: cycles %d, ref %d", spec, opBits, dims, gotCyc, wantCyc)
					}
					for v := range want {
						if got[v] != want[v] {
							t.Fatalf("spec M=%d h=%d dac=%d opBits=%d dims=%d inBits=%d vec %d: dot %d, ref %d",
								spec.M, spec.CellBits, spec.DACBits, opBits, dims, inBits, v, got[v], want[v])
						}
					}
				}
			}
		}
	}
}

// TestDotAllMatchesRefFaulted pins the equivalence with a read-fault hook
// installed: the word-parallel path materializes faulted planes once per
// call, the reference consults the hook per cycle; both must agree because
// the hook is pure.
func TestDotAllMatchesRefFaulted(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(11))
	spec := Spec{M: 96, CellBits: 2, DACBits: 2, ReadLatencyNs: 1, WriteLatencyNs: 1}
	c := buildRandom(t, spec, rng, 5, 77, 8)
	maxLevel := uint16(1)<<uint(spec.CellBits) - 1
	c.SetReadFault(func(row, col int, level uint16) uint16 {
		// Deterministic stuck-at-style perturbation.
		if (row*31+col*17)%5 == 0 {
			return maxLevel
		}
		if (row+col)%7 == 0 {
			return level &^ 1
		}
		return level
	})
	input := make([]uint32, 77)
	for i := range input {
		input[i] = rng.Uint32() & 0xff
	}
	want, _, err := c.DotAllRef(input, 8)
	if err != nil {
		t.Fatalf("DotAllRef: %v", err)
	}
	got, _, err := c.DotAll(input, 8)
	if err != nil {
		t.Fatalf("DotAll: %v", err)
	}
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("faulted vec %d: dot %d, ref %d", v, got[v], want[v])
		}
	}
	// Removing the hook must restore the clean planes exactly.
	c.SetReadFault(nil)
	clean, _, err := c.DotAllRef(input, 8)
	if err != nil {
		t.Fatalf("DotAllRef clean: %v", err)
	}
	got, _, err = c.DotAll(input, 8)
	if err != nil {
		t.Fatalf("DotAll clean: %v", err)
	}
	for v := range clean {
		if got[v] != clean[v] {
			t.Fatalf("clean vec %d: dot %d, ref %d", v, got[v], clean[v])
		}
	}
}

// TestDotAllAfterReset verifies the bit planes are rebuilt correctly after
// Reset + re-program (Reset must clear them or stale bits would corrupt
// the word-parallel sums).
func TestDotAllAfterReset(t *testing.T) {
	t.Parallel()
	spec := Spec{M: 8, CellBits: 2, DACBits: 2, ReadLatencyNs: 1, WriteLatencyNs: 1}
	c := New(spec)
	if _, err := c.ProgramVector([]uint32{3, 3, 3}, 2); err != nil {
		t.Fatal(err)
	}
	c.Reset()
	if _, err := c.ProgramVector([]uint32{1, 0, 2}, 2); err != nil {
		t.Fatal(err)
	}
	input := []uint32{1, 1, 1}
	want, _, err := c.DotAllRef(input, 2)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := c.DotAll(input, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != want[0] || got[0] != 3 {
		t.Fatalf("after reset: dot %d, ref %d, want 3", got[0], want[0])
	}
}

// FuzzCrossbarEquivalence drives random geometries, cell/DAC widths,
// operand widths and payload bytes through both DotAll implementations and
// requires bit-identical dots and cycle counts.
func FuzzCrossbarEquivalence(f *testing.F) {
	f.Add([]byte("0123456789abcdef0123456789abcdef"), []byte("fedcba98"), byte(2), byte(2), byte(8), byte(8), byte(16))
	f.Add([]byte("00"), []byte("7"), byte(1), byte(1), byte(1), byte(1), byte(4))
	f.Add([]byte("\xff\xff\xff\xff\xff\xff\xff\xff"), []byte("\xff\xff"), byte(16), byte(16), byte(32), byte(32), byte(8))
	f.Add([]byte("abcdefghij"), []byte("klm"), byte(3), byte(5), byte(7), byte(11), byte(65))
	f.Fuzz(func(t *testing.T, payload, query []byte, hRaw, dacRaw, opRaw, inRaw, mRaw byte) {
		h := int(hRaw)%16 + 1
		dac := int(dacRaw)%16 + 1
		opBits := int(opRaw)%32 + 1
		inBits := int(inRaw)%32 + 1
		m := int(mRaw)%96 + 1
		spec := Spec{M: m, CellBits: h, DACBits: dac, ReadLatencyNs: 1, WriteLatencyNs: 1}
		cpo := spec.CellsPerOperand(opBits)
		maxVecs := m / cpo
		if maxVecs == 0 || len(query) == 0 {
			return
		}
		dims := len(query)
		if dims > m {
			dims = m
		}
		maxOp := uint64(1)<<uint(opBits) - 1
		maxIn := uint64(1)<<uint(inBits) - 1
		nvecs := len(payload) / dims
		if nvecs > maxVecs {
			nvecs = maxVecs
		}
		if nvecs == 0 {
			return
		}
		c := New(spec)
		vals := make([]uint32, dims)
		for v := 0; v < nvecs; v++ {
			for i := range vals {
				vals[i] = uint32(uint64(payload[v*dims+i]) * 0x9e3779b1 & maxOp)
			}
			if _, err := c.ProgramVector(vals, opBits); err != nil {
				t.Fatalf("ProgramVector: %v", err)
			}
		}
		input := make([]uint32, dims)
		for i := range input {
			input[i] = uint32(uint64(query[i]) * 0x85ebca77 & maxIn)
		}
		want, wantCyc, err := c.DotAllRef(input, inBits)
		if err != nil {
			t.Fatalf("DotAllRef: %v", err)
		}
		got, gotCyc, err := c.DotAll(input, inBits)
		if err != nil {
			t.Fatalf("DotAll: %v", err)
		}
		if gotCyc != wantCyc {
			t.Fatalf("cycles %d, ref %d", gotCyc, wantCyc)
		}
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("m=%d h=%d dac=%d op=%d in=%d dims=%d vec %d: dot %d, ref %d",
					m, h, dac, opBits, inBits, dims, v, got[v], want[v])
			}
		}
	})
}
