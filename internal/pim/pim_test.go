package pim

import (
	"math/rand"
	"testing"

	"pimmine/internal/arch"
)

func TestNumCrossbarsDefault(t *testing.T) {
	cfg := arch.Default()
	// §VI-A: "there are default 131072 crossbars in PIM array".
	if got := cfg.NumCrossbars(); got != 131072 {
		t.Fatalf("NumCrossbars = %d, want 131072", got)
	}
}

func TestDivisors(t *testing.T) {
	got := Divisors(12)
	want := []int{1, 2, 3, 4, 6, 12}
	if len(got) != len(want) {
		t.Fatalf("Divisors(12) = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Divisors(12) = %v, want %v", got, want)
		}
	}
	if Divisors(0) != nil || Divisors(-3) != nil {
		t.Fatal("Divisors of non-positive must be nil")
	}
}

// Theorem 4 reproduces the paper's compressed dimensionalities when sized
// against the full Table 6 cardinalities with the two LB_PIM-FNN payloads:
// s=105 for MSD (d=420) and s=50 for ImageNet (d=150) — §VI-C.
func TestChooseSPaperValues(t *testing.T) {
	cm := ModelFor(arch.Default())
	if s := cm.ChooseS(992272, Divisors(420), 2); s != 105 {
		t.Fatalf("MSD: ChooseS = %d, want 105", s)
	}
	if s := cm.ChooseS(2340173, Divisors(150), 2); s != 50 {
		t.Fatalf("ImageNet: ChooseS = %d, want 50", s)
	}
}

func TestChooseSLargerDatasetSmallerS(t *testing.T) {
	cm := ModelFor(arch.Default())
	cands := Divisors(960)
	s1 := cm.ChooseS(1_000_000, cands, 2)
	s2 := cm.ChooseS(4_000_000, cands, 2)
	if s2 > s1 {
		t.Fatalf("larger dataset must not get larger s (%d vs %d)", s2, s1)
	}
	if s1 == 0 || s2 == 0 {
		t.Fatalf("both should fit at some granularity (s1=%d s2=%d)", s1, s2)
	}
}

// Fits is exactly the Theorem 4 predicate: the chosen s fits and the next
// larger candidate does not.
func TestChooseSIsMaximal(t *testing.T) {
	cm := ModelFor(arch.Default())
	n := 992272
	cands := Divisors(420)
	s := cm.ChooseS(n, cands, 2)
	if !cm.Fits(n, s, 2) {
		t.Fatalf("chosen s=%d does not fit", s)
	}
	for _, c := range cands {
		if c > s && cm.Fits(n, c, 2) {
			t.Fatalf("candidate %d > s=%d also fits; ChooseS not maximal", c, s)
		}
	}
}

func TestGatherCost(t *testing.T) {
	cm := CapacityModel{M: 2, CellBits: 2, OperandBits: 2, Crossbars: 1 << 20, Utilization: 1}
	// Fig 11: s=8, m=2 → per object-group, 4 data parts; gather levels sum
	// ⌈4/2⌉ + ⌈2/2⌉ = 2 + 1 = 3 crossbars; 2 reduction stages.
	if lv := cm.GatherLevels(8); lv != 2 {
		t.Fatalf("GatherLevels(8) = %d, want 2", lv)
	}
	_, ng := cm.Cost(2, 8) // 2 objects, groups = ceil(2·2/(2·2)) = 1
	if ng != 3 {
		t.Fatalf("gather crossbars = %d, want 3 (Fig 11)", ng)
	}
	if lv := cm.GatherLevels(2); lv != 0 {
		t.Fatalf("GatherLevels(s≤m) = %d, want 0", lv)
	}
}

func TestMaxFitting(t *testing.T) {
	cm := ModelFor(arch.Default())
	n := 992272
	got := cm.MaxFitting(n, 420, 2)
	if !cm.Fits(n, got, 2) || (got < 420 && cm.Fits(n, got+1, 2)) {
		t.Fatalf("MaxFitting = %d is not the boundary", got)
	}
	// Must bracket the divisor-constrained answer 105 ≤ got < 210·? — the
	// unconstrained maximum is at least the best divisor.
	if got < 105 {
		t.Fatalf("MaxFitting = %d < divisor answer 105", got)
	}
	if cm.MaxFitting(1, 0, 1) != 0 {
		t.Fatal("MaxFitting with zero limit must be 0")
	}
}

// smallCfg returns an architecture with tiny crossbars so simulate mode is
// cheap, and a small operand width matching the quantized test data.
func smallCfg() arch.Config {
	cfg := arch.Default()
	cfg.Crossbar.M = 8
	cfg.OperandBits = 8
	cfg.PIMArrayBytes = 1 << 20
	return cfg
}

func TestEngineExactMatchesSimulate(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 20; trial++ {
		cfg := smallCfg()
		n := 1 + rng.Intn(40)
		dims := 1 + rng.Intn(30) // exercises multi-chunk payloads (dims > M=8)
		rows := make([][]uint32, n)
		for i := range rows {
			rows[i] = make([]uint32, dims)
			for j := range rows[i] {
				rows[i][j] = rng.Uint32() % 256
			}
		}
		input := make([]uint32, dims)
		for j := range input {
			input[j] = rng.Uint32() % 256
		}
		rowFn := func(i int) []uint32 { return rows[i] }

		exact, err := NewEngine(cfg, ModeExact)
		if err != nil {
			t.Fatal(err)
		}
		sim, err := NewEngine(cfg, ModeSimulate)
		if err != nil {
			t.Fatal(err)
		}
		pe, err := exact.Program("t", n, dims, 1, rowFn)
		if err != nil {
			t.Fatal(err)
		}
		ps, err := sim.Program("t", n, dims, 1, rowFn)
		if err != nil {
			t.Fatal(err)
		}
		me, ms := arch.NewMeter(), arch.NewMeter()
		outE, err := exact.QueryAll(me, "f", pe, input, nil)
		if err != nil {
			t.Fatal(err)
		}
		outS, err := sim.QueryAll(ms, "f", ps, input, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := range outE {
			if outE[i] != outS[i] {
				t.Fatalf("trial %d (n=%d dims=%d): exact[%d]=%d simulate=%d",
					trial, n, dims, i, outE[i], outS[i])
			}
		}
		// Identical activity accounting in both modes.
		if me.Get("f") != ms.Get("f") {
			t.Fatalf("meters diverge: exact=%+v simulate=%+v", me.Get("f"), ms.Get("f"))
		}
	}
}

func TestEngineMeterAccounting(t *testing.T) {
	cfg := smallCfg()
	eng, err := NewEngine(cfg, ModeExact)
	if err != nil {
		t.Fatal(err)
	}
	n, dims := 10, 4
	rows := make([][]uint32, n)
	for i := range rows {
		rows[i] = make([]uint32, dims)
	}
	p, err := eng.Program("t", n, dims, 1, func(i int) []uint32 { return rows[i] })
	if err != nil {
		t.Fatal(err)
	}
	m := arch.NewMeter()
	if _, err := eng.QueryAll(m, "f", p, make([]uint32, dims), nil); err != nil {
		t.Fatal(err)
	}
	c := m.Get("f")
	wantCycles := int64(cfg.Crossbar.InputCycles(cfg.OperandBits)) // dims ≤ M → no gather
	if c.PIMCycles != wantCycles {
		t.Fatalf("PIMCycles = %d, want %d", c.PIMCycles, wantCycles)
	}
	if c.PIMBufBytes != int64(n)*8 {
		t.Fatalf("PIMBufBytes = %d, want %d", c.PIMBufBytes, n*8)
	}
}

func TestEngineRejectsOversizedAndDuplicate(t *testing.T) {
	cfg := smallCfg()
	cfg.PIMArrayBytes = 64 // tiny: 64B → 4096 bits → 2 crossbars of 8×8×4... force overflow
	cfg.Crossbar.M = 8
	eng, err := NewEngine(cfg, ModeExact)
	if err != nil {
		t.Fatal(err)
	}
	row := func(i int) []uint32 { return make([]uint32, 8) }
	if _, err := eng.Program("big", 100000, 8, 1, row); err == nil {
		t.Fatal("oversized payload must be rejected (re-programming burns endurance)")
	}
	cfg2 := smallCfg()
	eng2, _ := NewEngine(cfg2, ModeExact)
	if _, err := eng2.Program("p", 4, 8, 1, row); err != nil {
		t.Fatal(err)
	}
	if _, err := eng2.Program("p", 4, 8, 1, row); err == nil {
		t.Fatal("duplicate payload name must be rejected")
	}
}

func TestProgramCost(t *testing.T) {
	cfg := smallCfg()
	eng, _ := NewEngine(cfg, ModeExact)
	n, dims := 16, 8
	rows := func(i int) []uint32 { return make([]uint32, dims) }
	p, err := eng.Program("t", n, dims, 1, rows)
	if err != nil {
		t.Fatal(err)
	}
	cost := p.Cost()
	if cost.Bytes != int64(n*dims)*int64(cfg.OperandBits)/8 {
		t.Fatalf("payload bytes = %d", cost.Bytes)
	}
	if cost.WriteNs <= 0 || cost.BusNs <= 0 || cost.TotalNs() != cost.WriteNs+cost.BusNs {
		t.Fatalf("inconsistent program cost %+v", cost)
	}
	m := arch.NewMeter()
	RecordProgramCost(m, "pre", p)
	if m.Get("pre").PIMWriteNs != cost.TotalNs() {
		t.Fatal("RecordProgramCost must charge the meter")
	}
}

func TestQueryAllValidation(t *testing.T) {
	eng, _ := NewEngine(smallCfg(), ModeExact)
	p, err := eng.Program("t", 2, 4, 1, func(i int) []uint32 { return make([]uint32, 4) })
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.QueryAll(arch.NewMeter(), "f", p, make([]uint32, 3), nil); err == nil {
		t.Fatal("dimension mismatch must be rejected")
	}
}

func TestQueryAllParallelCriticalPath(t *testing.T) {
	cfg := smallCfg()
	eng, err := NewEngine(cfg, ModeExact)
	if err != nil {
		t.Fatal(err)
	}
	n, dims := 12, 4
	rows := make([][]uint32, n)
	for i := range rows {
		rows[i] = []uint32{uint32(i), uint32(i + 1), uint32(i + 2), uint32(i + 3)}
	}
	rowFn := func(i int) []uint32 { return rows[i] }
	pa, err := eng.Program("a", n, dims, 2, rowFn)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := eng.Program("b", n, dims, 2, rowFn)
	if err != nil {
		t.Fatal(err)
	}
	input := []uint32{1, 2, 3, 4}

	seq := arch.NewMeter()
	wantA, err := eng.QueryAll(seq, "f", pa, input, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.QueryAll(seq, "f", pb, input, nil); err != nil {
		t.Fatal(err)
	}

	par := arch.NewMeter()
	dsts, err := eng.QueryAllParallel(par, "f", []*Payload{pa, pb}, [][]uint32{input, input}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range wantA {
		if dsts[0][i] != wantA[i] || dsts[1][i] != wantA[i] {
			t.Fatalf("parallel results diverge at %d", i)
		}
	}
	// Same buffer traffic, half the cycles (two equal payloads).
	if par.Get("f").PIMBufBytes != seq.Get("f").PIMBufBytes {
		t.Fatalf("buffer bytes: parallel %d, sequential %d", par.Get("f").PIMBufBytes, seq.Get("f").PIMBufBytes)
	}
	if par.Get("f").PIMCycles*2 != seq.Get("f").PIMCycles {
		t.Fatalf("cycles: parallel %d, sequential %d (want half)", par.Get("f").PIMCycles, seq.Get("f").PIMCycles)
	}
}

func TestQueryAllParallelValidation(t *testing.T) {
	eng, _ := NewEngine(smallCfg(), ModeExact)
	if _, err := eng.QueryAllParallel(arch.NewMeter(), "f", nil, nil, nil); err == nil {
		t.Fatal("empty payload list must be rejected")
	}
	p, err := eng.Program("x", 2, 4, 1, func(i int) []uint32 { return make([]uint32, 4) })
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.QueryAllParallel(arch.NewMeter(), "f", []*Payload{p}, nil, nil); err == nil {
		t.Fatal("input count mismatch must be rejected")
	}
}
