package pim

import (
	"testing"
	"testing/quick"

	"pimmine/internal/arch"
)

// Property: Theorem 4's cost is monotone in n and s, and Fits is
// consistent with it (adding vectors or dimensions never makes a
// non-fitting payload fit).
func TestCapacityMonotonicityQuick(t *testing.T) {
	cm := ModelFor(arch.Default())
	f := func(nRaw, sRaw uint16, grow uint8) bool {
		n := int(nRaw)%100000 + 1
		s := int(sRaw)%2000 + 1
		dn := int(grow%16) + 1
		nd1, ng1 := cm.Cost(n, s)
		nd2, ng2 := cm.Cost(n+dn, s)
		nd3, ng3 := cm.Cost(n, s+dn)
		if nd2 < nd1 || nd3 < nd1 {
			return false // data crossbars must not shrink
		}
		if ng2+nd2 < ng1+nd1 || ng3+nd3 < ng1+nd1 {
			return false // total demand must not shrink
		}
		// Fits consistency: a fitting larger payload implies the smaller fits.
		if cm.Fits(n+dn, s, 2) && !cm.Fits(n, s, 2) {
			return false
		}
		if cm.Fits(n, s+dn, 2) && !cm.Fits(n, s, 2) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: ChooseS over the divisors of d always returns either 0 or a
// maximal fitting divisor, and MaxFitting brackets it from above.
func TestChooseSQuick(t *testing.T) {
	cm := ModelFor(arch.Default())
	f := func(dRaw uint16, nRaw uint32) bool {
		d := int(dRaw)%4096 + 1
		n := int(nRaw)%5000000 + 1
		cands := Divisors(d)
		s := cm.ChooseS(n, cands, 2)
		if s == 0 {
			// nothing fits — then not even s=1 may fit
			return !cm.Fits(n, 1, 2)
		}
		if d%s != 0 || !cm.Fits(n, s, 2) {
			return false
		}
		for _, c := range cands {
			if c > s && cm.Fits(n, c, 2) {
				return false
			}
		}
		return cm.MaxFitting(n, d, 2) >= s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: binary payloads (1-bit operands) never demand more crossbars
// than the same shape at the default width.
func TestBinaryPackingQuick(t *testing.T) {
	cm := ModelFor(arch.Default())
	f := func(nRaw uint32, sRaw uint16) bool {
		n := int(nRaw)%10000000 + 1
		s := int(sRaw)%2048 + 1
		nd1, ng1 := cm.CostB(n, s, 1)
		nd32, ng32 := cm.CostB(n, s, 32)
		return nd1+ng1 <= nd32+ng32
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
