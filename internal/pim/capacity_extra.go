package pim

// MaxFitting returns the largest s in [1, limit] such that n vectors of s
// dims (×vectorsPerObject) fit the usable array, or 0 if none fits. Used
// when the compressed dimensionality need not divide d (e.g. the head
// length of the PIM-aware OST bound).
func (cm CapacityModel) MaxFitting(n, limit, vectorsPerObject int) int {
	lo, hi := 0, limit
	// Fits is monotone decreasing in s, so binary search applies.
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if cm.Fits(n, mid, vectorsPerObject) {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}
