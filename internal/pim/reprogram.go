package pim

import (
	"fmt"

	"pimmine/internal/arch"
	"pimmine/internal/vec"
)

// §V-C discusses — and rejects — the "simple solution" for datasets that
// exceed the PIM array: "divide the dataset into multiple small parts,
// and each time the crossbars are re-programmed with one part for
// processing. However, due to the limited write endurance of ReRAM, we
// should avoid re-programming crossbars."
//
// PartitionedPayload implements that strawman so it can be compared
// against Theorem 4 compression (see the ablation benchmarks): the
// payload is split into waves that fit the usable array; every query
// batch re-programs each wave in turn, paying the full programming time
// per wave and burning one write per visited cell.

// ReRAMEnduranceWrites is the low end of Table 1's ReRAM endurance range
// (10⁸ writes per cell), used for lifetime estimates.
const ReRAMEnduranceWrites = 1e8

// PartitionedPayload is an integer matrix too large for the PIM array,
// processed wave by wave with re-programming.
type PartitionedPayload struct {
	Name    string
	N, Dims int
	OpBits  int

	rows       func(i int) []uint32
	waveSize   int // vectors per wave
	waves      int
	reprogNs   float64 // programming time per wave (critical path + bus)
	cellWrites int64   // cell writes per full pass over the dataset

	// passes counts full re-programming sweeps, for endurance reporting.
	passes int64
}

// ProgramPartitioned prepares the strawman layout: the largest wave that
// fits the usable array, the per-wave re-programming cost, and the
// endurance bill per pass. Unlike Program, it never rejects a payload for
// size — that is the point of the strawman.
func (e *Engine) ProgramPartitioned(name string, n, dims, vectorsPerObject, opBits int, rows func(i int) []uint32) (*PartitionedPayload, error) {
	if n <= 0 || dims <= 0 {
		return nil, fmt.Errorf("pim: empty partitioned payload %q (%d×%d)", name, n, dims)
	}
	if opBits <= 0 || opBits > 32 {
		return nil, fmt.Errorf("pim: payload %q operand width %d outside [1,32]", name, opBits)
	}
	// Largest wave that fits: binary search over vector count.
	lo, hi := 0, n
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if e.model.FitsB(mid, dims, vectorsPerObject, opBits) {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	if lo == 0 {
		return nil, fmt.Errorf("pim: even one %d-dim vector exceeds the PIM array", dims)
	}
	waveSize := lo
	waves := (n + waveSize - 1) / waveSize
	cost := e.programCost(waveSize, dims, opBits)
	cpo := e.cfg.Crossbar.CellsPerOperand(opBits)
	return &PartitionedPayload{
		Name:       name,
		N:          n,
		Dims:       dims,
		OpBits:     opBits,
		rows:       rows,
		waveSize:   waveSize,
		waves:      waves,
		reprogNs:   cost.TotalNs(),
		cellWrites: int64(n) * int64(dims) * int64(cpo),
	}, nil
}

// Waves returns how many re-programming waves one full pass takes.
func (p *PartitionedPayload) Waves() int { return p.waves }

// QueryAll computes the dot product of input with every vector, paying
// one full re-programming sweep (all waves) on top of the compute: each
// wave is programmed, queried, and overwritten by the next.
func (p *PartitionedPayload) QueryAll(e *Engine, meter *arch.Meter, fn string, input []uint32, dst []int64) ([]int64, error) {
	if len(input) != p.Dims {
		return nil, fmt.Errorf("pim: query has %d dims, payload %q has %d", len(input), p.Name, p.Dims)
	}
	if cap(dst) < p.N {
		dst = make([]int64, p.N)
	}
	dst = dst[:p.N]
	for i := 0; i < p.N; i++ {
		dst[i] = vec.IntDot(p.rows(i), input)
	}
	p.passes++
	if meter != nil {
		c := meter.C(fn)
		perWave := int64(e.cfg.Crossbar.InputCycles(p.OpBits) + e.model.GatherLevels(p.Dims))
		c.PIMCycles += perWave * int64(p.waves)
		c.PIMBufBytes += int64(p.N) * 8
		// Re-programming is *online* here — that is the strawman's cost.
		c.PIMWriteNs += p.reprogNs * float64(p.waves)
		c.Calls++
	}
	return dst, nil
}

// EnduranceReport summarizes the wear of the strawman against Theorem 4
// compression (which programs each cell exactly once).
type EnduranceReport struct {
	// PassesRun is how many full re-programming sweeps have executed.
	PassesRun int64
	// WritesPerCellPerPass is the wear of one sweep on the busiest cells.
	WritesPerCellPerPass float64
	// LifetimePasses is how many sweeps Table 1's low-end ReRAM endurance
	// (10⁸ writes) sustains.
	LifetimePasses float64
}

// Endurance returns the wear report. Each pass writes every wave's cells
// once, so the busiest cell takes waves·(cells reused per wave)/cells ≈ 1
// write per pass per occupied cell; with the array fully reused across
// waves, each physical cell absorbs ~waves writes per pass of the region
// it hosts — conservatively 1 write per pass per wave sharing its tile.
func (p *PartitionedPayload) Endurance() EnduranceReport {
	perPass := float64(p.waves) // each physical tile is rewritten once per wave
	return EnduranceReport{
		PassesRun:            p.passes,
		WritesPerCellPerPass: perPass,
		LifetimePasses:       ReRAMEnduranceWrites / perPass,
	}
}
