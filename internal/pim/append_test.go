package pim

import (
	"testing"

	"pimmine/internal/arch"
	"pimmine/internal/vec"
)

func appendRows(n, dims int) [][]uint32 {
	rows := make([][]uint32, n)
	for i := range rows {
		rows[i] = make([]uint32, dims)
		for j := range rows[i] {
			rows[i][j] = uint32((3*i + 7*j) % 200)
		}
	}
	return rows
}

func TestAppendablePayloadGrows(t *testing.T) {
	for _, mode := range []Mode{ModeExact, ModeSimulate} {
		cfg := smallCfg()
		eng, err := NewEngine(cfg, mode)
		if err != nil {
			t.Fatal(err)
		}
		const total, initial, dims = 30, 10, 12
		rows := appendRows(total, dims)
		rowFn := func(i int) []uint32 { return rows[i] }
		p, err := eng.ProgramAppendable("grow", initial, total, dims, 1, cfg.OperandBits, rowFn)
		if err != nil {
			t.Fatal(err)
		}
		input := make([]uint32, dims)
		for j := range input {
			input[j] = uint32(j + 1)
		}
		check := func(wantN int) {
			t.Helper()
			out, err := p.QueryAll(arch.NewMeter(), "f", input, nil)
			if err != nil {
				t.Fatal(err)
			}
			if len(out) != wantN {
				t.Fatalf("mode %d: %d results, want %d", mode, len(out), wantN)
			}
			for i := range out {
				if want := vec.IntDot(rows[i], input); out[i] != want {
					t.Fatalf("mode %d: row %d got %d want %d", mode, i, out[i], want)
				}
			}
		}
		check(initial)
		ns, err := p.Append(12, rowFn)
		if err != nil {
			t.Fatal(err)
		}
		if ns <= 0 {
			t.Fatal("append must cost programming time")
		}
		check(initial + 12)
		if _, err := p.Append(8, rowFn); err != nil {
			t.Fatal(err)
		}
		check(total)
		if err := p.Verify(); err != nil {
			t.Fatal(err)
		}
		// Reservation exhausted.
		if _, err := p.Append(1, rowFn); err == nil {
			t.Fatal("append beyond reservation must fail")
		}
		m := arch.NewMeter()
		p.RecordAppendCost(m, "pre")
		if m.Get("pre").PIMWriteNs <= 0 {
			t.Fatal("append cost must be chargeable to a meter")
		}
	}
}

func TestAppendablePayloadEnduranceSafety(t *testing.T) {
	// In simulate mode, appending must never rewrite programmed cells:
	// max writes per cell stays 1.
	cfg := smallCfg()
	eng, err := NewEngine(cfg, ModeSimulate)
	if err != nil {
		t.Fatal(err)
	}
	rows := appendRows(20, 6)
	p, err := eng.ProgramAppendable("e", 5, 20, 6, 1, cfg.OperandBits, func(i int) []uint32 { return rows[i] })
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Append(15, func(i int) []uint32 { return rows[i] }); err != nil {
		t.Fatal(err)
	}
	for g, tiles := range p.xbars {
		for c, xb := range tiles {
			if st := xb.Endurance(); st.MaxWrites > 1 {
				t.Fatalf("tile (%d,%d) has cells written %d times; appends must be endurance-free", g, c, st.MaxWrites)
			}
		}
	}
}

func TestProgramAppendableValidation(t *testing.T) {
	cfg := smallCfg()
	eng, _ := NewEngine(cfg, ModeExact)
	rowFn := func(i int) []uint32 { return make([]uint32, 8) }
	if _, err := eng.ProgramAppendable("x", 10, 5, 8, 1, cfg.OperandBits, rowFn); err == nil {
		t.Fatal("reservation below initial size must be rejected")
	}
	if _, err := eng.ProgramAppendable("x", 10, 100000000, 8, 1, cfg.OperandBits, rowFn); err == nil {
		t.Fatal("reservation beyond capacity must be rejected")
	}
	p, err := eng.ProgramAppendable("ok", 4, 8, 8, 1, cfg.OperandBits, rowFn)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Append(0, rowFn); err == nil {
		t.Fatal("zero-count append must be rejected")
	}
}
