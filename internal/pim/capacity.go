// Package pim implements §V-C of the paper: managing the limited PIM
// array. It provides
//
//   - the Theorem 4 capacity model (data crossbars + gather-crossbar tree,
//     Fig 11) and the solver that picks the largest compressed
//     dimensionality s that fits the hardware, and
//   - the Engine that programs integer payloads onto crossbars and runs
//     batched dot-product queries against them, recording PIM activity
//     (compute cycles, buffer traffic, programming time) into
//     arch.Meters.
//
// The Engine has two modes. ModeExact computes dot products with host
// integer arithmetic (fast; used by the mining algorithms) while
// accounting cycles identically to the crossbar pipeline. ModeSimulate
// routes every dot product through internal/crossbar's bit-sliced
// functional simulator; tests assert both modes agree bit-for-bit.
package pim

import (
	"fmt"

	"pimmine/internal/arch"
)

// DefaultDataUtilization is the fraction of PIM-array crossbars available
// for data storage. The other half models peripheral overhead
// (ADC/DAC/S&H sharing, spare tiles for result staging) — calibrated so
// that Theorem 4 reproduces the paper's reported compressed
// dimensionalities exactly: s=50 for ImageNet and s=105 for MSD (§VI-C)
// when storing the two LB_PIM-FNN payload vectors (µ and σ) per object.
const DefaultDataUtilization = 0.5

// CapacityModel evaluates Theorem 4's crossbar costs for a concrete
// hardware configuration and dataset shape.
type CapacityModel struct {
	// M, CellBits mirror the crossbar spec (m and h).
	M, CellBits int
	// OperandBits is b, the stored operand width.
	OperandBits int
	// Crossbars is C, the total number of crossbars in the PIM array.
	Crossbars int
	// Utilization scales C to the usable fraction (see
	// DefaultDataUtilization).
	Utilization float64
}

// ModelFor builds the capacity model from an architecture config.
func ModelFor(cfg arch.Config) CapacityModel {
	return CapacityModel{
		M:           cfg.Crossbar.M,
		CellBits:    cfg.Crossbar.CellBits,
		OperandBits: cfg.OperandBits,
		Crossbars:   cfg.NumCrossbars(),
		Utilization: DefaultDataUtilization,
	}
}

// Cost returns Theorem 4's crossbar demand for storing n vectors of s
// dimensions at the model's default operand width:
//
//	ndata   = N·b·s / (m²·h)
//	ngather = N·b/(m·h) · Σ_{i≥2} ⌈s/mⁱ⌉   (only when s > m)
//
// Both are returned with integer ceilings so partially-filled crossbars
// are charged fully.
func (cm CapacityModel) Cost(n, s int) (ndata, ngather int64) {
	return cm.CostB(n, s, cm.OperandBits)
}

// CostB is Cost with an explicit operand width b — binary payloads (HD
// codes) store 1-bit operands, so they pack far more densely than the
// default 32-bit integers.
func (cm CapacityModel) CostB(n, s, opBits int) (ndata, ngather int64) {
	if n <= 0 || s <= 0 {
		return 0, 0
	}
	b := int64(opBits)
	m := int64(cm.M)
	h := int64(cm.CellBits)
	nn := int64(n)
	ndata = ceilDiv(nn*b*int64(s), m*m*h)
	if int64(s) > m {
		groups := ceilDiv(nn*b, m*h) // concurrent object groups, m·h/b objects each
		var perGroup int64
		for parts := ceilDiv(int64(s), m); parts > 1; parts = ceilDiv(parts, m) {
			perGroup += ceilDiv(parts, m)
		}
		ngather = groups * perGroup
	}
	return ndata, ngather
}

// Fits reports whether n vectors of s dims (replicated vectorsPerObject
// times, e.g. 2 for LB_PIM-FNN's µ and σ payloads) fit the usable array.
func (cm CapacityModel) Fits(n, s, vectorsPerObject int) bool {
	return cm.FitsB(n, s, vectorsPerObject, cm.OperandBits)
}

// FitsB is Fits with an explicit operand width.
func (cm CapacityModel) FitsB(n, s, vectorsPerObject, opBits int) bool {
	if vectorsPerObject <= 0 {
		vectorsPerObject = 1
	}
	nd, ng := cm.CostB(n, s, opBits)
	total := int64(vectorsPerObject) * (nd + ng)
	return total <= int64(float64(cm.Crossbars)*cm.Utilization)
}

// ChooseS returns the largest s from candidates (e.g. the divisors of d)
// such that the dataset fits; Theorem 4 maximizes s because larger s gives
// tighter PIM-aware bounds. Returns 0 if even the smallest candidate does
// not fit.
func (cm CapacityModel) ChooseS(n int, candidates []int, vectorsPerObject int) int {
	best := 0
	for _, s := range candidates {
		if s > best && cm.Fits(n, s, vectorsPerObject) {
			best = s
		}
	}
	return best
}

// Divisors returns all positive divisors of d in ascending order — the
// candidate compressed dimensionalities for segment-based compression
// (Fig 10 halves 8 dims to 2+2; any divisor yields equal-length segments).
func Divisors(d int) []int {
	if d <= 0 {
		return nil
	}
	var out []int
	for c := 1; c <= d; c++ {
		if d%c == 0 {
			out = append(out, c)
		}
	}
	return out
}

// GatherLevels returns the depth of the gather tree for s-dimensional
// vectors: 0 when a single crossbar holds the vector (s ≤ m), else the
// number of reduction stages needed to sum ⌈s/m⌉ partial results m at a
// time (Fig 11: s=8, m=2 → 2 gather stages).
func (cm CapacityModel) GatherLevels(s int) int {
	levels := 0
	for parts := ceilDiv(int64(s), int64(cm.M)); parts > 1; parts = ceilDiv(parts, int64(cm.M)) {
		levels++
	}
	return levels
}

func ceilDiv(a, b int64) int64 {
	if b <= 0 {
		panic(fmt.Sprintf("pim: ceilDiv by %d", b))
	}
	return (a + b - 1) / b
}
