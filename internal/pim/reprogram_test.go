package pim

import (
	"testing"

	"pimmine/internal/arch"
	"pimmine/internal/vec"
)

// tinyArrayCfg returns a config whose PIM array holds only a few vectors,
// forcing partitioning.
func tinyArrayCfg() arch.Config {
	cfg := arch.Default()
	cfg.Crossbar.M = 8
	cfg.OperandBits = 8
	cfg.PIMArrayBytes = 256 // 2048 bits → 16 crossbars of 8×8×2
	return cfg
}

func TestPartitionedCoversOversizedPayload(t *testing.T) {
	cfg := tinyArrayCfg()
	eng, err := NewEngine(cfg, ModeExact)
	if err != nil {
		t.Fatal(err)
	}
	n, dims := 200, 8
	rows := make([][]uint32, n)
	for i := range rows {
		rows[i] = make([]uint32, dims)
		for j := range rows[i] {
			rows[i][j] = uint32((i + j) % 256)
		}
	}
	rowFn := func(i int) []uint32 { return rows[i] }

	// The regular path must reject this payload...
	if _, err := eng.Program("big", n, dims, 1, rowFn); err == nil {
		t.Fatal("oversized payload must be rejected by Program")
	}
	// ...while the strawman accepts it with waves > 1.
	p, err := eng.ProgramPartitioned("big", n, dims, 1, cfg.OperandBits, rowFn)
	if err != nil {
		t.Fatal(err)
	}
	if p.Waves() <= 1 {
		t.Fatalf("expected multiple waves, got %d", p.Waves())
	}

	input := make([]uint32, dims)
	for j := range input {
		input[j] = uint32(j + 1)
	}
	m := arch.NewMeter()
	out, err := p.QueryAll(eng, m, "strawman", input, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rows {
		if want := vec.IntDot(rows[i], input); out[i] != want {
			t.Fatalf("row %d: got %d want %d", i, out[i], want)
		}
	}
	// The strawman pays online re-programming time; Theorem 4 compression
	// never does at query time.
	if m.Get("strawman").PIMWriteNs <= 0 {
		t.Fatal("partitioned query must charge re-programming time")
	}
}

func TestPartitionedEnduranceReport(t *testing.T) {
	cfg := tinyArrayCfg()
	eng, _ := NewEngine(cfg, ModeExact)
	rows := func(i int) []uint32 { return make([]uint32, 8) }
	p, err := eng.ProgramPartitioned("big", 500, 8, 1, cfg.OperandBits, rows)
	if err != nil {
		t.Fatal(err)
	}
	input := make([]uint32, 8)
	for q := 0; q < 3; q++ {
		if _, err := p.QueryAll(eng, arch.NewMeter(), "f", input, nil); err != nil {
			t.Fatal(err)
		}
	}
	rep := p.Endurance()
	if rep.PassesRun != 3 {
		t.Fatalf("passes = %d, want 3", rep.PassesRun)
	}
	if rep.WritesPerCellPerPass != float64(p.Waves()) {
		t.Fatalf("writes/cell/pass = %v, want %d", rep.WritesPerCellPerPass, p.Waves())
	}
	if rep.LifetimePasses >= ReRAMEnduranceWrites {
		t.Fatal("lifetime must shrink with waves")
	}
}

func TestPartitionedValidation(t *testing.T) {
	eng, _ := NewEngine(tinyArrayCfg(), ModeExact)
	rows := func(i int) []uint32 { return make([]uint32, 8) }
	if _, err := eng.ProgramPartitioned("x", 0, 8, 1, 8, rows); err == nil {
		t.Fatal("empty payload must be rejected")
	}
	if _, err := eng.ProgramPartitioned("x", 10, 8, 1, 0, rows); err == nil {
		t.Fatal("bad operand width must be rejected")
	}
	// A single vector larger than the whole array cannot partition.
	if _, err := eng.ProgramPartitioned("x", 10, 1_000_000, 1, 8, rows); err == nil {
		t.Fatal("uncompressible vector must be rejected")
	}
	p, err := eng.ProgramPartitioned("ok", 10, 8, 1, 8, rows)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.QueryAll(eng, nil, "f", make([]uint32, 4), nil); err == nil {
		t.Fatal("dimension mismatch must be rejected")
	}
}
