package pim

import (
	"math/rand"
	"sync"
	"testing"

	"pimmine/internal/arch"
)

// TestSimulateQueryAllConcurrent hammers simulate-mode QueryAll from many
// goroutines over one shared engine and payload — the serve layer's shard
// workers do exactly this. Under -race it proves the shared per-tile
// partial-dot pool (partPool) never hands the same buffer to two in-flight
// queries; the value check proves pooled buffers are correctly re-zeroed.
func TestSimulateQueryAllConcurrent(t *testing.T) {
	t.Parallel()
	cfg := smallCfg()
	eng, err := NewEngine(cfg, ModeSimulate)
	if err != nil {
		t.Fatal(err)
	}
	const n, dims = 37, 21 // dims > M=8 forces multi-tile partials
	rng := rand.New(rand.NewSource(59))
	rows := make([][]uint32, n)
	for i := range rows {
		rows[i] = make([]uint32, dims)
		for j := range rows[i] {
			rows[i][j] = rng.Uint32() % 256
		}
	}
	p, err := eng.Program("t", n, dims, 1, func(i int) []uint32 { return rows[i] })
	if err != nil {
		t.Fatal(err)
	}

	const workers = 8
	const iters = 40
	inputs := make([][]uint32, workers)
	wants := make([][]int64, workers)
	for w := 0; w < workers; w++ {
		in := make([]uint32, dims)
		for j := range in {
			in[j] = rng.Uint32() % 256
		}
		inputs[w] = in
		want, err := eng.QueryAll(arch.NewMeter(), "f", p, in, nil)
		if err != nil {
			t.Fatal(err)
		}
		wants[w] = want
	}

	var wg sync.WaitGroup
	errs := make(chan string, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			m := arch.NewMeter()
			dst := make([]int64, n)
			for it := 0; it < iters; it++ {
				if _, err := eng.QueryAll(m, "f", p, inputs[w], dst); err != nil {
					errs <- err.Error()
					return
				}
				for i := range dst {
					if dst[i] != wants[w][i] {
						errs <- "concurrent simulate QueryAll diverged from serial result"
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}
