package pim

import (
	"fmt"

	"pimmine/internal/arch"
	"pimmine/internal/crossbar"
)

// §VII lists as future work a "more space-friendly PIM scheme ... to
// minimize the impact on latency and endurance" for growing datasets.
// AppendablePayload explores the natural first step: an append-only
// payload that reserves headroom at programming time and grows by
// programming only *fresh* cells — never rewriting programmed ones — so
// inserts are endurance-free and queries stay single-pass.
//
// The trade-off it makes explicit: headroom counts against the Theorem 4
// capacity check up front, so reserving room for growth lowers the
// compressed dimensionality the array can afford today.

// AppendablePayload is a payload with reserved growth headroom.
type AppendablePayload struct {
	*Payload
	eng *Engine
	// CapacityRows is the total reserved row budget (N ≤ CapacityRows).
	CapacityRows int
	appendNs     float64 // accumulated (offline) programming time of appends
}

// ProgramAppendable programs the first n rows and reserves capacity for
// capacityRows total. The Theorem 4 admission check runs against the full
// reservation — headroom is real crossbar space.
func (e *Engine) ProgramAppendable(name string, n, capacityRows, dims, vectorsPerObject, opBits int, rows func(i int) []uint32) (*AppendablePayload, error) {
	if capacityRows < n {
		return nil, fmt.Errorf("pim: reservation %d below initial size %d", capacityRows, n)
	}
	if !e.model.FitsB(capacityRows, dims, vectorsPerObject, opBits) {
		return nil, fmt.Errorf("pim: reservation of %d×%d ×%d exceeds PIM array capacity", capacityRows, dims, vectorsPerObject)
	}
	p, err := e.ProgramWidth(name, n, dims, vectorsPerObject, opBits, rows)
	if err != nil {
		return nil, err
	}
	return &AppendablePayload{Payload: p, eng: e, CapacityRows: capacityRows}, nil
}

// Append programs count additional rows into reserved headroom. rows(i)
// must cover indices [oldN, oldN+count). Only fresh cells are written —
// existing data is untouched, so the operation costs zero endurance on
// programmed cells. Returns the modeled programming time of the delta.
func (a *AppendablePayload) Append(count int, rows func(i int) []uint32) (float64, error) {
	if count <= 0 {
		return 0, fmt.Errorf("pim: append count %d must be positive", count)
	}
	newN := a.N + count
	if newN > a.CapacityRows {
		return 0, fmt.Errorf("pim: append of %d rows exceeds reservation (%d/%d used)", count, a.N, a.CapacityRows)
	}
	old := a.rows
	oldN := a.N
	a.rows = func(i int) []uint32 {
		if i < oldN {
			return old(i)
		}
		return rows(i)
	}
	if a.eng.mode == ModeSimulate {
		// Program the new rows into fresh tiles.
		for i := oldN; i < newN; i++ {
			row := rows(i)
			if len(row) != a.Dims {
				return 0, fmt.Errorf("pim: appended row %d has %d dims, want %d", i, len(row), a.Dims)
			}
			if err := a.appendTileRow(i, row); err != nil {
				return 0, err
			}
		}
	}
	a.N = newN
	// Extend the fault injector over any tiles the append grew into (it
	// is extend-only: existing tiles keep their fault maps) and hook the
	// freshly allocated simulate-mode tiles.
	if err := a.eng.installFaults(a.Payload); err != nil {
		return 0, err
	}
	delta := a.eng.programCost(count, a.Dims, a.OpBits)
	a.appendNs += delta.TotalNs()
	a.cost.WriteNs += delta.WriteNs
	a.cost.BusNs += delta.BusNs
	a.cost.Bytes += delta.Bytes
	return delta.TotalNs(), nil
}

// appendTileRow places one appended vector into the simulate-mode tiling,
// growing the tile grid as needed.
func (a *AppendablePayload) appendTileRow(i int, row []uint32) error {
	g := i / a.perGroup
	for g >= len(a.xbars) {
		row := make([]*crossbar.Crossbar, a.chunks)
		for c := range row {
			row[c] = crossbar.New(a.eng.cfg.Crossbar)
		}
		a.xbars = append(a.xbars, row)
	}
	m := a.eng.cfg.Crossbar.M
	for c := 0; c < a.chunks; c++ {
		lo := c * m
		hi := minInt(lo+m, a.Dims)
		if _, err := a.xbars[g][c].ProgramVector(row[lo:hi], a.OpBits); err != nil {
			return fmt.Errorf("pim: appending row %d chunk %d: %w", i, c, err)
		}
	}
	return nil
}

// RecordAppendCost charges the accumulated append programming time to a
// meter function (then resets the accumulator).
func (a *AppendablePayload) RecordAppendCost(m *arch.Meter, fn string) {
	c := m.C(fn)
	c.PIMWriteNs += a.appendNs
	c.Calls++
	a.appendNs = 0
}

// QueryAll delegates to the engine against the payload's current size.
func (a *AppendablePayload) QueryAll(meter *arch.Meter, fn string, input []uint32, dst []int64) ([]int64, error) {
	return a.eng.QueryAll(meter, fn, a.Payload, input, dst)
}

// Verify (exact mode helper): the payload's logical rows are reachable.
func (a *AppendablePayload) Verify() error {
	for i := 0; i < a.N; i++ {
		if got := a.rows(i); len(got) != a.Dims {
			return fmt.Errorf("pim: row %d has %d dims, want %d", i, len(got), a.Dims)
		}
	}
	return nil
}
