package pim

import (
	"fmt"

	"pimmine/internal/arch"
	"pimmine/internal/crossbar"
	"pimmine/internal/vec"
)

// Mode selects how the Engine evaluates dot products.
type Mode int

const (
	// ModeExact evaluates dot products with host integer arithmetic while
	// accounting PIM activity analytically. This is what the mining
	// algorithms use: it is fast and bit-identical to the crossbar
	// pipeline (property-tested).
	ModeExact Mode = iota
	// ModeSimulate routes every dot product through the bit-sliced
	// functional crossbar simulator, allocating real crossbar tiles.
	// Intended for verification and small demos.
	ModeSimulate
)

// Engine owns the PIM array of one architecture instance: payload
// programming (offline) and batched dot-product queries (online).
type Engine struct {
	cfg      arch.Config
	model    CapacityModel
	mode     Mode
	payloads map[string]*Payload
}

// NewEngine creates an engine for the given architecture.
func NewEngine(cfg arch.Config, mode Mode) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Engine{
		cfg:      cfg,
		model:    ModelFor(cfg),
		mode:     mode,
		payloads: make(map[string]*Payload),
	}, nil
}

// Model exposes the Theorem 4 capacity model in effect.
func (e *Engine) Model() CapacityModel { return e.model }

// Config returns the architecture configuration.
func (e *Engine) Config() arch.Config { return e.cfg }

// Payload is one named integer matrix programmed onto the PIM array (e.g.
// the ⌊p̄⌋ vectors for LB_PIM-ED, or the ⌊µ(p̂)⌋ vectors for LB_PIM-FNN).
type Payload struct {
	Name    string
	N, Dims int
	// OpBits is this payload's stored operand width (1 for binary codes,
	// the architecture default of 32 for quantized integers).
	OpBits int

	rows func(i int) []uint32 // exact-mode row accessor

	// Simulate-mode tiling: groups × chunks crossbars, where each group
	// holds perGroup vectors and each chunk covers up to m dimensions.
	xbars    [][]*crossbar.Crossbar
	perGroup int
	chunks   int

	gatherLevels int
	cost         ProgramCost
}

// ProgramCost reports the modeled offline cost of programming a payload.
type ProgramCost struct {
	// WriteNs is the critical-path ReRAM programming time: crossbars
	// program in parallel, rows within one crossbar serially.
	WriteNs float64
	// BusNs is the time to deliver the payload bytes over the internal bus.
	BusNs float64
	// Bytes is the payload size at the modeled operand width.
	Bytes int64
	// DataCrossbars/GatherCrossbars echo the Theorem 4 demand.
	DataCrossbars, GatherCrossbars int64
}

// TotalNs returns the full modeled programming time.
func (pc ProgramCost) TotalNs() float64 { return pc.WriteNs + pc.BusNs }

// Program lays a payload of n vectors × dims non-negative integers onto
// the array. rows(i) must return vector i and stay valid for the engine's
// lifetime. Programming enforces Theorem 4: a payload that does not fit
// the usable array (given how many sibling payloads the caller will
// store — vectorsPerObject) is rejected, because re-programming would
// burn ReRAM endurance (§V-C).
func (e *Engine) Program(name string, n, dims, vectorsPerObject int, rows func(i int) []uint32) (*Payload, error) {
	return e.ProgramWidth(name, n, dims, vectorsPerObject, e.cfg.OperandBits, rows)
}

// ProgramWidth is Program with an explicit operand width: binary payloads
// (Table 4's HD decomposition) store 1-bit operands and pack 32× denser
// than the default integers.
func (e *Engine) ProgramWidth(name string, n, dims, vectorsPerObject, opBits int, rows func(i int) []uint32) (*Payload, error) {
	if n <= 0 || dims <= 0 {
		return nil, fmt.Errorf("pim: empty payload %q (%d×%d)", name, n, dims)
	}
	if opBits <= 0 || opBits > 32 {
		return nil, fmt.Errorf("pim: payload %q operand width %d outside [1,32]", name, opBits)
	}
	if _, dup := e.payloads[name]; dup {
		return nil, fmt.Errorf("pim: payload %q already programmed (re-programming burns endurance)", name)
	}
	if !e.model.FitsB(n, dims, vectorsPerObject, opBits) {
		return nil, fmt.Errorf("pim: payload %q (%d×%d ×%d) exceeds PIM array capacity; compress with CapacityModel.ChooseS",
			name, n, dims, vectorsPerObject)
	}
	p := &Payload{Name: name, N: n, Dims: dims, OpBits: opBits, rows: rows, gatherLevels: e.model.GatherLevels(dims)}
	p.cost = e.programCost(n, dims, opBits)
	if e.mode == ModeSimulate {
		if err := e.buildTiles(p); err != nil {
			return nil, err
		}
	}
	e.payloads[name] = p
	return p, nil
}

// WriteVerifyPulses models ReRAM cell programming as iterative
// program-and-verify (multi-level cells need several pulses to land on
// the target resistance — the reason Table 1's ReRAM write latency and
// endurance trail DRAM's). Combined with the write-power limit that
// serializes row programming across the array (one m-cell row per pulse
// window), this is what makes PIM pre-processing slower than the host
// baseline's DRAM writes despite touching less data (Fig 17).
const WriteVerifyPulses = 8

// programCost models the offline programming cost analytically.
func (e *Engine) programCost(n, dims, opBits int) ProgramCost {
	spec := e.cfg.Crossbar
	nd, ng := e.model.CostB(n, dims, opBits)
	bytes := (int64(n)*int64(dims)*int64(opBits) + 7) / 8
	// Total cells to program, serialized into m-cell row writes by the
	// write-power budget, each taking WriteVerifyPulses pulses.
	cells := float64(n) * float64(dims) * float64(spec.CellsPerOperand(opBits))
	rowWrites := cells / float64(spec.M)
	return ProgramCost{
		WriteNs:         rowWrites * WriteVerifyPulses * spec.WriteLatencyNs,
		BusNs:           float64(bytes) / e.cfg.InternalBusGBs,
		Bytes:           bytes,
		DataCrossbars:   nd,
		GatherCrossbars: ng,
	}
}

// buildTiles allocates and programs real crossbar tiles (simulate mode).
func (e *Engine) buildTiles(p *Payload) error {
	spec := e.cfg.Crossbar
	m := spec.M
	p.chunks = (p.Dims + m - 1) / m
	chunkDims := minInt(p.Dims, m)
	p.perGroup = spec.VectorsPerCrossbar(chunkDims, p.OpBits)
	if p.perGroup == 0 {
		return fmt.Errorf("pim: operand width %d leaves no room in %d-wide crossbar", p.OpBits, m)
	}
	groups := (p.N + p.perGroup - 1) / p.perGroup
	p.xbars = make([][]*crossbar.Crossbar, groups)
	for g := range p.xbars {
		p.xbars[g] = make([]*crossbar.Crossbar, p.chunks)
		for c := range p.xbars[g] {
			p.xbars[g][c] = crossbar.New(spec)
		}
	}
	for i := 0; i < p.N; i++ {
		row := p.rows(i)
		if len(row) != p.Dims {
			return fmt.Errorf("pim: payload %q row %d has %d dims, want %d", p.Name, i, len(row), p.Dims)
		}
		g := i / p.perGroup
		for c := 0; c < p.chunks; c++ {
			lo := c * m
			hi := minInt(lo+m, p.Dims)
			if _, err := p.xbars[g][c].ProgramVector(row[lo:hi], p.OpBits); err != nil {
				return fmt.Errorf("pim: programming payload %q row %d chunk %d: %w", p.Name, i, c, err)
			}
		}
	}
	return nil
}

// RecordProgramCost adds a payload's offline programming cost to the named
// function of a meter (pre-processing accounting, Fig 17).
func RecordProgramCost(m *arch.Meter, fn string, p *Payload) {
	c := m.C(fn)
	c.PIMWriteNs += p.cost.TotalNs()
	c.Calls++
}

// Cost returns the payload's modeled programming cost.
func (p *Payload) Cost() ProgramCost { return p.cost }

// QueryAll computes the dot product of input with every payload vector,
// appending results to dst (allocated if nil) and recording the PIM
// activity under fn in the meter:
//
//   - compute cycles: ⌈b/dac⌉ input-slicing cycles plus one cycle per
//     gather level (all data crossbars fire in parallel — this is the
//     massive-parallelism property of §II-A, and Theorem 4 guarantees the
//     payload fits without re-programming);
//   - buffer traffic: 8 bytes per result (the paper keeps the least
//     significant 64 bits of PIM results).
func (e *Engine) QueryAll(meter *arch.Meter, fn string, p *Payload, input []uint32, dst []int64) ([]int64, error) {
	if len(input) != p.Dims {
		return nil, fmt.Errorf("pim: query has %d dims, payload %q has %d", len(input), p.Name, p.Dims)
	}
	if cap(dst) < p.N {
		dst = make([]int64, p.N)
	}
	dst = dst[:p.N]
	switch e.mode {
	case ModeExact:
		for i := 0; i < p.N; i++ {
			dst[i] = vec.IntDot(p.rows(i), input)
		}
	case ModeSimulate:
		if err := e.simulateQuery(p, input, dst); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("pim: unknown mode %d", e.mode)
	}
	if meter != nil {
		c := meter.C(fn)
		c.PIMCycles += int64(e.cfg.Crossbar.InputCycles(p.OpBits) + p.gatherLevels)
		c.PIMBufBytes += int64(p.N) * 8
		c.Calls++
	}
	return dst, nil
}

// simulateQuery runs the query through the functional crossbar tiles.
func (e *Engine) simulateQuery(p *Payload, input []uint32, dst []int64) error {
	m := e.cfg.Crossbar.M
	for g, tiles := range p.xbars {
		base := g * p.perGroup
		count := minInt(p.perGroup, p.N-base)
		// Zero the group's outputs, then accumulate chunk partials
		// (the gather crossbars' summation).
		for v := 0; v < count; v++ {
			dst[base+v] = 0
		}
		for c, xb := range tiles {
			lo := c * m
			hi := minInt(lo+m, p.Dims)
			part, _, err := xb.DotAll(input[lo:hi], p.OpBits)
			if err != nil {
				return fmt.Errorf("pim: querying payload %q group %d chunk %d: %w", p.Name, g, c, err)
			}
			for v := 0; v < count; v++ {
				dst[base+v] += part[v]
			}
		}
	}
	return nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
