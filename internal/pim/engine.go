package pim

import (
	"fmt"
	"sync"
	"sync/atomic"

	"pimmine/internal/arch"
	"pimmine/internal/crossbar"
	"pimmine/internal/vec"
)

// Mode selects how the Engine evaluates dot products.
type Mode int

const (
	// ModeExact evaluates dot products with host integer arithmetic while
	// accounting PIM activity analytically. This is what the mining
	// algorithms use: it is fast and bit-identical to the crossbar
	// pipeline (property-tested).
	ModeExact Mode = iota
	// ModeSimulate routes every dot product through the bit-sliced
	// functional crossbar simulator, allocating real crossbar tiles.
	// Intended for verification and small demos.
	ModeSimulate
)

// DeadDot is the sentinel dot product reported for a vector whose crossbar
// is dead (whole-tile failure, internal/fault). It is a huge positive
// value, so every bound built from it keeps the object: lower bounds use
// −2·dot and collapse far below any threshold, similarity upper bounds use
// +dot and stay far above. The object is then refined exactly on the host
// — the never-prune recovery path. Admissible whenever true |dot| < 2^60,
// which the quantizer's value range guarantees with huge margin.
const DeadDot = int64(1) << 60

// FaultInjector is the hook internal/fault implements to model hardware
// faults (stuck-at cells, conductance drift, read noise, dead crossbars)
// while keeping filter-and-refine exact. The engine calls Attach once per
// payload (and again after appends), installs the per-tile read faults in
// simulate mode, and routes every dot-product batch through Apply.
type FaultInjector interface {
	// Attach derives the deterministic fault map covering the payload's
	// current tile grid. It is idempotent and extend-only: tiles already
	// mapped keep their faults, so appends never reshuffle history.
	Attach(p *Payload) error
	// TileFault returns the cell-read fault hook for tile (group, chunk)
	// of an attached payload, or nil for a fault-free tile.
	TileFault(p *Payload, g, c int) crossbar.ReadFault
	// Apply post-processes one dot-product batch in place: in exact mode
	// it adds the analytic fault delta (bit-identical to what the faulty
	// crossbar simulation produces), in both modes it adds the error
	// envelope that restores bound admissibility, and it replaces dots
	// lost to dead crossbars with DeadDot. It reports how many dots were
	// fault-corrected and how many were dead-recovered.
	Apply(p *Payload, simulated bool, input []uint32, dst []int64) (faulty, recovered int64)
	// DeadCrossbars reports how many attached tiles failed entirely.
	DeadCrossbars() int
}

// Engine owns the PIM array of one architecture instance: payload
// programming (offline) and batched dot-product queries (online).
type Engine struct {
	cfg      arch.Config
	model    CapacityModel
	mode     Mode
	payloads map[string]*Payload

	inj FaultInjector
	// Cumulative fault activity, kept on the engine (atomically, since
	// serve-layer shards may query concurrently) so QueryAllParallel and
	// callers without a meter still observe fault counts.
	faultDots     int64
	recoveredDots int64
}

// NewEngine creates an engine for the given architecture.
func NewEngine(cfg arch.Config, mode Mode) (*Engine, error) {
	return NewFaultyEngine(cfg, mode, nil)
}

// NewFaultyEngine creates an engine whose dot products pass through the
// given fault injector (nil behaves exactly like NewEngine).
func NewFaultyEngine(cfg arch.Config, mode Mode, inj FaultInjector) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Engine{
		cfg:      cfg,
		model:    ModelFor(cfg),
		mode:     mode,
		inj:      inj,
		payloads: make(map[string]*Payload),
	}, nil
}

// Faulty reports whether a fault injector is installed. Searchers that
// treat PIM dots as exact values (HD-PIM) switch to filter-and-refine
// when this is true.
func (e *Engine) Faulty() bool { return e.inj != nil }

// DeadCrossbars reports how many of the engine's tiles failed entirely
// (0 without an injector). The serve layer checks this after building a
// shard's searcher to decide whether to degrade to a host scan.
func (e *Engine) DeadCrossbars() int {
	if e.inj == nil {
		return 0
	}
	return e.inj.DeadCrossbars()
}

// FaultCounts returns the cumulative number of fault-corrected and
// dead-recovered dot products served by this engine.
func (e *Engine) FaultCounts() (faulty, recovered int64) {
	return atomic.LoadInt64(&e.faultDots), atomic.LoadInt64(&e.recoveredDots)
}

// Model exposes the Theorem 4 capacity model in effect.
func (e *Engine) Model() CapacityModel { return e.model }

// Config returns the architecture configuration.
func (e *Engine) Config() arch.Config { return e.cfg }

// Payload is one named integer matrix programmed onto the PIM array (e.g.
// the ⌊p̄⌋ vectors for LB_PIM-ED, or the ⌊µ(p̂)⌋ vectors for LB_PIM-FNN).
type Payload struct {
	Name    string
	N, Dims int
	// OpBits is this payload's stored operand width (1 for binary codes,
	// the architecture default of 32 for quantized integers).
	OpBits int

	rows func(i int) []uint32 // exact-mode row accessor

	// Simulate-mode tiling: groups × chunks crossbars, where each group
	// holds perGroup vectors and each chunk covers up to m dimensions.
	xbars    [][]*crossbar.Crossbar
	perGroup int
	chunks   int

	gatherLevels int
	cost         ProgramCost
}

// Row returns vector i (the fault injector's analytic path reads the
// programmed levels through this in exact mode).
func (p *Payload) Row(i int) []uint32 { return p.rows(i) }

// Layout returns the payload's tile geometry: vectors per crossbar group
// and dimension chunks per group. It is defined in both modes — exact
// mode computes the same layout the simulator would allocate.
func (p *Payload) Layout() (perGroup, chunks int) { return p.perGroup, p.chunks }

// Groups returns how many crossbar groups cover the payload's current N.
func (p *Payload) Groups() int {
	if p.perGroup == 0 {
		return 0
	}
	return (p.N + p.perGroup - 1) / p.perGroup
}

// ProgramCost reports the modeled offline cost of programming a payload.
type ProgramCost struct {
	// WriteNs is the critical-path ReRAM programming time: crossbars
	// program in parallel, rows within one crossbar serially.
	WriteNs float64
	// BusNs is the time to deliver the payload bytes over the internal bus.
	BusNs float64
	// Bytes is the payload size at the modeled operand width.
	Bytes int64
	// DataCrossbars/GatherCrossbars echo the Theorem 4 demand.
	DataCrossbars, GatherCrossbars int64
}

// TotalNs returns the full modeled programming time.
func (pc ProgramCost) TotalNs() float64 { return pc.WriteNs + pc.BusNs }

// Program lays a payload of n vectors × dims non-negative integers onto
// the array. rows(i) must return vector i and stay valid for the engine's
// lifetime. Programming enforces Theorem 4: a payload that does not fit
// the usable array (given how many sibling payloads the caller will
// store — vectorsPerObject) is rejected, because re-programming would
// burn ReRAM endurance (§V-C).
func (e *Engine) Program(name string, n, dims, vectorsPerObject int, rows func(i int) []uint32) (*Payload, error) {
	return e.ProgramWidth(name, n, dims, vectorsPerObject, e.cfg.OperandBits, rows)
}

// ProgramWidth is Program with an explicit operand width: binary payloads
// (Table 4's HD decomposition) store 1-bit operands and pack 32× denser
// than the default integers.
func (e *Engine) ProgramWidth(name string, n, dims, vectorsPerObject, opBits int, rows func(i int) []uint32) (*Payload, error) {
	if n <= 0 || dims <= 0 {
		return nil, fmt.Errorf("pim: empty payload %q (%d×%d)", name, n, dims)
	}
	if opBits <= 0 || opBits > 32 {
		return nil, fmt.Errorf("pim: payload %q operand width %d outside [1,32]", name, opBits)
	}
	if _, dup := e.payloads[name]; dup {
		return nil, fmt.Errorf("pim: payload %q already programmed (re-programming burns endurance)", name)
	}
	if !e.model.FitsB(n, dims, vectorsPerObject, opBits) {
		return nil, fmt.Errorf("pim: payload %q (%d×%d ×%d) exceeds PIM array capacity; compress with CapacityModel.ChooseS",
			name, n, dims, vectorsPerObject)
	}
	p := &Payload{Name: name, N: n, Dims: dims, OpBits: opBits, rows: rows, gatherLevels: e.model.GatherLevels(dims)}
	p.cost = e.programCost(n, dims, opBits)
	// The tile layout is defined in every mode: exact mode needs it for
	// the fault injector's cell→vector geometry, simulate mode for tile
	// allocation.
	spec := e.cfg.Crossbar
	p.chunks = (p.Dims + spec.M - 1) / spec.M
	p.perGroup = spec.VectorsPerCrossbar(minInt(p.Dims, spec.M), p.OpBits)
	if p.perGroup == 0 && (e.mode == ModeSimulate || e.inj != nil) {
		return nil, fmt.Errorf("pim: operand width %d leaves no room in %d-wide crossbar", p.OpBits, spec.M)
	}
	if e.mode == ModeSimulate {
		if err := e.buildTiles(p); err != nil {
			return nil, err
		}
	}
	if err := e.installFaults(p); err != nil {
		return nil, err
	}
	e.payloads[name] = p
	return p, nil
}

// installFaults (re-)attaches the fault injector to a payload — deriving
// fault maps for any tiles not yet covered (a power-on self test: dead
// crossbars are known before the first query) — and, in simulate mode,
// installs the cell-read hooks on every allocated tile. Idempotent; called
// at Program time and again after appends extend the tile grid.
func (e *Engine) installFaults(p *Payload) error {
	if e.inj == nil {
		return nil
	}
	if err := e.inj.Attach(p); err != nil {
		return fmt.Errorf("pim: attaching fault injector to payload %q: %w", p.Name, err)
	}
	for g, tiles := range p.xbars {
		for c, xb := range tiles {
			xb.SetReadFault(e.inj.TileFault(p, g, c))
		}
	}
	return nil
}

// WriteVerifyPulses models ReRAM cell programming as iterative
// program-and-verify (multi-level cells need several pulses to land on
// the target resistance — the reason Table 1's ReRAM write latency and
// endurance trail DRAM's). Combined with the write-power limit that
// serializes row programming across the array (one m-cell row per pulse
// window), this is what makes PIM pre-processing slower than the host
// baseline's DRAM writes despite touching less data (Fig 17).
const WriteVerifyPulses = 8

// programCost models the offline programming cost analytically.
func (e *Engine) programCost(n, dims, opBits int) ProgramCost {
	spec := e.cfg.Crossbar
	nd, ng := e.model.CostB(n, dims, opBits)
	bytes := (int64(n)*int64(dims)*int64(opBits) + 7) / 8
	// Total cells to program, serialized into m-cell row writes by the
	// write-power budget, each taking WriteVerifyPulses pulses.
	cells := float64(n) * float64(dims) * float64(spec.CellsPerOperand(opBits))
	rowWrites := cells / float64(spec.M)
	return ProgramCost{
		WriteNs:         rowWrites * WriteVerifyPulses * spec.WriteLatencyNs,
		BusNs:           float64(bytes) / e.cfg.InternalBusGBs,
		Bytes:           bytes,
		DataCrossbars:   nd,
		GatherCrossbars: ng,
	}
}

// buildTiles allocates and programs real crossbar tiles (simulate mode).
// Layout (perGroup, chunks) was computed by ProgramWidth.
func (e *Engine) buildTiles(p *Payload) error {
	spec := e.cfg.Crossbar
	m := spec.M
	if p.perGroup == 0 {
		return fmt.Errorf("pim: operand width %d leaves no room in %d-wide crossbar", p.OpBits, m)
	}
	groups := (p.N + p.perGroup - 1) / p.perGroup
	p.xbars = make([][]*crossbar.Crossbar, groups)
	for g := range p.xbars {
		p.xbars[g] = make([]*crossbar.Crossbar, p.chunks)
		for c := range p.xbars[g] {
			p.xbars[g][c] = crossbar.New(spec)
		}
	}
	for i := 0; i < p.N; i++ {
		row := p.rows(i)
		if len(row) != p.Dims {
			return fmt.Errorf("pim: payload %q row %d has %d dims, want %d", p.Name, i, len(row), p.Dims)
		}
		g := i / p.perGroup
		for c := 0; c < p.chunks; c++ {
			lo := c * m
			hi := minInt(lo+m, p.Dims)
			if _, err := p.xbars[g][c].ProgramVector(row[lo:hi], p.OpBits); err != nil {
				return fmt.Errorf("pim: programming payload %q row %d chunk %d: %w", p.Name, i, c, err)
			}
		}
	}
	return nil
}

// RecordProgramCost adds a payload's offline programming cost to the named
// function of a meter (pre-processing accounting, Fig 17).
func RecordProgramCost(m *arch.Meter, fn string, p *Payload) {
	c := m.C(fn)
	c.PIMWriteNs += p.cost.TotalNs()
	c.Calls++
}

// Cost returns the payload's modeled programming cost.
func (p *Payload) Cost() ProgramCost { return p.cost }

// QueryAll computes the dot product of input with every payload vector,
// appending results to dst (allocated if nil) and recording the PIM
// activity under fn in the meter:
//
//   - compute cycles: ⌈b/dac⌉ input-slicing cycles plus one cycle per
//     gather level (all data crossbars fire in parallel — this is the
//     massive-parallelism property of §II-A, and Theorem 4 guarantees the
//     payload fits without re-programming);
//   - buffer traffic: 8 bytes per result (the paper keeps the least
//     significant 64 bits of PIM results).
func (e *Engine) QueryAll(meter *arch.Meter, fn string, p *Payload, input []uint32, dst []int64) ([]int64, error) {
	if len(input) != p.Dims {
		return nil, fmt.Errorf("pim: query has %d dims, payload %q has %d", len(input), p.Name, p.Dims)
	}
	if cap(dst) < p.N {
		dst = make([]int64, p.N)
	}
	dst = dst[:p.N]
	switch e.mode {
	case ModeExact:
		for i := 0; i < p.N; i++ {
			dst[i] = vec.IntDot(p.rows(i), input)
		}
	case ModeSimulate:
		if err := e.simulateQuery(p, input, dst); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("pim: unknown mode %d", e.mode)
	}
	var faulty, recovered int64
	if e.inj != nil {
		faulty, recovered = e.inj.Apply(p, e.mode == ModeSimulate, input, dst)
		atomic.AddInt64(&e.faultDots, faulty)
		atomic.AddInt64(&e.recoveredDots, recovered)
	}
	if meter != nil {
		c := meter.C(fn)
		c.PIMCycles += int64(e.cfg.Crossbar.InputCycles(p.OpBits) + p.gatherLevels)
		c.PIMBufBytes += int64(p.N) * 8
		c.PIMFaults += faulty
		c.PIMRecovered += recovered
		c.Calls++
	}
	return dst, nil
}

// partPool holds the per-tile partial-dot buffers of simulateQuery, so a
// warmed-up simulate-mode query allocates nothing and concurrent shard
// engines never share a buffer.
var partPool = sync.Pool{New: func() any { return new([]int64) }}

// simulateQuery runs the query through the functional crossbar tiles.
func (e *Engine) simulateQuery(p *Payload, input []uint32, dst []int64) error {
	m := e.cfg.Crossbar.M
	pp := partPool.Get().(*[]int64)
	defer partPool.Put(pp)
	for g, tiles := range p.xbars {
		base := g * p.perGroup
		count := minInt(p.perGroup, p.N-base)
		// Zero the group's outputs, then accumulate chunk partials
		// (the gather crossbars' summation).
		for v := 0; v < count; v++ {
			dst[base+v] = 0
		}
		for c, xb := range tiles {
			lo := c * m
			hi := minInt(lo+m, p.Dims)
			if cap(*pp) < xb.Vectors() {
				*pp = make([]int64, xb.Vectors())
			}
			part := (*pp)[:xb.Vectors()]
			if _, err := xb.DotAllInto(input[lo:hi], p.OpBits, part); err != nil {
				return fmt.Errorf("pim: querying payload %q group %d chunk %d: %w", p.Name, g, c, err)
			}
			for v := 0; v < count; v++ {
				dst[base+v] += part[v]
			}
		}
	}
	return nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
