package pim

import (
	"fmt"

	"pimmine/internal/arch"
)

// §V-C closes with: "it is flexible to separate the crossbars into
// multiple groups according to practical applications, for parallelly
// computing multiple functions." QueryAllParallel implements that: the
// given payloads occupy disjoint crossbar groups (their joint capacity
// was reserved at Program time via vectorsPerObject), so their passes
// fire concurrently and the critical path is the *maximum* of the
// per-payload cycle counts rather than the sum. LB_PIM-FNN benefits
// directly — its ⌊µ⌋ and ⌊σ⌋ payloads (Fig 10's crossbar a / crossbar b)
// produce both dot products in one array-wide pass.
func (e *Engine) QueryAllParallel(meter *arch.Meter, fn string, ps []*Payload, inputs [][]uint32, dsts [][]int64) ([][]int64, error) {
	if len(ps) == 0 {
		return nil, fmt.Errorf("pim: parallel query needs at least one payload")
	}
	if len(inputs) != len(ps) {
		return nil, fmt.Errorf("pim: %d payloads with %d inputs", len(ps), len(inputs))
	}
	if dsts == nil {
		dsts = make([][]int64, len(ps))
	}
	if len(dsts) != len(ps) {
		return nil, fmt.Errorf("pim: %d payloads with %d result buffers", len(ps), len(dsts))
	}
	f0, r0 := e.FaultCounts()
	var maxCycles, bufBytes int64
	for i, p := range ps {
		// Run each pass without metering, accounting jointly below.
		out, err := e.QueryAll(nil, fn, p, inputs[i], dsts[i])
		if err != nil {
			return nil, err
		}
		dsts[i] = out
		cycles := int64(e.cfg.Crossbar.InputCycles(p.OpBits) + p.gatherLevels)
		if cycles > maxCycles {
			maxCycles = cycles
		}
		bufBytes += int64(p.N) * 8
	}
	if meter != nil {
		c := meter.C(fn)
		c.PIMCycles += maxCycles // concurrent groups: critical path only
		c.PIMBufBytes += bufBytes
		// Fault activity of the joint pass, recovered from the engine's
		// cumulative counters (the inner QueryAll calls ran meterless).
		f1, r1 := e.FaultCounts()
		c.PIMFaults += f1 - f0
		c.PIMRecovered += r1 - r0
		c.Calls++
	}
	return dsts, nil
}
