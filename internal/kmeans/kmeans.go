// Package kmeans implements the k-means clustering algorithms evaluated
// in §VI-D of the paper and their PIM-optimized counterparts:
//
//	Standard   Lloyd's algorithm                       [48]
//	Elkan      triangle inequality, k lower bounds     [30]
//	Drake      adaptive number of lower bounds         [31]
//	Yinyang    global + group filters                  [29]
//	*-PIM      the same with LB_PIM-ED (Theorem 1) consulted before
//	           every exact ED computation in the assign step (§VI-D)
//
// All accelerated variants are exact: given the same initial centers they
// produce identical assignments and centers to Lloyd's algorithm at every
// iteration (integration-tested). Algorithms record modeled hardware
// activity into arch.Meters for the timing model.
package kmeans

import (
	"fmt"
	"math"
	"math/rand"

	"pimmine/internal/arch"
	"pimmine/internal/measure"
	"pimmine/internal/vec"
)

// Result summarizes one clustering run.
type Result struct {
	Assign     []int
	Centers    *vec.Matrix
	Iterations int
	Converged  bool
	SSE        float64 // sum of squared distances to assigned centers
}

// Algorithm is one k-means variant bound to a dataset.
type Algorithm interface {
	Name() string
	// Run clusters the data starting from the given centers (copied, not
	// mutated) for at most maxIters iterations, recording activity in the
	// meter. It stops early once assignments are stable.
	Run(initial *vec.Matrix, maxIters int, meter *arch.Meter) *Result
}

// InitCenters picks k distinct data rows as initial centers using a seeded
// permutation, so every algorithm in a comparison starts identically
// (§VI-A: "The same initial centers are chosen").
func InitCenters(data *vec.Matrix, k int, seed int64) (*vec.Matrix, error) {
	if k <= 0 || k > data.N {
		return nil, fmt.Errorf("kmeans: k=%d outside [1,%d]", k, data.N)
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(data.N)
	centers := vec.NewMatrix(k, data.D)
	for i := 0; i < k; i++ {
		copy(centers.Row(i), data.Row(perm[i]))
	}
	return centers, nil
}

// operandBytes mirrors the 32-bit modeled operand width (see knn).
const operandBytes = 4

// costExactDist records one exact true-ED distance computation (3 ops per
// dim + sqrt); seq=true for streaming scans (Lloyd), false for selective
// access (bound-based variants).
func costExactDist(c *arch.Counters, n int64, d int, seq bool) {
	c.Ops += n * int64(3*d)
	c.ALUOps += n // sqrt
	if seq {
		c.SeqBytes += n * int64(d) * operandBytes
	} else {
		c.RandBytes += n * int64(d) * operandBytes
	}
	c.Branches += n
	c.Calls += n
}

// costBoundMaint records n bound maintenance operations (read-modify-write
// of a stored bound plus a comparison).
func costBoundMaint(c *arch.Counters, n int64) {
	c.Ops += n * 3
	c.SeqBytes += n * 2 * operandBytes
	c.Branches += n
	c.Calls += n
}

// costUpdateStep records the update step over the whole dataset: summing
// every point into its center accumulator and dividing by counts.
func costUpdateStep(c *arch.Counters, n int64, d, k int) {
	c.Ops += n*int64(d) + int64(k*d)
	c.ALUOps += int64(k * d) // divisions
	c.SeqBytes += n * int64(d) * operandBytes
	c.Calls++
}

// dist returns the true Euclidean distance between a data row and a center.
func dist(p, c []float64) float64 { return math.Sqrt(measure.SqEuclidean(p, c)) }

// updateCenters recomputes centers as the means of their assigned points.
// Empty clusters keep their previous center (a standard Lloyd convention
// that keeps all algorithms comparable). Returns per-center shifts.
func updateCenters(data *vec.Matrix, assign []int, centers *vec.Matrix) []float64 {
	k, d := centers.N, centers.D
	sums := vec.NewMatrix(k, d)
	counts := make([]int, k)
	for i := 0; i < data.N; i++ {
		a := assign[i]
		vec.AddTo(sums.Row(a), data.Row(i))
		counts[a]++
	}
	shifts := make([]float64, k)
	for c := 0; c < k; c++ {
		if counts[c] == 0 {
			continue // keep previous center
		}
		row := sums.Row(c)
		vec.Scale(row, 1/float64(counts[c]))
		shifts[c] = dist(centers.Row(c), row)
		copy(centers.Row(c), row)
	}
	return shifts
}

// sse computes the final sum of squared errors.
func sse(data *vec.Matrix, assign []int, centers *vec.Matrix) float64 {
	var s float64
	for i := 0; i < data.N; i++ {
		s += measure.SqEuclidean(data.Row(i), centers.Row(assign[i]))
	}
	return s
}

// argminDist returns the index and true distance of the closest center,
// breaking ties toward the smaller index so all algorithms agree.
func argminDist(p []float64, centers *vec.Matrix) (int, float64) {
	best, bestD := 0, dist(p, centers.Row(0))
	for c := 1; c < centers.N; c++ {
		if d := dist(p, centers.Row(c)); d < bestD {
			best, bestD = c, d
		}
	}
	return best, bestD
}
