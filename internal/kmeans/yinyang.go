package kmeans

import (
	"fmt"
	"math"

	"pimmine/internal/arch"
	"pimmine/internal/vec"
)

// Yinyang accelerates Lloyd with a global filter plus per-group filters
// [29]: centers are partitioned into t ≈ k/10 groups; each point keeps an
// upper bound on its assigned distance and one lower bound per group,
// drastically reducing both distance computations and bound-maintenance
// cost relative to Elkan. With a non-nil assist, LB_PIM-ED is consulted
// before every exact distance (Yinyang-PIM).
type Yinyang struct {
	Data   *vec.Matrix
	assist *Assist
}

// NewYinyang builds the host-only variant.
func NewYinyang(data *vec.Matrix) *Yinyang { return &Yinyang{Data: data} }

// NewYinyangPIM builds the PIM-assisted variant.
func NewYinyangPIM(data *vec.Matrix, assist *Assist) *Yinyang {
	return &Yinyang{Data: data, assist: assist}
}

// Name implements Algorithm.
func (y *Yinyang) Name() string {
	if y.assist != nil {
		return "Yinyang-PIM"
	}
	return "Yinyang"
}

// Run executes Yinyang k-means; results match Lloyd's exactly.
func (y *Yinyang) Run(initial *vec.Matrix, maxIters int, meter *arch.Meter) *Result {
	centers := initial.Clone()
	n, k, d := y.Data.N, centers.N, y.Data.D
	assign := make([]int, n)
	res := &Result{Assign: assign, Centers: centers}

	// Group the centers: t ≈ k/10 groups ([29] groups by a few Lloyd
	// iterations over the centers themselves; grouping affects only
	// efficiency, never correctness). We group by a cheap one-pass
	// clustering of the initial centers.
	t := k / 10
	if t < 1 {
		t = 1
	}
	group := groupCenters(initial, t)
	groups := make([][]int, t)
	for c, g := range group {
		groups[g] = append(groups[g], c)
	}

	ub := make([]float64, n)
	lb := vec.NewMatrix(n, t) // per-group lower bounds

	var exactCount int64
	exactDist := func(i, c int, p []float64, threshold float64) (float64, bool) {
		if y.assist != nil {
			if lbPim := y.assist.LBDist(i, c, meter); lbPim >= threshold {
				return lbPim, false
			}
		}
		exactCount++
		return dist(p, centers.Row(c)), true
	}

	// Initial assignment — iteration 1's assign step is a plain Lloyd
	// assign, so the PIM assist applies to it like any other: pruned
	// centers contribute their (valid) lower bound to the group bounds.
	if y.assist != nil {
		if err := y.assist.BeginIteration(centers, meter); err != nil {
			panic(fmt.Sprintf("kmeans: %s init: %v", y.Name(), err))
		}
	}
	exactCount = 0
	vals := make([]float64, k) // exact distance or PIM bound per center
	for i := 0; i < n; i++ {
		p := y.Data.Row(i)
		best, bestD := 0, dist(p, centers.Row(0))
		exactCount++
		vals[0] = bestD
		for c := 1; c < k; c++ {
			dc, wasExact := exactDist(i, c, p, bestD)
			vals[c] = dc
			if wasExact && dc < bestD {
				best, bestD = c, dc
			}
		}
		assign[i] = best
		ub[i] = bestD
		row := lb.Row(i)
		for g := range groups {
			row[g] = math.Inf(1)
		}
		for c := 0; c < k; c++ {
			if c == best {
				continue
			}
			if g := group[c]; vals[c] < row[g] {
				row[g] = vals[c]
			}
		}
	}
	costExactDist(meter.C(arch.FuncED), exactCount, d, true)
	res.Iterations = 1

	groupShift := make([]float64, t)
	for iter := 1; iter < maxIters; iter++ {
		shifts := updateCenters(y.Data, assign, centers)
		costUpdateStep(meter.C(arch.FuncOther), int64(n), d, k)
		if y.assist != nil {
			if err := y.assist.BeginIteration(centers, meter); err != nil {
				panic(fmt.Sprintf("kmeans: %s iteration: %v", y.Name(), err))
			}
		}
		for g := range groups {
			groupShift[g] = 0
			for _, c := range groups[g] {
				groupShift[g] = math.Max(groupShift[g], shifts[c])
			}
		}

		// Drift the bounds: t per point instead of Elkan's k.
		for i := 0; i < n; i++ {
			ub[i] += shifts[assign[i]]
			row := lb.Row(i)
			for g := 0; g < t; g++ {
				row[g] = math.Max(0, row[g]-groupShift[g])
			}
		}
		costBoundMaint(meter.C(arch.FuncUpdate), int64(n)*int64(t+1))

		res.Iterations = iter + 1
		changed := 0
		exactCount = 0
		for i := 0; i < n; i++ {
			row := lb.Row(i)
			globalLB := math.Inf(1)
			for g := 0; g < t; g++ {
				globalLB = math.Min(globalLB, row[g])
			}
			if ub[i] <= globalLB {
				continue // global filter
			}
			p := y.Data.Row(i)
			a := assign[i]
			da := dist(p, centers.Row(a))
			exactCount++
			ub[i] = da
			if ub[i] <= globalLB {
				continue
			}
			best, bestD := a, da
			// Scan the groups the group filter cannot exclude; groups
			// that stay excluded keep their drifted bounds.
			for g := 0; g < t; g++ {
				if row[g] >= bestD && row[g] >= ub[i] {
					continue
				}
				min1, min2 := math.Inf(1), math.Inf(1)
				min1C := -1
				for _, c := range groups[g] {
					if c == a {
						continue
					}
					dc, wasExact := exactDist(i, c, p, bestD)
					if !wasExact {
						// A PIM-pruned center still contributes its
						// lower bound to the group bound.
						if dc < min1 {
							min2, min1, min1C = min1, dc, c
						} else if dc < min2 {
							min2 = dc
						}
						continue
					}
					if dc < min1 {
						min2, min1, min1C = min1, dc, c
					} else if dc < min2 {
						min2 = dc
					}
					if dc < bestD {
						best, bestD = c, dc
					}
				}
				// New group bound: the closest non-assigned center seen.
				if min1C == best && best != a {
					row[g] = min2
				} else {
					row[g] = min1
				}
			}
			if best != a {
				// The dethroned center a now belongs to its group's
				// bound pool: its exact distance bounds the group.
				row[group[a]] = math.Min(row[group[a]], da)
				assign[i] = best
				ub[i] = bestD
				changed++
			}
		}
		costExactDist(meter.C(arch.FuncED), exactCount, d /*seq*/, true)
		meter.C(arch.FuncOther).Ops += int64(n) * int64(t)
		if changed == 0 {
			res.Converged = true
			break
		}
	}
	res.SSE = sse(y.Data, assign, centers)
	return res
}

// groupCenters buckets the k initial centers into t groups with a short
// Lloyd run over the centers themselves (5 iterations, deterministic
// seeding from the first t centers).
func groupCenters(centers *vec.Matrix, t int) []int {
	k := centers.N
	group := make([]int, k)
	if t >= k {
		for c := range group {
			group[c] = c % t
		}
		return group
	}
	proto := vec.NewMatrix(t, centers.D)
	for g := 0; g < t; g++ {
		copy(proto.Row(g), centers.Row(g*k/t)) // spread seeds over the list
	}
	for iter := 0; iter < 5; iter++ {
		for c := 0; c < k; c++ {
			group[c], _ = argminDist(centers.Row(c), proto)
		}
		updateCenters(centers, group, proto)
	}
	for c := 0; c < k; c++ {
		group[c], _ = argminDist(centers.Row(c), proto)
	}
	return group
}
