package kmeans

import (
	"math"
	"testing"

	"pimmine/internal/arch"
	"pimmine/internal/dataset"
	"pimmine/internal/pim"
	"pimmine/internal/quant"
	"pimmine/internal/vec"
)

func testData(t *testing.T, n, d int) *vec.Matrix {
	t.Helper()
	prof := dataset.Profile{Name: "test", FullN: n, D: d, Clusters: 6, Correlation: 0.7, Spread: 0.12}
	return dataset.Generate(prof, n, 99).X
}

func newAssist(t *testing.T, data *vec.Matrix) *Assist {
	t.Helper()
	eng, err := pim.NewEngine(arch.Default(), pim.ModeExact)
	if err != nil {
		t.Fatal(err)
	}
	q, err := quant.New(quant.DefaultAlpha)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAssist(eng, data, q, data.N)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestInitCenters(t *testing.T) {
	data := testData(t, 100, 8)
	c1, err := InitCenters(data, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := InitCenters(data, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !vec.Equal(c1.Data, c2.Data, 0) {
		t.Fatal("InitCenters must be deterministic per seed")
	}
	c3, _ := InitCenters(data, 5, 2)
	if vec.Equal(c1.Data, c3.Data, 0) {
		t.Fatal("different seeds should give different centers")
	}
	if _, err := InitCenters(data, 0, 1); err == nil {
		t.Fatal("k=0 must be rejected")
	}
	if _, err := InitCenters(data, 101, 1); err == nil {
		t.Fatal("k>N must be rejected")
	}
}

// The central exactness claim: every accelerated variant — host-only and
// PIM-assisted — produces Lloyd's assignments, centers, iteration count
// and SSE for the same initial centers.
func TestAllVariantsMatchLloyd(t *testing.T) {
	data := testData(t, 500, 24)
	assist := newAssist(t, data)
	for _, k := range []int{2, 8, 25} {
		initial, err := InitCenters(data, k, 7)
		if err != nil {
			t.Fatal(err)
		}
		ref := NewLloyd(data).Run(initial, 50, arch.NewMeter())
		algos := []Algorithm{
			NewLloydPIM(data, assist),
			NewElkan(data),
			NewElkanPIM(data, assist),
			NewHamerly(data),
			NewHamerlyPIM(data, assist),
			NewDrake(data),
			NewDrakePIM(data, assist),
			NewYinyang(data),
			NewYinyangPIM(data, assist),
		}
		for _, a := range algos {
			got := a.Run(initial, 50, arch.NewMeter())
			if got.Iterations != ref.Iterations {
				t.Errorf("k=%d %s: %d iterations, Lloyd took %d", k, a.Name(), got.Iterations, ref.Iterations)
			}
			if !got.Converged || !ref.Converged {
				t.Errorf("k=%d %s: converged=%v, Lloyd=%v", k, a.Name(), got.Converged, ref.Converged)
			}
			for i := range ref.Assign {
				if got.Assign[i] != ref.Assign[i] {
					t.Fatalf("k=%d %s: point %d assigned to %d, Lloyd assigns %d",
						k, a.Name(), i, got.Assign[i], ref.Assign[i])
				}
			}
			if !vec.Equal(got.Centers.Data, ref.Centers.Data, 1e-9) {
				t.Fatalf("k=%d %s: centers diverge from Lloyd", k, a.Name())
			}
			if math.Abs(got.SSE-ref.SSE) > 1e-6*(1+ref.SSE) {
				t.Fatalf("k=%d %s: SSE=%v, Lloyd=%v", k, a.Name(), got.SSE, ref.SSE)
			}
		}
	}
}

// The bound-based variants must actually avoid exact distance work — and
// the PIM variants must avoid even more (that is Table 7's whole point).
func TestAcceleratedVariantsComputeFewerDistances(t *testing.T) {
	data := testData(t, 600, 24)
	assist := newAssist(t, data)
	initial, err := InitCenters(data, 16, 7)
	if err != nil {
		t.Fatal(err)
	}
	edOps := func(a Algorithm) int64 {
		m := arch.NewMeter()
		a.Run(initial, 50, m)
		return m.Get(arch.FuncED).Ops
	}
	lloyd := edOps(NewLloyd(data))
	elkan := edOps(NewElkan(data))
	lloydPIM := edOps(NewLloydPIM(data, assist))
	if elkan >= lloyd {
		t.Fatalf("Elkan ED ops (%d) not below Lloyd's (%d)", elkan, lloyd)
	}
	if lloydPIM >= lloyd {
		t.Fatalf("Standard-PIM ED ops (%d) not below Standard's (%d)", lloydPIM, lloyd)
	}
}

// Elkan's bound maintenance is heavy (k bounds per point); Yinyang's is
// light (k/10 groups). The meters must reflect that ordering — it drives
// the paper's observation that Elkan-PIM barely helps.
func TestBoundMaintenanceOrdering(t *testing.T) {
	data := testData(t, 400, 16)
	initial, err := InitCenters(data, 20, 3)
	if err != nil {
		t.Fatal(err)
	}
	maint := func(a Algorithm) int64 {
		m := arch.NewMeter()
		a.Run(initial, 50, m)
		return m.Get(arch.FuncUpdate).SeqBytes
	}
	elkan := maint(NewElkan(data))
	yy := maint(NewYinyang(data))
	if elkan <= yy {
		t.Fatalf("Elkan bound maintenance (%d bytes) not above Yinyang's (%d)", elkan, yy)
	}
}

func TestEmptyClusterKeepsCenter(t *testing.T) {
	// Two far clusters, k=3 with one center placed far from all data: it
	// captures nothing and must keep its position.
	rows := [][]float64{{0, 0}, {0.01, 0}, {1, 1}, {0.99, 1}}
	data, err := vec.FromRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	initial, err := vec.FromRows([][]float64{{0, 0}, {1, 1}, {0.5, 12}})
	if err != nil {
		t.Fatal(err)
	}
	res := NewLloyd(data).Run(initial, 10, arch.NewMeter())
	far := res.Centers.Row(2)
	if far[0] != 0.5 || far[1] != 12 {
		t.Fatalf("empty cluster center moved to %v", far)
	}
}

func TestMaxItersRespected(t *testing.T) {
	data := testData(t, 300, 16)
	initial, _ := InitCenters(data, 10, 5)
	res := NewLloyd(data).Run(initial, 2, arch.NewMeter())
	if res.Iterations > 2 {
		t.Fatalf("ran %d iterations with maxIters=2", res.Iterations)
	}
}

// PIM assist accounting: k PIM passes per iteration, buffer traffic
// proportional to N·k.
func TestAssistAccounting(t *testing.T) {
	data := testData(t, 200, 16)
	assist := newAssist(t, data)
	initial, _ := InitCenters(data, 8, 1)
	m := arch.NewMeter()
	res := NewLloydPIM(data, assist).Run(initial, 50, m)
	c := m.Get(AssistFuncName)
	wantBuf := int64(res.Iterations) * 8 * int64(data.N) * 8 // iters × k × N × 8B
	if c.PIMBufBytes != wantBuf {
		t.Fatalf("PIMBufBytes = %d, want %d", c.PIMBufBytes, wantBuf)
	}
	if c.PIMCycles == 0 {
		t.Fatal("no PIM cycles recorded")
	}
}

func TestInitCentersPlusPlus(t *testing.T) {
	data := testData(t, 600, 16)
	pp1, err := InitCentersPlusPlus(data, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	pp2, err := InitCentersPlusPlus(data, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !vec.Equal(pp1.Data, pp2.Data, 0) {
		t.Fatal("k-means++ must be deterministic per seed")
	}
	if _, err := InitCentersPlusPlus(data, 0, 1); err == nil {
		t.Fatal("k=0 must be rejected")
	}

	// Quality: averaged over seeds, ++ seeding starts Lloyd at a lower
	// SSE than uniform seeding.
	var ppSSE, uniSSE float64
	const trials = 5
	for seed := int64(0); seed < trials; seed++ {
		pp, err := InitCentersPlusPlus(data, 12, seed)
		if err != nil {
			t.Fatal(err)
		}
		uni, err := InitCenters(data, 12, seed)
		if err != nil {
			t.Fatal(err)
		}
		ppSSE += NewLloyd(data).Run(pp, 1, arch.NewMeter()).SSE
		uniSSE += NewLloyd(data).Run(uni, 1, arch.NewMeter()).SSE
	}
	if ppSSE >= uniSSE {
		t.Fatalf("k-means++ mean first-iteration SSE %.3f not below uniform %.3f", ppSSE/trials, uniSSE/trials)
	}

	// All variants still agree under ++ seeding.
	initial, _ := InitCentersPlusPlus(data, 8, 4)
	ref := NewLloyd(data).Run(initial, 50, arch.NewMeter())
	assist := newAssist(t, data)
	for _, a := range []Algorithm{NewElkan(data), NewYinyangPIM(data, assist)} {
		got := a.Run(initial, 50, arch.NewMeter())
		for i := range ref.Assign {
			if got.Assign[i] != ref.Assign[i] {
				t.Fatalf("%s diverges under k-means++ seeding at %d", a.Name(), i)
			}
		}
	}
}

func TestInitCentersPlusPlusDuplicates(t *testing.T) {
	// Duplicate-heavy data exercises the zero-mass fallback.
	rows := make([][]float64, 20)
	for i := range rows {
		rows[i] = []float64{0.5, 0.5}
	}
	data, err := vec.FromRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := InitCentersPlusPlus(data, 5, 1); err != nil {
		t.Fatal(err)
	}
}
