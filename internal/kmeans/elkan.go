package kmeans

import (
	"fmt"
	"math"

	"pimmine/internal/arch"
	"pimmine/internal/vec"
)

// Elkan accelerates Lloyd with the triangle inequality [30]: an upper
// bound ub(p) on d(p, a(p)) and k lower bounds lb(p,c), maintained across
// iterations via center drift, avoid most exact distance computations.
// With a non-nil assist, LB_PIM-ED is consulted before every exact
// distance (Elkan-PIM).
type Elkan struct {
	Data   *vec.Matrix
	assist *Assist
}

// NewElkan builds the host-only variant.
func NewElkan(data *vec.Matrix) *Elkan { return &Elkan{Data: data} }

// NewElkanPIM builds the PIM-assisted variant.
func NewElkanPIM(data *vec.Matrix, assist *Assist) *Elkan {
	return &Elkan{Data: data, assist: assist}
}

// Name implements Algorithm.
func (e *Elkan) Name() string {
	if e.assist != nil {
		return "Elkan-PIM"
	}
	return "Elkan"
}

// Run executes Elkan's algorithm. The result is identical to Lloyd's for
// the same initial centers (bounds only skip provably losing centers).
func (e *Elkan) Run(initial *vec.Matrix, maxIters int, meter *arch.Meter) *Result {
	centers := initial.Clone()
	n, k, d := e.Data.N, centers.N, e.Data.D
	assign := make([]int, n)
	ub := make([]float64, n)
	lb := vec.NewMatrix(n, k)
	res := &Result{Assign: assign, Centers: centers}

	// exactDist computes d(p,c) with optional PIM pre-filtering: when the
	// PIM lower bound already reaches threshold, the exact computation is
	// skipped and the bound value is returned with ok=false.
	var exactCount int64
	exactDist := func(i, c int, p []float64, threshold float64) (float64, bool) {
		if e.assist != nil {
			if lbPim := e.assist.LBDist(i, c, meter); lbPim >= threshold {
				return lbPim, false
			}
		}
		exactCount++
		return dist(p, centers.Row(c)), true
	}

	// Initial assignment — iteration 1's assign step is a plain Lloyd
	// assign, so the PIM assist applies: pruned centers store their
	// (valid, near-tight) PIM lower bound instead of the exact distance.
	if e.assist != nil {
		if err := e.assist.BeginIteration(centers, meter); err != nil {
			panic(fmt.Sprintf("kmeans: %s init: %v", e.Name(), err))
		}
	}
	exactCount = 0
	for i := 0; i < n; i++ {
		p := e.Data.Row(i)
		best, bestD := 0, dist(p, centers.Row(0))
		exactCount++
		lb.Row(i)[0] = bestD
		for c := 1; c < k; c++ {
			dc, wasExact := exactDist(i, c, p, bestD)
			lb.Row(i)[c] = dc
			if wasExact && dc < bestD {
				best, bestD = c, dc
			}
		}
		assign[i] = best
		ub[i] = bestD
	}
	costExactDist(meter.C(arch.FuncED), exactCount, d, true)
	res.Iterations = 1

	cc := vec.NewMatrix(k, k) // center-center distances
	sc := make([]float64, k)  // s(c) = ½ min_{c'≠c} d(c,c')

	for iter := 1; iter < maxIters; iter++ {
		// Update step from the previous assignment.
		shifts := updateCenters(e.Data, assign, centers)
		costUpdateStep(meter.C(arch.FuncOther), int64(n), d, k)
		if e.assist != nil {
			if err := e.assist.BeginIteration(centers, meter); err != nil {
				panic(fmt.Sprintf("kmeans: %s iteration: %v", e.Name(), err))
			}
		}

		// Drift the bounds (the expensive maintenance the paper's
		// profiling attributes up to 45% of Elkan's time to).
		for i := 0; i < n; i++ {
			ub[i] += shifts[assign[i]]
			row := lb.Row(i)
			for c := 0; c < k; c++ {
				row[c] = math.Max(0, row[c]-shifts[c])
			}
		}
		costBoundMaint(meter.C(arch.FuncUpdate), int64(n)*int64(k+1))

		// Center-center distances and s(c).
		for a := 0; a < k; a++ {
			sc[a] = math.Inf(1)
			for b := 0; b < k; b++ {
				if a == b {
					continue
				}
				dc := dist(centers.Row(a), centers.Row(b))
				cc.Row(a)[b] = dc
				if half := dc / 2; half < sc[a] {
					sc[a] = half
				}
			}
		}
		costExactDist(meter.C(arch.FuncED), int64(k)*int64(k-1), d, true)

		res.Iterations = iter + 1
		changed := 0
		exactCount = 0
		for i := 0; i < n; i++ {
			a := assign[i]
			if ub[i] <= sc[a] {
				continue
			}
			p := e.Data.Row(i)
			tight := false
			for c := 0; c < k; c++ {
				if c == a {
					continue
				}
				if ub[i] <= lb.Row(i)[c] || ub[i] <= cc.Row(a)[c]/2 {
					continue
				}
				if !tight {
					// Tighten ub with the exact current distance.
					da := dist(p, centers.Row(a))
					exactCount++
					ub[i] = da
					lb.Row(i)[a] = da
					tight = true
					if ub[i] <= lb.Row(i)[c] || ub[i] <= cc.Row(a)[c]/2 {
						continue
					}
				}
				dc, wasExact := exactDist(i, c, p, ub[i])
				lb.Row(i)[c] = dc
				if wasExact && dc < ub[i] {
					a = c
					ub[i] = dc
				}
			}
			if a != assign[i] {
				assign[i] = a
				changed++
			}
		}
		costExactDist(meter.C(arch.FuncED), exactCount, d /*seq*/, true)
		meter.C(arch.FuncOther).Ops += int64(n) * int64(k)
		if changed == 0 {
			res.Converged = true
			break
		}
	}
	res.SSE = sse(e.Data, assign, centers)
	return res
}
