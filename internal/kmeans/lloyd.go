package kmeans

import (
	"fmt"

	"pimmine/internal/arch"
	"pimmine/internal/vec"
)

// Lloyd is the standard two-step iterative refinement [48]: assign every
// point to its nearest center, then recompute centers.
type Lloyd struct {
	Data *vec.Matrix
}

// NewLloyd builds the baseline algorithm.
func NewLloyd(data *vec.Matrix) *Lloyd { return &Lloyd{Data: data} }

// Name implements Algorithm.
func (l *Lloyd) Name() string { return "Standard" }

// Run executes Lloyd's algorithm.
func (l *Lloyd) Run(initial *vec.Matrix, maxIters int, meter *arch.Meter) *Result {
	centers := initial.Clone()
	n, k := l.Data.N, centers.N
	assign := make([]int, n)
	for i := range assign {
		assign[i] = -1
	}
	res := &Result{Assign: assign, Centers: centers}
	for iter := 0; iter < maxIters; iter++ {
		res.Iterations = iter + 1
		changed := 0
		for i := 0; i < n; i++ {
			best, _ := argminDist(l.Data.Row(i), centers)
			if best != assign[i] {
				assign[i] = best
				changed++
			}
		}
		costExactDist(meter.C(arch.FuncED), int64(n)*int64(k), l.Data.D, true)
		meter.C(arch.FuncOther).Ops += int64(n) * int64(k)
		if changed == 0 {
			res.Converged = true
			break
		}
		updateCenters(l.Data, assign, centers)
		costUpdateStep(meter.C(arch.FuncOther), int64(n), l.Data.D, k)
	}
	res.SSE = sse(l.Data, assign, centers)
	return res
}

// LloydPIM is Lloyd with LB_PIM-ED consulted before every exact distance
// in the assign step (Standard-PIM in Table 7).
type LloydPIM struct {
	Data   *vec.Matrix
	assist *Assist
}

// NewLloydPIM wires the PIM assist over the dataset.
func NewLloydPIM(data *vec.Matrix, assist *Assist) *LloydPIM {
	return &LloydPIM{Data: data, assist: assist}
}

// Name implements Algorithm.
func (l *LloydPIM) Name() string { return "Standard-PIM" }

// Run executes PIM-assisted Lloyd. Assignments are identical to Lloyd's:
// a center is only skipped when its lower-bounded distance already meets
// or exceeds the current best (ties keep the earlier index, matching
// argminDist).
func (l *LloydPIM) Run(initial *vec.Matrix, maxIters int, meter *arch.Meter) *Result {
	centers := initial.Clone()
	n, k := l.Data.N, centers.N
	assign := make([]int, n)
	for i := range assign {
		assign[i] = -1
	}
	res := &Result{Assign: assign, Centers: centers}
	for iter := 0; iter < maxIters; iter++ {
		res.Iterations = iter + 1
		if err := l.assist.BeginIteration(centers, meter); err != nil {
			panic(fmt.Sprintf("kmeans: Standard-PIM iteration: %v", err))
		}
		changed := 0
		exact := int64(0)
		for i := 0; i < n; i++ {
			p := l.Data.Row(i)
			// §V-B: the pruning threshold is "the distance to [the]
			// currently assigned center" — seed the scan with the exact
			// distance to last iteration's assignment so the PIM bound
			// prunes nearly every other center.
			best := assign[i]
			if best < 0 {
				best = 0
			}
			bestD := dist(p, centers.Row(best))
			exact++
			for c := 0; c < k; c++ {
				if c == best {
					continue
				}
				if l.assist.LBDist(i, c, meter) >= bestD {
					continue
				}
				d := dist(p, centers.Row(c))
				exact++
				if d < bestD || (d == bestD && c < best) {
					best, bestD = c, d
				}
			}
			if best != assign[i] {
				assign[i] = best
				changed++
			}
		}
		costExactDist(meter.C(arch.FuncED), exact, l.Data.D /*seq*/, true)
		meter.C(arch.FuncOther).Ops += int64(n) * int64(k)
		if changed == 0 {
			res.Converged = true
			break
		}
		updateCenters(l.Data, assign, centers)
		costUpdateStep(meter.C(arch.FuncOther), int64(n), l.Data.D, k)
	}
	res.SSE = sse(l.Data, assign, centers)
	return res
}
