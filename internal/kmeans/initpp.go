package kmeans

import (
	"fmt"
	"math/rand"

	"pimmine/internal/measure"
	"pimmine/internal/vec"
)

// InitCentersPlusPlus picks k initial centers with the k-means++ seeding
// of Arthur & Vassilvitskii (SODA 2007): the first center uniformly, each
// subsequent one with probability proportional to its squared distance to
// the nearest already-chosen center. It typically starts Lloyd's
// iteration much closer to a good optimum than uniform seeding (tested),
// and — like InitCenters — is deterministic per seed so every algorithm
// variant can share it.
func InitCentersPlusPlus(data *vec.Matrix, k int, seed int64) (*vec.Matrix, error) {
	if k <= 0 || k > data.N {
		return nil, fmt.Errorf("kmeans: k=%d outside [1,%d]", k, data.N)
	}
	rng := rand.New(rand.NewSource(seed))
	centers := vec.NewMatrix(k, data.D)
	first := rng.Intn(data.N)
	copy(centers.Row(0), data.Row(first))

	// d2[i] tracks the squared distance to the nearest chosen center.
	d2 := make([]float64, data.N)
	var total float64
	for i := 0; i < data.N; i++ {
		d2[i] = measure.SqEuclidean(data.Row(i), centers.Row(0))
		total += d2[i]
	}
	for c := 1; c < k; c++ {
		var next int
		if total <= 0 {
			// All remaining mass at distance zero (duplicate-heavy data):
			// fall back to uniform choice.
			next = rng.Intn(data.N)
		} else {
			target := rng.Float64() * total
			acc := 0.0
			next = data.N - 1
			for i := 0; i < data.N; i++ {
				acc += d2[i]
				if acc >= target {
					next = i
					break
				}
			}
		}
		copy(centers.Row(c), data.Row(next))
		total = 0
		for i := 0; i < data.N; i++ {
			if d := measure.SqEuclidean(data.Row(i), centers.Row(c)); d < d2[i] {
				d2[i] = d
			}
			total += d2[i]
		}
	}
	return centers, nil
}
