package kmeans

import (
	"fmt"
	"math"

	"pimmine/internal/arch"
	"pimmine/internal/pim"
	"pimmine/internal/pimbound"
	"pimmine/internal/quant"
	"pimmine/internal/vec"
)

// Assist supplies LB_PIM-ED(point, center) bounds to the PIM k-means
// variants. The data points' floor vectors are programmed onto the PIM
// array once (the points never change); at the start of every iteration
// the k current centers are quantized and k batched dot-product passes
// produce ⌊p̄⌋·⌊c̄⌋ for every (point, center) pair. Theorem 1 then turns
// each into a lower bound on the squared distance, consulted before any
// exact ED computation in the assign step (§VI-D: "The bound contributes
// to filter far-away centers, and survived ones call exact ED
// calculation").
type Assist struct {
	Ix   *pimbound.EDIndex
	eng  *pim.Engine
	pay  *pim.Payload
	dots [][]int64 // [center][point]
	qfs  []pimbound.EDQuery
}

// AssistFuncName is the meter bucket for PIM bound activity.
const AssistFuncName = "LBPIM-ED"

// NewAssist quantizes the dataset and programs the payload. capacityN is
// the full-scale cardinality used for the Theorem 4 admission check.
func NewAssist(eng *pim.Engine, data *vec.Matrix, q quant.Quantizer, capacityN int) (*Assist, error) {
	if !eng.Model().Fits(capacityN, data.D, 1) {
		return nil, fmt.Errorf("kmeans: %d-dim floors for N=%d exceed PIM capacity", data.D, capacityN)
	}
	ix := pimbound.BuildED(data, q)
	a := &Assist{Ix: ix, eng: eng}
	var err error
	a.pay, err = eng.Program("kmeans-pim/points", data.N, data.D, 1, ix.Floor)
	if err != nil {
		return nil, err
	}
	return a, nil
}

// RecordPreprocessing charges the offline payload programming to a meter.
func (a *Assist) RecordPreprocessing(meter *arch.Meter) {
	pim.RecordProgramCost(meter, AssistFuncName, a.pay)
}

// BeginIteration quantizes the current centers and runs one PIM pass per
// center, making LB available for every (point, center) pair.
func (a *Assist) BeginIteration(centers *vec.Matrix, meter *arch.Meter) error {
	k := centers.N
	if cap(a.dots) < k {
		a.dots = make([][]int64, k)
	}
	a.dots = a.dots[:k]
	if cap(a.qfs) < k {
		a.qfs = make([]pimbound.EDQuery, k)
	}
	a.qfs = a.qfs[:k]
	for c := 0; c < k; c++ {
		a.qfs[c] = a.Ix.Query(clampUnit(centers.Row(c)))
		var err error
		a.dots[c], err = a.eng.QueryAll(meter, AssistFuncName, a.pay, a.qfs[c].Floor, a.dots[c])
		if err != nil {
			return err
		}
	}
	return nil
}

// LBDist returns a lower bound on the *true* distance between point p and
// center c (√ of Theorem 1's squared-ED bound, clamped at 0), and records
// the host-side G cost (Fig 8: Φ(p) and the dot product move; Φ(c̄) is
// cached per center).
func (a *Assist) LBDist(p, c int, meter *arch.Meter) float64 {
	lb := a.Ix.LB(p, a.qfs[c], a.dots[c][p])
	mc := meter.C(AssistFuncName)
	mc.Ops += 8
	mc.ALUOps++ // sqrt
	mc.SeqBytes += 2 * operandBytes
	mc.Branches++
	mc.Calls++
	if lb <= 0 {
		return 0
	}
	return math.Sqrt(lb)
}

// clampUnit returns a copy of v with values nudged into [0,1]; centers are
// means of in-range points so only float round-off can stray outside.
func clampUnit(v []float64) []float64 {
	out := make([]float64, len(v))
	for i, x := range v {
		switch {
		case x < 0:
			out[i] = 0
		case x > 1:
			out[i] = 1
		default:
			out[i] = x
		}
	}
	return out
}
