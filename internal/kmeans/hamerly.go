package kmeans

import (
	"fmt"
	"math"

	"pimmine/internal/arch"
	"pimmine/internal/vec"
)

// Hamerly accelerates Lloyd with a single lower bound per point (Hamerly,
// SDM 2010): lb(p) bounds the distance to the closest non-assigned
// center, and ub(p) bounds the distance to the assigned one. Drake [31]
// interpolates between Hamerly (1 bound) and Elkan (k bounds), so this
// completes the family the paper evaluates. With a non-nil assist,
// LB_PIM-ED is consulted before every exact distance (Hamerly-PIM).
type Hamerly struct {
	Data   *vec.Matrix
	assist *Assist
}

// NewHamerly builds the host-only variant.
func NewHamerly(data *vec.Matrix) *Hamerly { return &Hamerly{Data: data} }

// NewHamerlyPIM builds the PIM-assisted variant.
func NewHamerlyPIM(data *vec.Matrix, assist *Assist) *Hamerly {
	return &Hamerly{Data: data, assist: assist}
}

// Name implements Algorithm.
func (h *Hamerly) Name() string {
	if h.assist != nil {
		return "Hamerly-PIM"
	}
	return "Hamerly"
}

// Run executes Hamerly's algorithm; results match Lloyd's exactly.
func (h *Hamerly) Run(initial *vec.Matrix, maxIters int, meter *arch.Meter) *Result {
	centers := initial.Clone()
	n, k, d := h.Data.N, centers.N, h.Data.D
	assign := make([]int, n)
	ub := make([]float64, n)
	lb := make([]float64, n)
	res := &Result{Assign: assign, Centers: centers}

	var exactCount int64
	exactDist := func(i, c int, p []float64, threshold float64) (float64, bool) {
		if h.assist != nil {
			if lbPim := h.assist.LBDist(i, c, meter); lbPim >= threshold {
				return lbPim, false
			}
		}
		exactCount++
		return dist(p, centers.Row(c)), true
	}

	// scanPoint assigns p exactly, producing ub = d(p, best) and
	// lb = a lower bound on the second-closest center's distance.
	scanPoint := func(i int) {
		p := h.Data.Row(i)
		best, bestD := 0, dist(p, centers.Row(0))
		exactCount++
		second := math.Inf(1)
		for c := 1; c < k; c++ {
			dc, wasExact := exactDist(i, c, p, bestD)
			if wasExact && dc < bestD {
				second = bestD
				best, bestD = c, dc
				continue
			}
			// dc is either an exact distance ≥ bestD or a valid lower
			// bound; both lower-bound the non-best minimum.
			if dc < second {
				second = dc
			}
		}
		assign[i] = best
		ub[i] = bestD
		lb[i] = second
	}

	// Initial assignment (= iteration 1's assign step).
	if h.assist != nil {
		if err := h.assist.BeginIteration(centers, meter); err != nil {
			panic(fmt.Sprintf("kmeans: %s init: %v", h.Name(), err))
		}
	}
	for i := 0; i < n; i++ {
		scanPoint(i)
	}
	costExactDist(meter.C(arch.FuncED), exactCount, d, true)
	res.Iterations = 1

	sc := make([]float64, k) // ½ distance to the nearest other center
	for iter := 1; iter < maxIters; iter++ {
		shifts := updateCenters(h.Data, assign, centers)
		costUpdateStep(meter.C(arch.FuncOther), int64(n), d, k)
		if h.assist != nil {
			if err := h.assist.BeginIteration(centers, meter); err != nil {
				panic(fmt.Sprintf("kmeans: %s iteration: %v", h.Name(), err))
			}
		}
		maxShift, secondShift := 0.0, 0.0
		for _, s := range shifts {
			if s > maxShift {
				maxShift, secondShift = s, maxShift
			} else if s > secondShift {
				secondShift = s
			}
		}

		// Drift the two bounds per point — Hamerly's whole selling point
		// is that this maintenance is O(N), not O(N·k).
		for i := 0; i < n; i++ {
			ub[i] += shifts[assign[i]]
			// The non-assigned minimum can shrink by at most the largest
			// shift among centers other than a(p): the second-largest
			// shift when a(p) itself moved the most (ties make
			// secondShift == maxShift, which stays valid).
			drop := maxShift
			if shifts[assign[i]] == maxShift {
				drop = secondShift
			}
			lb[i] = math.Max(0, lb[i]-drop)
		}
		costBoundMaint(meter.C(arch.FuncUpdate), int64(n)*2)

		// Center separation: s(c) = ½ min_{c'≠c} d(c,c').
		for a := 0; a < k; a++ {
			sc[a] = math.Inf(1)
			for bC := 0; bC < k; bC++ {
				if a == bC {
					continue
				}
				if dc := dist(centers.Row(a), centers.Row(bC)) / 2; dc < sc[a] {
					sc[a] = dc
				}
			}
		}
		costExactDist(meter.C(arch.FuncED), int64(k)*int64(k-1), d, true)

		res.Iterations = iter + 1
		changed := 0
		exactCount = 0
		for i := 0; i < n; i++ {
			bound := math.Max(lb[i], sc[assign[i]])
			if ub[i] <= bound {
				continue // first filter on the drifted upper bound
			}
			// Tighten ub exactly and re-check.
			p := h.Data.Row(i)
			da := dist(p, centers.Row(assign[i]))
			exactCount++
			ub[i] = da
			if ub[i] <= bound {
				continue
			}
			old := assign[i]
			scanPoint(i)
			if assign[i] != old {
				changed++
			}
		}
		costExactDist(meter.C(arch.FuncED), exactCount, d, true)
		meter.C(arch.FuncOther).Ops += int64(n)
		if changed == 0 {
			res.Converged = true
			break
		}
	}
	res.SSE = sse(h.Data, assign, centers)
	return res
}
