package kmeans

import (
	"fmt"
	"math"
	"sort"

	"pimmine/internal/arch"
	"pimmine/internal/vec"
)

// Drake accelerates Lloyd with an adaptive number of lower bounds [31]:
// each point tracks individual lower bounds for its b closest centers and
// one aggregate bound for all the rest. b adapts between iterations to
// how deep into the candidate lists the assign step actually had to look.
// With a non-nil assist, LB_PIM-ED is consulted before every exact
// distance (Drake-PIM).
type Drake struct {
	Data   *vec.Matrix
	assist *Assist
}

// NewDrake builds the host-only variant.
func NewDrake(data *vec.Matrix) *Drake { return &Drake{Data: data} }

// NewDrakePIM builds the PIM-assisted variant.
func NewDrakePIM(data *vec.Matrix, assist *Assist) *Drake {
	return &Drake{Data: data, assist: assist}
}

// Name implements Algorithm.
func (dr *Drake) Name() string {
	if dr.assist != nil {
		return "Drake-PIM"
	}
	return "Drake"
}

// drakeState is one point's bound bookkeeping.
type drakeState struct {
	cand   []int     // candidate center indices (closest after a(p))
	lb     []float64 // lower bounds for cand, same order
	lbRest float64   // lower bound for every center not in cand ∪ {a(p)}
	ub     float64   // upper bound on d(p, a(p))
}

// Run executes Drake's algorithm; results match Lloyd's exactly.
func (dr *Drake) Run(initial *vec.Matrix, maxIters int, meter *arch.Meter) *Result {
	centers := initial.Clone()
	n, k, d := dr.Data.N, centers.N, dr.Data.D
	assign := make([]int, n)
	st := make([]drakeState, n)
	res := &Result{Assign: assign, Centers: centers}

	b := k / 4
	if b < 1 {
		b = 1
	}
	if b > k-1 {
		b = k - 1
	}

	var exactCount int64
	exactDist := func(i, c int, p []float64, threshold float64) (float64, bool) {
		if dr.assist != nil {
			if lbPim := dr.assist.LBDist(i, c, meter); lbPim >= threshold {
				return lbPim, false
			}
		}
		exactCount++
		return dist(p, centers.Row(c)), true
	}

	// rebuild recomputes a point's distance profile and candidate list of
	// the current width b. Used at init and on fallback. With a PIM
	// assist, centers whose LB_PIM-ED already exceeds the running best
	// keep their bound value instead of an exact distance — they land in
	// the "rest" pool, never in the candidate list, so the invariants
	// (candidate lb = exact or valid lower bound, lbRest lower-bounds all
	// non-candidates) hold either way.
	dists := make([]float64, k)
	isExact := make([]bool, k)
	order := make([]int, k)
	rebuild := func(i int, p []float64) {
		bestD := math.Inf(1)
		for c := 0; c < k; c++ {
			dc, wasExact := exactDist(i, c, p, bestD)
			dists[c] = dc
			isExact[c] = wasExact
			if wasExact && dc < bestD {
				bestD = dc
			}
			order[c] = c
		}
		sort.Slice(order, func(x, y int) bool {
			if dists[order[x]] != dists[order[y]] {
				return dists[order[x]] < dists[order[y]]
			}
			return order[x] < order[y]
		})
		s := &st[i]
		width := b
		if width > k-1 {
			width = k - 1
		}
		// The true argmin is the first *exact* entry in sorted order:
		// every pruned center's bound is ≥ the final best exact
		// distance, so no pruned center can sort strictly before it.
		first := 0
		for !isExact[order[first]] {
			first++
		}
		assign[i] = order[first]
		s.ub = dists[order[first]]
		s.cand = s.cand[:0]
		s.lb = s.lb[:0]
		s.lbRest = math.Inf(1)
		for j, c := range order {
			if j == first {
				continue
			}
			if len(s.cand) < width && isExact[c] {
				s.cand = append(s.cand, c)
				s.lb = append(s.lb, dists[c])
				continue
			}
			if dists[c] < s.lbRest {
				s.lbRest = dists[c]
			}
		}
	}

	// Initial assignment (the PIM dots for the initial centers must be in
	// place before the assist is consulted).
	if dr.assist != nil {
		if err := dr.assist.BeginIteration(centers, meter); err != nil {
			panic(fmt.Sprintf("kmeans: %s init: %v", dr.Name(), err))
		}
	}
	for i := 0; i < n; i++ {
		rebuild(i, dr.Data.Row(i))
	}
	costExactDist(meter.C(arch.FuncED), exactCount, d, true)
	meter.C(arch.FuncOther).Ops += int64(n) * int64(k)
	res.Iterations = 1

	for iter := 1; iter < maxIters; iter++ {
		shifts := updateCenters(dr.Data, assign, centers)
		costUpdateStep(meter.C(arch.FuncOther), int64(n), d, k)
		if dr.assist != nil {
			if err := dr.assist.BeginIteration(centers, meter); err != nil {
				panic(fmt.Sprintf("kmeans: %s iteration: %v", dr.Name(), err))
			}
		}
		maxShift := 0.0
		for _, s := range shifts {
			maxShift = math.Max(maxShift, s)
		}

		// Drift the bounds.
		var maintOps int64
		for i := 0; i < n; i++ {
			s := &st[i]
			s.ub += shifts[assign[i]]
			for j, c := range s.cand {
				s.lb[j] = math.Max(0, s.lb[j]-shifts[c])
			}
			s.lbRest = math.Max(0, s.lbRest-maxShift)
			maintOps += int64(len(s.cand) + 2)
		}
		costBoundMaint(meter.C(arch.FuncUpdate), maintOps)

		res.Iterations = iter + 1
		changed := 0
		exactCount = 0
		fallbacks := 0
		deepest := 0
		for i := 0; i < n; i++ {
			p := dr.Data.Row(i)
			s := &st[i]
			a := assign[i]
			// Global skip: when the drifted upper bound already sits
			// below every other center's lower bound, the assignment
			// cannot change and the point costs nothing this iteration.
			minLB := s.lbRest
			for _, lb := range s.lb {
				if lb < minLB {
					minLB = lb
				}
			}
			if s.ub <= minLB {
				continue
			}
			// Tighten ub with the exact current distance.
			da := dist(p, centers.Row(a))
			exactCount++
			s.ub = da
			best, bestD := a, da

			if s.lbRest < bestD {
				// The aggregate bound cannot exclude the rest: full
				// rebuild (Drake's fallback path).
				fallbacks++
				rebuild(i, p)
				if assign[i] != a {
					changed++
				}
				continue
			}
			for j := range s.cand {
				c := s.cand[j]
				if s.lb[j] >= bestD {
					continue
				}
				if j+1 > deepest {
					deepest = j + 1
				}
				dc, wasExact := exactDist(i, c, p, bestD)
				s.lb[j] = dc
				if wasExact && dc < bestD {
					best, bestD = c, dc
				}
			}
			if best != a {
				// Swap roles: the dethroned center joins the candidate
				// list in place of the winner, with its exact distance
				// as a (tight) lower bound.
				for j, c := range s.cand {
					if c == best {
						s.cand[j] = a
						s.lb[j] = da
						break
					}
				}
				assign[i] = best
				s.ub = bestD
				changed++
			}
		}
		costExactDist(meter.C(arch.FuncED), exactCount, d /*seq*/, true)
		meter.C(arch.FuncOther).Ops += int64(n) * int64(b)
		if changed == 0 {
			res.Converged = true
			break
		}
		// Adapt b: grow when the aggregate bound keeps failing, shrink
		// when the deep candidates go unused.
		switch {
		case fallbacks > n/10 && b < k-1:
			b = minIntDr(k-1, b+b/2+1)
		case deepest < b/2 && b > 2:
			b = maxIntDr(2, deepest+1)
		}
	}
	res.SSE = sse(dr.Data, assign, centers)
	return res
}

func minIntDr(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxIntDr(a, b int) int {
	if a > b {
		return a
	}
	return b
}
