package resilience

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestLimiterAdmitsUpToCap: with the cap free, Acquire admits without
// queueing and release returns the slot.
func TestLimiterAdmitsUpToCap(t *testing.T) {
	t.Parallel()
	l := NewLimiter(2, 0)
	r1, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := l.InFlight(); got != 2 {
		t.Fatalf("InFlight = %d, want 2", got)
	}
	if _, err := l.Acquire(context.Background()); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("full limiter returned %v, want ErrOverloaded", err)
	}
	r1()
	r3, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatalf("after release: %v", err)
	}
	r2()
	r3()
	if got := l.InFlight(); got != 0 {
		t.Fatalf("InFlight after releases = %d, want 0", got)
	}
}

// TestLimiterQueueAdmitsWhenSlotFrees: a caller that fits the wait queue
// blocks until a slot frees, then runs; one beyond the queue is rejected
// immediately with ErrOverloaded.
func TestLimiterQueueAdmitsWhenSlotFrees(t *testing.T) {
	t.Parallel()
	l := NewLimiter(1, 1)
	r1, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	admitted := make(chan struct{})
	go func() {
		r, err := l.Acquire(context.Background())
		if err != nil {
			t.Error(err)
			close(admitted)
			return
		}
		close(admitted)
		r()
	}()
	// Wait for the goroutine to take the queue slot, then overflow it.
	for l.Queued() == 0 {
		time.Sleep(100 * time.Microsecond)
	}
	if _, err := l.Acquire(context.Background()); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("overflowed queue returned %v, want ErrOverloaded", err)
	}
	r1()
	select {
	case <-admitted:
	case <-time.After(5 * time.Second):
		t.Fatal("queued caller never admitted after release")
	}
}

// TestLimiterQueuedCancellation: a queued caller whose context ends gets
// the context's cause, and the queue slot is returned.
func TestLimiterQueuedCancellation(t *testing.T) {
	t.Parallel()
	l := NewLimiter(1, 2)
	r1, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer r1()
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := l.Acquire(ctx)
		errc <- err
	}()
	for l.Queued() == 0 {
		time.Sleep(100 * time.Microsecond)
	}
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled waiter got %v, want context.Canceled", err)
	}
	for l.Queued() != 0 {
		time.Sleep(100 * time.Microsecond)
	}
}

// TestLimiterConcurrentNeverExceedsCap: a hammer of acquirers never
// observes more than the cap in flight, and every admitted caller
// releases exactly once.
func TestLimiterConcurrentNeverExceedsCap(t *testing.T) {
	t.Parallel()
	const cap, callers = 4, 64
	l := NewLimiter(cap, cap)
	var mu sync.Mutex
	inflight, peak, admitted, rejected := 0, 0, 0, 0
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			release, err := l.Acquire(context.Background())
			mu.Lock()
			if err != nil {
				if !errors.Is(err, ErrOverloaded) {
					t.Errorf("unexpected error %v", err)
				}
				rejected++
				mu.Unlock()
				return
			}
			admitted++
			inflight++
			if inflight > peak {
				peak = inflight
			}
			mu.Unlock()
			time.Sleep(time.Millisecond)
			mu.Lock()
			inflight--
			mu.Unlock()
			release()
		}()
	}
	wg.Wait()
	if peak > cap {
		t.Fatalf("peak in-flight %d exceeds cap %d", peak, cap)
	}
	if admitted+rejected != callers {
		t.Fatalf("admitted %d + rejected %d != %d callers", admitted, rejected, callers)
	}
	if admitted < cap {
		t.Fatalf("only %d admitted, cap is %d", admitted, cap)
	}
	if l.InFlight() != 0 || l.Queued() != 0 {
		t.Fatalf("limiter not drained: %d in flight, %d queued", l.InFlight(), l.Queued())
	}
}
